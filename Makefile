# make check mirrors .github/workflows/ci.yml exactly; CI calls these same
# targets so the two can't drift.
GO ?= go

# The root package carries the public-API frontend/future tests (64 clients
# over 8 sessions, crash resolution); internal/frontend has the pool-level
# drain/backpressure/ordering tests.
RACE_PKGS := . ./internal/frontend/... ./internal/recovery/... ./internal/sched/... ./internal/wal/... ./internal/txn/...

.PHONY: check fmt vet build test race smoke bench

check: fmt vet build test race smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# A tiny end-to-end run of the bench binary: logs a short smallbank run on
# two simulated devices and recovers it with every scheme through both the
# serial and pipelined reload paths, reports durable-commit latency
# percentiles from the frontend's futures, and drives the blueprint
# lifecycle through a crash -> Restart -> serve -> crash -> Restart round
# trip (CLR-P and PLR). Machine-readable BENCH_<experiment>.json results
# land in bench-results/.
smoke:
	$(GO) run ./cmd/pacman-bench -exp reload,latency,restart -duration 300ms -workers 2 -json bench-results

bench:
	$(GO) test -bench=. -benchtime=1x ./...
