# make check mirrors .github/workflows/ci.yml exactly; CI calls these same
# targets so the two can't drift.
GO ?= go

# The root package carries the public-API frontend/future tests (64 clients
# over 8 sessions, crash resolution); internal/frontend has the pool-level
# drain/backpressure/ordering tests; torture/simdisk/checkpoint carry the
# crash-injection subsystem and its fault plane.
RACE_PKGS := . ./client/... ./internal/wire/... ./internal/frontend/... ./internal/recovery/... ./internal/sched/... ./internal/wal/... ./internal/txn/... ./internal/mvcc/... ./internal/engine/... ./internal/torture/... ./internal/simdisk/... ./internal/checkpoint/... ./internal/shard/... ./internal/health/... ./internal/harness/... ./cmd/pacman-router/...

.PHONY: check fmt vet build test race torture smoke bench bench-all docs

check: fmt vet build test race torture smoke bench docs

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The crash-injection torture subsystem's CI entry point: the short fixed
# seed set per logging kind (one seed per kind crashing *during* Restart)
# plus the Future crash-semantics contract, raced. An oracle violation
# prints the failing seed and the armed fault plans; reproduce it with
# `go run ./cmd/pacman-bench -exp torture -seed <s> -iters 1`. The wide
# sweep hides behind `go test -run TestTortureLong -torture.long .`.
torture:
	$(GO) test -race -count=1 -run 'TestTortureShort|TestFutureCrashSemantics' -v .

# A tiny end-to-end run of the bench binary: logs a short smallbank run on
# two simulated devices and recovers it with every scheme through both the
# serial and pipelined reload paths, reports durable-commit latency
# percentiles from the frontend's futures, measures forward throughput +
# allocs/txn under CL/PL/LL (the throughput experiment), and drives the
# blueprint lifecycle through a crash -> Restart -> serve -> crash ->
# Restart round trip (CLR-P and PLR), plus the sharded-cluster benchmark
# (router + 2PC throughput scaling at 1/2/4 shards and the cross-shard
# ratio sweep, emitting BENCH_shard.json) and the mixed OLTP+snapshot-scan
# experiment (tps with/without a concurrent scanner, scan staleness in
# epochs, MVCC GC counters, emitting BENCH_mixed.json), and the
# gray-failure experiment (deadline-bounded traffic vs slow/hung devices,
# watchdog detection, gray torture oracle, emitting BENCH_gray.json), and
# the core-scaling matrix (per-core submission queues / sharded release /
# striped encode: tps + steals over a reduced 1/2/4-worker x 1/2-device
# matrix, emitting BENCH_scaling.json). Machine-readable
# BENCH_<experiment>.json results land in bench-results/; the
# TestBenchArtifactsPresent drift check runs right after and fails when
# any experiment listed here is missing its BENCH_<exp>.json (it skips on
# checkouts that never ran smoke — the directory is gitignored).
smoke:
	$(GO) run ./cmd/pacman-bench -exp reload,latency,throughput,mixed,restart,torture,net,shard,gray,scaling -duration 300ms -workers 2 -json bench-results
	$(GO) test -count=1 -run TestBenchArtifactsPresent .

# The documentation gate: the spec-first doc-drift test (wire constants vs
# docs/PROTOCOL.md's normative tables), the relative-link check over
# README/ROADMAP/docs, and every runnable Example (Launch, Restart,
# Frontend.Submit, client Dial) with its asserted output.
docs:
	$(GO) test -count=1 -run TestDocsProtocolDrift ./internal/wire/
	$(GO) test -count=1 -run TestDocsLinks .
	$(GO) test -count=1 -run Example . ./client/

# The commit-hot-path regression guard: the BenchmarkCommitLogged* micro
# benchmarks with allocation counts. The allocs/op columns are the contract
# — the execute->commit->encode->release pipeline stays at a handful of
# allocations per transaction (see README "Performance").
bench:
	$(GO) test -run='^$$' -bench=BenchmarkCommitLogged -benchmem -count=1 .

# The full experiment benchmark sweep (slow; not part of check).
bench-all:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...
