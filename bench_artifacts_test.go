package pacman_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestBenchArtifactsPresent is the bench-artifact drift check: every
// experiment on the Makefile smoke target's -exp list must have a
// bench-results/BENCH_<exp>.json on disk. The smoke target runs this test
// right after the bench run, so an experiment that lands on the smoke list
// without emitting its artifact (or a rename that strands a stale file
// while the new id writes nothing) fails the build instead of silently
// dropping a record — which is how BENCH_gray.json went missing for a
// whole PR. On a checkout that has never run `make smoke` the results
// directory doesn't exist (it is gitignored); that is not drift, so the
// check skips.
func TestBenchArtifactsPresent(t *testing.T) {
	if _, err := os.Stat("bench-results"); os.IsNotExist(err) {
		t.Skip("bench-results/ absent — run `make smoke` to generate the artifacts this checks")
	}
	b, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	// The smoke recipe is the one -exp invocation that also writes -json
	// artifacts; comment lines mention other pacman-bench invocations.
	m := regexp.MustCompile(`pacman-bench\s+-exp\s+([a-z0-9,]+)\s.*-json\s+bench-results`).FindStringSubmatch(string(b))
	if m == nil {
		t.Fatal("no `pacman-bench -exp <list> ... -json bench-results` invocation found in the Makefile — the smoke target moved without updating this test")
	}
	exps := strings.Split(m[1], ",")
	if len(exps) < 2 {
		t.Fatalf("smoke -exp list %q parsed to %d experiments — expected the full smoke matrix", m[1], len(exps))
	}
	for _, exp := range exps {
		artifact := filepath.Join("bench-results", "BENCH_"+exp+".json")
		st, err := os.Stat(artifact)
		if err != nil {
			t.Errorf("smoke experiment %q has no artifact %s — it ran without emitting its record, or the smoke list drifted; run `make smoke`", exp, artifact)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", artifact)
		}
	}
}
