package pacman

// One benchmark per table and figure of the paper's evaluation. Each wraps
// the corresponding harness experiment at a reduced scale so the full suite
// completes in minutes; `cmd/pacman-bench` runs the same experiments with
// larger, configurable scales and prints the full row/series output.
//
//	go test -bench=. -benchmem
//
// The absolute numbers are machine- and scale-specific; EXPERIMENTS.md
// records the shape comparisons against the paper.

import (
	"io"
	"testing"
	"time"

	"pacman/internal/harness"
	"pacman/internal/recovery"
	"pacman/internal/wal"
)

// benchScale returns a scale small enough for testing.B iteration.
func benchScale() harness.Scale {
	s := harness.DefaultScale(true)
	s.Duration = 400 * time.Millisecond
	s.Workers = 2
	s.Threads = []int{1, 2, 4}
	s.Warehouses = 1
	return s
}

func runExp(b *testing.B, fn func(io.Writer, harness.Scale) error) {
	b.Helper()
	s := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11_Logging covers Figures 11a/11b: transaction processing
// under each logging scheme with checkpointing, one and two devices.
func BenchmarkFig11_Logging(b *testing.B) {
	b.Run("1ssd", func(b *testing.B) {
		runExp(b, func(w io.Writer, s harness.Scale) error { return harness.Fig11(w, s, 1) })
	})
	b.Run("2ssd", func(b *testing.B) {
		runExp(b, func(w io.Writer, s harness.Scale) error { return harness.Fig11(w, s, 2) })
	})
}

// BenchmarkTable1_LogSize covers Table 1: log volume per scheme.
func BenchmarkTable1_LogSize(b *testing.B) { runExp(b, harness.Table1) }

// BenchmarkFig12_AdHocLogging covers Figure 12: logging with ad-hoc
// transactions.
func BenchmarkFig12_AdHocLogging(b *testing.B) { runExp(b, harness.Fig12) }

// BenchmarkFig13_CheckpointRecovery covers Figure 13: checkpoint recovery.
func BenchmarkFig13_CheckpointRecovery(b *testing.B) { runExp(b, harness.Fig13) }

// BenchmarkFig14_LogRecovery covers Figure 14: log recovery across schemes
// and threads.
func BenchmarkFig14_LogRecovery(b *testing.B) { runExp(b, harness.Fig14) }

// BenchmarkFig15_LatchBottleneck covers Figure 15: PLR/LLR with and without
// latches.
func BenchmarkFig15_LatchBottleneck(b *testing.B) { runExp(b, harness.Fig15) }

// BenchmarkFig16_Overall covers Figure 16: overall recovery, TPC-C and
// Smallbank.
func BenchmarkFig16_Overall(b *testing.B) { runExp(b, harness.Fig16) }

// BenchmarkFig17_AdHocRecovery covers Figure 17: recovery under an ad-hoc
// transaction mix.
func BenchmarkFig17_AdHocRecovery(b *testing.B) { runExp(b, harness.Fig17) }

// BenchmarkFig18_StaticVsChopping covers Figure 18: PACMAN's static
// decomposition against transaction chopping.
func BenchmarkFig18_StaticVsChopping(b *testing.B) { runExp(b, harness.Fig18) }

// BenchmarkFig19_DynamicAnalysis covers Figure 19: static vs synchronous vs
// pipelined replay.
func BenchmarkFig19_DynamicAnalysis(b *testing.B) { runExp(b, harness.Fig19) }

// BenchmarkFig20_Breakdown covers Figure 20: the recovery-time breakdown.
func BenchmarkFig20_Breakdown(b *testing.B) { runExp(b, harness.Fig20) }

// BenchmarkFig21_GDG covers Figure 21: TPC-C dependency-graph construction.
func BenchmarkFig21_GDG(b *testing.B) { runExp(b, harness.Fig21) }

// BenchmarkReloadPipeline demonstrates the pipelined multi-device reload
// path: the same crashed Smallbank command-log history (2 devices, ~12
// batches, load-bound device bandwidth) is recovered with CLR-P through the
// legacy serial feeder and through the pipelined reloader. The pipelined
// variant's wall clock is lower because per-device readers stream batches
// back-to-back while the decode pool and replay run inside the read stalls;
// reported metrics expose the reload wall, replay stall, and overlap.
//
//	go test -bench=ReloadPipeline -benchtime=3x
func BenchmarkReloadPipeline(b *testing.B) {
	cfg := harness.RunConfig{
		Workload:     harness.Smallbank,
		Logging:      wal.Command,
		Devices:      2,
		DeviceConfig: harness.LoadBoundSSD(),
		Workers:      2,
		Duration:     600 * time.Millisecond,
	}
	run, err := harness.Run(cfg, true)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"pipelined", false}} {
		b.Run(tc.name, func(b *testing.B) {
			var last *recovery.Result
			for i := 0; i < b.N; i++ {
				res, err := run.FreshRecovery(recovery.CLRP, 4, func(o *recovery.Options) {
					o.SerialReload = tc.serial
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.LogTotal.Milliseconds()), "logtotal-ms")
			b.ReportMetric(float64(last.ReloadWall.Milliseconds()), "reloadwall-ms")
			b.ReportMetric(float64(last.ReloadStall.Milliseconds()), "stall-ms")
			b.ReportMetric(float64(last.ReloadOverlap.Milliseconds()), "overlap-ms")
		})
	}
}

// BenchmarkTable2_Bandwidth covers Table 2: device bandwidth accounting.
func BenchmarkTable2_Bandwidth(b *testing.B) { runExp(b, harness.Table2) }

// BenchmarkTable3_FsyncLatency covers Table 3: fsync's latency contribution.
func BenchmarkTable3_FsyncLatency(b *testing.B) { runExp(b, harness.Table3) }
