package pacman

import (
	"errors"
	"fmt"
	"time"

	"pacman/internal/checkpoint"
	"pacman/internal/engine"
	"pacman/internal/recovery"
	"pacman/internal/wal"
)

// Seeder installs one initial row by table name; Blueprint seed functions
// receive one so the same declaration populates any instance.
type Seeder = func(table string, key uint64, vals Tuple)

// Blueprint is a declarative bundle of everything a database instance is
// made of: table schemas (in declaration order — order assigns the table
// IDs recorded in physical logs), stored procedures (in registration order —
// order assigns the procedure IDs recorded in command logs), and a
// deterministic seed for the initial population.
//
// Declaring the catalog once and passing the same value to Launch and
// Restart removes the re-declare-everything-in-the-same-order footgun of
// the imperative lifecycle: Launch persists a manifest of the blueprint to
// the devices, and Restart refuses to replay logs against a blueprint that
// has drifted from it.
type Blueprint struct {
	// Tables declares the schemas, in table-ID order.
	Tables []*Schema
	// Procedures declares the stored procedures, in procedure-ID order.
	Procedures []*Procedure
	// Seed deterministically installs the initial population. It must
	// produce the same rows in the same order on every invocation: recovery
	// replays it on a fresh instance when no checkpoint covers the
	// population, and its fingerprint is validated across restarts. Nil
	// means an empty initial database.
	Seed func(seed Seeder)
}

// ErrBlueprintMismatch is wrapped by Restart errors whose blueprint diverges
// from the catalog manifest persisted on the devices; the error message
// lists every divergence (reordered/missing/reshaped tables or procedures,
// changed procedure bodies, changed seed).
var ErrBlueprintMismatch = wal.ErrManifestMismatch

// ApplyBlueprint declares the blueprint's tables and procedures on a fresh,
// not-started instance and runs its seed.
func (d *DB) ApplyBlueprint(bp Blueprint) error {
	if d.started {
		return errors.New("pacman: apply a blueprint to a fresh instance, not a started one")
	}
	for _, s := range bp.Tables {
		if _, err := d.DefineTable(s); err != nil {
			return err
		}
	}
	for _, p := range bp.Procedures {
		if err := d.Register(p); err != nil {
			return err
		}
	}
	if bp.Seed != nil {
		var seedErr error
		bp.Seed(func(table string, key uint64, vals Tuple) {
			t := d.db.Table(table)
			if t == nil {
				if seedErr == nil {
					seedErr = fmt.Errorf("pacman: blueprint seed references undeclared table %q", table)
				}
				return
			}
			d.Seed(t, key, vals)
		})
		if seedErr != nil {
			return seedErr
		}
	}
	return nil
}

// Launch opens a database instance from a blueprint and starts it: tables
// defined, procedures registered, population seeded, catalog manifest
// persisted, epoch clock and loggers running. The returned instance serves
// immediately (NewFrontend / NewSession). Launch requires fresh devices and
// fails loudly when handed used ones — relaunching on a crashed instance's
// devices would restart the epoch clock at zero and truncate batch files
// that still hold durable records; restarting on devices that already hold
// logs is Restart's job.
func Launch(bp Blueprint, opts Options) (*DB, error) {
	for _, dev := range opts.ExistingDevices {
		if _, err := wal.ReadCatalogManifest(dev); err == nil || !errors.Is(err, wal.ErrNoManifest) {
			return nil, fmt.Errorf("pacman: device %s already holds a catalog manifest; Restart recovers used devices, Launch requires fresh ones", dev.Name())
		}
		if logs := dev.List("log-"); len(logs) > 0 {
			return nil, fmt.Errorf("pacman: device %s already holds %d log batch files; Restart recovers used devices, Launch requires fresh ones", dev.Name(), len(logs))
		}
	}
	d := Open(opts)
	if err := d.ApplyBlueprint(bp); err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustLaunch is Launch that panics on error.
func MustLaunch(bp Blueprint, opts Options) *DB {
	d, err := Launch(bp, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// Restart brings a crashed (or cleanly closed) instance back into service
// from its devices: the normal path back to availability, not an offline
// experiment.
//
// It reads the catalog manifest the crashed instance persisted at Start and
// validates bp against it, failing loudly (ErrBlueprintMismatch) on
// reordered or missing procedures, schema drift, changed procedure bodies,
// or a changed seed — any of which would silently corrupt command-log
// replay. It then recovers with cfg.Scheme (AutoScheme derives the scheme
// from the logged kind), repairs the log tail (dropping torn frames and
// records beyond the durable cut), and returns a *started* instance:
//
//   - the epoch clock resumes past the recovery high-water mark, so every
//     new commit timestamp exceeds every recovered one;
//   - the WAL opens fresh batch files after the reloaded tail instead of
//     clobbering it, so a second crash+Restart recovers both pre- and
//     post-restart commits;
//   - Frontends and Sessions work immediately, and new commits become
//     durable on the same devices.
//
// Pass the same device slice the crashed instance used (first device
// first — it holds the pepoch marker and manifest). The recovered RecoveryResult
// reports the usual phase timings.
func Restart(devices []*Device, bp Blueprint, cfg RecoverConfig) (*DB, *RecoveryResult, error) {
	if len(devices) == 0 {
		return nil, nil, errors.New("pacman: Restart requires the crashed instance's devices")
	}
	man, err := wal.ReadCatalogManifest(devices[0])
	if err != nil {
		if errors.Is(err, wal.ErrNoManifest) {
			return nil, nil, fmt.Errorf("pacman: restart: %w (was the instance started via Launch/Start? raw Open+Recover handles unmanifested devices)", err)
		}
		return nil, nil, fmt.Errorf("pacman: restart: %w", err)
	}
	if man.Kind == wal.Off {
		return nil, nil, errors.New("pacman: restart: the crashed instance ran without logging; nothing to recover — Launch a fresh instance instead")
	}

	// The restarted instance adopts the manifest's durability configuration:
	// the logging kind (new log records must decode alongside reloaded
	// ones) and the batch geometry (resumed epochs must map to fresh batch
	// files, not collide with reloaded ones).
	opts := cfg.Serve
	opts.Logging = man.Kind
	opts.BatchEpochs = man.BatchEpochs
	opts.ExistingDevices = devices
	if opts.EpochInterval == 0 && man.EpochNanos > 0 {
		// Keep the crashed instance's group-commit cadence (and with it its
		// durable-commit latency) unless the caller overrides it.
		opts.EpochInterval = time.Duration(man.EpochNanos)
	}
	d := Open(opts)
	if err := d.ApplyBlueprint(bp); err != nil {
		return nil, nil, err
	}
	if err := man.Diff(d.catalogManifest()); err != nil {
		return nil, nil, fmt.Errorf("pacman: restart: %w", err)
	}

	scheme := cfg.Scheme
	if scheme == AutoScheme {
		scheme = recovery.SchemeFor(man.Kind)
	}
	if scheme.LogKind() != man.Kind {
		return nil, nil, fmt.Errorf("pacman: restart: scheme %v replays %v logs, but the devices were logged with %v",
			scheme, scheme.LogKind(), man.Kind)
	}

	res, err := d.Recover(devices, scheme, cfg)
	if err != nil {
		return nil, nil, err
	}

	// Repair the tail before logging again: drop torn frames and ghost
	// records beyond the durable cut, which a later recovery's pepoch
	// filter would otherwise wrongly admit once the persistent epoch moves
	// past them.
	if _, err := wal.RepairTail(devices, res.Pepoch); err != nil {
		return nil, nil, err
	}

	// Resume the epoch clock past the recovered high-water mark, rounded up
	// to a batch boundary so the first post-restart flush opens a fresh
	// batch file strictly after the reloaded tail. resume == 1 means
	// nothing was durable (commits start at epoch 1 and pepoch was 0), and
	// the tail repair above has already emptied any unacknowledged frames
	// from batch 0, so starting it over loses nothing.
	resume := res.ResumeEpoch
	if resume > 1 {
		be := man.BatchEpochs
		if be == 0 {
			be = wal.DefaultBatchEpochs
		}
		resume = engine.EpochCeil(resume, be)
	}
	d.mgr.Rebase(resume)
	d.resumePepoch = resume - 1
	d.ckptSeed = res.CheckpointID
	if cfg.SkipCheckpoint {
		// Recovery didn't look, but checkpoints may still sit on the
		// devices: new ones must number past them or they clobber shard
		// files and lose FindLatest to a stale manifest.
		cm, err := checkpoint.FindLatest(devices)
		if err != nil {
			return nil, nil, err
		}
		if cm != nil {
			d.ckptSeed = cm.ID
		}
	}

	if err := d.Start(); err != nil {
		return nil, nil, err
	}
	return d, res, nil
}
