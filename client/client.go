// Package client is the Go client for pacmand's wire protocol
// (docs/PROTOCOL.md): Dial a TCP or unix-socket endpoint, Submit stored-
// procedure invocations, and get client-side durable-commit futures back.
//
// The client pipelines: up to Window requests ride one connection
// concurrently, each tagged with a request id, and the server answers in
// whatever order the transactions' epochs are group-commit released —
// Submit never waits for a previous request's result. Submit blocks only
// for flow control: when the in-flight window is full (the bounded-window
// equivalent of the in-process Frontend's bounded queue) or while the
// connection is down.
//
// Failures map onto the same sentinels the in-process API uses, so
// errors.Is-based outcome classification is transport-agnostic:
// a Result frame carrying CodeCrashed resolves the future with an error
// wrapping pacman.ErrCrashed, CodeAborted wraps the procedure-abort error,
// and a connection that dies between Submit and Result resolves
// ErrConnLost — the network twin of "executed, maybe durable, ack lost",
// which is exactly how the torture oracle treats it.
//
// Server-side backpressure (a full admission queue) and drain notices are
// retried internally with exponential backoff: both mean the request was
// NEVER executed, so resubmission is always safe. Lost connections are
// redialed with backoff in the background; futures in flight at the loss
// resolve ErrConnLost (unknown outcome — a resubmission could double-
// execute), while queued-but-unsent work simply waits for the next link.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/internal/health"
	"pacman/internal/proc"
	"pacman/internal/wire"
)

// Client errors.
var (
	// ErrConnLost resolves futures whose connection died between submission
	// and result: the request may or may not have executed (and may or may
	// not be durable) — the oracle-visible "maybe" outcome.
	ErrConnLost = errors.New("client: connection lost before result; outcome unknown")
	// ErrClientClosed resolves futures submitted to (or pending retry on) a
	// closed client; the request was not executed.
	ErrClientClosed = errors.New("client: closed")
)

// Config tunes a Client. The zero value of every field has a working
// default.
type Config struct {
	// Window bounds the client's in-flight requests; the effective window
	// is min(Window, the server's HelloAck grant). Default 64.
	Window int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect and backpressure-retry
	// backoff (defaults 5ms and 1s).
	BackoffMin, BackoffMax time.Duration
	// KeepAlive, when positive, probes idle connections with wire Pings at
	// this cadence: if a whole further interval passes with no frame from
	// the server, the link is failed (in-flight futures resolve ErrConnLost)
	// and redialed. This is how a shard router notices a dead or wedged
	// shard without waiting for a Submit to time out. Zero disables
	// keepalive (the default).
	KeepAlive time.Duration
	// RetryBudget caps how many times one call is resubmitted after a
	// server-side shed (Backpressure or Draining — both guarantee the
	// request never executed). When the budget runs out the call's future
	// resolves with a StatusError carrying the attempt count (unwrapping to
	// wire.ErrBackpressure). Zero means retry forever (the pre-budget
	// behavior: callers that prefer blocking to shedding keep it).
	RetryBudget int
	// Logf, when set, receives connection-lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	return c
}

// Future is the client-side durable-commit handle of one submitted
// invocation: it resolves when the server's Result frame arrives (nil
// error means executed AND durable on the server's devices), or with
// ErrConnLost / ErrClientClosed when the transport fails first.
type Future struct {
	done  chan struct{}
	state atomic.Uint32
	start time.Time
	ts    pacman.TS
	err   error
	timer atomic.Pointer[time.Timer] // client-side deadline expiry; nil when no deadline
}

func newFuture() *Future {
	return &Future{done: make(chan struct{}), start: time.Now()}
}

func (f *Future) resolve(ts pacman.TS, err error) {
	if !f.state.CompareAndSwap(0, 1) {
		return
	}
	f.ts = ts
	f.err = err
	close(f.done)
	if t := f.timer.Load(); t != nil {
		t.Stop()
	}
}

// Wait blocks until resolution and returns the commit timestamp and the
// terminal error (nil means executed and durable).
func (f *Future) Wait() (pacman.TS, error) {
	<-f.done
	return f.ts, f.err
}

// Done returns a channel closed at resolution, for select-based waiting.
func (f *Future) Done() <-chan struct{} { return f.done }

// Err blocks until resolution and returns the terminal error.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Epoch blocks until resolution and returns the commit epoch (zero on
// error), the unit group commit acknowledges in.
func (f *Future) Epoch() uint32 {
	<-f.done
	return uint32(f.ts >> 32)
}

// Latency blocks until resolution and returns the client-observed
// submit-to-durable latency (zero on error) — the number the loopback
// benchmark reports as durable p99.
func (f *Future) Latency() time.Duration {
	<-f.done
	if f.err != nil {
		return 0
	}
	return time.Since(f.start) // resolved instant ≈ now for waiters
}

// call is one in-flight (or retry-pending) request. The encoded submission
// is retained so backpressure/draining rejections — which guarantee the
// request never executed — can resend it safely.
type call struct {
	fut      *Future
	name     string
	args     proc.Args
	adHoc    bool
	frame    uint8 // FrameSubmit (zero value defaults to it), FramePrepare, or FrameDecide
	reqID    uint64
	attempts int
	// deadline, when non-zero, rides the Submit frame as a relative timeout
	// (re-derived at each send, so retries carry only the remaining budget)
	// and arms a client-side expiry timer on the future.
	deadline time.Time
}

// link is one live connection incarnation: its own window semaphore,
// pending map, and reader goroutine. A lost connection fails the whole
// link; the client's maintainer dials a replacement.
type link struct {
	nc     net.Conn
	procs  map[string]uint32
	window chan struct{}
	down   chan struct{}
	dmu    sync.Mutex // guards draining + down close
	downed bool

	wmu sync.Mutex // serializes frame writes

	// lastRecv is when the last frame (any type) arrived, as unix nanos;
	// the keepalive prober treats it as proof of peer liveness.
	lastRecv atomic.Int64

	pmu      sync.Mutex
	pending  map[uint64]*call
	draining bool
}

// Client is a pacmand connection manager: one live link at a time,
// redialed with backoff, with a bounded in-flight window and pipelined
// out-of-order completion.
type Client struct {
	network, addr string
	cfg           Config

	mu     sync.Mutex
	cond   *sync.Cond
	link   *link
	closed bool

	nextReq atomic.Uint64
	wantAck chan struct{} // signals the maintainer to (re)dial

	// Liveness telemetry: ping round-trips (keepalive probes and explicit
	// Pings both count) and connection/retry churn, exposed via Stats. A
	// shard router's breaker uses Pongs to confirm a suspect shard answered
	// a probe before half-opening.
	rtt        health.EWMA
	lastRTT    atomic.Int64
	pings      atomic.Uint64
	pongs      atomic.Uint64
	reconnects atomic.Uint64
	retries    atomic.Uint64
	shed       atomic.Uint64

	pingMu sync.Mutex
	pingAt map[uint64]time.Time // reqID -> send time of unanswered pings
}

// Stats is a point-in-time snapshot of a client's liveness telemetry.
type Stats struct {
	// RTT is the smoothed (EWMA) ping round-trip time; zero until the first
	// pong. LastRTT is the most recent single sample.
	RTT     time.Duration `json:"rtt"`
	LastRTT time.Duration `json:"last_rtt"`
	// Pings/Pongs count probes sent and answered across all connections.
	Pings uint64 `json:"pings"`
	Pongs uint64 `json:"pongs"`
	// Reconnects counts successful redials after the initial connection.
	Reconnects uint64 `json:"reconnects"`
	// Retries counts backpressure/draining resubmissions; Shed counts calls
	// failed because their RetryBudget ran out.
	Retries uint64 `json:"retries"`
	Shed    uint64 `json:"shed"`
}

// Stats returns the client's liveness telemetry: smoothed ping RTT,
// probe and reconnect counters, and retry churn.
func (c *Client) Stats() Stats {
	return Stats{
		RTT:        c.rtt.Load(),
		LastRTT:    time.Duration(c.lastRTT.Load()),
		Pings:      c.pings.Load(),
		Pongs:      c.pongs.Load(),
		Reconnects: c.reconnects.Load(),
		Retries:    c.retries.Load(),
		Shed:       c.shed.Load(),
	}
}

// sendPing writes one Ping frame on l and records its send time so the
// matching Pong yields an RTT sample.
func (c *Client) sendPing(l *link) error {
	id := c.nextReq.Add(1)
	c.pingMu.Lock()
	if c.pingAt == nil {
		c.pingAt = make(map[uint64]time.Time)
	}
	if len(c.pingAt) > 16 {
		// Unanswered probes from dead links; drop them rather than grow.
		clear(c.pingAt)
	}
	c.pingAt[id] = time.Now()
	c.pingMu.Unlock()
	c.pings.Add(1)
	l.wmu.Lock()
	err := wire.WriteFrame(l.nc, wire.Header{Type: wire.FramePing, ReqID: id}, nil)
	l.wmu.Unlock()
	return err
}

// pong records a Pong answering one of our probes.
func (c *Client) pong(reqID uint64) {
	c.pingMu.Lock()
	sent, ok := c.pingAt[reqID]
	delete(c.pingAt, reqID)
	c.pingMu.Unlock()
	if !ok {
		return
	}
	rtt := time.Since(sent)
	c.pongs.Add(1)
	c.lastRTT.Store(int64(rtt))
	c.rtt.Observe(rtt)
}

// Dial connects to a pacmand endpoint ("tcp" or "unix") and performs the
// protocol handshake. The first connection is made synchronously so
// misconfiguration fails fast; afterwards, lost connections are redialed
// with exponential backoff in the background until Close.
func Dial(network, addr string, cfg Config) (*Client, error) {
	c := &Client{network: network, addr: addr, cfg: cfg.withDefaults(), wantAck: make(chan struct{}, 1)}
	c.cond = sync.NewCond(&c.mu)
	l, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.link = l
	c.mu.Unlock()
	go c.maintain()
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// connect dials once and handshakes: Hello out, HelloAck (or a coded
// GoAway rejection) back. The returned link's reader goroutine is running.
func (c *Client) connect() (*link, error) {
	nc, err := net.DialTimeout(c.network, c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	// The handshake shares the dial budget: a gray endpoint that accepts
	// the TCP connection but never answers Hello must fail the attempt,
	// not wedge the redial loop forever.
	nc.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := wire.WriteFrame(nc, wire.Header{Type: wire.FrameHello}, wire.AppendHello(nil, wire.V1, wire.V1)); err != nil {
		nc.Close()
		return nil, err
	}
	h, p, err := wire.ReadFrame(nc, nil)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if h.Type == wire.FrameGoAway {
		nc.Close()
		return nil, fmt.Errorf("client: server rejected handshake: %w", wire.CodeError(h.Code, ""))
	}
	if h.Type != wire.FrameHelloAck {
		nc.Close()
		return nil, fmt.Errorf("client: expected HelloAck, got %s: %w", wire.FrameName(h.Type), wire.ErrBadFrame)
	}
	_, grant, procs, err := wire.ParseHelloAck(p)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello ack: %w", err)
	}
	window := c.cfg.Window
	if int(grant) < window {
		window = int(grant)
	}
	if window < 1 {
		window = 1
	}
	l := &link{
		nc:      nc,
		procs:   make(map[string]uint32, len(procs)),
		window:  make(chan struct{}, window),
		down:    make(chan struct{}),
		pending: map[uint64]*call{},
	}
	for i, name := range procs {
		l.procs[name] = uint32(i)
	}
	nc.SetDeadline(time.Time{}) // handshake done; steady state has no I/O deadline
	l.lastRecv.Store(time.Now().UnixNano())
	go c.readLoop(l)
	if c.cfg.KeepAlive > 0 {
		go c.keepalive(l)
	}
	return l, nil
}

// keepalive probes an idle link with Pings. Any inbound frame counts as
// liveness (a busy connection never pings); a full interval of silence
// after a probe fails the link, which resolves in-flight futures with
// ErrConnLost and wakes the redial loop — so a dead shard surfaces on the
// keepalive cadence instead of a future Submit's timeout.
func (c *Client) keepalive(l *link) {
	t := time.NewTicker(c.cfg.KeepAlive)
	defer t.Stop()
	awaiting := false
	for {
		select {
		case <-l.down:
			return
		case <-t.C:
			idle := time.Since(time.Unix(0, l.lastRecv.Load()))
			if idle < c.cfg.KeepAlive {
				awaiting = false
				continue
			}
			if awaiting {
				c.logf("client: keepalive timeout on %s after %v silence; failing link", c.addr, idle)
				l.fail()
				return
			}
			awaiting = true
			if err := c.sendPing(l); err != nil {
				l.fail()
				return
			}
		}
	}
}

// jitterBackoff returns a full-jitter delay for the given zero-based
// attempt: uniform in (0, min(max, min<<attempt)]. Full jitter (rather
// than a deterministic doubling) keeps a fleet of clients whose server
// just bounced from reconnecting — and re-colliding — in lockstep.
func jitterBackoff(min, max time.Duration, attempt int) time.Duration {
	cap := min << attempt
	if attempt >= 30 || cap <= 0 || cap > max { // shift overflow guard
		cap = max
	}
	if cap <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(cap))) + 1
}

// maintain owns the link lifecycle: whenever the current link dies, dial a
// replacement with jittered exponential backoff until Close.
func (c *Client) maintain() {
	for {
		c.mu.Lock()
		l := c.link
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if l != nil {
			select {
			case <-l.down:
			case <-c.wantAck:
				continue
			}
		}
		// Link is down: clear it and redial with backoff.
		c.mu.Lock()
		if c.link == l {
			c.link = nil
		}
		c.mu.Unlock()
		for attempt := 0; ; attempt++ {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			nl, err := c.connect()
			if err == nil {
				c.mu.Lock()
				c.link = nl
				c.cond.Broadcast()
				c.mu.Unlock()
				c.reconnects.Add(1)
				c.logf("client: reconnected to %s", c.addr)
				break
			}
			backoff := jitterBackoff(c.cfg.BackoffMin, c.cfg.BackoffMax, attempt)
			c.logf("client: dial %s: %v (retrying in %v)", c.addr, err, backoff)
			time.Sleep(backoff)
		}
	}
}

// fail kills a link: the connection closes, every pending call resolves
// ErrConnLost, and the maintainer is woken to redial.
func (l *link) fail() {
	l.dmu.Lock()
	if l.downed {
		l.dmu.Unlock()
		return
	}
	l.downed = true
	close(l.down)
	l.dmu.Unlock()
	l.nc.Close()
	l.pmu.Lock()
	pending := l.pending
	l.pending = map[uint64]*call{}
	l.pmu.Unlock()
	for _, cl := range pending {
		cl.fut.resolve(0, ErrConnLost)
	}
}

// readLoop decodes response frames off one link until it dies.
func (c *Client) readLoop(l *link) {
	defer l.fail()
	var buf []byte
	for {
		h, p, err := wire.ReadFrame(l.nc, buf)
		if err != nil {
			return
		}
		buf = p
		l.lastRecv.Store(time.Now().UnixNano())
		switch h.Type {
		case wire.FrameResult:
			l.pmu.Lock()
			cl := l.pending[h.ReqID]
			delete(l.pending, h.ReqID)
			l.pmu.Unlock()
			if cl == nil {
				continue // stale or duplicate id; ignore
			}
			ts, msg, perr := wire.ParseResult(h.Code, p)
			select {
			case <-l.window:
			default:
			}
			switch {
			case perr != nil:
				cl.fut.resolve(0, fmt.Errorf("client: result for req %d: %w", h.ReqID, perr))
			case h.Code == wire.CodeOK:
				cl.fut.resolve(pacman.TS(ts), nil)
			case h.Code == wire.CodeDraining:
				// Never executed: retry after the server comes back.
				c.retryLater(cl)
			default:
				cl.fut.resolve(0, wire.CodeError(h.Code, msg))
			}
		case wire.FrameBackpressure:
			l.pmu.Lock()
			cl := l.pending[h.ReqID]
			delete(l.pending, h.ReqID)
			l.pmu.Unlock()
			select {
			case <-l.window:
			default:
			}
			if cl != nil {
				// Never executed (the admission queue was full): resubmit
				// after a backoff proportional to how often this request has
				// been pushed back.
				c.retryLater(cl)
			}
		case wire.FrameGoAway:
			// Stop submitting on this link; the server settles what is in
			// flight and then closes. New submissions wait for the next
			// incarnation.
			l.pmu.Lock()
			l.draining = true
			l.pmu.Unlock()
		case wire.FramePong:
			// Liveness answer: match it to our probe for an RTT sample.
			c.pong(h.ReqID)
		default:
			c.logf("client: unexpected %s from server", wire.FrameName(h.Type))
			return
		}
	}
}

// retryLater reschedules a never-executed call with jittered exponential
// backoff, or fails it fast when its retry budget is spent — the client's
// half of shedding under brownout: a server emitting Backpressure on every
// Submit should push typed errors to callers, not an unbounded retry storm.
func (c *Client) retryLater(cl *call) {
	cl.attempts++
	if c.cfg.RetryBudget > 0 && cl.attempts >= c.cfg.RetryBudget {
		c.shed.Add(1)
		cl.fut.resolve(0, &wire.StatusError{
			Code:     wire.CodeBackpressure,
			Msg:      "server shedding load",
			Attempts: cl.attempts,
		})
		return
	}
	c.retries.Add(1)
	delay := jitterBackoff(c.cfg.BackoffMin, c.cfg.BackoffMax, cl.attempts-1)
	time.AfterFunc(delay, func() { c.dispatch(cl) })
}

// Submit sends one invocation and returns its future. It blocks only for
// flow control (window full or connection down), never for execution or
// durability. A procedure name the server did not announce resolves the
// future immediately with an error.
func (c *Client) Submit(name string, args pacman.Args) *Future {
	return c.submit(name, args, false)
}

// SubmitAdHoc is Submit for ad-hoc transactions (tuple-level logging even
// under command logging).
func (c *Client) SubmitAdHoc(name string, args pacman.Args) *Future {
	return c.submit(name, args, true)
}

// Prepare sends phase one of a cross-shard commit: the named 2PC piece
// executes as a distributed transaction (value-logged), and the returned
// future resolves nil only when its effects are durable at the server's
// pepoch — the prepare ack a coordinator's commit decision may rely on.
// Shard routers call this; ordinary applications use Submit.
func (c *Client) Prepare(name string, args pacman.Args) *Future {
	cl := &call{fut: newFuture(), name: name, args: args, frame: wire.FramePrepare, reqID: c.nextReq.Add(1)}
	c.dispatch(cl)
	return cl.fut
}

// Decide sends phase two of a cross-shard commit: the commit-apply or
// abort-release piece for a decided transaction. Decide pieces gate on the
// participant's 2PC status row, so re-delivery during presumed-abort
// recovery is safe.
func (c *Client) Decide(name string, args pacman.Args) *Future {
	cl := &call{fut: newFuture(), name: name, args: args, frame: wire.FrameDecide, reqID: c.nextReq.Add(1)}
	c.dispatch(cl)
	return cl.fut
}

// SubmitWithin is Submit with a per-request timeout: the deadline rides the
// Submit frame (as a relative timeout, so clock skew cannot distort it) and
// the server sheds the request wherever it expires — admission, dequeue, or
// the durability pipeline. The client arms its own expiry timer too, so the
// future resolves CodeDeadlineExceeded on time even if the server (or the
// network) has wedged. Like a connection loss, a deadline expiry leaves the
// execution state unknown: the transaction may still commit durably.
func (c *Client) SubmitWithin(name string, args pacman.Args, timeout time.Duration) *Future {
	return c.submitDeadline(name, args, false, timeout)
}

// SubmitAdHocWithin is SubmitAdHoc with a per-request timeout.
func (c *Client) SubmitAdHocWithin(name string, args pacman.Args, timeout time.Duration) *Future {
	return c.submitDeadline(name, args, true, timeout)
}

// PrepareWithin is Prepare with a per-request timeout — how a shard router
// bounds phase one of a cross-shard commit so a gray participant cannot
// stall the coordinator past the transaction's deadline. (There is no
// DecideWithin: decisions must eventually be delivered, so phase two
// retries without a deadline.)
func (c *Client) PrepareWithin(name string, args pacman.Args, timeout time.Duration) *Future {
	cl := &call{fut: newFuture(), name: name, args: args, frame: wire.FramePrepare, reqID: c.nextReq.Add(1)}
	c.arm(cl, timeout)
	c.dispatch(cl)
	return cl.fut
}

func (c *Client) submit(name string, args pacman.Args, adHoc bool) *Future {
	cl := &call{fut: newFuture(), name: name, args: args, adHoc: adHoc, reqID: c.nextReq.Add(1)}
	c.dispatch(cl)
	return cl.fut
}

func (c *Client) submitDeadline(name string, args pacman.Args, adHoc bool, timeout time.Duration) *Future {
	cl := &call{fut: newFuture(), name: name, args: args, adHoc: adHoc, reqID: c.nextReq.Add(1)}
	c.arm(cl, timeout)
	c.dispatch(cl)
	return cl.fut
}

// arm sets a call's deadline and starts the client-side expiry timer. A
// result that lands first wins (resolve is first-one-wins), so a durable
// ack is never retroactively failed.
func (c *Client) arm(cl *call, timeout time.Duration) {
	if timeout <= 0 {
		return
	}
	cl.deadline = time.Now().Add(timeout)
	fut := cl.fut
	// Store-after-AfterFunc means a tiny timeout can fire before the
	// pointer lands; resolve then sees nil and skips the Stop, which is
	// harmless — the timer has already fired.
	fut.timer.Store(time.AfterFunc(timeout, func() {
		fut.resolve(0, &wire.StatusError{Code: wire.CodeDeadlineExceeded, Msg: "no result before deadline"})
	}))
}

// Exec is the synchronous variant: Submit and wait for the durable result.
func (c *Client) Exec(name string, args pacman.Args) (pacman.TS, error) {
	return c.Submit(name, args).Wait()
}

// dispatch pushes one call through the current link, waiting out
// disconnections; it is the shared path for first sends and retries.
func (c *Client) dispatch(cl *call) {
	for {
		l := c.waitLink(cl.fut.done)
		if l == nil {
			// Closed, or the call's deadline fired while disconnected;
			// resolve is first-one-wins, so an already-expired future
			// keeps its CodeDeadlineExceeded.
			cl.fut.resolve(0, ErrClientClosed)
			return
		}
		procID, ok := l.procs[cl.name]
		if !ok {
			cl.fut.resolve(0, fmt.Errorf("client: procedure %q not announced by server: %w", cl.name, wire.ErrUnknownProc))
			return
		}
		// Window slot: the bounded in-flight cap. Abandon the wait if the
		// link dies under us and go find the next one.
		select {
		case l.window <- struct{}{}:
		case <-l.down:
			continue
		case <-cl.fut.done:
			// Deadline fired while queued for a slot; nothing was sent.
			return
		}
		l.pmu.Lock()
		if l.draining {
			l.pmu.Unlock()
			select {
			case <-l.window:
			default:
			}
			select {
			case <-l.down: // server is settling and closing; wait it out
			case <-cl.fut.done:
				return
			}
			continue
		}
		l.pending[cl.reqID] = cl
		l.pmu.Unlock()

		var flags uint8
		if cl.adHoc {
			flags = wire.FlagAdHoc
		}
		frame := cl.frame
		if frame == 0 {
			frame = wire.FrameSubmit
		}
		var payload []byte
		if !cl.deadline.IsZero() {
			// Send the REMAINING budget: retries that burned backoff time
			// hand the server a correspondingly shorter leash.
			remaining := time.Until(cl.deadline)
			if remaining <= 0 {
				l.pmu.Lock()
				delete(l.pending, cl.reqID)
				l.pmu.Unlock()
				select {
				case <-l.window:
				default:
				}
				cl.fut.resolve(0, &wire.StatusError{
					Code:     wire.CodeDeadlineExceeded,
					Msg:      "deadline expired before send",
					Attempts: cl.attempts,
				})
				return
			}
			flags |= wire.FlagDeadline
			payload = wire.AppendSubmitDeadline(nil, procID, remaining, cl.args)
		} else {
			payload = wire.AppendSubmit(nil, procID, cl.args)
		}
		l.wmu.Lock()
		err := wire.WriteFrame(l.nc, wire.Header{Type: frame, Flags: flags, ReqID: cl.reqID}, payload)
		l.wmu.Unlock()
		if err != nil {
			// The frame is written with a single Write, which errors only
			// when the bytes were not all handed off — so the server cannot
			// have seen a complete Submit and the request never executed.
			// Reclaim the call before fail() sweeps pending (everything
			// ELSE in flight genuinely has an unknown outcome) and resend
			// it on the next link. If a concurrent fail() got there first,
			// the call already resolved ErrConnLost; don't resend then.
			l.pmu.Lock()
			_, mine := l.pending[cl.reqID]
			delete(l.pending, cl.reqID)
			l.pmu.Unlock()
			l.fail()
			if mine {
				c.logf("client: write to %s failed (%v); resending req %d on next connection", c.addr, err, cl.reqID)
				continue
			}
			return
		}
		return
	}
}

// waitLink blocks until a live, non-draining link exists, the client is
// closed, or abort fires — nil return for the latter two. abort is the
// call's resolution channel: a deadline that expires while the client is
// disconnected must release the dispatcher (the future already resolved
// CodeDeadlineExceeded), not strand it until a reconnect that may never
// complete. Pass nil for an unbounded wait.
func (c *Client) waitLink(abort <-chan struct{}) *link {
	var watcher chan struct{}
	c.mu.Lock()
	defer c.mu.Unlock()
	defer func() {
		if watcher != nil {
			close(watcher)
		}
	}()
	for {
		if c.closed {
			return nil
		}
		if abort != nil {
			select {
			case <-abort:
				return nil
			default:
			}
		}
		if l := c.link; l != nil {
			l.pmu.Lock()
			draining := l.draining
			l.pmu.Unlock()
			select {
			case <-l.down:
			default:
				if !draining {
					return l
				}
			}
			// Dead or draining: drop our reference and wait for the
			// maintainer to replace it.
			c.mu.Unlock()
			select {
			case <-l.down:
			case <-time.After(c.cfg.BackoffMin):
			case <-abort: // nil abort never fires
			}
			c.mu.Lock()
			continue
		}
		// No link at all: cond.Wait can't select on abort, so arrange a
		// one-shot watcher that re-broadcasts when abort fires.
		if abort != nil && watcher == nil {
			watcher = make(chan struct{})
			go func(stop <-chan struct{}) {
				select {
				case <-abort:
					c.mu.Lock()
					c.cond.Broadcast()
					c.mu.Unlock()
				case <-stop:
				}
			}(watcher)
		}
		c.cond.Wait()
	}
}

// Ping round-trips a liveness probe on the current connection. The probe
// is fire-and-forget; the answering Pong lands in Stats (RTT, Pongs).
func (c *Client) Ping() error {
	l := c.waitLink(nil)
	if l == nil {
		return ErrClientClosed
	}
	return c.sendPing(l)
}

// Close severs the connection and stops reconnecting. Futures in flight
// resolve ErrConnLost; retry-pending ones resolve ErrClientClosed when
// their timer fires.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	l := c.link
	c.link = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	select {
	case c.wantAck <- struct{}{}:
	default:
	}
	if l != nil {
		l.fail()
	}
}
