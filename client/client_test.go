package client_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/wire"
	"pacman/internal/workload"
)

func bankBlueprint() pacman.Blueprint {
	spec := workload.Spec(workload.NewBank(64))
	return pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
}

func depositArgs(acct, amount int64) pacman.Args {
	return pacman.Args{pacman.A(pacman.I(acct)), pacman.A(pacman.I(amount)), pacman.A(pacman.I(1))}
}

func launch(t *testing.T, scfg wire.ServerConfig) (*pacman.DB, *wire.Server, net.Addr) {
	t.Helper()
	db, err := pacman.Launch(bankBlueprint(), pacman.Options{Logging: pacman.CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(scfg)
	if err := srv.Attach(db); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return db, srv, addr
}

// TestClientPipelinedDurable drives a window's worth of pipelined
// submissions through the public client and checks every future resolves
// durable with a commit timestamp carrying a released epoch.
func TestClientPipelinedDurable(t *testing.T) {
	db, srv, addr := launch(t, wire.ServerConfig{Workers: 4, Queue: 256})
	defer db.Close()
	defer srv.Close()

	c, err := client.Dial("tcp", addr.String(), client.Config{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 96
	futs := make([]*client.Future, n)
	for i := range futs {
		futs[i] = c.Submit("Deposit", depositArgs(int64(i%16), 1))
	}
	for i, f := range futs {
		ts, err := f.Wait()
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if ts == 0 || f.Epoch() == 0 {
			t.Fatalf("submit %d: ts %x epoch %d", i, ts, f.Epoch())
		}
		if f.Latency() <= 0 {
			t.Fatalf("submit %d: nonpositive latency", i)
		}
	}

	if _, err := c.Exec("NoSuchProc", nil); !errors.Is(err, wire.ErrUnknownProc) {
		t.Fatalf("unknown proc: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

// TestClientBackpressureRetry points a wide client window at a deliberately
// tiny frontend (1 worker, queue of 1). The server pushes back with
// Backpressure frames; the client must absorb them internally — resubmitting
// with backoff, since a pushed-back request never executed — so that every
// future still resolves durable.
func TestClientBackpressureRetry(t *testing.T) {
	db, srv, addr := launch(t, wire.ServerConfig{Workers: 1, Queue: 1, Window: 64})
	defer db.Close()
	defer srv.Close()

	c, err := client.Dial("tcp", addr.String(), client.Config{Window: 64, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 48
	futs := make([]*client.Future, n)
	for i := range futs {
		futs[i] = c.Submit("Deposit", depositArgs(int64(i%16), 1))
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// TestClientReconnectAcrossCrash is the tentpole's availability story end
// to end at the client: kill the daemon mid-load, crash the instance,
// Restart from its devices, re-Attach and re-Listen on the same address —
// and check that (a) futures in flight at the kill resolve ErrConnLost
// (outcome unknown, never auto-retried), (b) submissions issued during the
// outage park until the reconnect and then commit durably against the
// recovered incarnation.
func TestClientReconnectAcrossCrash(t *testing.T) {
	bp := bankBlueprint()
	db, err := pacman.Launch(bp, pacman.Options{Logging: pacman.CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(wire.ServerConfig{Workers: 4, Queue: 256})
	if err := srv.Attach(db); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial("tcp", addr.String(), client.Config{Window: 64, BackoffMin: time.Millisecond, BackoffMax: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: a batch in flight when the daemon dies. Every future must
	// settle as either durable (result beat the kill) or ErrConnLost —
	// nothing may hang, nothing may surface a mystery error.
	const n = 64
	futs := make([]*client.Future, n)
	for i := range futs {
		futs[i] = c.Submit("Deposit", depositArgs(int64(i%16), 1))
	}
	srv.Kill()
	db.Crash()

	var durable, lost int
	for i, f := range futs {
		_, err := f.Wait()
		switch {
		case err == nil:
			durable++
		case errors.Is(err, client.ErrConnLost):
			lost++
		case errors.Is(err, pacman.ErrCrashed):
			lost++ // result frame beat the kill, carrying the crash
		default:
			t.Fatalf("submit %d: unexpected outcome %v", i, err)
		}
	}
	t.Logf("at kill: %d durable, %d unknown", durable, lost)

	// Phase 2: a submission during the outage must park until the reconnect
	// (Submit blocks while the connection is down — that IS the flow
	// control), so it rides a goroutine here.
	outageCh := make(chan *client.Future, 1)
	go func() { outageCh <- c.Submit("Deposit", depositArgs(7, 5)) }()
	select {
	case f := <-outageCh:
		t.Fatalf("outage submit returned with no server: %v", f.Err())
	case <-time.After(20 * time.Millisecond):
	}

	// Phase 3: recover and serve the same address; the client's redial loop
	// finds the new incarnation on its own.
	db2, _, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := srv.Attach(db2); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("tcp", addr.String()); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := (<-outageCh).Wait(); err != nil {
		t.Fatalf("outage submit after restart: %v", err)
	}
	if _, err := c.Exec("Deposit", depositArgs(3, 2)); err != nil {
		t.Fatalf("post-restart exec: %v", err)
	}
}

// TestClientDrainAndClose checks the graceful half: a server Drain settles
// every in-flight future with a result before severing, and a closed client
// resolves (not hangs) anything submitted afterwards.
func TestClientDrainAndClose(t *testing.T) {
	db, srv, addr := launch(t, wire.ServerConfig{Workers: 2, Queue: 256})
	defer db.Close()

	c, err := client.Dial("tcp", addr.String(), client.Config{Window: 32, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	futs := make([]*client.Future, n)
	for i := range futs {
		futs[i] = c.Submit("Deposit", depositArgs(int64(i%16), 1))
	}
	srv.Drain(5 * time.Second)

	for i, f := range futs {
		_, err := f.Wait()
		if err != nil && !errors.Is(err, client.ErrConnLost) {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err != nil {
			// Tolerated only for requests the drain race never admitted;
			// admitted ones must have settled durable above.
			t.Logf("submit %d lost in drain race: %v", i, err)
		}
	}

	c.Close()
	if _, err := c.Exec("Deposit", depositArgs(1, 1)); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("post-close exec: %v", err)
	}
}

// TestClientKeepAliveDetectsStalledServer handshakes against a fake server
// that then goes silent — it accepts frames into the kernel buffer but
// never answers anything, the wedged-peer case a dead TCP connection never
// exercises. With KeepAlive on, the client must ping, miss the answer,
// fail the link (resolving the in-flight future ErrConnLost) — all without
// a Submit ever timing out on its own.
func TestClientKeepAliveDetectsStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Fake server: complete the PAC1 handshake, then stall forever.
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		h, p, err := wire.ReadFrame(nc, nil)
		if err != nil || h.Type != wire.FrameHello {
			nc.Close()
			return
		}
		if _, _, err := wire.ParseHello(p); err != nil {
			nc.Close()
			return
		}
		ack := wire.AppendHelloAck(nil, wire.V1, wire.DefaultWindow, []string{"Deposit"})
		wire.WriteFrame(nc, wire.Header{Type: wire.FrameHelloAck}, ack)
		// Stall: never read, never write again. Keep nc open so the TCP
		// stack gives the client no error of its own.
		select {}
	}()

	const interval = 20 * time.Millisecond
	c, err := client.Dial("tcp", ln.Addr().String(), client.Config{
		Window: 4, KeepAlive: interval,
		DialTimeout: time.Second, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	fut := c.Submit("Deposit", depositArgs(1, 1))

	// The prober needs one idle interval to send the Ping and one more to
	// miss the Pong; anything beyond ~5 intervals means keepalive is not
	// doing its job.
	select {
	case <-fut.Done():
	case <-time.After(10 * interval):
		t.Fatal("keepalive did not fail the stalled link")
	}
	if _, err := fut.Wait(); !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("stalled-link future: want ErrConnLost, got %v", err)
	}
}
