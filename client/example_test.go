package client_test

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/wire"
	"pacman/internal/workload"
)

// ExampleDial runs a pacmand server on a unix socket and drives it through
// the client: Dial, one synchronous durable Exec, one pipelined batch of
// Submits, graceful shutdown.
func ExampleDial() {
	spec := workload.Spec(workload.NewBank(8))
	bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
	db, err := pacman.Launch(bp, pacman.Options{Logging: pacman.CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		panic(err)
	}
	srv := wire.NewServer(wire.ServerConfig{Workers: 2})
	if err := srv.Attach(db); err != nil {
		panic(err)
	}
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("pacmand-example-%d.sock", os.Getpid()))
	defer os.Remove(sock)
	if _, err := srv.Listen("unix", sock); err != nil {
		panic(err)
	}

	c, err := client.Dial("unix", sock, client.Config{Window: 16})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Exec waits for the Result frame: executed AND durable on the server.
	ts, err := c.Exec("Deposit", pacman.Args{pacman.A(pacman.I(3)), pacman.A(pacman.I(25)), pacman.A(pacman.I(1))})
	fmt.Println("durable:", err == nil && ts != 0)

	// Submit pipelines: all four ride the connection concurrently, each
	// future resolving when its epoch is released — order not guaranteed.
	var futs []*client.Future
	for i := int64(1); i <= 4; i++ {
		futs = append(futs, c.Submit("Deposit", pacman.Args{pacman.A(pacman.I(i)), pacman.A(pacman.I(1)), pacman.A(pacman.I(1))}))
	}
	allDurable := true
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			allDurable = false
		}
	}
	fmt.Println("batch durable:", allDurable)

	srv.Drain(5 * time.Second) // settle in-flight work, announce GoAway, close
	db.Close()
	// Output:
	// durable: true
	// batch durable: true
}
