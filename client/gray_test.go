package client_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"pacman/client"
	"pacman/internal/wire"
)

// backpressureServer is a fake PAC1 endpoint: it completes the handshake
// and answers every Submit with a Backpressure frame, never executing
// anything — the wire behavior of an instance held in brownout.
func backpressureServer(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				h, p, err := wire.ReadFrame(nc, nil)
				if err != nil || h.Type != wire.FrameHello {
					return
				}
				if _, _, err := wire.ParseHello(p); err != nil {
					return
				}
				ack := wire.AppendHelloAck(nil, wire.V1, wire.DefaultWindow, []string{"Deposit"})
				if wire.WriteFrame(nc, wire.Header{Type: wire.FrameHelloAck}, ack) != nil {
					return
				}
				buf := []byte(nil)
				for {
					h, p, err := wire.ReadFrame(nc, buf)
					if err != nil {
						return
					}
					buf = p
					switch h.Type {
					case wire.FrameSubmit:
						bp := wire.AppendBackpressure(nil, 1, 1)
						if wire.WriteFrame(nc, wire.Header{Type: wire.FrameBackpressure, ReqID: h.ReqID}, bp) != nil {
							return
						}
					case wire.FramePing:
						if wire.WriteFrame(nc, wire.Header{Type: wire.FramePong, ReqID: h.ReqID}, nil) != nil {
							return
						}
					}
				}
			}(nc)
		}
	}()
	return ln.Addr()
}

// TestClientRetryBudgetExhaustion: a server shedding every Submit must
// produce a typed ErrBackpressure failure after exactly RetryBudget
// attempts — never an unbounded retry storm — with the attempt count on
// the StatusError and the shed visible in Stats.
func TestClientRetryBudgetExhaustion(t *testing.T) {
	addr := backpressureServer(t)
	const budget = 3
	c, err := client.Dial("tcp", addr.String(), client.Config{
		Window: 4, RetryBudget: budget,
		BackoffMin: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, werr := c.Submit("Deposit", depositArgs(1, 1)).Wait()
	if werr == nil {
		t.Fatal("submit against a shedding server succeeded")
	}
	if !errors.Is(werr, wire.ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", werr)
	}
	var se *wire.StatusError
	if !errors.As(werr, &se) || se.Attempts != budget {
		t.Fatalf("err = %#v, want StatusError with Attempts=%d", werr, budget)
	}
	// Budget of 3 means at most 2 backoffs of <= 4ms each; generous bound.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget exhaustion took %v; retries not bounded", elapsed)
	}
	st := c.Stats()
	if st.Shed != 1 || st.Retries != budget-1 {
		t.Fatalf("stats = %+v, want Shed=1 Retries=%d", st, budget-1)
	}
}

// TestClientPingRTT: Ping round-trips populate the liveness telemetry —
// pong counts and a smoothed RTT — against a real server.
func TestClientPingRTT(t *testing.T) {
	db, srv, addr := launch(t, wire.ServerConfig{Workers: 2, Queue: 16, Window: 16})
	defer db.Close()
	defer srv.Close()

	c, err := client.Dial("tcp", addr.String(), client.Config{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Pongs < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("pongs never arrived: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.Pings < 3 || st.RTT <= 0 || st.LastRTT <= 0 {
		t.Fatalf("stats = %+v, want pings>=3 and positive RTT", st)
	}
}
