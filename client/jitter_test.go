package client

import (
	"testing"
	"time"
)

// TestJitterBackoffBounds: every draw is in (0, min(max, min<<attempt)],
// including the shift-overflow regime at absurd attempt counts.
func TestJitterBackoffBounds(t *testing.T) {
	const min, max = 5 * time.Millisecond, 100 * time.Millisecond
	for attempt := 0; attempt <= 64; attempt++ {
		cap := min << attempt
		if attempt >= 30 || cap <= 0 || cap > max {
			cap = max
		}
		for i := 0; i < 50; i++ {
			d := jitterBackoff(min, max, attempt)
			if d <= 0 || d > cap {
				t.Fatalf("attempt %d: draw %v outside (0, %v]", attempt, d, cap)
			}
		}
	}
}

// TestJitterBackoffFullJitter: the delay is drawn across the whole range,
// not a deterministic doubling — 200 draws at a fixed attempt must spread
// into both the bottom and top quarters of the cap (the odds of missing
// either are (3/4)^200).
func TestJitterBackoffFullJitter(t *testing.T) {
	const min, max = 4 * time.Millisecond, time.Second
	cap := min << 3 // attempt 3: 32ms
	low, high := false, false
	for i := 0; i < 200; i++ {
		d := jitterBackoff(min, max, 3)
		if d <= cap/4 {
			low = true
		}
		if d > 3*cap/4 {
			high = true
		}
	}
	if !low || !high {
		t.Fatalf("draws not spread across the range: low=%v high=%v", low, high)
	}
}

// TestJitterBackoffDegenerate: zero/negative budgets must not panic or
// return negative delays.
func TestJitterBackoffDegenerate(t *testing.T) {
	if d := jitterBackoff(0, 0, 0); d != 0 {
		t.Fatalf("zero budgets: %v, want 0", d)
	}
	if d := jitterBackoff(time.Millisecond, time.Millisecond, 0); d <= 0 || d > time.Millisecond {
		t.Fatalf("min==max: %v outside (0, 1ms]", d)
	}
}
