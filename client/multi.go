package client

import (
	"fmt"

	"pacman"
)

// Multi is a fixed fan-out of Clients, one per shard endpoint, dialed
// together and closed together. It is the transport a shard router holds
// toward its backside: shard index in, pipelined futures out. Multi adds
// no routing policy of its own — callers (internal/shard.Router) decide
// which shard a request belongs to.
type Multi struct {
	clients []*Client
}

// DialMulti connects to every address in order (all on the same network,
// "tcp" or "unix") with the same Config. If any dial fails, the already
// connected clients are closed and the error names the failing endpoint.
func DialMulti(network string, addrs []string, cfg Config) (*Multi, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: DialMulti needs at least one address")
	}
	m := &Multi{clients: make([]*Client, 0, len(addrs))}
	for _, addr := range addrs {
		c, err := Dial(network, addr, cfg)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("client: dial shard %d (%s): %w", len(m.clients), addr, err)
		}
		m.clients = append(m.clients, c)
	}
	return m, nil
}

// Len returns the number of shard endpoints.
func (m *Multi) Len() int { return len(m.clients) }

// Client returns the underlying Client for one shard, for operations Multi
// does not wrap (Ping, Exec).
func (m *Multi) Client(shard int) *Client { return m.clients[shard] }

// Submit forwards an ordinary invocation to one shard.
func (m *Multi) Submit(shard int, name string, args pacman.Args) *Future {
	return m.clients[shard].Submit(name, args)
}

// Prepare sends a 2PC prepare piece to one shard; the future resolves nil
// when the piece's effects are durable at that shard's pepoch.
func (m *Multi) Prepare(shard int, name string, args pacman.Args) *Future {
	return m.clients[shard].Prepare(name, args)
}

// Decide sends a 2PC decide piece (commit-apply or abort-release) to one
// shard. Decide pieces are idempotent, so re-delivery after a router
// restart is safe.
func (m *Multi) Decide(shard int, name string, args pacman.Args) *Future {
	return m.clients[shard].Decide(name, args)
}

// Close closes every connected client.
func (m *Multi) Close() {
	for _, c := range m.clients {
		c.Close()
	}
}
