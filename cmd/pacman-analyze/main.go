// pacman-analyze dumps the static-analysis artifacts (local and global
// dependency graphs) for the built-in workloads — the tool form of the
// paper's Figures 3-5 and 21 — and, with -scan, analyzes a *live* instance
// instead: it launches the workload, drives concurrent writers, and streams
// consistent snapshot scans over the multi-version store without ever
// aborting them.
//
//	pacman-analyze -workload tpcc
//	pacman-analyze -scan -duration 2s
package main

import (
	"flag"
	"fmt"
	"log"

	"pacman/internal/analysis"
	"pacman/internal/chopping"
	"pacman/internal/proc"
	"pacman/internal/workload"
)

func main() {
	which := flag.String("workload", "tpcc", "bank | tpcc | smallbank")
	withChopping := flag.Bool("chopping", false, "also print the transaction-chopping decomposition")
	scan := flag.Bool("scan", false, "live mode: launch smallbank, drive writers, and stream consistent snapshot scans")
	scanDur := flag.Duration("duration", 0, "with -scan, how long to drive load (default 1s)")
	flag.Parse()

	if *scan {
		if err := liveScan(*scanDur); err != nil {
			log.Fatal(err)
		}
		return
	}

	var procs []*proc.Compiled
	switch *which {
	case "bank":
		b := workload.NewBank(10)
		procs = []*proc.Compiled{b.Transfer, b.Deposit}
	case "tpcc":
		procs = workload.NewTPCC(workload.DefaultTPCCConfig()).LoggingProcs()
	case "smallbank":
		procs = workload.NewSmallbank(workload.DefaultSmallbankConfig()).LoggingProcs()
	default:
		log.Fatalf("unknown workload %q", *which)
	}

	var ldgs []*analysis.LDG
	for _, c := range procs {
		l := analysis.BuildLDG(c)
		ldgs = append(ldgs, l)
		fmt.Print(l.String())
		fmt.Println()
	}
	fmt.Print(analysis.BuildGDG(ldgs).String())

	if *withChopping {
		fmt.Println("\n--- transaction chopping ---")
		chopped := chopping.Decompose(procs)
		for _, l := range chopped {
			fmt.Print(l.String())
			fmt.Println()
		}
		fmt.Print(analysis.BuildGDG(chopped).String())
	}
}
