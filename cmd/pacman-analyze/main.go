// pacman-analyze dumps the static-analysis artifacts (local and global
// dependency graphs) for the built-in workloads — the tool form of the
// paper's Figures 3-5 and 21.
//
//	pacman-analyze -workload tpcc
package main

import (
	"flag"
	"fmt"
	"log"

	"pacman/internal/analysis"
	"pacman/internal/chopping"
	"pacman/internal/proc"
	"pacman/internal/workload"
)

func main() {
	which := flag.String("workload", "tpcc", "bank | tpcc | smallbank")
	withChopping := flag.Bool("chopping", false, "also print the transaction-chopping decomposition")
	flag.Parse()

	var procs []*proc.Compiled
	switch *which {
	case "bank":
		b := workload.NewBank(10)
		procs = []*proc.Compiled{b.Transfer, b.Deposit}
	case "tpcc":
		procs = workload.NewTPCC(workload.DefaultTPCCConfig()).LoggingProcs()
	case "smallbank":
		procs = workload.NewSmallbank(workload.DefaultSmallbankConfig()).LoggingProcs()
	default:
		log.Fatalf("unknown workload %q", *which)
	}

	var ldgs []*analysis.LDG
	for _, c := range procs {
		l := analysis.BuildLDG(c)
		ldgs = append(ldgs, l)
		fmt.Print(l.String())
		fmt.Println()
	}
	fmt.Print(analysis.BuildGDG(ldgs).String())

	if *withChopping {
		fmt.Println("\n--- transaction chopping ---")
		chopped := chopping.Decompose(procs)
		for _, l := range chopped {
			fmt.Print(l.String())
			fmt.Println()
		}
		fmt.Print(analysis.BuildGDG(chopped).String())
	}
}
