package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/internal/workload"
)

// liveScan is the online-analytics face of the multi-version subsystem: it
// launches Smallbank under command logging, drives a balance-conserving
// writer mix (SendPayment + Amalgamate move money, never create it), and
// repeatedly scans SAVINGS+CHECKING through snapshot views. Each scan pins
// a released epoch, so every printed total must equal the seeded total
// exactly — money observed mid-flight would mean the cut is not consistent
// — and no scan can abort a writer, because snapshot reads never join OCC
// validation. The closing MVCC stats show garbage collection keeping the
// retained history bounded while the scans run.
func liveScan(dur time.Duration) error {
	if dur <= 0 {
		dur = time.Second
	}
	cfg := workload.SmallbankConfig{Customers: 2_000, HotspotPct: 25}
	spec := workload.Spec(workload.NewSmallbank(cfg))
	db, err := pacman.Launch(pacman.Blueprint{
		Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed,
	}, pacman.Options{
		Logging:       pacman.CommandLogging,
		EpochInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 2})
	defer fe.Close()

	// 2000 savings + 1000 checking per customer (the Smallbank population).
	expected := float64(cfg.Customers) * 3000

	var committed, aborted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c1 := pacman.I(1 + rng.Int63n(int64(cfg.Customers)))
				c2 := pacman.I(1 + rng.Int63n(int64(cfg.Customers)))
				var err error
				if rng.Intn(4) == 0 {
					_, err = fe.Exec("Amalgamate", pacman.Args{pacman.A(c1), pacman.A(c2)})
				} else {
					amt := pacman.F(1 + float64(rng.Intn(5000))/100)
					_, err = fe.Exec("SendPayment", pacman.Args{pacman.A(c1), pacman.A(c2), pacman.A(amt)})
				}
				if err != nil {
					aborted.Add(1)
				} else {
					committed.Add(1)
				}
			}
		}(int64(c) + 1)
	}

	fmt.Printf("=== live snapshot scans: smallbank, %d customers, conserving mix, %v ===\n", cfg.Customers, dur)
	fmt.Printf("expected total (conserved): %.0f\n\n", expected)
	deadline := time.After(dur)
	tick := time.NewTicker(dur / 8)
	defer tick.Stop()
scanning:
	for {
		select {
		case <-deadline:
			break scanning
		case <-tick.C:
		}
		// One view across both tables: Amalgamate moves money between
		// SAVINGS and CHECKING, so the conservation check needs a single
		// cross-table cut, not two per-table cuts at different epochs.
		v, err := db.SnapshotView(0)
		if err != nil {
			return err
		}
		var total float64
		var rows int64
		for _, table := range []string{"SAVINGS", "CHECKING"} {
			v.Scan(db.Table(table), 0, ^uint64(0), func(_ uint64, row pacman.Tuple) bool {
				total += row[1].Float()
				rows++
				return true
			})
		}
		epoch := v.Epoch()
		v.Close()
		// Cent-granular amounts accumulate ~1e-9 float error over 4000
		// rows; anything beyond that is a real inconsistency.
		verdict := "CONSISTENT"
		if diff := total - expected; diff > 1e-3 || diff < -1e-3 {
			verdict = fmt.Sprintf("INCONSISTENT %+.2f", diff)
		}
		fmt.Printf("scan epoch=%-6d staleness=%-3d rows=%-6d total=%-12.0f %s\n",
			epoch, db.Epoch()-epoch, rows, total, verdict)
	}
	close(stop)
	wg.Wait()

	st := db.MVCCStats()
	fmt.Printf("\nwriters: committed=%d aborted=%d (scans abort no one; aborts are OCC conflicts between writers)\n",
		committed.Load(), aborted.Load())
	fmt.Printf("mvcc: reclaimed=%d passes=%d max_chain=%d gc_floor=%d views=%d\n",
		st.Reclaimed, st.Passes, st.MaxChain, st.Floor, st.Views)
	return nil
}
