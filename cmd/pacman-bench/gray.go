package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/internal/harness"
	"pacman/internal/simdisk"
	"pacman/internal/torture"
	"pacman/internal/workload"
)

// grayExp measures behavior under gray failures — devices that get slow or
// hang without fail-stopping. Deadline-bounded traffic runs against a
// healthy baseline and against injected slow-sync and hung-sync devices;
// each scenario reports client-observed throughput, the deadline-miss and
// brownout-shed split, and watchdog activity. A seeded gray torture sweep
// (watchdog detection, recovery, durability oracle across a final crash)
// closes the experiment.
func grayExp(w io.Writer, s harness.Scale) error {
	const deadline = 50 * time.Millisecond
	dur := s.Duration
	if dur > 3*time.Second {
		dur = 3 * time.Second
	}
	type scenario struct {
		name  string
		fault *simdisk.DeviceFaults
	}
	scenarios := []scenario{
		{"none", nil},
		{"slow-sync", &simdisk.DeviceFaults{SyncDelay: 40 * time.Millisecond}},
		{"hung-sync", &simdisk.DeviceFaults{HangSyncAfter: 1}},
	}

	fmt.Fprintln(w, "=== Gray failures: deadline-bounded traffic vs slow and hung devices ===")
	fmt.Fprintf(w, "smallbank/CL, %d clients, %v deadline, %v per scenario\n", s.Workers, deadline, dur)
	for _, sc := range scenarios {
		spec := workload.Spec(workload.NewSmallbank(workload.DefaultSmallbankConfig()))
		bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
		db, err := pacman.Launch(bp, pacman.Options{
			Logging:       pacman.CommandLogging,
			EpochInterval: time.Millisecond,
			Health: pacman.HealthConfig{
				Interval: 2 * time.Millisecond, TripAfter: 2, ClearAfter: 4,
				SyncLatencyBudget: 20 * time.Millisecond,
			},
		})
		if err != nil {
			return err
		}
		fe := db.MustFrontend(pacman.FrontendConfig{})

		var plan *simdisk.FaultPlan
		if sc.fault != nil {
			plan = &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{}}
			for _, dev := range db.Devices() {
				plan.Devs[dev.Name()] = sc.fault
			}
			plan.Arm(db.Devices()...)
		}

		var committed, missed, shed, other atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < s.Workers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c)*104729 + 1))
				const window = 32
				inflight := make([]*pacman.Future, 0, window)
				reap := func(f *pacman.Future) {
					switch _, err := f.Wait(); {
					case err == nil:
						committed.Add(1)
					case errors.Is(err, pacman.ErrDeadlineExceeded):
						missed.Add(1)
					case errors.Is(err, pacman.ErrBrownout):
						shed.Add(1)
					default:
						other.Add(1)
					}
				}
				for !stop.Load() {
					if fe.Brownout() {
						// Shed fast path: trickle so the watchdog keeps
						// seeing sync evidence, don't spin on rejections.
						time.Sleep(time.Millisecond)
					}
					acct := 1 + rng.Int63n(10_000)
					amt := pacman.A(pacman.F(float64(1 + rng.Int63n(99))))
					args := pacman.Args{pacman.A(pacman.I(acct)), amt}
					inflight = append(inflight, fe.SubmitWithin("DepositChecking", args, deadline))
					if len(inflight) == window {
						reap(inflight[0])
						inflight = inflight[1:]
					}
				}
				for _, f := range inflight {
					reap(f)
				}
			}(c)
		}
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		elapsed := time.Since(start)
		snap := db.Health()
		if plan != nil {
			plan.Disarm() // heal hung syncs so Close joins the pipeline cleanly
		}
		fe.Close()
		db.Close()

		n := committed.Load()
		total := n + missed.Load() + shed.Load() + other.Load()
		missPct := 0.0
		if total > 0 {
			missPct = 100 * float64(missed.Load()) / float64(total)
		}
		fmt.Fprintf(w, "%-9s %8.0f tps  %6d committed  %6d deadline-missed (%.1f%%)  %6d brownout-shed  %2d brownouts  state=%s\n",
			sc.name, float64(n)/elapsed.Seconds(), n, missed.Load(), missPct, shed.Load(), snap.Brownouts, snap.State)
	}

	// Torture phase: seeded gray cycles with the full oracle — watchdog
	// must detect each injected slow fault, recover after it lifts, and
	// durability must hold across the ending crash.
	seeds, cycles, txns := 2, 2, 800
	if !s.Short {
		seeds, cycles, txns = 4, 3, 2000
	}
	var total torture.Stats
	start := time.Now()
	for i := 0; i < seeds; i++ {
		st, err := torture.RunGray(torture.GrayConfig{
			Config: torture.Config{Seed: int64(1 + i), Cycles: cycles, TxnsPerCycle: txns},
		})
		if err != nil {
			fmt.Fprintf(w, "gray torture seed %d: FAILED\n%v\n", 1+i, err)
			return err
		}
		total.Cycles += st.Cycles
		total.Acked += st.Acked
		total.Maybe += st.Maybe
		total.DeadlineExpired += st.DeadlineExpired
		total.Shed += st.Shed
		total.Brownouts += st.Brownouts
		total.Stamps += st.Stamps
	}
	fmt.Fprintf(w, "gray torture: %d cycles, %d acked, %d maybe, %d deadline-expired, %d shed, %d brownouts, %d stamps verified (%v) — oracle green\n",
		total.Cycles, total.Acked, total.Maybe, total.DeadlineExpired, total.Shed, total.Brownouts, total.Stamps, time.Since(start).Round(time.Millisecond))
	return nil
}
