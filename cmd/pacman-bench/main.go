// pacman-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper plots.
//
//	pacman-bench -exp fig14            # one experiment, bench scale
//	pacman-bench -exp all -full        # everything, full scale (slow)
//	pacman-bench -list                 # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"pacman/internal/harness"
)

var experiments = map[string]func(io.Writer, harness.Scale) error{
	"fig11a":  func(w io.Writer, s harness.Scale) error { return harness.Fig11(w, s, 1) },
	"fig11b":  func(w io.Writer, s harness.Scale) error { return harness.Fig11(w, s, 2) },
	"table1":  harness.Table1,
	"fig12":   harness.Fig12,
	"fig13":   harness.Fig13,
	"fig14":   harness.Fig14,
	"fig15":   harness.Fig15,
	"fig16":   harness.Fig16,
	"fig17":   harness.Fig17,
	"fig18":   harness.Fig18,
	"fig19":   harness.Fig19,
	"fig20":   harness.Fig20,
	"fig21":   harness.Fig21,
	"table2":  harness.Table2,
	"table3":  harness.Table3,
	"reload":  harness.FigReload,
	"latency": harness.FigLatency,
}

func main() {
	exp := flag.String("exp", "", "experiment id (fig11a..fig21, table1..table3, reload, latency, or 'all')")
	full := flag.Bool("full", false, "full scale (minutes per experiment) instead of bench scale")
	list := flag.Bool("list", false, "list experiment ids")
	duration := flag.Duration("duration", 0, "override logging-run duration")
	workers := flag.Int("workers", 0, "override OLTP worker count")
	warehouses := flag.Int("warehouses", 0, "override TPC-C warehouse count")
	flag.Parse()

	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	scale := harness.DefaultScale(!*full)
	if *duration > 0 {
		scale.Duration = *duration
	}
	if *workers > 0 {
		scale.Workers = *workers
	}
	if *warehouses > 0 {
		scale.Warehouses = *warehouses
	}

	run := func(id string) {
		fn, ok := experiments[id]
		if !ok {
			log.Fatalf("unknown experiment %q; use -list", id)
		}
		start := time.Now()
		if err := fn(os.Stdout, scale); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	switch *exp {
	case "":
		log.Fatal("missing -exp; use -list to enumerate")
	case "all":
		for _, id := range ids {
			run(id)
		}
	default:
		for _, id := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(id))
		}
	}
}
