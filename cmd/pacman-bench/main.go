// pacman-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper plots.
//
//	pacman-bench -exp fig14            # one experiment, bench scale
//	pacman-bench -exp all -full        # everything, full scale (slow)
//	pacman-bench -list                 # enumerate experiments
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pacman/internal/harness"
)

var experiments = map[string]func(io.Writer, harness.Scale) error{
	"fig11a":     func(w io.Writer, s harness.Scale) error { return harness.Fig11(w, s, 1) },
	"fig11b":     func(w io.Writer, s harness.Scale) error { return harness.Fig11(w, s, 2) },
	"table1":     harness.Table1,
	"fig12":      harness.Fig12,
	"fig13":      harness.Fig13,
	"fig14":      harness.Fig14,
	"fig15":      harness.Fig15,
	"fig16":      harness.Fig16,
	"fig17":      harness.Fig17,
	"fig18":      harness.Fig18,
	"fig19":      harness.Fig19,
	"fig20":      harness.Fig20,
	"fig21":      harness.Fig21,
	"table2":     harness.Table2,
	"table3":     harness.Table3,
	"reload":     harness.FigReload,
	"latency":    harness.FigLatency,
	"throughput": harness.FigThroughput,
	"mixed":      harness.FigMixed,
	"restart":    restartSmoke,
	"torture":    tortureExp,
	"net":        netExp,
	"shard":      shardExp,
	"gray":       grayExp,
	"scaling":    harness.FigScaling,
}

// benchResult is the machine-readable record one experiment run emits when
// -json is set, written to BENCH_<experiment>.json.
type benchResult struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	Workers    int     `json:"workers"`
	DurationMS float64 `json:"duration_ms"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	OK         bool    `json:"ok"`
	Error      string  `json:"error,omitempty"`
	// Output is the experiment's full text report (the rows/series the
	// paper plots), preserved so downstream tooling can diff runs.
	Output string `json:"output"`
}

// writeJSON persists one experiment's result as BENCH_<id>.json under dir.
func writeJSON(dir, id string, res benchResult) error {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), append(b, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "", "experiment id (fig11a..fig21, table1..table3, reload, latency, throughput, mixed, restart, torture, net, shard, gray, scaling, or 'all')")
	full := flag.Bool("full", false, "full scale (minutes per experiment) instead of bench scale")
	list := flag.Bool("list", false, "list experiment ids")
	duration := flag.Duration("duration", 0, "override logging-run duration")
	workers := flag.Int("workers", 0, "override OLTP worker count")
	warehouses := flag.Int("warehouses", 0, "override TPC-C warehouse count")
	seed := flag.Int64("seed", 0, "torture experiment: first seed to sweep (reproduces a reported oracle violation)")
	iters := flag.Int("iters", 0, "torture experiment: how many consecutive seeds to sweep")
	cycles := flag.Int("cycles", 0, "torture experiment: crash/restart cycles per run (violation reports print the value to pass)")
	txns := flag.Int("txns", 0, "torture experiment: transaction budget per cycle (violation reports print the value to pass)")
	force := flag.Bool("force", false, "torture experiment: with -seed, pin the forced crash-during-Restart flag of the reproduced run")
	jsonDir := flag.String("json", "", "also write machine-readable BENCH_<experiment>.json results into this directory")
	flag.Parse()

	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}
	scale := harness.DefaultScale(!*full)
	if *duration > 0 {
		scale.Duration = *duration
	}
	if *workers > 0 {
		scale.Workers = *workers
	}
	if *warehouses > 0 {
		scale.Warehouses = *warehouses
	}
	scale.TortureSeed = *seed
	scale.TortureIters = *iters
	scale.TortureCycles = *cycles
	scale.TortureTxns = *txns
	scale.TortureForce = *force

	run := func(id string) {
		fn, ok := experiments[id]
		if !ok {
			log.Fatalf("unknown experiment %q; use -list", id)
		}
		var out io.Writer = os.Stdout
		var buf bytes.Buffer
		if *jsonDir != "" {
			out = io.MultiWriter(os.Stdout, &buf)
		}
		start := time.Now()
		err := fn(out, scale)
		elapsed := time.Since(start)
		if *jsonDir != "" {
			mode := "bench"
			if *full {
				mode = "full"
			}
			res := benchResult{
				Experiment: id,
				Scale:      mode,
				Workers:    scale.Workers,
				DurationMS: float64(scale.Duration.Microseconds()) / 1e3,
				ElapsedMS:  float64(elapsed.Microseconds()) / 1e3,
				OK:         err == nil,
				Output:     buf.String(),
			}
			if err != nil {
				res.Error = err.Error()
			}
			if werr := writeJSON(*jsonDir, id, res); werr != nil {
				log.Fatalf("%s: writing json: %v", id, werr)
			}
		}
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))
	}

	switch *exp {
	case "":
		log.Fatal("missing -exp; use -list to enumerate")
	case "all":
		for _, id := range ids {
			run(id)
		}
	default:
		for _, id := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(id))
		}
	}
}
