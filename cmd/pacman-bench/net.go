package main

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/harness"
	"pacman/internal/metrics"
	"pacman/internal/torture"
	"pacman/internal/wire"
	"pacman/internal/workload"
)

// netExp benches the wire protocol end to end on loopback TCP: a pacmand
// server in front of a Smallbank instance under command logging, driven by
// the public client package with pipelined bounded windows. Every number is
// client-observed — throughput counts durable acks at the caller, and the
// latency histogram is submit-to-durable across the socket, so the report
// is what a remote application would actually see (group-commit epoch
// release included). A short network torture phase follows: daemon killed
// mid-load, recovered, proved serving over the socket, oracle verified.
func netExp(w io.Writer, s harness.Scale) error {
	spec := workload.Spec(workload.NewSmallbank(workload.DefaultSmallbankConfig()))
	bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
	db, err := pacman.Launch(bp, pacman.Options{
		Logging:       pacman.CommandLogging,
		EpochInterval: time.Millisecond,
	})
	if err != nil {
		return err
	}
	srv := wire.NewServer(wire.ServerConfig{Workers: s.Workers, Queue: 64 * s.Workers})
	if err := srv.Attach(db); err != nil {
		return err
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}

	nClients, window := s.Workers, 64
	fmt.Fprintln(w, "=== Wire protocol loopback: client-observed throughput and durable latency ===")
	fmt.Fprintf(w, "smallbank/CL over tcp %s: %d clients x window %d, %v\n", addr, nClients, window, s.Duration)

	var (
		hist      metrics.Histogram
		committed atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial("tcp", addr.String(), client.Config{Window: window})
			if err != nil {
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
			inflight := make([]*client.Future, 0, window)
			reap := func(f *client.Future) {
				if _, err := f.Wait(); err == nil {
					committed.Add(1)
					hist.Record(f.Latency())
				}
			}
			for !stop.Load() {
				c1 := 1 + rng.Int63n(10_000)
				amt := pacman.A(pacman.F(float64(1 + rng.Int63n(99))))
				inflight = append(inflight, cl.Submit("DepositChecking", pacman.Args{pacman.A(pacman.I(c1)), amt}))
				if len(inflight) == window {
					reap(inflight[0])
					inflight = inflight[1:]
				}
			}
			for _, f := range inflight {
				reap(f)
			}
		}(c)
	}
	time.Sleep(s.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	srv.Drain(10 * time.Second)
	db.Close()

	n := committed.Load()
	fmt.Fprintf(w, "committed %d durable txns in %v: %.0f tps\n", n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Fprintf(w, "durable latency: p50 %v  p99 %v  max %v\n",
		hist.Percentile(50).Round(time.Microsecond), hist.Percentile(99).Round(time.Microsecond), hist.Max().Round(time.Microsecond))

	// Crash phase: the same wire path under the torture oracle — kill the
	// daemon mid-conversation, Restart, re-Listen, prove serving through a
	// prober that survives the outage.
	cycles, txns := 3, 250
	if !s.Short {
		cycles, txns = 4, 400
	}
	st, err := torture.RunNet(torture.NetConfig{
		Config: torture.Config{
			Seed:               1,
			Cycles:             cycles,
			TxnsPerCycle:       txns,
			Workers:            s.Workers,
			Clients:            s.Workers,
			ForceRecoveryCrash: true,
		},
		Network: "tcp",
	})
	if err != nil {
		fmt.Fprintf(w, "network torture: FAILED\n%v\n", err)
		return err
	}
	fmt.Fprintf(w, "network torture: %d kill/restart cycles, %d acked, %d maybe, %d crashes mid-recovery, %d stamps — oracle green\n",
		st.Cycles, st.Acked, st.Maybe, st.RecoveryCrashes, st.Stamps)
	return nil
}
