package main

import (
	"fmt"
	"io"
	"time"

	"pacman"
	"pacman/internal/harness"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// restartSmoke exercises the recover-then-serve lifecycle end to end at the
// public API: Launch a blueprint, serve traffic, crash, Restart on the same
// devices, serve more traffic through a fresh Frontend, crash again, and
// Restart once more — verifying that the second recovery replays both pre-
// and post-restart commits. It runs the round trip under command logging
// (CLR-P replay) and physical logging (PLR replay), and prints the restart
// wall time plus the time to the first durable post-restart transaction —
// the paper's actual figure of merit: how fast the system is back to
// serving.
func restartSmoke(w io.Writer, s harness.Scale) error {
	fmt.Fprintln(w, "=== Crash -> Restart -> serve: blueprint lifecycle round trip ===")
	txns := 4000
	if s.Short {
		txns = 1200
	}
	for _, kind := range []pacman.LogKind{pacman.CommandLogging, pacman.PhysicalLogging} {
		if err := restartRoundTrip(w, s, kind, txns); err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
	}
	return nil
}

func restartRoundTrip(w io.Writer, s harness.Scale, kind pacman.LogKind, txns int) error {
	const accounts = 200
	wk := workload.NewBank(accounts)
	spec := workload.Spec(wk)
	bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}

	db, err := pacman.Launch(bp, pacman.Options{
		Logging:       kind,
		Devices:       2,
		EpochInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	durable1, err := serveDeposits(db, s.Workers, txns, accounts)
	if err != nil {
		return err
	}
	db.Crash()

	threads := s.Threads[len(s.Threads)-1]
	cfg := pacman.RecoverConfig{Threads: threads}

	t0 := time.Now()
	db2, res1, err := pacman.Restart(db.Devices(), bp, cfg)
	if err != nil {
		return err
	}
	restartWall := time.Since(t0)
	if res1.Entries < durable1 {
		return fmt.Errorf("first restart replayed %d entries, want >= %d durable", res1.Entries, durable1)
	}
	// Prove the restarted instance serves: one synchronous durable commit.
	fe := db2.MustFrontend(pacman.FrontendConfig{Workers: 1})
	if _, err := fe.Exec("Deposit", depositArgs(1)); err != nil {
		return fmt.Errorf("first post-restart transaction: %w", err)
	}
	firstTxn := time.Since(t0)
	fe.Close()

	durable2, err := serveDeposits(db2, s.Workers, txns/2, accounts)
	if err != nil {
		return err
	}
	db2.Crash()

	db3, res2, err := pacman.Restart(db2.Devices(), bp, cfg)
	if err != nil {
		return err
	}
	if res2.Entries < res1.Entries+durable2 {
		return fmt.Errorf("second restart replayed %d entries, want >= %d pre- plus %d post-restart",
			res2.Entries, res1.Entries, durable2)
	}
	db3.Close()

	scheme := pacman.CLRP
	if kind == pacman.PhysicalLogging {
		scheme = pacman.PLR
	}
	fmt.Fprintf(w, "%v/%-5v restart %8v, first durable txn %8v; replayed %5d then %5d entries (gen1 %d + gen2 %d durable)\n",
		kind, scheme, restartWall.Round(time.Microsecond), firstTxn.Round(time.Microsecond),
		res1.Entries, res2.Entries, durable1, durable2)
	return nil
}

// serveDeposits pushes n Deposit transactions through a Frontend and
// reports how many reached durability (the rest died with the crash of a
// later phase or resolved ErrCrashed/ErrClosed — never silently).
func serveDeposits(db *pacman.DB, workers, n, accounts int) (int, error) {
	if workers <= 0 {
		workers = 2
	}
	fe, err := db.NewFrontend(pacman.FrontendConfig{Workers: workers})
	if err != nil {
		return 0, err
	}
	defer fe.Close()
	futs := make([]*pacman.Future, 0, n)
	for i := 0; i < n; i++ {
		futs = append(futs, fe.Submit("Deposit", depositArgs(1+i%accounts)))
	}
	durable := 0
	for _, f := range futs {
		if _, err := f.Wait(); err == nil {
			durable++
		}
	}
	return durable, nil
}

func depositArgs(account int) pacman.Args {
	return pacman.Args{
		proc.A(tuple.I(int64(account))),
		proc.A(tuple.I(1)),
		proc.A(tuple.I(1)),
	}
}
