package main

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/harness"
	"pacman/internal/shard"
	"pacman/internal/simdisk"
	"pacman/internal/wire"
)

// shardExp benches the sharded cluster end to end on loopback TCP: N shard
// instances behind wire servers, a pacman-router in front, and every
// transaction submitted through the router — so the numbers include the
// routing hop and, for cross-shard traffic, the full epoch-aligned 2PC
// round (prepare durable at each participant, decision logged, decides
// delivered). Two series:
//
//   - aggregate throughput at 1/2/4 shards under pure single-shard traffic
//     (the scaling claim: adding shards multiplies serving capacity);
//   - a cross-shard ratio sweep at 2 shards (0/5/20% of submissions are
//     cross-shard payments) documenting what the 2PC round costs.
//
// Each shard's devices are bandwidth-throttled the same way the logging
// experiments scale their SSDs, so the per-shard commit pipeline — not the
// shared benchmark process — is the ceiling that sharding multiplies.
func shardExp(w io.Writer, s harness.Scale) error {
	dur := s.Duration
	fmt.Fprintln(w, "=== Sharded cluster: aggregate throughput scaling and cross-shard 2PC cost ===")
	fmt.Fprintf(w, "smallbank/CL through pacman-router on loopback tcp, %v per cell\n", dur)

	var base float64
	for _, n := range []int{1, 2, 4} {
		tps, err := shardCell(s, n, 0, dur)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		if n == 1 {
			base = tps
			fmt.Fprintf(w, "shards=%d cross=0%%: %8.0f tps\n", n, tps)
		} else {
			fmt.Fprintf(w, "shards=%d cross=0%%: %8.0f tps (%.2fx one shard)\n", n, tps, tps/base)
		}
	}

	fmt.Fprintln(w, "cross-shard ratio sweep at 2 shards (2PC cost):")
	for _, pct := range []int{0, 5, 20} {
		tps, err := shardCell(s, 2, pct, dur)
		if err != nil {
			return fmt.Errorf("cross=%d%%: %w", pct, err)
		}
		fmt.Fprintf(w, "shards=2 cross=%2d%%: %8.0f tps\n", pct, tps)
	}
	return nil
}

// shardCell measures one cell: aggregate durable-ack throughput of a
// `shards`-wide cluster where crossPct percent of submissions are
// cross-shard SendPayments and the rest single-shard deposits.
func shardCell(s harness.Scale, shards, crossPct int, dur time.Duration) (float64, error) {
	const customers = 8192
	cluster := shard.NewSmallbankCluster(shard.Config{Shards: shards, Customers: customers})
	opts := func() pacman.Options {
		return cluster.ShardOptions(pacman.Options{
			Logging:       pacman.CommandLogging,
			Devices:       2,
			DeviceConfig:  harness.ScaledSSD(),
			EpochInterval: time.Millisecond,
		})
	}

	dbs := make([]*pacman.DB, shards)
	srvs := make([]*wire.Server, shards)
	addrs := make([]string, shards)
	for i := range dbs {
		db, err := pacman.Launch(cluster.ShardBlueprint(i), opts())
		if err != nil {
			return 0, err
		}
		srv := wire.NewServer(wire.ServerConfig{Workers: s.Workers, Queue: 64 * s.Workers})
		if err := srv.Attach(db); err != nil {
			return 0, err
		}
		bound, err := srv.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		dbs[i], srvs[i], addrs[i] = db, srv, bound.String()
	}
	defer func() {
		for _, srv := range srvs {
			srv.Close()
		}
		for _, db := range dbs {
			db.Close()
		}
	}()

	multi, err := client.DialMulti("tcp", addrs, client.Config{Window: 256})
	if err != nil {
		return 0, err
	}
	router, err := shard.NewRouter(cluster, multi, simdisk.New("router-2pc", simdisk.Config{}), shard.RouterConfig{QueueCap: 2048})
	if err != nil {
		return 0, err
	}
	defer router.Close()
	rsrv := wire.NewServer(wire.ServerConfig{})
	rsrv.AttachBackend(router)
	bound, err := rsrv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer rsrv.Close()

	// Offered load: enough pipelined windows to keep every configuration's
	// shards saturated, so the measured rate is capacity, not load.
	nClients, window := 8, 64
	var (
		committed atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial("tcp", bound.String(), client.Config{Window: window})
			if err != nil {
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
			inflight := make([]*client.Future, 0, window)
			reap := func(f *client.Future) {
				if _, err := f.Wait(); err == nil {
					committed.Add(1)
				}
			}
			for !stop.Load() {
				var fut *client.Future
				if shards > 1 && rng.Intn(100) < crossPct {
					// Cross-shard payment: both halves of the customer range,
					// so the debit and credit land on different shards.
					half := int64(customers / shards)
					c1 := 1 + rng.Int63n(half)
					c2 := half*int64(1+rng.Intn(shards-1)) + 1 + rng.Int63n(half)
					fut = cl.Submit("SendPayment", pacman.Args{
						pacman.A(pacman.I(c1)), pacman.A(pacman.I(c2)),
						pacman.A(pacman.F(float64(1 + rng.Int63n(49)))),
					})
				} else {
					c1 := 1 + rng.Int63n(customers)
					fut = cl.Submit("DepositChecking", pacman.Args{
						pacman.A(pacman.I(c1)), pacman.A(pacman.F(float64(1 + rng.Int63n(99)))),
					})
				}
				inflight = append(inflight, fut)
				if len(inflight) == window {
					reap(inflight[0])
					inflight = inflight[1:]
				}
			}
			for _, f := range inflight {
				reap(f)
			}
		}(c)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(committed.Load()) / elapsed.Seconds(), nil
}
