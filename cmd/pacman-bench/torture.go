package main

import (
	"fmt"
	"io"
	"time"

	"pacman"
	"pacman/internal/harness"
	"pacman/internal/torture"
)

// tortureExp runs the crash-injection torture matrix: seeded
// crash→Restart→serve cycles under every logging kind (plus a TPC-C run
// under command logging), verifying the durability/atomicity oracle after
// every recovery. It is the reproduction entry point printed by oracle
// violations: `pacman-bench -exp torture -seed <s>` re-derives the exact
// fault plans of the failing run (-iters controls how many seeds are swept
// starting there).
func tortureExp(w io.Writer, s harness.Scale) error {
	seeds := s.TortureIters
	if seeds <= 0 {
		seeds = 3
		if !s.Short {
			seeds = 10
		}
	}
	base := s.TortureSeed
	if base == 0 {
		base = 1
	}
	cycles, txns := 4, 400
	if s.Short {
		cycles, txns = 3, 250
	}
	if s.TortureCycles > 0 {
		cycles = s.TortureCycles
	}
	if s.TortureTxns > 0 {
		txns = s.TortureTxns
	}
	// Reproduction mode (-seed given): the force flag comes verbatim from
	// the violation report, because the fault-plan RNG stream depends on it.
	// Sweep mode: force the first seed so every sweep exercises a crash
	// mid-Restart.
	force := func(i int) bool {
		if s.TortureSeed != 0 {
			return s.TortureForce
		}
		return i == 0
	}

	fmt.Fprintln(w, "=== Crash-injection torture: fault plans, oracle, crash-during-recovery ===")
	fmt.Fprintf(w, "seeds %d..%d, %d cycles x %d txns per run\n", base, base+int64(seeds)-1, cycles, txns)
	type row struct {
		kind     pacman.LogKind
		workload string
	}
	rows := []row{
		{pacman.CommandLogging, torture.WorkloadSmallbank},
		{pacman.PhysicalLogging, torture.WorkloadSmallbank},
		{pacman.LogicalLogging, torture.WorkloadSmallbank},
		{pacman.CommandLogging, torture.WorkloadTPCC},
	}
	for _, r := range rows {
		var total torture.Stats
		start := time.Now()
		for i := 0; i < seeds; i++ {
			seed := base + int64(i)
			st, err := torture.Run(torture.Config{
				Seed:               seed,
				Cycles:             cycles,
				TxnsPerCycle:       txns,
				Logging:            r.kind,
				Workload:           r.workload,
				Workers:            s.Workers,
				Clients:            s.Workers,
				ForceRecoveryCrash: force(i),
			})
			if err != nil {
				fmt.Fprintf(w, "%v/%-9s seed %d: FAILED\n%v\n", r.kind, r.workload, seed, err)
				return err
			}
			total.Cycles += st.Cycles
			total.Acked += st.Acked
			total.AckedLogged += st.AckedLogged
			total.Maybe += st.Maybe
			total.Aborted += st.Aborted
			total.ServeTrips += st.ServeTrips
			total.RecoveryCrashes += st.RecoveryCrashes
			total.TransientReadFaults += st.TransientReadFaults
			total.Checkpoints += st.Checkpoints
			total.SnapScans += st.SnapScans
			total.Stamps += st.Stamps
		}
		fmt.Fprintf(w, "%v/%-9s %4d cycles: %6d acked, %5d maybe, %3d mid-serve trips, %3d crashes mid-recovery, %3d transient read faults, %3d ckpts, %5d snap scans, %5d stamps verified (%v)\n",
			r.kind, r.workload, total.Cycles, total.Acked, total.Maybe,
			total.ServeTrips, total.RecoveryCrashes, total.TransientReadFaults,
			total.Checkpoints, total.SnapScans, total.Stamps, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintln(w, "oracle: every acknowledged commit read back; no partial transaction visible; pepoch/resume/checkpoint invariants held; snapshot scans observed no torn pair and no mutable cut")
	return nil
}
