// pacman-router is the cluster routing coordinator: it speaks PAC1 to
// clients on its frontside and to a set of pacmand shard daemons on its
// backside (docs/PROTOCOL.md, "Cross-shard commit frames"). Single-shard
// invocations are forwarded untouched to the owning shard; cross-shard
// ones run the epoch-aligned two-phase commit with the coordinator's
// decision log on a local simulated device, so a restarted router settles
// every in-doubt transaction before serving.
//
// The shard daemons must be pacmand processes launched as cluster members
// with matching sizing, e.g. a 2-shard Smallbank cluster:
//
//	pacmand -tcp 127.0.0.1:7741 -shards 2 -shard 0
//	pacmand -tcp 127.0.0.1:7742 -shards 2 -shard 1
//	pacman-router -tcp 127.0.0.1:7733 -cluster 127.0.0.1:7741,127.0.0.1:7742
//
// Clients then dial the router exactly as they would a single pacmand.
// On SIGINT/SIGTERM the router drains its frontside and closes the shard
// links; a second signal exits immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pacman/client"
	"pacman/internal/shard"
	"pacman/internal/simdisk"
	"pacman/internal/wire"
)

func main() {
	tcp := flag.String("tcp", "127.0.0.1:7733", "frontside TCP listen address (empty to disable)")
	unix := flag.String("unix", "", "frontside unix socket path (empty to disable)")
	clusterAddrs := flag.String("cluster", "", "comma-separated shard endpoints, in shard order (required)")
	network := flag.String("network", "tcp", "network the shard endpoints speak: tcp or unix")
	customers := flag.Int("customers", 0, "smallbank customer count (must match the shards'; 0 = workload default)")
	queue := flag.Int("queue", 0, "concurrent-dispatch cap (full => backpressure frames; 0 = default)")
	window := flag.Int("window", wire.DefaultWindow, "per-connection in-flight window granted in HelloAck")
	backWindow := flag.Int("back-window", wire.DefaultWindow, "per-shard backside pipeline window")
	keepAlive := flag.Duration("keepalive", 250*time.Millisecond, "backside idle-link ping interval (0 to disable)")
	callTimeout := flag.Duration("call-timeout", 0, "default per-request deadline on backside forwards and prepares (0 = unbounded; required for the breaker to see hung shards)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive transport failures that open a shard's circuit breaker (0 = default)")
	breakerProbe := flag.Duration("breaker-probe", 0, "ping cadence for open breakers' shards (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight futures on shutdown")
	verbose := flag.Bool("v", false, "log routing and 2PC diagnostics")
	flag.Parse()

	if *tcp == "" && *unix == "" {
		log.Fatal("pacman-router: nothing to listen on (set -tcp and/or -unix)")
	}
	addrs := strings.Split(*clusterAddrs, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if *clusterAddrs == "" || len(addrs) == 0 {
		log.Fatal("pacman-router: -cluster requires at least one shard endpoint")
	}

	cluster := shard.NewSmallbankCluster(shard.Config{Shards: len(addrs), Customers: *customers})
	multi, err := client.DialMulti(*network, addrs, client.Config{
		Window:    *backWindow,
		KeepAlive: *keepAlive,
	})
	if err != nil {
		log.Fatalf("pacman-router: dialing shards: %v", err)
	}

	rcfg := shard.RouterConfig{
		QueueCap:         *queue,
		CallTimeout:      *callTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerProbe:     *breakerProbe,
	}
	// Breaker transitions, 2PC recovery, and delivery retries are
	// operational events, not per-request chatter: always logged.
	rcfg.Logf = log.Printf
	router, err := shard.NewRouter(cluster, multi, simdisk.New("router", simdisk.Config{}), rcfg)
	if err != nil {
		log.Fatalf("pacman-router: %v", err)
	}

	scfg := wire.ServerConfig{Window: *window}
	if *verbose {
		scfg.Logf = log.Printf
	}
	srv := wire.NewServer(scfg)
	srv.AttachBackend(router)
	if *tcp != "" {
		addr, err := srv.Listen("tcp", *tcp)
		if err != nil {
			log.Fatalf("pacman-router: listen tcp: %v", err)
		}
		log.Printf("pacman-router: routing %d shards on tcp %s", len(addrs), addr)
	}
	if *unix != "" {
		addr, err := srv.Listen("unix", *unix)
		if err != nil {
			log.Fatalf("pacman-router: listen unix: %v", err)
		}
		log.Printf("pacman-router: routing %d shards on unix %s", len(addrs), addr)
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("pacman-router: %v: draining (up to %v)...", sig, *drainTimeout)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "pacman-router: second signal, exiting immediately")
		os.Exit(1)
	}()
	srv.Drain(*drainTimeout) // closes the router backend, which closes the shard links
	if *unix != "" {
		os.Remove(*unix)
	}
	log.Printf("pacman-router: drained, bye")
}
