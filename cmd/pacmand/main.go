// pacmand is the network daemon in front of a pacman instance: it Launches
// a workload blueprint on simulated devices and serves the wire protocol
// (docs/PROTOCOL.md) over TCP and/or a unix socket — length-prefixed binary
// frames, per-connection pipelining with out-of-order completion as epochs
// release, and backpressure frames when the admission queue fills.
//
//	pacmand                                  # smallbank on tcp 127.0.0.1:7733
//	pacmand -unix /tmp/pacman.sock           # also (or only) a unix socket
//	pacmand -workload tpcc -logging physical # workload / durability scheme
//	kill -TERM $pid                          # graceful drain, then exit
//
// On SIGINT/SIGTERM the daemon drains: it stops accepting, announces
// GoAway, rejects new submissions with CodeDraining, settles in-flight
// durable-commit futures, then flushes group commit and exits. A second
// signal exits immediately.
//
// The storage devices are the repo's deterministic simulated SSDs, so the
// daemon is a self-contained, dependency-free process; the
// crash→Restart→serve path it exists for is exercised end to end (with the
// daemon killed mid-load and the durability oracle verifying every
// acknowledged commit) by `pacman-bench -exp net` and the network torture
// cycle in internal/torture.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pacman"
	"pacman/internal/shard"
	"pacman/internal/wire"
	"pacman/internal/workload"
)

func main() {
	tcp := flag.String("tcp", "127.0.0.1:7733", "TCP listen address (empty to disable)")
	unix := flag.String("unix", "", "unix socket path (empty to disable)")
	wk := flag.String("workload", "smallbank", "blueprint to launch: smallbank, tpcc, or bank")
	logging := flag.String("logging", "command", "durability scheme: command, physical, or logical")
	devices := flag.Int("devices", 2, "simulated log devices")
	epoch := flag.Duration("epoch", 5*time.Millisecond, "group-commit epoch interval (durable latency floor)")
	workers := flag.Int("workers", 4, "frontend session-pool size")
	queue := flag.Int("queue", 0, "admission queue capacity (default 4x workers; full queue => backpressure frames)")
	window := flag.Int("window", wire.DefaultWindow, "per-connection in-flight window granted in HelloAck")
	shards := flag.Int("shards", 0, "cluster width: launch this daemon as one member of an N-shard smallbank cluster (0 = standalone)")
	shardIdx := flag.Int("shard", 0, "this daemon's shard index in [0, shards)")
	customers := flag.Int("customers", 0, "smallbank customer count for cluster members (0 = workload default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight futures on shutdown")
	verbose := flag.Bool("v", false, "log connection-level diagnostics")
	flag.Parse()

	if *tcp == "" && *unix == "" {
		log.Fatal("pacmand: nothing to listen on (set -tcp and/or -unix)")
	}

	var kind pacman.LogKind
	switch *logging {
	case "command":
		kind = pacman.CommandLogging
	case "physical":
		kind = pacman.PhysicalLogging
	case "logical":
		kind = pacman.LogicalLogging
	default:
		log.Fatalf("pacmand: unknown -logging %q", *logging)
	}

	opts := pacman.Options{
		Logging:       kind,
		Devices:       *devices,
		EpochInterval: *epoch,
		// Watchdog transitions (brownout entry/exit with the breached
		// signal) are rare, operator-facing events: always logged.
		Health: pacman.HealthConfig{Logf: log.Printf},
	}
	var bp pacman.Blueprint
	served := *wk
	if *shards > 0 {
		// Cluster member: the blueprint (2PC status table and pieces
		// included) and the adaptive-logging policy come from the cluster
		// description, and the seed covers only this shard's partition.
		// The router in front (pacman-router) must be sized identically.
		if *wk != "smallbank" {
			log.Fatalf("pacmand: sharded clusters serve smallbank, not %q", *wk)
		}
		if *shardIdx < 0 || *shardIdx >= *shards {
			log.Fatalf("pacmand: -shard %d out of range [0, %d)", *shardIdx, *shards)
		}
		cluster := shard.NewSmallbankCluster(shard.Config{Shards: *shards, Customers: *customers})
		bp = cluster.ShardBlueprint(*shardIdx)
		opts = cluster.ShardOptions(opts)
		served = fmt.Sprintf("smallbank shard %d/%d", *shardIdx, *shards)
	} else {
		var spec workload.BlueprintSpec
		switch *wk {
		case "smallbank":
			spec = workload.Spec(workload.NewSmallbank(workload.DefaultSmallbankConfig()))
		case "tpcc":
			cfg := workload.DefaultTPCCConfig()
			cfg.DisableInserts = true
			spec = workload.Spec(workload.NewTPCC(cfg))
		case "bank":
			spec = workload.Spec(workload.NewBank(1000))
		default:
			log.Fatalf("pacmand: unknown -workload %q", *wk)
		}
		bp = pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
	}

	db, err := pacman.Launch(bp, opts)
	if err != nil {
		log.Fatalf("pacmand: launch: %v", err)
	}

	scfg := wire.ServerConfig{Workers: *workers, Queue: *queue, Window: *window}
	if *verbose {
		scfg.Logf = log.Printf
	}
	srv := wire.NewServer(scfg)
	if err := srv.Attach(db); err != nil {
		log.Fatalf("pacmand: attach: %v", err)
	}
	if *tcp != "" {
		addr, err := srv.Listen("tcp", *tcp)
		if err != nil {
			log.Fatalf("pacmand: listen tcp: %v", err)
		}
		log.Printf("pacmand: serving %s (%v) on tcp %s", served, kind, addr)
	}
	if *unix != "" {
		addr, err := srv.Listen("unix", *unix)
		if err != nil {
			log.Fatalf("pacmand: listen unix: %v", err)
		}
		log.Printf("pacmand: serving %s (%v) on unix %s", served, kind, addr)
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("pacmand: %v: draining (up to %v)...", sig, *drainTimeout)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "pacmand: second signal, exiting immediately")
		os.Exit(1)
	}()
	srv.Drain(*drainTimeout)
	db.Close() // flush group commit
	if *unix != "" {
		os.Remove(*unix)
	}
	log.Printf("pacmand: drained, bye")
}
