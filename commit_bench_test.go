package pacman

// Micro-benchmarks of the execute→commit→encode→release hot path, one per
// logging scheme. Unlike the experiment benchmarks in bench_test.go these
// drive a txn.Worker directly (no frontend, no futures) so -benchmem
// isolates the steady-state allocation cost of committing one logged
// transaction: OCC bookkeeping, the commit record, and the logger flush
// that encodes it. The `make bench` regression guard runs exactly these.
//
//	go test -run='^$' -bench=BenchmarkCommitLogged -benchmem
//
// CHANGES.md records the before/after allocs/op trajectory.

import (
	"math/rand"
	"testing"
	"time"

	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// genUpdates pre-generates update-only, non-aborting transactions outside
// the benchmark timer so workload generation (which allocates Args) never
// pollutes the commit-path allocation counts.
func genUpdates(wk workload.Workload, n int) []workload.Txn {
	rng := rand.New(rand.NewSource(1))
	txs := make([]workload.Txn, 0, n)
	for len(txs) < n {
		tx := wk.Generate(rng)
		if !tx.ReadOnly && !tx.MayAbort {
			txs = append(txs, tx)
		}
	}
	return txs
}

// benchCommitLogged measures one worker committing pre-generated update
// transactions under an active logging pipeline (2 unthrottled devices, so
// the numbers reflect CPU/allocation cost, not modeled device time).
func benchCommitLogged(b *testing.B, kind wal.Kind, wk workload.Workload) {
	b.Helper()
	wk.Populate(workload.DirectPopulate{})
	mgr := txn.NewManager(wk.DB(), txn.Config{
		MultiVersion:  true,
		EpochInterval: time.Millisecond,
		MaxRetries:    1000,
	})
	devices := []*simdisk.Device{
		simdisk.New("bench0", simdisk.Config{}),
		simdisk.New("bench1", simdisk.Config{}),
	}
	ls := wal.NewLogSet(mgr, wal.Config{
		Kind:          kind,
		BatchEpochs:   wal.DefaultBatchEpochs,
		FlushInterval: time.Millisecond,
		Sync:          true,
	}, devices)
	w := mgr.NewWorker()
	ls.AttachWorker(w)
	mgr.StartEpochTicker()
	ls.Start()

	txs := genUpdates(wk, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := txs[i%len(txs)]
		if _, err := w.Execute(tx.Proc, tx.Args, false, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Retire()
	mgr.Stop()
	ls.Close()
}

// BenchmarkCommitLoggedCL is the headline number: the command-logging
// commit path on Smallbank (the scheme PACMAN's forward-processing
// argument leans on — command logs are cheapest to produce).
func BenchmarkCommitLoggedCL(b *testing.B) {
	benchCommitLogged(b, wal.Command, workload.NewSmallbank(workload.DefaultSmallbankConfig()))
}

// BenchmarkCommitLoggedPL measures the physical-logging commit path
// (largest records: slots plus version addresses per write).
func BenchmarkCommitLoggedPL(b *testing.B) {
	benchCommitLogged(b, wal.Physical, workload.NewSmallbank(workload.DefaultSmallbankConfig()))
}

// BenchmarkCommitLoggedLL measures the logical-logging commit path.
func BenchmarkCommitLoggedLL(b *testing.B) {
	benchCommitLogged(b, wal.Logical, workload.NewSmallbank(workload.DefaultSmallbankConfig()))
}

// BenchmarkCommitLoggedCL_TPCC stresses the same path with TPC-C's much
// larger read/write sets (NewOrder touches dozens of rows), where the
// per-transaction scratch and write-set validation costs dominate.
func BenchmarkCommitLoggedCL_TPCC(b *testing.B) {
	cfg := workload.DefaultTPCCConfig()
	cfg.Warehouses = 1
	cfg.DisableInserts = true
	benchCommitLogged(b, wal.Command, workload.NewTPCC(cfg))
}
