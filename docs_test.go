package pacman_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks walks the user-facing markdown (README, ROADMAP, docs/)
// and verifies every relative link target exists, so renames and moved
// files fail the build instead of quietly rotting the docs. External
// links (http/https/mailto), pure anchors, and repo-external paths (the
// CI badge's ../../actions/... form) are out of scope.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md", "ROADMAP.md"}
	entries, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, entries...)
	if len(entries) == 0 {
		t.Fatal("docs/*.md matched nothing — the docs moved without updating this test")
	}

	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	// Inline markdown links, excluding images; code spans are stripped
	// first so example snippets cannot produce false positives.
	link := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	codeSpan := regexp.MustCompile("`[^`]*`")

	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		text := string(b)
		// Drop fenced code blocks: they hold shell/Go samples, not links.
		var kept []string
		inFence := false
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if !inFence {
				kept = append(kept, codeSpan.ReplaceAllString(line, ""))
			}
		}
		for _, m := range link.FindAllStringSubmatch(strings.Join(kept, "\n"), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), target)
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, root+string(filepath.Separator)) {
				continue // points outside the repo (e.g. GitHub UI paths)
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", f, m[1], resolved)
			}
		}
	}
}
