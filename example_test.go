package pacman_test

import (
	"fmt"
	"time"

	"pacman"
	"pacman/internal/workload"
)

// exampleBlueprint declares the paper's bank catalog (Figures 2 and 4)
// through the prebuilt workload: account i starts with 10*i in Current.
func exampleBlueprint() pacman.Blueprint {
	spec := workload.Spec(workload.NewBank(8))
	return pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
}

// ExampleLaunch boots a blueprint under command logging and commits one
// durable transaction through a Frontend.
func ExampleLaunch() {
	db, err := pacman.Launch(exampleBlueprint(), pacman.Options{
		Logging:       pacman.CommandLogging, // the zero value is NoLogging: not recoverable
		EpochInterval: time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 2})
	defer fe.Close()

	// Deposit(name=3, amount=25, nation=1): Exec waits for the durable ack.
	ts, err := fe.Exec("Deposit", pacman.Args{pacman.A(pacman.I(3)), pacman.A(pacman.I(25)), pacman.A(pacman.I(1))})
	fmt.Println("durable:", err == nil && ts != 0)

	row, _ := db.Table("Current").GetRow(3)
	fmt.Println("balance:", row.LatestData()[1].Int())
	// Output:
	// durable: true
	// balance: 55
}

// ExampleRestart crashes a logged instance and brings it back on the same
// devices: the recovered incarnation has the committed state and serves
// immediately.
func ExampleRestart() {
	bp := exampleBlueprint()
	db, err := pacman.Launch(bp, pacman.Options{Logging: pacman.CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		panic(err)
	}
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 2})
	if _, err := fe.Exec("Deposit", pacman.Args{pacman.A(pacman.I(4)), pacman.A(pacman.I(60)), pacman.A(pacman.I(1))}); err != nil {
		panic(err)
	}
	fe.Close()
	db.Crash() // power failure: devices freeze at their durable prefix

	// Restart validates bp against the on-device manifest, replays the log
	// (command logging -> the CLR-P scheme), and returns a serving instance.
	db2, res, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{})
	if err != nil {
		panic(err)
	}
	defer db2.Close()
	fmt.Println("replayed:", res.Entries)

	row, _ := db2.Table("Current").GetRow(4)
	fmt.Println("recovered balance:", row.LatestData()[1].Int())

	// The recovered incarnation serves new work immediately.
	fe2 := db2.MustFrontend(pacman.FrontendConfig{Workers: 2})
	defer fe2.Close()
	_, err = fe2.Exec("Deposit", pacman.Args{pacman.A(pacman.I(4)), pacman.A(pacman.I(1)), pacman.A(pacman.I(1))})
	fmt.Println("serving:", err == nil)
	// Output:
	// replayed: 1
	// recovered balance: 100
	// serving: true
}

// ExampleFrontend_Submit shows the two moments of epoch group commit:
// Submit returns a future at execution, and the future resolves at
// durable epoch release.
func ExampleFrontend_Submit() {
	db, err := pacman.Launch(exampleBlueprint(), pacman.Options{Logging: pacman.CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 2})
	defer fe.Close()

	fut := fe.Submit("Transfer", pacman.Args{pacman.A(pacman.I(1)), pacman.A(pacman.I(5))})
	ts, err := fut.Wait() // blocks until the commit's epoch is durable
	fmt.Println("durable:", err == nil && ts != 0)
	fmt.Println("epoch assigned:", fut.Epoch() != 0)
	// Output:
	// durable: true
	// epoch assigned: true
}
