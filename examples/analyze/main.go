// Analyze: print the static analysis artifacts — local dependency graphs
// (slices) and the global dependency graph (blocks) — for the built-in
// workloads, reproducing the structures of the paper's Figures 3-5 and 21.
//
//	go run ./examples/analyze -workload bank
package main

import (
	"flag"
	"fmt"
	"log"

	"pacman/internal/analysis"
	"pacman/internal/chopping"
	"pacman/internal/proc"
	"pacman/internal/workload"
)

func main() {
	which := flag.String("workload", "bank", "bank | tpcc | smallbank")
	showChopping := flag.Bool("chopping", true, "also show the transaction-chopping baseline")
	flag.Parse()

	var procs []*proc.Compiled
	switch *which {
	case "bank":
		b := workload.NewBank(10)
		procs = []*proc.Compiled{b.Transfer, b.Deposit}
	case "tpcc":
		procs = workload.NewTPCC(workload.DefaultTPCCConfig()).LoggingProcs()
	case "smallbank":
		procs = workload.NewSmallbank(workload.DefaultSmallbankConfig()).LoggingProcs()
	default:
		log.Fatalf("unknown workload %q", *which)
	}

	fmt.Printf("=== %s: PACMAN static analysis ===\n\n", *which)
	var ldgs []*analysis.LDG
	for _, c := range procs {
		l := analysis.BuildLDG(c)
		ldgs = append(ldgs, l)
		fmt.Print(l.String())
		fmt.Println()
	}
	gdg := analysis.BuildGDG(ldgs)
	fmt.Print(gdg.String())

	if *showChopping {
		fmt.Printf("\n=== %s: transaction-chopping baseline ===\n\n", *which)
		chopped := chopping.Decompose(procs)
		for _, l := range chopped {
			fmt.Print(l.String())
			fmt.Println()
		}
		fmt.Print(analysis.BuildGDG(chopped).String())
		fmt.Printf("\nPACMAN blocks: %d, chopping blocks: %d\n",
			gdg.NumBlocks(), analysis.BuildGDG(chopping.Decompose(procs)).NumBlocks())
	}
}
