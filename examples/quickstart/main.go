// Quickstart: the paper's bank example end to end — define the schema and
// stored procedures, run transactions under command logging, crash, and
// recover with PACMAN (CLR-P), verifying the recovered state.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pacman"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

const accounts = 1000

// defineBank declares the Figure 2/4 catalog and procedures on an instance.
func defineBank(db *pacman.DB) {
	db.MustDefineTable(tuple.MustSchema("Family",
		tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)))
	db.MustDefineTable(tuple.MustSchema("Current",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	db.MustDefineTable(tuple.MustSchema("Saving",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	db.MustDefineTable(tuple.MustSchema("Stats",
		tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)))
	db.MustRegister(workload.BankTransferProc())
	db.MustRegister(workload.BankDepositProc())
	db.Populate(func(seed func(t *pacman.Table, key uint64, vals pacman.Tuple)) {
		for i := 1; i <= accounts; i++ {
			spouse := int64(i - 1)
			if i%2 == 1 {
				spouse = int64(i + 1)
			}
			seed(db.Table("Family"), uint64(i), pacman.Tuple{tuple.I(int64(i)), tuple.I(spouse)})
			seed(db.Table("Current"), uint64(i), pacman.Tuple{tuple.I(int64(i)), tuple.I(1000)})
			seed(db.Table("Saving"), uint64(i), pacman.Tuple{tuple.I(int64(i)), tuple.I(100)})
		}
		for n := 1; n <= 50; n++ {
			seed(db.Table("Stats"), uint64(n), pacman.Tuple{tuple.I(int64(n)), tuple.I(0)})
		}
	})
}

func main() {
	// 1. Open a database with command logging on two simulated SSDs.
	db := pacman.Open(pacman.Options{
		Logging:       pacman.CommandLogging,
		Devices:       2,
		EpochInterval: 2 * time.Millisecond,
	})
	defineBank(db)
	db.Start()

	// 2. Run a few thousand transfers and deposits through the frontend:
	// submissions return at execution, futures resolve at group-commit
	// release, and the bounded session pool heartbeats internally.
	fmt.Println("running 5000 transactions under command logging...")
	fe, err := db.NewFrontend(pacman.FrontendConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	start := time.Now()
	futs := make([]*pacman.Future, 0, 5000)
	for i := 0; i < 5000; i++ {
		acct := proc.A(tuple.I(int64(1 + rng.Intn(accounts))))
		if rng.Intn(2) == 0 {
			futs = append(futs, fe.Submit("Transfer",
				pacman.Args{acct, proc.A(tuple.I(int64(1 + rng.Intn(100))))}))
		} else {
			futs = append(futs, fe.Submit("Deposit", pacman.Args{
				acct,
				proc.A(tuple.I(int64(1 + rng.Intn(5000)))),
				proc.A(tuple.I(int64(1 + rng.Intn(50)))),
			}))
		}
	}
	execHist, durHist := &metrics.Histogram{}, &metrics.Histogram{}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			log.Fatalf("txn %d: %v", i, err)
		}
		execHist.Record(f.ExecLatency())
		durHist.Record(f.DurableLatency())
	}
	elapsed := time.Since(start)
	fmt.Printf("  %d durable txns in %v (%.0f tps)\n", len(futs),
		elapsed.Round(time.Millisecond), float64(len(futs))/elapsed.Seconds())
	fmt.Printf("  latency: exec p50 %v / durable p50 %v / durable p99 %v\n",
		execHist.Percentile(50).Round(time.Microsecond),
		durHist.Percentile(50).Round(time.Microsecond),
		durHist.Percentile(99).Round(time.Microsecond))
	fe.Close()

	// 3. Flush everything, remember account 1's balance, then crash.
	db.Close()
	r, _ := db.Table("Current").GetRow(1)
	balanceBefore := r.LatestData()[1].Int()
	fmt.Printf("account 1 balance before crash: %d\n", balanceBefore)
	db.Crash()
	fmt.Println("crashed: devices truncated to their durable prefixes")

	// 4. Recover into a fresh instance with PACMAN (CLR-P).
	db2 := pacman.Open(pacman.Options{})
	defineBank(db2)
	res, err := db2.Recover(db.Devices(), pacman.CLRP, pacman.RecoverConfig{Threads: 4})
	if err != nil {
		log.Fatalf("recovery: %v", err)
	}
	fmt.Printf("recovered %d transactions in %v (reload work %v, reload wall %v, replay stalled %v)\n",
		res.Entries, res.LogTotal.Round(time.Microsecond), res.LogReload.Round(time.Microsecond),
		res.ReloadWall.Round(time.Microsecond), res.ReloadStall.Round(time.Microsecond))

	// 5. Verify.
	r2, ok := db2.Table("Current").GetRow(1)
	if !ok {
		log.Fatal("account 1 missing after recovery")
	}
	balanceAfter := r2.LatestData()[1].Int()
	fmt.Printf("account 1 balance after recovery: %d\n", balanceAfter)
	if balanceAfter != balanceBefore {
		log.Fatalf("MISMATCH: %d != %d", balanceAfter, balanceBefore)
	}
	fmt.Println("OK: recovered state matches the pre-crash state")
}
