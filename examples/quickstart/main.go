// Quickstart: the paper's bank example as a service lifecycle — declare the
// catalog once as a Blueprint, Launch it under command logging, serve
// transactions, crash, and Restart on the same devices with PACMAN (CLR-P):
// the restarted instance is immediately servable, new commits append to the
// same logs, and a second crash+Restart recovers both generations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pacman"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

const accounts = 1000

// bankBlueprint declares the Figure 2/4 catalog, procedures, and the
// deterministic initial population. The same value drives Launch and every
// Restart — there is no second copy of the schema to keep in sync, and
// Restart validates the blueprint against the manifest persisted on the
// devices before replaying anything.
func bankBlueprint() pacman.Blueprint {
	return pacman.Blueprint{
		Tables: []*pacman.Schema{
			tuple.MustSchema("Family",
				tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)),
			tuple.MustSchema("Current",
				tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)),
			tuple.MustSchema("Saving",
				tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)),
			tuple.MustSchema("Stats",
				tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)),
		},
		Procedures: []*pacman.Procedure{
			workload.BankTransferProc(),
			workload.BankDepositProc(),
		},
		Seed: func(seed pacman.Seeder) {
			for i := 1; i <= accounts; i++ {
				spouse := int64(i - 1)
				if i%2 == 1 {
					spouse = int64(i + 1)
				}
				seed("Family", uint64(i), pacman.Tuple{tuple.I(int64(i)), tuple.I(spouse)})
				seed("Current", uint64(i), pacman.Tuple{tuple.I(int64(i)), tuple.I(1000)})
				seed("Saving", uint64(i), pacman.Tuple{tuple.I(int64(i)), tuple.I(100)})
			}
			for n := 1; n <= 50; n++ {
				seed("Stats", uint64(n), pacman.Tuple{tuple.I(int64(n)), tuple.I(0)})
			}
		},
	}
}

// serve pushes n random transfers/deposits through a fresh Frontend and
// waits for every durable-commit future, reporting throughput and latency.
func serve(db *pacman.DB, n int, seed int64) {
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 4})
	defer fe.Close()
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	futs := make([]*pacman.Future, 0, n)
	for i := 0; i < n; i++ {
		acct := proc.A(tuple.I(int64(1 + rng.Intn(accounts))))
		if rng.Intn(2) == 0 {
			futs = append(futs, fe.Submit("Transfer",
				pacman.Args{acct, proc.A(tuple.I(int64(1 + rng.Intn(100))))}))
		} else {
			futs = append(futs, fe.Submit("Deposit", pacman.Args{
				acct,
				proc.A(tuple.I(int64(1 + rng.Intn(5000)))),
				proc.A(tuple.I(int64(1 + rng.Intn(50)))),
			}))
		}
	}
	durHist := &metrics.Histogram{}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			log.Fatalf("txn %d: %v", i, err)
		}
		durHist.Record(f.DurableLatency())
	}
	elapsed := time.Since(start)
	fmt.Printf("  %d durable txns in %v (%.0f tps, durable p50 %v p99 %v)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		durHist.Percentile(50).Round(time.Microsecond),
		durHist.Percentile(99).Round(time.Microsecond))
}

func balance(db *pacman.DB, acct uint64) int64 {
	r, ok := db.Table("Current").GetRow(acct)
	if !ok {
		log.Fatalf("account %d missing", acct)
	}
	return r.LatestData()[1].Int()
}

func main() {
	bp := bankBlueprint()

	// 1. Launch: tables, procedures, seed, manifest, and loggers in one call.
	db, err := pacman.Launch(bp, pacman.Options{
		Logging:       pacman.CommandLogging,
		Devices:       2,
		EpochInterval: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serving 5000 transactions under command logging...")
	serve(db, 5000, 1)
	before := balance(db, 1)
	fmt.Printf("account 1 balance: %d\n", before)

	// 2. Crash. Devices keep only their durable prefixes.
	db.Crash()
	fmt.Println("crashed: devices truncated to their durable prefixes")

	// 3. Restart on the same devices. The scheme is auto-selected from the
	// manifest (command logging -> CLR-P, i.e. PACMAN), the blueprint is
	// validated against the persisted catalog, and the returned instance is
	// already started.
	t0 := time.Now()
	db2, res, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{Threads: 4})
	if err != nil {
		log.Fatalf("restart: %v", err)
	}
	fmt.Printf("restarted in %v: replayed %d transactions (reload wall %v, replay stalled %v)\n",
		time.Since(t0).Round(time.Microsecond), res.Entries,
		res.ReloadWall.Round(time.Microsecond), res.ReloadStall.Round(time.Microsecond))
	if got := balance(db2, 1); got != before {
		log.Fatalf("MISMATCH after restart: %d != %d", got, before)
	}

	// 4. The restarted instance serves immediately — and its new commits
	// are durable on the same devices.
	fmt.Println("serving 2000 more transactions on the restarted instance...")
	serve(db2, 2000, 2)
	after := balance(db2, 1)

	// 5. Crash again, restart again: both generations recover.
	db2.Crash()
	db3, res2, err := pacman.Restart(db2.Devices(), bp, pacman.RecoverConfig{Threads: 4})
	if err != nil {
		log.Fatalf("second restart: %v", err)
	}
	fmt.Printf("second restart replayed %d transactions (pre- and post-restart)\n", res2.Entries)
	if got := balance(db3, 1); got != after {
		log.Fatalf("MISMATCH after second restart: %d != %d", got, after)
	}
	db3.Close()
	fmt.Println("OK: both crash/restart round trips recovered the full history")
}
