// Smallbank example: the standard Smallbank mix with a configurable
// fraction of ad-hoc transactions (logged at tuple granularity even under
// command logging, Section 4.5), followed by a crash and PACMAN recovery.
//
//	go run ./examples/smallbank -txns 20000 -adhoc 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pacman"
	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

func main() {
	txns := flag.Int("txns", 20000, "transactions to run")
	adhoc := flag.Int("adhoc", 20, "percentage of ad-hoc transactions")
	threads := flag.Int("threads", 4, "recovery threads")
	customers := flag.Int("customers", 5000, "customer count")
	flag.Parse()

	cfg := workload.SmallbankConfig{Customers: *customers, HotspotPct: 25}
	mk := func() (*workload.Smallbank, *pacman.DB) {
		w := workload.NewSmallbank(cfg)
		db := pacman.Adopt(w.DB(), w.Registry(), pacman.Options{
			Logging:       pacman.CommandLogging,
			Devices:       2,
			EpochInterval: 5 * time.Millisecond,
		})
		w.Populate(workload.DirectPopulate{})
		return w, db
	}

	w, db := mk()
	db.Start()
	fmt.Printf("Smallbank: %d customers, %d txns, %d%% ad-hoc\n", *customers, *txns, *adhoc)

	fe, err := db.NewFrontend(pacman.FrontendConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	start := time.Now()
	committed := 0
	durHist := &metrics.Histogram{}
	// Keep a bounded window of unresolved futures in flight; the window
	// settles the oldest when full, Drain settles the stragglers.
	window := txn.NewWindow(512, func(fut *pacman.Future, tx workload.Txn) {
		if _, err := fut.Wait(); err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				return
			}
			log.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
		durHist.Record(fut.DurableLatency())
		committed++
	})
	for i := 0; i < *txns; i++ {
		tx := w.Generate(rng)
		if rng.Intn(100) < *adhoc && !tx.ReadOnly {
			window.Add(fe.SubmitAdHoc(tx.Proc.Name(), tx.Args), tx)
		} else {
			window.Add(fe.Submit(tx.Proc.Name(), tx.Args), tx)
		}
	}
	window.Drain()
	elapsed := time.Since(start)
	fmt.Printf("  committed %d durable (%.0f tps, durable p50 %v p99 %v)\n",
		committed, float64(committed)/elapsed.Seconds(),
		durHist.Percentile(50).Round(time.Microsecond),
		durHist.Percentile(99).Round(time.Microsecond))
	fe.Close()
	db.Close()

	// Sum all balances for verification.
	sum := func(d *pacman.DB) float64 {
		var total float64
		for _, name := range []string{"SAVINGS", "CHECKING"} {
			t := d.Table(name)
			t.ScanSlots(0, t.NumSlots(), func(r *engine.Row) {
				total += r.LatestData()[1].Float()
			})
		}
		return total
	}
	want := sum(db)
	db.Crash()
	fmt.Printf("crashed; pre-crash total balance: %.2f\n", want)

	_, db2 := mk()
	res, err := db2.Recover(db.Devices(), pacman.CLRP, pacman.RecoverConfig{Threads: *threads})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d txns in %v\n", res.Entries, res.LogTotal.Round(time.Microsecond))
	if got := sum(db2); got != want {
		log.Fatalf("MISMATCH: recovered total %.2f, want %.2f", got, want)
	}
	fmt.Println("OK: recovered total balance matches")
}
