// Smallbank example: the standard Smallbank mix with a configurable
// fraction of ad-hoc transactions (logged at tuple granularity even under
// command logging, Section 4.5), followed by a crash and PACMAN recovery.
//
//	go run ./examples/smallbank -txns 20000 -adhoc 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pacman"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/workload"
)

func main() {
	txns := flag.Int("txns", 20000, "transactions to run")
	adhoc := flag.Int("adhoc", 20, "percentage of ad-hoc transactions")
	threads := flag.Int("threads", 4, "recovery threads")
	customers := flag.Int("customers", 5000, "customer count")
	flag.Parse()

	cfg := workload.SmallbankConfig{Customers: *customers, HotspotPct: 25}
	mk := func() (*workload.Smallbank, *pacman.DB) {
		w := workload.NewSmallbank(cfg)
		db := pacman.Adopt(w.DB(), w.Registry(), pacman.Options{
			Logging:       pacman.CommandLogging,
			Devices:       2,
			EpochInterval: 5 * time.Millisecond,
		})
		w.Populate(workload.DirectPopulate{})
		return w, db
	}

	w, db := mk()
	db.Start()
	fmt.Printf("Smallbank: %d customers, %d txns, %d%% ad-hoc\n", *customers, *txns, *adhoc)

	sess := db.Session()
	rng := rand.New(rand.NewSource(42))
	start := time.Now()
	committed := 0
	for i := 0; i < *txns; i++ {
		tx := w.Generate(rng)
		var err error
		if rng.Intn(100) < *adhoc && !tx.ReadOnly {
			_, err = sess.ExecAdHoc(tx.Proc.Name(), tx.Args)
		} else {
			_, err = sess.Exec(tx.Proc.Name(), tx.Args)
		}
		if err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				continue
			}
			log.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
		committed++
	}
	elapsed := time.Since(start)
	fmt.Printf("  committed %d (%.0f tps)\n", committed, float64(committed)/elapsed.Seconds())
	sess.Retire()
	db.Close()

	// Sum all balances for verification.
	sum := func(d *pacman.DB) float64 {
		var total float64
		for _, name := range []string{"SAVINGS", "CHECKING"} {
			t := d.Table(name)
			t.ScanSlots(0, t.NumSlots(), func(r *engine.Row) {
				total += r.LatestData()[1].Float()
			})
		}
		return total
	}
	want := sum(db)
	db.Crash()
	fmt.Printf("crashed; pre-crash total balance: %.2f\n", want)

	_, db2 := mk()
	res, err := db2.Recover(db.Devices(), pacman.CLRP, pacman.RecoverConfig{Threads: *threads})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d txns in %v\n", res.Entries, res.LogTotal.Round(time.Microsecond))
	if got := sum(db2); got != want {
		log.Fatalf("MISMATCH: recovered total %.2f, want %.2f", got, want)
	}
	fmt.Println("OK: recovered total balance matches")
}
