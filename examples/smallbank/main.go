// Smallbank example: the standard Smallbank mix with a configurable
// fraction of ad-hoc transactions (logged at tuple granularity even under
// command logging, Section 4.5), run through the blueprint lifecycle —
// Launch, serve, crash, Restart on the same devices, and keep serving.
//
//	go run ./examples/smallbank -txns 20000 -adhoc 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pacman"
	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

func main() {
	txns := flag.Int("txns", 20000, "transactions to run")
	adhoc := flag.Int("adhoc", 20, "percentage of ad-hoc transactions")
	threads := flag.Int("threads", 4, "recovery threads")
	customers := flag.Int("customers", 5000, "customer count")
	flag.Parse()

	// The workload declares its catalog once; Spec turns it into the
	// blueprint both Launch and Restart consume.
	w := workload.NewSmallbank(workload.SmallbankConfig{Customers: *customers, HotspotPct: 25})
	spec := workload.Spec(w)
	bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}

	db, err := pacman.Launch(bp, pacman.Options{
		Logging:       pacman.CommandLogging,
		Devices:       2,
		EpochInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Smallbank: %d customers, %d txns, %d%% ad-hoc\n", *customers, *txns, *adhoc)
	run(db, w, *txns, *adhoc, 42)

	// Sum all balances for verification, then crash.
	want := sum(db)
	db.Crash()
	fmt.Printf("crashed; pre-crash total balance: %.2f\n", want)

	// Restart on the same devices: the scheme comes from the manifest
	// (command logging -> CLR-P), the blueprint is validated against the
	// persisted catalog, and the returned instance is already serving.
	start := time.Now()
	db2, res, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{Threads: *threads})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted in %v: replayed %d txns (log replay %v)\n",
		time.Since(start).Round(time.Microsecond), res.Entries, res.LogTotal.Round(time.Microsecond))
	if got := sum(db2); got != want {
		log.Fatalf("MISMATCH: recovered total %.2f, want %.2f", got, want)
	}
	fmt.Println("OK: recovered total balance matches")

	// The restarted instance keeps serving the same mix — and its commits
	// land durably on the same devices.
	fmt.Println("serving on the restarted instance...")
	run(db2, w, *txns/4, *adhoc, 43)
	db2.Close()
	fmt.Println("OK: post-restart traffic served and flushed")
}

// run pushes n transactions of the Smallbank mix through a Frontend with a
// bounded window of in-flight durable-commit futures.
func run(db *pacman.DB, w *workload.Smallbank, n, adhocPct int, seed int64) {
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 4})
	defer fe.Close()
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	committed := 0
	durHist := &metrics.Histogram{}
	window := txn.NewWindow(512, func(fut *pacman.Future, tx workload.Txn) {
		if _, err := fut.Wait(); err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				return
			}
			log.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
		durHist.Record(fut.DurableLatency())
		committed++
	})
	for i := 0; i < n; i++ {
		tx := w.Generate(rng)
		if rng.Intn(100) < adhocPct && !tx.ReadOnly {
			window.Add(fe.SubmitAdHoc(tx.Proc.Name(), tx.Args), tx)
		} else {
			window.Add(fe.Submit(tx.Proc.Name(), tx.Args), tx)
		}
	}
	window.Drain()
	elapsed := time.Since(start)
	fmt.Printf("  committed %d durable (%.0f tps, durable p50 %v p99 %v)\n",
		committed, float64(committed)/elapsed.Seconds(),
		durHist.Percentile(50).Round(time.Microsecond),
		durHist.Percentile(99).Round(time.Microsecond))
}

// sum totals all account balances.
func sum(d *pacman.DB) float64 {
	var total float64
	for _, name := range []string{"SAVINGS", "CHECKING"} {
		t := d.Table(name)
		t.ScanSlots(0, t.NumSlots(), func(r *engine.Row) {
			total += r.LatestData()[1].Float()
		})
	}
	return total
}
