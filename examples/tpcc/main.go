// TPC-C example: run the benchmark mix under a chosen logging scheme with
// several workers, crash, and compare serial command-log recovery (CLR)
// against PACMAN (CLR-P).
//
//	go run ./examples/tpcc -warehouses 2 -txns 20000 -workers 4 -threads 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"pacman"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

func main() {
	warehouses := flag.Int("warehouses", 2, "TPC-C warehouses")
	txns := flag.Int("txns", 20000, "transactions to run")
	workers := flag.Int("workers", 4, "execution workers")
	threads := flag.Int("threads", 4, "recovery threads")
	logging := flag.String("logging", "cl", "logging scheme: pl | ll | cl | off")
	flag.Parse()

	kinds := map[string]pacman.LogKind{
		"pl": pacman.PhysicalLogging, "ll": pacman.LogicalLogging,
		"cl": pacman.CommandLogging, "off": pacman.NoLogging,
	}
	kind, ok := kinds[*logging]
	if !ok {
		log.Fatalf("unknown logging scheme %q", *logging)
	}

	cfg := workload.DefaultTPCCConfig()
	cfg.Warehouses = *warehouses
	mk := func() (*workload.TPCC, *pacman.DB) {
		w := workload.NewTPCC(cfg)
		db := pacman.Adopt(w.DB(), w.Registry(), pacman.Options{
			Logging:       kind,
			Devices:       2,
			EpochInterval: 5 * time.Millisecond,
		})
		w.Populate(workload.DirectPopulate{})
		return w, db
	}

	w, db := mk()
	db.Start()
	fmt.Printf("TPC-C: %d warehouses, %d txns, %d workers, %s logging\n",
		cfg.Warehouses, *txns, *workers, kind)

	// 2× as many client goroutines as pool workers, multiplexed through one
	// frontend: clients submit asynchronously and settle futures through a
	// bounded in-flight window.
	fe, err := db.NewFrontend(pacman.FrontendConfig{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	clients := 2 * *workers
	if clients > *txns {
		clients = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < clients; g++ {
		// Split *txns across clients without truncation loss.
		per := *txns / clients
		if g < *txns%clients {
			per++
		}
		wg.Add(1)
		go func(g, per int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			window := txn.NewWindow(256, func(fut *pacman.Future, tx workload.Txn) {
				if _, err := fut.Wait(); err != nil {
					if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
						return
					}
					log.Fatalf("client %d: %s: %v", g, tx.Proc.Name(), err)
				}
			})
			for i := 0; i < per; i++ {
				tx := w.Generate(rng)
				window.Add(fe.Submit(tx.Proc.Name(), tx.Args), tx)
			}
			window.Drain()
		}(g, per)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("  throughput: %.0f durable tps (%d clients over %d sessions)\n",
		float64(*txns)/elapsed.Seconds(), clients, *workers)

	fe.Close()
	db.Close()
	// Remember one row for verification.
	dk := db.Table("DISTRICT")
	var wantNextOID int64
	dk.ScanSlots(0, 1, func(r *engine.Row) { wantNextOID = r.LatestData()[8].Int() })
	db.Crash()
	fmt.Println("crashed")

	if kind != pacman.CommandLogging {
		fmt.Println("(recovery comparison below requires command logging; exiting)")
		return
	}
	for _, scheme := range []pacman.Scheme{pacman.CLR, pacman.CLRP} {
		w2, db2 := mk()
		_ = w2
		res, err := db2.Recover(db.Devices(), scheme, pacman.RecoverConfig{Threads: *threads})
		if err != nil {
			log.Fatalf("%v: %v", scheme, err)
		}
		fmt.Printf("  %-5v replayed %6d txns in %8v (reload wall %v)\n",
			scheme, res.Entries, res.LogTotal.Round(time.Microsecond),
			res.ReloadWall.Round(time.Microsecond))
		var got int64
		db2.Table("DISTRICT").ScanSlots(0, 1, func(r *engine.Row) {
			got = r.LatestData()[8].Int()
		})
		if got != wantNextOID {
			log.Fatalf("%v: district counter %d, want %d", scheme, got, wantNextOID)
		}
	}
	fmt.Println("OK: both schemes recovered identical states")
}
