// TPC-C example: run the benchmark mix under a chosen logging scheme
// through the blueprint lifecycle, crash, and compare serial command-log
// recovery (CLR) against PACMAN (CLR-P) — both through Restart, which
// validates the blueprint against the devices' catalog manifest and
// returns a servable instance.
//
//	go run ./examples/tpcc -warehouses 2 -txns 20000 -workers 4 -threads 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"pacman"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

func main() {
	warehouses := flag.Int("warehouses", 2, "TPC-C warehouses")
	txns := flag.Int("txns", 20000, "transactions to run")
	workers := flag.Int("workers", 4, "execution workers")
	threads := flag.Int("threads", 4, "recovery threads")
	logging := flag.String("logging", "cl", "logging scheme: pl | ll | cl | off")
	flag.Parse()

	kinds := map[string]pacman.LogKind{
		"pl": pacman.PhysicalLogging, "ll": pacman.LogicalLogging,
		"cl": pacman.CommandLogging, "off": pacman.NoLogging,
	}
	kind, ok := kinds[*logging]
	if !ok {
		log.Fatalf("unknown logging scheme %q", *logging)
	}

	cfg := workload.DefaultTPCCConfig()
	cfg.Warehouses = *warehouses
	w := workload.NewTPCC(cfg)
	spec := workload.Spec(w)
	bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}

	db, err := pacman.Launch(bp, pacman.Options{
		Logging:       kind,
		Devices:       2,
		EpochInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-C: %d warehouses, %d txns, %d workers, %s logging\n",
		cfg.Warehouses, *txns, *workers, kind)
	serve(db, w, *txns, *workers)

	// Remember one row for verification.
	dk := db.Table("DISTRICT")
	var wantNextOID int64
	dk.ScanSlots(0, 1, func(r *engine.Row) { wantNextOID = r.LatestData()[8].Int() })
	db.Crash()
	fmt.Println("crashed")

	if kind != pacman.CommandLogging {
		fmt.Println("(recovery comparison below requires command logging; exiting)")
		return
	}

	// Restart twice on the same devices, pinning each command-log scheme in
	// turn: the serial baseline (CLR), then PACMAN (CLR-P). Each restart
	// validates the same blueprint against the persisted manifest.
	for _, scheme := range []pacman.Scheme{pacman.CLR, pacman.CLRP} {
		db2, res, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{
			Scheme:  scheme,
			Threads: *threads,
		})
		if err != nil {
			log.Fatalf("%v: %v", scheme, err)
		}
		fmt.Printf("  %-5v replayed %6d txns in %8v (reload wall %v)\n",
			scheme, res.Entries, res.LogTotal.Round(time.Microsecond),
			res.ReloadWall.Round(time.Microsecond))
		var got int64
		db2.Table("DISTRICT").ScanSlots(0, 1, func(r *engine.Row) {
			got = r.LatestData()[8].Int()
		})
		if got != wantNextOID {
			log.Fatalf("%v: district counter %d, want %d", scheme, got, wantNextOID)
		}
		if scheme == pacman.CLRP {
			// The last restarted instance is servable: run a post-restart
			// slice of the mix on the recovered state before closing.
			fmt.Println("serving on the restarted instance...")
			serve(db2, w, *txns/4, *workers)
		}
		db2.Close()
	}
	fmt.Println("OK: both schemes recovered identical, servable states")
}

// serve drives the TPC-C mix: 2x as many client goroutines as pool workers,
// multiplexed through one frontend, settling durable-commit futures through
// bounded in-flight windows.
func serve(db *pacman.DB, w *workload.TPCC, txnCount, workers int) {
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: workers})
	defer fe.Close()
	clients := 2 * workers
	if clients > txnCount {
		clients = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < clients; g++ {
		// Split txnCount across clients without truncation loss.
		per := txnCount / clients
		if g < txnCount%clients {
			per++
		}
		wg.Add(1)
		go func(g, per int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			window := txn.NewWindow(256, func(fut *pacman.Future, tx workload.Txn) {
				if _, err := fut.Wait(); err != nil {
					if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
						return
					}
					log.Fatalf("client %d: %s: %v", g, tx.Proc.Name(), err)
				}
			})
			for i := 0; i < per; i++ {
				tx := w.Generate(rng)
				window.Add(fe.Submit(tx.Proc.Name(), tx.Args), tx)
			}
			window.Drain()
		}(g, per)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("  throughput: %.0f durable tps (%d clients over %d sessions)\n",
		float64(txnCount)/elapsed.Seconds(), clients, workers)
}
