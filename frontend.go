package pacman

import (
	"fmt"
	"time"

	"pacman/internal/frontend"
	"pacman/internal/txn"
)

// ErrFrontendClosed resolves Futures submitted to a closed Frontend. It is
// deliberately distinct from ErrClosed/ErrCrashed: a Future carrying
// ErrFrontendClosed was rejected at the queue and NEVER executed, while
// the other two mean the transaction executed but missed durability.
var ErrFrontendClosed = frontend.ErrClosed

// FrontendConfig tunes a Frontend.
type FrontendConfig struct {
	// Workers is the session-pool size client requests are multiplexed
	// onto (default 4).
	Workers int
	// Queue is the submission-queue capacity. A full queue blocks Submit
	// (backpressure) instead of buffering without bound (default
	// 4×Workers).
	Queue int
}

// Frontend is the multiplexing client surface: any number of concurrent
// goroutines submit stored-procedure invocations through a bounded queue
// onto a fixed session pool. Submit returns a durable-commit Future;
// Exec is the synchronous variant that waits for group-commit release.
// The Frontend heartbeats its idle sessions internally, so callers never
// touch Session.Heartbeat, and Close drains the queue before retiring the
// pool.
type Frontend struct {
	d  *DB
	fe *frontend.Frontend
}

// NewFrontend creates a frontend over a started database, or returns
// ErrNotStarted. Instances returned by Launch and Restart are already
// started, so a Frontend works immediately — including right after a crash
// recovery, where new submissions commit with timestamps above the
// recovered high-water mark and append to the same log devices.
func (d *DB) NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if !d.started {
		return nil, ErrNotStarted
	}
	fe := frontend.New(d.mgr, d.logset, frontend.Config{
		Workers: cfg.Workers,
		Queue:   cfg.Queue,
	})
	// Join the health watchdog's brownout fan-out (a frontend created
	// mid-brownout starts shedding immediately).
	d.registerFrontend(fe)
	return &Frontend{d: d, fe: fe}, nil
}

// MustFrontend is NewFrontend that panics on error — the panicking twin,
// matching MustSession and the Must* constructor convention.
func (d *DB) MustFrontend(cfg FrontendConfig) *Frontend {
	fe, err := d.NewFrontend(cfg)
	if err != nil {
		panic(err)
	}
	return fe
}

// Submit queues one invocation and returns its durable-commit Future. It
// blocks only when the submission queue is full.
func (f *Frontend) Submit(name string, args Args) *Future {
	return f.submit(name, args, false, time.Time{})
}

// SubmitAdHoc is Submit for ad-hoc transactions (tuple-level logging even
// under command logging, Section 4.5).
func (f *Frontend) SubmitAdHoc(name string, args Args) *Future {
	return f.submit(name, args, true, time.Time{})
}

// SubmitDist is Submit for distributed transactions — the 2PC pieces a
// shard router drives a cross-shard commit through. Their effects are
// logged as values even under command logging, so this shard's replay
// never re-executes them (their inputs may have come from another shard).
func (f *Frontend) SubmitDist(name string, args Args) *Future {
	c := f.d.reg.ByName(name)
	if c == nil {
		return unknownProc(name)
	}
	return f.fe.SubmitDist(c, args)
}

// SubmitDeadline is Submit with a per-request deadline (zero means none).
// If the commit is not durably acknowledged by the deadline the Future
// resolves ErrDeadlineExceeded — at admission when the deadline has already
// passed, at execution start when it expired in the queue, or in the
// durability pipeline when group commit cannot release it in time. A
// durable ack that lands first always wins: an acknowledged Future is never
// retroactively failed. Like a connection loss, ErrDeadlineExceeded leaves
// execution state unknown — the transaction may still commit durably after
// the caller has given up.
func (f *Frontend) SubmitDeadline(name string, args Args, deadline time.Time) *Future {
	return f.submit(name, args, false, deadline)
}

// SubmitWithin is SubmitDeadline with a relative timeout.
func (f *Frontend) SubmitWithin(name string, args Args, timeout time.Duration) *Future {
	return f.submit(name, args, false, time.Now().Add(timeout))
}

func (f *Frontend) submit(name string, args Args, adHoc bool, deadline time.Time) *Future {
	c := f.d.reg.ByName(name)
	if c == nil {
		return unknownProc(name)
	}
	if f.d.valueLog[name] {
		// Adaptive logging policy: this procedure always logs values.
		return f.fe.SubmitDistDeadline(c, args, deadline)
	}
	if adHoc {
		return f.fe.SubmitAdHocDeadline(c, args, deadline)
	}
	return f.fe.SubmitDeadline(c, args, deadline)
}

func unknownProc(name string) *Future {
	fut := txn.NewFuture(time.Now())
	fut.Resolve(time.Now(), fmt.Errorf("pacman: unknown procedure %q", name))
	return fut
}

// TrySubmit is the non-blocking admission variant of Submit: it returns
// (future, true) only when the submission queue had space right now, and
// (nil, false) when the queue was full — the caller decides whether to
// retry, shed load, or surface backpressure (pacmand turns it into a
// backpressure frame). On a closed frontend it returns a future already
// resolved with ErrFrontendClosed, and ok is false.
func (f *Frontend) TrySubmit(name string, args Args) (*Future, bool) {
	return f.trySubmit(name, args, false, time.Time{})
}

// TrySubmitAdHoc is TrySubmit for ad-hoc transactions.
func (f *Frontend) TrySubmitAdHoc(name string, args Args) (*Future, bool) {
	return f.trySubmit(name, args, true, time.Time{})
}

// TrySubmitDist is TrySubmit for distributed transactions (2PC pieces; see
// SubmitDist). pacmand's wire server routes Prepare/Decide frames here.
func (f *Frontend) TrySubmitDist(name string, args Args) (*Future, bool) {
	return f.TrySubmitDistDeadline(name, args, time.Time{})
}

// TrySubmitDeadline is TrySubmit with a per-request deadline (see
// SubmitDeadline for the expiry contract).
func (f *Frontend) TrySubmitDeadline(name string, args Args, deadline time.Time) (*Future, bool) {
	return f.trySubmit(name, args, false, deadline)
}

// TrySubmitAdHocDeadline is TrySubmitAdHoc with a per-request deadline.
func (f *Frontend) TrySubmitAdHocDeadline(name string, args Args, deadline time.Time) (*Future, bool) {
	return f.trySubmit(name, args, true, deadline)
}

// TrySubmitDistDeadline is TrySubmitDist with a per-request deadline.
func (f *Frontend) TrySubmitDistDeadline(name string, args Args, deadline time.Time) (*Future, bool) {
	c := f.d.reg.ByName(name)
	if c == nil {
		fut := unknownProc(name)
		return fut, false
	}
	return f.fe.TrySubmitDistDeadline(c, args, deadline)
}

func (f *Frontend) trySubmit(name string, args Args, adHoc bool, deadline time.Time) (*Future, bool) {
	c := f.d.reg.ByName(name)
	if c == nil {
		fut := unknownProc(name)
		return fut, false
	}
	if f.d.valueLog[name] {
		return f.fe.TrySubmitDistDeadline(c, args, deadline)
	}
	return f.fe.TrySubmitDeadline(c, args, adHoc, deadline)
}

// Brownout reports whether this frontend is currently shedding new work
// under the health watchdog's brownout (new submissions resolve
// ErrBrownout; queued work still executes).
func (f *Frontend) Brownout() bool { return f.fe.Brownout() }

// ShedStats returns how many requests this frontend shed, split by
// checkpoint: deadline-expired at admission, deadline-expired at dequeue
// (never executed), and brownout rejections.
func (f *Frontend) ShedStats() ShedStats { return f.fe.ShedStats() }

// ShedStats is a Frontend's shed-counter snapshot.
type ShedStats = frontend.Shed

// QueueDepth returns the submission queue's current occupancy; paired with
// QueueCap it is the admission-control signal network backpressure keys
// off.
func (f *Frontend) QueueDepth() int { return f.fe.Depth() }

// QueueCap returns the submission queue's capacity.
func (f *Frontend) QueueCap() int { return f.fe.Capacity() }

// Exec submits and waits for durability: when it returns with a nil error,
// the transaction's epoch has been group-commit released.
func (f *Frontend) Exec(name string, args Args) (TS, error) {
	return f.Submit(name, args).Wait()
}

// ExecAdHoc is Exec for ad-hoc transactions.
func (f *Frontend) ExecAdHoc(name string, args Args) (TS, error) {
	return f.SubmitAdHoc(name, args).Wait()
}

// Sessions returns the pool size (the number of sessions client goroutines
// share).
func (f *Frontend) Sessions() int { return len(f.fe.Workers()) }

// Scan runs a consistent snapshot scan over table, calling fn in key order
// for every row with key in [lo, hi) that was visible at the cut, until fn
// returns false. The cut is the newest released epoch (returned), so every
// committed-and-released transaction at or below it is fully visible and
// nothing newer leaks in. The scan reads outside OCC entirely: it takes no
// latches, joins no validation, and can never abort a concurrent writer —
// run it as long as you like under full OLTP load (the pinned epoch merely
// holds version garbage collection back until the scan finishes).
func (f *Frontend) Scan(table string, lo, hi uint64, fn func(key uint64, row Tuple) bool) (epoch uint32, err error) {
	t := f.d.db.Table(table)
	if t == nil {
		return 0, fmt.Errorf("pacman: unknown table %q", table)
	}
	v, err := f.d.SnapshotView(0)
	if err != nil {
		return 0, err
	}
	defer v.Close()
	v.Scan(t, lo, hi, fn)
	return v.Epoch(), nil
}

// Close drains queued submissions, rejects late ones with
// ErrFrontendClosed, and retires the session pool. Futures of drained work
// resolve through the normal release path.
func (f *Frontend) Close() {
	f.d.dropFrontend(f.fe)
	f.fe.Close()
}
