package pacman

import (
	"sync"
	"testing"
	"time"

	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// BenchmarkFrontendSubmit compares the two client models at equal worker
// count (4 pool sessions, command logging): "blocking" runs one synchronous
// durable Exec per goroutine — each caller eats a full group-commit wait
// per transaction — while "async" keeps many Submit futures in flight per
// client and only settles them at the end. The committed-txns/sec metric
// shows asynchronous submission sustaining far higher throughput because
// the group-commit latency is paid once per epoch, not once per request.
//
//	go test -bench=FrontendSubmit -benchtime=2000x
func BenchmarkFrontendSubmit(b *testing.B) {
	const poolWorkers = 4
	depositArgs := func(i int) Args {
		return Args{
			proc.A(tuple.I(int64(1 + i%40))),
			proc.A(tuple.I(1)),
			proc.A(tuple.I(int64(1 + i%10))),
		}
	}
	setup := func(b *testing.B) *Frontend {
		b.Helper()
		d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
		d.Start()
		fe, err := d.NewFrontend(FrontendConfig{Workers: poolWorkers})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			fe.Close()
			d.Close()
		})
		return fe
	}

	b.Run("blocking-exec-per-goroutine", func(b *testing.B) {
		fe := setup(b)
		b.ResetTimer()
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < poolWorkers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < b.N; i += poolWorkers {
					if _, err := fe.Exec("Deposit", depositArgs(i)); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "committed-txns/sec")
	})

	b.Run("async-submit", func(b *testing.B) {
		fe := setup(b)
		b.ResetTimer()
		start := time.Now()
		futs := make([]*Future, b.N)
		for i := 0; i < b.N; i++ {
			futs[i] = fe.Submit("Deposit", depositArgs(i))
		}
		for i, f := range futs {
			if _, err := f.Wait(); err != nil {
				b.Fatalf("future %d: %v", i, err)
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "committed-txns/sec")
	})
}
