module pacman

go 1.24
