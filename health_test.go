package pacman

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacman/internal/simdisk"
	"pacman/internal/tuple"
)

func depositArgs(acct, amount int64) Args {
	return Args{A(tuple.I(acct)), A(tuple.I(amount)), A(tuple.I(1))}
}

// TestDBHealthSnapshot: a started instance with logging active registers
// the full gray-failure signal set and reports healthy; a disabled
// watchdog reports a bare healthy snapshot.
func TestDBHealthSnapshot(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	defer d.Close()

	snap := d.Health()
	if snap.State != "healthy" || d.Brownout() {
		t.Fatalf("fresh instance: %+v brownout=%v", snap, d.Brownout())
	}
	want := map[string]bool{"epoch-stall": false, "pepoch-stall": false, "sync-latency": false, "queue-stall": false}
	for _, s := range snap.Signals {
		if _, ok := want[s.Name]; !ok {
			t.Fatalf("unexpected signal %q", s.Name)
		}
		want[s.Name] = true
		if s.Budget <= 0 {
			t.Fatalf("signal %q has no budget: %+v", s.Name, s)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("signal %q not registered", name)
		}
	}

	d2, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond, Health: HealthConfig{Disable: true}})
	d2.Start()
	defer d2.Close()
	if snap := d2.Health(); snap.State != "healthy" || len(snap.Signals) != 0 {
		t.Fatalf("disabled watchdog snapshot: %+v", snap)
	}
}

// TestDBBrownoutEndToEnd drives the whole loop through the public API: a
// device turning sticky-slow trips the watchdog, frontends shed new work
// with ErrBrownout, the fault lifting clears the state, and admission
// resumes.
func TestDBBrownoutEndToEnd(t *testing.T) {
	var (
		trMu        sync.Mutex
		transitions []string
	)
	d, _ := openBank(Options{
		Logging:       CommandLogging,
		EpochInterval: time.Millisecond,
		Health: HealthConfig{
			Interval: 2 * time.Millisecond, TripAfter: 2, ClearAfter: 3,
			SyncLatencyBudget: 10 * time.Millisecond,
			// Loose liveness budgets: only sync latency should trip here.
			EpochStallBudget: time.Second, PepochStallBudget: 2 * time.Second, QueueStallBudget: 2 * time.Second,
			OnTransition: func(from, to, cause string) {
				trMu.Lock()
				transitions = append(transitions, from+"->"+to)
				trMu.Unlock()
			},
			Logf: t.Logf,
		},
	})
	d.Start()
	defer d.Close()
	fe := d.MustFrontend(FrontendConfig{})
	defer fe.Close()

	if _, err := fe.Exec("Deposit", depositArgs(1, 1)); err != nil {
		t.Fatalf("healthy deposit: %v", err)
	}

	df := &simdisk.DeviceFaults{SyncDelay: 50 * time.Millisecond}
	plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{}}
	for _, dev := range d.Devices() {
		plan.Devs[dev.Name()] = df
	}
	plan.Arm(d.Devices()...)
	defer plan.Disarm()

	// Trickle traffic so syncs keep happening; the watchdog must trip.
	waitHealth(t, "brownout", func() bool {
		fe.SubmitWithin("Deposit", depositArgs(1, 1), 20*time.Millisecond)
		return d.Brownout()
	})
	if _, err := fe.Submit("Deposit", depositArgs(1, 1)).Wait(); !errors.Is(err, ErrBrownout) {
		t.Fatalf("brownout submit err = %v, want ErrBrownout", err)
	}
	if s := fe.ShedStats(); s.Brownout == 0 {
		t.Fatalf("shed stats %+v should count the brownout shed", s)
	}

	plan.Disarm()
	waitHealth(t, "healthy again", func() bool { return !d.Brownout() && d.Health().State == "healthy" })
	if _, err := fe.Exec("Deposit", depositArgs(1, 1)); err != nil {
		t.Fatalf("post-recovery deposit: %v", err)
	}
	trMu.Lock()
	trs := append([]string(nil), transitions...)
	trMu.Unlock()
	if len(trs) < 2 || d.Health().Brownouts < 1 {
		t.Fatalf("transitions %v, brownouts %d: want at least one full trip/clear", trs, d.Health().Brownouts)
	}
}

func waitHealth(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
