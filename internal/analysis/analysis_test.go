package analysis

import (
	"reflect"
	"testing"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// TestBankLDGMatchesPaper asserts the exact decomposition of the paper's
// Figure 3 / Figure 5a: Transfer splits into T1 {spouse read},
// T2 {the four Current ops}, T3 {the two Saving ops} with edges T1->T2 and
// T1->T3.
func TestBankLDGMatchesPaper(t *testing.T) {
	b := workload.NewBank(10)
	g := BuildLDG(b.Transfer)
	if len(g.Slices) != 3 {
		t.Fatalf("Transfer slices = %d, want 3\n%s", len(g.Slices), g)
	}
	want := [][]int{{0}, {1, 2, 3, 4}, {5, 6}}
	for i, s := range g.Slices {
		if !reflect.DeepEqual(s.Ops, want[i]) {
			t.Errorf("T%d ops = %v, want %v", i+1, s.Ops, want[i])
		}
	}
	if !reflect.DeepEqual(g.Succs[0], []int{1, 2}) {
		t.Errorf("T1 succs = %v, want [1 2]", g.Succs[0])
	}
	if len(g.Succs[1]) != 0 || len(g.Succs[2]) != 0 {
		t.Errorf("T2/T3 must have no successors: %v %v", g.Succs[1], g.Succs[2])
	}
	for op, wantSlice := range []int{0, 1, 1, 1, 1, 2, 2} {
		if g.SliceOf(op) != wantSlice {
			t.Errorf("SliceOf(%d) = %d, want %d", op, g.SliceOf(op), wantSlice)
		}
	}
}

// TestBankDepositLDG asserts Figure 5b: D1 {Current RMW}, D2 {Saving RMW},
// D3 {Stats RMW} with D1->D2 and D1->D3.
func TestBankDepositLDG(t *testing.T) {
	b := workload.NewBank(10)
	g := BuildLDG(b.Deposit)
	if len(g.Slices) != 3 {
		t.Fatalf("Deposit slices = %d, want 3\n%s", len(g.Slices), g)
	}
	want := [][]int{{0, 1}, {2, 3}, {4, 5}}
	for i, s := range g.Slices {
		if !reflect.DeepEqual(s.Ops, want[i]) {
			t.Errorf("D%d ops = %v, want %v", i+1, s.Ops, want[i])
		}
	}
	if !reflect.DeepEqual(g.Succs[0], []int{1, 2}) {
		t.Errorf("D1 succs = %v", g.Succs[0])
	}
}

// TestBankGDGMatchesPaper asserts Figure 5c: four blocks
// Ba{T1}, Bb{T2,D1}, Bc{T3,D2}, Bd{D3}, with edges a->b, a->c, b->c, b->d.
func TestBankGDGMatchesPaper(t *testing.T) {
	b := workload.NewBank(10)
	g := BuildGDG([]*LDG{BuildLDG(b.Transfer), BuildLDG(b.Deposit)})
	if g.NumBlocks() != 4 {
		t.Fatalf("blocks = %d, want 4\n%s", g.NumBlocks(), g)
	}
	// Transfer is proc 0 (slices T1=0,T2=1,T3=2); Deposit proc 1 (D1..D3).
	wantBlocks := [][]SliceRef{
		{{ProcID: 0, SliceID: 0}},                          // Ba = {T1}
		{{ProcID: 0, SliceID: 1}, {ProcID: 1, SliceID: 0}}, // Bb = {T2, D1}
		{{ProcID: 0, SliceID: 2}, {ProcID: 1, SliceID: 1}}, // Bc = {T3, D2}
		{{ProcID: 1, SliceID: 2}},                          // Bd = {D3}
	}
	for i, want := range wantBlocks {
		if !reflect.DeepEqual(g.Blocks[i].Slices, want) {
			t.Errorf("block %d = %v, want %v\n%s", i, g.Blocks[i].Slices, want, g)
		}
	}
	if !reflect.DeepEqual(g.Succs(0), []int{1, 2}) {
		t.Errorf("B0 succs = %v", g.Succs(0))
	}
	if !reflect.DeepEqual(g.Succs(1), []int{2, 3}) {
		t.Errorf("B1 succs = %v", g.Succs(1))
	}
	if !reflect.DeepEqual(g.Preds(2), []int{0, 1}) {
		t.Errorf("B2 preds = %v", g.Preds(2))
	}
	if !reflect.DeepEqual(g.Preds(3), []int{1}) {
		t.Errorf("B3 preds = %v", g.Preds(3))
	}
}

// TestBankPieces: the per-procedure piece definitions instantiate the right
// op subsets and groups.
func TestBankPieces(t *testing.T) {
	b := workload.NewBank(10)
	g := BuildGDG([]*LDG{BuildLDG(b.Transfer), BuildLDG(b.Deposit)})

	tp := g.PiecesFor(0) // Transfer
	if len(tp) != 3 {
		t.Fatalf("Transfer pieces = %d", len(tp))
	}
	if tp[0].Block != 0 || !reflect.DeepEqual(tp[0].Ops, []int{0}) {
		t.Errorf("piece 0 = block %d ops %v", tp[0].Block, tp[0].Ops)
	}
	if tp[1].Block != 1 || !reflect.DeepEqual(tp[1].Ops, []int{1, 2, 3, 4}) {
		t.Errorf("piece 1 = block %d ops %v", tp[1].Block, tp[1].Ops)
	}
	// T2's groups: {read src, write src} and {read dst, write dst} — the
	// two read-modify-write pairs are separate groups (different key
	// spaces), exactly the paper's Figure 8 parallelism.
	if len(tp[1].Groups) != 2 {
		t.Fatalf("T2 groups = %+v", tp[1].Groups)
	}
	if !reflect.DeepEqual(tp[1].Groups[0].Ops, []int{1, 2}) ||
		!reflect.DeepEqual(tp[1].Groups[1].Ops, []int{3, 4}) {
		t.Errorf("T2 groups = %+v", tp[1].Groups)
	}
	if tp[1].GroupOf[1] != 0 || tp[1].GroupOf[2] != 0 || tp[1].GroupOf[3] != 1 || tp[1].GroupOf[4] != 1 {
		t.Errorf("GroupOf = %v", tp[1].GroupOf)
	}
	// Filters select exactly the piece's ops.
	if !tp[1].Filter.Include(1, 0) || tp[1].Filter.Include(0, 0) {
		t.Error("piece filter wrong")
	}

	dp := g.PiecesFor(1) // Deposit
	if len(dp) != 3 {
		t.Fatalf("Deposit pieces = %d", len(dp))
	}
	if dp[0].Block != 1 || dp[1].Block != 2 || dp[2].Block != 3 {
		t.Errorf("Deposit piece blocks = %d,%d,%d", dp[0].Block, dp[1].Block, dp[2].Block)
	}
}

// TestTableOwners: Current and Saving are owned by the blocks containing
// their writers; Family is never written and has no owner.
func TestTableOwners(t *testing.T) {
	b := workload.NewBank(10)
	g := BuildGDG([]*LDG{BuildLDG(b.Transfer), BuildLDG(b.Deposit)})
	db := b.DB()
	if got := g.TableOwner(db.Table("Current").ID()); got != 1 {
		t.Errorf("Current owner = %d, want 1", got)
	}
	if got := g.TableOwner(db.Table("Saving").ID()); got != 2 {
		t.Errorf("Saving owner = %d, want 2", got)
	}
	if got := g.TableOwner(db.Table("Stats").ID()); got != 3 {
		t.Errorf("Stats owner = %d, want 3", got)
	}
	if got := g.TableOwner(db.Table("Family").ID()); got != -1 {
		t.Errorf("Family owner = %d, want -1", got)
	}
}

// singleProcDB builds a catalog with generic tables for synthetic tests.
func singleProcDB() *engine.Database {
	db := engine.NewDatabase()
	for _, n := range []string{"A", "B", "C", "D"} {
		db.MustAddTable(tuple.MustSchema(n,
			tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt)))
	}
	return db
}

// TestConvexityMerging: a flow dependency within a slice swallows the ops
// between its endpoints (property 2 of the slice definition).
func TestConvexityMerging(t *testing.T) {
	db := singleProcDB()
	// op0: read A; op1: write B; op2: write A (uses op0's value).
	// Data deps put op0 and op2 in one slice; convexity drags op1 in.
	p := &proc.Procedure{
		Name:   "Convex",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Read("v", "A", proc.Pm("k"), "v"),
			proc.Write("B", proc.Pm("k"), proc.Set("v", proc.CI(1))),
			proc.Write("A", proc.Pm("k"), proc.Set("v", proc.V("v"))),
		},
	}
	c, err := proc.Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildLDG(c)
	if len(g.Slices) != 1 {
		t.Fatalf("slices = %d, want 1 (convexity)\n%s", len(g.Slices), g)
	}
	if !reflect.DeepEqual(g.Slices[0].Ops, []int{0, 1, 2}) {
		t.Errorf("slice ops = %v", g.Slices[0].Ops)
	}
}

// TestNoSpuriousMerging: independent single-table accesses stay separate.
func TestNoSpuriousMerging(t *testing.T) {
	db := singleProcDB()
	p := &proc.Procedure{
		Name:   "Indep",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Write("A", proc.Pm("k"), proc.Set("v", proc.CI(1))),
			proc.Write("B", proc.Pm("k"), proc.Set("v", proc.CI(2))),
			proc.Write("C", proc.Pm("k"), proc.Set("v", proc.CI(3))),
		},
	}
	c, err := proc.Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildLDG(c)
	if len(g.Slices) != 3 {
		t.Fatalf("slices = %d, want 3\n%s", len(g.Slices), g)
	}
	for i := range g.Slices {
		if len(g.Succs[i]) != 0 {
			t.Errorf("slice %d has edges %v", i, g.Succs[i])
		}
	}
	// GDG of this single procedure: three independent blocks.
	gdg := BuildGDG([]*LDG{g})
	if gdg.NumBlocks() != 3 {
		t.Fatalf("blocks = %d\n%s", gdg.NumBlocks(), gdg)
	}
}

// TestGDGCycleMerging: two procedures whose cross-table orders oppose force
// their blocks into one (the cycle-breaking step of Algorithm 2).
func TestGDGCycleMerging(t *testing.T) {
	db := singleProcDB()
	// P1: read A then write B using the read (A-slice -> B-slice edge).
	p1 := &proc.Procedure{
		Name:   "AtoB",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Read("v", "A", proc.Pm("k"), "v"),
			proc.Write("A", proc.Pm("k"), proc.Set("v", proc.CI(0))),
			proc.Write("B", proc.Pm("k"), proc.Set("v", proc.V("v"))),
		},
	}
	// P2: read B then write A using the read (B-slice -> A-slice edge).
	p2 := &proc.Procedure{
		Name:   "BtoA",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Read("v", "B", proc.Pm("k"), "v"),
			proc.Write("B", proc.Pm("k"), proc.Set("v", proc.CI(0))),
			proc.Write("A", proc.Pm("k"), proc.Set("v", proc.V("v"))),
		},
	}
	c1, err := proc.Compile(db, p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := proc.Compile(db, p2, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGDG([]*LDG{BuildLDG(c1), BuildLDG(c2)})
	// A-writers block and B-writers block are mutually dependent -> merged.
	if g.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1 after cycle merge\n%s", g.NumBlocks(), g)
	}
	// Property 4: each procedure's slices inside the block merged into one
	// piece.
	if len(g.PiecesFor(0)) != 1 || len(g.PiecesFor(1)) != 1 {
		t.Errorf("pieces = %d,%d, want 1,1", len(g.PiecesFor(0)), len(g.PiecesFor(1)))
	}
	if !reflect.DeepEqual(g.PiecesFor(0)[0].Ops, []int{0, 1, 2}) {
		t.Errorf("merged piece ops = %v", g.PiecesFor(0)[0].Ops)
	}
}

// TestAnalysisInvariants checks structural invariants over all workload
// procedures: slices partition ops, graphs are acyclic, data-dependent
// slices share a block.
func TestAnalysisInvariants(t *testing.T) {
	b := workload.NewBank(10)
	ldgs := []*LDG{BuildLDG(b.Transfer), BuildLDG(b.Deposit)}
	for _, g := range ldgs {
		assertLDGInvariants(t, g)
	}
	g := BuildGDG(ldgs)
	assertGDGInvariants(t, g, ldgs)
}

func assertLDGInvariants(t *testing.T, g *LDG) {
	t.Helper()
	seen := make(map[int]bool)
	for _, s := range g.Slices {
		for _, op := range s.Ops {
			if seen[op] {
				t.Errorf("%s: op %d in two slices", g.Proc.Name(), op)
			}
			seen[op] = true
		}
	}
	if len(seen) != g.Proc.NumOps() {
		t.Errorf("%s: slices cover %d of %d ops", g.Proc.Name(), len(seen), g.Proc.NumOps())
	}
	// Acyclic: DFS from every node must not revisit the stack.
	if hasCycle(len(g.Slices), func(i int) []int { return g.Succs[i] }) {
		t.Errorf("%s: LDG has a cycle", g.Proc.Name())
	}
	// Data-dependent ops share a slice.
	ops := g.Proc.Ops()
	for i := range ops {
		for j := i + 1; j < len(ops); j++ {
			if ops[i].TableID == ops[j].TableID &&
				(ops[i].Kind.IsModification() || ops[j].Kind.IsModification()) {
				if g.SliceOf(i) != g.SliceOf(j) {
					t.Errorf("%s: data-dependent ops %d,%d in slices %d,%d",
						g.Proc.Name(), i, j, g.SliceOf(i), g.SliceOf(j))
				}
			}
		}
	}
}

func assertGDGInvariants(t *testing.T, g *GDG, ldgs []*LDG) {
	t.Helper()
	// Every slice in exactly one block.
	count := make(map[SliceRef]int)
	for _, b := range g.Blocks {
		for _, ref := range b.Slices {
			count[ref]++
		}
	}
	for pi, l := range ldgs {
		for _, s := range l.Slices {
			ref := SliceRef{ProcID: pi, SliceID: s.ID}
			if count[ref] != 1 {
				t.Errorf("slice %v appears %d times", ref, count[ref])
			}
		}
	}
	// Acyclic and topologically ordered (edges go low -> high).
	if hasCycle(g.NumBlocks(), g.Succs) {
		t.Error("GDG has a cycle")
	}
	for b := 0; b < g.NumBlocks(); b++ {
		for _, s := range g.Succs(b) {
			if s <= b {
				t.Errorf("edge %d -> %d violates topological numbering", b, s)
			}
		}
		for _, p := range g.Preds(b) {
			if p >= b {
				t.Errorf("pred %d of %d violates topological numbering", p, b)
			}
		}
	}
}

func hasCycle(n int, succs func(int) []int) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	var visit func(int) bool
	visit = func(v int) bool {
		color[v] = gray
		for _, w := range succs(v) {
			if color[w] == gray {
				return true
			}
			if color[w] == white && visit(w) {
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := 0; v < n; v++ {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}

// TestLoopGroupDepth: groups spanning in-loop and out-of-loop ops take the
// common (shallower) depth.
func TestLoopGroupDepth(t *testing.T) {
	db := singleProcDB()
	p := &proc.Procedure{
		Name:   "LoopGroup",
		Params: []proc.ParamDef{proc.P("ks")},
		Body: []proc.Stmt{
			proc.Read("base", "A", proc.CI(1), "v"),
			proc.ForEach("k", "ks",
				proc.Write("A", proc.V("k"), proc.Set("v", proc.V("base"))),
			),
		},
	}
	c, err := proc.Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGDG([]*LDG{BuildLDG(c)})
	pieces := g.PiecesFor(0)
	if len(pieces) != 1 {
		t.Fatalf("pieces = %d", len(pieces))
	}
	// read(A) and write(A) are data-dependent -> one slice; flow dep
	// connects them -> one group at common depth 0.
	if len(pieces[0].Groups) != 1 {
		t.Fatalf("groups = %+v", pieces[0].Groups)
	}
	if pieces[0].Groups[0].CommonDepth != 0 {
		t.Errorf("common depth = %d, want 0", pieces[0].Groups[0].CommonDepth)
	}
}
