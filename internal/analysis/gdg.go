package analysis

import (
	"fmt"
	"sort"
	"strings"

	"pacman/internal/proc"
)

// SliceRef identifies a slice globally: (procedure ID, slice ID in its LDG).
type SliceRef struct {
	ProcID  int
	SliceID int
}

// Block is one node of the global dependency graph: a set of slices from
// (possibly) many procedures whose pieces form one piece-set per log batch.
type Block struct {
	ID     int
	Slices []SliceRef
}

// GroupDef describes one static operation group of a piece: a connected
// component of intra-piece flow dependencies. Operation instances of one
// group always execute together as one scheduling unit of the dynamic
// analysis; CommonDepth is the number of enclosing loops shared by all
// members, which determines how loop iterations split into dynamic groups.
type GroupDef struct {
	CommonDepth int
	Ops         []int
}

// PieceDef is the static definition of one piece: the operations a given
// procedure contributes to a given block, partitioned into groups.
type PieceDef struct {
	Proc  *proc.Compiled
	Block int
	Ops   []int
	// GroupOf maps each op of the piece to its group index (ops not in the
	// piece map to -1).
	GroupOf map[int]int
	Groups  []GroupDef
	// Filter is the op-set filter selecting this piece's operations.
	Filter proc.OpSetFilter
}

// GDG is the global dependency graph (Section 4.1.2): blocks in a
// deterministic topological order, block dependency edges, and the derived
// lookup structures recovery scheduling needs.
type GDG struct {
	Procs  []*proc.Compiled
	LDGs   []*LDG // parallel to Procs
	Blocks []*Block

	preds [][]int // per block: direct predecessor blocks, sorted
	succs [][]int

	// pieces maps a procedure's registry ID to its pieces ordered by block
	// ID. Keyed by ID (not input position) because the GDG is typically
	// built over the log-generating procedures only — read-only procedures
	// are excluded, exactly as the paper's Figure 21 ignores them.
	pieces map[int][]*PieceDef

	// tableOwner maps a catalog table ID to the block containing its
	// modification operations (unique: any two writers of one table are
	// data-dependent and therefore share a block), or -1 for tables that
	// are never modified by any procedure.
	tableOwner map[int]int
}

// BuildGDG integrates the local dependency graphs into the global graph
// following Algorithm 2. The LDGs may come from PACMAN's slicer (BuildLDG)
// or any alternative decomposition (e.g., transaction chopping); the
// integration and all derived structures are decomposition-agnostic.
func BuildGDG(ldgs []*LDG) *GDG {
	g := &GDG{LDGs: ldgs, tableOwner: make(map[int]int)}
	for _, l := range ldgs {
		g.Procs = append(g.Procs, l.Proc)
	}

	// Global slice numbering.
	type gslice struct {
		ref SliceRef
		ldg *LDG
		s   *Slice
	}
	var slices []gslice
	sliceIdx := make(map[SliceRef]int)
	for pi, l := range ldgs {
		for _, s := range l.Slices {
			ref := SliceRef{ProcID: pi, SliceID: s.ID}
			sliceIdx[ref] = len(slices)
			slices = append(slices, gslice{ref: ref, ldg: l, s: s})
		}
	}
	n := len(slices)
	uf := newUnionFind(n)

	// Merge blocks holding data-dependent slices from distinct procedures
	// (same-procedure data dependencies were already merged into one slice
	// by Algorithm 1). Data dependence is table-granular: both touch the
	// table, at least one modifies it.
	type tableUse struct{ reads, writes []int }
	uses := make(map[int]*tableUse)
	for gi, gs := range slices {
		seen := make(map[int]uint8) // tableID -> 1=read 2=write bits
		for _, opID := range gs.s.Ops {
			op := gs.ldg.Proc.Op(opID)
			if op.Kind.IsModification() {
				seen[op.TableID] |= 2
			} else {
				seen[op.TableID] |= 1
			}
		}
		for tid, bits := range seen {
			u := uses[tid]
			if u == nil {
				u = &tableUse{}
				uses[tid] = u
			}
			if bits&2 != 0 {
				u.writes = append(u.writes, gi)
			}
			if bits&1 != 0 {
				u.reads = append(u.reads, gi)
			}
		}
	}
	for _, u := range uses {
		// All writers of a table merge together, and every reader merges
		// with the writers. Readers of a never-written table stay apart.
		for i := 1; i < len(u.writes); i++ {
			uf.union(u.writes[0], u.writes[i])
		}
		if len(u.writes) > 0 {
			for _, r := range u.reads {
				uf.union(u.writes[0], r)
			}
		}
	}

	// Edge function: slice-level flow edges (intra-procedure only).
	depsOf := func(gi int) []int {
		gs := slices[gi]
		var deps []int
		// Predecessors of gs: slices with an edge into gs.
		for from, succ := range gs.ldg.Succs {
			for _, to := range succ {
				if to == gs.ref.SliceID {
					deps = append(deps, sliceIdx[SliceRef{ProcID: gs.ref.ProcID, SliceID: from}])
				}
			}
		}
		return deps
	}

	// Cycle breaking on the block quotient graph, to fixpoint (merging can
	// create new cycles).
	for mergeSCCs(n, uf, depsOf) {
	}

	// Assemble blocks with a deterministic topological order.
	groups := uf.groups()
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	// Signature for tie-breaking: smallest (procID, sliceID) member.
	sigOf := func(r int) SliceRef {
		best := slices[groups[r][0]].ref
		for _, m := range groups[r] {
			ref := slices[m].ref
			if ref.ProcID < best.ProcID || (ref.ProcID == best.ProcID && ref.SliceID < best.SliceID) {
				best = ref
			}
		}
		return best
	}
	// Build quotient edges among roots.
	qsucc := make(map[int]map[int]struct{})
	qpredCount := make(map[int]int)
	for _, r := range roots {
		qsucc[r] = make(map[int]struct{})
	}
	for gi := range slices {
		rTo := uf.find(gi)
		for _, d := range depsOf(gi) {
			rFrom := uf.find(d)
			if rFrom == rTo {
				continue
			}
			if _, dup := qsucc[rFrom][rTo]; !dup {
				qsucc[rFrom][rTo] = struct{}{}
				qpredCount[rTo]++
			}
		}
	}
	// Kahn's algorithm with deterministic tie-breaking.
	less := func(a, b int) bool {
		sa, sb := sigOf(a), sigOf(b)
		if sa.ProcID != sb.ProcID {
			return sa.ProcID < sb.ProcID
		}
		return sa.SliceID < sb.SliceID
	}
	var ready []int
	for _, r := range roots {
		if qpredCount[r] == 0 {
			ready = append(ready, r)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
	blockOf := make(map[int]int) // root -> block ID
	var order []int
	for len(ready) > 0 {
		r := ready[0]
		ready = ready[1:]
		blockOf[r] = len(order)
		order = append(order, r)
		var newly []int
		for to := range qsucc[r] {
			qpredCount[to]--
			if qpredCount[to] == 0 {
				newly = append(newly, to)
			}
		}
		sort.Slice(newly, func(i, j int) bool { return less(newly[i], newly[j]) })
		ready = append(ready, newly...)
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
	}
	if len(order) != len(roots) {
		// Cannot happen: SCC merging removed all cycles.
		panic("analysis: GDG quotient graph is cyclic")
	}

	g.Blocks = make([]*Block, len(order))
	g.preds = make([][]int, len(order))
	g.succs = make([][]int, len(order))
	for id, r := range order {
		b := &Block{ID: id}
		for _, m := range groups[r] {
			b.Slices = append(b.Slices, slices[m].ref)
		}
		sort.Slice(b.Slices, func(i, j int) bool {
			if b.Slices[i].ProcID != b.Slices[j].ProcID {
				return b.Slices[i].ProcID < b.Slices[j].ProcID
			}
			return b.Slices[i].SliceID < b.Slices[j].SliceID
		})
		g.Blocks[id] = b
	}
	for _, rFrom := range order {
		from := blockOf[rFrom]
		for rTo := range qsucc[rFrom] {
			to := blockOf[rTo]
			g.succs[from] = append(g.succs[from], to)
			g.preds[to] = append(g.preds[to], from)
		}
	}
	for i := range g.preds {
		sort.Ints(g.preds[i])
		sort.Ints(g.succs[i])
	}

	g.buildPieces(sliceIdx, uf, blockOf)
	g.buildTableOwners()
	return g
}

// buildPieces derives per-procedure piece definitions: the union of a
// procedure's slice ops per block (GDG property 4 merges same-procedure
// slices inside a block into one slice — one piece), plus the static
// operation groups used by the dynamic analysis.
func (g *GDG) buildPieces(sliceIdx map[SliceRef]int, uf *unionFind, blockOf map[int]int) {
	g.pieces = make(map[int][]*PieceDef, len(g.Procs))
	for pi, l := range g.LDGs {
		byBlock := make(map[int][]int) // block -> ops
		for _, s := range l.Slices {
			gi := sliceIdx[SliceRef{ProcID: pi, SliceID: s.ID}]
			b := blockOf[uf.find(gi)]
			byBlock[b] = append(byBlock[b], s.Ops...)
		}
		blockIDs := make([]int, 0, len(byBlock))
		for b := range byBlock {
			blockIDs = append(blockIDs, b)
		}
		sort.Ints(blockIDs)
		id := l.Proc.ID()
		for _, b := range blockIDs {
			ops := byBlock[b]
			sort.Ints(ops)
			g.pieces[id] = append(g.pieces[id], buildPieceDef(l.Proc, b, ops))
		}
	}
}

// buildPieceDef partitions a piece's ops into static groups: connected
// components under intra-piece flow dependencies.
func buildPieceDef(c *proc.Compiled, block int, ops []int) *PieceDef {
	pd := &PieceDef{
		Proc:    c,
		Block:   block,
		Ops:     ops,
		GroupOf: make(map[int]int, len(ops)),
		Filter:  make(proc.OpSetFilter, len(ops)),
	}
	inPiece := make(map[int]bool, len(ops))
	for _, op := range ops {
		inPiece[op] = true
		pd.Filter[op] = true
	}
	// Union-find over positions within ops.
	pos := make(map[int]int, len(ops))
	for i, op := range ops {
		pos[op] = i
	}
	uf := newUnionFind(len(ops))
	for _, op := range ops {
		for _, d := range c.Op(op).FlowDeps {
			if inPiece[d] {
				uf.union(pos[op], pos[d])
			}
		}
	}
	comps := uf.groups()
	roots := make([]int, 0, len(comps))
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return comps[roots[i]][0] < comps[roots[j]][0] })
	for gid, r := range roots {
		var members []int
		depth := -1
		for _, p := range comps[r] {
			op := ops[p]
			members = append(members, op)
			pd.GroupOf[op] = gid
			d := len(c.Op(op).Loops)
			if depth == -1 || d < depth {
				depth = d
			}
		}
		// CommonDepth is the longest common prefix of the members' loop
		// nests; with structured nesting the shallowest member's depth is
		// that prefix length.
		sort.Ints(members)
		pd.Groups = append(pd.Groups, GroupDef{CommonDepth: depth, Ops: members})
	}
	return pd
}

// buildTableOwners records, for every table modified by any procedure, the
// unique block holding its writers.
func (g *GDG) buildTableOwners() {
	for _, pieces := range g.pieces {
		for _, piece := range pieces {
			for _, opID := range piece.Ops {
				op := piece.Proc.Op(opID)
				if op.Kind.IsModification() {
					if prev, ok := g.tableOwner[op.TableID]; ok && prev != piece.Block {
						// Impossible by construction; guard against slicer bugs.
						panic(fmt.Sprintf("analysis: table %s owned by blocks %d and %d",
							op.Table, prev, piece.Block))
					}
					g.tableOwner[op.TableID] = piece.Block
				}
			}
		}
	}
}

// NumBlocks returns the number of blocks.
func (g *GDG) NumBlocks() int { return len(g.Blocks) }

// Preds returns the direct predecessor blocks of b.
func (g *GDG) Preds(b int) []int { return g.preds[b] }

// Succs returns the direct successor blocks of b.
func (g *GDG) Succs(b int) []int { return g.succs[b] }

// PiecesFor returns the piece definitions of a procedure, ordered by block.
func (g *GDG) PiecesFor(procID int) []*PieceDef { return g.pieces[procID] }

// TableOwner returns the block that modifies the given table, or -1 if the
// table is never modified.
func (g *GDG) TableOwner(tableID int) int {
	if b, ok := g.tableOwner[tableID]; ok {
		return b
	}
	return -1
}

// String renders the GDG in the style of the paper's Figure 5c / Figure 21:
// blocks with their slices and the block dependency edges.
func (g *GDG) String() string {
	var b strings.Builder
	b.WriteString("Global dependency graph:\n")
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "  B%d {", blk.ID)
		for i, ref := range blk.Slices {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s.S%d", g.Procs[ref.ProcID].Name(), ref.SliceID+1)
		}
		fmt.Fprintf(&b, "} -> B%v\n", g.succs[blk.ID])
	}
	return b.String()
}
