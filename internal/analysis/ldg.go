// Package analysis implements PACMAN's compile-time static analysis
// (Section 4.1): decomposing each stored procedure into a maximal set of
// procedure slices organized in a local dependency graph (Algorithm 1), and
// integrating the local graphs into the global dependency graph of blocks
// (Algorithm 2) that drives recovery scheduling.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"pacman/internal/proc"
)

// Slice is one procedure slice: a set of operations of a single procedure
// that must execute together (Section 4.1.1). Ops are sorted in program
// order.
type Slice struct {
	// ID is the slice's index within its LDG, assigned in program order of
	// the slice's first operation (so the paper's T1, T2, T3 come out as
	// slices 0, 1, 2).
	ID  int
	Ops []int
}

// LDG is the local dependency graph of one procedure: slices plus the
// intra-procedure flow-dependency edges between them.
type LDG struct {
	Proc   *proc.Compiled
	Slices []*Slice
	// Succs[i] lists slice IDs directly flow-dependent on slice i.
	Succs [][]int
	// sliceOf maps op ID to slice ID.
	sliceOf []int
}

// SliceOf returns the slice ID containing op.
func (g *LDG) SliceOf(op int) int { return g.sliceOf[op] }

// BuildLDG decomposes one compiled procedure following Algorithm 1:
// singleton slices, data-dependent merging, convexity closure, flow edges,
// and cycle breaking, iterated to a fixpoint.
func BuildLDG(c *proc.Compiled) *LDG {
	return BuildLDGWith(c, nil)
}

// BuildLDGWith is BuildLDG with additional pre-merged op groups: every op
// set in premerge is forced into one slice before the normal fixpoint runs.
// Alternative decomposers (the transaction-chopping baseline) coarsen
// PACMAN's decomposition through this entry point while still receiving a
// well-formed LDG (data-dependence closure, convexity, acyclicity).
func BuildLDGWith(c *proc.Compiled, premerge [][]int) *LDG {
	n := c.NumOps()
	uf := newUnionFind(n)
	for _, g := range premerge {
		for i := 1; i < len(g); i++ {
			uf.union(g[0], g[i])
		}
	}

	// Merge mutually data-dependent operations: same table, at least one
	// modification (insert and delete count as writes).
	ops := c.Ops()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ops[i].TableID == ops[j].TableID &&
				(ops[i].Kind.IsModification() || ops[j].Kind.IsModification()) {
				uf.union(i, j)
			}
		}
	}

	for {
		changed := false
		// Convexity: if x and y share a slice and y flow-depends on x, every
		// op between them (program order) joins the slice.
		for y := 0; y < n; y++ {
			for _, x := range ops[y].FlowDeps {
				if uf.find(x) != uf.find(y) {
					continue
				}
				for z := x + 1; z < y; z++ {
					if uf.union(z, y) {
						changed = true
					}
				}
			}
		}
		// Cycle breaking: merge slices that are mutually reachable through
		// flow edges.
		if mergeSCCs(n, uf, func(y int) []int { return ops[y].FlowDeps }) {
			changed = true
		}
		if !changed {
			break
		}
	}

	return assembleLDG(c, uf)
}

// mergeSCCs merges union-find groups that lie on a directed cycle of the
// quotient graph induced by op-level edges (dep(y) -> y). It reports
// whether anything merged.
func mergeSCCs(n int, uf *unionFind, depsOf func(int) []int) bool {
	// Build the quotient graph.
	adj := make(map[int]map[int]struct{})
	for y := 0; y < n; y++ {
		ry := uf.find(y)
		for _, x := range depsOf(y) {
			rx := uf.find(x)
			if rx == ry {
				continue
			}
			if adj[rx] == nil {
				adj[rx] = make(map[int]struct{})
			}
			adj[rx][ry] = struct{}{}
		}
	}
	// Tarjan SCC over the quotient nodes.
	sccs := stronglyConnected(adj)
	merged := false
	for _, comp := range sccs {
		for i := 1; i < len(comp); i++ {
			if uf.union(comp[0], comp[i]) {
				merged = true
			}
		}
	}
	return merged
}

// stronglyConnected returns the non-trivial (size > 1) strongly connected
// components of the graph.
func stronglyConnected(adj map[int]map[int]struct{}) [][]int {
	// Collect all nodes.
	nodes := make(map[int]struct{})
	for u, vs := range adj {
		nodes[u] = struct{}{}
		for v := range vs {
			nodes[v] = struct{}{}
		}
	}
	index := make(map[int]int)
	low := make(map[int]int)
	onStack := make(map[int]bool)
	var stack []int
	var out [][]int
	next := 0

	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sort.Ints(comp)
				out = append(out, comp)
			}
		}
	}
	// Deterministic iteration order.
	ordered := make([]int, 0, len(nodes))
	for v := range nodes {
		ordered = append(ordered, v)
	}
	sort.Ints(ordered)
	for _, v := range ordered {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// assembleLDG turns the final union-find into slices ordered by first op,
// and derives the slice-level flow edges.
func assembleLDG(c *proc.Compiled, uf *unionFind) *LDG {
	groups := uf.groups()
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	// Order slices by their first (minimum) op, giving T1, T2, ... naming.
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })

	g := &LDG{Proc: c, sliceOf: make([]int, c.NumOps())}
	rootSlice := make(map[int]int, len(roots))
	for id, r := range roots {
		s := &Slice{ID: id, Ops: groups[r]}
		g.Slices = append(g.Slices, s)
		rootSlice[r] = id
		for _, op := range s.Ops {
			g.sliceOf[op] = id
		}
	}
	// Slice edges from op flow deps.
	succSets := make([]map[int]struct{}, len(g.Slices))
	for y, op := range c.Ops() {
		sy := g.sliceOf[y]
		for _, x := range op.FlowDeps {
			sx := g.sliceOf[x]
			if sx == sy {
				continue
			}
			if succSets[sx] == nil {
				succSets[sx] = make(map[int]struct{})
			}
			succSets[sx][sy] = struct{}{}
		}
	}
	g.Succs = make([][]int, len(g.Slices))
	for i, set := range succSets {
		for v := range set {
			g.Succs[i] = append(g.Succs[i], v)
		}
		sort.Ints(g.Succs[i])
	}
	return g
}

// String renders the LDG for debugging and the analyzer tool.
func (g *LDG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LDG(%s):\n", g.Proc.Name())
	for _, s := range g.Slices {
		fmt.Fprintf(&b, "  S%d {", s.ID+1)
		for i, op := range s.Ops {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.Proc.FormatOp(op))
		}
		fmt.Fprintf(&b, "} -> %v\n", plusOne(g.Succs[s.ID]))
	}
	return b.String()
}

func plusOne(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + 1
	}
	return out
}
