package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// genProcedure builds a random but well-formed procedure over nTables
// generic tables: a mix of reads, writes, assigns, and guards, with
// variables used only after definition.
func genProcedure(rng *rand.Rand, name string, nTables int) *proc.Procedure {
	tables := make([]string, nTables)
	for i := range tables {
		tables[i] = fmt.Sprintf("T%d", i)
	}
	var body []proc.Stmt
	var vars []string
	nStmts := 3 + rng.Intn(8)
	varID := 0
	newVar := func() string {
		varID++
		return fmt.Sprintf("%s_v%d", name, varID)
	}
	randExpr := func() proc.Expr {
		if len(vars) > 0 && rng.Intn(2) == 0 {
			return proc.V(vars[rng.Intn(len(vars))])
		}
		if rng.Intn(2) == 0 {
			return proc.Pm("k")
		}
		return proc.CI(int64(rng.Intn(100)))
	}
	emit := func() proc.Stmt {
		tab := tables[rng.Intn(len(tables))]
		switch rng.Intn(4) {
		case 0:
			v := newVar()
			s := proc.Read(v, tab, proc.Pm("k"), "v")
			vars = append(vars, v)
			return s
		case 1:
			return proc.Write(tab, proc.Pm("k"), proc.Set("v", randExpr()))
		case 2:
			v := newVar()
			s := proc.Assign(v, proc.Add(randExpr(), randExpr()))
			vars = append(vars, v)
			return s
		default:
			return proc.If(proc.Gt(randExpr(), proc.CI(50)),
				proc.Write(tab, proc.Pm("k"), proc.Set("v", randExpr())))
		}
	}
	for i := 0; i < nStmts; i++ {
		body = append(body, emit())
	}
	return &proc.Procedure{
		Name:   name,
		Params: []proc.ParamDef{proc.P("k")},
		Body:   body,
	}
}

// TestRandomProcedureInvariants fuzzes the whole static-analysis pipeline:
// for random procedure sets, the LDG and GDG structural invariants must
// hold (slice partitioning, data-dependence closure, acyclicity,
// topological numbering, single table ownership).
func TestRandomProcedureInvariants(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		db := engine.NewDatabase()
		nTables := 2 + rng.Intn(4)
		for i := 0; i < nTables; i++ {
			db.MustAddTable(tuple.MustSchema(fmt.Sprintf("T%d", i),
				tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt)))
		}
		nProcs := 1 + rng.Intn(3)
		var ldgs []*LDG
		for p := 0; p < nProcs; p++ {
			src := genProcedure(rng, fmt.Sprintf("P%d", p), nTables)
			c, err := proc.Compile(db, src, p)
			if err != nil {
				t.Fatalf("trial %d: compile: %v", trial, err)
			}
			if c.NumOps() == 0 {
				continue
			}
			g := BuildLDG(c)
			assertLDGInvariants(t, g)
			ldgs = append(ldgs, g)
		}
		if len(ldgs) == 0 {
			continue
		}
		gdg := BuildGDG(ldgs)
		assertGDGInvariants(t, gdg, ldgs)
		// Table ownership: every table with a writer has exactly one block,
		// and every writer op of that table lives there.
		for ti := 0; ti < nTables; ti++ {
			owner := gdg.TableOwner(ti)
			for pi, l := range ldgs {
				for _, pd := range gdg.PiecesFor(l.Proc.ID()) {
					for _, opID := range pd.Ops {
						op := l.Proc.Op(opID)
						if op.TableID == ti && op.Kind.IsModification() && pd.Block != owner {
							t.Fatalf("trial %d: proc %d writes table %d in block %d, owner %d",
								trial, pi, ti, pd.Block, owner)
						}
					}
				}
			}
		}
		if t.Failed() {
			t.Fatalf("trial %d failed", trial)
		}
	}
}

// TestRandomGroupInvariants: for random procedures, every piece's groups
// partition its ops, and flow-dependent ops within a piece share a group.
func TestRandomGroupInvariants(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		db := engine.NewDatabase()
		for i := 0; i < 3; i++ {
			db.MustAddTable(tuple.MustSchema(fmt.Sprintf("T%d", i),
				tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt)))
		}
		src := genProcedure(rng, "P", 3)
		c, err := proc.Compile(db, src, 0)
		if err != nil || c.NumOps() == 0 {
			continue
		}
		g := BuildGDG([]*LDG{BuildLDG(c)})
		for _, pd := range g.PiecesFor(0) {
			seen := map[int]bool{}
			for _, grp := range pd.Groups {
				for _, op := range grp.Ops {
					if seen[op] {
						t.Fatalf("trial %d: op %d in two groups", trial, op)
					}
					seen[op] = true
				}
			}
			if len(seen) != len(pd.Ops) {
				t.Fatalf("trial %d: groups cover %d of %d ops", trial, len(seen), len(pd.Ops))
			}
			inPiece := map[int]bool{}
			for _, op := range pd.Ops {
				inPiece[op] = true
			}
			for _, op := range pd.Ops {
				for _, dep := range c.Op(op).FlowDeps {
					if inPiece[dep] && pd.GroupOf[op] != pd.GroupOf[dep] {
						t.Fatalf("trial %d: flow-dependent ops %d->%d in groups %d/%d",
							trial, dep, op, pd.GroupOf[dep], pd.GroupOf[op])
					}
				}
			}
		}
	}
}
