package analysis

// unionFind is a plain disjoint-set structure with path compression and
// union by size, used by the slice and block merging steps of Algorithms 1
// and 2.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, returning true if they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// groups returns the members of each set, keyed by root, with members
// sorted ascending.
func (u *unionFind) groups() map[int][]int {
	out := make(map[int][]int)
	for i := range u.parent {
		r := u.find(i)
		out[r] = append(out[r], i)
	}
	return out
}
