// Package checkpoint implements transactionally consistent checkpointing
// and checkpoint recovery (paper Section 2.2 / 2.3).
//
// A checkpoint is taken at a snapshot timestamp derived from the safe
// epoch: every transaction at or below the safe epoch has fully installed
// its versions and no future transaction can commit below it, so reading
// each row at the snapshot timestamp through its version chain yields a
// consistent cut while transactions keep running (multi-version storage
// makes the checkpoint non-blocking, as the paper notes for MVCC systems).
//
// Checkpoints compatible with physical logging additionally record each
// row's physical slot ("the content and the location of each tuple"), and
// their restore path rebuilds the slab at the recorded addresses with index
// reconstruction deferred; logical/command checkpoints record contents only
// and rebuild the index inline during restore (Section 2.3).
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"pacman/internal/engine"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
)

const (
	manifestMagic = 0x5041434B // "PACK"
	shardMagic    = 0x50414353 // "PACS"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Config tunes checkpointing.
type Config struct {
	// Threads is the number of concurrent checkpoint writer threads
	// (the paper assigns one per SSD).
	Threads int
	// IncludeSlots records physical slots per row (physical-logging
	// compatible checkpoints).
	IncludeSlots bool
	// ShardsPerTable splits each table into this many files for parallel
	// restore. Defaults to Threads.
	ShardsPerTable int
}

// ManifestName returns the manifest file of checkpoint id.
func ManifestName(id uint32) string { return fmt.Sprintf("ckpt-%06d-manifest", id) }

func shardName(id uint32, tableID, shard int) string {
	return fmt.Sprintf("ckpt-%06d-t%03d-s%03d", id, tableID, shard)
}

// Manifest describes one completed checkpoint.
type Manifest struct {
	ID           uint32
	TS           engine.TS
	IncludeSlots bool
	// Tables maps table ID to its shard count.
	Tables map[int]int
	// Rows is the total row count (reporting).
	Rows int64
}

// Write runs one checkpoint at snapshot ts, writing shard files round-robin
// across the devices and the manifest (last, synced) to devices[0]. It
// returns the manifest.
func Write(db *engine.Database, devices []*simdisk.Device, cfg Config, id uint32, ts engine.TS) (*Manifest, error) {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.ShardsPerTable < 1 {
		cfg.ShardsPerTable = cfg.Threads
	}
	man := &Manifest{ID: id, TS: ts, IncludeSlots: cfg.IncludeSlots, Tables: map[int]int{}}

	type job struct {
		table  *engine.Table
		shard  int
		lo, hi uint64
		dev    *simdisk.Device
	}
	var jobs []job
	di := 0
	for _, t := range db.Tables() {
		n := t.NumSlots()
		shards := cfg.ShardsPerTable
		man.Tables[t.ID()] = shards
		per := (n + uint64(shards) - 1) / uint64(shards)
		if per == 0 {
			per = 1
		}
		for s := 0; s < shards; s++ {
			lo := uint64(s) * per
			hi := lo + per
			if lo > n {
				lo = n
			}
			if hi > n {
				hi = n
			}
			jobs = append(jobs, job{table: t, shard: s, lo: lo, hi: hi, dev: devices[di%len(devices)]})
			di++
		}
	}

	var mu sync.Mutex
	var firstErr error
	var rows int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Threads)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n, err := writeShard(j.table, j.dev, cfg, id, j.shard, j.lo, j.hi, ts)
			mu.Lock()
			rows += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	man.Rows = rows

	// Manifest last: its (checksummed) presence marks the checkpoint
	// complete. A crash before the sync leaves a torn manifest that fails
	// the CRC and the previous checkpoint stays authoritative.
	w := devices[0].Create(ManifestName(id))
	if _, err := w.Write(encodeManifest(man)); err != nil {
		return nil, err
	}
	if err := w.Sync(); err != nil {
		return nil, err
	}
	return man, nil
}

func writeShard(t *engine.Table, dev *simdisk.Device, cfg Config, id uint32, shard int, lo, hi uint64, ts engine.TS) (int64, error) {
	w := dev.Create(shardName(id, t.ID(), shard))
	var hdr []byte
	hdr = binary.LittleEndian.AppendUint32(hdr, shardMagic)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(t.ID()))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(shard))
	w.Write(hdr)
	var rows int64
	buf := make([]byte, 0, 64<<10)
	t.ScanSlots(lo, hi, func(r *engine.Row) {
		data := r.ReadAt(ts)
		if data == nil {
			return // never visible or deleted at the snapshot
		}
		buf = binary.LittleEndian.AppendUint64(buf, r.Key)
		if cfg.IncludeSlots {
			buf = binary.LittleEndian.AppendUint64(buf, r.Slot)
		}
		buf = tuple.AppendTuple(buf, data)
		rows++
		if len(buf) >= 48<<10 {
			w.Write(buf)
			buf = buf[:0]
		}
	})
	if len(buf) > 0 {
		w.Write(buf)
	}
	return rows, w.Sync()
}

// encodeManifest frames the manifest as magic + payload + trailing CRC32.
// The CRC is what makes "the manifest's presence marks the checkpoint
// complete" crash-safe: a manifest torn by a power failure mid-write — even
// one whose partially persisted sector decodes structurally — fails the
// checksum and the previous checkpoint stays authoritative.
func encodeManifest(m *Manifest) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, manifestMagic)
	b = binary.LittleEndian.AppendUint32(b, m.ID)
	b = binary.LittleEndian.AppendUint64(b, m.TS)
	if m.IncludeSlots {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Rows))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Tables)))
	// Tables in ID order for determinism.
	maxID := -1
	for id := range m.Tables {
		if id > maxID {
			maxID = id
		}
	}
	for id := 0; id <= maxID; id++ {
		if shards, ok := m.Tables[id]; ok {
			b = binary.LittleEndian.AppendUint16(b, uint16(id))
			b = binary.LittleEndian.AppendUint16(b, uint16(shards))
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

func decodeManifest(b []byte) (*Manifest, error) {
	if len(b) < 4+4+8+1+8+2+4 {
		return nil, fmt.Errorf("checkpoint: manifest truncated")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("checkpoint: manifest checksum mismatch")
	}
	if binary.LittleEndian.Uint32(b) != manifestMagic {
		return nil, fmt.Errorf("checkpoint: bad manifest magic")
	}
	m := &Manifest{
		ID:           binary.LittleEndian.Uint32(b[4:]),
		TS:           binary.LittleEndian.Uint64(b[8:]),
		IncludeSlots: b[16] == 1,
		Rows:         int64(binary.LittleEndian.Uint64(b[17:])),
		Tables:       map[int]int{},
	}
	n := int(binary.LittleEndian.Uint16(b[25:]))
	off := 27
	for i := 0; i < n; i++ {
		if len(body[off:]) < 4 {
			return nil, fmt.Errorf("checkpoint: manifest tables truncated")
		}
		id := int(binary.LittleEndian.Uint16(b[off:]))
		m.Tables[id] = int(binary.LittleEndian.Uint16(b[off+2:]))
		off += 4
	}
	return m, nil
}

// FindLatest locates the newest complete checkpoint across the devices, or
// returns nil if none exists. Only a manifest that fails to DECODE is
// treated as incomplete (crashed mid-manifest); an I/O error reading one
// propagates — swallowing a transient read fault here would silently skip
// a durable checkpoint and fork the recovery timeline (the checkpoint's
// snapshot can cover epochs beyond the logged pepoch, so recovering
// without it yields a different state than the next recovery, which may
// see the checkpoint again).
func FindLatest(devices []*simdisk.Device) (*Manifest, error) {
	var best *Manifest
	for _, d := range devices {
		for _, name := range d.List("ckpt-") {
			if len(name) < 8 || name[len(name)-8:] != "manifest" {
				continue
			}
			r, err := d.Open(name)
			if err != nil {
				return nil, err
			}
			data, err := r.ReadAll()
			if err != nil {
				return nil, err
			}
			m, err := decodeManifest(data)
			if err != nil {
				continue // incomplete (crashed mid-manifest)
			}
			if best == nil || m.ID > best.ID {
				best = m
			}
		}
	}
	return best, nil
}

// RestoreStats reports restore volume.
type RestoreStats struct {
	Rows  int64
	Bytes int64
	// ReloadTime is the portion spent reading and decoding files;
	// the remainder of the restore wall time is row installation and
	// (inline) index building. Figure 13a plots this split.
	ReloadTime time.Duration
}

// Restore rebuilds the table space from checkpoint m with up to `threads`
// parallel workers. With deferIndex (the physical-logging mode) rows are
// placed at their recorded slots and the primary indexes are NOT rebuilt —
// the caller rebuilds them after log replay. Otherwise rows get fresh slots
// and the indexes are built inline.
func Restore(db *engine.Database, devices []*simdisk.Device, m *Manifest, threads int, deferIndex bool) (RestoreStats, error) {
	if threads < 1 {
		threads = 1
	}
	if deferIndex && !m.IncludeSlots {
		return RestoreStats{}, fmt.Errorf("checkpoint: deferred-index restore requires slot-recording checkpoint")
	}
	type job struct {
		tableID, shard int
	}
	var jobs []job
	for id, shards := range m.Tables {
		for s := 0; s < shards; s++ {
			jobs = append(jobs, job{tableID: id, shard: s})
		}
	}
	var mu sync.Mutex
	var stats RestoreStats
	var firstErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, threads)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows, bytes, rt, err := restoreShard(db, devices, m, j.tableID, j.shard, deferIndex)
			mu.Lock()
			stats.Rows += rows
			stats.Bytes += bytes
			stats.ReloadTime += rt
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return stats, firstErr
}

func restoreShard(db *engine.Database, devices []*simdisk.Device, m *Manifest, tableID, shard int, deferIndex bool) (int64, int64, time.Duration, error) {
	name := shardName(m.ID, tableID, shard)
	var data []byte
	loadStart := time.Now()
	for _, d := range devices {
		r, err := d.Open(name)
		if err != nil {
			continue
		}
		data, err = r.ReadAll()
		if err != nil {
			return 0, 0, 0, err
		}
		break
	}
	if data == nil {
		return 0, 0, 0, fmt.Errorf("checkpoint: shard %s not found", name)
	}
	reload := time.Since(loadStart)
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != shardMagic {
		return 0, 0, 0, fmt.Errorf("checkpoint: shard %s corrupt header", name)
	}
	t := db.TableByID(tableID)
	if t == nil {
		return 0, 0, 0, fmt.Errorf("checkpoint: unknown table %d", tableID)
	}
	rest := data[8:]
	var rows int64
	for len(rest) > 0 {
		if len(rest) < 8 {
			return 0, 0, 0, fmt.Errorf("checkpoint: shard %s truncated", name)
		}
		key := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		var slot uint64
		if m.IncludeSlots {
			if len(rest) < 8 {
				return 0, 0, 0, fmt.Errorf("checkpoint: shard %s truncated", name)
			}
			slot = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
		}
		tup, n, err := tuple.DecodeTuple(rest)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("checkpoint: shard %s: %w", name, err)
		}
		rest = rest[n:]
		var row *engine.Row
		if deferIndex {
			row = t.PlaceRowAt(slot, key)
		} else if m.IncludeSlots {
			row = t.PlaceRowAt(slot, key)
			t.InsertIndex(key, row)
		} else {
			row, _ = t.GetOrCreateRow(key)
		}
		row.Install(m.TS, tup, false, true)
		rows++
	}
	return rows, int64(len(data)), reload, nil
}

// TruncateLogs removes log batch files wholly covered by a checkpoint:
// batches whose last epoch is at or below coveredEpoch.
func TruncateLogs(devices []*simdisk.Device, coveredEpoch uint32, batchEpochs uint32) int {
	removed := 0
	for _, d := range devices {
		for _, name := range d.List("log-") {
			var logger, batch uint32
			if _, err := fmt.Sscanf(name, "log-%d-%d", &logger, &batch); err != nil {
				continue
			}
			lastEpoch := (batch+1)*batchEpochs - 1
			if lastEpoch <= coveredEpoch {
				if d.Remove(name) == nil {
					removed++
				}
			}
		}
	}
	return removed
}
