package checkpoint

import (
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/mvcc"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

func bankWithData(t testing.TB, accounts int) (*workload.Bank, *txn.Manager) {
	t.Helper()
	b := workload.NewBank(accounts)
	b.Populate(workload.DirectPopulate{})
	m := txn.NewManager(b.DB(), txn.DefaultConfig())
	return b, m
}

func devs(n int) []*simdisk.Device {
	var out []*simdisk.Device
	for i := 0; i < n; i++ {
		out = append(out, simdisk.New("d", simdisk.Unlimited()))
	}
	return out
}

// tableTotals sums the Value column of a table for state comparison.
func tableTotal(t testing.TB, tab *engine.Table) int64 {
	t.Helper()
	var total int64
	tab.ScanSlots(0, tab.NumSlots(), func(r *engine.Row) {
		if d := r.LatestData(); d != nil {
			total += d[1].Int()
		}
	})
	return total
}

func TestWriteAndRestoreRoundTrip(t *testing.T) {
	b, _ := bankWithData(t, 100)
	dd := devs(2)
	ts := engine.MakeTS(0, ^uint32(0))
	m, err := Write(b.DB(), dd, Config{Threads: 2}, 1, ts)
	if err != nil {
		t.Fatal(err)
	}
	// 100 accounts x3 tables + 50 nations.
	if m.Rows != 350 {
		t.Fatalf("rows = %d", m.Rows)
	}
	// Restore into a fresh catalog.
	b2 := workload.NewBank(100) // same schema, unpopulated
	found, err := FindLatest(dd)
	if err != nil || found == nil || found.ID != 1 {
		t.Fatalf("FindLatest = %+v, %v", found, err)
	}
	stats, err := Restore(b2.DB(), dd, found, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 350 {
		t.Fatalf("restored rows = %d", stats.Rows)
	}
	for _, name := range []string{"Family", "Current", "Saving", "Stats"} {
		want := tableTotal(t, b.DB().Table(name))
		got := tableTotal(t, b2.DB().Table(name))
		if got != want {
			t.Errorf("table %s: restored total %d, want %d", name, got, want)
		}
		// Inline index rebuilt.
		if b2.DB().Table(name).IndexLen() != b.DB().Table(name).IndexLen() {
			t.Errorf("table %s: index len %d vs %d", name,
				b2.DB().Table(name).IndexLen(), b.DB().Table(name).IndexLen())
		}
	}
}

func TestSnapshotConsistency(t *testing.T) {
	// Writes after the snapshot TS must not appear in the checkpoint.
	b, m := bankWithData(t, 10)
	w := m.NewWorker()
	snapTS := engine.MakeTS(1, ^uint32(0))
	// Commit one deposit in epoch 2 (after the snapshot).
	m.AdvanceEpoch()
	if _, err := w.Execute(b.Deposit,
		proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(1000)), proc.A(tuple.I(1))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	dd := devs(1)
	if _, err := Write(b.DB(), dd, Config{Threads: 1}, 1, snapTS); err != nil {
		t.Fatal(err)
	}
	b2 := workload.NewBank(10)
	man, _ := FindLatest(dd)
	if _, err := Restore(b2.DB(), dd, man, 1, false); err != nil {
		t.Fatal(err)
	}
	r, ok := b2.DB().Table("Current").GetRow(1)
	if !ok {
		t.Fatal("row missing")
	}
	if got := r.LatestData()[1].Int(); got != 10 {
		t.Errorf("snapshot leaked post-snapshot write: %d, want 10", got)
	}
}

func TestPhysicalCheckpointDeferredIndex(t *testing.T) {
	b, _ := bankWithData(t, 50)
	dd := devs(1)
	ts := engine.MakeTS(0, ^uint32(0))
	if _, err := Write(b.DB(), dd, Config{Threads: 2, IncludeSlots: true}, 1, ts); err != nil {
		t.Fatal(err)
	}
	man, _ := FindLatest(dd)
	if !man.IncludeSlots {
		t.Fatal("manifest lost IncludeSlots")
	}
	b2 := workload.NewBank(50)
	if _, err := Restore(b2.DB(), dd, man, 2, true); err != nil {
		t.Fatal(err)
	}
	cur := b2.DB().Table("Current")
	// Index deferred: empty until reindexed.
	if cur.IndexLen() != 0 {
		t.Fatalf("index not deferred: len = %d", cur.IndexLen())
	}
	// Rows placed at original slots.
	orig := b.DB().Table("Current")
	found := 0
	orig.ScanSlots(0, orig.NumSlots(), func(r *engine.Row) {
		r2 := cur.RowBySlot(r.Slot)
		if r2 == nil || r2.Key != r.Key {
			t.Fatalf("slot %d not faithfully restored", r.Slot)
		}
		found++
	})
	if found != 50 {
		t.Fatalf("slots checked = %d", found)
	}
	// Reindex completes the restore.
	cur.ReindexSlots(0, cur.NumSlots())
	if cur.IndexLen() != 50 {
		t.Fatalf("reindexed len = %d", cur.IndexLen())
	}
	// Deferred restore without slots must fail.
	dd2 := devs(1)
	if _, err := Write(b.DB(), dd2, Config{Threads: 1}, 2, ts); err != nil {
		t.Fatal(err)
	}
	man2, _ := FindLatest(dd2)
	if _, err := Restore(workload.NewBank(1).DB(), dd2, man2, 1, true); err == nil {
		t.Error("deferred restore without slots accepted")
	}
}

func TestFindLatestPicksNewest(t *testing.T) {
	b, _ := bankWithData(t, 10)
	dd := devs(1)
	ts := engine.MakeTS(0, ^uint32(0))
	for id := uint32(1); id <= 3; id++ {
		if _, err := Write(b.DB(), dd, Config{Threads: 1}, id, ts); err != nil {
			t.Fatal(err)
		}
	}
	m, err := FindLatest(dd)
	if err != nil || m == nil || m.ID != 3 {
		t.Fatalf("FindLatest = %+v, %v", m, err)
	}
	// No checkpoints: nil.
	if m, _ := FindLatest(devs(1)); m != nil {
		t.Error("FindLatest on empty device should be nil")
	}
}

func TestIncompleteCheckpointIgnored(t *testing.T) {
	b, _ := bankWithData(t, 10)
	dd := devs(1)
	ts := engine.MakeTS(0, ^uint32(0))
	if _, err := Write(b.DB(), dd, Config{Threads: 1}, 1, ts); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-checkpoint 2: shard written, manifest missing.
	w := dd[0].Create(ManifestName(2))
	w.Write([]byte{1, 2, 3}) // truncated garbage, never synced fully
	m, err := FindLatest(dd)
	if err != nil || m == nil || m.ID != 1 {
		t.Fatalf("FindLatest = %+v, %v; want checkpoint 1", m, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{ID: 7, TS: engine.MakeTS(3, 9), IncludeSlots: true, Rows: 1234,
		Tables: map[int]int{0: 2, 1: 4, 3: 1}}
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.TS != m.TS || !got.IncludeSlots || got.Rows != 1234 {
		t.Errorf("round trip = %+v", got)
	}
	if len(got.Tables) != 3 || got.Tables[1] != 4 {
		t.Errorf("tables = %v", got.Tables)
	}
	if _, err := decodeManifest([]byte{1, 2}); err == nil {
		t.Error("short manifest accepted")
	}
}

func TestDaemon(t *testing.T) {
	b, m := bankWithData(t, 20)
	_ = b
	dd := devs(1)
	views := mvcc.NewManager(m.DB(), mvcc.Config{SnapshotEpoch: m.SnapshotEpoch})
	d := NewDaemon(m, views, dd, Config{Threads: 1}, 5*time.Millisecond)
	d.Start()
	time.Sleep(25 * time.Millisecond)
	d.Stop()
	last := d.Last()
	if last == nil {
		t.Fatal("daemon took no checkpoints")
	}
	found, _ := FindLatest(dd)
	if found == nil || found.ID != last.ID {
		t.Errorf("latest on disk = %+v, daemon last = %+v", found, last)
	}
	d.Stop() // idempotent
}

func TestTruncateLogs(t *testing.T) {
	dd := devs(1)
	// Batches of 10 epochs: batch 0 covers 0-9, batch 1 covers 10-19.
	for b := uint32(0); b < 3; b++ {
		w := dd[0].Create(BatchLike(int(b)))
		w.Write([]byte("x"))
		w.Sync()
	}
	removed := TruncateLogs(dd, 19, 10)
	if removed != 2 {
		t.Fatalf("removed = %d, want batches 0 and 1", removed)
	}
	left := dd[0].List("log-")
	if len(left) != 1 {
		t.Fatalf("left = %v", left)
	}
}

// BatchLike mirrors wal.BatchFileName without importing wal (cycle-free).
func BatchLike(batch int) string {
	return "log-000-" + pad8(batch)
}

func pad8(n int) string {
	s := ""
	for i := 0; i < 8; i++ {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
