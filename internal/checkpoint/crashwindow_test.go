package checkpoint

import (
	"strings"
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

// execDeposit commits one unit deposit so successive checkpoints differ.
func execDeposit(t *testing.T, b *workload.Bank, m *txn.Manager, acct int64) {
	t.Helper()
	w := m.NewWorker()
	if _, err := w.Execute(b.Deposit,
		proc.Args{proc.A(tuple.I(acct)), proc.A(tuple.I(1)), proc.A(tuple.I(1))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	w.Retire()
}

// TestCrashBetweenShardsAndManifest: a checkpoint that crashes after its
// shard writes but before the manifest publish must leave the previous
// checkpoint authoritative — FindLatest ignores the orphaned shards, and
// restoring the previous checkpoint still works. The exact window is
// reproduced deterministically: checkpoint 2's shards are all durable (the
// real protocol syncs them before the manifest), and its manifest is cut to
// a torn prefix the way a power failure mid-sector leaves it.
func TestCrashBetweenShardsAndManifest(t *testing.T) {
	b, m := bankWithData(t, 50)
	dd := devs(2)
	ts := engine.MakeTS(0, ^uint32(0))
	if _, err := Write(b.DB(), dd, Config{Threads: 2}, 1, ts); err != nil {
		t.Fatal(err)
	}

	execDeposit(t, b, m, 1)
	if _, err := Write(b.DB(), dd, Config{Threads: 2}, 2, engine.MakeTS(1, ^uint32(0))); err != nil {
		t.Fatal(err)
	}
	// Crash cut: checkpoint 2's manifest survives only as a 9-byte torn
	// prefix; all its shard files are intact orphans.
	r, err := dd[0].Open(ManifestName(2))
	if err != nil {
		t.Fatal(err)
	}
	man2, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	w := dd[0].Create(ManifestName(2))
	w.Write(man2[:9])
	w.Sync()
	if orphans := dd[1].List("ckpt-000002"); len(orphans) == 0 {
		t.Fatal("test setup: expected orphaned checkpoint-2 shards")
	}

	found, err := FindLatest(dd)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil || found.ID != 1 {
		t.Fatalf("FindLatest = %+v, want the previous checkpoint (id 1)", found)
	}

	// And it still restores, to the pre-deposit state.
	b2 := workload.NewBank(50)
	if _, err := Restore(b2.DB(), dd, found, 2, false); err != nil {
		t.Fatalf("restoring the previous checkpoint: %v", err)
	}
	if got, want := tableTotal(t, b2.DB().Table("Current")), tableTotal(t, b.DB().Table("Current"))-1; got != want {
		t.Fatalf("restored Current total = %d, want the pre-deposit %d", got, want)
	}
}

// TestCheckpointPowerFailMidWrite: a live power failure somewhere inside a
// checkpoint's shard phase (tripped by the fault plane) fails the write and
// must never surface a complete checkpoint — whatever partial shard state
// persisted, the previous checkpoint stays authoritative.
func TestCheckpointPowerFailMidWrite(t *testing.T) {
	b, m := bankWithData(t, 50)
	dd := []*simdisk.Device{
		simdisk.New("cka", simdisk.Unlimited()),
		simdisk.New("ckb", simdisk.Unlimited()),
	}
	if _, err := Write(b.DB(), dd, Config{Threads: 2}, 1, engine.MakeTS(0, ^uint32(0))); err != nil {
		t.Fatal(err)
	}
	execDeposit(t, b, m, 1)

	plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{
		"cka": {CrashAfterSyncs: 2, TornTailBytes: 64, CorruptTornTail: true},
	}}
	plan.Arm(dd...)
	if _, err := Write(b.DB(), dd, Config{Threads: 2}, 2, engine.MakeTS(1, ^uint32(0))); err == nil {
		t.Fatal("checkpoint on a power-failing device should fail")
	}
	if !plan.Tripped() {
		t.Fatal("fault plan never tripped")
	}
	for _, d := range dd {
		d.Crash()
	}
	plan.Disarm()

	found, err := FindLatest(dd)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil || found.ID != 1 {
		t.Fatalf("FindLatest = %+v, want the previous checkpoint (id 1)", found)
	}
	b2 := workload.NewBank(50)
	if _, err := Restore(b2.DB(), dd, found, 2, false); err != nil {
		t.Fatalf("restoring the previous checkpoint: %v", err)
	}
}

// TestTornManifestVariants: manifests damaged every way a power failure can
// damage them — truncated, bit-flipped, empty — must all read as "no such
// checkpoint", never as a wrong checkpoint.
func TestTornManifestVariants(t *testing.T) {
	b, _ := bankWithData(t, 10)
	dd := devs(1)
	man, err := Write(b.DB(), dd, Config{Threads: 1}, 1, engine.MakeTS(0, ^uint32(0)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := dd[0].Open(ManifestName(1))
	if err != nil {
		t.Fatal(err)
	}
	good, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	_ = man

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"half header", good[:8]},
		{"missing crc", good[:len(good)-4]},
		{"cut mid tables", good[:len(good)-6]},
		{"bit flip in body", func() []byte {
			d := append([]byte(nil), good...)
			d[9] ^= 0x40 // inside the TS field: structurally still decodable
			return d
		}()},
		{"bit flip in crc", func() []byte {
			d := append([]byte(nil), good...)
			d[len(d)-1] ^= 0x01
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.name, " ", "-"), func(t *testing.T) {
			w := dd[0].Create(ManifestName(1))
			if len(tc.data) > 0 {
				w.Write(tc.data)
			}
			w.Sync()
			found, err := FindLatest(dd)
			if err != nil {
				t.Fatal(err)
			}
			if found != nil {
				t.Fatalf("damaged manifest (%s) accepted: %+v", tc.name, found)
			}
		})
	}

	// Restore the pristine bytes: authoritative again.
	w := dd[0].Create(ManifestName(1))
	w.Write(good)
	w.Sync()
	found, err := FindLatest(dd)
	if err != nil || found == nil || found.ID != 1 {
		t.Fatalf("pristine manifest: %+v, %v", found, err)
	}
}
