package checkpoint

import (
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
	"pacman/internal/mvcc"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
)

// Daemon periodically checkpoints a live database, the way the evaluation
// configures Peloton ("perform checkpointing every 200 seconds"). Intervals
// during which a checkpoint is running are observable through Running, which
// the throughput traces of Figure 11 shade gray.
type Daemon struct {
	mgr      *txn.Manager
	devices  []*simdisk.Device
	cfg      Config
	interval time.Duration
	// views, when set, supplies pinned snapshot views: each checkpoint
	// streams a consistent cut concurrently with live commits while the
	// view pin keeps the multi-version garbage collector from reclaiming
	// the history under it. Nil (single-version instances) falls back to
	// snapshotting at the raw snapshot epoch, which is only consistent
	// because version chains then hold exactly the latest committed data.
	views *mvcc.Manager

	nextID   atomic.Uint32
	running  atomic.Bool
	lastDone atomic.Uint32 // last completed checkpoint id

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	mu   sync.Mutex
	last *Manifest
}

// NewDaemon builds a checkpoint daemon. views may be nil (see Daemon.views).
func NewDaemon(mgr *txn.Manager, views *mvcc.Manager, devices []*simdisk.Device, cfg Config, interval time.Duration) *Daemon {
	return &Daemon{mgr: mgr, views: views, devices: devices, cfg: cfg, interval: interval, stopCh: make(chan struct{})}
}

// SeedIDs moves the checkpoint id counter past lastID. A restarted instance
// seeds it with the id of the checkpoint it recovered from, so new
// checkpoints take fresh, strictly larger ids — FindLatest picks the newest
// checkpoint by id, and a restarted daemon that restarted numbering at 1
// would both clobber recovered shard files and lose to a stale manifest.
func (d *Daemon) SeedIDs(lastID uint32) {
	for {
		cur := d.nextID.Load()
		if lastID <= cur || d.nextID.CompareAndSwap(cur, lastID) {
			return
		}
	}
}

// Start launches the periodic checkpointing goroutine.
func (d *Daemon) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.RunOnce()
			case <-d.stopCh:
				return
			}
		}
	}()
}

// Stop halts the daemon (a checkpoint in progress completes first).
func (d *Daemon) Stop() {
	if d.stopped.CompareAndSwap(false, true) {
		close(d.stopCh)
	}
	d.wg.Wait()
}

// RunOnce takes one fuzzy checkpoint: it pins a snapshot view at the newest
// released epoch and streams that consistent cut to the devices while
// commits keep flowing — writers are never blocked or aborted, and the
// view pin (not a frozen write path) is what keeps the cut stable under
// them. Without a view manager it snapshots at the raw snapshot epoch.
func (d *Daemon) RunOnce() (*Manifest, error) {
	d.running.Store(true)
	defer d.running.Store(false)
	id := d.nextID.Add(1)
	var ts engine.TS
	if d.views != nil {
		v := d.views.AcquireFresh()
		defer v.Close()
		ts = v.TS()
	} else {
		ts = engine.MakeTS(d.mgr.SnapshotEpoch(), ^uint32(0))
	}
	m, err := Write(d.mgr.DB(), d.devices, d.cfg, id, ts)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = m
	d.mu.Unlock()
	d.lastDone.Store(id)
	return m, nil
}

// Running reports whether a checkpoint is currently being written.
func (d *Daemon) Running() bool { return d.running.Load() }

// Last returns the most recent completed manifest, or nil.
func (d *Daemon) Last() *Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}
