package checkpoint

import (
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
)

// Daemon periodically checkpoints a live database, the way the evaluation
// configures Peloton ("perform checkpointing every 200 seconds"). Intervals
// during which a checkpoint is running are observable through Running, which
// the throughput traces of Figure 11 shade gray.
type Daemon struct {
	mgr      *txn.Manager
	devices  []*simdisk.Device
	cfg      Config
	interval time.Duration

	nextID   atomic.Uint32
	running  atomic.Bool
	lastDone atomic.Uint32 // last completed checkpoint id

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	mu   sync.Mutex
	last *Manifest
}

// NewDaemon builds a checkpoint daemon.
func NewDaemon(mgr *txn.Manager, devices []*simdisk.Device, cfg Config, interval time.Duration) *Daemon {
	return &Daemon{mgr: mgr, devices: devices, cfg: cfg, interval: interval, stopCh: make(chan struct{})}
}

// SeedIDs moves the checkpoint id counter past lastID. A restarted instance
// seeds it with the id of the checkpoint it recovered from, so new
// checkpoints take fresh, strictly larger ids — FindLatest picks the newest
// checkpoint by id, and a restarted daemon that restarted numbering at 1
// would both clobber recovered shard files and lose to a stale manifest.
func (d *Daemon) SeedIDs(lastID uint32) {
	for {
		cur := d.nextID.Load()
		if lastID <= cur || d.nextID.CompareAndSwap(cur, lastID) {
			return
		}
	}
}

// Start launches the periodic checkpointing goroutine.
func (d *Daemon) Start() {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.RunOnce()
			case <-d.stopCh:
				return
			}
		}
	}()
}

// Stop halts the daemon (a checkpoint in progress completes first).
func (d *Daemon) Stop() {
	if d.stopped.CompareAndSwap(false, true) {
		close(d.stopCh)
	}
	d.wg.Wait()
}

// RunOnce takes one checkpoint at the current snapshot epoch (the safe
// epoch clamped strictly below the open epoch — see Manager.SnapshotEpoch).
func (d *Daemon) RunOnce() (*Manifest, error) {
	d.running.Store(true)
	defer d.running.Store(false)
	id := d.nextID.Add(1)
	se := d.mgr.SnapshotEpoch()
	ts := engine.MakeTS(se, ^uint32(0))
	m, err := Write(d.mgr.DB(), d.devices, d.cfg, id, ts)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.last = m
	d.mu.Unlock()
	d.lastDone.Store(id)
	return m, nil
}

// Running reports whether a checkpoint is currently being written.
func (d *Daemon) Running() bool { return d.running.Load() }

// Last returns the most recent completed manifest, or nil.
func (d *Daemon) Last() *Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}
