// Package chopping implements the transaction-chopping baseline (Shasha,
// Llirbat, Simon, Valduriez, TODS 1995) that Figure 18 compares PACMAN's
// static analysis against.
//
// Chopping decomposes transactions into pieces such that any strict
// two-phase-locked execution of the pieces is serializable. That property is
// stronger than what log replay needs, and it forces coarser pieces: a
// decomposition is valid only if the undirected graph of S edges (between
// sibling pieces of one transaction) and C edges (between conflicting pieces
// of different transactions) contains no SC-cycle — no cycle with both an S
// edge and at least two C edges. Whenever two pieces of one procedure are
// connected through the rest of the graph, they must be merged.
//
// The baseline starts from PACMAN's decomposition (the finest
// data-dependence-closed one) and coarsens it to SC-cycle freedom, then
// hands the result to the shared GDG machinery, so the Figure 18 comparison
// isolates exactly the decomposition difference.
package chopping

import (
	"pacman/internal/analysis"
	"pacman/internal/proc"
)

// Decompose returns chopping-based local dependency graphs for the given
// procedures, jointly coarsened to eliminate SC-cycles.
func Decompose(procs []*proc.Compiled) []*analysis.LDG {
	ldgs := make([]*analysis.LDG, len(procs))
	for i, c := range procs {
		ldgs[i] = analysis.BuildLDG(c)
	}
	for {
		merges := findSCCycleMerges(ldgs)
		if len(merges) == 0 {
			return ldgs
		}
		for pi, groups := range merges {
			ldgs[pi] = analysis.BuildLDGWith(procs[pi], groups)
		}
	}
}

// pieceKey identifies a piece globally during the SC analysis.
type pieceKey struct {
	proc, slice int
}

// findSCCycleMerges returns, per procedure index, op groups that must merge
// because two of the procedure's pieces lie on an SC-cycle. An SC-cycle
// through pieces p and q of procedure P exists exactly when p and q are
// connected in the graph formed by all C edges plus the S edges of every
// procedure other than P.
func findSCCycleMerges(ldgs []*analysis.LDG) map[int][][]int {
	// Enumerate pieces.
	var pieces []pieceKey
	idx := make(map[pieceKey]int)
	for pi, l := range ldgs {
		for _, s := range l.Slices {
			k := pieceKey{proc: pi, slice: s.ID}
			idx[k] = len(pieces)
			pieces = append(pieces, k)
		}
	}

	// Table usage per piece.
	type use struct{ read, write bool }
	usage := make([]map[int]use, len(pieces))
	for pi, l := range ldgs {
		for _, s := range l.Slices {
			u := make(map[int]use)
			for _, opID := range s.Ops {
				op := l.Proc.Op(opID)
				cur := u[op.TableID]
				if op.Kind.IsModification() {
					cur.write = true
				} else {
					cur.read = true
				}
				u[op.TableID] = cur
			}
			usage[idx[pieceKey{proc: pi, slice: s.ID}]] = u
		}
	}

	// C edges: cross-procedure pieces conflicting on some table.
	conflict := func(a, b int) bool {
		for tid, ua := range usage[a] {
			ub, ok := usage[b][tid]
			if !ok {
				continue
			}
			if ua.write || ub.write {
				return true
			}
		}
		return false
	}
	var cEdges [][2]int
	for a := 0; a < len(pieces); a++ {
		for b := a + 1; b < len(pieces); b++ {
			if pieces[a].proc != pieces[b].proc && conflict(a, b) {
				cEdges = append(cEdges, [2]int{a, b})
			}
		}
	}

	merges := make(map[int][][]int)
	for pi, l := range ldgs {
		if len(l.Slices) < 2 {
			continue
		}
		// Connectivity over C edges plus S edges of other procedures.
		uf := newUF(len(pieces))
		for _, e := range cEdges {
			uf.union(e[0], e[1])
		}
		for qi, lq := range ldgs {
			if qi == pi || len(lq.Slices) < 2 {
				continue
			}
			first := idx[pieceKey{proc: qi, slice: lq.Slices[0].ID}]
			for _, s := range lq.Slices[1:] {
				uf.union(first, idx[pieceKey{proc: qi, slice: s.ID}])
			}
		}
		// Any two pieces of pi in one component must merge.
		byRoot := make(map[int][]int)
		for _, s := range l.Slices {
			p := idx[pieceKey{proc: pi, slice: s.ID}]
			r := uf.find(p)
			byRoot[r] = append(byRoot[r], s.ID)
		}
		var groups [][]int
		for _, members := range byRoot {
			if len(members) < 2 {
				continue
			}
			var ops []int
			for _, sid := range members {
				ops = append(ops, l.Slices[sid].Ops...)
			}
			groups = append(groups, ops)
		}
		if len(groups) > 0 {
			merges[pi] = groups
		}
	}
	return merges
}

// uf is a local union-find (analysis' one is unexported).
type uf struct{ parent []int }

func newUF(n int) *uf {
	u := &uf{parent: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
