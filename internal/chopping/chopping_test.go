package chopping

import (
	"reflect"
	"testing"

	"pacman/internal/analysis"
	"pacman/internal/proc"
	"pacman/internal/workload"
)

// TestBankChopping: the SC-cycle T2 -S- T3 -C- D2 -S- D1 -C- T2 forces
// Transfer's T2+T3 and Deposit's D1+D2 to merge, while T1 and D3 (no
// conflicts) stay separate. This is the "coarser than PACMAN" property the
// paper's Section 7 describes and Figure 18 measures.
func TestBankChopping(t *testing.T) {
	b := workload.NewBank(10)
	ldgs := Decompose([]*proc.Compiled{b.Transfer, b.Deposit})

	tr := ldgs[0]
	if len(tr.Slices) != 2 {
		t.Fatalf("Transfer chopping pieces = %d, want 2\n%s", len(tr.Slices), tr)
	}
	if !reflect.DeepEqual(tr.Slices[0].Ops, []int{0}) {
		t.Errorf("piece 1 = %v, want the spouse read alone", tr.Slices[0].Ops)
	}
	if !reflect.DeepEqual(tr.Slices[1].Ops, []int{1, 2, 3, 4, 5, 6}) {
		t.Errorf("piece 2 = %v, want T2+T3 merged", tr.Slices[1].Ops)
	}

	dp := ldgs[1]
	if len(dp.Slices) != 2 {
		t.Fatalf("Deposit chopping pieces = %d, want 2\n%s", len(dp.Slices), dp)
	}
	if !reflect.DeepEqual(dp.Slices[0].Ops, []int{0, 1, 2, 3}) {
		t.Errorf("piece 1 = %v, want D1+D2 merged", dp.Slices[0].Ops)
	}
	if !reflect.DeepEqual(dp.Slices[1].Ops, []int{4, 5}) {
		t.Errorf("piece 2 = %v, want D3 alone", dp.Slices[1].Ops)
	}
}

// TestChoppingCoarserThanPACMAN: every PACMAN slice is contained in some
// chopping piece, for the bank workload.
func TestChoppingCoarserThanPACMAN(t *testing.T) {
	b := workload.NewBank(10)
	procs := []*proc.Compiled{b.Transfer, b.Deposit}
	chop := Decompose(procs)
	for pi, c := range procs {
		pac := analysis.BuildLDG(c)
		for _, s := range pac.Slices {
			// All ops of s must be in the same chopping piece.
			want := chop[pi].SliceOf(s.Ops[0])
			for _, op := range s.Ops[1:] {
				if chop[pi].SliceOf(op) != want {
					t.Errorf("proc %s: PACMAN slice %v split across chopping pieces",
						c.Name(), s.Ops)
				}
			}
		}
	}
}

// TestChoppingSingleProcedure: with one procedure there are no C edges, so
// chopping equals PACMAN's decomposition.
func TestChoppingSingleProcedure(t *testing.T) {
	b := workload.NewBank(10)
	chop := Decompose([]*proc.Compiled{b.Transfer})
	pac := analysis.BuildLDG(b.Transfer)
	if len(chop[0].Slices) != len(pac.Slices) {
		t.Fatalf("single-proc chopping = %d pieces, PACMAN = %d",
			len(chop[0].Slices), len(pac.Slices))
	}
	for i := range pac.Slices {
		if !reflect.DeepEqual(chop[0].Slices[i].Ops, pac.Slices[i].Ops) {
			t.Errorf("piece %d: %v vs %v", i, chop[0].Slices[i].Ops, pac.Slices[i].Ops)
		}
	}
}

// TestChoppingNoSCCycle: the result must have no SC-cycle: for every
// procedure, no two of its pieces may be connected via C edges plus other
// procedures' S edges.
func TestChoppingNoSCCycle(t *testing.T) {
	b := workload.NewBank(10)
	ldgs := Decompose([]*proc.Compiled{b.Transfer, b.Deposit})
	if merges := findSCCycleMerges(ldgs); len(merges) != 0 {
		t.Errorf("residual SC-cycles: %v", merges)
	}
}

// TestChoppingGDGIntegration: chopping LDGs run through the same GDG
// builder, producing fewer blocks than PACMAN (coarser parallelism).
func TestChoppingGDGIntegration(t *testing.T) {
	b := workload.NewBank(10)
	procs := []*proc.Compiled{b.Transfer, b.Deposit}

	pacGDG := analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
	chopGDG := analysis.BuildGDG(Decompose(procs))

	if pacGDG.NumBlocks() != 4 {
		t.Fatalf("PACMAN blocks = %d", pacGDG.NumBlocks())
	}
	if chopGDG.NumBlocks() >= pacGDG.NumBlocks() {
		t.Errorf("chopping blocks = %d, want fewer than PACMAN's %d",
			chopGDG.NumBlocks(), pacGDG.NumBlocks())
	}
}
