// Package engine implements the main-memory storage engine: tables of
// latched rows with newest-first version chains, indexed by a concurrent
// B+tree, plus the append-only slot slab that gives every row a stable
// physical address (the target of physical logging).
//
// The engine is deliberately policy-free: it provides version installation
// primitives with and without latching and with and without version
// retention, and the transaction layer (internal/txn) and the recovery
// schemes (internal/recovery) choose which to use. This mirrors the paper's
// claim that PACMAN "is orthogonal to data layouts ... and concurrency
// control schemes" — every scheme in the evaluation drives this same
// storage engine through different primitives.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pacman/internal/index"
	"pacman/internal/tuple"
)

// TS is a commit timestamp: the high 32 bits hold the epoch, the low 32 bits
// a per-epoch sequence number. TS order equals commit order.
type TS = uint64

// MakeTS composes a timestamp from an epoch and sequence number.
func MakeTS(epoch uint32, seq uint32) TS {
	return TS(epoch)<<32 | TS(seq)
}

// EpochOf extracts the epoch component of a timestamp.
func EpochOf(ts TS) uint32 { return uint32(ts >> 32) }

// EpochCeil rounds epoch up to the next multiple of quantum (quantum <= 1
// leaves it unchanged). A restarted instance aligns its resumed epoch clock
// to a log-batch boundary with it, so post-restart flushes open fresh batch
// files strictly after the reloaded tail. TS order is epoch-major, so the
// skipped epochs cost nothing but a gap in the clock.
func EpochCeil(epoch, quantum uint32) uint32 {
	if quantum <= 1 {
		return epoch
	}
	return (epoch + quantum - 1) / quantum * quantum
}

// Version is one version of a row. Versions are immutable once installed
// except for the chain link; the chain is newest-first. The link is atomic
// because garbage collection truncates chain tails while readers traverse
// them lock-free (see Row.TruncateVersions).
type Version struct {
	BeginTS TS
	Deleted bool // tombstone: the row was deleted at BeginTS
	Data    tuple.Tuple
	next    atomic.Pointer[Version] // older version, or nil
}

// Next returns the next-older version, or nil at the end of the chain.
func (v *Version) Next() *Version { return v.next.Load() }

// SetNext links v to an older version. Chain mutators (install, sorted
// splice, truncation) must guarantee exclusive access to the chain; readers
// may observe either link value.
func (v *Version) SetNext(older *Version) { v.next.Store(older) }

// Row is a logical row: a stable identity carrying a spin latch and the head
// of its version chain. head == nil means the row has been allocated (e.g.,
// by an in-flight insert) but holds no visible version yet.
type Row struct {
	Key  uint64
	Slot uint64 // physical address within the table's slab
	l    Spin
	head atomic.Pointer[Version]
	// stamp is the write-stamp scratch word the transaction layer uses for
	// allocation-free write-set membership (see Row.SetWriteStamp).
	stamp atomic.Uint64
}

// Lock acquires the row latch.
func (r *Row) Lock() { r.l.Lock() }

// TryLock attempts to acquire the row latch without blocking.
func (r *Row) TryLock() bool { return r.l.TryLock() }

// Unlock releases the row latch.
func (r *Row) Unlock() { r.l.Unlock() }

// Locked reports whether the row latch is currently held.
func (r *Row) Locked() bool { return r.l.Locked() }

// Head returns the newest version, or nil.
func (r *Row) Head() *Version { return r.head.Load() }

// SetWriteStamp publishes a transaction-attempt token on the row. The
// transaction layer stamps each row it buffers a write for, then tests
// membership during read validation with a single load instead of a
// per-read scan of the write set (or a per-transaction map).
//
// The stamp is advisory, never authoritative: tokens are globally unique
// per transaction attempt, so a matching stamp proves the row is in the
// attempt's write set, while a mismatch proves nothing (a concurrent
// writer of the same row may have overwritten the stamp — callers must
// treat that as "possibly foreign" and fall back to a conservative check).
func (r *Row) SetWriteStamp(token uint64) { r.stamp.Store(token) }

// WriteStamp returns the row's current write-stamp token.
func (r *Row) WriteStamp() uint64 { return r.stamp.Load() }

// SetHead stores the version chain head directly. Callers must guarantee
// exclusive access (hold the latch, or be the key's only writer as in
// partitioned recovery).
func (r *Row) SetHead(v *Version) { r.head.Store(v) }

// Install pushes a new version with the given timestamp on top of the
// current chain. Callers must guarantee exclusive access. If retain is
// false the previous chain is discarded (single-version behavior).
func (r *Row) Install(ts TS, data tuple.Tuple, deleted bool, retain bool) {
	v := &Version{BeginTS: ts, Deleted: deleted, Data: data}
	r.InstallPrepared(v, retain)
}

// InstallPrepared pushes a caller-allocated version on top of the current
// chain; the multi-version layer's per-worker pools prepare versions this
// way so the commit hot path stays allocation-free. The version's link is
// overwritten. Callers must guarantee exclusive access.
func (r *Row) InstallPrepared(v *Version, retain bool) {
	if retain {
		v.next.Store(r.head.Load())
	} else {
		v.next.Store(nil)
	}
	r.head.Store(v)
}

// TruncateVersions cuts the chain below the newest version whose BeginTS is
// <= floorTS: every read at a timestamp >= floorTS is unaffected, and
// strictly-older history becomes unreachable for the garbage collector's
// accounting. It returns the surviving chain length and the number of
// versions pruned. Callers must guarantee exclusive access (hold the row
// latch); concurrent lock-free readers at timestamps >= floorTS remain
// correct because they never traverse past the boundary version.
func (r *Row) TruncateVersions(floorTS TS) (kept, pruned int) {
	v := r.head.Load()
	if v == nil {
		return 0, 0
	}
	kept = 1
	for v.BeginTS > floorTS {
		n := v.next.Load()
		if n == nil {
			return kept, 0
		}
		v = n
		kept++
	}
	// v is the boundary: the newest version visible at floorTS. Unlink and
	// count the strictly-older tail.
	tail := v.next.Load()
	if tail == nil {
		return kept, 0
	}
	v.next.Store(nil)
	for t := tail; t != nil; t = t.next.Load() {
		pruned++
	}
	return kept, pruned
}

// InstallLWW installs (ts, data) only if ts is newer than the current head
// (the last-writer-wins rule a.k.a. Thomas write rule used by physical log
// recovery). It reports whether the install happened. Callers must
// guarantee exclusive access.
func (r *Row) InstallLWW(ts TS, data tuple.Tuple, deleted bool) bool {
	if h := r.head.Load(); h != nil && h.BeginTS >= ts {
		return false
	}
	r.head.Store(&Version{BeginTS: ts, Deleted: deleted, Data: data})
	return true
}

// InsertVersionSorted splices a version into the chain at its
// timestamp-ordered position (chains are newest-first). Logical log
// recovery uses it: recovery threads may restore versions of one tuple out
// of timestamp order, so installation must sort. Duplicate timestamps are
// ignored (idempotent replay). Callers must guarantee exclusive access
// (hold the row latch).
func (r *Row) InsertVersionSorted(ts TS, data tuple.Tuple, deleted bool) {
	v := &Version{BeginTS: ts, Deleted: deleted, Data: data}
	h := r.head.Load()
	if h == nil || h.BeginTS < ts {
		v.next.Store(h)
		r.head.Store(v)
		return
	}
	cur := h
	for {
		if cur.BeginTS == ts {
			return
		}
		next := cur.next.Load()
		if next == nil || next.BeginTS < ts {
			v.next.Store(next)
			cur.next.Store(v)
			return
		}
		cur = next
	}
}

// LatestData returns the newest visible tuple, or nil if the row is absent
// or deleted.
func (r *Row) LatestData() tuple.Tuple {
	h := r.head.Load()
	if h == nil || h.Deleted {
		return nil
	}
	return h.Data
}

// ReadAt returns the tuple visible at timestamp ts (the newest version with
// BeginTS <= ts), or nil if none is visible or the visible version is a
// tombstone. Multi-version checkpointing reads historic snapshots this way.
func (r *Row) ReadAt(ts TS) tuple.Tuple {
	for v := r.head.Load(); v != nil; v = v.next.Load() {
		if v.BeginTS <= ts {
			if v.Deleted {
				return nil
			}
			return v.Data
		}
	}
	return nil
}

// VersionCount returns the length of the version chain (test helper and
// storage accounting).
func (r *Row) VersionCount() int {
	n := 0
	for v := r.head.Load(); v != nil; v = v.next.Load() {
		n++
	}
	return n
}

// segBits sizes slab segments at 4096 rows; segments are never reallocated,
// so row pointers and slots stay stable for the lifetime of the table.
const (
	segBits = 12
	segSize = 1 << segBits
	segMask = segSize - 1
)

type segment [segSize]atomic.Pointer[Row]

// Table is one table: schema, B+tree primary index, and the slot slab.
type Table struct {
	id     int
	name   string
	schema *tuple.Schema

	idx *index.BTree[*Row]

	growMu sync.Mutex
	segs   atomic.Pointer[[]*segment]
	slots  atomic.Uint64 // high-water mark of allocated slots
}

func newTable(id int, schema *tuple.Schema) *Table {
	t := &Table{id: id, name: schema.Table(), schema: schema, idx: index.NewBTree[*Row]()}
	empty := []*segment{}
	t.segs.Store(&empty)
	return t
}

// ID returns the table's catalog identifier.
func (t *Table) ID() int { return t.id }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// NumSlots returns the slab high-water mark (allocated slots, including rows
// with no visible version).
func (t *Table) NumSlots() uint64 { return t.slots.Load() }

// IndexLen returns the number of keys present in the primary index.
func (t *Table) IndexLen() int { return t.idx.Len() }

// GetRow returns the row for key, if the key has ever been inserted.
func (t *Table) GetRow(key uint64) (*Row, bool) {
	return t.idx.Get(key)
}

// GetOrCreateRow returns the row for key, allocating a slab slot and index
// entry if absent. The bool reports whether the row was newly created. The
// new row has no visible version until the caller installs one.
func (t *Table) GetOrCreateRow(key uint64) (*Row, bool) {
	return t.idx.GetOrInsert(key, func() *Row {
		return t.allocRow(key)
	})
}

func (t *Table) allocRow(key uint64) *Row {
	slot := t.slots.Add(1) - 1
	r := &Row{Key: key, Slot: slot}
	t.cell(slot).Store(r)
	return r
}

// PlaceRowAt installs a row at a specific slot, used by physical-log
// recovery to rebuild the slab at recorded addresses. If a row already
// occupies the slot it is returned instead (concurrent replayers of the
// same address race benignly).
func (t *Table) PlaceRowAt(slot uint64, key uint64) *Row {
	for {
		hw := t.slots.Load()
		if hw > slot {
			break
		}
		if t.slots.CompareAndSwap(hw, slot+1) {
			break
		}
	}
	c := t.cell(slot)
	r := &Row{Key: key, Slot: slot}
	if c.CompareAndSwap(nil, r) {
		return r
	}
	return c.Load()
}

// cell returns the slab cell for slot, growing the segment directory as
// needed.
func (t *Table) cell(slot uint64) *atomic.Pointer[Row] {
	segIdx := int(slot >> segBits)
	segs := *t.segs.Load()
	if segIdx >= len(segs) {
		t.growMu.Lock()
		segs = *t.segs.Load()
		for segIdx >= len(segs) {
			segs = append(segs, &segment{})
		}
		t.segs.Store(&segs)
		t.growMu.Unlock()
	}
	return &segs[segIdx][slot&segMask]
}

// RowBySlot returns the row at a physical slot, or nil if unallocated.
func (t *Table) RowBySlot(slot uint64) *Row {
	segs := *t.segs.Load()
	segIdx := int(slot >> segBits)
	if segIdx >= len(segs) {
		return nil
	}
	return segs[segIdx][slot&segMask].Load()
}

// ScanSlots calls fn for every allocated row with slot in [lo, hi).
// Checkpointing and index rebuilding partition the slab this way for
// parallel processing.
func (t *Table) ScanSlots(lo, hi uint64, fn func(*Row)) {
	if max := t.slots.Load(); hi > max {
		hi = max
	}
	for s := lo; s < hi; s++ {
		if r := t.RowBySlot(s); r != nil {
			fn(r)
		}
	}
}

// ScanIndex iterates rows in key order via the primary index.
func (t *Table) ScanIndex(lo, hi uint64, fn func(*Row) bool) {
	t.idx.Scan(lo, hi, func(_ uint64, r *Row) bool { return fn(r) })
}

// ReindexSlots inserts the keys of all allocated rows with slot in [lo, hi)
// into the primary index. Physical-log recovery rebuilds indexes with this
// after the slab is restored.
func (t *Table) ReindexSlots(lo, hi uint64) {
	t.ScanSlots(lo, hi, func(r *Row) {
		t.idx.Insert(r.Key, r)
	})
}

// InsertIndex registers an existing row under key in the primary index;
// restore paths that place rows by slot use it to build the index inline.
func (t *Table) InsertIndex(key uint64, r *Row) {
	t.idx.Insert(key, r)
}

// Database is the catalog: an ordered set of tables. Commit timestamps are
// owned by the transaction layer, not the catalog.
type Database struct {
	mu     sync.RWMutex
	tables []*Table
	byName map[string]*Table
}

// NewDatabase returns an empty catalog.
func NewDatabase() *Database {
	return &Database{byName: make(map[string]*Table)}
}

// AddTable creates a table with the given schema. Table IDs are assigned in
// creation order, so a recovery run that recreates the catalog in the same
// order sees identical IDs.
func (db *Database) AddTable(schema *tuple.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.byName[schema.Table()]; dup {
		return nil, fmt.Errorf("engine: table %q already exists", schema.Table())
	}
	t := newTable(len(db.tables), schema)
	db.tables = append(db.tables, t)
	db.byName[t.name] = t
	return t, nil
}

// MustAddTable is AddTable that panics on error; for static workload setup.
func (db *Database) MustAddTable(schema *tuple.Schema) *Table {
	t, err := db.AddTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.byName[name]
}

// TableByID returns the table with the given catalog ID, or nil.
func (db *Database) TableByID(id int) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if id < 0 || id >= len(db.tables) {
		return nil
	}
	return db.tables[id]
}

// Tables returns all tables in catalog order.
func (db *Database) Tables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*Table(nil), db.tables...)
}
