package engine

import (
	"sync"
	"testing"

	"pacman/internal/tuple"
)

func testSchema(name string) *tuple.Schema {
	return tuple.MustSchema(name, tuple.Col("id", tuple.KindInt), tuple.Col("val", tuple.KindInt))
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	a := db.MustAddTable(testSchema("a"))
	b := db.MustAddTable(testSchema("b"))
	if a.ID() != 0 || b.ID() != 1 {
		t.Errorf("ids = %d, %d", a.ID(), b.ID())
	}
	if db.Table("a") != a || db.Table("b") != b || db.Table("c") != nil {
		t.Error("Table lookup broken")
	}
	if db.TableByID(0) != a || db.TableByID(2) != nil || db.TableByID(-1) != nil {
		t.Error("TableByID broken")
	}
	if len(db.Tables()) != 2 {
		t.Error("Tables() broken")
	}
	if _, err := db.AddTable(testSchema("a")); err == nil {
		t.Error("duplicate table accepted")
	}
	if a.Name() != "a" || a.Schema().Table() != "a" {
		t.Error("table metadata broken")
	}
}

func TestRowCreateAndInstall(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r, created := tb.GetOrCreateRow(5)
	if !created {
		t.Fatal("row should be new")
	}
	if r.LatestData() != nil {
		t.Error("fresh row should have no visible data")
	}
	r2, created := tb.GetOrCreateRow(5)
	if created || r2 != r {
		t.Error("second GetOrCreateRow must return the same row")
	}
	r.Install(MakeTS(1, 0), tuple.Tuple{tuple.I(5), tuple.I(100)}, false, true)
	if d := r.LatestData(); d == nil || d[1].Int() != 100 {
		t.Errorf("latest = %v", d)
	}
	if got, ok := tb.GetRow(5); !ok || got != r {
		t.Error("GetRow broken")
	}
	if _, ok := tb.GetRow(6); ok {
		t.Error("GetRow returned missing key")
	}
}

func TestVersionChainAndReadAt(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r, _ := tb.GetOrCreateRow(1)
	r.Install(MakeTS(1, 0), tuple.Tuple{tuple.I(1), tuple.I(10)}, false, true)
	r.Install(MakeTS(2, 0), tuple.Tuple{tuple.I(1), tuple.I(20)}, false, true)
	r.Install(MakeTS(3, 0), tuple.Tuple{tuple.I(1), tuple.I(30)}, false, true)
	if r.VersionCount() != 3 {
		t.Errorf("chain length = %d", r.VersionCount())
	}
	cases := []struct {
		ts   TS
		want int64 // -1 means invisible
	}{
		{MakeTS(0, 5), -1},
		{MakeTS(1, 0), 10},
		{MakeTS(1, 99), 10},
		{MakeTS(2, 0), 20},
		{MakeTS(9, 0), 30},
	}
	for _, c := range cases {
		d := r.ReadAt(c.ts)
		if c.want == -1 {
			if d != nil {
				t.Errorf("ReadAt(%d) = %v, want invisible", c.ts, d)
			}
			continue
		}
		if d == nil || d[1].Int() != c.want {
			t.Errorf("ReadAt(%d) = %v, want val %d", c.ts, d, c.want)
		}
	}
}

func TestTombstone(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r, _ := tb.GetOrCreateRow(1)
	r.Install(MakeTS(1, 0), tuple.Tuple{tuple.I(1), tuple.I(10)}, false, true)
	r.Install(MakeTS(2, 0), nil, true, true)
	if r.LatestData() != nil {
		t.Error("deleted row still visible")
	}
	if d := r.ReadAt(MakeTS(1, 50)); d == nil || d[1].Int() != 10 {
		t.Error("old version invisible after delete")
	}
	if r.ReadAt(MakeTS(3, 0)) != nil {
		t.Error("tombstone not respected at later TS")
	}
	// Re-insert over tombstone.
	r.Install(MakeTS(4, 0), tuple.Tuple{tuple.I(1), tuple.I(40)}, false, true)
	if d := r.LatestData(); d == nil || d[1].Int() != 40 {
		t.Error("reinsert over tombstone broken")
	}
}

func TestSingleVersionInstall(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r, _ := tb.GetOrCreateRow(1)
	r.Install(MakeTS(1, 0), tuple.Tuple{tuple.I(1), tuple.I(10)}, false, false)
	r.Install(MakeTS(2, 0), tuple.Tuple{tuple.I(1), tuple.I(20)}, false, false)
	if r.VersionCount() != 1 {
		t.Errorf("single-version install kept %d versions", r.VersionCount())
	}
	if r.LatestData()[1].Int() != 20 {
		t.Error("latest value wrong")
	}
}

func TestInstallLWW(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r, _ := tb.GetOrCreateRow(1)
	if !r.InstallLWW(MakeTS(5, 0), tuple.Tuple{tuple.I(1), tuple.I(50)}, false) {
		t.Error("first LWW install refused")
	}
	// Older write must lose.
	if r.InstallLWW(MakeTS(3, 0), tuple.Tuple{tuple.I(1), tuple.I(30)}, false) {
		t.Error("older LWW install accepted")
	}
	if r.LatestData()[1].Int() != 50 {
		t.Error("LWW kept wrong value")
	}
	// Equal TS must lose too (idempotent replay).
	if r.InstallLWW(MakeTS(5, 0), tuple.Tuple{tuple.I(1), tuple.I(99)}, false) {
		t.Error("equal-TS LWW install accepted")
	}
	if !r.InstallLWW(MakeTS(6, 0), nil, true) {
		t.Error("newer LWW delete refused")
	}
	if r.LatestData() != nil {
		t.Error("LWW delete not applied")
	}
}

func TestTSHelpers(t *testing.T) {
	ts := MakeTS(7, 42)
	if EpochOf(ts) != 7 {
		t.Errorf("EpochOf = %d", EpochOf(ts))
	}
	if MakeTS(2, 0) <= MakeTS(1, 0xFFFFFFFF) {
		t.Error("epoch must dominate sequence in TS order")
	}
}

func TestSlabSlotsAndScan(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	const n = 10_000 // crosses segment boundaries
	for i := uint64(0); i < n; i++ {
		r, created := tb.GetOrCreateRow(i)
		if !created {
			t.Fatalf("row %d not new", i)
		}
		r.Install(MakeTS(1, uint32(i)), tuple.Tuple{tuple.I(int64(i)), tuple.I(0)}, false, true)
	}
	if tb.NumSlots() != n {
		t.Fatalf("slots = %d", tb.NumSlots())
	}
	// Slots are dense and RowBySlot agrees with the index.
	seen := 0
	tb.ScanSlots(0, n, func(r *Row) {
		seen++
		if got := tb.RowBySlot(r.Slot); got != r {
			t.Fatalf("RowBySlot(%d) mismatch", r.Slot)
		}
	})
	if seen != n {
		t.Fatalf("scan saw %d rows", seen)
	}
	// Partial scan.
	seen = 0
	tb.ScanSlots(100, 200, func(*Row) { seen++ })
	if seen != 100 {
		t.Fatalf("partial scan saw %d", seen)
	}
	// Out-of-range scan clamps.
	seen = 0
	tb.ScanSlots(n-5, n+100, func(*Row) { seen++ })
	if seen != 5 {
		t.Fatalf("clamped scan saw %d", seen)
	}
	if tb.RowBySlot(n+1) != nil {
		t.Error("RowBySlot past high-water mark should be nil")
	}
}

func TestPlaceRowAt(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r := tb.PlaceRowAt(5000, 77)
	if r.Slot != 5000 || r.Key != 77 {
		t.Errorf("placed row = %+v", r)
	}
	if tb.NumSlots() != 5001 {
		t.Errorf("slots = %d", tb.NumSlots())
	}
	// Placing again at the same slot returns the existing row.
	r2 := tb.PlaceRowAt(5000, 77)
	if r2 != r {
		t.Error("second PlaceRowAt returned a different row")
	}
	if tb.RowBySlot(4999) != nil {
		t.Error("hole should be nil")
	}
}

func TestReindexSlots(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	for i := uint64(0); i < 1000; i++ {
		tb.PlaceRowAt(i, i*2)
	}
	if tb.IndexLen() != 0 {
		t.Fatal("index should start empty")
	}
	// Rebuild in two halves as parallel recovery would.
	var wg sync.WaitGroup
	for _, rng := range [][2]uint64{{0, 500}, {500, 1000}} {
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			tb.ReindexSlots(lo, hi)
		}(rng[0], rng[1])
	}
	wg.Wait()
	if tb.IndexLen() != 1000 {
		t.Fatalf("index len = %d", tb.IndexLen())
	}
	for i := uint64(0); i < 1000; i++ {
		if r, ok := tb.GetRow(i * 2); !ok || r.Slot != i {
			t.Fatalf("key %d: row %v, ok %v", i*2, r, ok)
		}
	}
}

func TestScanIndexOrder(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	for _, k := range []uint64{5, 1, 9, 3} {
		r, _ := tb.GetOrCreateRow(k)
		r.Install(MakeTS(1, 0), tuple.Tuple{tuple.I(int64(k)), tuple.I(0)}, false, true)
	}
	var got []uint64
	tb.ScanIndex(0, 100, func(r *Row) bool {
		got = append(got, r.Key)
		return true
	})
	want := []uint64{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order = %v", got)
		}
	}
}

func TestConcurrentRowCreation(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	const workers = 8
	rows := make([][]*Row, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows[w] = make([]*Row, 1000)
			for i := 0; i < 1000; i++ {
				r, _ := tb.GetOrCreateRow(uint64(i))
				rows[w][i] = r
			}
		}(w)
	}
	wg.Wait()
	// All workers must agree on row identity per key.
	for i := 0; i < 1000; i++ {
		for w := 1; w < workers; w++ {
			if rows[w][i] != rows[0][i] {
				t.Fatalf("key %d: distinct rows created", i)
			}
		}
	}
	if tb.NumSlots() != 1000 {
		// Slots can exceed keys only if allocRow raced outside GetOrInsert,
		// which the B+tree latch prevents.
		t.Fatalf("slots = %d, want 1000", tb.NumSlots())
	}
}

func TestSpinLatch(t *testing.T) {
	var s Spin
	s.Lock()
	if s.TryLock() {
		t.Fatal("TryLock succeeded while held")
	}
	s.Unlock()
	if !s.TryLock() {
		t.Fatal("TryLock failed while free")
	}
	s.Unlock()

	// Mutual exclusion under contention.
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				s.Lock()
				counter++
				s.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 80_000 {
		t.Fatalf("counter = %d; latch is not mutually exclusive", counter)
	}
}

func TestConcurrentLatchedInstalls(t *testing.T) {
	db := NewDatabase()
	tb := db.MustAddTable(testSchema("t"))
	r, _ := tb.GetOrCreateRow(1)
	var next atomic64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				ts := next.inc()
				r.Lock()
				r.InstallLWW(ts, tuple.Tuple{tuple.I(1), tuple.I(int64(ts))}, false)
				r.Unlock()
			}
		}()
	}
	wg.Wait()
	// The final head must carry the maximum timestamp.
	if got := r.Head().BeginTS; got != 40_000 {
		t.Fatalf("final TS = %d, want 40000", got)
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) inc() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v++
	return a.v
}
