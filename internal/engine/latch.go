package engine

import (
	"runtime"
	"sync/atomic"
)

// Spin is a test-and-test-and-set spinlock used as the per-tuple latch.
//
// The paper's tuple-level recovery schemes (PLR, LLR) acquire a latch on
// every tuple they modify; the cost of those acquisitions under high thread
// counts is precisely the bottleneck Figure 15 isolates. A spinlock (rather
// than a parking mutex) mirrors the DBMS implementations the paper measures
// and makes the contention effect visible.
type Spin struct {
	v atomic.Int32
}

// Lock acquires the latch, spinning with exponential backoff.
func (s *Spin) Lock() {
	// Fast path.
	if s.v.CompareAndSwap(0, 1) {
		return
	}
	backoff := 1
	for {
		// Test before test-and-set to avoid cache-line ping-pong.
		for s.v.Load() != 0 {
			for i := 0; i < backoff; i++ {
				spinPause()
			}
			if backoff < 64 {
				backoff <<= 1
			} else {
				runtime.Gosched()
			}
		}
		if s.v.CompareAndSwap(0, 1) {
			return
		}
	}
}

// TryLock attempts to acquire the latch without spinning.
func (s *Spin) TryLock() bool {
	return s.v.CompareAndSwap(0, 1)
}

// Unlock releases the latch.
func (s *Spin) Unlock() {
	s.v.Store(0)
}

// Locked reports whether the latch is currently held (by anyone). OCC
// validation uses it to detect concurrent committers.
func (s *Spin) Locked() bool {
	return s.v.Load() != 0
}

// spinPause burns a few cycles. Without access to the PAUSE instruction from
// pure Go, a tiny volatile-ish loop approximates it.
//
//go:noinline
func spinPause() {
	for i := 0; i < 4; i++ {
		_ = i
	}
}
