package engine

import (
	"fmt"
	"sync"
	"testing"

	"pacman/internal/tuple"
)

// chainTSs returns the BeginTS sequence of a row's chain, newest first.
func chainTSs(r *Row) []TS {
	var out []TS
	for v := r.Head(); v != nil; v = v.Next() {
		out = append(out, v.BeginTS)
	}
	return out
}

func tupOf(n int64) tuple.Tuple { return tuple.Tuple{tuple.I(n)} }

// TestInsertVersionSortedAdversarial drives the sorted-splice primitive
// through the orders logical-log recovery actually produces: out-of-order
// arrivals, duplicates (idempotent replay), tombstones interleaved with
// data, and splices below an existing tail.
func TestInsertVersionSortedAdversarial(t *testing.T) {
	cases := []struct {
		name    string
		inserts []TS // insertion order
		dead    map[TS]bool
		want    []TS // expected chain, newest first
	}{
		{
			name:    "ascending",
			inserts: []TS{1, 2, 3},
			want:    []TS{3, 2, 1},
		},
		{
			name:    "descending",
			inserts: []TS{9, 5, 1},
			want:    []TS{9, 5, 1},
		},
		{
			name:    "zigzag",
			inserts: []TS{5, 9, 1, 7, 3},
			want:    []TS{9, 7, 5, 3, 1},
		},
		{
			name:    "duplicate head ignored",
			inserts: []TS{4, 4},
			want:    []TS{4},
		},
		{
			name:    "duplicate interior ignored",
			inserts: []TS{2, 8, 5, 5, 2, 8},
			want:    []TS{8, 5, 2},
		},
		{
			name:    "splice below tail",
			inserts: []TS{10, 6, 2},
			want:    []TS{10, 6, 2},
		},
		{
			name:    "tombstones interleaved",
			inserts: []TS{3, 1, 4, 2},
			dead:    map[TS]bool{2: true, 4: true},
			want:    []TS{4, 3, 2, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &Row{Key: 1}
			for _, ts := range tc.inserts {
				r.InsertVersionSorted(ts, tupOf(int64(ts)), tc.dead[ts])
			}
			got := chainTSs(r)
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("chain = %v, want %v", got, tc.want)
			}
			if r.VersionCount() != len(tc.want) {
				t.Fatalf("VersionCount = %d, want %d", r.VersionCount(), len(tc.want))
			}
			// Every surviving version must read back at its own timestamp;
			// tombstones must read as absent.
			for v := r.Head(); v != nil; v = v.Next() {
				d := r.ReadAt(v.BeginTS)
				if v.Deleted {
					if d != nil {
						t.Fatalf("ts %d: tombstone read data %v", v.BeginTS, d)
					}
				} else if d == nil || d[0].Int() != int64(v.BeginTS) {
					t.Fatalf("ts %d: read %v", v.BeginTS, d)
				}
			}
		})
	}
}

// TestInsertVersionSortedDuplicateKeepsFirst: idempotent replay must keep
// the first-installed payload for a timestamp, not overwrite it.
func TestInsertVersionSortedDuplicateKeepsFirst(t *testing.T) {
	r := &Row{Key: 1}
	r.InsertVersionSorted(7, tupOf(100), false)
	r.InsertVersionSorted(7, tupOf(200), false)
	if d := r.ReadAt(7); d[0].Int() != 100 {
		t.Fatalf("duplicate overwrote payload: %v", d)
	}
}

// TestSetHeadAndRetainDiscard exercises retain-vs-discard install and raw
// head replacement.
func TestSetHeadAndRetainDiscard(t *testing.T) {
	r := &Row{Key: 1}
	r.Install(1, tupOf(1), false, true)
	r.Install(2, tupOf(2), false, true)
	if n := r.VersionCount(); n != 2 {
		t.Fatalf("retain chain = %d", n)
	}
	// Discarding install drops all history.
	r.Install(3, tupOf(3), false, false)
	if n := r.VersionCount(); n != 1 {
		t.Fatalf("discard chain = %d", n)
	}
	if d := r.ReadAt(2); d != nil {
		t.Fatalf("history survived discard: %v", d)
	}
	// SetHead splices an arbitrary chain in.
	old := &Version{BeginTS: 1, Data: tupOf(10)}
	head := &Version{BeginTS: 5, Data: tupOf(50)}
	head.SetNext(old)
	r.SetHead(head)
	if got := chainTSs(r); fmt.Sprint(got) != "[5 1]" {
		t.Fatalf("after SetHead chain = %v", got)
	}
	r.SetHead(nil)
	if r.VersionCount() != 0 || r.ReadAt(9) != nil {
		t.Fatal("SetHead(nil) did not clear the row")
	}
}

// TestInstallPreparedLinks: prepared installs must overwrite whatever link
// the version carried (pool slabs may hand back versions with stale links).
func TestInstallPreparedLinks(t *testing.T) {
	r := &Row{Key: 1}
	stale := &Version{BeginTS: 99}
	v1 := &Version{BeginTS: 1, Data: tupOf(1)}
	v1.SetNext(stale)
	r.InstallPrepared(v1, false)
	if got := chainTSs(r); fmt.Sprint(got) != "[1]" {
		t.Fatalf("discard install kept stale link: %v", got)
	}
	v2 := &Version{BeginTS: 2, Data: tupOf(2)}
	v2.SetNext(stale)
	r.InstallPrepared(v2, true)
	if got := chainTSs(r); fmt.Sprint(got) != "[2 1]" {
		t.Fatalf("retain install chain = %v", got)
	}
}

// TestTruncateVersions covers the GC primitive's boundary cases: floors
// between versions, at a version, below the tail, above the head, tombstone
// boundaries, and empty rows.
func TestTruncateVersions(t *testing.T) {
	build := func(tss ...TS) *Row {
		r := &Row{Key: 1}
		for _, ts := range tss {
			r.Install(ts, tupOf(int64(ts)), false, true)
		}
		return r
	}
	t.Run("floor between versions", func(t *testing.T) {
		r := build(2, 4, 6, 8)
		kept, pruned := r.TruncateVersions(5)
		// Boundary is 4 (newest <= 5): keep 8, 6, 4; prune 2.
		if kept != 3 || pruned != 1 {
			t.Fatalf("kept=%d pruned=%d", kept, pruned)
		}
		if got := chainTSs(r); fmt.Sprint(got) != "[8 6 4]" {
			t.Fatalf("chain = %v", got)
		}
		if d := r.ReadAt(5); d[0].Int() != 4 {
			t.Fatalf("read at floor = %v", d)
		}
	})
	t.Run("floor at a version", func(t *testing.T) {
		r := build(2, 4, 6)
		kept, pruned := r.TruncateVersions(4)
		if kept != 2 || pruned != 1 {
			t.Fatalf("kept=%d pruned=%d", kept, pruned)
		}
	})
	t.Run("floor below tail keeps all", func(t *testing.T) {
		r := build(5, 7)
		kept, pruned := r.TruncateVersions(1)
		if kept != 2 || pruned != 0 {
			t.Fatalf("kept=%d pruned=%d", kept, pruned)
		}
	})
	t.Run("floor above head keeps only head", func(t *testing.T) {
		r := build(1, 2, 3)
		kept, pruned := r.TruncateVersions(100)
		if kept != 1 || pruned != 2 {
			t.Fatalf("kept=%d pruned=%d", kept, pruned)
		}
	})
	t.Run("tombstone boundary survives", func(t *testing.T) {
		r := build(1, 2)
		r.Install(3, nil, true, true) // delete at 3
		r.Install(5, tupOf(5), false, true)
		kept, pruned := r.TruncateVersions(3)
		if kept != 2 || pruned != 2 {
			t.Fatalf("kept=%d pruned=%d", kept, pruned)
		}
		// The cut at 3 (and 4) must still observe the deletion.
		if d := r.ReadAt(4); d != nil {
			t.Fatalf("deleted row visible after truncate: %v", d)
		}
	})
	t.Run("empty row", func(t *testing.T) {
		r := &Row{Key: 1}
		if kept, pruned := r.TruncateVersions(5); kept != 0 || pruned != 0 {
			t.Fatalf("kept=%d pruned=%d", kept, pruned)
		}
	})
	t.Run("idempotent", func(t *testing.T) {
		r := build(2, 4, 6)
		r.TruncateVersions(4)
		if kept, pruned := r.TruncateVersions(4); kept != 2 || pruned != 0 {
			t.Fatalf("second truncate kept=%d pruned=%d", kept, pruned)
		}
	})
}

// TestTruncateConcurrentWithReaders races the GC primitive against
// lock-free chain traversals at timestamps at and above the floor — the
// exact interleaving the atomic chain link exists for.
func TestTruncateConcurrentWithReaders(t *testing.T) {
	r := &Row{Key: 1}
	const versions = 64
	for ts := TS(1); ts <= versions; ts++ {
		r.Install(ts, tupOf(int64(ts)), false, true)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Readers stay at or above the moving floor.
				ts := TS(versions/2 + g)
				if d := r.ReadAt(ts); d == nil || d[0].Int() != int64(ts) {
					t.Errorf("read at %d = %v", ts, d)
					return
				}
			}
		}(g)
	}
	for floor := TS(1); floor <= versions/2; floor++ {
		r.Lock()
		r.TruncateVersions(floor)
		r.Unlock()
	}
	close(stop)
	wg.Wait()
	if n := r.VersionCount(); n != versions/2+1 {
		t.Fatalf("final chain = %d", n)
	}
}
