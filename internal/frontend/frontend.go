// Package frontend multiplexes many concurrent client goroutines onto a
// bounded pool of transaction workers. Clients hand stored-procedure
// invocations to a submission queue and get a durable-commit future back;
// pool workers execute them and the wal release path resolves the futures
// as epochs are group-commit released. The pool owns the SiloR liveness
// contract internally — idle workers heartbeat on a ticker so group commit
// never stalls on an idle session — which removes the caller-visible
// Heartbeat footgun from the happy path.
//
// Submission is per-core: each pool worker owns a bounded queue, submitters
// spread requests round-robin across the queues, and an idle worker steals
// from its peers before parking (the Cicada per-thread-context idiom — no
// single shared channel serializes admission at high worker counts). The
// total capacity is still bounded: when every queue is full, Submit blocks
// (backpressure) instead of growing without bound. Close drains every
// queue: submissions already queued are executed, late submissions resolve
// with ErrClosed, and the pool's workers are retired so the safe epoch can
// advance past their last commits.
//
// The pool is also what makes the commit hot path's recycled buffers safe:
// each pool goroutine is the sole executor on its txn.Worker, so the
// worker's transaction scratch (read/write sets, reused across retries and
// transactions) is never aliased, and the commit records it emits flow
// worker buffer → logger → release without copies — resolved futures are
// the only client-visible artifact, and the wal release path recycles the
// records after resolving them (see internal/txn's pool).
package frontend

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
	"pacman/internal/health"
	"pacman/internal/proc"
	"pacman/internal/txn"
	"pacman/internal/wal"
)

// ErrClosed resolves futures submitted to a closed (or closing) frontend.
var ErrClosed = errors.New("frontend: closed")

// ErrBrownout resolves futures submitted while the health watchdog holds
// the instance in brownout: some component (a device, the epoch clock, the
// queue itself) is outside its liveness budget, so new work is shed at
// admission — before execution — instead of piling onto the slow path.
// Brownout-shed requests never execute; retry after backoff.
var ErrBrownout = errors.New("frontend: brownout, shedding new work")

// Config tunes a Frontend.
type Config struct {
	// Workers is the pool size: the number of transaction workers client
	// requests are multiplexed onto (default 4). Each worker owns one
	// submission queue.
	Workers int
	// Queue is the total submission capacity, split evenly across the
	// per-worker queues (each gets at least 1 slot); when every queue is
	// full, Submit blocks (default 4×Workers).
	Queue int
	// Heartbeat is the idle-worker liveness cadence (default half the
	// manager's epoch interval).
	Heartbeat time.Duration
}

type request struct {
	p     *proc.Compiled
	args  proc.Args
	adHoc bool
	dist  bool
	fut   *txn.Future
}

// Frontend is a bounded worker pool over per-worker submission queues with
// work stealing.
type Frontend struct {
	// queues[i] is owned by pool worker i: the owner dequeues it first,
	// peers steal from it when their own queues are empty. Submitters
	// spread round-robin (rr) and fall into any queue with space, so one
	// busy owner never wedges admission.
	queues []chan request
	rr     atomic.Uint32
	// wake is a one-token nudge channel: every enqueue posts a token so a
	// parked worker re-runs its steal scan; a worker that steals re-posts
	// the token (baton passing) so bursts cascade through the pool.
	wake    chan struct{}
	closing chan struct{} // closed first: rejects new submissions
	drainCh chan struct{} // closed once submitters settle: workers drain and exit

	// closeMu orders submitters against Close: a submitter holds the read
	// lock across its closed-check and submitWG.Add, Close flips closed
	// under the write lock before waiting — so submitWG.Add can never
	// start once submitWG.Wait has (the WaitGroup contract for adds that
	// begin at counter zero).
	closeMu  sync.RWMutex
	submitWG sync.WaitGroup // in-flight Submit calls
	workerWG sync.WaitGroup
	closed   atomic.Bool

	workers   []*txn.Worker
	executed  atomic.Int64
	steals    atomic.Int64
	hbEvery   time.Duration
	closeOnce sync.Once

	// Gray-failure admission control. brownout is flipped by the health
	// watchdog; the shed counters split rejected work by where it was shed
	// (admission deadline, dequeue deadline, brownout). dwell and lastMove
	// feed the watchdog's queue signals, aggregated across every queue:
	// lastMove is GLOBAL — any enqueue or dequeue on any queue resets it —
	// so a single idle-but-nonempty queue cannot latch the stall signal
	// while its peers make progress (stealing guarantees a request can
	// only stay stuck when the whole pool is wedged).
	brownout  atomic.Bool
	shedAdmit atomic.Int64
	shedQueue atomic.Int64
	shedBrown atomic.Int64
	dwell     health.EWMA
	lastMove  atomic.Int64 // unix nanos of the last enqueue or dequeue, any queue
}

// New builds a frontend over the manager's execution path. Pool workers are
// created and attached to the log set (when non-nil) immediately; the pool
// goroutines start running before New returns.
func New(mgr *txn.Manager, ls *wal.LogSet, cfg Config) *Frontend {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = mgr.Config().EpochInterval / 2
		if cfg.Heartbeat <= 0 {
			cfg.Heartbeat = time.Millisecond
		}
	}
	perQueue := cfg.Queue / cfg.Workers
	if perQueue < 1 {
		perQueue = 1
	}
	f := &Frontend{
		queues:  make([]chan request, cfg.Workers),
		wake:    make(chan struct{}, 1),
		closing: make(chan struct{}),
		drainCh: make(chan struct{}),
		hbEvery: cfg.Heartbeat,
	}
	for i := range f.queues {
		f.queues[i] = make(chan request, perQueue)
	}
	f.lastMove.Store(time.Now().UnixNano())
	for i := 0; i < cfg.Workers; i++ {
		w := mgr.NewWorker()
		if ls != nil {
			ls.AttachWorker(w)
		}
		f.workers = append(f.workers, w)
	}
	for i, w := range f.workers {
		f.workerWG.Add(1)
		go f.run(i, w)
	}
	return f
}

// nudge posts the one-token wake signal; a no-op when the token is already
// pending (a single token is enough — woken workers re-post it while they
// keep finding work).
func (f *Frontend) nudge() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// steal scans every peer queue (starting after self) for one request.
func (f *Frontend) steal(self int) (request, bool) {
	n := len(f.queues)
	for j := 1; j < n; j++ {
		select {
		case r := <-f.queues[(self+j)%n]:
			return r, true
		default:
		}
	}
	return request{}, false
}

// run is pool worker self: drain the owned queue first, steal from peers
// when it is empty, heartbeat while idle, and on shutdown drain every queue
// before exiting.
func (f *Frontend) run(self int, w *txn.Worker) {
	defer f.workerWG.Done()
	own := f.queues[self]
	hb := time.NewTicker(f.hbEvery)
	defer hb.Stop()
	for {
		// Fast path: the owned queue, without blocking.
		select {
		case r := <-own:
			f.handle(w, r)
			continue
		default:
		}
		if r, ok := f.steal(self); ok {
			f.steals.Add(1)
			// Pass the baton before executing: peers may hold more work
			// and this worker is about to go busy.
			f.nudge()
			f.handle(w, r)
			continue
		}
		select {
		case r := <-own:
			f.handle(w, r)
		case <-f.wake:
			// An enqueue landed somewhere; loop to re-run the steal scan.
		case <-hb.C:
			// Safe: this goroutine has no transaction in flight here.
			w.Heartbeat()
		case <-f.drainCh:
			f.drain(w)
			return
		}
	}
}

// drain empties every queue (not just the owned one): workers race over the
// remaining requests until a full sweep finds all queues empty. Submitters
// have settled by the time drainCh closes, so the sweep terminates.
func (f *Frontend) drain(w *txn.Worker) {
	for {
		progress := false
		for _, q := range f.queues {
			select {
			case r := <-q:
				f.handle(w, r)
				progress = true
			default:
			}
		}
		if !progress {
			return
		}
	}
}

func (f *Frontend) handle(w *txn.Worker, r request) {
	now := time.Now()
	f.lastMove.Store(now.UnixNano())
	f.dwell.Observe(now.Sub(r.fut.Start()))
	// Deadline check at execution start: a request whose deadline passed
	// while it sat in the queue (or whose expiry timer already fired) is
	// shed here — it never executes, so the caller's typed error is the
	// whole story for this request.
	if r.fut.Expire(now) || r.fut.Resolved() {
		f.shedQueue.Add(1)
		return
	}
	if r.dist {
		w.ExecuteFutureDist(r.fut, r.p, r.args)
	} else {
		w.ExecuteFuture(r.fut, r.p, r.args, r.adHoc)
	}
	f.executed.Add(1)
}

// Submit queues one invocation and returns its durable-commit future. It
// blocks only for queue space (backpressure), never for execution or
// durability. On a closed frontend the future resolves with ErrClosed.
func (f *Frontend) Submit(p *proc.Compiled, args proc.Args) *txn.Future {
	return f.submit(request{p: p, args: args}, time.Time{})
}

// SubmitAdHoc is Submit for ad-hoc transactions (tuple-level logging even
// under command logging, Section 4.5).
func (f *Frontend) SubmitAdHoc(p *proc.Compiled, args proc.Args) *txn.Future {
	return f.submit(request{p: p, args: args, adHoc: true}, time.Time{})
}

// SubmitDist is Submit for distributed transactions (2PC pieces): value
// logging even under command logging, like SubmitAdHoc, but tagged as part
// of a cross-shard commit.
func (f *Frontend) SubmitDist(p *proc.Compiled, args proc.Args) *txn.Future {
	return f.submit(request{p: p, args: args, dist: true}, time.Time{})
}

// SubmitDeadline is Submit with a per-request deadline (zero means none).
// If the deadline has already passed at admission the future resolves
// ErrDeadlineExceeded without entering the queue; otherwise expiry is armed
// and the request fails fast at whichever later checkpoint the deadline
// passes — dequeue, execution, or the durability pipeline. A durable ack
// that lands first is never retroactively failed.
func (f *Frontend) SubmitDeadline(p *proc.Compiled, args proc.Args, deadline time.Time) *txn.Future {
	return f.submit(request{p: p, args: args}, deadline)
}

// SubmitAdHocDeadline is SubmitAdHoc with a per-request deadline.
func (f *Frontend) SubmitAdHocDeadline(p *proc.Compiled, args proc.Args, deadline time.Time) *txn.Future {
	return f.submit(request{p: p, args: args, adHoc: true}, deadline)
}

// SubmitDistDeadline is SubmitDist with a per-request deadline.
func (f *Frontend) SubmitDistDeadline(p *proc.Compiled, args proc.Args, deadline time.Time) *txn.Future {
	return f.submit(request{p: p, args: args, dist: true}, deadline)
}

// admit runs the shared admission checks — deadline at queue entry,
// brownout shedding, closed frontend — resolving the future and returning
// false when the request must not enter the queue. On true the future's
// expiry timer is armed and the caller holds a submitWG slot.
func (f *Frontend) admit(fut *txn.Future, now time.Time) bool {
	if fut.Expire(now) {
		f.shedAdmit.Add(1)
		return false
	}
	if f.brownout.Load() {
		f.shedBrown.Add(1)
		fut.Resolve(now, ErrBrownout)
		return false
	}
	f.closeMu.RLock()
	if f.closed.Load() {
		f.closeMu.RUnlock()
		fut.Resolve(time.Now(), ErrClosed)
		return false
	}
	f.submitWG.Add(1)
	f.closeMu.RUnlock()
	// Arm expiry before the future is shared with a pool worker, so a
	// request can never sit in the queue with an unenforced deadline.
	fut.Arm()
	return true
}

// offer tries every queue for space without blocking, starting at home.
func (f *Frontend) offer(r request, home int) bool {
	n := len(f.queues)
	for j := 0; j < n; j++ {
		select {
		case f.queues[(home+j)%n] <- r:
			f.lastMove.Store(time.Now().UnixNano())
			f.nudge()
			return true
		default:
		}
	}
	return false
}

func (f *Frontend) submit(r request, deadline time.Time) *txn.Future {
	now := time.Now()
	fut := txn.NewFutureDeadline(now, deadline)
	if !f.admit(fut, now) {
		return fut
	}
	defer f.submitWG.Done()
	r.fut = fut
	home := int(f.rr.Add(1)-1) % len(f.queues)
	if f.offer(r, home) {
		return fut
	}
	// Every queue full: block on the home queue (backpressure). Stealing
	// keeps the home queue draining even when its owner is wedged, so
	// blocking on one queue cannot outlive the pool itself.
	select {
	case f.queues[home] <- r:
		f.lastMove.Store(time.Now().UnixNano())
		f.nudge()
	case <-f.closing:
		fut.Resolve(time.Now(), ErrClosed)
	}
	return fut
}

// TrySubmit is the non-blocking admission path: it enqueues the invocation
// and returns its future only when queue space is available RIGHT NOW.
// A false return means every queue was full (or the frontend closed or
// browned out, or the request's deadline already passed — the returned
// future then resolves with the typed error and ok is still false so
// callers treat all of these as "not admitted"). The network server uses
// it to turn a full queue into a backpressure frame instead of blocking
// the connection's reader goroutine.
func (f *Frontend) TrySubmit(p *proc.Compiled, args proc.Args, adHoc bool) (*txn.Future, bool) {
	return f.try(request{p: p, args: args, adHoc: adHoc}, time.Time{})
}

// TrySubmitDist is TrySubmit for distributed transactions (2PC pieces of a
// cross-shard commit): the commit record is marked Dist so the loggers emit
// a value record even under command logging.
func (f *Frontend) TrySubmitDist(p *proc.Compiled, args proc.Args) (*txn.Future, bool) {
	return f.try(request{p: p, args: args, dist: true}, time.Time{})
}

// TrySubmitDeadline is TrySubmit with a per-request deadline (zero means
// none).
func (f *Frontend) TrySubmitDeadline(p *proc.Compiled, args proc.Args, adHoc bool, deadline time.Time) (*txn.Future, bool) {
	return f.try(request{p: p, args: args, adHoc: adHoc}, deadline)
}

// TrySubmitDistDeadline is TrySubmitDist with a per-request deadline.
func (f *Frontend) TrySubmitDistDeadline(p *proc.Compiled, args proc.Args, deadline time.Time) (*txn.Future, bool) {
	return f.try(request{p: p, args: args, dist: true}, deadline)
}

func (f *Frontend) try(r request, deadline time.Time) (*txn.Future, bool) {
	now := time.Now()
	fut := txn.NewFutureDeadline(now, deadline)
	if !f.admit(fut, now) {
		return fut, false
	}
	defer f.submitWG.Done()
	r.fut = fut
	if f.offer(r, int(f.rr.Add(1)-1)%len(f.queues)) {
		return fut, true
	}
	// Not admitted: the future was never shared, so stop its expiry
	// timer instead of letting it fire against an abandoned handle.
	fut.Disarm()
	return nil, false
}

// SetBrownout flips brownout shedding on or off. While on, new submissions
// resolve ErrBrownout at admission instead of entering the queue; work
// already queued still executes. The health watchdog drives this from its
// state transitions.
func (f *Frontend) SetBrownout(on bool) { f.brownout.Store(on) }

// Brownout reports whether the frontend is currently shedding new work.
func (f *Frontend) Brownout() bool { return f.brownout.Load() }

// Shed is the frontend's shed-counter snapshot, split by checkpoint.
type Shed struct {
	// Admission: deadline already expired at queue entry.
	Admission int64 `json:"admission"`
	// Queue: deadline expired while queued; shed at dequeue, never executed.
	Queue int64 `json:"queue"`
	// Brownout: rejected because the watchdog held the instance in brownout.
	Brownout int64 `json:"brownout"`
}

// ShedStats returns how many requests were shed, and where.
func (f *Frontend) ShedStats() Shed {
	return Shed{
		Admission: f.shedAdmit.Load(),
		Queue:     f.shedQueue.Load(),
		Brownout:  f.shedBrown.Load(),
	}
}

// QueueDwell returns the smoothed submit-to-dequeue dwell time — the
// watchdog's overload signal for the submission queues, aggregated across
// all of them (every dequeue observes into the one EWMA).
func (f *Frontend) QueueDwell() time.Duration { return f.dwell.Load() }

// QueueStall returns how long the queues have gone without any movement
// (enqueue or dequeue on ANY queue) while work is pending — zero when all
// queues are empty. It catches the case the dwell EWMA cannot: every pool
// worker wedged behind a gray component, so nothing dequeues anywhere and
// the EWMA goes stale. The signal is deliberately global: one non-empty
// queue whose owner is busy does NOT trip it while peers make progress,
// because work stealing guarantees such a request is picked up as soon as
// any worker goes idle — evidence of a stall on one queue is stale unless
// the whole pool has stopped moving.
func (f *Frontend) QueueStall(now time.Time) time.Duration {
	if f.Depth() == 0 {
		return 0
	}
	return now.Sub(time.Unix(0, f.lastMove.Load()))
}

// Depth returns the total occupancy across the per-worker submission
// queues — the admission-control signal backpressure decisions key off.
func (f *Frontend) Depth() int {
	d := 0
	for _, q := range f.queues {
		d += len(q)
	}
	return d
}

// Capacity returns the total submission capacity across the per-worker
// queues.
func (f *Frontend) Capacity() int {
	c := 0
	for _, q := range f.queues {
		c += cap(q)
	}
	return c
}

// Exec is the synchronous durable path: Submit and wait for group-commit
// release. The returned timestamp is durable (or err explains why not).
func (f *Frontend) Exec(p *proc.Compiled, args proc.Args) (engine.TS, error) {
	return f.Submit(p, args).Wait()
}

// ExecAdHoc is Exec for ad-hoc transactions.
func (f *Frontend) ExecAdHoc(p *proc.Compiled, args proc.Args) (engine.TS, error) {
	return f.SubmitAdHoc(p, args).Wait()
}

// Workers returns the pool's worker handles (tests and instrumentation).
func (f *Frontend) Workers() []*txn.Worker {
	return append([]*txn.Worker(nil), f.workers...)
}

// Executed returns how many requests pool workers have run so far.
func (f *Frontend) Executed() int64 { return f.executed.Load() }

// Steals returns how many requests were executed by a worker other than
// the owner of the queue they were submitted to.
func (f *Frontend) Steals() int64 { return f.steals.Load() }

// Close drains and shuts the pool down: new submissions resolve with
// ErrClosed, requests already queued are executed, and the pool workers are
// retired once idle so group commit advances past their final epochs. Close
// does not wait for the drained requests' durability — their futures
// resolve through the normal release path (or the log set's Close/Abort).
func (f *Frontend) Close() {
	f.closeOnce.Do(func() {
		f.closeMu.Lock()
		f.closed.Store(true)
		f.closeMu.Unlock()
		close(f.closing)
		// Wait out in-flight Submit calls: each has either enqueued (the
		// drain below will run it) or been rejected via the closing channel.
		f.submitWG.Wait()
		close(f.drainCh)
		f.workerWG.Wait()
		for _, w := range f.workers {
			w.Retire()
		}
	})
}
