package frontend

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// fixture is a started bank database: manager, active command logging on
// two devices, and the workload registry.
type fixture struct {
	bank    *workload.Bank
	mgr     *txn.Manager
	logset  *wal.LogSet
	devices []*simdisk.Device
	deposit *proc.Compiled
}

func newFixture(t testing.TB, kind wal.Kind) *fixture {
	t.Helper()
	bank := workload.NewBank(64)
	bank.Populate(workload.DirectPopulate{})
	mgr := txn.NewManager(bank.DB(), txn.Config{
		MultiVersion:  true,
		EpochInterval: time.Millisecond,
		MaxRetries:    100000,
	})
	devices := []*simdisk.Device{simdisk.New("ssd0", simdisk.Config{}), simdisk.New("ssd1", simdisk.Config{})}
	cfg := wal.Config{Kind: kind, BatchEpochs: 4, FlushInterval: 250 * time.Microsecond, Sync: true}
	ls := wal.NewLogSet(mgr, cfg, devices)
	mgr.StartEpochTicker()
	ls.Start()
	dep := bank.Registry().ByName("Deposit")
	if dep == nil {
		t.Fatal("Deposit proc missing")
	}
	return &fixture{bank: bank, mgr: mgr, logset: ls, devices: devices, deposit: dep}
}

func (fx *fixture) depositArgs(acct, amount, stats int64) proc.Args {
	return proc.Args{proc.A(tuple.I(acct)), proc.A(tuple.I(amount)), proc.A(tuple.I(stats))}
}

// waitAll fails the test if any future does not resolve within the
// deadline — the no-wait-forever guarantee.
func waitAll(t *testing.T, futs []*txn.Future, deadline time.Duration) {
	t.Helper()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-timer.C:
			t.Fatalf("future %d/%d not resolved after %v", i, len(futs), deadline)
		}
	}
}

// TestFrontendMultiplexesClients is the headline contract: 64 client
// goroutines share 8 sessions through the frontend, and every future
// resolves with a durable timestamp.
func TestFrontendMultiplexesClients(t *testing.T) {
	fx := newFixture(t, wal.Command)
	const clients, perClient, poolSize = 64, 25, 8

	before := len(fx.mgr.Workers())
	fe := New(fx.mgr, fx.logset, Config{Workers: poolSize, Queue: 2 * poolSize})
	if got := len(fx.mgr.Workers()) - before; got != poolSize {
		t.Fatalf("frontend created %d workers, want %d", got, poolSize)
	}

	futs := make([][]*txn.Future, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				acct := int64(1 + (c*perClient+i)%64)
				futs[c] = append(futs[c], fe.Submit(fx.deposit, fx.depositArgs(acct, 1, int64(1+c%10))))
			}
		}(c)
	}
	wg.Wait()
	fe.Close()
	fx.mgr.Stop()
	fx.logset.Close()

	// No sessions beyond the pool were ever created.
	if got := len(fx.mgr.Workers()) - before; got != poolSize {
		t.Fatalf("session count grew to %d, want %d", got, poolSize)
	}
	for c := 0; c < clients; c++ {
		waitAll(t, futs[c], 5*time.Second)
		for i, f := range futs[c] {
			ts, err := f.Wait()
			if err != nil {
				t.Fatalf("client %d future %d: %v", c, i, err)
			}
			if ts == 0 {
				t.Fatalf("client %d future %d: zero durable TS", c, i)
			}
			if f.DurableAt().Before(f.ExecAt()) {
				t.Fatalf("client %d future %d: durable %v before exec %v",
					c, i, f.DurableAt(), f.ExecAt())
			}
			if f.DurableLatency() < f.ExecLatency() {
				t.Fatalf("client %d future %d: durable latency %v < exec latency %v",
					c, i, f.DurableLatency(), f.ExecLatency())
			}
		}
	}
	if fe.Executed() != clients*perClient {
		t.Fatalf("executed %d, want %d", fe.Executed(), clients*perClient)
	}
}

// TestFuturesResolveInEpochOrder checks the release path's ordering: the
// pepoch advances monotonically, so a future from a lower epoch can never
// resolve after one from a higher epoch.
func TestFuturesResolveInEpochOrder(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 1})
	var futs []*txn.Future
	for i := 0; i < 20; i++ {
		futs = append(futs, fe.Submit(fx.deposit, fx.depositArgs(int64(1+i%64), 1, 1)))
		if i%4 == 3 {
			time.Sleep(2 * time.Millisecond) // let the epoch clock tick
		}
	}
	fe.Close()
	fx.mgr.Stop()
	fx.logset.Close()
	waitAll(t, futs, 5*time.Second)

	epochs := make(map[uint32]bool)
	for i, a := range futs {
		if err := a.Err(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		epochs[a.Epoch()] = true
		for j, b := range futs {
			if a.Epoch() < b.Epoch() && a.DurableAt().After(b.DurableAt()) {
				t.Fatalf("epoch order violated: future %d (epoch %d) released at %v, "+
					"after future %d (epoch %d) at %v",
					i, a.Epoch(), a.DurableAt(), j, b.Epoch(), b.DurableAt())
			}
		}
	}
	if len(epochs) < 2 {
		t.Fatalf("test spanned %d epoch(s); want >= 2 for the ordering to be meaningful", len(epochs))
	}
}

// TestCrashFailsFutures simulates a power failure with futures in flight:
// every future must still resolve — durable, or with wal.ErrCrashed — and
// no waiter may hang.
func TestCrashFailsFutures(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 4, Queue: 16})

	var mu sync.Mutex
	var futs []*txn.Future
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := fe.Submit(fx.deposit, fx.depositArgs(int64(1+(c+i)%64), 1, 1))
				mu.Lock()
				futs = append(futs, f)
				mu.Unlock()
			}
		}(c)
	}
	time.Sleep(5 * time.Millisecond)
	// Power failure while submissions are racing in: loggers halt, devices
	// lose their unsynced tails.
	fx.mgr.Stop()
	fx.logset.Abort()
	for _, d := range fx.devices {
		d.Crash()
	}
	time.Sleep(time.Millisecond)
	close(stop)
	wg.Wait()
	fe.Close()

	mu.Lock()
	all := futs
	mu.Unlock()
	if len(all) == 0 {
		t.Fatal("no futures submitted")
	}
	waitAll(t, all, 5*time.Second)
	durable, crashed := 0, 0
	for i, f := range all {
		switch _, err := f.Wait(); {
		case err == nil:
			durable++
		case errors.Is(err, wal.ErrCrashed):
			crashed++
		case errors.Is(err, ErrClosed):
			// Submitted after Close won the race; fine.
		default:
			t.Fatalf("future %d: unexpected error %v", i, err)
		}
	}
	if crashed == 0 {
		t.Log("warning: no future observed the crash (all flushed in time)")
	}
	t.Logf("durable=%d crashed=%d of %d", durable, crashed, len(all))
}

// TestFrontendDrainOnClose races many submitters against Close: everything
// accepted must execute and resolve; everything rejected must resolve with
// ErrClosed; nothing may hang.
func TestFrontendDrainOnClose(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 4, Queue: 8})

	const submitters = 64
	results := make([][]*txn.Future, submitters)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				f := fe.Submit(fx.deposit, fx.depositArgs(int64(1+c), 1, 1))
				results[c] = append(results[c], f)
				if errors.Is(f.Err(), ErrClosed) {
					return // frontend closed under us; stop submitting
				}
			}
		}(c)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	fe.Close() // races the submitters
	wg.Wait()
	fx.mgr.Stop()
	fx.logset.Close()

	accepted, rejected := 0, 0
	for c := range results {
		waitAll(t, results[c], 5*time.Second)
		for i, f := range results[c] {
			switch _, err := f.Wait(); {
			case err == nil:
				accepted++
			case errors.Is(err, ErrClosed):
				rejected++
			case errors.Is(err, wal.ErrClosed):
				t.Fatalf("submitter %d future %d: accepted work failed durability: %v", c, i, err)
			default:
				t.Fatalf("submitter %d future %d: %v", c, i, err)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("Close raced ahead of every submitter; no accepted work")
	}
	if int64(accepted) != fe.Executed() {
		t.Fatalf("accepted %d futures but pool executed %d", accepted, fe.Executed())
	}
	t.Logf("accepted=%d rejected=%d", accepted, rejected)
}

// TestSubmitAfterCloseResolvesImmediately: a closed frontend never blocks
// and never leaks an unresolved future.
func TestSubmitAfterCloseResolvesImmediately(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 2})
	fe.Close()
	f := fe.Submit(fx.deposit, fx.depositArgs(1, 1, 1))
	if _, err := f.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	fx.mgr.Stop()
	fx.logset.Close()
}

// TestExecIsDurable: the synchronous path returns only after group-commit
// release, so the persistent epoch must already cover the commit's epoch.
func TestExecIsDurable(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 2})
	for i := 0; i < 5; i++ {
		ts, err := fe.Exec(fx.deposit, fx.depositArgs(int64(1+i), 10, 1))
		if err != nil {
			t.Fatal(err)
		}
		if epoch := uint32(ts >> 32); fx.logset.PersistedEpoch() < epoch {
			t.Fatalf("Exec returned with pepoch %d < commit epoch %d",
				fx.logset.PersistedEpoch(), epoch)
		}
	}
	fe.Close()
	fx.mgr.Stop()
	fx.logset.Close()
}

// TestOffLoggingResolvesAtExecution: with logging off there is no release
// path; futures must resolve at commit instead of waiting forever.
func TestOffLoggingResolvesAtExecution(t *testing.T) {
	fx := newFixture(t, wal.Off)
	fe := New(fx.mgr, fx.logset, Config{Workers: 2})
	var futs []*txn.Future
	for i := 0; i < 10; i++ {
		futs = append(futs, fe.Submit(fx.deposit, fx.depositArgs(int64(1+i), 1, 1)))
	}
	waitAll(t, futs, 5*time.Second)
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if !f.DurableAt().Equal(f.ExecAt()) {
			t.Fatalf("future %d: durable %v != exec %v with logging off", i, f.DurableAt(), f.ExecAt())
		}
	}
	fe.Close()
	fx.mgr.Stop()
	fx.logset.Close()
}

// TestBackpressureBounds: with a tiny queue and slow epoch release, Submit
// applies backpressure instead of buffering without bound — the number of
// unexecuted requests can never exceed queue capacity + pool size.
func TestBackpressureBounds(t *testing.T) {
	fx := newFixture(t, wal.Command)
	const queue, pool = 4, 2
	fe := New(fx.mgr, fx.logset, Config{Workers: pool, Queue: queue})
	var submitted, done sync.WaitGroup
	for c := 0; c < 16; c++ {
		submitted.Add(1)
		done.Add(1)
		go func(c int) {
			defer done.Done()
			first := true
			for i := 0; i < 30; i++ {
				f := fe.Submit(fx.deposit, fx.depositArgs(int64(1+c), 1, 1))
				if first {
					submitted.Done()
					first = false
				}
				f.Wait()
			}
		}(c)
	}
	submitted.Wait()
	done.Wait()
	fe.Close()
	fx.mgr.Stop()
	fx.logset.Close()
	if fe.Executed() != 16*30 {
		t.Fatalf("executed %d, want %d", fe.Executed(), 16*30)
	}
}
