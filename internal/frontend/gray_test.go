package frontend

import (
	"errors"
	"testing"
	"time"

	"pacman/internal/txn"
	"pacman/internal/wal"
)

// TestDeadlineExpiredAtAdmission: a request whose deadline has already
// passed never enters the queue — it resolves ErrDeadlineExceeded
// immediately and counts in the Admission shed bucket.
func TestDeadlineExpiredAtAdmission(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 2, Queue: 8})
	defer func() { fe.Close(); fx.mgr.Stop(); fx.logset.Close() }()

	fut := fe.SubmitDeadline(fx.deposit, fx.depositArgs(1, 1, 1), time.Now().Add(-time.Millisecond))
	select {
	case <-fut.Done():
	default:
		t.Fatal("expired-at-admission future must resolve synchronously")
	}
	if _, err := fut.Wait(); !errors.Is(err, txn.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if s := fe.ShedStats(); s.Admission != 1 || s.Queue != 0 || s.Brownout != 0 {
		t.Fatalf("shed stats = %+v, want exactly one admission shed", s)
	}
	if fe.Executed() != 0 {
		t.Fatal("an admission-shed request must never execute")
	}

	// TrySubmit variant: same shed, and ok=false tells the caller the
	// request was not admitted.
	fut2, ok := fe.TrySubmitDeadline(fx.deposit, fx.depositArgs(1, 1, 1), false, time.Now().Add(-time.Millisecond))
	if ok {
		t.Fatal("TrySubmitDeadline admitted an expired request")
	}
	if _, err := fut2.Wait(); !errors.Is(err, txn.ErrDeadlineExceeded) {
		t.Fatalf("try err = %v, want ErrDeadlineExceeded", err)
	}
	if s := fe.ShedStats(); s.Admission != 2 {
		t.Fatalf("shed stats = %+v, want two admission sheds", s)
	}
}

// TestDeadlineShedsAtDequeue: a request whose deadline expires while it
// sits in the queue is shed at dequeue — resolved with the typed error,
// counted in the Queue bucket, and never executed. The expired request is
// injected into the queue directly so the test does not depend on winning
// a race against the worker pool.
func TestDeadlineShedsAtDequeue(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 1, Queue: 8})
	defer func() { fe.Close(); fx.mgr.Stop(); fx.logset.Close() }()

	fut := txn.NewFutureDeadline(time.Now().Add(-2*time.Millisecond), time.Now().Add(-time.Millisecond))
	fe.queues[0] <- request{p: fx.deposit, args: fx.depositArgs(1, 1, 1), fut: fut}
	fe.nudge()
	if _, err := fut.Wait(); !errors.Is(err, txn.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	waitCond(t, "queue shed counted", func() bool { return fe.ShedStats().Queue == 1 })
	if fe.Executed() != 0 {
		t.Fatal("a dequeue-shed request must never execute")
	}

	// An already-resolved future (its expiry timer fired first) is also
	// swept at dequeue without executing.
	fut2 := txn.NewFutureDeadline(time.Now(), time.Now().Add(50*time.Millisecond))
	fut2.Resolve(time.Now(), txn.ErrDeadlineExceeded)
	fe.queues[0] <- request{p: fx.deposit, args: fx.depositArgs(1, 1, 1), fut: fut2}
	fe.nudge()
	waitCond(t, "resolved future swept", func() bool { return fe.ShedStats().Queue == 2 })
	if fe.Executed() != 0 {
		t.Fatal("a pre-resolved request must never execute")
	}
}

// TestDeadlineAccounting floods a small pool with short-deadline requests:
// whatever the timing, every future must resolve (no-wait-forever), every
// request lands in exactly one bucket, and sheds never execute.
func TestDeadlineAccounting(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 1, Queue: 4})
	defer func() { fe.Close(); fx.mgr.Stop(); fx.logset.Close() }()

	const n = 400
	futs := make([]*txn.Future, n)
	for i := range futs {
		futs[i] = fe.SubmitDeadline(fx.deposit, fx.depositArgs(int64(1+i%64), 1, 1), time.Now().Add(500*time.Microsecond))
	}
	var expired, committed int64
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("future %d never resolved", i)
		}
		switch _, err := f.Wait(); {
		case err == nil:
			committed++
		case errors.Is(err, txn.ErrDeadlineExceeded):
			expired++
		default:
			t.Fatalf("future %d: unexpected error %v", i, err)
		}
	}
	// Expired futures split between shed-before-execution (the buckets)
	// and expired-awaiting-durability (armed timer fired after execution);
	// the buckets can never exceed the expired count, and everything that
	// committed must have executed.
	s := fe.ShedStats()
	if s.Admission+s.Queue > expired {
		t.Fatalf("shed buckets %+v exceed %d expired futures", s, expired)
	}
	if committed > fe.Executed() {
		t.Fatalf("committed=%d > executed=%d", committed, fe.Executed())
	}
	if committed+expired != n {
		t.Fatalf("committed=%d + expired=%d != %d", committed, expired, n)
	}
	t.Logf("n=%d committed=%d expired=%d shed=%+v", n, committed, expired, s)
}

// TestBrownoutShedsAtAdmission: while the watchdog holds the frontend in
// brownout, new submissions resolve ErrBrownout without queueing; work
// already queued still executes; clearing brownout restores admission.
func TestBrownoutShedsAtAdmission(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 2, Queue: 16})
	defer func() { fe.Close(); fx.mgr.Stop(); fx.logset.Close() }()

	// Queue real work, then flip brownout before it is known to finish:
	// brownout gates admission only, so all of it must still commit.
	pre := make([]*txn.Future, 8)
	for i := range pre {
		pre[i] = fe.Submit(fx.deposit, fx.depositArgs(int64(1+i), 1, 1))
	}
	fe.SetBrownout(true)
	if !fe.Brownout() {
		t.Fatal("Brownout() should report the shedding state")
	}

	fut := fe.Submit(fx.deposit, fx.depositArgs(1, 1, 1))
	if _, err := fut.Wait(); !errors.Is(err, ErrBrownout) {
		t.Fatalf("brownout submit err = %v, want ErrBrownout", err)
	}
	if _, ok := fe.TrySubmit(fx.deposit, fx.depositArgs(1, 1, 1), false); ok {
		t.Fatal("TrySubmit admitted work during brownout")
	}
	if s := fe.ShedStats(); s.Brownout != 2 {
		t.Fatalf("shed stats = %+v, want two brownout sheds", s)
	}
	for i, f := range pre {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("queued-before-brownout future %d failed: %v", i, err)
		}
	}

	fe.SetBrownout(false)
	if _, err := fe.Submit(fx.deposit, fx.depositArgs(1, 1, 1)).Wait(); err != nil {
		t.Fatalf("post-brownout submit failed: %v", err)
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
