package frontend

import (
	"sync"
	"testing"
	"time"

	"pacman/internal/txn"
	"pacman/internal/wal"
)

// TestWorkStealing: with per-worker queues, an idle worker steals from a
// busy peer's queue — steals are observed, nothing executes twice, and
// every future resolves durable. Double execution would show up as
// Executed() exceeding the number of accepted requests (each dequeue of a
// request bumps the counter exactly once).
func TestWorkStealing(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 4, Queue: 16})
	defer func() { fx.mgr.Stop(); fx.logset.Close() }()

	var futs []*txn.Future
	submit := func(n int) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < n/8; i++ {
					f := fe.Submit(fx.deposit, fx.depositArgs(int64(1+(c*7+i)%64), 1, 1))
					mu.Lock()
					futs = append(futs, f)
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
	}
	// Keep offering bursts until at least one steal is observed: round-robin
	// spreads requests over queues whose owners are mid-transaction, so an
	// idle peer picking them up is the steady-state behavior, but no single
	// burst is guaranteed to exhibit it.
	deadline := time.Now().Add(5 * time.Second)
	for fe.Steals() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no steal observed after 5s of cross-queue load")
		}
		submit(64)
	}
	fe.Close()

	waitAll(t, futs, 5*time.Second)
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if fe.Executed() != int64(len(futs)) {
		t.Fatalf("executed %d requests but %d were accepted (double or dropped execution)",
			fe.Executed(), len(futs))
	}
	t.Logf("steals=%d of %d executed", fe.Steals(), fe.Executed())
}

// TestDrainEmptiesEveryQueue: Close must drain all per-worker queues, not
// just each worker's own — whatever queue a request landed in, it executes.
func TestDrainEmptiesEveryQueue(t *testing.T) {
	fx := newFixture(t, wal.Command)
	fe := New(fx.mgr, fx.logset, Config{Workers: 4, Queue: 32})

	const n = 200
	futs := make([]*txn.Future, 0, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				f := fe.Submit(fx.deposit, fx.depositArgs(int64(1+c), 1, 1))
				mu.Lock()
				futs = append(futs, f)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	fe.Close()
	for i, q := range fe.queues {
		if len(q) != 0 {
			t.Fatalf("queue %d still holds %d requests after Close", i, len(q))
		}
	}
	fx.mgr.Stop()
	fx.logset.Close()

	waitAll(t, futs, 5*time.Second)
	for i, f := range futs {
		if err := f.Err(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if fe.Executed() != n {
		t.Fatalf("executed %d, want %d", fe.Executed(), n)
	}
}

// TestQueueStallAggregatesAcrossQueues is the stale-evidence regression for
// the multi-queue layout: a single idle-but-nonempty queue must NOT latch
// the queue-stall health signal while other queues make progress — movement
// anywhere resets the clock, and only a whole-pool wedge (no enqueue or
// dequeue on any queue) lets the stall age. The test drives the signal
// arithmetic on an unstarted pool so no worker races the scenario.
func TestQueueStallAggregatesAcrossQueues(t *testing.T) {
	f := &Frontend{
		queues: []chan request{make(chan request, 4), make(chan request, 4)},
		wake:   make(chan struct{}, 1),
	}
	now := time.Now()

	// Empty queues: never a stall, however old lastMove is.
	f.lastMove.Store(now.Add(-time.Minute).UnixNano())
	if got := f.QueueStall(now); got != 0 {
		t.Fatalf("empty-queue stall = %v, want 0", got)
	}

	// A request has sat in queue 0 with no movement anywhere: the stall
	// ages — this is the real whole-pool wedge the watchdog must see.
	f.queues[0] <- request{}
	if got := f.QueueStall(now); got < 55*time.Second {
		t.Fatalf("wedged-pool stall = %v, want ~1m", got)
	}

	// Queue 1 makes progress (an enqueue lands): the evidence against
	// queue 0 is stale — stealing would pick its request up as soon as any
	// worker idles — so the stall signal must reset, not latch.
	if !f.offer(request{}, 1) {
		t.Fatal("offer failed on an empty queue")
	}
	if got := f.QueueStall(now.Add(time.Millisecond)); got > 100*time.Millisecond {
		t.Fatalf("stall latched at %v despite peer-queue movement", got)
	}

	// Movement stops again with work still queued: the stall resumes aging
	// from the last movement, across ALL queues.
	if got := f.QueueStall(now.Add(30 * time.Second)); got < 29*time.Second {
		t.Fatalf("stall after renewed silence = %v, want ~30s", got)
	}
}
