// Package harness drives the paper's experiments: it runs workloads under
// configurable logging, crashes them, recovers with every scheme, and
// prints the rows/series of each table and figure of the evaluation
// (Section 6 and Appendix D).
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/chopping"
	"pacman/internal/engine"
	"pacman/internal/frontend"
	"pacman/internal/metrics"
	"pacman/internal/mvcc"
	"pacman/internal/proc"
	"pacman/internal/recovery"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// WorkloadKind selects the benchmark.
type WorkloadKind string

// Supported workloads.
const (
	TPCC      WorkloadKind = "tpcc"
	Smallbank WorkloadKind = "smallbank"
	BankWk    WorkloadKind = "bank"
)

// RunConfig describes one OLTP run.
type RunConfig struct {
	Workload  WorkloadKind
	TPCC      workload.TPCCConfig
	SB        workload.SmallbankConfig
	BankAccts int

	Logging      wal.Kind
	Devices      int
	DeviceConfig simdisk.Config
	// Workers is the frontend pool size: the number of transaction-
	// execution workers (the paper's 32 worker threads, scaled).
	Workers int
	// Clients is the number of client goroutines multiplexed onto the
	// worker pool through the frontend (default: Workers). Raising it
	// models many logical requests in flight over a bounded pool.
	Clients int
	// Duration bounds the run (alternative: Txns).
	Duration time.Duration
	// Txns bounds the run by transaction count (0 = use Duration).
	Txns int
	// AdHocPct tags this percentage of update transactions ad-hoc.
	AdHocPct int

	EpochInterval   time.Duration
	BatchEpochs     uint32
	DisableSync     bool
	CheckpointEvery time.Duration
	// MaxRetries bounds OCC retries per transaction (default 100000 — the
	// harness prefers long retry storms over failed runs).
	MaxRetries int
	Seed       int64
	// SampleEvery sets the throughput-trace resolution.
	SampleEvery time.Duration
	// ScanTables, when non-empty, runs a concurrent snapshot scanner for
	// the whole run: a goroutine repeatedly pins a view at the newest
	// released epoch and scans the named tables end to end (the mixed
	// OLTP-plus-analytics workload). The scanner reads outside OCC, so it
	// can never abort the OLTP writers; RunResult.Scans/ScanStale*/MVCC
	// report what it saw.
	ScanTables []string
}

// Defaults fills zero fields with bench-scale values.
func (c RunConfig) Defaults() RunConfig {
	if c.Workload == "" {
		c.Workload = TPCC
	}
	if c.Workload == TPCC && c.TPCC.Warehouses == 0 {
		c.TPCC = workload.DefaultTPCCConfig()
		// The paper disables inserts for the logging experiments.
		c.TPCC.DisableInserts = true
	}
	if c.Workload == Smallbank && c.SB.Customers == 0 {
		c.SB = workload.DefaultSmallbankConfig()
	}
	if c.BankAccts == 0 {
		c.BankAccts = 1000
	}
	if c.Devices == 0 {
		c.Devices = 2
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Clients == 0 {
		c.Clients = c.Workers
	}
	if c.Duration == 0 && c.Txns == 0 {
		c.Duration = 2 * time.Second
	}
	if c.EpochInterval == 0 {
		c.EpochInterval = 5 * time.Millisecond
	}
	if c.BatchEpochs == 0 {
		c.BatchEpochs = 10
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 100000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// makeWorkload instantiates the configured benchmark.
func (c RunConfig) makeWorkload() workload.Workload {
	switch c.Workload {
	case Smallbank:
		return workload.NewSmallbank(c.SB)
	case BankWk:
		return workload.NewBank(c.BankAccts)
	default:
		return workload.NewTPCC(c.TPCC)
	}
}

// TraceSample is one point of the Figure 11/12 traces.
type TraceSample struct {
	At            time.Duration
	TPS           float64
	Checkpointing bool
}

// RunResult reports one OLTP run.
type RunResult struct {
	Committed int64
	Aborted   int64
	Elapsed   time.Duration
	// TPS is the overall committed throughput.
	TPS float64
	// Latency is end-to-end durable latency (submit to group-commit
	// release), from Future timestamps; with logging off it is commit
	// latency.
	Latency *metrics.Histogram
	// ExecLatency is submit-to-commit latency (execution only), from the
	// same Futures — the gap to Latency is the group-commit wait.
	ExecLatency *metrics.Histogram
	// LogBytes is the total volume written to the devices by loggers and
	// checkpointers.
	LogBytes int64
	Syncs    int64
	// Mallocs is the system-wide heap allocation count over the run
	// (clients, workers, loggers, checkpointer, sampler — everything), the
	// forward-processing GC-pressure number the throughput experiment
	// tracks.
	Mallocs int64
	// Steals counts cross-queue work steals in the frontend pool — how
	// often an idle worker drained a busy peer's submission queue. The
	// scaling experiment reports it as the load-balance signal of the
	// per-core pipeline.
	Steals int64
	Trace  []TraceSample

	// MVCC reports the multi-version subsystem's counters at run end
	// (versions reclaimed, surviving chain lengths, GC floor).
	MVCC mvcc.Stats
	// Scans counts completed snapshot scans of the concurrent scanner
	// (cfg.ScanTables); ScanRows is the total rows it read.
	Scans    int64
	ScanRows int64
	// ScanStaleSum/ScanStaleMax aggregate scan staleness in epochs: how far
	// each scan's pinned released epoch trailed the then-current epoch.
	ScanStaleSum int64
	ScanStaleMax uint32

	// Crash state for recovery experiments.
	Devices []*simdisk.Device
	cfg     RunConfig
}

// ScanStaleMean returns the mean scan staleness in epochs (0 without scans).
func (r *RunResult) ScanStaleMean() float64 {
	if r.Scans == 0 {
		return 0
	}
	return float64(r.ScanStaleSum) / float64(r.Scans)
}

// AllocsPerTxn returns heap allocations per committed transaction, the
// steady-state allocation discipline the commit hot path is measured by.
func (r *RunResult) AllocsPerTxn() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.Mallocs) / float64(r.Committed)
}

// maxInFlight bounds how many unresolved futures one client goroutine
// keeps before it starts waiting on the oldest — client-side flow control
// on top of the frontend queue's backpressure.
const maxInFlight = 256

// Run executes one OLTP run through a multiplexing frontend — cfg.Clients
// client goroutines submit asynchronously over a pool of cfg.Workers
// transaction workers, accounting results as durable-commit futures
// resolve — and leaves the devices crashed (durable prefixes only), ready
// for recovery. With clean=true everything is flushed before the crash,
// making recovery volume deterministic.
func Run(cfg RunConfig, clean bool) (*RunResult, error) {
	cfg = cfg.Defaults()
	w := cfg.makeWorkload()
	w.Populate(workload.DirectPopulate{})
	mgr := txn.NewManager(w.DB(), txn.Config{
		MultiVersion:  true,
		EpochInterval: cfg.EpochInterval,
		MaxRetries:    cfg.MaxRetries,
	})
	var devices []*simdisk.Device
	for i := 0; i < cfg.Devices; i++ {
		devices = append(devices, simdisk.New(fmt.Sprintf("ssd%d", i), cfg.DeviceConfig))
	}
	res := &RunResult{
		Latency:     &metrics.Histogram{},
		ExecLatency: &metrics.Histogram{},
		Devices:     devices,
		cfg:         cfg,
	}

	// The retention manager mirrors what pacman.DB.Start wires up: GC kicks
	// on every persistent-epoch advance, with a ticker sweeping stragglers.
	var ls *wal.LogSet
	snap := mvcc.NewManager(w.DB(), mvcc.Config{
		SnapshotEpoch:  mgr.SnapshotEpoch,
		PersistedEpoch: func() uint32 { return ls.PersistedEpoch() },
		Interval:       4 * cfg.EpochInterval,
	})
	lcfg := wal.Config{
		Kind:            cfg.Logging,
		BatchEpochs:     cfg.BatchEpochs,
		FlushInterval:   cfg.EpochInterval / 4,
		Sync:            !cfg.DisableSync,
		OnPepochAdvance: func(uint32) { snap.Kick() },
	}
	ls = wal.NewLogSet(mgr, lcfg, devices)
	mgr.StartEpochTicker()
	ls.Start()
	snap.Start()

	var daemon *checkpoint.Daemon
	if cfg.CheckpointEvery > 0 {
		daemon = checkpoint.NewDaemon(mgr, snap, devices, checkpoint.Config{
			Threads:      cfg.Devices,
			IncludeSlots: cfg.Logging == wal.Physical,
		}, cfg.CheckpointEvery)
		daemon.Start()
	}

	fe := frontend.New(mgr, ls, frontend.Config{
		Workers: cfg.Workers,
		Queue:   4 * cfg.Workers,
	})

	var committed, aborted atomic.Int64
	stop := make(chan struct{})
	var txnBudget atomic.Int64
	txnBudget.Store(int64(cfg.Txns))

	var wg sync.WaitGroup
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for g := 0; g < cfg.Clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*7919))
			// Settle waits one future and folds its outcome into the run
			// counters; a hard error stops this client.
			stopped := false
			window := txn.NewWindow(maxInFlight, func(fut *txn.Future, mayAbort bool) {
				_, err := fut.Wait()
				switch {
				case err == nil:
					committed.Add(1)
					res.Latency.Record(fut.DurableLatency())
					res.ExecLatency.Record(fut.ExecLatency())
				case errors.Is(err, wal.ErrCrashed) || errors.Is(err, wal.ErrClosed):
					// Executed, but the run ended before release: committed
					// in memory, not durable. No latency sample.
					committed.Add(1)
				case mayAbort && errors.Is(err, proc.ErrAborted):
					aborted.Add(1)
				default:
					// OCC exhaustion or bug: record and stop this client.
					aborted.Add(1)
					stopped = true
				}
			})
			defer window.Drain()
			for !stopped {
				select {
				case <-stop:
					return
				default:
				}
				if cfg.Txns > 0 && txnBudget.Add(-1) < 0 {
					return
				}
				tx := w.Generate(rng)
				adhoc := !tx.ReadOnly && cfg.AdHocPct > 0 && rng.Intn(100) < cfg.AdHocPct
				if adhoc {
					window.Add(fe.SubmitAdHoc(tx.Proc, tx.Args), tx.MayAbort)
				} else {
					window.Add(fe.Submit(tx.Proc, tx.Args), tx.MayAbort)
				}
			}
		}(g)
	}

	// Concurrent snapshot scanner: back-to-back long scans over the named
	// tables through pinned views, for the whole run.
	scannerDone := make(chan struct{})
	if len(cfg.ScanTables) > 0 {
		go func() {
			defer close(scannerDone)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := snap.Acquire()
				var rows int64
				for _, name := range cfg.ScanTables {
					t := w.DB().Table(name)
					if t == nil {
						continue
					}
					v.Scan(t, 0, ^uint64(0), func(uint64, tuple.Tuple) bool {
						rows++
						return true
					})
				}
				stale := v.Staleness(mgr.Epoch())
				v.Close()
				res.Scans++
				res.ScanRows += rows
				res.ScanStaleSum += int64(stale)
				if stale > res.ScanStaleMax {
					res.ScanStaleMax = stale
				}
			}
		}()
	} else {
		close(scannerDone)
	}

	// Throughput sampler.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		var last int64
		for {
			select {
			case <-tick.C:
				cur := committed.Load()
				res.Trace = append(res.Trace, TraceSample{
					At:            time.Since(start),
					TPS:           float64(cur-last) / cfg.SampleEvery.Seconds(),
					Checkpointing: daemon != nil && daemon.Running(),
				})
				last = cur
			case <-stop:
				return
			}
		}
	}()

	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
	}
	close(stop)
	wg.Wait()
	<-scannerDone
	res.Elapsed = time.Since(start)

	// Drain the frontend (queued work executes, the pool retires) so the
	// safe epoch covers every commit before shutdown.
	fe.Close()
	res.Steals = fe.Steals()
	if daemon != nil {
		daemon.Stop()
	}
	snap.Stop()
	res.MVCC = snap.Stats()
	if clean {
		mgr.AdvanceEpoch()
		mgr.Stop()
		ls.Close()
	} else {
		mgr.Stop()
		ls.Abort()
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	res.Mallocs = int64(memAfter.Mallocs - memBefore.Mallocs)
	stats := simdisk.PoolOf(devices...).Stats()
	res.LogBytes = stats.BytesWritten
	res.Syncs = stats.Syncs
	res.Committed = committed.Load()
	res.Aborted = aborted.Load()
	res.TPS = float64(res.Committed) / res.Elapsed.Seconds()
	for _, d := range devices {
		d.Crash()
	}
	<-samplerDone
	return res, nil
}

// FreshRecovery builds a fresh populated instance of the run's workload and
// recovers it from the run's devices.
func (r *RunResult) FreshRecovery(scheme recovery.Scheme, threads int, mod func(*recovery.Options)) (*recovery.Result, error) {
	w := r.cfg.makeWorkload()
	w.Populate(workload.DirectPopulate{})
	opts := recovery.Options{
		Scheme:   scheme,
		DB:       w.DB(),
		Registry: w.Registry(),
		Devices:  r.Devices,
		Threads:  threads,
	}
	if scheme == recovery.CLRP {
		opts.GDG = PacmanGDG(w)
	}
	if mod != nil {
		mod(&opts)
	}
	return recovery.Run(opts)
}

// loggingProcs returns the log-generating procedures of a workload.
func loggingProcs(w workload.Workload) []*proc.Compiled {
	type hasLogging interface{ LoggingProcs() []*proc.Compiled }
	if h, ok := w.(hasLogging); ok {
		return h.LoggingProcs()
	}
	var out []*proc.Compiled
	for _, c := range w.Registry().All() {
		for _, op := range c.Ops() {
			if op.Kind.IsModification() {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// PacmanGDG builds the PACMAN dependency graph of a workload.
func PacmanGDG(w workload.Workload) *analysis.GDG {
	var ldgs []*analysis.LDG
	for _, c := range loggingProcs(w) {
		ldgs = append(ldgs, analysis.BuildLDG(c))
	}
	return analysis.BuildGDG(ldgs)
}

// ChoppingGDG builds the transaction-chopping dependency graph (Figure 18's
// baseline).
func ChoppingGDG(w workload.Workload) *analysis.GDG {
	return analysis.BuildGDG(chopping.Decompose(loggingProcs(w)))
}

// SnapshotTS returns a consistent snapshot timestamp covering everything
// committed so far on a quiesced manager.
func SnapshotTS(mgr *txn.Manager) engine.TS {
	return engine.MakeTS(mgr.SafeEpoch(), ^uint32(0))
}
