// Package harness drives the paper's experiments: it runs workloads under
// configurable logging, crashes them, recovers with every scheme, and
// prints the rows/series of each table and figure of the evaluation
// (Section 6 and Appendix D).
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/chopping"
	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/recovery"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// WorkloadKind selects the benchmark.
type WorkloadKind string

// Supported workloads.
const (
	TPCC      WorkloadKind = "tpcc"
	Smallbank WorkloadKind = "smallbank"
	BankWk    WorkloadKind = "bank"
)

// RunConfig describes one OLTP run.
type RunConfig struct {
	Workload  WorkloadKind
	TPCC      workload.TPCCConfig
	SB        workload.SmallbankConfig
	BankAccts int

	Logging      wal.Kind
	Devices      int
	DeviceConfig simdisk.Config
	// Workers is the number of transaction-execution goroutines (the
	// paper's 32 worker threads, scaled).
	Workers int
	// Duration bounds the run (alternative: Txns).
	Duration time.Duration
	// Txns bounds the run by transaction count (0 = use Duration).
	Txns int
	// AdHocPct tags this percentage of update transactions ad-hoc.
	AdHocPct int

	EpochInterval   time.Duration
	BatchEpochs     uint32
	DisableSync     bool
	CheckpointEvery time.Duration
	Seed            int64
	// SampleEvery sets the throughput-trace resolution.
	SampleEvery time.Duration
}

// Defaults fills zero fields with bench-scale values.
func (c RunConfig) Defaults() RunConfig {
	if c.Workload == "" {
		c.Workload = TPCC
	}
	if c.Workload == TPCC && c.TPCC.Warehouses == 0 {
		c.TPCC = workload.DefaultTPCCConfig()
		// The paper disables inserts for the logging experiments.
		c.TPCC.DisableInserts = true
	}
	if c.Workload == Smallbank && c.SB.Customers == 0 {
		c.SB = workload.DefaultSmallbankConfig()
	}
	if c.BankAccts == 0 {
		c.BankAccts = 1000
	}
	if c.Devices == 0 {
		c.Devices = 2
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Duration == 0 && c.Txns == 0 {
		c.Duration = 2 * time.Second
	}
	if c.EpochInterval == 0 {
		c.EpochInterval = 5 * time.Millisecond
	}
	if c.BatchEpochs == 0 {
		c.BatchEpochs = 10
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// makeWorkload instantiates the configured benchmark.
func (c RunConfig) makeWorkload() workload.Workload {
	switch c.Workload {
	case Smallbank:
		return workload.NewSmallbank(c.SB)
	case BankWk:
		return workload.NewBank(c.BankAccts)
	default:
		return workload.NewTPCC(c.TPCC)
	}
}

// TraceSample is one point of the Figure 11/12 traces.
type TraceSample struct {
	At            time.Duration
	TPS           float64
	Checkpointing bool
}

// RunResult reports one OLTP run.
type RunResult struct {
	Committed int64
	Aborted   int64
	Elapsed   time.Duration
	// TPS is the overall committed throughput.
	TPS float64
	// Latency is end-to-end (submit to durability release); with logging
	// off it is commit latency.
	Latency *metrics.Histogram
	// LogBytes is the total volume written to the devices by loggers and
	// checkpointers.
	LogBytes int64
	Syncs    int64
	Trace    []TraceSample

	// Crash state for recovery experiments.
	Devices []*simdisk.Device
	cfg     RunConfig
}

// Run executes one OLTP run and leaves the devices crashed (durable
// prefixes only), ready for recovery. With clean=true everything is flushed
// before the crash, making recovery volume deterministic.
func Run(cfg RunConfig, clean bool) (*RunResult, error) {
	cfg = cfg.Defaults()
	w := cfg.makeWorkload()
	w.Populate(workload.DirectPopulate{})
	mgr := txn.NewManager(w.DB(), txn.Config{
		MultiVersion:  true,
		EpochInterval: cfg.EpochInterval,
		MaxRetries:    100000,
	})
	var devices []*simdisk.Device
	for i := 0; i < cfg.Devices; i++ {
		devices = append(devices, simdisk.New(fmt.Sprintf("ssd%d", i), cfg.DeviceConfig))
	}
	res := &RunResult{Latency: &metrics.Histogram{}, Devices: devices, cfg: cfg}

	lcfg := wal.Config{
		Kind:          cfg.Logging,
		BatchEpochs:   cfg.BatchEpochs,
		FlushInterval: cfg.EpochInterval / 4,
		Sync:          !cfg.DisableSync,
		OnRelease: func(cs []*txn.Committed) {
			now := time.Now()
			for _, c := range cs {
				res.Latency.Record(now.Sub(c.Start))
			}
		},
	}
	ls := wal.NewLogSet(mgr, lcfg, devices)
	mgr.StartEpochTicker()
	ls.Start()

	var daemon *checkpoint.Daemon
	if cfg.CheckpointEvery > 0 {
		daemon = checkpoint.NewDaemon(mgr, devices, checkpoint.Config{
			Threads:      cfg.Devices,
			IncludeSlots: cfg.Logging == wal.Physical,
		}, cfg.CheckpointEvery)
		daemon.Start()
	}

	var committed, aborted atomic.Int64
	stop := make(chan struct{})
	var txnBudget atomic.Int64
	txnBudget.Store(int64(cfg.Txns))

	var wg sync.WaitGroup
	workers := make([]*txn.Worker, cfg.Workers)
	for g := 0; g < cfg.Workers; g++ {
		workers[g] = mgr.NewWorker()
		ls.AttachWorker(workers[g])
	}
	start := time.Now()
	for g := 0; g < cfg.Workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wkr := workers[g]
			defer wkr.Retire()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(g)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if cfg.Txns > 0 && txnBudget.Add(-1) < 0 {
					return
				}
				tx := w.Generate(rng)
				adhoc := !tx.ReadOnly && cfg.AdHocPct > 0 && rng.Intn(100) < cfg.AdHocPct
				txnStart := time.Now()
				_, err := wkr.Execute(tx.Proc, tx.Args, adhoc, txnStart)
				switch {
				case err == nil:
					committed.Add(1)
					// Durable transactions get their end-to-end latency from
					// the release callback; unlogged ones finish at commit.
					if cfg.Logging == wal.Off || tx.ReadOnly {
						res.Latency.Record(time.Since(txnStart))
					}
				case tx.MayAbort && errors.Is(err, proc.ErrAborted):
					aborted.Add(1)
				default:
					// OCC exhaustion or bug: record and stop this worker.
					aborted.Add(1)
					return
				}
			}
		}(g)
	}

	// Throughput sampler.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		var last int64
		for {
			select {
			case <-tick.C:
				cur := committed.Load()
				res.Trace = append(res.Trace, TraceSample{
					At:            time.Since(start),
					TPS:           float64(cur-last) / cfg.SampleEvery.Seconds(),
					Checkpointing: daemon != nil && daemon.Running(),
				})
				last = cur
			case <-stop:
				return
			}
		}
	}()

	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
	}
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)

	if daemon != nil {
		daemon.Stop()
	}
	if clean {
		mgr.AdvanceEpoch()
		mgr.Stop()
		ls.Close()
	} else {
		mgr.Stop()
		ls.Abort()
	}
	stats := simdisk.PoolOf(devices...).Stats()
	res.LogBytes = stats.BytesWritten
	res.Syncs = stats.Syncs
	res.Committed = committed.Load()
	res.Aborted = aborted.Load()
	res.TPS = float64(res.Committed) / res.Elapsed.Seconds()
	for _, d := range devices {
		d.Crash()
	}
	<-samplerDone
	return res, nil
}

// FreshRecovery builds a fresh populated instance of the run's workload and
// recovers it from the run's devices.
func (r *RunResult) FreshRecovery(scheme recovery.Scheme, threads int, mod func(*recovery.Options)) (*recovery.Result, error) {
	w := r.cfg.makeWorkload()
	w.Populate(workload.DirectPopulate{})
	opts := recovery.Options{
		Scheme:   scheme,
		DB:       w.DB(),
		Registry: w.Registry(),
		Devices:  r.Devices,
		Threads:  threads,
	}
	if scheme == recovery.CLRP {
		opts.GDG = PacmanGDG(w)
	}
	if mod != nil {
		mod(&opts)
	}
	return recovery.Run(opts)
}

// loggingProcs returns the log-generating procedures of a workload.
func loggingProcs(w workload.Workload) []*proc.Compiled {
	type hasLogging interface{ LoggingProcs() []*proc.Compiled }
	if h, ok := w.(hasLogging); ok {
		return h.LoggingProcs()
	}
	var out []*proc.Compiled
	for _, c := range w.Registry().All() {
		for _, op := range c.Ops() {
			if op.Kind.IsModification() {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// PacmanGDG builds the PACMAN dependency graph of a workload.
func PacmanGDG(w workload.Workload) *analysis.GDG {
	var ldgs []*analysis.LDG
	for _, c := range loggingProcs(w) {
		ldgs = append(ldgs, analysis.BuildLDG(c))
	}
	return analysis.BuildGDG(ldgs)
}

// ChoppingGDG builds the transaction-chopping dependency graph (Figure 18's
// baseline).
func ChoppingGDG(w workload.Workload) *analysis.GDG {
	return analysis.BuildGDG(chopping.Decompose(loggingProcs(w)))
}

// SnapshotTS returns a consistent snapshot timestamp covering everything
// committed so far on a quiesced manager.
func SnapshotTS(mgr *txn.Manager) engine.TS {
	return engine.MakeTS(mgr.SafeEpoch(), ^uint32(0))
}
