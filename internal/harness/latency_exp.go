package harness

import (
	"fmt"
	"io"
	"time"

	"pacman/internal/wal"
	"pacman/internal/workload"
)

// FigLatency reports per-request durable-commit latency percentiles, the
// Figure 10-style experiment the Future API makes first-class: Smallbank is
// driven through the multiplexing frontend (many client goroutines over a
// bounded worker pool) under command vs. physical logging, and each row
// reports p50/p95/p99 of the submit-to-release latency taken from Future
// (ExecAt, DurableAt) timestamps, next to the execution-only latency. The
// gap between the two columns is the group-commit wait the asynchronous
// Submit path hides from clients.
func FigLatency(w io.Writer, s Scale) error {
	clients := 8 * s.Workers
	fmt.Fprintln(w, "=== Latency: durable-commit percentiles from Futures (smallbank via frontend) ===")
	fmt.Fprintf(w, "(%d clients multiplexed over %d workers, %v run, 2 devices)\n",
		clients, s.Workers, s.Duration)
	fmt.Fprintf(w, "%-8s | %9s | %10s %10s | %10s %10s %10s\n",
		"logging", "tps", "exec p50", "exec p99", "durable", "durable", "durable")
	fmt.Fprintf(w, "%-8s | %9s | %10s %10s | %10s %10s %10s\n",
		"", "", "", "", "p50", "p95", "p99")
	for _, kind := range []wal.Kind{wal.Command, wal.Physical} {
		cfg := s.baseRun(kind, 2)
		cfg.Workload = Smallbank
		cfg.SB = workload.DefaultSmallbankConfig()
		cfg.Clients = clients
		res, err := Run(cfg, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8v | %9.0f | %10v %10v | %10v %10v %10v\n",
			kind, res.TPS,
			res.ExecLatency.Percentile(50).Round(time.Microsecond),
			res.ExecLatency.Percentile(99).Round(time.Microsecond),
			res.Latency.Percentile(50).Round(time.Microsecond),
			res.Latency.Percentile(95).Round(time.Microsecond),
			res.Latency.Percentile(99).Round(time.Microsecond))
	}
	return nil
}
