package harness

import (
	"fmt"
	"io"
	"time"

	"pacman/internal/simdisk"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// Scale sets experiment sizes. Short is the bench/test preset (seconds per
// experiment); the full preset takes minutes.
type Scale struct {
	Short bool
	// Duration of each logging run.
	Duration time.Duration
	// Workers is the OLTP worker count.
	Workers int
	// Threads is the recovery-thread sweep.
	Threads []int
	// Warehouses scales TPC-C.
	Warehouses int
	// TortureSeed is the first seed the torture experiment sweeps
	// (pacman-bench -seed; 0 means 1). An oracle violation prints the
	// failing seed — rerunning with it re-derives the identical fault plans.
	TortureSeed int64
	// TortureIters is how many consecutive seeds the torture experiment
	// sweeps (pacman-bench -iters; 0 means the scale default).
	TortureIters int
	// TortureCycles/TortureTxns override the torture run shape
	// (pacman-bench -cycles/-txns; 0 means the scale default). A violation
	// report prints the exact shape to pass back, because the fault-plan
	// stream depends on it.
	TortureCycles, TortureTxns int
	// TortureForce pins ForceRecoveryCrash when reproducing with an
	// explicit -seed (pacman-bench -force); sweeps without -seed force the
	// first seed only.
	TortureForce bool
}

// DefaultScale returns the preset for the given mode.
func DefaultScale(short bool) Scale {
	if short {
		return Scale{
			Short:      true,
			Duration:   1500 * time.Millisecond,
			Workers:    4,
			Threads:    []int{1, 2, 4, 8},
			Warehouses: 2,
		}
	}
	return Scale{
		Duration:   10 * time.Second,
		Workers:    8,
		Threads:    []int{1, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40},
		Warehouses: 4,
	}
}

// ScaledSSD models a device whose bandwidth is proportionally reduced so
// that tuple-level logging saturates it at bench-scale throughput, the way
// the paper's 520 MB/s SSDs saturate at server-scale throughput (Appendix
// D). The shape of Figures 11-12 and Tables 2-3 depends only on the ratio
// between log production rate and device bandwidth.
func ScaledSSD() simdisk.Config {
	return simdisk.Config{
		ReadBandwidth:  80 << 20,
		WriteBandwidth: 40 << 20,
		SyncLatency:    300 * time.Microsecond,
	}
}

// LoadBoundSSD scales the read bandwidth down far enough that log loading,
// not replay, bounds recovery — the regime of the paper's headline claim
// ("recovery time should be bounded by the time to load the log"). The
// ratio matters, not the absolute number: the paper pairs 550 MB/s SSDs
// with 32 replay cores, so a bench-scale single-core replayer needs a
// proportionally slower device for loading to stay the bottleneck.
func LoadBoundSSD() simdisk.Config {
	return simdisk.Config{
		ReadBandwidth:  4 << 20,
		WriteBandwidth: 40 << 20,
		SyncLatency:    300 * time.Microsecond,
	}
}

func (s Scale) tpcc() workload.TPCCConfig {
	cfg := workload.DefaultTPCCConfig()
	cfg.Warehouses = s.Warehouses
	cfg.DisableInserts = true // Section 6.1.1
	return cfg
}

func (s Scale) baseRun(kind wal.Kind, devices int) RunConfig {
	return RunConfig{
		Workload:     TPCC,
		TPCC:         s.tpcc(),
		Logging:      kind,
		Devices:      devices,
		DeviceConfig: ScaledSSD(),
		Workers:      s.Workers,
		Duration:     s.Duration,
	}
}

// Fig11 reproduces Figure 11: TPC-C throughput and latency under PL / LL /
// CL / OFF with periodic checkpointing, on one or two devices.
func Fig11(w io.Writer, s Scale, devices int) error {
	fmt.Fprintf(w, "=== Figure 11%s: logging overhead during transaction processing (%d device(s)) ===\n",
		map[int]string{1: "a", 2: "b"}[devices], devices)
	fmt.Fprintf(w, "TPC-C, %d warehouses, %d workers, %v run, checkpoint every 1/3 of the run\n\n",
		s.Warehouses, s.Workers, s.Duration)
	for _, kind := range []wal.Kind{wal.Physical, wal.Logical, wal.Command, wal.Off} {
		cfg := s.baseRun(kind, devices)
		cfg.CheckpointEvery = s.Duration / 3
		res, err := Run(cfg, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: throughput %.0f tps, latency mean %v p99 %v\n",
			kind, res.TPS, res.Latency.Mean().Round(time.Microsecond),
			res.Latency.Percentile(99).Round(time.Microsecond))
		for _, p := range res.Trace {
			marker := ""
			if p.Checkpointing {
				marker = "  [checkpointing]"
			}
			fmt.Fprintf(w, "  t=%6.2fs  %8.0f tps%s\n", p.At.Seconds(), p.TPS, marker)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table1 reproduces Table 1: throughput, log volume, and size ratios for
// TPC-C and Smallbank.
func Table1(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Table 1: log size comparison ===")
	fmt.Fprintf(w, "%-10s %8s %8s %8s | %9s %9s %9s | %7s %7s\n",
		"", "PL tps", "LL tps", "CL tps", "PL MB/min", "LL MB/min", "CL MB/min", "PL/CL", "LL/CL")
	for _, wk := range []WorkloadKind{TPCC, Smallbank} {
		var tps [3]float64
		var mbmin [3]float64
		for i, kind := range []wal.Kind{wal.Physical, wal.Logical, wal.Command} {
			cfg := s.baseRun(kind, 2)
			cfg.Workload = wk
			if wk == Smallbank {
				cfg.SB = workload.DefaultSmallbankConfig()
			}
			res, err := Run(cfg, true)
			if err != nil {
				return err
			}
			tps[i] = res.TPS
			mbmin[i] = float64(res.LogBytes) / (1 << 20) / res.Elapsed.Minutes()
		}
		fmt.Fprintf(w, "%-10s %8.0f %8.0f %8.0f | %9.1f %9.1f %9.1f | %7.2f %7.2f\n",
			wk, tps[0], tps[1], tps[2], mbmin[0], mbmin[1], mbmin[2],
			mbmin[0]/mbmin[2], mbmin[1]/mbmin[2])
	}
	return nil
}

// Fig12 reproduces Figure 12: command logging with a growing fraction of
// ad-hoc transactions, with and without checkpointing.
func Fig12(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 12: logging with ad-hoc transactions (TPC-C, CL) ===")
	fmt.Fprintf(w, "%-8s | %-28s | %-28s\n", "", "logging only", "logging + checkpointing")
	fmt.Fprintf(w, "%-8s | %10s %16s | %10s %16s\n", "ad-hoc %", "tps", "latency", "tps", "latency")
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		var row [2]struct {
			tps float64
			lat time.Duration
		}
		for i, withCkpt := range []bool{false, true} {
			cfg := s.baseRun(wal.Command, 2)
			cfg.AdHocPct = pct
			if withCkpt {
				cfg.CheckpointEvery = s.Duration / 3
			}
			res, err := Run(cfg, true)
			if err != nil {
				return err
			}
			row[i].tps = res.TPS
			row[i].lat = res.Latency.Mean()
		}
		fmt.Fprintf(w, "%-8d | %10.0f %16v | %10.0f %16v\n", pct,
			row[0].tps, row[0].lat.Round(time.Microsecond),
			row[1].tps, row[1].lat.Round(time.Microsecond))
	}
	return nil
}

// Table2 reproduces Table 2: overall device bandwidth per logging scheme,
// with and without checkpointing, on one and two devices.
func Table2(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Table 2: overall SSD bandwidth (MB/s) ===")
	fmt.Fprintf(w, "%-8s | %8s %8s %8s | %8s %8s %8s\n",
		"", "PL", "LL", "CL", "PL", "LL", "CL")
	fmt.Fprintf(w, "%-8s | %26s | %26s\n", "", "w/ checkpoint", "w/o checkpoint")
	for _, devices := range []int{1, 2} {
		var withCk, noCk [3]float64
		for i, kind := range []wal.Kind{wal.Physical, wal.Logical, wal.Command} {
			for j, ck := range []bool{true, false} {
				cfg := s.baseRun(kind, devices)
				if ck {
					cfg.CheckpointEvery = s.Duration / 3
				}
				res, err := Run(cfg, true)
				if err != nil {
					return err
				}
				bw := float64(res.LogBytes) / (1 << 20) / res.Elapsed.Seconds()
				if j == 0 {
					withCk[i] = bw
				} else {
					noCk[i] = bw
				}
			}
		}
		fmt.Fprintf(w, "%d SSD(s) | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f\n",
			devices, withCk[0], withCk[1], withCk[2], noCk[0], noCk[1], noCk[2])
	}
	return nil
}

// Table3 reproduces Table 3: average transaction latency with and without
// fsync, on one and two devices.
func Table3(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Table 3: average transaction latency (checkpointing disabled) ===")
	fmt.Fprintf(w, "%-8s | %10s %10s %10s | %10s %10s %10s\n",
		"", "PL", "LL", "CL", "PL", "LL", "CL")
	fmt.Fprintf(w, "%-8s | %32s | %32s\n", "", "w/ fsync", "w/o fsync")
	for _, devices := range []int{1, 2} {
		var withF, noF [3]time.Duration
		for i, kind := range []wal.Kind{wal.Physical, wal.Logical, wal.Command} {
			for j, sync := range []bool{true, false} {
				cfg := s.baseRun(kind, devices)
				cfg.DisableSync = !sync
				res, err := Run(cfg, true)
				if err != nil {
					return err
				}
				if j == 0 {
					withF[i] = res.Latency.Mean()
				} else {
					noF[i] = res.Latency.Mean()
				}
			}
		}
		fmt.Fprintf(w, "%d SSD(s) | %10v %10v %10v | %10v %10v %10v\n", devices,
			withF[0].Round(time.Microsecond), withF[1].Round(time.Microsecond), withF[2].Round(time.Microsecond),
			noF[0].Round(time.Microsecond), noF[1].Round(time.Microsecond), noF[2].Round(time.Microsecond))
	}
	return nil
}
