package harness

import (
	"fmt"
	"io"

	"pacman/internal/wal"
	"pacman/internal/workload"
)

// FigMixed is the mixed OLTP+OLAP experiment for the multi-version snapshot
// subsystem: Smallbank under command logging, run once alone and once with a
// concurrent scanner looping long snapshot scans over SAVINGS and CHECKING.
// The claims under test are the ones the mvcc package makes:
//
//   - abort-free reads: the scanner pins released epochs and never joins OCC
//     validation, so adding it must not push writer aborts up — the abort
//     columns of the two runs sit side by side;
//   - bounded cost: the tps delta between the runs is the full price of
//     continuous analytical scans (version retention is already on in the
//     baseline run, so the delta isolates the read side);
//   - bounded staleness: each scan reports how many epochs its pinned cut
//     trailed the then-current epoch — with group commit draining normally
//     this stays within a few epochs of the release lag;
//   - bounded history: GC stats (versions reclaimed, surviving chain length)
//     show retention converging instead of accumulating.
//
// Rows are key=value so BENCH_mixed.json carries the machine-readable series.
func FigMixed(w io.Writer, s Scale) error {
	clients := 4 * s.Workers
	fmt.Fprintln(w, "=== Mixed: Smallbank writers with concurrent snapshot scans ===")
	fmt.Fprintf(w, "(%d clients over %d workers, %v run, command logging; scanner loops SAVINGS+CHECKING snapshot scans)\n\n",
		clients, s.Workers, s.Duration)
	for _, scan := range []bool{false, true} {
		cfg := s.baseRun(wal.Command, 2)
		cfg.Clients = clients
		cfg.Workload = Smallbank
		cfg.TPCC = workload.TPCCConfig{}
		cfg.SB = workload.DefaultSmallbankConfig()
		label := "off"
		if scan {
			cfg.ScanTables = []string{"SAVINGS", "CHECKING"}
			label = "on"
		}
		res, err := Run(cfg, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scan=%-4s tps=%-9.0f aborts=%-6d scans=%-5d scan_rows=%-9d stale_mean=%-5.1f stale_max=%-4d reclaimed=%-8d max_chain=%-3d gc_floor=%d\n",
			label, res.TPS, res.Aborted, res.Scans, res.ScanRows,
			res.ScanStaleMean(), res.ScanStaleMax,
			res.MVCC.Reclaimed, res.MVCC.MaxChain, res.MVCC.Floor)
	}
	fmt.Fprintln(w)
	return nil
}
