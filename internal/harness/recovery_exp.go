package harness

import (
	"fmt"
	"io"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/engine"
	"pacman/internal/recovery"
	"pacman/internal/sched"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// schemeRow pairs a recovery scheme with the logging run feeding it.
var allSchemes = []recovery.Scheme{
	recovery.PLR, recovery.LLR, recovery.LLRP, recovery.CLR, recovery.CLRP,
}

// prepared holds one crashed logging run per log kind, shared by the
// recovery sweeps so every scheme replays the same history.
type prepared struct {
	runs map[wal.Kind]*RunResult
}

func prepare(s Scale, wl WorkloadKind, adhoc int, withCkpt bool) (*prepared, error) {
	p := &prepared{runs: map[wal.Kind]*RunResult{}}
	for _, kind := range []wal.Kind{wal.Physical, wal.Logical, wal.Command} {
		cfg := s.baseRun(kind, 2)
		cfg.Workload = wl
		cfg.DeviceConfig = simdisk.Unlimited() // recovery experiments isolate replay CPU
		cfg.AdHocPct = adhoc
		if wl == Smallbank {
			cfg.SB = workload.DefaultSmallbankConfig()
		}
		if withCkpt {
			cfg.CheckpointEvery = s.Duration / 2
		}
		res, err := Run(cfg, true)
		if err != nil {
			return nil, err
		}
		p.runs[kind] = res
	}
	return p, nil
}

func (p *prepared) forScheme(sch recovery.Scheme) *RunResult {
	return p.runs[sch.LogKind()]
}

// Fig13 reproduces Figure 13: checkpoint recovery (pure reload and overall)
// per scheme across recovery threads.
func Fig13(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 13: checkpoint recovery ===")
	// Build one checkpoint per checkpoint flavor over a populated TPC-C.
	cfg := s.tpcc()
	cfg.CustomersPerDistrict *= 4 // grow the checkpoint so times are visible
	mkCkpt := func(includeSlots bool) ([]*simdisk.Device, error) {
		wl := workload.NewTPCC(cfg)
		wl.Populate(workload.DirectPopulate{})
		mgr := txn.NewManager(wl.DB(), txn.DefaultConfig())
		devs := []*simdisk.Device{
			simdisk.New("ssd0", simdisk.Unlimited()),
			simdisk.New("ssd1", simdisk.Unlimited()),
		}
		_, err := checkpoint.Write(wl.DB(), devs, checkpoint.Config{
			Threads: 2, IncludeSlots: includeSlots, ShardsPerTable: 8,
		}, 1, engine.MakeTS(mgr.SafeEpoch(), ^uint32(0)))
		return devs, err
	}
	slotDevs, err := mkCkpt(true)
	if err != nil {
		return err
	}
	plainDevs, err := mkCkpt(false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s", "threads")
	for _, sch := range allSchemes {
		fmt.Fprintf(w, " | %-21s", sch)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "")
	for range allSchemes {
		fmt.Fprintf(w, " | %10s %10s", "reload", "overall")
	}
	fmt.Fprintln(w)
	for _, threads := range s.Threads {
		fmt.Fprintf(w, "%-8d", threads)
		for _, sch := range allSchemes {
			devs := plainDevs
			if sch == recovery.PLR {
				devs = slotDevs
			}
			wl := workload.NewTPCC(cfg)
			res, err := recovery.Run(recovery.Options{
				Scheme: sch, DB: wl.DB(), Registry: wl.Registry(),
				GDG: PacmanGDG(wl), Devices: devs, Threads: threads,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " | %10v %10v",
				res.CheckpointReload.Round(time.Microsecond),
				res.CheckpointTotal.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig14 reproduces Figure 14: log recovery (pure reload and overall) per
// scheme across threads, over the same transaction history.
func Fig14(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 14: log recovery ===")
	p, err := prepare(s, TPCC, 0, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "(history: %d committed transactions)\n", p.runs[wal.Command].Committed)
	fmt.Fprintf(w, "%-8s", "threads")
	for _, sch := range allSchemes {
		fmt.Fprintf(w, " | %-21s", sch)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s", "")
	for range allSchemes {
		fmt.Fprintf(w, " | %10s %10s", "reload", "overall")
	}
	fmt.Fprintln(w)
	for _, threads := range s.Threads {
		fmt.Fprintf(w, "%-8d", threads)
		for _, sch := range allSchemes {
			if sch == recovery.CLR && threads > s.Threads[0] {
				// CLR replays on one thread regardless; reuse column shape.
				fmt.Fprintf(w, " | %10s %10s", "-", "-")
				continue
			}
			res, err := p.forScheme(sch).FreshRecovery(sch, threads, nil)
			if err != nil {
				return err
			}
			// Fig 14a's "pure reload" is a wall-clock quantity; the summed
			// per-worker reload work lives in res.LogReload.
			fmt.Fprintf(w, " | %10v %10v",
				res.ReloadWall.Round(time.Microsecond),
				res.LogTotal.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig15 reproduces Figure 15: PLR and LLR with and without per-tuple
// latches across threads. (The no-latch configuration is unsafe and used
// only to quantify the latching overhead, as in the paper.)
func Fig15(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 15: latching bottleneck in tuple-level recovery ===")
	p, err := prepare(s, TPCC, 0, false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s | %-23s | %-23s\n", "", "PLR", "LLR")
	fmt.Fprintf(w, "%-8s | %11s %11s | %11s %11s\n", "threads",
		"latch", "no-latch", "latch", "no-latch")
	for _, threads := range s.Threads {
		fmt.Fprintf(w, "%-8d", threads)
		for _, sch := range []recovery.Scheme{recovery.PLR, recovery.LLR} {
			var with, without time.Duration
			for _, disable := range []bool{false, true} {
				res, err := p.forScheme(sch).FreshRecovery(sch, threads,
					func(o *recovery.Options) { o.DisableLatches = disable })
				if err != nil {
					return err
				}
				if disable {
					without = res.LogTotal
				} else {
					with = res.LogTotal
				}
			}
			fmt.Fprintf(w, " | %11v %11v",
				with.Round(time.Microsecond), without.Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig16 reproduces Figure 16: overall recovery (checkpoint + log) with the
// maximum thread count, for TPC-C and Smallbank.
func Fig16(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 16: overall recovery performance ===")
	threads := s.Threads[len(s.Threads)-1]
	for _, wl := range []WorkloadKind{TPCC, Smallbank} {
		p, err := prepare(s, wl, 0, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (%d threads):\n", wl, threads)
		for _, sch := range allSchemes {
			res, err := p.forScheme(sch).FreshRecovery(sch, threads, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-6v checkpoint %10v + log %12v = %12v\n",
				sch, res.CheckpointTotal.Round(time.Microsecond),
				res.LogTotal.Round(time.Microsecond),
				(res.CheckpointTotal + res.LogTotal).Round(time.Microsecond))
		}
	}
	return nil
}

// Fig17 reproduces Figure 17: PACMAN recovery across the ad-hoc fraction.
func Fig17(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 17: recovery with ad-hoc transactions (CLR-P) ===")
	threads := s.Threads[len(s.Threads)-1]
	for _, wl := range []WorkloadKind{TPCC, Smallbank} {
		fmt.Fprintf(w, "%s (%d threads):\n", wl, threads)
		for _, pct := range []int{0, 20, 40, 60, 80, 100} {
			cfg := s.baseRun(wal.Command, 2)
			cfg.Workload = wl
			cfg.DeviceConfig = simdisk.Unlimited()
			cfg.AdHocPct = pct
			cfg.CheckpointEvery = s.Duration / 2
			if wl == Smallbank {
				cfg.SB = workload.DefaultSmallbankConfig()
			}
			run, err := Run(cfg, true)
			if err != nil {
				return err
			}
			res, err := run.FreshRecovery(recovery.CLRP, threads, nil)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  ad-hoc %3d%%: checkpoint %10v + log %12v (%d entries)\n",
				pct, res.CheckpointTotal.Round(time.Microsecond),
				res.LogTotal.Round(time.Microsecond), res.Entries)
		}
	}
	return nil
}

// Fig18 reproduces Figure 18: PACMAN's static analysis against transaction
// chopping, dynamic analysis disabled, low thread counts.
func Fig18(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 18: static analysis vs transaction chopping (dynamic disabled) ===")
	p, err := prepare(s, TPCC, 0, false)
	if err != nil {
		return err
	}
	run := p.runs[wal.Command]
	threads := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fmt.Fprintf(w, "%-8s | %14s | %14s\n", "threads", "PACMAN static", "chopping")
	for _, th := range threads {
		var pac, chop time.Duration
		for i, gdgOf := range []func(workload.Workload) *analysis.GDG{PacmanGDG, ChoppingGDG} {
			gdgOf := gdgOf
			res, err := run.FreshRecovery(recovery.CLRP, th, func(o *recovery.Options) {
				o.Mode = sched.StaticOnly
				wl := run.cfg.makeWorkload()
				o.GDG = gdgOf(wl)
			})
			if err != nil {
				return err
			}
			if i == 0 {
				pac = res.LogTotal
			} else {
				chop = res.LogTotal
			}
		}
		fmt.Fprintf(w, "%-8d | %14v | %14v\n", th,
			pac.Round(time.Microsecond), chop.Round(time.Microsecond))
	}
	return nil
}

// Fig19 reproduces Figure 19: static-only vs synchronous vs pipelined
// execution across threads.
func Fig19(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 19: effectiveness of dynamic analysis (CLR-P) ===")
	p, err := prepare(s, TPCC, 0, false)
	if err != nil {
		return err
	}
	run := p.runs[wal.Command]
	fmt.Fprintf(w, "%-8s | %14s | %14s | %14s\n", "threads",
		"pure static", "synchronous", "pipelined")
	for _, th := range s.Threads {
		var times [3]time.Duration
		for i, mode := range []sched.Mode{sched.StaticOnly, sched.Synchronous, sched.Pipelined} {
			res, err := run.FreshRecovery(recovery.CLRP, th, func(o *recovery.Options) {
				o.Mode = mode
			})
			if err != nil {
				return err
			}
			times[i] = res.LogTotal
		}
		fmt.Fprintf(w, "%-8d | %14v | %14v | %14v\n", th,
			times[0].Round(time.Microsecond), times[1].Round(time.Microsecond),
			times[2].Round(time.Microsecond))
	}
	return nil
}

// Fig20 reproduces Figure 20: the recovery-time breakdown of CLR-P.
func Fig20(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 20: log recovery time breakdown (CLR-P, pipelined) ===")
	p, err := prepare(s, TPCC, 0, false)
	if err != nil {
		return err
	}
	run := p.runs[wal.Command]
	fmt.Fprintf(w, "%-8s | %12s %12s %12s %12s\n", "threads",
		"useful work", "loading", "param check", "scheduling")
	for _, th := range s.Threads {
		bd := sched.NewBreakdown()
		if _, err := run.FreshRecovery(recovery.CLRP, th, func(o *recovery.Options) {
			o.Breakdown = bd
		}); err != nil {
			return err
		}
		shares := bd.Shares()
		fmt.Fprintf(w, "%-8d |", th)
		for _, ps := range shares {
			fmt.Fprintf(w, " %11.1f%%", ps.Share*100)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig21 reproduces Figure 21 / Appendix C: the TPC-C global dependency
// graph (full procedures, inserts included).
func Fig21(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Figure 21: TPC-C global dependency graph ===")
	cfg := s.tpcc()
	cfg.DisableInserts = false
	wl := workload.NewTPCC(cfg)
	var ldgs []*analysis.LDG
	for _, c := range wl.LoggingProcs() {
		l := analysis.BuildLDG(c)
		ldgs = append(ldgs, l)
		fmt.Fprint(w, l.String())
	}
	fmt.Fprint(w, analysis.BuildGDG(ldgs).String())
	return nil
}
