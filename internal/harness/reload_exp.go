package harness

import (
	"fmt"
	"io"
	"time"

	"pacman/internal/metrics"
	"pacman/internal/recovery"
	"pacman/internal/simdisk"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// FigReload demonstrates the paper's "recovery time ≈ load time" claim as an
// engineering property: every scheme recovers the same crashed Smallbank
// history twice, once through the legacy serial feeder (one goroutine
// reloading batches one at a time) and once through the pipelined
// multi-device reloader. Rows report the summed reload work (read+decode
// across workers), the reload pipeline's wall clock, how long replay sat
// stalled waiting for batches, the overlap between reload and replay, and
// the resulting log recovery time.
func FigReload(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "=== Reload pipeline: serial feeder vs pipelined multi-device reload ===")
	threads := s.Threads[len(s.Threads)-1]
	runs := map[wal.Kind]*RunResult{}
	for _, kind := range []wal.Kind{wal.Physical, wal.Logical, wal.Command} {
		cfg := s.baseRun(kind, 2)
		cfg.Workload = Smallbank
		cfg.SB = workload.DefaultSmallbankConfig()
		cfg.DeviceConfig = LoadBoundSSD()
		res, err := Run(cfg, true)
		if err != nil {
			return err
		}
		runs[kind] = res
	}
	fmt.Fprintf(w, "(smallbank, %d recovery threads, 2 devices, %d committed CL transactions)\n",
		threads, runs[wal.Command].Committed)
	fmt.Fprintf(w, "%-6s | %-23s | %-47s | %s\n",
		"", "serial feeder", "pipelined reload", "")
	fmt.Fprintf(w, "%-6s | %10s %12s | %10s %10s %12s %12s | %s\n",
		"scheme", "wall", "log total", "wall", "stall", "overlap", "log total", "speedup")
	for _, sch := range allSchemes {
		run := runs[sch.LogKind()]
		pool := simdisk.PoolOf(run.Devices...)
		pool.ResetStats()
		serial, err := run.FreshRecovery(sch, threads, func(o *recovery.Options) {
			o.SerialReload = true
		})
		if err != nil {
			return err
		}
		pool.ResetStats()
		pipe, err := run.FreshRecovery(sch, threads, nil)
		if err != nil {
			return err
		}
		readBusy := pool.Stats().ReadBusy
		speedup := 1.0
		if pipe.LogTotal > 0 {
			speedup = float64(serial.LogTotal) / float64(pipe.LogTotal)
		}
		fmt.Fprintf(w, "%-6v | %10v %12v | %10v %10v %12v %12v | %5.2fx\n",
			sch,
			serial.ReloadWall.Round(time.Microsecond),
			serial.LogTotal.Round(time.Microsecond),
			pipe.ReloadWall.Round(time.Microsecond),
			pipe.ReloadStall.Round(time.Microsecond),
			pipe.ReloadOverlap.Round(time.Microsecond),
			pipe.LogTotal.Round(time.Microsecond),
			speedup)
		if sch == recovery.CLRP {
			fmt.Fprintf(w, "  CLR-P pipelined: reload work %v hidden %.0f%% behind replay; device read busy %v\n",
				pipe.LogReload.Round(time.Microsecond),
				metrics.Pct(pipe.ReloadOverlap, pipe.ReloadWall),
				readBusy.Round(time.Microsecond))
		}
	}
	return nil
}
