package harness

import (
	"fmt"
	"io"
	"runtime"

	"pacman/internal/wal"
	"pacman/internal/workload"
)

// FigScaling is the core-scaling matrix of the commit pipeline: committed
// throughput as the frontend worker pool grows from 1 toward NumCPU (per-core
// submission queues with work stealing), and as the device count grows
// (striped batch encoding, sharded release scanning). It is the proof
// obligation for the per-core pipeline refactor — before it, every
// submission funneled through one bounded queue and every release through
// one scan, so adding cores moved the bottleneck instead of removing it.
//
// Rows are key=value series (like FigThroughput) so BENCH_scaling.json
// carries a machine-readable matrix. The speedup column is relative to the
// 1-worker point of the same workload/logging pair; the summary annotates
// flat spots — ladder steps that gained <10% — honestly, including the
// degenerate single-core case where the whole ladder oversubscribes one
// core and a flat curve is the expected outcome, not a regression.
func FigScaling(w io.Writer, s Scale) error {
	cores := runtime.GOMAXPROCS(0)
	workerLadder := scalingLadder(cores, s.Short)
	deviceLadder := []int{1, 2, 4, 8}
	if s.Short {
		deviceLadder = []int{1, 2}
	}
	maxWorkers := workerLadder[len(workerLadder)-1]

	fmt.Fprintln(w, "=== Scaling: commit pipeline vs worker and device count ===")
	fmt.Fprintf(w, "(GOMAXPROCS=%d; worker ladder %v at 2 devices, device ladder %v at %d workers;\n",
		cores, workerLadder, deviceLadder, maxWorkers)
	fmt.Fprintf(w, " clients = 4x workers, %v per run; steals = cross-queue work steals)\n\n", s.Duration)

	type curve struct {
		wl   WorkloadKind
		kind wal.Kind
	}
	tps := map[curve]map[int]float64{}
	for _, wl := range []WorkloadKind{Smallbank, TPCC} {
		for _, kind := range []wal.Kind{wal.Command, wal.Physical, wal.Logical} {
			c := curve{wl, kind}
			tps[c] = map[int]float64{}
			for _, workers := range workerLadder {
				res, err := scalingRun(s, wl, kind, workers, 2)
				if err != nil {
					return err
				}
				tps[c][workers] = res.TPS
				fmt.Fprintf(w, "workload=%-9s logging=%-3v workers=%-2d devices=2 tps=%-9.0f speedup=%-5.2f steals=%-6d allocs_txn=%.1f\n",
					wl, kind, workers, res.TPS, res.TPS/tps[c][workerLadder[0]],
					res.Steals, res.AllocsPerTxn())
			}
			fmt.Fprintln(w)
		}
	}

	// Device ladder: command logging on Smallbank at the widest pool — the
	// configuration where encode striping and per-device loggers have the
	// most batch volume to spread.
	for _, devices := range deviceLadder {
		res, err := scalingRun(s, Smallbank, wal.Command, maxWorkers, devices)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "workload=%-9s logging=%-3v workers=%-2d devices=%d tps=%-9.0f steals=%-6d allocs_txn=%.1f\n",
			Smallbank, wal.Command, maxWorkers, devices, res.TPS, res.Steals, res.AllocsPerTxn())
	}
	fmt.Fprintln(w)

	// Summary: per-curve speedup at the widest pool, with flat spots named.
	for _, wl := range []WorkloadKind{Smallbank, TPCC} {
		for _, kind := range []wal.Kind{wal.Command, wal.Physical, wal.Logical} {
			c := curve{wl, kind}
			base := tps[c][workerLadder[0]]
			fmt.Fprintf(w, "summary workload=%-9s logging=%-3v speedup_at_%dw=%.2f flat=%s\n",
				wl, kind, maxWorkers, tps[c][maxWorkers]/base,
				flatSpots(workerLadder, tps[c]))
		}
	}
	if cores == 1 {
		fmt.Fprintf(w, "\nnote: GOMAXPROCS=1 — every ladder step oversubscribes a single core, so a flat\n"+
			"worker curve is the expected shape here; the per-core pipeline shows its spread\n"+
			"(speedup toward NumCPU) only on a multicore host.\n")
	}
	return nil
}

// scalingRun executes one cell of the scaling matrix.
func scalingRun(s Scale, wl WorkloadKind, kind wal.Kind, workers, devices int) (*RunResult, error) {
	cfg := s.baseRun(kind, devices)
	cfg.Workers = workers
	cfg.Clients = 4 * workers
	if wl == Smallbank {
		cfg.Workload = Smallbank
		cfg.TPCC = workload.TPCCConfig{}
		cfg.SB = workload.DefaultSmallbankConfig()
	}
	return Run(cfg, true)
}

// scalingLadder returns the worker counts to sweep: powers of two from 1 up
// to NumCPU (always at least through 4, so oversubscription is visible even
// on small hosts), with NumCPU itself as the final rung when it is not a
// power of two. Short mode pins the reduced smoke matrix 1/2/4.
func scalingLadder(cores int, short bool) []int {
	if short {
		return []int{1, 2, 4}
	}
	top := cores
	if top < 4 {
		top = 4
	}
	var ladder []int
	for n := 1; n <= top; n *= 2 {
		ladder = append(ladder, n)
	}
	if last := ladder[len(ladder)-1]; cores > last {
		ladder = append(ladder, cores)
	}
	return ladder
}

// flatSpots names the ladder steps that gained less than 10% throughput —
// the honest annotation of where the curve stopped climbing.
func flatSpots(ladder []int, tps map[int]float64) string {
	out := ""
	for i := 1; i < len(ladder); i++ {
		prev, cur := tps[ladder[i-1]], tps[ladder[i]]
		if prev > 0 && cur < prev*1.10 {
			if out != "" {
				out += ","
			}
			out += fmt.Sprintf("%d->%d", ladder[i-1], ladder[i])
		}
	}
	if out == "" {
		return "none"
	}
	return out
}
