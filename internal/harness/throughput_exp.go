package harness

import (
	"fmt"
	"io"
	"time"

	"pacman/internal/wal"
	"pacman/internal/workload"
)

// FigThroughput is the forward-processing trajectory experiment: committed
// txn/s, system-wide allocations per transaction, and p99 durable latency
// for command, physical, and logical logging on Smallbank and TPC-C, driven
// through the multiplexing frontend. It is the runtime-cost counterpart of
// the recovery experiments — PACMAN's premise is that command logging keeps
// this side nearly free — and the allocs/txn column is the regression guard
// for the zero-allocation commit/group-commit hot path (see the
// BenchmarkCommitLogged* micro-benchmarks for the isolated per-commit
// numbers).
//
// Rows are emitted in a parse-friendly key=value form so the JSON record
// (BENCH_throughput.json) carries a machine-readable series.
func FigThroughput(w io.Writer, s Scale) error {
	clients := 4 * s.Workers
	fmt.Fprintln(w, "=== Throughput: forward processing under each logging scheme ===")
	fmt.Fprintf(w, "(%d clients over %d workers, %v run, 2 devices; allocs/txn is system-wide mallocs per committed txn)\n\n",
		clients, s.Workers, s.Duration)
	for _, wl := range []WorkloadKind{Smallbank, TPCC} {
		for _, kind := range []wal.Kind{wal.Command, wal.Physical, wal.Logical} {
			cfg := s.baseRun(kind, 2)
			cfg.Clients = clients
			if wl == Smallbank {
				cfg.Workload = Smallbank
				cfg.TPCC = workload.TPCCConfig{}
				cfg.SB = workload.DefaultSmallbankConfig()
			}
			res, err := Run(cfg, true)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "workload=%-9s logging=%-3v tps=%-9.0f allocs_txn=%-7.1f exec_p50=%-10v durable_p99=%v\n",
				wl, kind, res.TPS, res.AllocsPerTxn(),
				res.ExecLatency.Percentile(50).Round(time.Microsecond),
				res.Latency.Percentile(99).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}
