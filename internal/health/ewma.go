package health

import (
	"math"
	"sync/atomic"
	"time"
)

// EWMA is a lock-free exponentially weighted moving average of durations.
// Writers Observe from any goroutine (hot paths: one CAS loop per sample);
// readers Load a smoothed value that weights recent samples by Alpha. The
// zero value is ready to use with the default smoothing factor.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]; higher weights recent
	// samples more. Zero means DefaultAlpha. Set before first Observe.
	Alpha float64

	bits atomic.Uint64 // float64 bits of the current average in nanoseconds
	n    atomic.Uint64 // samples observed
}

// DefaultAlpha is the smoothing factor used when EWMA.Alpha is zero: ~16
// samples of memory, reactive enough for a watchdog at millisecond cadence.
const DefaultAlpha = 0.125

// Observe folds one sample into the average.
func (e *EWMA) Observe(d time.Duration) {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	x := float64(d)
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		var next float64
		if e.n.Load() == 0 && old == 0 {
			next = x // seed with the first sample instead of decaying up from zero
		} else {
			next = cur + alpha*(x-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			e.n.Add(1)
			return
		}
	}
}

// Load returns the current average (zero before any sample).
func (e *EWMA) Load() time.Duration {
	return time.Duration(math.Float64frombits(e.bits.Load()))
}

// Count returns how many samples have been observed.
func (e *EWMA) Count() uint64 { return e.n.Load() }

// Reset forgets all samples.
func (e *EWMA) Reset() {
	e.bits.Store(0)
	e.n.Store(0)
}
