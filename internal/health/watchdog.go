// Package health implements a gray-failure watchdog: a small state machine
// that samples liveness signals (epoch-clock advance, pepoch advance, device
// sync latency, queue dwell, probe RTT) against per-signal budgets and
// drives the instance between Healthy and Brownout. Gray failures — a disk
// whose syncs take seconds, a stalled group-commit logger, a shard that
// accepts connections but never answers — don't fail stop, so nothing in
// the crash/recovery machinery notices them; the watchdog turns "slower
// than the budget" into an explicit, observable state that admission
// control can shed on, and clears it automatically when the signal
// recovers.
//
// Hysteresis is sweep-counted on both edges: TripAfter consecutive breached
// sweeps enter brownout, ClearAfter consecutive clean sweeps leave it, so a
// single slow sync (or a single lucky fast one mid-stall) cannot flap the
// state.
package health

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is the watchdog's coarse verdict on the instance.
type State int32

const (
	// Healthy: every signal inside its budget; admit work normally.
	Healthy State = iota
	// Brownout: at least one signal breached its budget for TripAfter
	// consecutive sweeps; shed new work with typed errors until clear.
	Brownout
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Brownout:
		return "brownout"
	default:
		return fmt.Sprintf("health.State(%d)", int32(s))
	}
}

// Config tunes a Watchdog.
type Config struct {
	// Interval is the sweep cadence (default 5ms).
	Interval time.Duration
	// TripAfter is how many consecutive breached sweeps enter Brownout
	// (default 2).
	TripAfter int
	// ClearAfter is how many consecutive clean sweeps leave Brownout
	// (default 4 — deliberately laggier than TripAfter so recovery is
	// proven, not glimpsed).
	ClearAfter int
	// OnTransition runs on the watchdog goroutine at every state change.
	// It must not block; wire it to fast flag flips (Frontend.SetBrownout)
	// and hand anything slower to another goroutine.
	OnTransition func(from, to State, cause string)
	// Logf, when non-nil, receives one line per transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.TripAfter <= 0 {
		c.TripAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 4
	}
	return c
}

// signal is one registered liveness probe: fn reports the signal's current
// value, breached when it exceeds budget. A zero budget is monitor-only.
type signal struct {
	name   string
	budget time.Duration
	fn     func(now time.Time) time.Duration
}

// SignalStatus is one signal's sampled state inside a Snapshot.
type SignalStatus struct {
	Name     string        `json:"name"`
	Value    time.Duration `json:"value"`
	Budget   time.Duration `json:"budget"`
	Breached bool          `json:"breached"`
}

// Transition records one state change.
type Transition struct {
	At    time.Time `json:"at"`
	From  string    `json:"from"`
	To    string    `json:"to"`
	Cause string    `json:"cause"`
}

// Snapshot is a point-in-time health report, shaped for JSON exposure
// (DB.Health, bench RunResult).
type Snapshot struct {
	State       string         `json:"state"`
	Since       time.Time      `json:"since"`
	Brownouts   int64          `json:"brownouts"`
	Signals     []SignalStatus `json:"signals"`
	Transitions []Transition   `json:"transitions,omitempty"`
}

// maxTransitions bounds the retained transition history.
const maxTransitions = 64

// Watchdog sweeps registered signals on a ticker and drives the
// Healthy/Brownout state machine. Register signals before Start; State and
// Snapshot are safe from any goroutine.
type Watchdog struct {
	cfg   Config
	state atomic.Int32
	since atomic.Int64 // unix nanos of the last transition (or Start)

	mu          sync.Mutex // guards signals, transitions, sweep probe fns
	signals     []signal
	transitions []Transition
	brownouts   atomic.Int64

	breached, clean int // consecutive sweep counters; watchdog goroutine only

	startOnce, stopOnce sync.Once
	stop                chan struct{}
	done                chan struct{}
}

// New builds a watchdog; call Register for each signal, then Start.
func New(cfg Config) *Watchdog {
	return &Watchdog{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Register adds a liveness signal: fn returns the signal's current value
// (an age, a latency); the signal breaches when the value exceeds budget.
// A zero budget registers the signal monitor-only — sampled into snapshots,
// never a brownout cause. fn is called on the watchdog goroutine and from
// Snapshot, so it must be cheap and concurrency-safe.
func (w *Watchdog) Register(name string, budget time.Duration, fn func(now time.Time) time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.signals = append(w.signals, signal{name: name, budget: budget, fn: fn})
}

// Start launches the sweep goroutine. It is idempotent.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		w.since.Store(time.Now().UnixNano())
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case now := <-t.C:
					w.sweep(now)
				case <-w.stop:
					return
				}
			}
		}()
	})
}

// Stop halts sweeping. The state freezes at its last value. Idempotent;
// safe even if Start was never called.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	<-w.done
}

// State returns the current verdict without blocking.
func (w *Watchdog) State() State { return State(w.state.Load()) }

// Since returns when the current state was entered.
func (w *Watchdog) Since() time.Time { return time.Unix(0, w.since.Load()) }

// Brownouts returns how many Healthy→Brownout transitions have occurred.
func (w *Watchdog) Brownouts() int64 { return w.brownouts.Load() }

// sweep samples every signal once and advances the hysteresis counters.
func (w *Watchdog) sweep(now time.Time) {
	statuses := w.sample(now)
	cause := ""
	for _, s := range statuses {
		if s.Breached {
			cause = fmt.Sprintf("%s %v > budget %v", s.Name, s.Value.Round(time.Microsecond), s.Budget)
			break
		}
	}
	if cause != "" {
		w.breached++
		w.clean = 0
		if w.State() == Healthy && w.breached >= w.cfg.TripAfter {
			w.transition(now, Brownout, cause)
		}
		return
	}
	w.clean++
	w.breached = 0
	if w.State() == Brownout && w.clean >= w.cfg.ClearAfter {
		w.transition(now, Healthy, "all signals within budget")
	}
}

// sample evaluates every registered signal under the lock (probe fns may
// keep per-signal state, and Snapshot races the sweep goroutine here).
func (w *Watchdog) sample(now time.Time) []SignalStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SignalStatus, 0, len(w.signals))
	for _, s := range w.signals {
		v := s.fn(now)
		out = append(out, SignalStatus{
			Name:     s.name,
			Value:    v,
			Budget:   s.budget,
			Breached: s.budget > 0 && v > s.budget,
		})
	}
	return out
}

func (w *Watchdog) transition(now time.Time, to State, cause string) {
	from := w.State()
	w.state.Store(int32(to))
	w.since.Store(now.UnixNano())
	w.breached, w.clean = 0, 0
	if to == Brownout {
		w.brownouts.Add(1)
	}
	w.mu.Lock()
	w.transitions = append(w.transitions, Transition{At: now, From: from.String(), To: to.String(), Cause: cause})
	if len(w.transitions) > maxTransitions {
		w.transitions = w.transitions[len(w.transitions)-maxTransitions:]
	}
	w.mu.Unlock()
	if w.cfg.Logf != nil {
		w.cfg.Logf("health: %v -> %v (%s)", from, to, cause)
	}
	if w.cfg.OnTransition != nil {
		w.cfg.OnTransition(from, to, cause)
	}
}

// Transitions returns a copy of the retained transition history.
func (w *Watchdog) Transitions() []Transition {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Transition(nil), w.transitions...)
}

// Snapshot samples every signal now and returns the full health report.
func (w *Watchdog) Snapshot() Snapshot {
	return Snapshot{
		State:       w.State().String(),
		Since:       w.Since(),
		Brownouts:   w.brownouts.Load(),
		Signals:     w.sample(time.Now()),
		Transitions: w.Transitions(),
	}
}

// CounterAge adapts a monotonically advancing counter (an epoch clock, a
// pepoch) into a watchdog signal: the returned probe reports how long the
// counter has been stuck at its current value. The first call seeds the
// baseline, so a freshly started instance reads as just-advanced.
func CounterAge(fn func() uint64) func(now time.Time) time.Duration {
	var (
		mu     sync.Mutex
		last   uint64
		lastAt time.Time
		init   bool
	)
	return func(now time.Time) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		v := fn()
		if !init || v != last {
			last, lastAt, init = v, now, true
		}
		return now.Sub(lastAt)
	}
}

// Max adapts several probes into one signal that reports the worst value —
// e.g. the slowest device's sync latency.
func Max(fns ...func(now time.Time) time.Duration) func(now time.Time) time.Duration {
	return func(now time.Time) time.Duration {
		var worst time.Duration
		for _, fn := range fns {
			if v := fn(now); v > worst {
				worst = v
			}
		}
		return worst
	}
}
