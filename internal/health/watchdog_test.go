package health

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ctlSignal is a test-controlled probe: the watchdog sees whatever value
// the test last stored.
type ctlSignal struct{ v atomic.Int64 }

func (s *ctlSignal) probe(time.Time) time.Duration { return time.Duration(s.v.Load()) }

// TestHysteresisEdges drives sweep directly (no ticker) so both hysteresis
// edges are checked cycle-exactly: TripAfter consecutive breaches to enter
// Brownout, ClearAfter consecutive clean sweeps to leave it.
func TestHysteresisEdges(t *testing.T) {
	w := New(Config{TripAfter: 3, ClearAfter: 5})
	sig := &ctlSignal{}
	w.Register("sync", 10*time.Millisecond, sig.probe)

	now := time.Now()
	tick := func() { now = now.Add(time.Millisecond); w.sweep(now) }

	sig.v.Store(int64(50 * time.Millisecond)) // breached
	tick()
	tick()
	if w.State() != Healthy {
		t.Fatalf("tripped after 2 breached sweeps; TripAfter is 3")
	}
	tick()
	if w.State() != Brownout {
		t.Fatalf("still %v after TripAfter breached sweeps", w.State())
	}
	if w.Brownouts() != 1 {
		t.Fatalf("Brownouts = %d, want 1", w.Brownouts())
	}

	sig.v.Store(int64(time.Millisecond)) // recovered
	for i := 0; i < 4; i++ {
		tick()
	}
	if w.State() != Brownout {
		t.Fatalf("cleared after 4 clean sweeps; ClearAfter is 5")
	}
	tick()
	if w.State() != Healthy {
		t.Fatalf("still %v after ClearAfter clean sweeps", w.State())
	}

	trs := w.Transitions()
	if len(trs) != 2 {
		t.Fatalf("transitions = %d, want 2: %+v", len(trs), trs)
	}
	if trs[0].To != "brownout" || !strings.Contains(trs[0].Cause, "sync") {
		t.Fatalf("first transition %+v should name the breached signal", trs[0])
	}
	if trs[1].To != "healthy" {
		t.Fatalf("second transition %+v should return to healthy", trs[1])
	}
}

// TestFlappingSignalNeverTrips: a signal that alternates breached/clean
// resets the trip counter every clean sweep, so it can flap forever
// without entering Brownout — the whole point of sweep-counted hysteresis.
func TestFlappingSignalNeverTrips(t *testing.T) {
	w := New(Config{TripAfter: 2, ClearAfter: 2})
	sig := &ctlSignal{}
	w.Register("sync", 10*time.Millisecond, sig.probe)
	now := time.Now()
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			sig.v.Store(int64(time.Second))
		} else {
			sig.v.Store(0)
		}
		now = now.Add(time.Millisecond)
		w.sweep(now)
	}
	if w.State() != Healthy || w.Brownouts() != 0 {
		t.Fatalf("flapping signal tripped the watchdog: %v brownouts=%d", w.State(), w.Brownouts())
	}
}

// TestMonitorOnlySignal: zero budget means sampled-but-never-a-cause.
func TestMonitorOnlySignal(t *testing.T) {
	w := New(Config{TripAfter: 1})
	sig := &ctlSignal{}
	sig.v.Store(int64(time.Hour))
	w.Register("rtt", 0, sig.probe)
	now := time.Now()
	for i := 0; i < 5; i++ {
		now = now.Add(time.Millisecond)
		w.sweep(now)
	}
	if w.State() != Healthy {
		t.Fatalf("monitor-only signal caused a brownout")
	}
	snap := w.Snapshot()
	if len(snap.Signals) != 1 || snap.Signals[0].Breached {
		t.Fatalf("snapshot should sample the signal un-breached: %+v", snap.Signals)
	}
}

// TestCounterAge: a stuck counter ages with the sweep clock; any advance
// resets the age; the first observation seeds (no spurious startup age).
func TestCounterAge(t *testing.T) {
	var ctr atomic.Uint64
	probe := CounterAge(ctr.Load)
	t0 := time.Now()
	if age := probe(t0); age != 0 {
		t.Fatalf("first probe should seed at zero age, got %v", age)
	}
	if age := probe(t0.Add(40 * time.Millisecond)); age != 40*time.Millisecond {
		t.Fatalf("stuck counter age = %v, want 40ms", age)
	}
	ctr.Add(1)
	if age := probe(t0.Add(50 * time.Millisecond)); age != 0 {
		t.Fatalf("advanced counter should reset age, got %v", age)
	}
	if age := probe(t0.Add(65 * time.Millisecond)); age != 15*time.Millisecond {
		t.Fatalf("age after advance = %v, want 15ms", age)
	}
}

func TestMax(t *testing.T) {
	a, b := &ctlSignal{}, &ctlSignal{}
	a.v.Store(int64(3 * time.Millisecond))
	b.v.Store(int64(9 * time.Millisecond))
	if v := Max(a.probe, b.probe)(time.Now()); v != 9*time.Millisecond {
		t.Fatalf("Max = %v, want 9ms", v)
	}
	if v := Max()(time.Now()); v != 0 {
		t.Fatalf("empty Max = %v, want 0", v)
	}
}

func TestEWMA(t *testing.T) {
	var e EWMA
	if e.Load() != 0 || e.Count() != 0 {
		t.Fatal("zero EWMA should read zero")
	}
	e.Observe(100 * time.Millisecond)
	if e.Load() != 100*time.Millisecond {
		t.Fatalf("first sample should seed exactly, got %v", e.Load())
	}
	for i := 0; i < 200; i++ {
		e.Observe(10 * time.Millisecond)
	}
	if got := e.Load(); got > 11*time.Millisecond || got < 9*time.Millisecond {
		t.Fatalf("EWMA should converge to 10ms, got %v", got)
	}
	if e.Count() != 201 {
		t.Fatalf("Count = %d, want 201", e.Count())
	}
	e.Reset()
	if e.Load() != 0 || e.Count() != 0 {
		t.Fatal("Reset should forget all samples")
	}
	e.Observe(7 * time.Millisecond)
	if e.Load() != 7*time.Millisecond {
		t.Fatalf("post-Reset first sample should seed exactly, got %v", e.Load())
	}
}

// TestEWMAConcurrent hammers Observe from many goroutines (meaningful
// under -race; the CAS loop must neither lose updates nor tear floats).
func TestEWMAConcurrent(t *testing.T) {
	var e EWMA
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(5 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if e.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", e.Count())
	}
	if got := e.Load(); got != 5*time.Millisecond {
		t.Fatalf("identical samples must average to themselves, got %v", got)
	}
}

// TestWatchdogLive runs the real sweep goroutine end to end: trip on a
// breached signal, observe the OnTransition callback, recover, and stop —
// the concurrency of the full path is what the race detector checks here.
func TestWatchdogLive(t *testing.T) {
	sig := &ctlSignal{}
	var transitions atomic.Int32
	w := New(Config{
		Interval:     time.Millisecond,
		TripAfter:    2,
		ClearAfter:   2,
		OnTransition: func(from, to State, cause string) { transitions.Add(1) },
		Logf:         t.Logf,
	})
	w.Register("sync", 5*time.Millisecond, sig.probe)
	w.Start()
	defer w.Stop()

	sig.v.Store(int64(time.Second))
	waitFor(t, "brownout", func() bool { return w.State() == Brownout })
	sig.v.Store(0)
	waitFor(t, "healthy again", func() bool { return w.State() == Healthy })
	if transitions.Load() < 2 {
		t.Fatalf("OnTransition fired %d times, want >= 2", transitions.Load())
	}
	snap := w.Snapshot()
	if snap.State != "healthy" || snap.Brownouts < 1 || len(snap.Transitions) < 2 {
		t.Fatalf("snapshot after recovery: %+v", snap)
	}

	w.Stop() // idempotent
	w.Stop()
}

// TestStopWithoutStart must not hang or panic.
func TestStopWithoutStart(t *testing.T) {
	New(Config{}).Stop()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
