// Package index provides the concurrent ordered and unordered indexes used
// by the storage engine and the recovery schemes.
//
// BTree is a concurrent B+tree over uint64 keys using latch crabbing
// (lock coupling): readers descend with shared locks, writers descend with
// exclusive locks and release an ancestor as soon as the child below it is
// "safe" (cannot split). Inserts split full nodes preemptively on the way
// down, so a split never propagates upward and every operation is a single
// root-to-leaf pass. Deletes are lazy: entries are removed from leaves but
// nodes are never merged, which keeps the locking protocol simple at the
// cost of slack space after heavy deletion — an acceptable trade for OLTP
// workloads where deletes are rare (TPC-C's Delivery is the only deleter).
//
// The tree intentionally exposes the concurrency profile the paper's
// experiments depend on: many threads hammering the index during recovery
// contend on upper-level latches, which is one of the scalability limits
// Section 6.2.2 attributes to "the performance of the concurrent database
// indexes".
package index

import (
	"sync"
	"sync/atomic"
)

// maxKeys is the maximum number of keys per node (the B+tree order). It must
// be even so a full node splits into two equal halves.
const maxKeys = 32

type node[V any] struct {
	mu   sync.RWMutex
	leaf bool
	n    int
	keys [maxKeys]uint64
	// children is used by inner nodes only (len maxKeys+1 when allocated);
	// vals and next are used by leaves only.
	children []*node[V]
	vals     []V
	next     *node[V]
}

func newLeaf[V any]() *node[V] {
	return &node[V]{leaf: true, vals: make([]V, maxKeys)}
}

func newInner[V any]() *node[V] {
	return &node[V]{children: make([]*node[V], maxKeys+1)}
}

// search returns the index of the first key >= k within the node's n keys.
func (nd *node[V]) search(k uint64) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nd.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child slot to descend into for key k in an inner
// node: the first slot whose separator exceeds k.
func (nd *node[V]) childIndex(k uint64) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nd.keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BTree is a concurrent B+tree mapping uint64 keys to values of type V.
// The zero value is not usable; call NewBTree.
type BTree[V any] struct {
	rootMu sync.RWMutex // guards the root pointer itself
	root   *node[V]
	length atomic.Int64
}

// NewBTree returns an empty tree.
func NewBTree[V any]() *BTree[V] {
	return &BTree[V]{root: newLeaf[V]()}
}

// Len returns the number of entries.
func (t *BTree[V]) Len() int { return int(t.length.Load()) }

// lockRootShared returns the root read-locked, with the root pointer
// guaranteed current at the time of locking.
func (t *BTree[V]) lockRootShared() *node[V] {
	t.rootMu.RLock()
	r := t.root
	r.mu.RLock()
	t.rootMu.RUnlock()
	return r
}

// Get returns the value stored under k.
func (t *BTree[V]) Get(k uint64) (V, bool) {
	cur := t.lockRootShared()
	for !cur.leaf {
		child := cur.children[cur.childIndex(k)]
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
	defer cur.mu.RUnlock()
	i := cur.search(k)
	if i < cur.n && cur.keys[i] == k {
		return cur.vals[i], true
	}
	var zero V
	return zero, false
}

// Insert stores v under k if k is absent and reports whether it inserted.
// An existing key is left unmodified.
func (t *BTree[V]) Insert(k uint64, v V) bool {
	_, inserted := t.insert(k, func() V { return v }, false)
	return inserted
}

// Upsert stores v under k unconditionally, overwriting any existing value.
func (t *BTree[V]) Upsert(k uint64, v V) {
	t.insert(k, func() V { return v }, true)
}

// GetOrInsert returns the value under k, creating it with mk if absent.
// The bool result reports whether the value was newly inserted. mk is called
// at most once, while holding the leaf latch, so creation is atomic with
// respect to concurrent GetOrInsert calls for the same key.
func (t *BTree[V]) GetOrInsert(k uint64, mk func() V) (V, bool) {
	return t.insert(k, mk, false)
}

// insert descends with exclusive latch crabbing, splitting full nodes
// preemptively. It returns the value now stored under k and whether a new
// entry was created (always true when overwrite is set and the key was
// absent; when overwrite is set and the key existed, it returns the new
// value and false).
func (t *BTree[V]) insert(k uint64, mk func() V, overwrite bool) (V, bool) {
	t.rootMu.Lock()
	cur := t.root
	cur.mu.Lock()
	if cur.n == maxKeys {
		// Grow the tree: split the root under the exclusive rootMu.
		newRoot := newInner[V]()
		newRoot.children[0] = cur
		t.splitChild(newRoot, 0, cur)
		t.root = newRoot
		// Descend into the correct half; the other half is unlocked.
		// splitChild leaves both halves locked.
		left, right := newRoot.children[0], newRoot.children[1]
		if k < newRoot.keys[0] {
			right.mu.Unlock()
			cur = left
		} else {
			left.mu.Unlock()
			cur = right
		}
	}
	// The locked node cannot split, so the root pointer is now stable.
	t.rootMu.Unlock()

	for !cur.leaf {
		idx := cur.childIndex(k)
		child := cur.children[idx]
		child.mu.Lock()
		if child.n == maxKeys {
			t.splitChild(cur, idx, child)
			// Both halves are locked; keep the one k belongs to.
			sib := cur.children[idx+1]
			if k < cur.keys[idx] {
				sib.mu.Unlock()
			} else {
				child.mu.Unlock()
				child = sib
			}
		}
		cur.mu.Unlock()
		cur = child
	}

	i := cur.search(k)
	if i < cur.n && cur.keys[i] == k {
		var v V
		if overwrite {
			cur.vals[i] = mk()
			v = cur.vals[i]
		} else {
			v = cur.vals[i]
		}
		cur.mu.Unlock()
		return v, false
	}
	v := mk()
	copy(cur.keys[i+1:cur.n+1], cur.keys[i:cur.n])
	copy(cur.vals[i+1:cur.n+1], cur.vals[i:cur.n])
	cur.keys[i] = k
	cur.vals[i] = v
	cur.n++
	cur.mu.Unlock()
	t.length.Add(1)
	return v, true
}

// splitChild splits the full child at parent.children[idx] into two halves,
// inserting the separator into parent. Caller holds exclusive latches on
// parent and child; on return the new sibling is also exclusively latched.
func (t *BTree[V]) splitChild(parent *node[V], idx int, child *node[V]) {
	var sib *node[V]
	var sep uint64
	h := maxKeys / 2
	if child.leaf {
		sib = newLeaf[V]()
		sib.mu.Lock()
		copy(sib.keys[:], child.keys[h:])
		copy(sib.vals, child.vals[h:])
		sib.n = maxKeys - h
		// Clear moved values so the old leaf does not pin them.
		var zero V
		for j := h; j < maxKeys; j++ {
			child.vals[j] = zero
		}
		child.n = h
		sib.next = child.next
		child.next = sib
		sep = sib.keys[0]
	} else {
		sib = newInner[V]()
		sib.mu.Lock()
		sep = child.keys[h]
		copy(sib.keys[:], child.keys[h+1:])
		copy(sib.children, child.children[h+1:maxKeys+1])
		sib.n = maxKeys - h - 1
		for j := h + 1; j <= maxKeys; j++ {
			child.children[j] = nil
		}
		child.n = h
	}
	copy(parent.keys[idx+1:parent.n+1], parent.keys[idx:parent.n])
	copy(parent.children[idx+2:parent.n+2], parent.children[idx+1:parent.n+1])
	parent.keys[idx] = sep
	parent.children[idx+1] = sib
	parent.n++
}

// Delete removes k and reports whether it was present. Leaves are never
// merged (lazy deletion), so deletion needs only a shared-latch descent
// plus an exclusive latch on the target leaf.
func (t *BTree[V]) Delete(k uint64) bool {
	t.rootMu.RLock()
	cur := t.root
	if cur.leaf {
		// The leaf flag is immutable, and the root cannot split while we
		// hold rootMu, so locking it directly is safe.
		cur.mu.Lock()
		t.rootMu.RUnlock()
		return t.deleteFromLeaf(cur, k)
	}
	cur.mu.RLock()
	t.rootMu.RUnlock()
	for {
		child := cur.children[cur.childIndex(k)]
		if child.leaf {
			child.mu.Lock()
			cur.mu.RUnlock()
			return t.deleteFromLeaf(child, k)
		}
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
}

// deleteFromLeaf removes k from the exclusively latched leaf and unlocks it.
func (t *BTree[V]) deleteFromLeaf(leaf *node[V], k uint64) bool {
	defer leaf.mu.Unlock()
	i := leaf.search(k)
	if i >= leaf.n || leaf.keys[i] != k {
		return false
	}
	copy(leaf.keys[i:leaf.n-1], leaf.keys[i+1:leaf.n])
	copy(leaf.vals[i:leaf.n-1], leaf.vals[i+1:leaf.n])
	var zero V
	leaf.vals[leaf.n-1] = zero
	leaf.n--
	t.length.Add(-1)
	return true
}

// Scan calls fn for each entry with lo <= key <= hi in ascending key order,
// stopping early if fn returns false. The scan is not a consistent snapshot:
// entries inserted or deleted concurrently may or may not be observed, but
// every entry visited was present at the moment its leaf was latched.
func (t *BTree[V]) Scan(lo, hi uint64, fn func(k uint64, v V) bool) {
	cur := t.lockRootShared()
	for !cur.leaf {
		child := cur.children[cur.childIndex(lo)]
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
	for {
		for i := cur.search(lo); i < cur.n; i++ {
			k := cur.keys[i]
			if k > hi {
				cur.mu.RUnlock()
				return
			}
			if !fn(k, cur.vals[i]) {
				cur.mu.RUnlock()
				return
			}
		}
		nxt := cur.next
		if nxt == nil {
			cur.mu.RUnlock()
			return
		}
		nxt.mu.RLock()
		cur.mu.RUnlock()
		cur = nxt
	}
}

// Min returns the smallest key and its value.
func (t *BTree[V]) Min() (uint64, V, bool) {
	var zero V
	cur := t.lockRootShared()
	for !cur.leaf {
		child := cur.children[0]
		child.mu.RLock()
		cur.mu.RUnlock()
		cur = child
	}
	for {
		if cur.n > 0 {
			k, v := cur.keys[0], cur.vals[0]
			cur.mu.RUnlock()
			return k, v, true
		}
		nxt := cur.next
		if nxt == nil {
			cur.mu.RUnlock()
			return 0, zero, false
		}
		nxt.mu.RLock()
		cur.mu.RUnlock()
		cur = nxt
	}
}
