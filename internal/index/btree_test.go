package index

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBTreeBasic(t *testing.T) {
	bt := NewBTree[string]()
	if _, ok := bt.Get(1); ok {
		t.Error("empty tree returned a value")
	}
	if !bt.Insert(1, "a") {
		t.Error("first insert failed")
	}
	if bt.Insert(1, "b") {
		t.Error("duplicate insert succeeded")
	}
	if v, ok := bt.Get(1); !ok || v != "a" {
		t.Errorf("Get(1) = %q, %v", v, ok)
	}
	bt.Upsert(1, "c")
	if v, _ := bt.Get(1); v != "c" {
		t.Errorf("after Upsert, Get(1) = %q", v)
	}
	if bt.Len() != 1 {
		t.Errorf("len = %d", bt.Len())
	}
	if !bt.Delete(1) || bt.Delete(1) {
		t.Error("delete semantics broken")
	}
	if bt.Len() != 0 {
		t.Errorf("len after delete = %d", bt.Len())
	}
}

func TestBTreeGetOrInsert(t *testing.T) {
	bt := NewBTree[int]()
	calls := 0
	v, inserted := bt.GetOrInsert(7, func() int { calls++; return 42 })
	if !inserted || v != 42 || calls != 1 {
		t.Errorf("first GetOrInsert: v=%d inserted=%v calls=%d", v, inserted, calls)
	}
	v, inserted = bt.GetOrInsert(7, func() int { calls++; return 99 })
	if inserted || v != 42 || calls != 1 {
		t.Errorf("second GetOrInsert: v=%d inserted=%v calls=%d", v, inserted, calls)
	}
}

// TestBTreeSplitsAscending forces deep trees through many splits.
func TestBTreeSplitsAscending(t *testing.T) {
	bt := NewBTree[uint64]()
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		if !bt.Insert(i, i*2) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if bt.Len() != n {
		t.Fatalf("len = %d", bt.Len())
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := bt.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
}

func TestBTreeSplitsDescendingAndRandom(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"descending": func(i int) uint64 { return uint64(100_000 - i) },
		"random":     func(i int) uint64 { return uint64(i) * 2654435761 % 1_000_003 },
	} {
		bt := NewBTree[int]()
		seen := map[uint64]int{}
		for i := 0; i < 20_000; i++ {
			k := gen(i)
			_, dup := seen[k]
			if ins := bt.Insert(k, i); ins == dup {
				t.Fatalf("%s: insert(%d) = %v but dup = %v", name, k, ins, dup)
			}
			if !dup {
				seen[k] = i
			}
		}
		for k, want := range seen {
			if v, ok := bt.Get(k); !ok || v != want {
				t.Fatalf("%s: Get(%d) = %d, %v; want %d", name, k, v, ok, want)
			}
		}
	}
}

// TestBTreeOracle runs a random mixed workload against a map oracle.
func TestBTreeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bt := NewBTree[int]()
	oracle := map[uint64]int{}
	const keySpace = 2000
	for i := 0; i < 100_000; i++ {
		k := uint64(rng.Intn(keySpace))
		switch rng.Intn(5) {
		case 0, 1: // insert
			_, want := oracle[k]
			if got := bt.Insert(k, i); got == want {
				t.Fatalf("step %d: Insert(%d) = %v, oracle has=%v", i, k, got, want)
			}
			if !want {
				oracle[k] = i
			}
		case 2: // delete
			_, want := oracle[k]
			if got := bt.Delete(k); got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(oracle, k)
		case 3: // upsert
			bt.Upsert(k, i)
			oracle[k] = i
		default: // get
			want, wantOK := oracle[k]
			got, ok := bt.Get(k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("step %d: Get(%d) = %d,%v; want %d,%v", i, k, got, ok, want, wantOK)
			}
		}
		if bt.Len() != len(oracle) {
			t.Fatalf("step %d: len %d != oracle %d", i, bt.Len(), len(oracle))
		}
	}
	// Final full verification via scan.
	var keys []uint64
	bt.Scan(0, ^uint64(0), func(k uint64, v int) bool {
		keys = append(keys, k)
		if oracle[k] != v {
			t.Fatalf("scan: key %d = %d, want %d", k, v, oracle[k])
		}
		return true
	})
	if len(keys) != len(oracle) {
		t.Fatalf("scan visited %d keys, oracle has %d", len(keys), len(oracle))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("scan not in key order")
	}
}

func TestBTreeScanRange(t *testing.T) {
	bt := NewBTree[uint64]()
	for i := uint64(0); i < 1000; i += 2 { // even keys only
		bt.Insert(i, i)
	}
	var got []uint64
	bt.Scan(100, 110, func(k uint64, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{100, 102, 104, 106, 108, 110}
	if len(got) != len(want) {
		t.Fatalf("scan [100,110] = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan [100,110] = %v", got)
		}
	}
	// Early stop.
	count := 0
	bt.Scan(0, ^uint64(0), func(k uint64, v uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
	// Empty range.
	bt.Scan(101, 101, func(k uint64, v uint64) bool {
		t.Errorf("unexpected key %d in empty range", k)
		return true
	})
}

func TestBTreeMin(t *testing.T) {
	bt := NewBTree[int]()
	if _, _, ok := bt.Min(); ok {
		t.Error("Min on empty tree")
	}
	bt.Insert(50, 1)
	bt.Insert(10, 2)
	bt.Insert(90, 3)
	if k, v, ok := bt.Min(); !ok || k != 10 || v != 2 {
		t.Errorf("Min = %d,%d,%v", k, v, ok)
	}
	bt.Delete(10)
	if k, _, ok := bt.Min(); !ok || k != 50 {
		t.Errorf("Min after delete = %d,%v", k, ok)
	}
}

func TestBTreeDeleteHeavy(t *testing.T) {
	bt := NewBTree[int]()
	const n = 5000
	for i := 0; i < n; i++ {
		bt.Insert(uint64(i), i)
	}
	// Delete everything, then reinsert; lazy deletion must not corrupt.
	for i := 0; i < n; i++ {
		if !bt.Delete(uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("len = %d", bt.Len())
	}
	for i := 0; i < n; i++ {
		if !bt.Insert(uint64(i), -i) {
			t.Fatalf("reinsert %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := bt.Get(uint64(i)); !ok || v != -i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestBTreeConcurrentDisjointInserts(t *testing.T) {
	bt := NewBTree[int]()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := uint64(w*perWorker + i)
				if !bt.Insert(k, int(k)) {
					t.Errorf("insert %d failed", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if bt.Len() != workers*perWorker {
		t.Fatalf("len = %d", bt.Len())
	}
	for k := 0; k < workers*perWorker; k++ {
		if v, ok := bt.Get(uint64(k)); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestBTreeConcurrentMixed(t *testing.T) {
	bt := NewBTree[int]()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20_000; i++ {
				k := uint64(rng.Intn(4096))
				switch rng.Intn(4) {
				case 0:
					bt.Insert(k, w)
				case 1:
					bt.Delete(k)
				case 2:
					bt.Get(k)
				default:
					bt.Scan(k, k+64, func(uint64, int) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	// Structure must still be a valid search tree: scan yields sorted keys
	// and Get agrees with Scan.
	var keys []uint64
	bt.Scan(0, ^uint64(0), func(k uint64, v int) bool {
		keys = append(keys, k)
		return true
	})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("scan not sorted after concurrent churn")
	}
	for _, k := range keys {
		if _, ok := bt.Get(k); !ok {
			t.Fatalf("key %d visible in scan but not in Get", k)
		}
	}
	if len(keys) != bt.Len() {
		t.Fatalf("scan count %d != len %d", len(keys), bt.Len())
	}
}

func TestBTreeConcurrentGetOrInsertOnce(t *testing.T) {
	bt := NewBTree[*int]()
	const workers = 16
	results := make([]*int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, _ := bt.GetOrInsert(1, func() *int { x := w; return &x })
			results[w] = v
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatal("GetOrInsert returned different pointers to racers")
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt := NewBTree[int]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(uint64(i), i)
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	bt := NewBTree[int]()
	for i := 0; i < 100_000; i++ {
		bt.Insert(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Get(uint64(i % 100_000))
	}
}

func BenchmarkBTreeGetParallel(b *testing.B) {
	bt := NewBTree[int]()
	for i := 0; i < 100_000; i++ {
		bt.Insert(uint64(i), i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			bt.Get(uint64(i % 100_000))
			i++
		}
	})
}
