package index

import "sync"

// HashMap is a sharded concurrent hash index over uint64 keys. Recovery
// schemes use it for shuffle phases (LLR-P's table/key partitioning) and as
// a cheaper unordered alternative to the B+tree where ordering is not
// required.
type HashMap[V any] struct {
	shards []hashShard[V]
	mask   uint64
}

type hashShard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
	_  [40]byte // pad to a cache line to avoid false sharing between shards
}

// NewHashMap creates a hash index with at least the given number of shards
// (rounded up to a power of two; minimum 1).
func NewHashMap[V any](shards int) *HashMap[V] {
	n := 1
	for n < shards {
		n <<= 1
	}
	h := &HashMap[V]{shards: make([]hashShard[V], n), mask: uint64(n - 1)}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]V)
	}
	return h
}

// mix is a 64-bit finalizer (splitmix64) spreading adjacent keys across
// shards.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (h *HashMap[V]) shard(k uint64) *hashShard[V] {
	return &h.shards[mix(k)&h.mask]
}

// Get returns the value under k.
func (h *HashMap[V]) Get(k uint64) (V, bool) {
	s := h.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Insert stores v under k if absent and reports whether it inserted.
func (h *HashMap[V]) Insert(k uint64, v V) bool {
	s := h.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = v
	return true
}

// Upsert stores v under k unconditionally.
func (h *HashMap[V]) Upsert(k uint64, v V) {
	s := h.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// GetOrInsert returns the value under k, creating it with mk if absent; the
// bool reports whether it inserted. mk runs under the shard latch.
func (h *HashMap[V]) GetOrInsert(k uint64, mk func() V) (V, bool) {
	s := h.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[k]; ok {
		return v, false
	}
	v := mk()
	s.m[k] = v
	return v, true
}

// Delete removes k and reports whether it was present.
func (h *HashMap[V]) Delete(k uint64) bool {
	s := h.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; !ok {
		return false
	}
	delete(s.m, k)
	return true
}

// Len returns the total entry count. It latches each shard in turn, so the
// result is only approximate under concurrent mutation.
func (h *HashMap[V]) Len() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.RLock()
		n += len(h.shards[i].m)
		h.shards[i].mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry in unspecified order, stopping early if fn
// returns false. Each shard is visited under its read latch.
func (h *HashMap[V]) Range(fn func(k uint64, v V) bool) {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
