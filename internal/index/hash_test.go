package index

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHashMapBasic(t *testing.T) {
	h := NewHashMap[string](4)
	if _, ok := h.Get(1); ok {
		t.Error("empty map returned value")
	}
	if !h.Insert(1, "a") || h.Insert(1, "b") {
		t.Error("insert semantics broken")
	}
	if v, ok := h.Get(1); !ok || v != "a" {
		t.Errorf("Get = %q,%v", v, ok)
	}
	h.Upsert(1, "c")
	if v, _ := h.Get(1); v != "c" {
		t.Error("upsert broken")
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Error("delete semantics broken")
	}
}

func TestHashMapShardRounding(t *testing.T) {
	for _, req := range []int{0, 1, 3, 4, 7, 64} {
		h := NewHashMap[int](req)
		n := len(h.shards)
		if n&(n-1) != 0 || n < 1 || (req > 0 && n < req) {
			t.Errorf("shards(%d) = %d, want power of two >= max(req,1)", req, n)
		}
	}
}

func TestHashMapGetOrInsert(t *testing.T) {
	h := NewHashMap[int](4)
	v, ins := h.GetOrInsert(5, func() int { return 10 })
	if !ins || v != 10 {
		t.Errorf("GetOrInsert = %d,%v", v, ins)
	}
	v, ins = h.GetOrInsert(5, func() int { return 20 })
	if ins || v != 10 {
		t.Errorf("second GetOrInsert = %d,%v", v, ins)
	}
}

func TestHashMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHashMap[int](8)
	oracle := map[uint64]int{}
	for i := 0; i < 50_000; i++ {
		k := uint64(rng.Intn(1000))
		switch rng.Intn(4) {
		case 0:
			_, had := oracle[k]
			if h.Insert(k, i) == had {
				t.Fatal("insert disagrees with oracle")
			}
			if !had {
				oracle[k] = i
			}
		case 1:
			_, had := oracle[k]
			if h.Delete(k) != had {
				t.Fatal("delete disagrees with oracle")
			}
			delete(oracle, k)
		case 2:
			h.Upsert(k, i)
			oracle[k] = i
		default:
			got, ok := h.Get(k)
			want, wantOK := oracle[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatal("get disagrees with oracle")
			}
		}
	}
	if h.Len() != len(oracle) {
		t.Fatalf("len %d != %d", h.Len(), len(oracle))
	}
	seen := 0
	h.Range(func(k uint64, v int) bool {
		if oracle[k] != v {
			t.Fatalf("range: %d = %d, want %d", k, v, oracle[k])
		}
		seen++
		return true
	})
	if seen != len(oracle) {
		t.Fatalf("range visited %d of %d", seen, len(oracle))
	}
}

func TestHashMapRangeEarlyStop(t *testing.T) {
	h := NewHashMap[int](2)
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, int(i))
	}
	n := 0
	h.Range(func(uint64, int) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestHashMapConcurrent(t *testing.T) {
	h := NewHashMap[int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20_000; i++ {
				k := uint64(rng.Intn(2048))
				switch rng.Intn(3) {
				case 0:
					h.Insert(k, w)
				case 1:
					h.Delete(k)
				default:
					h.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Len must equal what Range sees.
	n := 0
	h.Range(func(uint64, int) bool { n++; return true })
	if n != h.Len() {
		t.Fatalf("range %d != len %d", n, h.Len())
	}
}

func BenchmarkHashMapGetParallel(b *testing.B) {
	h := NewHashMap[int](64)
	for i := uint64(0); i < 100_000; i++ {
		h.Insert(i, int(i))
	}
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			h.Get(i % 100_000)
			i++
		}
	})
}
