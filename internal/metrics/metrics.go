// Package metrics provides the lightweight measurement primitives the
// harness uses: latency histograms, throughput time series, and per-phase
// breakdown accumulators. All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations into logarithmically spaced buckets
// (sub-microsecond through ~17 minutes) and reports percentiles. Recording is
// a single atomic add; it is safe to share one histogram across workers.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
}

const (
	// Buckets: 64 per power of two of nanoseconds, covering 2^9ns (512ns)
	// granularity at the low end up to 2^40ns (~18 min).
	bucketsPerPow = 8
	minPow        = 9
	maxPow        = 40
	numBuckets    = (maxPow - minPow) * bucketsPerPow
)

func bucketFor(ns int64) int {
	if ns < 1<<minPow {
		return 0
	}
	pow := 63 - leadingZeros(uint64(ns))
	if pow >= maxPow {
		return numBuckets - 1
	}
	// Sub-bucket by the next bucketsPerPow bits below the top bit.
	sub := (ns >> (uint(pow) - log2BucketsPerPow)) & (bucketsPerPow - 1)
	idx := (pow-minPow)*bucketsPerPow + int(sub)
	if idx < 0 {
		return 0
	}
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

const log2BucketsPerPow = 3 // log2(bucketsPerPow)

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

func bucketUpper(i int) time.Duration {
	pow := minPow + i/bucketsPerPow
	sub := i % bucketsPerPow
	base := int64(1) << uint(pow)
	step := base >> log2BucketsPerPow
	return time.Duration(base + int64(sub+1)*step)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketFor(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(total) * p / 100))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Snapshot returns a human-readable summary.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}

// DurationSum accumulates wall time from concurrent contributors with a
// single atomic add per record; the reload pipeline's readers and decode
// workers share one per stage.
type DurationSum struct{ ns atomic.Int64 }

// Add accumulates d.
func (s *DurationSum) Add(d time.Duration) { s.ns.Add(int64(d)) }

// AddSince accumulates the time elapsed since t0.
func (s *DurationSum) AddSince(t0 time.Time) { s.ns.Add(int64(time.Since(t0))) }

// Load returns the accumulated total.
func (s *DurationSum) Load() time.Duration { return time.Duration(s.ns.Load()) }

// Pct returns part as a percentage of whole (0 when whole is 0).
func Pct(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// TimeSeries samples a counter at fixed intervals to produce the
// throughput-over-time traces in Figures 11 and 12.
type TimeSeries struct {
	mu      sync.Mutex
	samples []Sample
}

// Sample is one point of a time series.
type Sample struct {
	At    time.Duration // offset from the start of the run
	Value float64
}

// Append records one sample.
func (ts *TimeSeries) Append(at time.Duration, v float64) {
	ts.mu.Lock()
	ts.samples = append(ts.samples, Sample{At: at, Value: v})
	ts.mu.Unlock()
}

// Samples returns a copy of the recorded samples in append order.
func (ts *TimeSeries) Samples() []Sample {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]Sample(nil), ts.samples...)
}

// Breakdown accumulates wall time attributed to named phases; it backs the
// Figure 20 recovery-time breakdown. Phases are registered up front so
// recording is a lock-free atomic add.
type Breakdown struct {
	names []string
	index map[string]int
	ns    []atomic.Int64
}

// NewBreakdown creates a breakdown over the given phase names.
func NewBreakdown(names ...string) *Breakdown {
	b := &Breakdown{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
		ns:    make([]atomic.Int64, len(names)),
	}
	for i, n := range names {
		b.index[n] = i
	}
	return b
}

// Add attributes d of wall time to the named phase. Unknown names panic:
// phase sets are static.
func (b *Breakdown) Add(name string, d time.Duration) {
	b.ns[b.index[name]].Add(int64(d))
}

// Timed runs f and attributes its wall time to the named phase.
func (b *Breakdown) Timed(name string, f func()) {
	start := time.Now()
	f()
	b.Add(name, time.Since(start))
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	var t int64
	for i := range b.ns {
		t += b.ns[i].Load()
	}
	return time.Duration(t)
}

// Shares returns each phase's fraction of the total, keyed by name,
// in registration order.
func (b *Breakdown) Shares() []PhaseShare {
	total := float64(b.Total())
	out := make([]PhaseShare, len(b.names))
	for i, n := range b.names {
		v := b.ns[i].Load()
		share := 0.0
		if total > 0 {
			share = float64(v) / total
		}
		out[i] = PhaseShare{Name: n, Time: time.Duration(v), Share: share}
	}
	return out
}

// Get returns the accumulated time for one phase.
func (b *Breakdown) Get(name string) time.Duration {
	return time.Duration(b.ns[b.index[name]].Load())
}

// PhaseShare is one row of a Breakdown report.
type PhaseShare struct {
	Name  string
	Time  time.Duration
	Share float64
}

// SortedKeys returns map keys in sorted order; a small convenience for
// deterministic report printing.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
