package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(1 * time.Millisecond)
	h.Record(2 * time.Millisecond)
	h.Record(3 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 2*time.Millisecond {
		t.Errorf("mean = %v", got)
	}
	if got := h.Max(); got != 3*time.Millisecond {
		t.Errorf("max = %v", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	var h Histogram
	// 1..1000 microseconds, uniformly.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Percentile(50)
	// Buckets are log-spaced with 8 sub-buckets: the answer must be within
	// ~15% of 500us.
	if p50 < 450*time.Microsecond || p50 > 600*time.Microsecond {
		t.Errorf("p50 = %v, want ~500us", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900*time.Microsecond || p99 > 1200*time.Microsecond {
		t.Errorf("p99 = %v, want ~990us", p99)
	}
	if h.Percentile(100) < h.Percentile(50) {
		t.Error("percentiles not monotone")
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(-time.Second) // clamped to 0
	h.Record(0)
	h.Record(time.Hour) // beyond top bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Hour {
		t.Errorf("max = %v", h.Max())
	}
	if h.Percentile(100) < time.Minute {
		t.Errorf("p100 = %v, should land in top bucket", h.Percentile(100))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("reset did not clear histogram")
	}
	if h.Snapshot() == "" {
		t.Error("snapshot should be non-empty")
	}
}

func TestDurationSum(t *testing.T) {
	var s DurationSum
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := s.Load(); got != 800*time.Millisecond {
		t.Fatalf("DurationSum = %v, want 800ms", got)
	}
	s.AddSince(time.Now().Add(-time.Hour))
	if got := s.Load(); got < time.Hour {
		t.Fatalf("AddSince accumulated %v, want >= 1h", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(250*time.Millisecond, time.Second); got != 25 {
		t.Fatalf("Pct = %v, want 25", got)
	}
	if got := Pct(time.Second, 0); got != 0 {
		t.Fatalf("Pct with zero whole = %v, want 0", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(10)
	if c.Load() != 11 {
		t.Errorf("counter = %d", c.Load())
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Append(time.Second, 100)
	ts.Append(2*time.Second, 200)
	s := ts.Samples()
	if len(s) != 2 || s[0].Value != 100 || s[1].At != 2*time.Second {
		t.Errorf("samples = %+v", s)
	}
	// Returned slice is a copy.
	s[0].Value = -1
	if ts.Samples()[0].Value != 100 {
		t.Error("Samples() must return a copy")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("work", "load", "sched")
	b.Add("work", 3*time.Second)
	b.Add("load", time.Second)
	b.Timed("sched", func() { time.Sleep(time.Millisecond) })
	if b.Get("work") != 3*time.Second {
		t.Errorf("work = %v", b.Get("work"))
	}
	total := b.Total()
	if total < 4*time.Second {
		t.Errorf("total = %v", total)
	}
	shares := b.Shares()
	if len(shares) != 3 || shares[0].Name != "work" {
		t.Fatalf("shares = %+v", shares)
	}
	var sum float64
	for _, s := range shares {
		sum += s.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %f", sum)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	b := NewBreakdown("a")
	if b.Total() != 0 {
		t.Error("empty breakdown total != 0")
	}
	if s := b.Shares(); s[0].Share != 0 {
		t.Error("empty breakdown share != 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	k := SortedKeys(m)
	if len(k) != 3 || k[0] != "a" || k[2] != "c" {
		t.Errorf("keys = %v", k)
	}
}
