// Package mvcc is the multi-version snapshot subsystem layered on the
// storage engine: it decides how long the newest-first version chains that
// forward processing retains (Larson et al.'s version-chain design) are
// kept, and hands out consistent epoch-stamped snapshot views over them.
//
// The division of labor with its neighbors is deliberate:
//
//   - internal/engine stores chains and provides the truncation primitive
//     but has no retention policy;
//   - internal/txn installs one new version per write at commit, drawing
//     from the per-worker pools defined here (the Cicada/MICA per-thread
//     allocation idiom) so retention costs no allocation on the hot path;
//   - this package garbage-collects history as the persistent-epoch
//     frontier of group commit advances, and pins epochs against collection
//     while snapshot views read them.
//
// The visibility rule is the engine's: a view pinned at epoch E reads, per
// row, the newest version with BeginTS <= MakeTS(E, maxSeq). E is always a
// *released* epoch — closed by the epoch clock (no transaction can still
// commit into it) and covered by the persistent epoch when logging is
// active — so the cut is immutable: re-reading the same view always yields
// the same data, even under full write load. Snapshot reads never latch
// rows and never join OCC validation, so they cannot abort writers.
package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
	"pacman/internal/metrics"
)

// ErrReclaimed rejects a view request at an epoch the garbage collector has
// already truncated history below; the caller can only retry at a newer
// epoch.
var ErrReclaimed = errors.New("mvcc: snapshot epoch already reclaimed")

// ErrFutureEpoch rejects a view request at an epoch that is not yet
// released: either still open for commits or not yet covered by the
// persistent epoch, so a cut there could still change (or vanish in a
// crash).
var ErrFutureEpoch = errors.New("mvcc: snapshot epoch not yet released")

// Config wires a Manager to the epoch frontiers its owner tracks.
type Config struct {
	// SnapshotEpoch returns the newest epoch holding a consistent cut:
	// safe (every worker has moved past it) AND closed (the epoch clock
	// has advanced beyond it, so no commit can still land inside it).
	// Typically txn.Manager.SnapshotEpoch.
	SnapshotEpoch func() uint32
	// PersistedEpoch returns the group-commit durability frontier
	// (wal.LogSet.PersistedEpoch). Views pin at released epochs —
	// min(SnapshotEpoch, PersistedEpoch) — and garbage collection advances
	// with the same minimum, per the frontier rule below. Nil means no
	// logging: the snapshot epoch alone bounds views and collection.
	PersistedEpoch func() uint32
	// Interval is the periodic garbage-collection cadence. Collection is
	// primarily kicked by persistent-epoch advances (wal
	// Config.OnPepochAdvance -> Manager.Kick); the ticker exists to sweep
	// rows whose latch was contended during a kicked pass and to advance
	// collection when logging is off. Zero disables the ticker (passes
	// then run only on Kick).
	Interval time.Duration
}

// Stats is a point-in-time observability snapshot of the subsystem,
// surfaced in bench JSON and pacman-analyze output.
type Stats struct {
	// Reclaimed counts versions pruned since the manager started.
	Reclaimed int64
	// Passes counts garbage-collection passes.
	Passes int64
	// MaxChain is the longest surviving version chain observed during the
	// most recent pass (0 until a pass has run).
	MaxChain int64
	// Floor is the epoch frontier of the most recent pass: history
	// strictly below it is gone.
	Floor uint32
	// Views is the number of currently pinned snapshot views.
	Views int
}

// Manager owns retention for one database: it registers snapshot views,
// computes the collection floor as
//
//	floor = min(SnapshotEpoch, PersistedEpoch, oldest pinned view)
//
// and truncates every row's chain below the newest version visible at that
// floor. The persistent-epoch term is what keeps the subsystem honest with
// recovery: a version at an epoch group commit has not yet released could
// still be the one a crash rolls the database back to, so it must outlive
// the pepoch frontier — and conversely, once the frontier passes, REDO-only
// recovery can never need it again (recovery replays the durable log
// forward; it never consults in-memory history).
type Manager struct {
	db  *engine.Database
	cfg Config

	mu    sync.Mutex
	views map[*View]struct{}
	// floor ratchets up with each pass; view requests below it fail with
	// ErrReclaimed.
	floor uint32

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	reclaimed metrics.Counter
	passes    metrics.Counter
	maxChain  atomic.Int64
	lastFloor atomic.Uint32
}

// NewManager creates a retention manager over db. Call Start to run the
// collector; a manager that is never started still serves views (nothing is
// ever reclaimed).
func NewManager(db *engine.Database, cfg Config) *Manager {
	return &Manager{
		db:    db,
		cfg:   cfg,
		views: make(map[*View]struct{}),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the collector goroutine.
func (m *Manager) Start() {
	go m.loop()
}

// Stop terminates the collector and waits for it to exit. Idempotent.
func (m *Manager) Stop() {
	select {
	case <-m.stop:
		return // already stopped
	default:
	}
	close(m.stop)
	<-m.done
}

// Kick requests an asynchronous collection pass; the wal pepoch thread
// calls it on every persistent-epoch advance. Never blocks.
func (m *Manager) Kick() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

func (m *Manager) loop() {
	defer close(m.done)
	var tick <-chan time.Time
	if m.cfg.Interval > 0 {
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-m.stop:
			return
		case <-m.kick:
		case <-tick:
		}
		m.Collect()
	}
}

// frontier returns the newest released epoch: the youngest cut that is
// consistent, immutable, and (with logging active) durable.
func (m *Manager) frontier() uint32 {
	f := m.cfg.SnapshotEpoch()
	if m.cfg.PersistedEpoch != nil {
		if pe := m.cfg.PersistedEpoch(); pe < f {
			f = pe
		}
	}
	return f
}

// Acquire pins a snapshot view at the newest released epoch and returns it.
// The view's epoch cannot be reclaimed until the view is closed.
func (m *Manager) Acquire() *View {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.frontier()
	if e < m.floor {
		// Cannot happen with a monotone frontier (the floor is a past
		// minimum over it), but never hand out a reclaimed cut.
		e = m.floor
	}
	return m.register(e)
}

// AcquireFresh pins a snapshot view at the newest *consistent* epoch
// (SnapshotEpoch), without waiting for group commit to cover it. The
// checkpoint daemon uses it: a checkpoint is its own durability, and
// recovery already resumes past a checkpoint whose snapshot exceeds a
// lagging pepoch — clamping checkpoints to the released frontier would
// only shrink their log-truncation coverage. The collection floor is
// unaffected (it never passes the persistent epoch, pinned views or not).
func (m *Manager) AcquireFresh() *View {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.cfg.SnapshotEpoch()
	if e < m.floor {
		e = m.floor
	}
	return m.register(e)
}

// AcquireAt pins a snapshot view at a specific epoch. It fails with
// ErrReclaimed below the collection floor and ErrFutureEpoch above the
// released frontier.
func (m *Manager) AcquireAt(epoch uint32) (*View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch < m.floor {
		return nil, fmt.Errorf("%w: epoch %d < floor %d", ErrReclaimed, epoch, m.floor)
	}
	if f := m.frontier(); epoch > f {
		return nil, fmt.Errorf("%w: epoch %d > released frontier %d", ErrFutureEpoch, epoch, f)
	}
	return m.register(epoch), nil
}

// register must run under mu.
func (m *Manager) register(epoch uint32) *View {
	v := &View{m: m, epoch: epoch, ts: engine.MakeTS(epoch, ^uint32(0))}
	m.views[v] = struct{}{}
	return v
}

func (m *Manager) release(v *View) {
	m.mu.Lock()
	delete(m.views, v)
	m.mu.Unlock()
}

// Collect runs one synchronous collection pass: compute the floor, then
// truncate every row's chain below the newest version visible there. Rows
// whose latch is contended are skipped — the next pass catches them — so
// collection never stalls behind a committing writer.
func (m *Manager) Collect() {
	m.mu.Lock()
	floor := m.frontier()
	for v := range m.views {
		if v.epoch < floor {
			floor = v.epoch
		}
	}
	if floor > m.floor {
		m.floor = floor
	} else {
		// Re-sweep at the established floor: no new history is released,
		// but latch-contended rows from earlier passes may still carry
		// reclaimable tails.
		floor = m.floor
	}
	m.mu.Unlock()

	floorTS := engine.MakeTS(floor, ^uint32(0))
	var pruned, longest int64
	for _, t := range m.db.Tables() {
		t.ScanSlots(0, t.NumSlots(), func(r *engine.Row) {
			if !r.TryLock() {
				return
			}
			kept, cut := r.TruncateVersions(floorTS)
			r.Unlock()
			pruned += int64(cut)
			if int64(kept) > longest {
				longest = int64(kept)
			}
		})
	}
	m.reclaimed.Add(pruned)
	m.passes.Inc()
	m.maxChain.Store(longest)
	m.lastFloor.Store(floor)
}

// Floor returns the current collection floor (the oldest epoch any new view
// may pin).
func (m *Manager) Floor() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.floor
}

// Stats reports the subsystem's observability counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	nviews := len(m.views)
	m.mu.Unlock()
	return Stats{
		Reclaimed: m.reclaimed.Load(),
		Passes:    m.passes.Load(),
		MaxChain:  m.maxChain.Load(),
		Floor:     m.lastFloor.Load(),
		Views:     nviews,
	}
}
