package mvcc_test

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pacman/internal/engine"
	"pacman/internal/mvcc"
	"pacman/internal/tuple"
)

func newTable(t *testing.T) (*engine.Database, *engine.Table) {
	t.Helper()
	db := engine.NewDatabase()
	tab := db.MustAddTable(tuple.MustSchema("T",
		tuple.Col("k", tuple.KindInt), tuple.Col("v", tuple.KindInt)))
	return db, tab
}

func tupOf(n int64) tuple.Tuple { return tuple.Tuple{tuple.I(n), tuple.I(n)} }

// install writes (key -> val) at the given epoch, retained.
func install(tab *engine.Table, key uint64, epoch uint32, val int64) {
	r, _ := tab.GetOrCreateRow(key)
	r.Lock()
	r.Install(engine.MakeTS(epoch, 1), tupOf(val), false, true)
	r.Unlock()
}

// frontiers is a controllable epoch source pair.
type frontiers struct{ snap, pers atomic.Uint32 }

func (f *frontiers) config() mvcc.Config {
	return mvcc.Config{
		SnapshotEpoch:  f.snap.Load,
		PersistedEpoch: f.pers.Load,
	}
}

func TestViewVisibilityAndStaleness(t *testing.T) {
	db, tab := newTable(t)
	for e := uint32(1); e <= 5; e++ {
		install(tab, 1, e, int64(e)*10)
	}
	install(tab, 2, 4, 999) // inserted at epoch 4

	var f frontiers
	f.snap.Store(3)
	f.pers.Store(2)
	m := mvcc.NewManager(db, f.config())

	v := m.Acquire() // released frontier = min(3, 2) = 2
	defer v.Close()
	if v.Epoch() != 2 {
		t.Fatalf("view epoch = %d, want 2", v.Epoch())
	}
	if d := v.Get(tab, 1); d[1].Int() != 20 {
		t.Fatalf("Get at epoch 2 = %v", d)
	}
	if d := v.Get(tab, 2); d != nil {
		t.Fatalf("row inserted after the cut visible: %v", d)
	}
	var keys []uint64
	v.Scan(tab, 0, ^uint64(0), func(k uint64, _ tuple.Tuple) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("scan keys = %v", keys)
	}
	if s := v.Staleness(7); s != 5 {
		t.Fatalf("staleness = %d", s)
	}
	if s := v.Staleness(1); s != 0 {
		t.Fatalf("staleness below cut = %d", s)
	}

	// AcquireFresh ignores the persisted clamp.
	fv := m.AcquireFresh()
	defer fv.Close()
	if fv.Epoch() != 3 {
		t.Fatalf("fresh view epoch = %d, want 3", fv.Epoch())
	}
}

func TestAcquireAtBounds(t *testing.T) {
	db, tab := newTable(t)
	install(tab, 1, 1, 1)
	var f frontiers
	f.snap.Store(5)
	f.pers.Store(5)
	m := mvcc.NewManager(db, f.config())

	if _, err := m.AcquireAt(6); !errors.Is(err, mvcc.ErrFutureEpoch) {
		t.Fatalf("future epoch err = %v", err)
	}
	v, err := m.AcquireAt(3)
	if err != nil {
		t.Fatal(err)
	}
	v.Close()

	// Advance the frontier and collect: the floor passes 3.
	f.snap.Store(9)
	f.pers.Store(9)
	m.Collect()
	if _, err := m.AcquireAt(3); !errors.Is(err, mvcc.ErrReclaimed) {
		t.Fatalf("reclaimed epoch err = %v", err)
	}
	if m.Floor() != 9 {
		t.Fatalf("floor = %d", m.Floor())
	}
}

func TestCollectTruncatesAndPinsHold(t *testing.T) {
	db, tab := newTable(t)
	for e := uint32(1); e <= 10; e++ {
		install(tab, 1, e, int64(e))
	}
	r, _ := tab.GetRow(1)
	if n := r.VersionCount(); n != 10 {
		t.Fatalf("chain = %d", n)
	}

	var f frontiers
	f.snap.Store(10)
	f.pers.Store(10)
	m := mvcc.NewManager(db, f.config())

	// A view pinned at epoch 3 holds the floor there.
	pinned, err := m.AcquireAt(3)
	if err != nil {
		t.Fatal(err)
	}
	m.Collect()
	if d := pinned.Get(tab, 1); d[1].Int() != 3 {
		t.Fatalf("pinned view read = %v", d)
	}
	st := m.Stats()
	if st.Floor != 3 {
		t.Fatalf("floor with pin = %d", st.Floor)
	}
	if st.Reclaimed != 2 { // versions at epochs 1 and 2
		t.Fatalf("reclaimed with pin = %d", st.Reclaimed)
	}

	// Releasing the pin lets collection pass to the frontier.
	pinned.Close()
	m.Collect()
	st = m.Stats()
	if st.Floor != 10 {
		t.Fatalf("floor = %d", st.Floor)
	}
	if n := r.VersionCount(); n != 1 {
		t.Fatalf("chain after full collect = %d", n)
	}
	if st.Reclaimed != 9 || st.MaxChain != 1 || st.Passes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The cut at the frontier still reads correctly.
	v := m.Acquire()
	defer v.Close()
	if d := v.Get(tab, 1); d[1].Int() != 10 {
		t.Fatalf("read after collect = %v", d)
	}
}

// TestCollectSkipsLatchedRows: a row whose latch is held (a committing
// writer) is skipped, not waited on, and a later pass reclaims it.
func TestCollectSkipsLatchedRows(t *testing.T) {
	db, tab := newTable(t)
	install(tab, 1, 1, 1)
	install(tab, 1, 2, 2)
	var f frontiers
	f.snap.Store(5)
	f.pers.Store(5)
	m := mvcc.NewManager(db, f.config())

	r, _ := tab.GetRow(1)
	r.Lock()
	m.Collect() // must not deadlock
	r.Unlock()
	if n := r.VersionCount(); n != 2 {
		t.Fatalf("latched row was truncated: chain = %d", n)
	}
	m.Collect()
	if n := r.VersionCount(); n != 1 {
		t.Fatalf("re-sweep missed the row: chain = %d", n)
	}
}

// TestConcurrentWritersReadersCollector races pooled installs, snapshot
// reads, and the collector — the whole subsystem under -race.
func TestConcurrentWritersReadersCollector(t *testing.T) {
	db, tab := newTable(t)
	const keys = 16
	for k := uint64(0); k < keys; k++ {
		install(tab, k, 1, 0)
	}
	var epoch atomic.Uint32
	epoch.Store(2)
	var f frontiers
	f.snap.Store(1)
	f.pers.Store(1)
	m := mvcc.NewManager(db, f.config())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var installs atomic.Int64
	// Writers: pooled installs at the open epoch.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pool := mvcc.NewPool()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(i) % keys
				r, _ := tab.GetRow(k)
				r.Lock()
				ts := engine.MakeTS(epoch.Load(), uint32(i&0xffff)+1)
				r.InstallPrepared(pool.Prepare(ts, tupOf(i), false), true)
				r.Unlock()
				installs.Add(1)
			}
		}(g)
	}
	// Readers: pinned views over released epochs.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := m.Acquire()
				v.Scan(tab, 0, ^uint64(0), func(_ uint64, d tuple.Tuple) bool {
					_ = d[1].Int()
					return true
				})
				v.Close()
			}
		}()
	}
	// Clock: advance the open epoch and the released frontier behind it,
	// pacing on writer progress so each epoch actually accumulates history.
	for e := uint32(2); e < 60; e++ {
		target := installs.Load() + 50
		for installs.Load() < target {
			runtime.Gosched()
		}
		epoch.Store(e + 1)
		f.snap.Store(e)
		f.pers.Store(e - 1)
		m.Collect()
	}
	close(stop)
	wg.Wait()

	// One final pass on the quiesced table: chains must be fully bounded.
	f.snap.Store(61)
	f.pers.Store(61)
	m.Collect()
	st := m.Stats()
	if st.MaxChain != 1 {
		t.Fatalf("max chain after final collect = %d", st.MaxChain)
	}
	if st.Reclaimed == 0 {
		t.Fatal("collector reclaimed nothing")
	}
}

func TestPoolChunking(t *testing.T) {
	p := mvcc.NewPool()
	seen := map[*engine.Version]bool{}
	for i := 0; i < 600; i++ {
		v := p.Prepare(engine.TS(i), tupOf(int64(i)), i%2 == 0)
		if seen[v] {
			t.Fatalf("pool handed out version %d twice", i)
		}
		seen[v] = true
		if v.BeginTS != engine.TS(i) || v.Data[0].Int() != int64(i) || v.Deleted != (i%2 == 0) {
			t.Fatalf("version %d fields wrong: %+v", i, v)
		}
		if v.Next() != nil {
			t.Fatalf("fresh pooled version %d carries a link", i)
		}
	}
	// Nil pool degrades to heap allocation.
	var nilPool *mvcc.Pool
	v := nilPool.Prepare(7, tupOf(7), false)
	if v == nil || v.BeginTS != 7 {
		t.Fatalf("nil pool Prepare = %+v", v)
	}
}

// TestManagerStartStop: lifecycle sanity — kicks and ticker passes race
// with acquire/close under -race.
func TestManagerStartStop(t *testing.T) {
	db, tab := newTable(t)
	install(tab, 1, 1, 1)
	var f frontiers
	f.snap.Store(1)
	f.pers.Store(1)
	cfg := f.config()
	m := mvcc.NewManager(db, cfg)
	m.Start()
	for i := 0; i < 100; i++ {
		f.snap.Store(uint32(i + 1))
		f.pers.Store(uint32(i + 1))
		m.Kick()
		v := m.Acquire()
		v.Close()
	}
	m.Stop()
	m.Stop() // idempotent
}
