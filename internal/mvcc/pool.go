package mvcc

import (
	"pacman/internal/engine"
	"pacman/internal/tuple"
)

// poolChunk is how many versions one pool slab holds. 256 amortizes the
// slab allocation to well under 1/100 of an allocation per installed
// version while keeping a retired slab (freed as one object once every
// version in it is unreachable) small enough not to pin history.
const poolChunk = 256

// Pool is a per-worker version allocator: the Cicada/MICA per-thread
// memory-pool idiom. Each worker owns one, so Prepare needs no
// synchronization; versions are carved out of chunked slabs, making
// multi-version retention effectively allocation-free on the commit hot
// path (one slab allocation per poolChunk versions).
//
// Versions are never recycled: a truncated chain tail simply becomes
// unreachable and the runtime frees its slab when the last version in it
// does. Recycling would require proving no concurrent lock-free reader can
// still hold the pointer — exactly the hazard-tracking machinery the
// epoch-pinned view registry exists to avoid.
type Pool struct {
	chunk []engine.Version
	next  int
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Prepare returns a version initialized with (ts, data, deleted), ready for
// Row.InstallPrepared. A nil pool degrades to a plain heap allocation, so
// paths without a worker pool (tests, recovery) need no special casing.
func (p *Pool) Prepare(ts engine.TS, data tuple.Tuple, deleted bool) *engine.Version {
	if p == nil {
		return &engine.Version{BeginTS: ts, Deleted: deleted, Data: data}
	}
	if p.next == len(p.chunk) {
		p.chunk = make([]engine.Version, poolChunk)
		p.next = 0
	}
	v := &p.chunk[p.next]
	p.next++
	v.BeginTS = ts
	v.Deleted = deleted
	v.Data = data
	return v
}
