package mvcc

import (
	"sync/atomic"

	"pacman/internal/engine"
	"pacman/internal/tuple"
)

// View is a pinned consistent snapshot: all reads through it observe the
// database exactly as of the end of its epoch. Reads are lock-free and
// validation-free — a view never aborts a writer and a writer never blocks
// a view. Views are safe for concurrent use by multiple goroutines; Close
// unpins the epoch (reads after Close are not checked — close when done).
type View struct {
	m      *Manager
	epoch  uint32
	ts     engine.TS
	closed atomic.Bool
}

// Epoch returns the released epoch the view is pinned at.
func (v *View) Epoch() uint32 { return v.epoch }

// TS returns the inclusive visibility timestamp of the cut:
// MakeTS(epoch, maxSeq).
func (v *View) TS() engine.TS { return v.ts }

// Staleness reports how many epochs the view trails the given current
// epoch (0 when current has not moved past the cut).
func (v *View) Staleness(current uint32) uint32 {
	if current <= v.epoch {
		return 0
	}
	return current - v.epoch
}

// Get returns the tuple of key visible at the cut, or nil if the key was
// absent (or deleted) then.
func (v *View) Get(t *engine.Table, key uint64) tuple.Tuple {
	r, ok := t.GetRow(key)
	if !ok {
		return nil
	}
	return r.ReadAt(v.ts)
}

// Scan iterates, in key order, every row of t with key in [lo, hi) that was
// visible at the cut, until fn returns false. Rows inserted after the cut
// are skipped (their oldest version postdates it); rows deleted after the
// cut still yield their historic tuple.
func (v *View) Scan(t *engine.Table, lo, hi uint64, fn func(key uint64, data tuple.Tuple) bool) {
	t.ScanIndex(lo, hi, func(r *engine.Row) bool {
		d := r.ReadAt(v.ts)
		if d == nil {
			return true
		}
		return fn(r.Key, d)
	})
}

// Close unpins the view's epoch, allowing garbage collection past it.
// Idempotent.
func (v *View) Close() {
	if v.closed.CompareAndSwap(false, true) {
		v.m.release(v)
	}
}
