package proc

import (
	"encoding/binary"
	"fmt"

	"pacman/internal/tuple"
)

// Argument encoding: the payload of a command log entry. Format:
// 2-byte param count, then per parameter a 2-byte value count followed by
// the values in the tuple codec.

// EncodedArgsSize returns the number of bytes AppendArgs writes.
func EncodedArgsSize(args Args) int {
	n := 2
	for _, lst := range args {
		n += 2
		for _, v := range lst {
			n += v.EncodedSize()
		}
	}
	return n
}

// AppendArgs appends the encoding of args to buf.
func AppendArgs(buf []byte, args Args) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(args)))
	for _, lst := range args {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lst)))
		for _, v := range lst {
			buf = tuple.AppendValue(buf, v)
		}
	}
	return buf
}

// DecodeArgs decodes one Args from b, returning the bytes consumed.
func DecodeArgs(b []byte) (Args, int, error) {
	if len(b) < 2 {
		return nil, 0, tuple.ErrCorrupt
	}
	np := int(binary.LittleEndian.Uint16(b))
	off := 2
	args := make(Args, np)
	for p := 0; p < np; p++ {
		if len(b[off:]) < 2 {
			return nil, 0, tuple.ErrCorrupt
		}
		nv := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		lst := make([]tuple.Value, nv)
		for i := 0; i < nv; i++ {
			v, n, err := tuple.DecodeValue(b[off:])
			if err != nil {
				return nil, 0, err
			}
			lst[i] = v
			off += n
		}
		args[p] = lst
	}
	return args, off, nil
}

// FormatOp renders one operation for dependency-graph dumps.
func (c *Compiled) FormatOp(id int) string {
	op := c.ops[id]
	return fmt.Sprintf("op%d:%s(%s)", op.ID, op.Kind, op.Table)
}
