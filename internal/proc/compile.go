package proc

import (
	"fmt"
	"sync/atomic"

	"pacman/internal/engine"
	"pacman/internal/tuple"
)

// OpKind classifies a database operation.
type OpKind uint8

// Operation kinds. Write, Insert, and Delete are modifications; the paper
// treats insert and delete as special writes for dependency purposes.
const (
	OpRead OpKind = iota
	OpWrite
	OpInsert
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "op?"
}

// IsModification reports whether the operation writes the database.
func (k OpKind) IsModification() bool { return k != OpRead }

// OpMeta is the compile-time metadata of one database operation, consumed by
// the static analysis.
type OpMeta struct {
	ID    int
	Kind  OpKind
	Table string
	// TableID is the catalog ID of the accessed table.
	TableID int
	// FlowDeps lists the op IDs this operation flow-depends on: reads whose
	// results feed this op's key, value, or any enclosing guard condition
	// (define-use and control relations, Section 4.1.1), resolved
	// transitively through local assignments.
	FlowDeps []int
	// Loops lists the enclosing loop IDs, outermost first.
	Loops []int
}

// regInfo describes one register (local variable).
type regInfo struct {
	name  string
	loops []int // enclosing loops at the definition site, outermost first
	// definedByRead is the op ID of the read defining this register, or -1.
	definedByRead int
}

type loopInfo struct {
	listParam int // parameter index the loop iterates
}

// opSet is a small set of op IDs.
type opSet map[int]struct{}

func (s opSet) add(ids ...int) {
	for _, id := range ids {
		s[id] = struct{}{}
	}
}

func (s opSet) union(o opSet) {
	for id := range o {
		s[id] = struct{}{}
	}
}

func (s opSet) sorted() []int {
	out := make([]int, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Compiled is a procedure bound to a catalog: names resolved, registers
// allocated, operations numbered, and dependency metadata extracted.
type Compiled struct {
	src  *Procedure
	id   int
	name string

	params   []ParamDef
	paramIdx map[string]int

	regs     []regInfo
	regIdx   map[string]int
	loops    []loopInfo
	body     []cstmt
	ops      []OpMeta
	maxDepth int

	// staticLayout caches the register-file layout of loop-free procedures:
	// with no loops the layout is invocation-independent, so the hot
	// execute path reuses one immutable Layout instead of recomputing (and
	// reallocating) it per transaction. Lazily set by NewLayout.
	staticLayout atomic.Pointer[Layout]
}

// Name returns the procedure name.
func (c *Compiled) Name() string { return c.name }

// ID returns the registry-assigned procedure ID.
func (c *Compiled) ID() int { return c.id }

// Source returns the source procedure.
func (c *Compiled) Source() *Procedure { return c.src }

// NumOps returns the number of database operations.
func (c *Compiled) NumOps() int { return len(c.ops) }

// Op returns metadata for operation id.
func (c *Compiled) Op(id int) OpMeta { return c.ops[id] }

// Ops returns metadata for all operations in program order.
func (c *Compiled) Ops() []OpMeta { return c.ops }

// NumParams returns the parameter count.
func (c *Compiled) NumParams() int { return len(c.params) }

// ParamIndex returns the index of the named parameter, or -1.
func (c *Compiled) ParamIndex(name string) int {
	if i, ok := c.paramIdx[name]; ok {
		return i
	}
	return -1
}

// Compiled statement forms. Tables are resolved to *engine.Table, columns to
// indexes, variables to register IDs, parameters to positions.

type cstmt interface{ isCStmt() }

type cRead struct {
	op    int
	dst   int // register
	table *engine.Table
	key   cexpr
	col   int
}

type cset struct {
	col int
	val cexpr
}

type cWrite struct {
	op    int
	table *engine.Table
	key   cexpr
	sets  []cset
}

type cInsert struct {
	op    int
	table *engine.Table
	key   cexpr
	vals  []cexpr
}

type cDelete struct {
	op    int
	table *engine.Table
	key   cexpr
}

type cAssign struct {
	dst int
	val cexpr
}

type cIf struct {
	cond      cexpr
	then, els []cstmt
	// scope summarizes the subtree so filtered walks can skip it wholesale.
	scope subtreeScope
}

type cForEach struct {
	loop   int
	list   int // parameter index
	idxReg int // -1 if unused
	valReg int
	body   []cstmt
	scope  subtreeScope
}

// subtreeScope summarizes an If/ForEach subtree for the walker's skipping
// optimization: a filtered walk may skip the whole subtree when the filter
// selects none of its operations AND no register defined inside is used
// outside (escapes == false). Skipping then cannot change any value or
// operation the walk is responsible for.
type subtreeScope struct {
	ops     []int
	escapes bool
}

type cAbort struct{}

func (cRead) isCStmt()    {}
func (cWrite) isCStmt()   {}
func (cInsert) isCStmt()  {}
func (cDelete) isCStmt()  {}
func (cAssign) isCStmt()  {}
func (cIf) isCStmt()      {}
func (cForEach) isCStmt() {}
func (cAbort) isCStmt()   {}

// Compiled expressions.

type cexpr interface{ isCExpr() }

type ceConst struct{ v tuple.Value }
type ceParam struct{ idx int }
type ceReg struct{ reg int }
type ceBin struct {
	op   BinOp
	l, r cexpr
}
type ceNot struct{ e cexpr }

func (ceConst) isCExpr() {}
func (ceParam) isCExpr() {}
func (ceReg) isCExpr()   {}
func (ceBin) isCExpr()   {}
func (ceNot) isCExpr()   {}

// compiler carries the state of one Compile run.
type compiler struct {
	c  *Compiled
	db *engine.Database
	// regSources maps each register to the set of read ops its value
	// transitively derives from.
	regSources []opSet
	err        error
}

// Compile binds p against the catalog and extracts dependency metadata.
// The id becomes the procedure's identifier in command log records, so it
// must be stable across the logging run and recovery (the Registry assigns
// registration order).
func Compile(db *engine.Database, p *Procedure, id int) (*Compiled, error) {
	c := &Compiled{
		src:      p,
		id:       id,
		name:     p.Name,
		params:   append([]ParamDef(nil), p.Params...),
		paramIdx: make(map[string]int, len(p.Params)),
		regIdx:   make(map[string]int),
	}
	for i, pd := range p.Params {
		if pd.Name == "" {
			return nil, fmt.Errorf("proc %q: parameter %d has empty name", p.Name, i)
		}
		if _, dup := c.paramIdx[pd.Name]; dup {
			return nil, fmt.Errorf("proc %q: duplicate parameter %q", p.Name, pd.Name)
		}
		c.paramIdx[pd.Name] = i
	}
	cp := &compiler{c: c, db: db}
	c.body = cp.stmts(p.Body, nil, opSet{})
	if cp.err != nil {
		return nil, cp.err
	}
	finalizeScopes(c.body, countRegUses(c.body, len(c.regs)))
	return c, nil
}

func (cp *compiler) fail(format string, args ...any) {
	if cp.err == nil {
		cp.err = fmt.Errorf("proc %q: %s", cp.c.name, fmt.Sprintf(format, args...))
	}
}

func (cp *compiler) table(name string) *engine.Table {
	t := cp.db.Table(name)
	if t == nil {
		cp.fail("unknown table %q", name)
	}
	return t
}

func (cp *compiler) colIndex(t *engine.Table, col string) int {
	if t == nil {
		return 0
	}
	i := t.Schema().ColIndex(col)
	if i < 0 {
		cp.fail("table %q has no column %q", t.Name(), col)
	}
	return i
}

// defineReg allocates (or reuses) the register for name. The loop context of
// the first definition determines the register's iteration multiplicity.
func (cp *compiler) defineReg(name string, loops []int, byRead int) int {
	if id, ok := cp.c.regIdx[name]; ok {
		return id
	}
	id := len(cp.c.regs)
	cp.c.regIdx[name] = id
	cp.c.regs = append(cp.c.regs, regInfo{
		name:          name,
		loops:         append([]int(nil), loops...),
		definedByRead: byRead,
	})
	cp.regSources = append(cp.regSources, opSet{})
	return id
}

// expr compiles e, accumulating the read ops it depends on into sources.
func (cp *compiler) expr(e Expr, sources opSet) cexpr {
	switch e := e.(type) {
	case ConstExpr:
		return ceConst{v: e.V}
	case ParamExpr:
		idx, ok := cp.c.paramIdx[e.Name]
		if !ok {
			cp.fail("unknown parameter %q", e.Name)
			return ceConst{}
		}
		return ceParam{idx: idx}
	case VarExpr:
		id, ok := cp.c.regIdx[e.Name]
		if !ok {
			cp.fail("use of undefined variable %q", e.Name)
			return ceConst{}
		}
		sources.union(cp.regSources[id])
		return ceReg{reg: id}
	case BinExpr:
		return ceBin{op: e.Op, l: cp.expr(e.L, sources), r: cp.expr(e.R, sources)}
	case NotExpr:
		return ceNot{e: cp.expr(e.E, sources)}
	default:
		cp.fail("unknown expression type %T", e)
		return ceConst{}
	}
}

// newOp records a database operation and returns its ID.
func (cp *compiler) newOp(kind OpKind, t *engine.Table, loops []int, deps opSet) int {
	id := len(cp.c.ops)
	name, tid := "?", -1
	if t != nil {
		name, tid = t.Name(), t.ID()
	}
	cp.c.ops = append(cp.c.ops, OpMeta{
		ID:       id,
		Kind:     kind,
		Table:    name,
		TableID:  tid,
		FlowDeps: deps.sorted(),
		Loops:    append([]int(nil), loops...),
	})
	return id
}

// stmts compiles a statement list. loops is the enclosing loop stack; guard
// is the set of read ops the enclosing conditions depend on (the control
// relation).
func (cp *compiler) stmts(in []Stmt, loops []int, guard opSet) []cstmt {
	out := make([]cstmt, 0, len(in))
	for _, s := range in {
		if cp.err != nil {
			return out
		}
		switch s := s.(type) {
		case ReadStmt:
			t := cp.table(s.Table)
			deps := opSet{}
			deps.union(guard)
			key := cp.expr(s.Key, deps)
			op := cp.newOp(OpRead, t, loops, deps)
			dst := cp.defineReg(s.Dst, loops, op)
			// The destination register's sources are this read op itself
			// plus everything its key/guards derive from.
			src := opSet{}
			src.add(op)
			src.union(deps)
			cp.regSources[dst] = src
			out = append(out, cRead{op: op, dst: dst, table: t, key: key, col: cp.colIndex(t, s.Col)})
		case WriteStmt:
			t := cp.table(s.Table)
			deps := opSet{}
			deps.union(guard)
			key := cp.expr(s.Key, deps)
			sets := make([]cset, len(s.Sets))
			for i, cs := range s.Sets {
				sets[i] = cset{col: cp.colIndex(t, cs.Col), val: cp.expr(cs.Val, deps)}
			}
			op := cp.newOp(OpWrite, t, loops, deps)
			out = append(out, cWrite{op: op, table: t, key: key, sets: sets})
		case InsertStmt:
			t := cp.table(s.Table)
			deps := opSet{}
			deps.union(guard)
			key := cp.expr(s.Key, deps)
			if t != nil && len(s.Vals) != t.Schema().NumColumns() {
				cp.fail("insert into %q: %d values for %d columns", s.Table, len(s.Vals), t.Schema().NumColumns())
			}
			vals := make([]cexpr, len(s.Vals))
			for i, v := range s.Vals {
				vals[i] = cp.expr(v, deps)
			}
			op := cp.newOp(OpInsert, t, loops, deps)
			out = append(out, cInsert{op: op, table: t, key: key, vals: vals})
		case DeleteStmt:
			t := cp.table(s.Table)
			deps := opSet{}
			deps.union(guard)
			key := cp.expr(s.Key, deps)
			op := cp.newOp(OpDelete, t, loops, deps)
			out = append(out, cDelete{op: op, table: t, key: key})
		case AssignStmt:
			src := opSet{}
			src.union(guard) // value is control-dependent on enclosing guards
			val := cp.expr(s.Val, src)
			dst := cp.defineReg(s.Dst, loops, -1)
			// Accumulators: merge into existing sources rather than replace,
			// so `total = total + x` keeps earlier contributions.
			cp.regSources[dst].union(src)
			out = append(out, cAssign{dst: dst, val: val})
		case IfStmt:
			condSrc := opSet{}
			cond := cp.expr(s.Cond, condSrc)
			inner := opSet{}
			inner.union(guard)
			inner.union(condSrc)
			out = append(out, cIf{
				cond: cond,
				then: cp.stmts(s.Then, loops, inner),
				els:  cp.stmts(s.Else, loops, inner),
			})
		case ForEachStmt:
			listIdx, ok := cp.c.paramIdx[s.List]
			if !ok {
				cp.fail("loop over unknown parameter %q", s.List)
				continue
			}
			loopID := len(cp.c.loops)
			cp.c.loops = append(cp.c.loops, loopInfo{listParam: listIdx})
			innerLoops := append(append([]int(nil), loops...), loopID)
			if len(innerLoops) > cp.c.maxDepth {
				cp.c.maxDepth = len(innerLoops)
			}
			idxReg := -1
			if s.IdxVar != "" {
				idxReg = cp.defineReg(s.IdxVar, innerLoops, -1)
			}
			valReg := cp.defineReg(s.Var, innerLoops, -1)
			out = append(out, cForEach{
				loop:   loopID,
				list:   listIdx,
				idxReg: idxReg,
				valReg: valReg,
				body:   cp.stmts(s.Body, innerLoops, guard),
			})
		case AbortStmt:
			out = append(out, cAbort{})
		default:
			cp.fail("unknown statement type %T", s)
		}
	}
	return out
}

// Registry holds the compiled procedures of an application, addressable by
// name and by the dense IDs recorded in command log entries.
type Registry struct {
	byName map[string]*Compiled
	list   []*Compiled
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Compiled)}
}

// Register compiles p against db and assigns it the next procedure ID.
// Registration order must match between the logging run and recovery, since
// command log entries refer to procedures by ID.
func (r *Registry) Register(db *engine.Database, p *Procedure) (*Compiled, error) {
	if _, dup := r.byName[p.Name]; dup {
		return nil, fmt.Errorf("proc: %q already registered", p.Name)
	}
	c, err := Compile(db, p, len(r.list))
	if err != nil {
		return nil, err
	}
	r.byName[p.Name] = c
	r.list = append(r.list, c)
	return c, nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(db *engine.Database, p *Procedure) *Compiled {
	c, err := r.Register(db, p)
	if err != nil {
		panic(err)
	}
	return c
}

// ByName returns the named procedure, or nil.
func (r *Registry) ByName(name string) *Compiled { return r.byName[name] }

// ByID returns the procedure with the given ID, or nil.
func (r *Registry) ByID(id int) *Compiled {
	if id < 0 || id >= len(r.list) {
		return nil
	}
	return r.list[id]
}

// All returns the procedures in registration order.
func (r *Registry) All() []*Compiled { return append([]*Compiled(nil), r.list...) }

// Len returns the number of registered procedures.
func (r *Registry) Len() int { return len(r.list) }
