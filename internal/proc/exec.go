package proc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pacman/internal/engine"
	"pacman/internal/tuple"
)

// Args carries one invocation's parameter values: one list per parameter,
// where scalar parameters are length-one lists.
type Args [][]tuple.Value

// A builds a scalar argument.
func A(v tuple.Value) []tuple.Value { return []tuple.Value{v} }

// L builds a list argument.
func L(vs ...tuple.Value) []tuple.Value { return vs }

// ColUpdate is one resolved column assignment handed to an Executor.
type ColUpdate struct {
	Col int
	Val tuple.Value
}

// Executor is the data-access interface the interpreter runs against. The
// OLTP transaction (internal/txn) implements it with concurrency control;
// recovery replay contexts implement it with direct version installation.
// Executor is the storage interface procedure walks drive.
//
// The up and vals slices passed to Write and Insert are owned by the walk
// and recycled across statements: implementations must copy anything they
// keep (every executor in the tree installs fresh tuples, so this falls out
// naturally) and must not retain the slices past the call.
type Executor interface {
	// Read returns the current tuple for key, or nil if absent/deleted.
	Read(t *engine.Table, key uint64) (tuple.Tuple, error)
	// Write applies column updates to the row for key, creating it (with
	// NULLs in unset columns) if absent.
	Write(t *engine.Table, key uint64, up []ColUpdate) error
	// Insert stores a full new row for key.
	Insert(t *engine.Table, key uint64, vals tuple.Tuple) error
	// Delete removes the row for key (no-op if absent).
	Delete(t *engine.Table, key uint64) error
}

// ErrAborted is returned when a procedure executes an Abort statement.
var ErrAborted = errors.New("proc: transaction aborted")

// Filter selects which operation instances a piece executes. Iter is the
// composed iteration key of the enclosing loops (see IterKey).
// IncludeAnyOp powers the walker's subtree-skipping: a filtered walk skips
// an If/ForEach subtree when none of the subtree's ops are included and no
// register escapes it.
type Filter interface {
	Include(op int, iter uint64) bool
	IncludeAnyOp(ops []int) bool
}

// OpSetFilter includes every dynamic instance of a static operation set.
type OpSetFilter map[int]bool

// Include reports whether the instance's static op is in the set.
func (f OpSetFilter) Include(op int, _ uint64) bool { return f[op] }

// IncludeAnyOp reports whether any listed op is in the set.
func (f OpSetFilter) IncludeAnyOp(ops []int) bool {
	for _, o := range ops {
		if f[o] {
			return true
		}
	}
	return false
}

// InstFilter includes exact (op, iteration) instances, keyed by OpInstance.
type InstFilter map[uint64]struct{}

// Include reports whether the exact instance is in the set.
func (f InstFilter) Include(op int, iter uint64) bool {
	_, ok := f[OpInstance(op, iter)]
	return ok
}

// IncludeAnyOp reports whether any instance of any listed op is included.
// Both sets are small (a dynamic group and one subtree).
func (f InstFilter) IncludeAnyOp(ops []int) bool {
	for inst := range f {
		op := int(inst >> 48)
		for _, o := range ops {
			if o == op {
				return true
			}
		}
	}
	return false
}

// InstSliceFilter is an allocation-light instance filter: an unsorted slice
// of OpInstance values plus a bitmask of the static ops present. Dynamic
// groups are tiny (a handful of instances), so linear scans beat hashing.
type InstSliceFilter struct {
	Insts  []uint64
	OpMask uint64 // bit per op ID < 64; ops >= 64 set bit 63 conservatively
}

// AddInst records one (op, iteration) instance.
func (f *InstSliceFilter) AddInst(op int, iter uint64) {
	f.Insts = append(f.Insts, OpInstance(op, iter))
	b := uint(op)
	if b > 63 {
		b = 63
	}
	f.OpMask |= 1 << b
}

// Include reports whether the exact instance is present.
func (f *InstSliceFilter) Include(op int, iter uint64) bool {
	b := uint(op)
	if b > 63 {
		b = 63
	}
	if f.OpMask&(1<<b) == 0 {
		return false
	}
	inst := OpInstance(op, iter)
	for _, i := range f.Insts {
		if i == inst {
			return true
		}
	}
	return false
}

// IncludeAnyOp reports whether any instance of any listed op is present.
func (f *InstSliceFilter) IncludeAnyOp(ops []int) bool {
	for _, o := range ops {
		b := uint(o)
		if b > 63 {
			b = 63
		}
		if f.OpMask&(1<<b) == 0 {
			continue
		}
		for _, i := range f.Insts {
			if int(i>>48) == o {
				return true
			}
		}
	}
	return false
}

// OpInstance packs a static op ID and an iteration key into one comparable
// value. Iteration keys use 16 bits per loop level (up to 3 levels).
func OpInstance(op int, iter uint64) uint64 {
	return uint64(op)<<48 | iter&(1<<48-1)
}

// Access is one database access discovered by a dry walk: the dynamic
// analysis' unit of conflict checking.
type Access struct {
	Op    int
	Iter  uint64
	Table *engine.Table
	Key   uint64
	Write bool
}

// Layout fixes, for one invocation, where every (register, iteration)
// lives in the flat register file. Multiplicities depend only on the
// argument list lengths, so all pieces of a transaction share one layout.
type Layout struct {
	c      *Compiled
	trips  []int   // per loop
	base   []int   // per register
	stride [][]int // per register, per enclosing loop
	size   int
}

// NewLayout computes the register-file layout for one invocation. For
// loop-free procedures the layout does not depend on the arguments, so one
// immutable Layout is computed on first use and shared by every later
// invocation (layouts are never mutated after construction).
func (c *Compiled) NewLayout(args Args) (*Layout, error) {
	if len(args) != len(c.params) {
		return nil, fmt.Errorf("proc %q: got %d args, want %d", c.name, len(args), len(c.params))
	}
	if len(c.loops) == 0 {
		if l := c.staticLayout.Load(); l != nil {
			return l, nil
		}
	}
	l := &Layout{
		c:      c,
		trips:  make([]int, len(c.loops)),
		base:   make([]int, len(c.regs)),
		stride: make([][]int, len(c.regs)),
	}
	for i, lp := range c.loops {
		l.trips[i] = len(args[lp.listParam])
	}
	off := 0
	for r, ri := range c.regs {
		l.base[r] = off
		n := len(ri.loops)
		strides := make([]int, n)
		mult := 1
		for j := n - 1; j >= 0; j-- {
			strides[j] = mult
			mult *= max(l.trips[ri.loops[j]], 1)
		}
		l.stride[r] = strides
		off += max(mult, 1)
	}
	l.size = off
	if len(c.loops) == 0 {
		// Racing first invocations compute identical layouts; either wins.
		c.staticLayout.CompareAndSwap(nil, l)
	}
	return l, nil
}

// Size returns the number of register-file slots.
func (l *Layout) size_() int { return l.size }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Instance is one transaction's replay state: its arguments, layout, and
// the shared register file through which values read by one piece flow to
// flow-dependent later pieces.
//
// Shared slots are atomic pointers: a piece's walk may touch slots it does
// not semantically need (assignments and skipped reads are structural), and
// those touches can overlap with the owning piece writing the slot. Slots a
// walk actually *uses* — in a key, guard, or value expression of one of its
// own operations — are always ordered behind their writer by the dependency
// graph, so a lazy atomic load returns the correct value; slots it does not
// use may load as unset, which is harmless.
type Instance struct {
	C      *Compiled
	Args   Args
	layout *Layout
	shared []atomic.Pointer[tuple.Value]
}

// NewInstance prepares a replay instance.
func (c *Compiled) NewInstance(args Args) (*Instance, error) {
	l, err := c.NewLayout(args)
	if err != nil {
		return nil, err
	}
	return &Instance{C: c, Args: args, layout: l,
		shared: make([]atomic.Pointer[tuple.Value], l.size)}, nil
}

// frame is the per-walk evaluation state.
type frame struct {
	c      *Compiled
	args   Args
	layout *Layout
	iters  []int // current iteration per loop
	priv   []tuple.Value
	// written marks private slots assigned during this walk; unwritten
	// slots fall back to the instance's shared file. Nil in plain
	// execution mode (no shared file, priv is authoritative).
	written []bool
	poison  []bool // per private slot: value unknown during a dry walk

	shared []atomic.Pointer[tuple.Value] // nil in plain execution mode
	filter Filter                        // nil = execute everything

	ex  Executor // nil in dry mode
	dry bool

	accesses []Access
	opaque   bool // dry walk hit a guard or key it could not evaluate

	// colUps and valsBuf are per-statement scratch for the slices handed to
	// Executor.Write/Insert (which must not retain them — see Executor),
	// recycled across statements and walks.
	colUps  []ColUpdate
	valsBuf tuple.Tuple

	err     error
	aborted bool
}

func (fr *frame) slot(reg int) int {
	ri := &fr.c.regs[reg]
	off := fr.layout.base[reg]
	st := fr.layout.stride[reg]
	for j, lp := range ri.loops {
		off += fr.iters[lp] * st[j]
	}
	return off
}

// iterKey composes the current iteration indexes of the given loops into a
// 16-bit-per-level key.
func (fr *frame) iterKey(loops []int) uint64 {
	var k uint64
	for _, lp := range loops {
		k = k<<16 | uint64(fr.iters[lp])&0xFFFF
	}
	return k
}

// eval evaluates e; clean is false when the result depends on a poisoned
// register (only possible during dry walks).
func (fr *frame) eval(e cexpr) (tuple.Value, bool) {
	switch e := e.(type) {
	case ceConst:
		return e.v, true
	case ceParam:
		lst := fr.args[e.idx]
		if len(lst) == 0 {
			return tuple.Null(), true
		}
		return lst[0], true
	case ceReg:
		s := fr.slot(e.reg)
		if fr.written == nil || fr.written[s] {
			if fr.poison != nil && fr.poison[s] {
				return tuple.Null(), false
			}
			return fr.priv[s], true
		}
		// Not assigned in this walk: the value, if any, came from a
		// predecessor piece through the shared file.
		if p := fr.shared[s].Load(); p != nil {
			return *p, true
		}
		return tuple.Null(), true
	case ceBin:
		l, cl := fr.eval(e.l)
		r, cr := fr.eval(e.r)
		return applyBin(e.op, l, r), cl && cr
	case ceNot:
		v, c := fr.eval(e.e)
		return tuple.Bool(!v.Truthy()), c
	default:
		return tuple.Null(), true
	}
}

func applyBin(op BinOp, l, r tuple.Value) tuple.Value {
	switch op {
	case OpAdd:
		if l.Kind() == tuple.KindString || r.Kind() == tuple.KindString {
			return tuple.S(l.Str() + r.Str())
		}
		if l.Kind() == tuple.KindFloat || r.Kind() == tuple.KindFloat {
			return tuple.F(l.Float() + r.Float())
		}
		return tuple.I(l.Int() + r.Int())
	case OpSub:
		if l.Kind() == tuple.KindFloat || r.Kind() == tuple.KindFloat {
			return tuple.F(l.Float() - r.Float())
		}
		return tuple.I(l.Int() - r.Int())
	case OpMul:
		if l.Kind() == tuple.KindFloat || r.Kind() == tuple.KindFloat {
			return tuple.F(l.Float() * r.Float())
		}
		return tuple.I(l.Int() * r.Int())
	case OpDiv:
		if l.Kind() == tuple.KindFloat || r.Kind() == tuple.KindFloat {
			d := r.Float()
			if d == 0 {
				return tuple.Null()
			}
			return tuple.F(l.Float() / d)
		}
		if r.Int() == 0 {
			return tuple.Null()
		}
		return tuple.I(l.Int() / r.Int())
	case OpMod:
		if r.Int() == 0 {
			return tuple.Null()
		}
		return tuple.I(l.Int() % r.Int())
	case OpEq:
		return tuple.Bool(l.Equal(r))
	case OpNe:
		return tuple.Bool(!l.Equal(r))
	case OpLt:
		return tuple.Bool(l.Compare(r) < 0)
	case OpLe:
		return tuple.Bool(l.Compare(r) <= 0)
	case OpGt:
		return tuple.Bool(l.Compare(r) > 0)
	case OpGe:
		return tuple.Bool(l.Compare(r) >= 0)
	case OpAnd:
		return tuple.Bool(l.Truthy() && r.Truthy())
	case OpOr:
		return tuple.Bool(l.Truthy() || r.Truthy())
	}
	return tuple.Null()
}

// evalKey evaluates a key expression to a uint64 key.
func (fr *frame) evalKey(e cexpr) (uint64, bool) {
	v, clean := fr.eval(e)
	return uint64(v.Int()), clean
}

func (fr *frame) setReg(reg int, v tuple.Value) {
	s := fr.slot(reg)
	fr.priv[s] = v
	if fr.written != nil {
		fr.written[s] = true
	}
	if fr.poison != nil {
		fr.poison[s] = false
	}
}

// walk executes a statement list; returns false to stop (abort or error).
func (fr *frame) walk(stmts []cstmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case cRead:
			if !fr.readStmt(s) {
				return false
			}
		case cWrite:
			if !fr.modStmt(s.op, s.table, s.key, func(key uint64) error {
				up := fr.colUps[:0]
				for _, cs := range s.sets {
					v, _ := fr.eval(cs.val)
					up = append(up, ColUpdate{Col: cs.col, Val: v})
				}
				fr.colUps = up
				return fr.ex.Write(s.table, key, up)
			}) {
				return false
			}
		case cInsert:
			if !fr.modStmt(s.op, s.table, s.key, func(key uint64) error {
				vals := fr.valsBuf[:0]
				for _, ve := range s.vals {
					v, _ := fr.eval(ve)
					vals = append(vals, v)
				}
				fr.valsBuf = vals
				return fr.ex.Insert(s.table, key, vals)
			}) {
				return false
			}
		case cDelete:
			if !fr.modStmt(s.op, s.table, s.key, func(key uint64) error {
				return fr.ex.Delete(s.table, key)
			}) {
				return false
			}
		case cAssign:
			v, clean := fr.eval(s.val)
			fr.setReg(s.dst, v)
			if !clean {
				fr.poison[fr.slot(s.dst)] = true
			}
		case cIf:
			if fr.filter != nil && !s.scope.escapes && !fr.filter.IncludeAnyOp(s.scope.ops) {
				continue // subtree irrelevant to this piece
			}
			v, clean := fr.eval(s.cond)
			if !clean {
				// A guard the dry walk cannot decide: the piece is opaque.
				fr.opaque = true
				return false
			}
			if v.Truthy() {
				if !fr.walk(s.then) {
					return false
				}
			} else {
				if !fr.walk(s.els) {
					return false
				}
			}
		case cForEach:
			if fr.filter != nil && !s.scope.escapes && !fr.filter.IncludeAnyOp(s.scope.ops) {
				continue
			}
			list := fr.args[s.list]
			for i, v := range list {
				fr.iters[s.loop] = i
				if s.idxReg >= 0 {
					fr.setReg(s.idxReg, tuple.I(int64(i)))
				}
				fr.setReg(s.valReg, v)
				if !fr.walk(s.body) {
					return false
				}
			}
			fr.iters[s.loop] = 0
		case cAbort:
			fr.aborted = true
			return false
		}
	}
	return true
}

// readStmt handles a read in all three modes.
func (fr *frame) readStmt(s cRead) bool {
	op := fr.c.ops[s.op]
	iter := fr.iterKey(op.Loops)
	mine := fr.filter == nil || fr.filter.Include(s.op, iter)
	if !mine {
		// Another piece owns this read; later uses of the register fall
		// back to the shared file lazily (see frame.eval).
		return true
	}
	key, clean := fr.evalKey(s.key)
	if !clean {
		fr.opaque = true
		return false
	}
	if fr.dry {
		fr.accesses = append(fr.accesses, Access{Op: s.op, Iter: iter, Table: s.table, Key: key, Write: false})
		// The value is unknown without executing; poison the register.
		sl := fr.slot(s.dst)
		fr.written[sl] = true
		fr.poison[sl] = true
		return true
	}
	row, err := fr.ex.Read(s.table, key)
	if err != nil {
		fr.err = err
		return false
	}
	v := tuple.Null()
	if row != nil && s.col < len(row) {
		v = row[s.col]
	}
	fr.setReg(s.dst, v)
	if fr.shared != nil {
		vv := v
		fr.shared[fr.slot(s.dst)].Store(&vv)
	}
	return true
}

// modStmt handles write/insert/delete in all three modes.
func (fr *frame) modStmt(opID int, t *engine.Table, keyExpr cexpr, run func(key uint64) error) bool {
	op := fr.c.ops[opID]
	iter := fr.iterKey(op.Loops)
	if fr.filter != nil && !fr.filter.Include(opID, iter) {
		return true
	}
	key, clean := fr.evalKey(keyExpr)
	if !clean {
		fr.opaque = true
		return false
	}
	if fr.dry {
		fr.accesses = append(fr.accesses, Access{Op: opID, Iter: iter, Table: t, Key: key, Write: true})
		return true
	}
	if err := run(key); err != nil {
		fr.err = err
		return false
	}
	return true
}

// Execute runs the whole procedure against ex (the OLTP path and serial
// command-log replay). It returns ErrAborted if the procedure aborted.

// framePool recycles walk frames: replay walks each transaction body many
// times (once per piece and group), and per-walk register files dominated
// the allocation profile before pooling.
var framePool = sync.Pool{New: func() any { return &frame{} }}

func clearValues(s []tuple.Value, n int) []tuple.Value {
	if cap(s) < n {
		return make([]tuple.Value, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = tuple.Value{}
	}
	return s
}

func clearBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func clearInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// getFrame prepares a pooled frame for one walk. withWritten and withPoison
// select the extra tracking state (piece walks and dry walks respectively).
func getFrame(c *Compiled, args Args, layout *Layout, withWritten, withPoison bool) *frame {
	fr := framePool.Get().(*frame)
	fr.c = c
	fr.args = args
	fr.layout = layout
	fr.iters = clearInts(fr.iters, len(c.loops))
	fr.priv = clearValues(fr.priv, layout.size)
	if withWritten {
		fr.written = clearBools(fr.written, layout.size)
	} else {
		fr.written = nil
	}
	if withPoison {
		fr.poison = clearBools(fr.poison, layout.size)
	} else {
		fr.poison = nil
	}
	fr.shared = nil
	fr.filter = nil
	fr.ex = nil
	fr.dry = false
	fr.accesses = fr.accesses[:0]
	fr.opaque = false
	fr.err = nil
	fr.aborted = false
	return fr
}

// putFrame returns a frame to the pool. The caller must have copied out
// anything it needs (error, accesses).
func putFrame(fr *frame) {
	fr.c = nil
	fr.args = nil
	fr.layout = nil
	fr.shared = nil
	fr.filter = nil
	fr.ex = nil
	clear(fr.colUps)
	fr.colUps = fr.colUps[:0]
	clear(fr.valsBuf)
	fr.valsBuf = fr.valsBuf[:0]
	framePool.Put(fr)
}

func (c *Compiled) Execute(args Args, ex Executor) error {
	l, err := c.NewLayout(args)
	if err != nil {
		return err
	}
	fr := getFrame(c, args, l, false, false)
	defer putFrame(fr)
	fr.ex = ex
	fr.walk(c.body)
	if fr.aborted {
		return ErrAborted
	}
	return fr.err
}

// ExecutePiece runs the subset of operations selected by filter, reading
// cross-piece values from and publishing this piece's reads to the shared
// register file.
func (in *Instance) ExecutePiece(filter Filter, ex Executor) error {
	fr := getFrame(in.C, in.Args, in.layout, true, false)
	defer putFrame(fr)
	fr.shared = in.shared
	fr.filter = filter
	fr.ex = ex
	fr.walk(in.C.body)
	if fr.aborted {
		return ErrAborted
	}
	return fr.err
}

// DryWalk extracts the (table, key) accesses the filtered piece would
// perform, without executing any operation. It reports opaque=true when a
// guard or key depends on a value this piece itself would read — the
// caller must then fall back to conservative (fenced) execution, per
// Section 4.3.1's requirement that read/write sets be identifiable from the
// piece's input arguments.
func (in *Instance) DryWalk(filter Filter) (accesses []Access, opaque bool) {
	fr := getFrame(in.C, in.Args, in.layout, true, true)
	defer putFrame(fr)
	fr.shared = in.shared
	fr.filter = filter
	fr.dry = true
	// Guards over predecessor pieces' reads resolve through the lazy
	// shared-file fallback; this piece's own reads poison their registers.
	fr.walk(in.C.body)
	// The access list is handed to the caller; detach it from the pooled
	// frame.
	accesses = append([]Access(nil), fr.accesses...)
	return accesses, fr.opaque
}
