// Package proc defines the stored-procedure model: a small interpreted IR of
// database operations (read / write / insert / delete) with assignments,
// conditionals, and loops over list parameters.
//
// The paper models a stored procedure as "a parameterized transaction
// template ... that consists of a structured flow of database operations"
// (Section 3). Everything PACMAN does hangs off this representation:
//
//   - The transaction engine interprets it to execute OLTP transactions.
//   - The static analysis (internal/analysis) reads the compile-time
//     dependency metadata — which operations' key, value, and guard
//     expressions use which earlier reads — to build flow dependencies.
//   - Command-log recovery re-executes it piece by piece: a piece runs the
//     subset of operations belonging to one slice while re-evaluating all
//     control flow, exactly like the duplicated guards in the paper's
//     Figure 3. Values read by one piece flow to later pieces of the same
//     transaction through a shared register file.
//   - The dynamic analysis "dry-walks" a piece to extract its accessed
//     (table, key) set from the runtime parameter values without executing
//     the operations (Section 4.3.1).
package proc

import "pacman/internal/tuple"

// Procedure is the source form of a stored procedure.
type Procedure struct {
	Name   string
	Params []ParamDef
	Body   []Stmt
}

// ParamDef declares one parameter. All parameters are lists of values;
// scalar parameters are length-one lists (the usual case). ForEach loops
// iterate list parameters.
type ParamDef struct {
	Name string
}

// P declares a parameter.
func P(name string) ParamDef { return ParamDef{Name: name} }

// Stmt is a statement in a procedure body.
type Stmt interface{ isStmt() }

// ReadStmt is: Dst <- read(Table, Key, Col). A missing row yields NULL.
type ReadStmt struct {
	Dst   string
	Table string
	Key   Expr
	Col   string
}

// WriteStmt updates the named columns of the row with the given key,
// creating the row if it does not exist (unset columns stay NULL).
type WriteStmt struct {
	Table string
	Key   Expr
	Sets  []ColSet
}

// ColSet assigns one column in a WriteStmt.
type ColSet struct {
	Col string
	Val Expr
}

// InsertStmt inserts a full row (values in schema order).
type InsertStmt struct {
	Table string
	Key   Expr
	Vals  []Expr
}

// DeleteStmt deletes the row with the given key (no-op if absent).
type DeleteStmt struct {
	Table string
	Key   Expr
}

// AssignStmt is: Dst <- Val, a local computation.
type AssignStmt struct {
	Dst string
	Val Expr
}

// IfStmt guards its branches on a condition.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForEachStmt iterates a list parameter, binding Var to each element and
// IdxVar (optional, may be empty) to the zero-based index.
type ForEachStmt struct {
	IdxVar string
	Var    string
	List   string // parameter name
	Body   []Stmt
}

// AbortStmt aborts the transaction (used under an If for conditional
// rollbacks like TPC-C's invalid-item NewOrder).
type AbortStmt struct{}

func (ReadStmt) isStmt()    {}
func (WriteStmt) isStmt()   {}
func (InsertStmt) isStmt()  {}
func (DeleteStmt) isStmt()  {}
func (AssignStmt) isStmt()  {}
func (IfStmt) isStmt()      {}
func (ForEachStmt) isStmt() {}
func (AbortStmt) isStmt()   {}

// Expr is an expression over constants, parameters, and local variables.
type Expr interface{ isExpr() }

// ConstExpr is a literal value.
type ConstExpr struct{ V tuple.Value }

// ParamExpr references a scalar parameter (element 0 of its list).
type ParamExpr struct{ Name string }

// VarExpr references a local variable (defined by Read, Assign, or ForEach).
type VarExpr struct{ Name string }

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// NotExpr negates a condition.
type NotExpr struct{ E Expr }

func (ConstExpr) isExpr() {}
func (ParamExpr) isExpr() {}
func (VarExpr) isExpr()   {}
func (BinExpr) isExpr()   {}
func (NotExpr) isExpr()   {}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Arithmetic on two ints yields int; mixed or float
// operands yield float. Comparisons yield Bool (an int 0/1). Add
// concatenates strings.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// Expression constructors, kept short because workload definitions use them
// heavily.

// C wraps a constant value.
func C(v tuple.Value) Expr { return ConstExpr{V: v} }

// CI wraps a constant int.
func CI(v int64) Expr { return ConstExpr{V: tuple.I(v)} }

// CS wraps a constant string.
func CS(v string) Expr { return ConstExpr{V: tuple.S(v)} }

// CF wraps a constant float.
func CF(v float64) Expr { return ConstExpr{V: tuple.F(v)} }

// Pm references a scalar parameter.
func Pm(name string) Expr { return ParamExpr{Name: name} }

// V references a local variable.
func V(name string) Expr { return VarExpr{Name: name} }

// Bin builds a binary expression.
func Bin(op BinOp, l, r Expr) Expr { return BinExpr{Op: op, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) Expr { return BinExpr{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return BinExpr{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return BinExpr{Op: OpMul, L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return BinExpr{Op: OpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) Expr { return BinExpr{Op: OpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return BinExpr{Op: OpLt, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return BinExpr{Op: OpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return BinExpr{Op: OpGe, L: l, R: r} }

// Not negates e.
func Not(e Expr) Expr { return NotExpr{E: e} }

// Statement constructors.

// Read builds a ReadStmt.
func Read(dst, table string, key Expr, col string) Stmt {
	return ReadStmt{Dst: dst, Table: table, Key: key, Col: col}
}

// Write builds a WriteStmt.
func Write(table string, key Expr, sets ...ColSet) Stmt {
	return WriteStmt{Table: table, Key: key, Sets: sets}
}

// Set builds one column assignment for Write.
func Set(col string, val Expr) ColSet { return ColSet{Col: col, Val: val} }

// Insert builds an InsertStmt.
func Insert(table string, key Expr, vals ...Expr) Stmt {
	return InsertStmt{Table: table, Key: key, Vals: vals}
}

// Delete builds a DeleteStmt.
func Delete(table string, key Expr) Stmt {
	return DeleteStmt{Table: table, Key: key}
}

// Assign builds an AssignStmt.
func Assign(dst string, val Expr) Stmt { return AssignStmt{Dst: dst, Val: val} }

// If builds a guard with no else branch.
func If(cond Expr, then ...Stmt) Stmt { return IfStmt{Cond: cond, Then: then} }

// IfElse builds a guard with both branches.
func IfElse(cond Expr, then, els []Stmt) Stmt {
	return IfStmt{Cond: cond, Then: then, Else: els}
}

// ForEach builds a loop over a list parameter.
func ForEach(v, list string, body ...Stmt) Stmt {
	return ForEachStmt{Var: v, List: list, Body: body}
}

// ForEachIdx builds a loop that also binds the iteration index.
func ForEachIdx(idx, v, list string, body ...Stmt) Stmt {
	return ForEachStmt{IdxVar: idx, Var: v, List: list, Body: body}
}

// Abort builds an AbortStmt.
func Abort() Stmt { return AbortStmt{} }
