package proc

import (
	"testing"

	"pacman/internal/engine"
	"pacman/internal/tuple"
)

// Transfer's slices from the paper's Figure 3, expressed as op sets:
//
//	T1 = {op0}            spouse read
//	T2 = {op1,op2,op3,op4} current-account RMWs
//	T3 = {op5,op6}        saving RMW
var (
	sliceT1 = OpSetFilter{0: true}
	sliceT2 = OpSetFilter{1: true, 2: true, 3: true, 4: true}
	sliceT3 = OpSetFilter{5: true, 6: true}
)

func seedTransferState(t *testing.T, db *engine.Database) {
	t.Helper()
	seedAccount(db.Table("Family"), 1, tuple.I(1), tuple.I(2))
	seedAccount(db.Table("Current"), 1, tuple.I(1), tuple.I(1000))
	seedAccount(db.Table("Current"), 2, tuple.I(2), tuple.I(500))
	seedAccount(db.Table("Saving"), 1, tuple.I(1), tuple.I(50))
}

// TestPieceExecutionEquivalence runs Transfer as three pieces (in GDG
// order) and checks the final state matches whole-procedure execution.
func TestPieceExecutionEquivalence(t *testing.T) {
	run := func(t *testing.T, piecewise bool) (int64, int64, int64) {
		db := bankDB(t)
		c, err := Compile(db, transferProc(), 0)
		if err != nil {
			t.Fatal(err)
		}
		seedTransferState(t, db)
		ex := &directExec{ts: engine.MakeTS(1, 0)}
		args := Args{A(tuple.I(1)), A(tuple.I(100))}
		if piecewise {
			in, err := c.NewInstance(args)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range []Filter{sliceT1, sliceT2, sliceT3} {
				if err := in.ExecutePiece(f, ex); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if err := c.Execute(args, ex); err != nil {
				t.Fatal(err)
			}
		}
		return currentVal(t, db.Table("Current"), 1),
			currentVal(t, db.Table("Current"), 2),
			currentVal(t, db.Table("Saving"), 1)
	}
	s1, d1, b1 := run(t, false)
	s2, d2, b2 := run(t, true)
	if s1 != s2 || d1 != d2 || b1 != b2 {
		t.Errorf("piecewise (%d,%d,%d) != whole (%d,%d,%d)", s2, d2, b2, s1, d1, b1)
	}
	if s1 != 900 || d1 != 600 || b1 != 51 {
		t.Errorf("unexpected final state (%d,%d,%d)", s1, d1, b1)
	}
}

// TestPieceSharedRegisters verifies that a value read by T1 (dst) reaches
// T2's key expression through the shared register file.
func TestPieceSharedRegisters(t *testing.T) {
	db := bankDB(t)
	c, err := Compile(db, transferProc(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seedTransferState(t, db)
	ex := &directExec{ts: engine.MakeTS(1, 0)}
	in, err := c.NewInstance(Args{A(tuple.I(1)), A(tuple.I(100))})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ExecutePiece(sliceT1, ex); err != nil {
		t.Fatal(err)
	}
	// After T1, T2's dry walk can resolve the dst key (account 2).
	acc, opaque := in.DryWalk(sliceT2)
	if opaque {
		t.Fatal("T2 dry walk opaque after T1 executed")
	}
	var keys []uint64
	for _, a := range acc {
		if a.Table.Name() == "Current" {
			keys = append(keys, a.Key)
		}
	}
	if len(acc) != 4 || len(keys) != 4 {
		t.Fatalf("accesses = %+v", acc)
	}
	// Ops 1,2 hit src (1); ops 3,4 hit dst (2).
	if keys[0] != 1 || keys[1] != 1 || keys[2] != 2 || keys[3] != 2 {
		t.Errorf("keys = %v, want [1 1 2 2]", keys)
	}
	// Reads and writes classified correctly.
	if acc[0].Write || !acc[1].Write || acc[2].Write || !acc[3].Write {
		t.Errorf("write flags wrong: %+v", acc)
	}
}

// TestDryWalkOpaqueBeforePredecessor: without T1's read, T2's guard (dst !=
// 0) is undecidable and the key for the dst accesses is unknown, so the dry
// walk must report opaque.
func TestDryWalkOpaqueBeforePredecessor(t *testing.T) {
	db := bankDB(t)
	c, err := Compile(db, transferProc(), 0)
	if err != nil {
		t.Fatal(err)
	}
	in, err := c.NewInstance(Args{A(tuple.I(1)), A(tuple.I(100))})
	if err != nil {
		t.Fatal(err)
	}
	// T2 includes op0? No — op0 belongs to T1 and has not run. Its shared
	// slot is NULL but NOT poisoned, so the guard evaluates dst==NULL(0) and
	// conservatively skips. That would be WRONG semantics if we trusted it —
	// which is why the scheduler must never dry-walk a piece before its
	// predecessors complete. This test documents the self-inflicted case:
	// a piece containing its own guard read.
	selfGuard := OpSetFilter{0: true, 1: true, 2: true, 3: true, 4: true, 5: true, 6: true}
	_, opaque := in.DryWalk(selfGuard)
	if !opaque {
		t.Error("dry walk with own guarded read must be opaque")
	}
}

// TestDryWalkOwnKeyOpaque: a key derived from a read in the same piece makes
// the piece opaque.
func TestDryWalkOwnKeyOpaque(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "Chase",
		Params: []ParamDef{P("k")},
		Body: []Stmt{
			Read("ptr", "Current", Pm("k"), "Value"),
			Write("Current", V("ptr"), Set("Value", CI(1))),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := c.NewInstance(Args{A(tuple.I(5))})
	_, opaque := in.DryWalk(OpSetFilter{0: true, 1: true})
	if !opaque {
		t.Error("pointer-chasing piece must be opaque")
	}
	// But the read alone is fine (key from params).
	acc, opaque := in.DryWalk(OpSetFilter{0: true})
	if opaque || len(acc) != 1 || acc[0].Key != 5 {
		t.Errorf("read-only dry walk: opaque=%v acc=%+v", opaque, acc)
	}
}

// TestDryWalkLoopInstances: loop iterations yield distinct access instances
// with distinct iteration keys.
func TestDryWalkLoopInstances(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "Batch",
		Params: []ParamDef{P("accts")},
		Body: []Stmt{
			ForEach("a", "accts",
				Read("bal", "Current", V("a"), "Value"),
				Write("Current", V("a"), Set("Value", Add(V("bal"), CI(1)))),
			),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := c.NewInstance(Args{L(tuple.I(10), tuple.I(20), tuple.I(30))})
	acc, opaque := in.DryWalk(OpSetFilter{0: true, 1: true})
	if opaque {
		t.Fatal("loop dry walk opaque")
	}
	if len(acc) != 6 {
		t.Fatalf("accesses = %d, want 6", len(acc))
	}
	wantKeys := []uint64{10, 10, 20, 20, 30, 30}
	for i, a := range acc {
		if a.Key != wantKeys[i] {
			t.Errorf("access %d key = %d, want %d", i, a.Key, wantKeys[i])
		}
	}
	if acc[0].Iter != 0 || acc[2].Iter != 1 || acc[4].Iter != 2 {
		t.Errorf("iteration keys wrong: %+v", acc)
	}
}

// TestInstFilterPieceExecution: executing individual loop iterations via
// InstFilter touches only those iterations.
func TestInstFilterPieceExecution(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "Batch",
		Params: []ParamDef{P("accts")},
		Body: []Stmt{
			ForEach("a", "accts",
				Read("bal", "Current", V("a"), "Value"),
				Write("Current", V("a"), Set("Value", Add(V("bal"), CI(1)))),
			),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	current := db.Table("Current")
	for _, k := range []uint64{10, 20, 30} {
		seedAccount(current, k, tuple.I(int64(k)), tuple.I(100))
	}
	in, _ := c.NewInstance(Args{L(tuple.I(10), tuple.I(20), tuple.I(30))})
	ex := &directExec{ts: engine.MakeTS(1, 0)}
	// Execute only iteration 1 (account 20).
	f := InstFilter{
		OpInstance(0, 1): {},
		OpInstance(1, 1): {},
	}
	if err := in.ExecutePiece(f, ex); err != nil {
		t.Fatal(err)
	}
	if got := currentVal(t, current, 20); got != 101 {
		t.Errorf("acct 20 = %d", got)
	}
	if got := currentVal(t, current, 10); got != 100 {
		t.Errorf("acct 10 touched: %d", got)
	}
	// Execute the remaining iterations.
	f2 := InstFilter{
		OpInstance(0, 0): {}, OpInstance(1, 0): {},
		OpInstance(0, 2): {}, OpInstance(1, 2): {},
	}
	if err := in.ExecutePiece(f2, ex); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{10, 20, 30} {
		if got := currentVal(t, current, k); got != 101 {
			t.Errorf("acct %d = %d", k, got)
		}
	}
}
