package proc

import (
	"reflect"
	"testing"

	"pacman/internal/engine"
	"pacman/internal/tuple"
)

func TestCompileTransfer(t *testing.T) {
	db := bankDB(t)
	c, err := Compile(db, transferProc(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "Transfer" || c.ID() != 0 || c.NumParams() != 2 {
		t.Error("basic metadata wrong")
	}
	if c.NumOps() != 7 {
		t.Fatalf("ops = %d, want 7 (Figure 2 lines 2,4,5,6,7,8,9)", c.NumOps())
	}
	// Op 0: the spouse read; everything else is guarded by its result, so
	// every other op must flow-depend on op 0.
	for i := 1; i < 7; i++ {
		op := c.Op(i)
		found := false
		for _, d := range op.FlowDeps {
			if d == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("op %d (%s %s) missing control dependency on op 0; deps=%v",
				i, op.Kind, op.Table, op.FlowDeps)
		}
	}
	// Line 5 (op 2, write Current src) flow-depends on line 4 (op 1, read
	// srcVal) — the define-use relation from the paper's example.
	op2 := c.Op(2)
	if op2.Kind != OpWrite || op2.Table != "Current" {
		t.Fatalf("op 2 = %s %s", op2.Kind, op2.Table)
	}
	hasDep := func(deps []int, want int) bool {
		for _, d := range deps {
			if d == want {
				return true
			}
		}
		return false
	}
	if !hasDep(op2.FlowDeps, 1) {
		t.Errorf("write Current(src) must depend on read srcVal; deps=%v", op2.FlowDeps)
	}
	// Line 7 (op 4, write Current dst) depends on read dstVal (op 3) and,
	// through its key, on the spouse read (op 0) — the foreign-key pattern.
	op4 := c.Op(4)
	if !hasDep(op4.FlowDeps, 3) || !hasDep(op4.FlowDeps, 0) {
		t.Errorf("write Current(dst) deps=%v, want {0,3,...}", op4.FlowDeps)
	}
	// The saving write (op 6) depends on the bonus read (op 5) but not on
	// the current-account reads.
	op6 := c.Op(6)
	if !hasDep(op6.FlowDeps, 5) {
		t.Errorf("write Saving deps=%v, want bonus read 5", op6.FlowDeps)
	}
	if hasDep(op6.FlowDeps, 1) || hasDep(op6.FlowDeps, 3) {
		t.Errorf("write Saving must not depend on Current reads; deps=%v", op6.FlowDeps)
	}
}

func TestCompileErrors(t *testing.T) {
	db := bankDB(t)
	cases := []struct {
		name string
		p    *Procedure
	}{
		{"unknown table", &Procedure{Name: "x", Body: []Stmt{Read("v", "Nope", CI(1), "id")}}},
		{"unknown column", &Procedure{Name: "x", Body: []Stmt{Read("v", "Current", CI(1), "nope")}}},
		{"unknown param", &Procedure{Name: "x", Body: []Stmt{Read("v", "Current", Pm("missing"), "id")}}},
		{"undefined var", &Procedure{Name: "x", Body: []Stmt{Write("Current", V("ghost"), Set("Value", CI(1)))}}},
		{"dup param", &Procedure{Name: "x", Params: []ParamDef{P("a"), P("a")}}},
		{"empty param", &Procedure{Name: "x", Params: []ParamDef{P("")}}},
		{"bad loop list", &Procedure{Name: "x", Body: []Stmt{ForEach("v", "nolist")}}},
		{"insert arity", &Procedure{Name: "x", Body: []Stmt{Insert("Current", CI(1), CI(1))}}},
	}
	for _, c := range cases {
		if _, err := Compile(db, c.p, 0); err == nil {
			t.Errorf("%s: compile succeeded", c.name)
		}
	}
}

func TestExecuteTransfer(t *testing.T) {
	db := bankDB(t)
	c, err := Compile(db, transferProc(), 0)
	if err != nil {
		t.Fatal(err)
	}
	family, current, saving := db.Table("Family"), db.Table("Current"), db.Table("Saving")
	seedAccount(family, 1, tuple.I(1), tuple.I(2)) // 1's spouse is 2
	seedAccount(family, 3, tuple.I(3), tuple.I(0)) // 3 has no spouse
	seedAccount(current, 1, tuple.I(1), tuple.I(1000))
	seedAccount(current, 2, tuple.I(2), tuple.I(500))
	seedAccount(current, 3, tuple.I(3), tuple.I(777))
	seedAccount(saving, 1, tuple.I(1), tuple.I(50))

	ex := &directExec{ts: engine.MakeTS(1, 0)}
	if err := c.Execute(Args{A(tuple.I(1)), A(tuple.I(100))}, ex); err != nil {
		t.Fatal(err)
	}
	if got := currentVal(t, current, 1); got != 900 {
		t.Errorf("src balance = %d", got)
	}
	if got := currentVal(t, current, 2); got != 600 {
		t.Errorf("dst balance = %d", got)
	}
	if got := currentVal(t, saving, 1); got != 51 {
		t.Errorf("saving bonus = %d", got)
	}
	// No spouse: the guard blocks all transfers.
	if err := c.Execute(Args{A(tuple.I(3)), A(tuple.I(100))}, ex); err != nil {
		t.Fatal(err)
	}
	if got := currentVal(t, current, 3); got != 777 {
		t.Errorf("guard failed to block: balance = %d", got)
	}
}

func TestExecuteDepositGuards(t *testing.T) {
	db := bankDB(t)
	c, err := Compile(db, depositProc(), 1)
	if err != nil {
		t.Fatal(err)
	}
	current, saving, stats := db.Table("Current"), db.Table("Saving"), db.Table("Stats")
	seedAccount(current, 1, tuple.I(1), tuple.I(9000))
	seedAccount(saving, 1, tuple.I(1), tuple.I(0))
	seedAccount(stats, 65, tuple.I(65), tuple.I(0))

	ex := &directExec{ts: engine.MakeTS(1, 0)}
	// Small deposit: no bonus, no stats bump.
	if err := c.Execute(Args{A(tuple.I(1)), A(tuple.I(100)), A(tuple.I(65))}, ex); err != nil {
		t.Fatal(err)
	}
	if got := currentVal(t, current, 1); got != 9100 {
		t.Errorf("balance = %d", got)
	}
	if got := currentVal(t, stats, 65); got != 0 {
		t.Errorf("stats bumped on small deposit: %d", got)
	}
	// Large deposit crosses 10000: bonus and stats fire.
	if err := c.Execute(Args{A(tuple.I(1)), A(tuple.I(2000)), A(tuple.I(65))}, ex); err != nil {
		t.Fatal(err)
	}
	if got := currentVal(t, current, 1); got != 11100 {
		t.Errorf("balance = %d", got)
	}
	if got := currentVal(t, stats, 65); got != 1 {
		t.Errorf("stats = %d", got)
	}
}

func TestExecuteAbort(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "MaybeAbort",
		Params: []ParamDef{P("flag")},
		Body: []Stmt{
			If(Eq(Pm("flag"), CI(1)), Abort()),
			Write("Current", CI(9), Set("Value", CI(1))),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := &directExec{}
	if err := c.Execute(Args{A(tuple.I(1))}, ex); err != ErrAborted {
		t.Errorf("want ErrAborted, got %v", err)
	}
	if _, ok := db.Table("Current").GetRow(9); ok {
		t.Error("write after abort executed")
	}
	if err := c.Execute(Args{A(tuple.I(0))}, ex); err != nil {
		t.Errorf("non-aborting run failed: %v", err)
	}
}

func TestForEachLoop(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "BatchDeposit",
		Params: []ParamDef{P("accts"), P("amounts")},
		Body: []Stmt{
			Assign("total", CI(0)),
			ForEachIdx("i", "acct", "accts",
				Read("bal", "Current", V("acct"), "Value"),
				Write("Current", V("acct"), Set("Value", Add(V("bal"), CI(10)))),
				Assign("total", Add(V("total"), V("bal"))),
			),
			Write("Stats", CI(1), Set("Count", V("total"))),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	current := db.Table("Current")
	for i := uint64(1); i <= 3; i++ {
		seedAccount(current, i, tuple.I(int64(i)), tuple.I(int64(i*100)))
	}
	ex := &directExec{}
	args := Args{L(tuple.I(1), tuple.I(2), tuple.I(3)), L()}
	if err := c.Execute(args, ex); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if got := currentVal(t, current, i); got != int64(i*100+10) {
			t.Errorf("acct %d = %d", i, got)
		}
	}
	// Accumulator: 100+200+300.
	if got := currentVal(t, db.Table("Stats"), 1); got != 600 {
		t.Errorf("total = %d", got)
	}
	// Ops inside the loop carry the loop in their metadata.
	readOp := c.Op(0)
	if len(readOp.Loops) != 1 {
		t.Errorf("loop read has loops %v", readOp.Loops)
	}
	// The final write's flow deps include the in-loop read (accumulator).
	finalOp := c.Op(2)
	found := false
	for _, d := range finalOp.FlowDeps {
		if d == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("final write deps = %v, want read op 0", finalOp.FlowDeps)
	}
}

func TestInsertDelete(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "Churn",
		Params: []ParamDef{P("k")},
		Body: []Stmt{
			Insert("Current", Pm("k"), Pm("k"), CI(42)),
			Read("v", "Current", Pm("k"), "Value"),
			Delete("Current", Pm("k")),
			Write("Stats", CI(7), Set("Count", V("v"))),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := &directExec{}
	if err := c.Execute(Args{A(tuple.I(5))}, ex); err != nil {
		t.Fatal(err)
	}
	r, ok := db.Table("Current").GetRow(5)
	if !ok || r.LatestData() != nil {
		t.Error("row should exist as tombstone")
	}
	if got := currentVal(t, db.Table("Stats"), 7); got != 42 {
		t.Errorf("read-between = %d", got)
	}
	// Ops: insert, read, delete, write — kinds and modification flags.
	wantKinds := []OpKind{OpInsert, OpRead, OpDelete, OpWrite}
	for i, k := range wantKinds {
		if c.Op(i).Kind != k {
			t.Errorf("op %d kind = %v, want %v", i, c.Op(i).Kind, k)
		}
	}
	if OpRead.IsModification() || !OpInsert.IsModification() || !OpDelete.IsModification() {
		t.Error("IsModification misclassifies")
	}
}

func TestReadMissingRowIsNull(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "ReadGhost",
		Params: []ParamDef{P("k")},
		Body: []Stmt{
			Read("v", "Current", Pm("k"), "Value"),
			If(Eq(V("v"), C(tuple.Null())),
				Write("Stats", CI(1), Set("Count", CI(111))),
			),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := &directExec{}
	if err := c.Execute(Args{A(tuple.I(404))}, ex); err != nil {
		t.Fatal(err)
	}
	if got := currentVal(t, db.Table("Stats"), 1); got != 111 {
		t.Error("missing read did not yield NULL")
	}
}

func TestBinOps(t *testing.T) {
	cases := []struct {
		op   BinOp
		l, r tuple.Value
		want tuple.Value
	}{
		{OpAdd, tuple.I(2), tuple.I(3), tuple.I(5)},
		{OpAdd, tuple.F(1.5), tuple.I(1), tuple.F(2.5)},
		{OpAdd, tuple.S("a"), tuple.S("b"), tuple.S("ab")},
		{OpSub, tuple.I(5), tuple.I(3), tuple.I(2)},
		{OpMul, tuple.I(4), tuple.F(0.5), tuple.F(2)},
		{OpDiv, tuple.I(7), tuple.I(2), tuple.I(3)},
		{OpDiv, tuple.I(7), tuple.I(0), tuple.Null()},
		{OpDiv, tuple.F(1), tuple.F(0), tuple.Null()},
		{OpMod, tuple.I(7), tuple.I(3), tuple.I(1)},
		{OpMod, tuple.I(7), tuple.I(0), tuple.Null()},
		{OpEq, tuple.I(1), tuple.I(1), tuple.Bool(true)},
		{OpNe, tuple.I(1), tuple.I(2), tuple.Bool(true)},
		{OpLt, tuple.I(1), tuple.I(2), tuple.Bool(true)},
		{OpLe, tuple.I(2), tuple.I(2), tuple.Bool(true)},
		{OpGt, tuple.S("b"), tuple.S("a"), tuple.Bool(true)},
		{OpGe, tuple.I(1), tuple.I(2), tuple.Bool(false)},
		{OpAnd, tuple.I(1), tuple.I(0), tuple.Bool(false)},
		{OpOr, tuple.I(0), tuple.I(1), tuple.Bool(true)},
	}
	for _, c := range cases {
		got := applyBin(c.op, c.l, c.r)
		if !got.Equal(c.want) {
			t.Errorf("op %d: %v ? %v = %v, want %v", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestArgsCodec(t *testing.T) {
	cases := []Args{
		{},
		{A(tuple.I(1))},
		{A(tuple.I(1)), L(tuple.S("x"), tuple.S("y")), L()},
		{L(tuple.F(3.14), tuple.Null(), tuple.I(-9))},
	}
	for i, args := range cases {
		buf := AppendArgs(nil, args)
		if len(buf) != EncodedArgsSize(args) {
			t.Errorf("case %d: size mismatch", i)
		}
		got, n, err := DecodeArgs(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("case %d: decode err=%v n=%d", i, err, n)
		}
		if len(got) != len(args) {
			t.Fatalf("case %d: arity %d != %d", i, len(got), len(args))
		}
		for p := range args {
			if len(got[p]) != len(args[p]) {
				t.Fatalf("case %d param %d: length mismatch", i, p)
			}
			for j := range args[p] {
				if !got[p][j].Equal(args[p][j]) {
					t.Errorf("case %d: value mismatch at %d/%d", i, p, j)
				}
			}
		}
	}
	if _, _, err := DecodeArgs([]byte{9}); err == nil {
		t.Error("short buffer accepted")
	}
	if _, _, err := DecodeArgs([]byte{1, 0, 2, 0, byte(255)}); err == nil {
		t.Error("corrupt value accepted")
	}
}

func TestRegistry(t *testing.T) {
	db := bankDB(t)
	r := NewRegistry()
	tr := r.MustRegister(db, transferProc())
	dp := r.MustRegister(db, depositProc())
	if tr.ID() != 0 || dp.ID() != 1 {
		t.Error("IDs not assigned in order")
	}
	if r.ByName("Transfer") != tr || r.ByID(1) != dp || r.Len() != 2 {
		t.Error("lookups broken")
	}
	if r.ByID(5) != nil || r.ByID(-1) != nil || r.ByName("zzz") != nil {
		t.Error("missing lookups should return nil")
	}
	if len(r.All()) != 2 {
		t.Error("All broken")
	}
	if _, err := r.Register(db, transferProc()); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestLayoutMultiplicity(t *testing.T) {
	db := bankDB(t)
	p := &Procedure{
		Name:   "Loopy",
		Params: []ParamDef{P("outer"), P("inner")},
		Body: []Stmt{
			Read("top", "Current", CI(1), "Value"),
			ForEach("o", "outer",
				Read("a", "Current", V("o"), "Value"),
				ForEach("x", "inner",
					Read("b", "Current", V("x"), "Value"),
				),
			),
		},
	}
	c, err := Compile(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	args := Args{L(tuple.I(1), tuple.I(2), tuple.I(3)), L(tuple.I(4), tuple.I(5))}
	l, err := c.NewLayout(args)
	if err != nil {
		t.Fatal(err)
	}
	// Registers: top(1) + o(3) + a(3) + x(3*2) + b(3*2) = 1+3+3+6+6 = 19.
	if l.size != 19 {
		t.Errorf("layout size = %d, want 19", l.size)
	}
	if _, err := c.NewLayout(Args{L()}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestOpInstanceAndFilters(t *testing.T) {
	if OpInstance(3, 0x20001) != uint64(3)<<48|0x20001 {
		t.Error("OpInstance packing wrong")
	}
	f := OpSetFilter{2: true}
	if !f.Include(2, 99) || f.Include(1, 0) {
		t.Error("OpSetFilter broken")
	}
	inst := InstFilter{OpInstance(2, 5): {}}
	if !inst.Include(2, 5) || inst.Include(2, 6) {
		t.Error("InstFilter broken")
	}
}

func TestFlowDepsAreSorted(t *testing.T) {
	db := bankDB(t)
	c, err := Compile(db, transferProc(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range c.Ops() {
		if !sortedInts(op.FlowDeps) {
			t.Errorf("op %d deps not sorted: %v", op.ID, op.FlowDeps)
		}
	}
}

func sortedInts(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

func TestOpSetHelpers(t *testing.T) {
	s := opSet{}
	s.add(3, 1, 2)
	o := opSet{}
	o.add(2, 5)
	s.union(o)
	if !reflect.DeepEqual(s.sorted(), []int{1, 2, 3, 5}) {
		t.Errorf("sorted = %v", s.sorted())
	}
}
