package proc

// Subtree scope analysis: a filtered (piece or group) walk may skip an
// If/ForEach subtree entirely when (a) the filter selects none of the
// operations inside it, and (b) no register defined inside it is used
// outside it. Condition (b) guarantees skipping cannot change any value the
// rest of the walk computes; condition (a) guarantees no operation is
// missed. The walker checks (a) at run time against its filter; (b) is the
// compile-time `escapes` flag computed here.
//
// This is a large constant-factor optimization for piece-wise replay: a
// TPC-C NewOrder's district piece, for instance, never walks the item loop.

// countRegUses counts ceReg references per register across the whole body.
func countRegUses(body []cstmt, numRegs int) []int {
	counts := make([]int, numRegs)
	var expr func(e cexpr)
	expr = func(e cexpr) {
		switch e := e.(type) {
		case ceReg:
			counts[e.reg]++
		case ceBin:
			expr(e.l)
			expr(e.r)
		case ceNot:
			expr(e.e)
		}
	}
	var stmts func([]cstmt)
	stmts = func(ss []cstmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case cRead:
				expr(s.key)
			case cWrite:
				expr(s.key)
				for _, cs := range s.sets {
					expr(cs.val)
				}
			case cInsert:
				expr(s.key)
				for _, v := range s.vals {
					expr(v)
				}
			case cDelete:
				expr(s.key)
			case cAssign:
				expr(s.val)
			case cIf:
				expr(s.cond)
				stmts(s.then)
				stmts(s.els)
			case cForEach:
				stmts(s.body)
			}
		}
	}
	stmts(body)
	return counts
}

// subtreeSummary accumulates a subtree's ops, defined registers, and
// internal register-use counts.
type subtreeSummary struct {
	ops     []int
	defined map[int]struct{}
	uses    map[int]int
}

func (ss *subtreeSummary) define(reg int) {
	if reg >= 0 {
		ss.defined[reg] = struct{}{}
	}
}

func (ss *subtreeSummary) expr(e cexpr) {
	switch e := e.(type) {
	case ceReg:
		ss.uses[e.reg]++
	case ceBin:
		ss.expr(e.l)
		ss.expr(e.r)
	case ceNot:
		ss.expr(e.e)
	}
}

func (ss *subtreeSummary) stmts(body []cstmt) {
	for _, s := range body {
		switch s := s.(type) {
		case cRead:
			ss.ops = append(ss.ops, s.op)
			ss.define(s.dst)
			ss.expr(s.key)
		case cWrite:
			ss.ops = append(ss.ops, s.op)
			ss.expr(s.key)
			for _, cs := range s.sets {
				ss.expr(cs.val)
			}
		case cInsert:
			ss.ops = append(ss.ops, s.op)
			ss.expr(s.key)
			for _, v := range s.vals {
				ss.expr(v)
			}
		case cDelete:
			ss.ops = append(ss.ops, s.op)
			ss.expr(s.key)
		case cAssign:
			ss.define(s.dst)
			ss.expr(s.val)
		case cIf:
			ss.expr(s.cond)
			ss.stmts(s.then)
			ss.stmts(s.els)
		case cForEach:
			ss.define(s.idxReg)
			ss.define(s.valReg)
			ss.stmts(s.body)
		}
	}
}

// summarize computes the scope of a subtree given global use counts.
func summarize(bodies [][]cstmt, extraDefs []int, globalUse []int) subtreeScope {
	ss := &subtreeSummary{defined: map[int]struct{}{}, uses: map[int]int{}}
	for _, b := range bodies {
		ss.stmts(b)
	}
	for _, r := range extraDefs {
		ss.define(r)
	}
	sc := subtreeScope{ops: ss.ops}
	for r := range ss.defined {
		if globalUse[r] > ss.uses[r] {
			sc.escapes = true
			break
		}
	}
	return sc
}

// finalizeScopes fills the scope summary of every If/ForEach node. Abort
// statements inside a subtree force escapes (skipping could suppress an
// abort the filtered ops depend on for control flow fidelity).
func finalizeScopes(body []cstmt, globalUse []int) {
	for i, s := range body {
		switch n := s.(type) {
		case cIf:
			finalizeScopes(n.then, globalUse)
			finalizeScopes(n.els, globalUse)
			n.scope = summarize([][]cstmt{n.then, n.els}, nil, globalUse)
			if containsAbort(n.then) || containsAbort(n.els) {
				n.scope.escapes = true
			}
			body[i] = n
		case cForEach:
			finalizeScopes(n.body, globalUse)
			n.scope = summarize([][]cstmt{n.body}, []int{n.idxReg, n.valReg}, globalUse)
			if containsAbort(n.body) {
				n.scope.escapes = true
			}
			body[i] = n
		}
	}
}

func containsAbort(body []cstmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case cAbort:
			return true
		case cIf:
			if containsAbort(s.then) || containsAbort(s.els) {
				return true
			}
		case cForEach:
			if containsAbort(s.body) {
				return true
			}
		}
	}
	return false
}
