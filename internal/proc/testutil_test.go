package proc

import (
	"testing"

	"pacman/internal/engine"
	"pacman/internal/tuple"
)

// bankDB builds the catalog of the paper's running example (Figures 2-4):
// Family (spouse lookup), Current, Saving, and Stats.
func bankDB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.NewDatabase()
	db.MustAddTable(tuple.MustSchema("Family",
		tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)))
	db.MustAddTable(tuple.MustSchema("Current",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	db.MustAddTable(tuple.MustSchema("Saving",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	db.MustAddTable(tuple.MustSchema("Stats",
		tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)))
	return db
}

// transferProc is Figure 2's Transfer procedure. A spouse id of 0 plays the
// role of the paper's "NULL".
func transferProc() *Procedure {
	return &Procedure{
		Name:   "Transfer",
		Params: []ParamDef{P("src"), P("amount")},
		Body: []Stmt{
			Read("dst", "Family", Pm("src"), "Spouse"),
			If(Ne(V("dst"), CI(0)),
				Read("srcVal", "Current", Pm("src"), "Value"),
				Write("Current", Pm("src"), Set("Value", Sub(V("srcVal"), Pm("amount")))),
				Read("dstVal", "Current", V("dst"), "Value"),
				Write("Current", V("dst"), Set("Value", Add(V("dstVal"), Pm("amount")))),
				Read("bonus", "Saving", Pm("src"), "Value"),
				Write("Saving", Pm("src"), Set("Value", Add(V("bonus"), CI(1)))),
			),
		},
	}
}

// depositProc is Figure 4's Deposit procedure.
func depositProc() *Procedure {
	return &Procedure{
		Name:   "Deposit",
		Params: []ParamDef{P("name"), P("amount"), P("nation")},
		Body: []Stmt{
			Read("tmp", "Current", Pm("name"), "Value"),
			Write("Current", Pm("name"), Set("Value", Add(V("tmp"), Pm("amount")))),
			If(Gt(Add(V("tmp"), Pm("amount")), CI(10000)),
				Read("bonus", "Saving", Pm("name"), "Value"),
				Write("Saving", Pm("name"), Set("Value", Add(V("bonus"), Mul(CF(0.02), V("tmp"))))),
			),
			If(Gt(Add(V("tmp"), Pm("amount")), CI(10000)),
				Read("count", "Stats", Pm("nation"), "Count"),
				Write("Stats", Pm("nation"), Set("Count", Add(V("count"), CI(1)))),
			),
		},
	}
}

// directExec is an Executor applying operations straight to the engine with
// no concurrency control (single-threaded tests only).
type directExec struct {
	ts engine.TS
}

func (e *directExec) Read(t *engine.Table, key uint64) (tuple.Tuple, error) {
	r, ok := t.GetRow(key)
	if !ok {
		return nil, nil
	}
	return r.LatestData(), nil
}

func (e *directExec) Write(t *engine.Table, key uint64, up []ColUpdate) error {
	r, _ := t.GetOrCreateRow(key)
	old := r.LatestData()
	next := make(tuple.Tuple, t.Schema().NumColumns())
	copy(next, old)
	for _, u := range up {
		next[u.Col] = u.Val
	}
	e.ts++
	r.Install(e.ts, next, false, true)
	return nil
}

func (e *directExec) Insert(t *engine.Table, key uint64, vals tuple.Tuple) error {
	r, _ := t.GetOrCreateRow(key)
	e.ts++
	r.Install(e.ts, vals.Clone(), false, true)
	return nil
}

func (e *directExec) Delete(t *engine.Table, key uint64) error {
	if r, ok := t.GetRow(key); ok {
		e.ts++
		r.Install(e.ts, nil, true, true)
	}
	return nil
}

// seedAccount installs an initial row.
func seedAccount(t *engine.Table, key uint64, vals ...tuple.Value) {
	r, _ := t.GetOrCreateRow(key)
	r.Install(engine.MakeTS(0, 1), tuple.Tuple(vals), false, true)
}

func currentVal(t testing.TB, tb *engine.Table, key uint64) int64 {
	t.Helper()
	r, ok := tb.GetRow(key)
	if !ok {
		t.Fatalf("row %d missing in %s", key, tb.Name())
	}
	d := r.LatestData()
	if d == nil {
		t.Fatalf("row %d deleted in %s", key, tb.Name())
	}
	return d[1].Int()
}
