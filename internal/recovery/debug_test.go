package recovery

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pacman/internal/proc"
	"pacman/internal/sched"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// TestDebugSmallbankBisect finds the first log prefix where CLR and CLR-P
// diverge and prints the offending transaction. It passes when no prefix
// diverges.
func TestDebugSmallbankBisect(t *testing.T) {
	cfg := workload.SmallbankConfig{Customers: 200, HotspotPct: 25}
	live := workload.NewSmallbank(cfg)
	live.Populate(workload.DirectPopulate{})
	m := txn.NewManager(live.DB(), txn.DefaultConfig())
	devs := []*simdisk.Device{simdisk.New("d", simdisk.Unlimited())}
	wcfg := wal.DefaultConfig(wal.Command)
	wcfg.FlushInterval = 100 * time.Microsecond
	ls := wal.NewLogSet(m, wcfg, devs)
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		tx := live.Generate(rng)
		adhoc := rng.Intn(100) < 20 && !tx.ReadOnly
		if _, err := w.Execute(tx.Proc, tx.Args, adhoc, time.Now()); err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				continue
			}
			t.Fatal(err)
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	m.Stop()
	entries, _, err := wal.ReloadAll(devs, ls.PersistedEpoch(), 1)
	if err != nil {
		t.Fatal(err)
	}

	replay := func(n int, clrp bool) map[string]map[uint64]string {
		fresh := workload.NewSmallbank(cfg)
		fresh.Populate(workload.DirectPopulate{})
		if clrp {
			r := sched.New(smallbankGDG(fresh), fresh.Registry(), fresh.DB(),
				sched.Options{Threads: 1, Mode: sched.Synchronous})
			r.Start()
			r.Submit(entries[:n])
			if err := r.Finish(); err != nil {
				t.Fatal(err)
			}
		} else {
			ex := &serialExec{db: fresh.DB()}
			for _, e := range entries[:n] {
				if e.Kind == wal.EntryCommand {
					ex.ts = e.TS
					c := fresh.Registry().ByID(e.ProcID)
					if err := c.Execute(e.Args, ex); err != nil {
						t.Fatal(err)
					}
				} else {
					for _, wr := range e.Writes {
						tab := fresh.DB().TableByID(wr.TableID)
						row, _ := tab.GetOrCreateRow(wr.Key)
						row.Install(e.TS, wr.After, wr.Deleted, false)
					}
				}
			}
		}
		return snapshotState(fresh.DB())
	}

	same := func(a, b map[string]map[uint64]string) (string, uint64, bool) {
		for tab, rows := range a {
			for k, v := range rows {
				if b[tab][k] != v {
					return tab, k, false
				}
			}
		}
		return "", 0, true
	}

	// Binary search the first diverging prefix.
	lo, hi := 0, len(entries)
	if _, _, ok := same(replay(hi, false), replay(hi, true)); ok {
		return // no divergence
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if _, _, ok := same(replay(mid, false), replay(mid, true)); ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	e := entries[hi-1]
	tab, key, _ := same(replay(hi, false), replay(hi, true))
	if e.Kind == wal.EntryCommand {
		c := live.Registry().ByID(e.ProcID)
		t.Fatalf("first divergence at entry %d: %s args=%v (table %s key %d)",
			hi-1, c.Name(), e.Args, tab, key)
	}
	t.Fatalf("first divergence at entry %d: ad-hoc writes=%+v (table %s key %d)",
		hi-1, e.Writes, tab, key)
}
