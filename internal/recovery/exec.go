package recovery

import (
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// serialExec applies stored-procedure operations directly to the engine for
// the single-threaded CLR replay: no latching, single-version installs at
// the replayed transaction's commit timestamp.
type serialExec struct {
	db *engine.Database
	ts engine.TS
}

// Read returns the currently replayed value.
func (e *serialExec) Read(t *engine.Table, key uint64) (tuple.Tuple, error) {
	row, ok := t.GetRow(key)
	if !ok {
		return nil, nil
	}
	return row.LatestData(), nil
}

// Write merges column updates over the replayed state.
func (e *serialExec) Write(t *engine.Table, key uint64, up []proc.ColUpdate) error {
	row, _ := t.GetOrCreateRow(key)
	base := row.LatestData()
	next := make(tuple.Tuple, t.Schema().NumColumns())
	copy(next, base)
	for _, u := range up {
		if u.Col < len(next) {
			next[u.Col] = u.Val
		}
	}
	row.Install(e.ts, next, false, false)
	return nil
}

// Insert stores a full row image.
func (e *serialExec) Insert(t *engine.Table, key uint64, vals tuple.Tuple) error {
	row, _ := t.GetOrCreateRow(key)
	row.Install(e.ts, vals.Clone(), false, false)
	return nil
}

// Delete installs a tombstone.
func (e *serialExec) Delete(t *engine.Table, key uint64) error {
	row, ok := t.GetRow(key)
	if !ok {
		return nil
	}
	row.Install(e.ts, nil, true, false)
	return nil
}
