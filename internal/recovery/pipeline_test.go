package recovery

import (
	"testing"

	"pacman/internal/wal"
)

// TestPipelinedMatchesSerialReload recovers the same crashed history through
// the legacy serial feeder and the pipelined reloader, for every scheme, and
// requires identical recovered state.
func TestPipelinedMatchesSerialReload(t *testing.T) {
	for _, scheme := range []Scheme{PLR, LLR, LLRP, CLR, CLRP} {
		f := runFixture(t, scheme.LogKind(), 200, 10, true, false, int64(scheme)+42)
		serial, _ := recoverInto(t, f, scheme, 2, func(o *Options) { o.SerialReload = true })
		pipe, pres := recoverInto(t, f, scheme, 2, nil)
		sameState(t, snapshotState(serial.DB()), snapshotState(pipe.DB()), scheme.String())
		if pres.Entries == 0 {
			t.Errorf("%v: pipelined replayed no entries", scheme)
		}
	}
}

// TestPipelinedResultAccounting checks the overlap/stall breakdown fields.
func TestPipelinedResultAccounting(t *testing.T) {
	f := runFixture(t, wal.Command, 300, 0, true, false, 7)
	_, res := recoverInto(t, f, CLRP, 2, nil)
	if res.LogReload <= 0 {
		t.Error("LogReload not accounted")
	}
	if res.ReloadWall <= 0 {
		t.Error("ReloadWall not accounted")
	}
	if res.ReloadStall < 0 || res.ReloadOverlap < 0 {
		t.Errorf("negative stall/overlap: %v / %v", res.ReloadStall, res.ReloadOverlap)
	}
	if got := res.ReloadStall + res.ReloadOverlap; got != res.ReloadWall && res.ReloadOverlap != 0 {
		// Overlap is defined as wall - stall (clamped), so when both are
		// nonzero they must sum back to the wall.
		t.Errorf("stall %v + overlap %v != wall %v", res.ReloadStall, res.ReloadOverlap, res.ReloadWall)
	}
	_, sres := recoverInto(t, f, CLRP, 2, func(o *Options) { o.SerialReload = true })
	if sres.Entries != res.Entries {
		t.Errorf("entry counts differ: serial %d, pipelined %d", sres.Entries, res.Entries)
	}
	if sres.LogBytes != res.LogBytes {
		t.Errorf("byte counts differ: serial %d, pipelined %d", sres.LogBytes, res.LogBytes)
	}
}

// TestCheckpointFilterPushdown recovers with a checkpoint via both reload
// paths: the reader-side filter must drop exactly what the serial feeder's
// post-reload filter drops, and both must replay to the same state.
func TestCheckpointFilterPushdown(t *testing.T) {
	for _, scheme := range []Scheme{LLR, CLRP} {
		f := runFixture(t, scheme.LogKind(), 240, 0, true, true, 99)
		serial, sres := recoverInto(t, f, scheme, 2, func(o *Options) { o.SerialReload = true })
		pipe, pres := recoverInto(t, f, scheme, 2, nil)
		sameState(t, snapshotState(serial.DB()), snapshotState(pipe.DB()), scheme.String())
		if pres.Filtered != sres.Filtered {
			t.Errorf("%v: filtered %d entries in readers, serial filtered %d",
				scheme, pres.Filtered, sres.Filtered)
		}
		if pres.Filtered == 0 {
			t.Errorf("%v: checkpoint filter never fired (fixture must log before the checkpoint)", scheme)
		}
		if pres.Entries != sres.Entries {
			t.Errorf("%v: entries %d vs %d", scheme, pres.Entries, sres.Entries)
		}
	}
}

// TestPipelinedTightWindow exercises the bounded staging window end to end.
func TestPipelinedTightWindow(t *testing.T) {
	f := runFixture(t, wal.Command, 200, 0, true, false, 3)
	serial, _ := recoverInto(t, f, CLRP, 2, func(o *Options) { o.SerialReload = true })
	pipe, _ := recoverInto(t, f, CLRP, 2, func(o *Options) { o.ReloadWindow = 1 })
	sameState(t, snapshotState(serial.DB()), snapshotState(pipe.DB()), "window=1")
}
