// Package recovery implements the five database recovery schemes of the
// paper's evaluation (Section 6.2):
//
//	PLR   — physical log recovery: parallel last-writer-wins replay by
//	        physical address with per-tuple latches; indexes rebuilt in
//	        parallel after replay.
//	LLR   — SiloR-style logical log recovery: parallel replay by key with
//	        per-tuple latches; versions spliced in timestamp order; indexes
//	        built inline; recovered state multi-versioned.
//	LLR-P — PACMAN-adapted logical recovery (Section 4.5): writes shuffled
//	        by (table, key) into per-thread partitions, reinstalled
//	        latch-free in commit order; single-versioned.
//	CLR   — conventional command log recovery: parallel reload, then a
//	        single thread re-executes transactions in commit order.
//	CLR-P — PACMAN: the sched.Replayer with static + dynamic analysis.
//
// Every scheme shares the same two-stage structure: checkpoint recovery
// (restore the latest consistent checkpoint, Section 2.3), then log
// recovery streamed batch-by-batch with parallel file reloading.
package recovery

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/sched"
	"pacman/internal/simdisk"
	"pacman/internal/wal"
)

// Scheme identifies a recovery scheme.
type Scheme int

// The five evaluated schemes.
const (
	PLR Scheme = iota
	LLR
	LLRP
	CLR
	CLRP
)

func (s Scheme) String() string {
	switch s {
	case PLR:
		return "PLR"
	case LLR:
		return "LLR"
	case LLRP:
		return "LLR-P"
	case CLR:
		return "CLR"
	case CLRP:
		return "CLR-P"
	}
	return "?"
}

// LogKind returns the logging scheme whose output this recovery scheme
// replays.
func (s Scheme) LogKind() wal.Kind {
	switch s {
	case PLR:
		return wal.Physical
	case LLR, LLRP:
		return wal.Logical
	default:
		return wal.Command
	}
}

// Options configures one recovery run.
type Options struct {
	Scheme   Scheme
	DB       *engine.Database
	Registry *proc.Registry
	// GDG is required for CLR-P.
	GDG     *analysis.GDG
	Devices []*simdisk.Device
	Threads int
	// DisableLatches removes per-tuple latch acquisition in PLR/LLR — the
	// deliberately unsafe configuration of Figure 15 used to isolate the
	// latching bottleneck.
	DisableLatches bool
	// Mode selects the CLR-P parallelism level (Figures 18/19); defaults
	// to Pipelined.
	Mode sched.Mode
	// Breakdown, if set, accumulates the Figure 20 phase split (CLR-P).
	Breakdown *metrics.Breakdown
	// SkipCheckpoint skips checkpoint recovery even if one exists (used by
	// experiments that isolate log recovery).
	SkipCheckpoint bool
}

// Result reports the phases of a recovery run, matching the splits the
// paper's figures plot.
type Result struct {
	// Pepoch is the recovered persistent epoch.
	Pepoch uint32
	// CheckpointReload is the pure checkpoint file reloading time (Fig 13a).
	CheckpointReload time.Duration
	// CheckpointTotal is the full checkpoint recovery time including row
	// installation and (inline) index building (Fig 13b).
	CheckpointTotal time.Duration
	CheckpointRows  int64
	// LogReload is cumulative time spent reading and decoding log files
	// (Fig 14a).
	LogReload time.Duration
	// LogTotal is the overall log recovery duration including replay and,
	// for PLR, the deferred index rebuild (Fig 14b).
	LogTotal time.Duration
	// IndexRebuild is PLR's post-replay index reconstruction component.
	IndexRebuild time.Duration
	Entries      int
	LogBytes     int64
	TornFiles    int
}

// Run performs a full database recovery. The catalog must already hold the
// workload's schema; when no checkpoint exists the caller must have
// installed the deterministic initial population beforehand.
func Run(opts Options) (*Result, error) {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.Mode == 0 && opts.Scheme == CLRP {
		opts.Mode = sched.Pipelined
	}
	res := &Result{}

	// Persistent epoch: the durability cut.
	pe, err := wal.ReadPepoch(opts.Devices[0])
	if err != nil {
		if !errors.Is(err, simdisk.ErrNotExist) {
			return nil, err
		}
		pe = 0
	}
	res.Pepoch = pe

	// Stage 1: checkpoint recovery.
	var ckptTS engine.TS
	if !opts.SkipCheckpoint {
		man, err := checkpoint.FindLatest(opts.Devices)
		if err != nil {
			return nil, err
		}
		if man != nil {
			start := time.Now()
			deferIndex := opts.Scheme == PLR
			stats, err := checkpoint.Restore(opts.DB, opts.Devices, man, opts.Threads, deferIndex)
			if err != nil {
				return nil, err
			}
			res.CheckpointTotal = time.Since(start)
			res.CheckpointReload = stats.ReloadTime
			res.CheckpointRows = stats.Rows
			ckptTS = man.TS
		}
	}

	// Stage 2: log recovery.
	start := time.Now()
	if err := replayLog(opts, pe, ckptTS, res); err != nil {
		return nil, err
	}
	// PLR rebuilds all indexes at the end of log recovery (Section 2.3).
	if opts.Scheme == PLR {
		ixStart := time.Now()
		rebuildIndexes(opts.DB, opts.Threads)
		res.IndexRebuild = time.Since(ixStart)
	}
	res.LogTotal = time.Since(start)
	if opts.Breakdown != nil {
		opts.Breakdown.Add(sched.PhaseLoad, res.LogReload)
	}
	return res, nil
}

// replayLog streams batches: a producer reloads and decodes files while the
// scheme-specific consumer replays them.
func replayLog(opts Options, pepoch uint32, ckptTS engine.TS, res *Result) error {
	batches, err := wal.Discover(opts.Devices)
	if err != nil {
		return err
	}

	feed := make(chan batchLoad, 2)
	var reloadTime time.Duration
	var mu sync.Mutex
	go func() {
		defer close(feed)
		for _, bf := range batches {
			t0 := time.Now()
			entries, stats, err := wal.ReloadBatch(bf, pepoch, opts.Threads)
			mu.Lock()
			reloadTime += time.Since(t0)
			res.LogBytes += stats.Bytes
			res.TornFiles += stats.TornFiles
			mu.Unlock()
			// Entries already covered by the checkpoint are skipped.
			if ckptTS > 0 {
				kept := entries[:0]
				for _, e := range entries {
					if e.TS > ckptTS {
						kept = append(kept, e)
					}
				}
				entries = kept
			}
			feed <- batchLoad{entries: entries, err: err}
			if err != nil {
				return
			}
		}
	}()

	var replayErr error
	switch opts.Scheme {
	case PLR:
		replayErr = replayPhysical(opts, feed, res)
	case LLR:
		replayErr = replayLogical(opts, feed, res)
	case LLRP:
		replayErr = replayLogicalPartitioned(opts, feed, res)
	case CLR:
		replayErr = replaySerialCommand(opts, feed, res)
	case CLRP:
		replayErr = replayPACMAN(opts, feed, res)
	default:
		replayErr = fmt.Errorf("recovery: unknown scheme %v", opts.Scheme)
	}
	mu.Lock()
	res.LogReload = reloadTime
	mu.Unlock()
	return replayErr
}

// replayPhysical: last-writer-wins by physical slot, latched, parallel
// across entries; indexes deferred.
func replayPhysical(opts Options, feed <-chan batchLoad, res *Result) error {
	return consumeParallel(opts, feed, res, func(e *wal.Entry) error {
		for _, w := range e.Writes {
			t := opts.DB.TableByID(w.TableID)
			if t == nil {
				return fmt.Errorf("recovery: unknown table %d", w.TableID)
			}
			row := t.PlaceRowAt(w.Slot, w.Key)
			if !opts.DisableLatches {
				row.Lock()
			}
			row.InstallLWW(e.TS, w.After, w.Deleted)
			if !opts.DisableLatches {
				row.Unlock()
			}
		}
		return nil
	})
}

// replayLogical: SiloR-style parallel replay by key with latches and
// timestamp-sorted version splicing; index built inline.
func replayLogical(opts Options, feed <-chan batchLoad, res *Result) error {
	return consumeParallel(opts, feed, res, func(e *wal.Entry) error {
		for _, w := range e.Writes {
			t := opts.DB.TableByID(w.TableID)
			if t == nil {
				return fmt.Errorf("recovery: unknown table %d", w.TableID)
			}
			row, _ := t.GetOrCreateRow(w.Key)
			if !opts.DisableLatches {
				row.Lock()
			}
			row.InsertVersionSorted(e.TS, w.After, w.Deleted)
			if !opts.DisableLatches {
				row.Unlock()
			}
		}
		return nil
	})
}

// batchLoad is one reloaded batch handed from the producer to a consumer.
type batchLoad struct {
	entries []*wal.Entry
	err     error
}

// errOnce records the first error across workers.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// consumeParallel fans entries of each batch across Threads workers. Order
// within a batch is irrelevant for PLR (LWW) and LLR (sorted splicing).
func consumeParallel(opts Options, feed <-chan batchLoad, res *Result, apply func(*wal.Entry) error) error {
	var eo errOnce
	for batch := range feed {
		if batch.err != nil {
			return batch.err
		}
		res.Entries += len(batch.entries)
		var wg sync.WaitGroup
		n := opts.Threads
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(batch.entries); i += n {
					eo.set(apply(batch.entries[i]))
				}
			}(w)
		}
		wg.Wait()
		if err := eo.get(); err != nil {
			return err
		}
	}
	return nil
}

var shuffleSeed = maphash.MakeSeed()

// replayLogicalPartitioned: LLR-P. Writes are shuffled by (table, key) to
// per-thread partitions and each partition reinstalls its keys' writes in
// commit order, latch-free (Section 4.5 / Section 6.2's LLR-P).
func replayLogicalPartitioned(opts Options, feed <-chan batchLoad, res *Result) error {
	n := opts.Threads
	for batch := range feed {
		if batch.err != nil {
			return batch.err
		}
		res.Entries += len(batch.entries)
		// Shuffle phase: per-partition write lists in commit order.
		parts := make([][]partWrite, n)
		for _, e := range batch.entries {
			for i := range e.Writes {
				w := &e.Writes[i]
				p := int(hashTableKey(w.TableID, w.Key) % uint64(n))
				parts[p] = append(parts[p], partWrite{ts: e.TS, w: w})
			}
		}
		// Reinstall phase: latch-free, each key owned by one partition.
		var wg sync.WaitGroup
		var eo errOnce
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for _, pw := range parts[p] {
					t := opts.DB.TableByID(pw.w.TableID)
					if t == nil {
						eo.set(fmt.Errorf("recovery: unknown table %d", pw.w.TableID))
						return
					}
					row, _ := t.GetOrCreateRow(pw.w.Key)
					row.Install(pw.ts, pw.w.After, pw.w.Deleted, false)
				}
			}(p)
		}
		wg.Wait()
		if err := eo.get(); err != nil {
			return err
		}
	}
	return nil
}

type partWrite struct {
	ts engine.TS
	w  *wal.WriteImage
}

func hashTableKey(table int, key uint64) uint64 {
	var h maphash.Hash
	h.SetSeed(shuffleSeed)
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(table) >> (8 * i))
		buf[8+i] = byte(key >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// replaySerialCommand: CLR. One thread re-executes committed transactions
// in commit order; ad-hoc tuple entries reinstall their images.
func replaySerialCommand(opts Options, feed <-chan batchLoad, res *Result) error {
	ex := &serialExec{db: opts.DB}
	for batch := range feed {
		if batch.err != nil {
			return batch.err
		}
		res.Entries += len(batch.entries)
		for _, e := range batch.entries {
			switch e.Kind {
			case wal.EntryCommand:
				c := opts.Registry.ByID(e.ProcID)
				if c == nil {
					return fmt.Errorf("recovery: unknown procedure %d", e.ProcID)
				}
				ex.ts = e.TS
				if err := c.Execute(e.Args, ex); err != nil {
					return err
				}
			case wal.EntryTuple:
				for _, w := range e.Writes {
					t := opts.DB.TableByID(w.TableID)
					row, _ := t.GetOrCreateRow(w.Key)
					row.Install(e.TS, w.After, w.Deleted, false)
				}
			}
		}
	}
	return nil
}

// replayPACMAN: CLR-P through the scheduler.
func replayPACMAN(opts Options, feed <-chan batchLoad, res *Result) error {
	if opts.GDG == nil {
		return fmt.Errorf("recovery: CLR-P requires a GDG")
	}
	r := sched.New(opts.GDG, opts.Registry, opts.DB, sched.Options{
		Threads:   opts.Threads,
		Mode:      opts.Mode,
		Breakdown: opts.Breakdown,
	})
	r.Start()
	for batch := range feed {
		if batch.err != nil {
			r.Finish()
			return batch.err
		}
		res.Entries += len(batch.entries)
		r.Submit(batch.entries)
	}
	return r.Finish()
}

// rebuildIndexes rebuilds every table's primary index from the slab in
// parallel slot ranges (PLR's deferred reconstruction).
func rebuildIndexes(db *engine.Database, threads int) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, threads)
	for _, t := range db.Tables() {
		n := t.NumSlots()
		per := (n + uint64(threads) - 1) / uint64(threads)
		if per == 0 {
			continue
		}
		for lo := uint64(0); lo < n; lo += per {
			hi := lo + per
			wg.Add(1)
			go func(t *engine.Table, lo, hi uint64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				t.ReindexSlots(lo, hi)
			}(t, lo, hi)
		}
	}
	wg.Wait()
}
