// Package recovery implements the five database recovery schemes of the
// paper's evaluation (Section 6.2):
//
//	PLR   — physical log recovery: parallel last-writer-wins replay by
//	        physical address with per-tuple latches; indexes rebuilt in
//	        parallel after replay.
//	LLR   — SiloR-style logical log recovery: parallel replay by key with
//	        per-tuple latches; versions spliced in timestamp order; indexes
//	        built inline; recovered state multi-versioned.
//	LLR-P — PACMAN-adapted logical recovery (Section 4.5): writes shuffled
//	        by (table, key) into per-thread partitions, reinstalled
//	        latch-free in commit order; single-versioned.
//	CLR   — conventional command log recovery: parallel reload, then a
//	        single thread re-executes transactions in commit order.
//	CLR-P — PACMAN: the sched.Replayer with static + dynamic analysis.
//
// Every scheme shares the same two-stage structure: checkpoint recovery
// (restore the latest consistent checkpoint, Section 2.3), then log
// recovery streamed batch-by-batch with parallel file reloading.
package recovery

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/sched"
	"pacman/internal/simdisk"
	"pacman/internal/wal"
)

// Scheme identifies a recovery scheme.
type Scheme int

// The five evaluated schemes, plus Auto. Auto is the zero value: a restart
// that does not pin a scheme resolves it from the logging kind recorded in
// the devices' catalog manifest (see SchemeFor); Run itself rejects Auto —
// callers must resolve it first.
const (
	Auto Scheme = iota
	PLR
	LLR
	LLRP
	CLR
	CLRP
)

func (s Scheme) String() string {
	switch s {
	case Auto:
		return "AUTO"
	case PLR:
		return "PLR"
	case LLR:
		return "LLR"
	case LLRP:
		return "LLR-P"
	case CLR:
		return "CLR"
	case CLRP:
		return "CLR-P"
	}
	return "?"
}

// LogKind returns the logging scheme whose output this recovery scheme
// replays (wal.Off for Auto, which has no kind until resolved).
func (s Scheme) LogKind() wal.Kind {
	switch s {
	case PLR:
		return wal.Physical
	case LLR, LLRP:
		return wal.Logical
	case CLR, CLRP:
		return wal.Command
	default:
		return wal.Off
	}
}

// SchemeFor resolves Auto against a logging kind: the default (safest fully
// servable) scheme per kind — PLR for physical logs, LLR for logical logs
// (multi-versioned recovered state, unlike LLR-P), and CLR-P (PACMAN) for
// command logs. It returns Auto for wal.Off, which has nothing to replay.
func SchemeFor(kind wal.Kind) Scheme {
	switch kind {
	case wal.Physical:
		return PLR
	case wal.Logical:
		return LLR
	case wal.Command:
		return CLRP
	default:
		return Auto
	}
}

// Options configures one recovery run.
type Options struct {
	Scheme   Scheme
	DB       *engine.Database
	Registry *proc.Registry
	// GDG is required for CLR-P.
	GDG     *analysis.GDG
	Devices []*simdisk.Device
	Threads int
	// DisableLatches removes per-tuple latch acquisition in PLR/LLR — the
	// deliberately unsafe configuration of Figure 15 used to isolate the
	// latching bottleneck.
	DisableLatches bool
	// Mode selects the CLR-P parallelism level (Figures 18/19); defaults
	// to Pipelined.
	Mode sched.Mode
	// Breakdown, if set, accumulates the Figure 20 phase split (CLR-P).
	Breakdown *metrics.Breakdown
	// SkipCheckpoint skips checkpoint recovery even if one exists (used by
	// experiments that isolate log recovery).
	SkipCheckpoint bool
	// SerialReload selects the legacy single-feeder reload path: one
	// goroutine reloading batches one at a time. It is the measured
	// baseline for the pipelined reloader and is never faster.
	SerialReload bool
	// ReloadWindow bounds how many batches the pipelined reloader may
	// stage ahead of replay (default 4).
	ReloadWindow int
}

// Result reports the phases of a recovery run, matching the splits the
// paper's figures plot.
type Result struct {
	// Pepoch is the recovered persistent epoch.
	Pepoch uint32
	// ResumeEpoch is the first epoch a restarted instance may commit into:
	// one past the recovery high-water mark (the persistent epoch and, when
	// a checkpoint was restored, its snapshot epoch). Rebasing the epoch
	// clock here keeps every post-restart commit timestamp strictly above
	// every recovered one.
	ResumeEpoch uint32
	// CheckpointID is the id of the restored checkpoint (0 if none); a
	// restarted instance seeds its checkpoint daemon past it so new
	// checkpoints do not collide with — or sort below — recovered ones.
	CheckpointID uint32
	// CheckpointReload is the pure checkpoint file reloading time (Fig 13a).
	CheckpointReload time.Duration
	// CheckpointTotal is the full checkpoint recovery time including row
	// installation and (inline) index building (Fig 13b).
	CheckpointTotal time.Duration
	CheckpointRows  int64
	// LogReload is cumulative time spent reading and decoding log files,
	// summed across the pipeline's readers and decode workers (Fig 14a).
	LogReload time.Duration
	// ReloadWall is the reload pipeline's wall-clock duration. With the
	// pipelined reloader it is far below LogReload because devices are
	// read concurrently and decode overlaps I/O.
	ReloadWall time.Duration
	// ReloadStall is how long replay sat blocked waiting for the next
	// batch — the paper's "recovery time is bounded by load time" claim
	// holds when LogTotal ≈ ReloadStall + replay tail.
	ReloadStall time.Duration
	// ReloadOverlap is the portion of the reload pipeline's wall time
	// that ran concurrently with active replay (ReloadWall - ReloadStall).
	ReloadOverlap time.Duration
	// LogTotal is the overall log recovery duration including replay and,
	// for PLR, the deferred index rebuild (Fig 14b).
	LogTotal time.Duration
	// IndexRebuild is PLR's post-replay index reconstruction component.
	IndexRebuild time.Duration
	Entries      int
	// Filtered counts log entries skipped because a checkpoint already
	// covered them (TS <= checkpoint TS).
	Filtered  int
	LogBytes  int64
	TornFiles int
}

// Run performs a full database recovery. The catalog must already hold the
// workload's schema; when no checkpoint exists the caller must have
// installed the deterministic initial population beforehand.
func Run(opts Options) (*Result, error) {
	if opts.Scheme == Auto {
		return nil, errors.New("recovery: scheme Auto must be resolved before Run (see SchemeFor)")
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.Mode == 0 && opts.Scheme == CLRP {
		opts.Mode = sched.Pipelined
	}
	res := &Result{}

	// Persistent epoch: the durability cut.
	pe, err := wal.ReadPepoch(opts.Devices[0])
	if err != nil {
		if !errors.Is(err, simdisk.ErrNotExist) {
			return nil, err
		}
		pe = 0
	}
	res.Pepoch = pe

	// Stage 1: checkpoint recovery.
	var ckptTS engine.TS
	if !opts.SkipCheckpoint {
		man, err := checkpoint.FindLatest(opts.Devices)
		if err != nil {
			return nil, err
		}
		if man != nil {
			start := time.Now()
			deferIndex := opts.Scheme == PLR
			stats, err := checkpoint.Restore(opts.DB, opts.Devices, man, opts.Threads, deferIndex)
			if err != nil {
				return nil, err
			}
			res.CheckpointTotal = time.Since(start)
			res.CheckpointReload = stats.ReloadTime
			res.CheckpointRows = stats.Rows
			res.CheckpointID = man.ID
			ckptTS = man.TS
		}
	}

	// The resume point: past everything durable, whether it arrived through
	// the log (pepoch) or the checkpoint (whose snapshot epoch may exceed a
	// lagging pepoch).
	res.ResumeEpoch = pe + 1
	if ce := engine.EpochOf(ckptTS); ce >= res.ResumeEpoch {
		res.ResumeEpoch = ce + 1
	}

	// Stage 2: log recovery.
	start := time.Now()
	if err := replayLog(opts, pe, ckptTS, res); err != nil {
		return nil, err
	}
	// PLR rebuilds all indexes at the end of log recovery (Section 2.3).
	if opts.Scheme == PLR {
		ixStart := time.Now()
		rebuildIndexes(opts.DB, opts.Threads)
		res.IndexRebuild = time.Since(ixStart)
	}
	res.LogTotal = time.Since(start)
	if opts.Breakdown != nil {
		// The loading phase of the Figure 20 split is what replay actually
		// paid for data loading — the stall waiting on the reload pipeline —
		// not the summed read+decode work, most of which overlaps replay.
		opts.Breakdown.Add(sched.PhaseLoad, res.ReloadStall)
	}
	return res, nil
}

// feed hands reloaded batches to a replay scheme, accounting the time the
// scheme spends stalled waiting on the reload pipeline. All replay schemes
// consume from the single goroutine that calls next, so Result accumulation
// stays race-free by construction.
type feed struct {
	ch    <-chan wal.Batch
	stall metrics.DurationSum
}

// next blocks for the next batch, charging the wait to the stall account.
func (f *feed) next() (wal.Batch, bool) {
	t0 := time.Now()
	b, ok := <-f.ch
	f.stall.AddSince(t0)
	return b, ok
}

// each drains the feed, accounting replayed entries into res and applying
// fn to every batch; it stops on a feed error or the first fn error.
func (f *feed) each(res *Result, fn func([]*wal.Entry) error) error {
	for {
		batch, ok := f.next()
		if !ok {
			return nil
		}
		if batch.Err != nil {
			return batch.Err
		}
		res.Entries += len(batch.Entries)
		if err := fn(batch.Entries); err != nil {
			return err
		}
	}
}

// replayLog streams batches through the reload pipeline into the
// scheme-specific consumer: per-device readers and a shared decode pool
// reload batch N+1..N+k while the consumer replays batch N.
func replayLog(opts Options, pepoch uint32, ckptTS engine.TS, res *Result) error {
	if opts.SerialReload {
		return replayLogSerial(opts, pepoch, ckptTS, res)
	}
	rl, err := wal.NewReloader(opts.Devices, wal.ReloadOptions{
		Pepoch:        pepoch,
		CkptTS:        ckptTS,
		DecodeWorkers: opts.Threads,
		Window:        opts.ReloadWindow,
	})
	if err != nil {
		return err
	}
	defer rl.Abort()
	f := &feed{ch: rl.Batches()}
	replayErr := dispatch(opts, f, res)
	// The pipeline's counters are atomics; on the normal path the stream
	// has closed and they are final, on the error path they are a valid
	// partial account.
	st := rl.Stats()
	res.LogReload = st.ReadTime + st.DecodeTime
	res.ReloadWall = st.Wall
	res.LogBytes = st.Bytes
	res.TornFiles = st.TornFiles
	res.Filtered = st.Filtered
	finishStallAccounting(res, f)
	return replayErr
}

// replayLogSerial is the legacy baseline: one goroutine reloads batches one
// at a time into a shallow channel. The producer-local stats need no
// synchronization: they are read only after the drain loop observes the
// channel close, which happens-after every producer write.
func replayLogSerial(opts Options, pepoch uint32, ckptTS engine.TS, res *Result) error {
	batches, err := wal.Discover(opts.Devices)
	if err != nil {
		return err
	}
	ch := make(chan wal.Batch, 2)
	var abort atomic.Bool
	var reloadWork, reloadWall time.Duration
	var bytes int64
	var torn, filtered int
	go func() {
		defer close(ch)
		start := time.Now()
		defer func() { reloadWall = time.Since(start) }()
		for _, bf := range batches {
			// A failed replay stops consuming; don't reload what nobody
			// will ever replay.
			if abort.Load() {
				return
			}
			entries, stats, err := wal.ReloadBatch(bf, pepoch, ckptTS, opts.Threads)
			reloadWork += stats.ReadTime + stats.DecodeTime
			bytes += stats.Bytes
			torn += stats.TornFiles
			filtered += stats.Filtered
			ch <- wal.Batch{Batch: bf.Batch, Entries: entries, Err: err}
			if err != nil {
				return
			}
		}
	}()
	f := &feed{ch: ch}
	replayErr := dispatch(opts, f, res)
	abort.Store(true)
	// Drain so the producer always exits; only then are its stats final.
	for range ch {
	}
	res.LogReload = reloadWork
	res.ReloadWall = reloadWall
	res.LogBytes = bytes
	res.TornFiles = torn
	res.Filtered = filtered
	finishStallAccounting(res, f)
	return replayErr
}

// finishStallAccounting derives the stall/overlap split of one reload
// pipeline run.
func finishStallAccounting(res *Result, f *feed) {
	res.ReloadStall = f.stall.Load()
	res.ReloadOverlap = res.ReloadWall - res.ReloadStall
	if res.ReloadOverlap < 0 {
		res.ReloadOverlap = 0
	}
}

// dispatch routes the feed to the scheme's consumer.
func dispatch(opts Options, f *feed, res *Result) error {
	switch opts.Scheme {
	case PLR:
		return replayPhysical(opts, f, res)
	case LLR:
		return replayLogical(opts, f, res)
	case LLRP:
		return replayLogicalPartitioned(opts, f, res)
	case CLR:
		return replaySerialCommand(opts, f, res)
	case CLRP:
		return replayPACMAN(opts, f, res)
	default:
		return fmt.Errorf("recovery: unknown scheme %v", opts.Scheme)
	}
}

// replayPhysical: last-writer-wins by physical slot, latched, parallel
// across entries; indexes deferred.
func replayPhysical(opts Options, f *feed, res *Result) error {
	return consumeParallel(opts, f, res, func(e *wal.Entry) error {
		for _, w := range e.Writes {
			t := opts.DB.TableByID(w.TableID)
			if t == nil {
				return fmt.Errorf("recovery: unknown table %d", w.TableID)
			}
			row := t.PlaceRowAt(w.Slot, w.Key)
			if !opts.DisableLatches {
				row.Lock()
			}
			row.InstallLWW(e.TS, w.After, w.Deleted)
			if !opts.DisableLatches {
				row.Unlock()
			}
		}
		return nil
	})
}

// replayLogical: SiloR-style parallel replay by key with latches and
// timestamp-sorted version splicing; index built inline.
func replayLogical(opts Options, f *feed, res *Result) error {
	return consumeParallel(opts, f, res, func(e *wal.Entry) error {
		for _, w := range e.Writes {
			t := opts.DB.TableByID(w.TableID)
			if t == nil {
				return fmt.Errorf("recovery: unknown table %d", w.TableID)
			}
			row, _ := t.GetOrCreateRow(w.Key)
			if !opts.DisableLatches {
				row.Lock()
			}
			row.InsertVersionSorted(e.TS, w.After, w.Deleted)
			if !opts.DisableLatches {
				row.Unlock()
			}
		}
		return nil
	})
}

// errOnce records the first error across workers.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// consumeParallel fans entries of each batch across Threads workers. Order
// within a batch is irrelevant for PLR (LWW) and LLR (sorted splicing).
func consumeParallel(opts Options, f *feed, res *Result, apply func(*wal.Entry) error) error {
	var eo errOnce
	return f.each(res, func(entries []*wal.Entry) error {
		var wg sync.WaitGroup
		n := opts.Threads
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(entries); i += n {
					eo.set(apply(entries[i]))
				}
			}(w)
		}
		wg.Wait()
		return eo.get()
	})
}

var shuffleSeed = maphash.MakeSeed()

// replayLogicalPartitioned: LLR-P. Writes are shuffled by (table, key) to
// per-thread partitions and each partition reinstalls its keys' writes in
// commit order, latch-free (Section 4.5 / Section 6.2's LLR-P).
func replayLogicalPartitioned(opts Options, f *feed, res *Result) error {
	n := opts.Threads
	return f.each(res, func(entries []*wal.Entry) error {
		// Shuffle phase: per-partition write lists in commit order.
		parts := make([][]partWrite, n)
		for _, e := range entries {
			for i := range e.Writes {
				w := &e.Writes[i]
				p := int(hashTableKey(w.TableID, w.Key) % uint64(n))
				parts[p] = append(parts[p], partWrite{ts: e.TS, w: w})
			}
		}
		// Reinstall phase: latch-free, each key owned by one partition.
		var wg sync.WaitGroup
		var eo errOnce
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for _, pw := range parts[p] {
					t := opts.DB.TableByID(pw.w.TableID)
					if t == nil {
						eo.set(fmt.Errorf("recovery: unknown table %d", pw.w.TableID))
						return
					}
					row, _ := t.GetOrCreateRow(pw.w.Key)
					row.Install(pw.ts, pw.w.After, pw.w.Deleted, false)
				}
			}(p)
		}
		wg.Wait()
		return eo.get()
	})
}

type partWrite struct {
	ts engine.TS
	w  *wal.WriteImage
}

func hashTableKey(table int, key uint64) uint64 {
	var h maphash.Hash
	h.SetSeed(shuffleSeed)
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(table) >> (8 * i))
		buf[8+i] = byte(key >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// replaySerialCommand: CLR. One thread re-executes committed transactions
// in commit order; ad-hoc tuple entries reinstall their images.
func replaySerialCommand(opts Options, f *feed, res *Result) error {
	ex := &serialExec{db: opts.DB}
	return f.each(res, func(entries []*wal.Entry) error {
		for _, e := range entries {
			switch e.Kind {
			case wal.EntryCommand:
				c := opts.Registry.ByID(e.ProcID)
				if c == nil {
					return fmt.Errorf("recovery: unknown procedure %d", e.ProcID)
				}
				ex.ts = e.TS
				if err := c.Execute(e.Args, ex); err != nil {
					return err
				}
			case wal.EntryTuple:
				for _, w := range e.Writes {
					t := opts.DB.TableByID(w.TableID)
					row, _ := t.GetOrCreateRow(w.Key)
					row.Install(e.TS, w.After, w.Deleted, false)
				}
			}
		}
		return nil
	})
}

// replayPACMAN: CLR-P through the scheduler, batches submitted incrementally
// in epoch order as the reload pipeline delivers them.
func replayPACMAN(opts Options, f *feed, res *Result) error {
	if opts.GDG == nil {
		return fmt.Errorf("recovery: CLR-P requires a GDG")
	}
	r := sched.New(opts.GDG, opts.Registry, opts.DB, sched.Options{
		Threads:   opts.Threads,
		Mode:      opts.Mode,
		Breakdown: opts.Breakdown,
	})
	n, err := r.Consume(f.ch, &f.stall)
	res.Entries += n
	return err
}

// rebuildIndexes rebuilds every table's primary index from the slab in
// parallel slot ranges (PLR's deferred reconstruction).
func rebuildIndexes(db *engine.Database, threads int) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, threads)
	for _, t := range db.Tables() {
		n := t.NumSlots()
		per := (n + uint64(threads) - 1) / uint64(threads)
		if per == 0 {
			continue
		}
		for lo := uint64(0); lo < n; lo += per {
			hi := lo + per
			wg.Add(1)
			go func(t *engine.Table, lo, hi uint64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				t.ReindexSlots(lo, hi)
			}(t, lo, hi)
		}
	}
	wg.Wait()
}
