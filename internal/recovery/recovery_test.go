package recovery

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/engine"
	"pacman/internal/sched"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// fixture is a complete logging run: live database, devices holding logs
// (and optionally a checkpoint), plus release tracking.
type fixture struct {
	bank     *workload.Bank
	mgr      *txn.Manager
	devices  []*simdisk.Device
	logset   *wal.LogSet
	released []engine.TS
	relMu    sync.Mutex
}

// buildGDG constructs the bank GDG for a fresh bank instance.
func buildGDG(b *workload.Bank) *analysis.GDG {
	return analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
}

// runFixture executes n transactions under the given logging kind.
// cleanShutdown retires workers and flushes everything; otherwise the run
// stops abruptly with unflushed commits (for crash tests). withCkpt takes a
// checkpoint after roughly half of the transactions.
func runFixture(t testing.TB, kind wal.Kind, n int, adhocPct int, cleanShutdown, withCkpt bool, seed int64) *fixture {
	t.Helper()
	f := &fixture{bank: workload.NewBank(60)}
	f.bank.Populate(workload.DirectPopulate{})
	f.mgr = txn.NewManager(f.bank.DB(), txn.DefaultConfig())
	f.devices = []*simdisk.Device{
		simdisk.New("ssd0", simdisk.Unlimited()),
		simdisk.New("ssd1", simdisk.Unlimited()),
	}
	cfg := wal.DefaultConfig(kind)
	cfg.BatchEpochs = 3
	cfg.FlushInterval = 100 * time.Microsecond
	cfg.OnRelease = func(cs []*txn.Committed) {
		f.relMu.Lock()
		for _, c := range cs {
			f.released = append(f.released, c.TS)
		}
		f.relMu.Unlock()
	}
	f.logset = wal.NewLogSet(f.mgr, cfg, f.devices)
	w := f.mgr.NewWorker()
	f.logset.AttachWorker(w)
	f.logset.Start()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		tx := f.bank.Generate(rng)
		adhoc := rng.Intn(100) < adhocPct
		if _, err := w.Execute(tx.Proc, tx.Args, adhoc, time.Now()); err != nil {
			t.Fatal(err)
		}
		if i%11 == 10 {
			f.mgr.AdvanceEpoch()
			w.Heartbeat()
		}
		if withCkpt && i == n/2 {
			f.mgr.AdvanceEpoch()
			w.Heartbeat()
			ckCfg := checkpoint.Config{Threads: 2, IncludeSlots: kind == wal.Physical}
			se := f.mgr.SafeEpoch()
			if _, err := checkpoint.Write(f.bank.DB(), f.devices, ckCfg, 1,
				engine.MakeTS(se, ^uint32(0))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if cleanShutdown {
		w.Retire()
		f.mgr.AdvanceEpoch()
		f.logset.Close()
	}
	return f
}

// recoverInto recovers a fresh bank database from the fixture's devices.
func recoverInto(t testing.TB, f *fixture, scheme Scheme, threads int, opts func(*Options)) (*workload.Bank, *Result) {
	t.Helper()
	b := workload.NewBank(60)
	b.Populate(workload.DirectPopulate{})
	o := Options{
		Scheme:   scheme,
		DB:       b.DB(),
		Registry: b.Registry(),
		Devices:  f.devices,
		Threads:  threads,
	}
	if scheme == CLRP {
		o.GDG = buildGDG(b)
	}
	if opts != nil {
		opts(&o)
	}
	res, err := Run(o)
	if err != nil {
		t.Fatalf("%v recovery: %v", scheme, err)
	}
	return b, res
}

// snapshotState captures all visible rows per table.
func snapshotState(db *engine.Database) map[string]map[uint64]string {
	out := make(map[string]map[uint64]string)
	for _, t := range db.Tables() {
		m := make(map[uint64]string)
		t.ScanSlots(0, t.NumSlots(), func(r *engine.Row) {
			if d := r.LatestData(); d != nil {
				m[r.Key] = d.String()
			}
		})
		out[t.Name()] = m
	}
	return out
}

func sameState(t *testing.T, want, got map[string]map[uint64]string, label string) {
	t.Helper()
	for tab, rows := range want {
		if len(got[tab]) != len(rows) {
			t.Errorf("%s: table %s rows %d, want %d", label, tab, len(got[tab]), len(rows))
			return
		}
		for k, v := range rows {
			if got[tab][k] != v {
				t.Errorf("%s: table %s key %d = %s, want %s", label, tab, k, got[tab][k], v)
				return
			}
		}
	}
}

// TestCleanCrashAllSchemes: with everything durable, every scheme must
// rebuild exactly the live pre-crash state.
func TestCleanCrashAllSchemes(t *testing.T) {
	cases := []struct {
		scheme Scheme
		kind   wal.Kind
	}{
		{PLR, wal.Physical},
		{LLR, wal.Logical},
		{LLRP, wal.Logical},
		{CLR, wal.Command},
		{CLRP, wal.Command},
	}
	for _, c := range cases {
		f := runFixture(t, c.kind, 400, 0, true, false, 11)
		want := snapshotState(f.bank.DB())
		f.mgr.Stop()
		for _, d := range f.devices {
			d.Crash()
		}
		for _, threads := range []int{1, 4} {
			got, res := recoverInto(t, f, c.scheme, threads, nil)
			if res.Entries != 400 {
				t.Fatalf("%v: replayed %d entries", c.scheme, res.Entries)
			}
			sameState(t, want, snapshotState(got.DB()), c.scheme.String())
		}
	}
}

// TestTornCrashDurabilityInvariant: crash without flushing the tail. Every
// released transaction must survive; the recovered state must equal the
// serial ground truth over the durable prefix.
func TestTornCrashDurabilityInvariant(t *testing.T) {
	f := runFixture(t, wal.Command, 500, 0, false, false, 13)
	// Abrupt crash: the pipeline halts without a final flush, then the
	// devices lose their unsynced tails.
	f.logset.Abort()
	for _, d := range f.devices {
		d.Crash()
	}
	f.relMu.Lock()
	released := append([]engine.TS(nil), f.released...)
	f.relMu.Unlock()

	gotCLR, resCLR := recoverInto(t, f, CLR, 1, nil)
	gotP, resP := recoverInto(t, f, CLRP, 4, nil)
	if resCLR.Entries != resP.Entries {
		t.Fatalf("CLR replayed %d, CLR-P %d", resCLR.Entries, resP.Entries)
	}
	sameState(t, snapshotState(gotCLR.DB()), snapshotState(gotP.DB()), "CLR vs CLR-P after torn crash")

	// Durability: every released TS must be at or below the recovered cut.
	pe := resCLR.Pepoch
	for _, ts := range released {
		if engine.EpochOf(ts) > pe {
			t.Fatalf("released txn in epoch %d beyond recovered pepoch %d", engine.EpochOf(ts), pe)
		}
	}
	if len(released) > resCLR.Entries {
		t.Fatalf("released %d txns but only %d recovered", len(released), resCLR.Entries)
	}
}

// TestRecoveryWithCheckpoint: checkpoint mid-run; recovery = checkpoint +
// log suffix must equal the live state, for every scheme.
func TestRecoveryWithCheckpoint(t *testing.T) {
	cases := []struct {
		scheme Scheme
		kind   wal.Kind
	}{
		{PLR, wal.Physical},
		{LLR, wal.Logical},
		{LLRP, wal.Logical},
		{CLR, wal.Command},
		{CLRP, wal.Command},
	}
	for _, c := range cases {
		f := runFixture(t, c.kind, 400, 0, true, true, 17)
		want := snapshotState(f.bank.DB())
		f.mgr.Stop()
		for _, d := range f.devices {
			d.Crash()
		}
		got, res := recoverInto(t, f, c.scheme, 4, nil)
		if res.CheckpointRows == 0 {
			t.Fatalf("%v: checkpoint not restored", c.scheme)
		}
		if res.Entries >= 400 {
			t.Fatalf("%v: checkpoint did not reduce replayed entries (%d)", c.scheme, res.Entries)
		}
		sameState(t, want, snapshotState(got.DB()), c.scheme.String()+"+ckpt")
	}
}

// TestRecoveryWithAdHocMix: command logging with ad-hoc transactions — the
// unified replay of Section 4.5.
func TestRecoveryWithAdHocMix(t *testing.T) {
	for _, pct := range []int{20, 100} {
		f := runFixture(t, wal.Command, 300, pct, true, false, int64(19+pct))
		want := snapshotState(f.bank.DB())
		f.mgr.Stop()
		for _, d := range f.devices {
			d.Crash()
		}
		got, _ := recoverInto(t, f, CLRP, 4, nil)
		sameState(t, want, snapshotState(got.DB()), "ad-hoc mix")
	}
}

// TestCLRPModes: the three scheduler modes agree.
func TestCLRPModes(t *testing.T) {
	f := runFixture(t, wal.Command, 300, 10, true, false, 23)
	want := snapshotState(f.bank.DB())
	f.mgr.Stop()
	for _, d := range f.devices {
		d.Crash()
	}
	for _, mode := range []sched.Mode{sched.StaticOnly, sched.Synchronous, sched.Pipelined} {
		got, _ := recoverInto(t, f, CLRP, 4, func(o *Options) { o.Mode = mode })
		sameState(t, want, snapshotState(got.DB()), "mode "+mode.String())
	}
}

// TestNoLatchSingleThread: the Figure 15 no-latch configuration is correct
// with one thread (it only removes latch overhead, not ordering).
func TestNoLatchSingleThread(t *testing.T) {
	for _, c := range []struct {
		scheme Scheme
		kind   wal.Kind
	}{{PLR, wal.Physical}, {LLR, wal.Logical}} {
		f := runFixture(t, c.kind, 200, 0, true, false, 29)
		want := snapshotState(f.bank.DB())
		f.mgr.Stop()
		got, _ := recoverInto(t, f, c.scheme, 1, func(o *Options) { o.DisableLatches = true })
		sameState(t, want, snapshotState(got.DB()), c.scheme.String()+" no-latch")
	}
}

// TestLLRMultiVersionState: LLR rebuilds version chains, not just heads.
func TestLLRMultiVersionState(t *testing.T) {
	f := runFixture(t, wal.Logical, 300, 0, true, false, 31)
	f.mgr.Stop()
	got, _ := recoverInto(t, f, LLR, 4, nil)
	// Some frequently-updated account must carry more than one version.
	maxVersions := 0
	cur := got.DB().Table("Current")
	cur.ScanSlots(0, cur.NumSlots(), func(r *engine.Row) {
		if n := r.VersionCount(); n > maxVersions {
			maxVersions = n
		}
	})
	if maxVersions < 2 {
		t.Errorf("LLR state is single-versioned (max chain %d)", maxVersions)
	}
}

// TestSchemeMetadata covers the small helpers.
func TestSchemeMetadata(t *testing.T) {
	if PLR.LogKind() != wal.Physical || LLR.LogKind() != wal.Logical ||
		LLRP.LogKind() != wal.Logical || CLR.LogKind() != wal.Command ||
		CLRP.LogKind() != wal.Command {
		t.Error("LogKind mapping wrong")
	}
	names := map[Scheme]string{PLR: "PLR", LLR: "LLR", LLRP: "LLR-P", CLR: "CLR", CLRP: "CLR-P"}
	for s, n := range names {
		if s.String() != n {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
}

// TestBreakdownViaRecovery: Figure 20 instrumentation through the full
// recovery path.
func TestBreakdownViaRecovery(t *testing.T) {
	f := runFixture(t, wal.Command, 200, 0, true, false, 37)
	f.mgr.Stop()
	bd := sched.NewBreakdown()
	_, res := recoverInto(t, f, CLRP, 2, func(o *Options) { o.Breakdown = bd })
	if bd.Get(sched.PhaseWork) == 0 || bd.Get(sched.PhaseLoad) == 0 {
		t.Errorf("breakdown incomplete: %+v", bd.Shares())
	}
	// LogReload sums read+decode across concurrent workers, so it may
	// exceed wall time; the wall-clock invariant holds for ReloadWall.
	if res.LogReload == 0 || res.LogTotal < res.ReloadWall {
		t.Errorf("reload/total times inconsistent: work %v, wall %v, total %v",
			res.LogReload, res.ReloadWall, res.LogTotal)
	}
}

// TestEmptyLogRecovery: recovery with no log files and no checkpoint leaves
// the populated initial state intact.
func TestEmptyLogRecovery(t *testing.T) {
	b := workload.NewBank(10)
	b.Populate(workload.DirectPopulate{})
	want := snapshotState(b.DB())
	b2 := workload.NewBank(10)
	b2.Populate(workload.DirectPopulate{})
	res, err := Run(Options{
		Scheme:   CLRP,
		DB:       b2.DB(),
		Registry: b2.Registry(),
		GDG:      buildGDG(b2),
		Devices:  []*simdisk.Device{simdisk.New("d", simdisk.Unlimited())},
		Threads:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != 0 {
		t.Errorf("entries = %d", res.Entries)
	}
	sameState(t, want, snapshotState(b2.DB()), "empty log")
}

// randomCrashProperty runs the strongest invariant at several random crash
// points: whatever the crash timing, recovery equals the serial ground
// truth of the durable prefix, and released transactions survive.
func TestRandomCrashPointsProperty(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		seed := int64(100 + trial)
		n := 150 + trial*60
		f := runFixture(t, wal.Command, n, 15, false, false, seed)
		// Crash at an arbitrary moment: give loggers a random head start.
		time.Sleep(time.Duration(trial) * time.Millisecond)
		f.logset.Abort()
		for _, d := range f.devices {
			d.Crash()
		}
		f.mgr.Stop()

		gotA, resA := recoverInto(t, f, CLR, 1, nil)
		gotB, resB := recoverInto(t, f, CLRP, 4, nil)
		if resA.Entries != resB.Entries {
			t.Fatalf("trial %d: CLR %d entries, CLR-P %d", trial, resA.Entries, resB.Entries)
		}
		sameState(t, snapshotState(gotA.DB()), snapshotState(gotB.DB()), "trial")

		f.relMu.Lock()
		released := len(f.released)
		f.relMu.Unlock()
		if released > resA.Entries {
			t.Fatalf("trial %d: %d released but only %d recovered", trial, released, resA.Entries)
		}
	}
}
