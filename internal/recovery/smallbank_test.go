package recovery

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

func smallbankGDG(s *workload.Smallbank) *analysis.GDG {
	var ldgs []*analysis.LDG
	for _, p := range s.LoggingProcs() {
		ldgs = append(ldgs, analysis.BuildLDG(p))
	}
	return analysis.BuildGDG(ldgs)
}

// TestSmallbankRecoveryEquivalence runs the full Smallbank mix (guards,
// aborts, ad-hoc) under command logging and checks CLR and CLR-P rebuild
// the identical state.
func TestSmallbankRecoveryEquivalence(t *testing.T) {
	cfg := workload.SmallbankConfig{Customers: 200, HotspotPct: 25}
	live := workload.NewSmallbank(cfg)
	live.Populate(workload.DirectPopulate{})
	m := txn.NewManager(live.DB(), txn.DefaultConfig())
	devs := []*simdisk.Device{simdisk.New("d", simdisk.Unlimited())}
	wcfg := wal.DefaultConfig(wal.Command)
	wcfg.BatchEpochs = 3
	wcfg.FlushInterval = 100 * time.Microsecond
	ls := wal.NewLogSet(m, wcfg, devs)
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		tx := live.Generate(rng)
		adhoc := rng.Intn(100) < 20 && !tx.ReadOnly
		if _, err := w.Execute(tx.Proc, tx.Args, adhoc, time.Now()); err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				continue
			}
			t.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
		if i%17 == 16 {
			m.AdvanceEpoch()
			w.Heartbeat()
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	m.Stop()
	want := snapshotState(live.DB())
	for _, d := range devs {
		d.Crash()
	}

	recover := func(scheme Scheme, threads int) map[string]map[uint64]string {
		fresh := workload.NewSmallbank(cfg)
		fresh.Populate(workload.DirectPopulate{})
		o := Options{
			Scheme:   scheme,
			DB:       fresh.DB(),
			Registry: fresh.Registry(),
			Devices:  devs,
			Threads:  threads,
		}
		if scheme == CLRP {
			o.GDG = smallbankGDG(fresh)
		}
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		return snapshotState(fresh.DB())
	}

	sameState(t, want, recover(CLR, 1), "smallbank CLR")
	for _, threads := range []int{1, 2, 4, 8} {
		sameState(t, want, recover(CLRP, threads), "smallbank CLR-P")
	}
}

// TestTPCCRecoveryEquivalence is the paper's primary workload end to end:
// the full TPC-C mix (inserts, deletes, loops, aborts) under command
// logging, recovered by CLR and CLR-P.
func TestTPCCRecoveryEquivalence(t *testing.T) {
	cfg := workload.TPCCConfig{
		Warehouses: 2, DistrictsPerWH: 2, CustomersPerDistrict: 10,
		Items: 40, InitOrdersPerDistrict: 10, LinesPerOrder: 3, InvalidItemPct: 2,
	}
	live := workload.NewTPCC(cfg)
	live.Populate(workload.DirectPopulate{})
	m := txn.NewManager(live.DB(), txn.DefaultConfig())
	devs := []*simdisk.Device{simdisk.New("d", simdisk.Unlimited())}
	wcfg := wal.DefaultConfig(wal.Command)
	wcfg.BatchEpochs = 2
	wcfg.FlushInterval = 100 * time.Microsecond
	ls := wal.NewLogSet(m, wcfg, devs)
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1500; i++ {
		tx := live.Generate(rng)
		if _, err := w.Execute(tx.Proc, tx.Args, false, time.Now()); err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				continue
			}
			t.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
		if i%13 == 12 {
			m.AdvanceEpoch()
			w.Heartbeat()
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	m.Stop()
	want := snapshotState(live.DB())
	devs[0].Crash()

	recover := func(scheme Scheme, threads int) map[string]map[uint64]string {
		fresh := workload.NewTPCC(cfg)
		fresh.Populate(workload.DirectPopulate{})
		o := Options{
			Scheme:   scheme,
			DB:       fresh.DB(),
			Registry: fresh.Registry(),
			Devices:  devs,
			Threads:  threads,
		}
		if scheme == CLRP {
			var ldgs []*analysis.LDG
			for _, p := range fresh.LoggingProcs() {
				ldgs = append(ldgs, analysis.BuildLDG(p))
			}
			o.GDG = analysis.BuildGDG(ldgs)
		}
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		return snapshotState(fresh.DB())
	}

	sameState(t, want, recover(CLR, 1), "tpcc CLR")
	for _, threads := range []int{2, 6} {
		sameState(t, want, recover(CLRP, threads), "tpcc CLR-P")
	}
}

// TestTPCCAllTupleSchemes: PLR / LLR / LLR-P over the TPC-C mix.
func TestTPCCAllTupleSchemes(t *testing.T) {
	cfg := workload.TPCCConfig{
		Warehouses: 1, DistrictsPerWH: 2, CustomersPerDistrict: 10,
		Items: 30, InitOrdersPerDistrict: 8, LinesPerOrder: 3, InvalidItemPct: 1,
	}
	for _, c := range []struct {
		scheme Scheme
		kind   wal.Kind
	}{{PLR, wal.Physical}, {LLR, wal.Logical}, {LLRP, wal.Logical}} {
		live := workload.NewTPCC(cfg)
		live.Populate(workload.DirectPopulate{})
		m := txn.NewManager(live.DB(), txn.DefaultConfig())
		devs := []*simdisk.Device{simdisk.New("d", simdisk.Unlimited())}
		wcfg := wal.DefaultConfig(c.kind)
		wcfg.BatchEpochs = 2
		wcfg.FlushInterval = 100 * time.Microsecond
		ls := wal.NewLogSet(m, wcfg, devs)
		w := m.NewWorker()
		ls.AttachWorker(w)
		ls.Start()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 800; i++ {
			tx := live.Generate(rng)
			if _, err := w.Execute(tx.Proc, tx.Args, false, time.Now()); err != nil {
				if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
					continue
				}
				t.Fatal(err)
			}
			if i%9 == 8 {
				m.AdvanceEpoch()
				w.Heartbeat()
			}
		}
		w.Retire()
		m.AdvanceEpoch()
		ls.Close()
		m.Stop()
		want := snapshotState(live.DB())
		devs[0].Crash()

		fresh := workload.NewTPCC(cfg)
		fresh.Populate(workload.DirectPopulate{})
		if _, err := Run(Options{
			Scheme: c.scheme, DB: fresh.DB(), Registry: fresh.Registry(),
			Devices: devs, Threads: 4,
		}); err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		sameState(t, want, snapshotState(fresh.DB()), "tpcc "+c.scheme.String())
		// PLR must have rebuilt the indexes.
		if c.scheme == PLR {
			for _, tab := range fresh.DB().Tables() {
				liveLen := live.DB().Table(tab.Name()).IndexLen()
				if tab.IndexLen() != liveLen {
					t.Errorf("PLR: table %s index %d, want %d", tab.Name(), tab.IndexLen(), liveLen)
				}
			}
		}
	}
}

var _ = engine.MakeTS // keep engine import if assertions above change
