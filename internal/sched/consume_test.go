package sched

import (
	"errors"
	"testing"

	"pacman/internal/analysis"
	"pacman/internal/metrics"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

func bankReplayer(t testing.TB, accounts int, mode Mode, threads int) (*workload.Bank, *Replayer) {
	t.Helper()
	b := workload.NewBank(accounts)
	b.Populate(workload.DirectPopulate{})
	gdg := analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
	return b, New(gdg, b.Registry(), b.DB(), Options{Threads: threads, Mode: mode})
}

// TestConsumeFeed drives the replayer through the streaming handoff the
// reload pipeline uses: incremental epoch-ordered batches over a channel.
func TestConsumeFeed(t *testing.T) {
	live, entries := runBankWorkload(t, 40, 300, 11)
	for _, mode := range []Mode{StaticOnly, Synchronous, Pipelined} {
		b, r := bankReplayer(t, 40, mode, 2)
		feed := make(chan wal.Batch)
		go func() {
			defer close(feed)
			const batchSize = 25
			for lo := 0; lo < len(entries); lo += batchSize {
				hi := lo + batchSize
				if hi > len(entries) {
					hi = len(entries)
				}
				feed <- wal.Batch{Batch: uint32(lo / batchSize), Entries: entries[lo:hi]}
			}
		}()
		n, err := r.Consume(feed, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if n != len(entries) {
			t.Fatalf("%v: consumed %d entries, want %d", mode, n, len(entries))
		}
		diffStates(t, snapshotState(live.DB()), snapshotState(b.DB()), mode.String())
	}
}

// TestConsumeFeedError: a feed error must abort the replay and surface.
func TestConsumeFeedError(t *testing.T) {
	_, entries := runBankWorkload(t, 40, 60, 12)
	_, r := bankReplayer(t, 40, Pipelined, 2)
	bang := errors.New("device exploded")
	feed := make(chan wal.Batch, 2)
	feed <- wal.Batch{Batch: 0, Entries: entries[:10]}
	feed <- wal.Batch{Batch: 1, Err: bang}
	close(feed)
	var stall metrics.DurationSum
	n, err := r.Consume(feed, &stall)
	if !errors.Is(err, bang) {
		t.Fatalf("err = %v, want %v", err, bang)
	}
	if n != 10 {
		t.Fatalf("consumed %d entries before the error, want 10", n)
	}
	if stall.Load() <= 0 {
		t.Fatal("stall accumulator never charged")
	}
}
