// Package sched implements PACMAN's recovery runtime (Sections 4.2-4.4):
// per-log-batch execution schedules instantiated from the global dependency
// graph, coarse-grained piece-set coordination, fine-grained intra-batch
// parallelism from runtime key spaces, and pipelined inter-batch execution.
package sched

import (
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// installExec applies operations directly to the storage engine with no
// latching: the schedule guarantees exclusive key access (Section 4.3.1's
// latch-free property), so installation is a plain store.
type installExec struct {
	ts     engine.TS
	retain bool // keep version chains (multi-version recovery state)
}

// Read returns the currently replayed value of the row.
func (e *installExec) Read(t *engine.Table, key uint64) (tuple.Tuple, error) {
	row, ok := t.GetRow(key)
	if !ok {
		return nil, nil
	}
	return row.LatestData(), nil
}

// Write merges column updates over the row's replayed state.
func (e *installExec) Write(t *engine.Table, key uint64, up []proc.ColUpdate) error {
	row, _ := t.GetOrCreateRow(key)
	base := row.LatestData()
	next := make(tuple.Tuple, t.Schema().NumColumns())
	copy(next, base)
	for _, u := range up {
		if u.Col < len(next) {
			next[u.Col] = u.Val
		}
	}
	row.Install(e.ts, next, false, e.retain)
	return nil
}

// Insert stores a full row image.
func (e *installExec) Insert(t *engine.Table, key uint64, vals tuple.Tuple) error {
	row, _ := t.GetOrCreateRow(key)
	row.Install(e.ts, vals.Clone(), false, e.retain)
	return nil
}

// Delete installs a tombstone.
func (e *installExec) Delete(t *engine.Table, key uint64) error {
	row, ok := t.GetRow(key)
	if !ok {
		return nil
	}
	row.Install(e.ts, nil, true, e.retain)
	return nil
}
