package sched

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// tpccEntries produces a TPC-C command log for replay benchmarks.
func tpccEntries(tb testing.TB, n int) (workload.TPCCConfig, []*wal.Entry) {
	cfg := workload.TPCCConfig{
		Warehouses: 2, DistrictsPerWH: 4, CustomersPerDistrict: 50,
		Items: 200, InitOrdersPerDistrict: 20, LinesPerOrder: 5, InvalidItemPct: 1,
	}
	live := workload.NewTPCC(cfg)
	live.Populate(workload.DirectPopulate{})
	m := txn.NewManager(live.DB(), txn.DefaultConfig())
	devs := []*simdisk.Device{simdisk.New("d", simdisk.Unlimited())}
	wcfg := wal.DefaultConfig(wal.Command)
	wcfg.FlushInterval = 100 * time.Microsecond
	ls := wal.NewLogSet(m, wcfg, devs)
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		tx := live.Generate(rng)
		if _, err := w.Execute(tx.Proc, tx.Args, false, time.Now()); err != nil {
			if tx.MayAbort && errors.Is(err, proc.ErrAborted) {
				continue
			}
			tb.Fatal(err)
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	m.Stop()
	entries, _, err := wal.ReloadAll(devs, ls.PersistedEpoch(), 1)
	if err != nil {
		tb.Fatal(err)
	}
	return cfg, entries
}

func tpccGDG(cfg workload.TPCCConfig) (*workload.TPCC, *analysis.GDG) {
	fresh := workload.NewTPCC(cfg)
	fresh.Populate(workload.DirectPopulate{})
	var ldgs []*analysis.LDG
	for _, p := range fresh.LoggingProcs() {
		ldgs = append(ldgs, analysis.BuildLDG(p))
	}
	return fresh, analysis.BuildGDG(ldgs)
}

// BenchmarkReplayTPCCSerial measures serial re-execution (CLR's replay
// inner loop) as the baseline.
func BenchmarkReplayTPCCSerial(b *testing.B) {
	cfg, entries := tpccEntries(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := workload.NewTPCC(cfg)
		b.StopTimer()
		fresh.Populate(workload.DirectPopulate{})
		b.StartTimer()
		for _, e := range entries {
			c := fresh.Registry().ByID(e.ProcID)
			ex := &installExec{ts: e.TS}
			if err := c.Execute(e.Args, ex); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReplayTPCCPACMAN measures the full scheduler path.
func BenchmarkReplayTPCCPACMAN(b *testing.B) {
	cfg, entries := tpccEntries(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh, gdg := tpccGDG(cfg)
		b.StartTimer()
		r := New(gdg, fresh.Registry(), fresh.DB(), Options{Threads: 2, Mode: Pipelined})
		r.Start()
		for lo := 0; lo < len(entries); lo += 500 {
			hi := lo + 500
			if hi > len(entries) {
				hi = len(entries)
			}
			r.Submit(entries[lo:hi])
		}
		if err := r.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}
