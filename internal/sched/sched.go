package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/proc"
	"pacman/internal/wal"
)

// Mode selects how much of PACMAN's parallelism is enabled; the Figure 19
// ablation compares the three.
type Mode int

// Replay modes.
const (
	// StaticOnly executes each piece-set serially on one thread; only the
	// block-level parallelism of the static analysis is exploited.
	StaticOnly Mode = iota
	// Synchronous adds fine-grained intra-batch parallelism from the
	// dynamic analysis, with a barrier between batches.
	Synchronous
	// Pipelined additionally overlaps batches: a piece-set starts once its
	// intra-batch predecessors and its same-block predecessor in the
	// previous batch are done (Section 4.3.2).
	Pipelined
)

func (m Mode) String() string {
	switch m {
	case StaticOnly:
		return "static"
	case Synchronous:
		return "synchronous"
	case Pipelined:
		return "pipelined"
	}
	return "?"
}

// Breakdown phase names (Figure 20).
const (
	PhaseWork  = "useful work"
	PhaseLoad  = "data loading"
	PhaseCheck = "parameter checking"
	PhaseSched = "scheduling"
)

// NewBreakdown allocates a breakdown with the Figure 20 phases.
func NewBreakdown() *metrics.Breakdown {
	return metrics.NewBreakdown(PhaseWork, PhaseLoad, PhaseCheck, PhaseSched)
}

// Options tunes a Replayer.
type Options struct {
	// Threads caps true replay parallelism (the paper's recovery-thread
	// count).
	Threads int
	Mode    Mode
	// MultiVersion retains version chains during replay; PACMAN recovers a
	// single-version state (Section 6.2), so this defaults off.
	MultiVersion bool
	// Window bounds in-flight batches in pipelined mode.
	Window int
	// Breakdown, if non-nil, accumulates the Figure 20 phase split. Use
	// NewBreakdown.
	Breakdown *metrics.Breakdown
}

// Replayer executes log batches against the GDG. Usage: New, Start, Submit
// one batch at a time (entries sorted by TS), then Finish.
type Replayer struct {
	gdg  *analysis.GDG
	reg  *proc.Registry
	db   *engine.Database
	opts Options

	runners []*blockRunner
	workers []int // per-block worker count (core assignment, Section 4.4)
	assignO sync.Once

	prevComplete chan struct{}

	err  atomic.Pointer[error]
	done sync.WaitGroup
}

type blockRunner struct {
	r     *Replayer
	block int
	queue chan *batchWork
}

// batchWork carries one batch through the runners.
type batchWork struct {
	pieces       [][]*pieceInst // per block
	doneCh       []chan struct{}
	complete     chan struct{}
	remaining    atomic.Int32
	prevComplete chan struct{}
}

// New builds a replayer.
func New(gdg *analysis.GDG, reg *proc.Registry, db *engine.Database, opts Options) *Replayer {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.Window < 1 {
		opts.Window = 4
	}
	if opts.Mode != Pipelined {
		opts.Window = 1
	}
	r := &Replayer{gdg: gdg, reg: reg, db: db, opts: opts}
	for b := 0; b < gdg.NumBlocks(); b++ {
		r.runners = append(r.runners, &blockRunner{
			r: r, block: b, queue: make(chan *batchWork, opts.Window),
		})
	}
	return r
}

// Start launches the block runners.
func (r *Replayer) Start() {
	for _, br := range r.runners {
		r.done.Add(1)
		go func(br *blockRunner) {
			defer r.done.Done()
			br.loop()
		}(br)
	}
}

// setErr records the first error.
func (r *Replayer) setErr(err error) {
	if err != nil {
		r.err.CompareAndSwap(nil, &err)
	}
}

// assignCores fixes per-block worker counts from the piece distribution of
// the first batch, mirroring the paper's reload-time workload estimation.
func (r *Replayer) assignCores(pieces [][]*pieceInst) {
	r.assignO.Do(func() {
		r.workers = make([]int, len(pieces))
		total := 0
		for _, ps := range pieces {
			total += len(ps)
		}
		for b, ps := range pieces {
			w := 1
			if total > 0 {
				w = (r.opts.Threads*len(ps) + total/2) / total
			}
			if w < 1 {
				w = 1
			}
			r.workers[b] = w
		}
	})
}

// Submit schedules one batch (entries must be sorted by TS). It blocks when
// the pipeline window is full.
func (r *Replayer) Submit(entries []*wal.Entry) {
	start := time.Now()
	bw := &batchWork{
		pieces:       make([][]*pieceInst, r.gdg.NumBlocks()),
		doneCh:       make([]chan struct{}, r.gdg.NumBlocks()),
		complete:     make(chan struct{}),
		prevComplete: r.prevComplete,
	}
	for b := range bw.doneCh {
		bw.doneCh[b] = make(chan struct{})
	}
	bw.remaining.Store(int32(r.gdg.NumBlocks()))

	nb := r.gdg.NumBlocks()
	for _, e := range entries {
		switch e.Kind {
		case wal.EntryCommand:
			c := r.reg.ByID(e.ProcID)
			if c == nil {
				continue
			}
			inst, err := c.NewInstance(e.Args)
			if err != nil {
				r.setErr(err)
				continue
			}
			for _, def := range r.gdg.PiecesFor(e.ProcID) {
				bw.pieces[def.Block] = append(bw.pieces[def.Block],
					&pieceInst{ts: e.TS, inst: inst, def: def})
			}
		case wal.EntryTuple:
			// Ad-hoc transaction: dispatch each write to the block owning
			// its table (Section 4.5). Tables no procedure modifies fall
			// back to a deterministic block.
			byBlock := make(map[int][]wal.WriteImage)
			for _, w := range e.Writes {
				b := r.gdg.TableOwner(w.TableID)
				if b < 0 {
					b = w.TableID % nb
				}
				byBlock[b] = append(byBlock[b], w)
			}
			for b, ws := range byBlock {
				bw.pieces[b] = append(bw.pieces[b], &pieceInst{ts: e.TS, adhoc: ws})
			}
		}
	}
	r.assignCores(bw.pieces)
	if r.opts.Breakdown != nil {
		r.opts.Breakdown.Add(PhaseCheck, time.Since(start))
	}
	r.prevComplete = bw.complete
	for _, br := range r.runners {
		br.queue <- bw
	}
}

// Consume drains an epoch-ordered feed of reloaded batches — the streaming
// handoff from wal.Reloader — submitting each batch as it arrives and
// finishing when the feed closes. Time spent blocked on the feed is reload
// starvation; it accumulates into stall when non-nil (recovery charges it
// to the Figure 20 loading phase). It returns the number of entries
// submitted and the first error; a feed error aborts the replay after the
// in-flight batches complete.
func (r *Replayer) Consume(feed <-chan wal.Batch, stall *metrics.DurationSum) (int, error) {
	r.Start()
	entries := 0
	for {
		t0 := time.Now()
		b, ok := <-feed
		if stall != nil {
			stall.AddSince(t0)
		}
		if !ok {
			break
		}
		if b.Err != nil {
			r.Finish()
			return entries, b.Err
		}
		entries += len(b.Entries)
		r.Submit(b.Entries)
	}
	return entries, r.Finish()
}

// Finish waits for all submitted batches and returns the first error.
func (r *Replayer) Finish() error {
	for _, br := range r.runners {
		close(br.queue)
	}
	r.done.Wait()
	if p := r.err.Load(); p != nil {
		return *p
	}
	return nil
}

// loop processes this block's piece-sets batch by batch.
func (br *blockRunner) loop() {
	r := br.r
	for bw := range br.queue {
		// Batch barrier in non-pipelined modes.
		if r.opts.Mode != Pipelined && bw.prevComplete != nil {
			<-bw.prevComplete
		}
		// Intra-batch block dependencies: one coordination point per
		// piece-set (Section 4.2.1).
		for _, pred := range r.gdg.Preds(br.block) {
			<-bw.doneCh[pred]
		}
		br.execPieceSet(bw.pieces[br.block])
		close(bw.doneCh[br.block])
		if bw.remaining.Add(-1) == 0 {
			close(bw.complete)
		}
	}
}

// execPieceSet builds and runs the task graph of one piece-set on the
// block's assigned workers.
func (br *blockRunner) execPieceSet(pieces []*pieceInst) {
	r := br.r
	if len(pieces) == 0 {
		return
	}
	dynamic := r.opts.Mode != StaticOnly

	checkStart := time.Now()
	tasks := r.buildTasks(pieces, dynamic)
	if r.opts.Breakdown != nil {
		r.opts.Breakdown.Add(PhaseCheck, time.Since(checkStart))
	}

	nw := 1
	if dynamic && br.block < len(r.workers) {
		nw = r.workers[br.block]
	}
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw == 1 {
		// Single worker: creation order is already topological (the chainer
		// only adds edges to earlier tasks), so run inline without any
		// queueing machinery.
		bd := r.opts.Breakdown
		for _, t := range tasks {
			var workStart time.Time
			if bd != nil {
				workStart = time.Now()
			}
			if err := t.run(); err != nil {
				r.setErr(err)
			}
			if bd != nil {
				bd.Add(PhaseWork, time.Since(workStart))
			}
		}
		return
	}

	queue := make(chan *task, len(tasks))
	var completed atomic.Int32
	total := int32(len(tasks))
	for _, t := range tasks {
		if t.pending.Load() == 0 {
			queue <- t
		}
	}
	bd := r.opts.Breakdown
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var idleStart time.Time
				if bd != nil {
					idleStart = time.Now()
				}
				t, ok := <-queue
				if !ok {
					return
				}
				if bd != nil {
					bd.Add(PhaseSched, time.Since(idleStart))
				}
				// Work-following: run one ready successor inline and only
				// enqueue the surplus, so per-key chains (the common case)
				// cost no scheduler round-trips.
				for t != nil {
					var workStart time.Time
					if bd != nil {
						workStart = time.Now()
					}
					if err := t.run(); err != nil {
						r.setErr(err)
					}
					if bd != nil {
						bd.Add(PhaseWork, time.Since(workStart))
						workStart = time.Now()
					}
					var next *task
					for _, s := range t.succs {
						if s.pending.Add(-1) == 0 {
							if next == nil {
								next = s
							} else {
								queue <- s
							}
						}
					}
					// The closer is necessarily the last task overall: any
					// task with a ready successor cannot be last.
					if completed.Add(1) == total {
						close(queue)
					}
					if bd != nil {
						bd.Add(PhaseSched, time.Since(workStart))
					}
					t = next
				}
			}
		}()
	}
	wg.Wait()
}
