package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// runBankWorkload executes n random bank transactions under command
// logging and returns the durable entries plus the live (pre-crash) DB for
// comparison.
func runBankWorkload(t testing.TB, accounts, n int, seed int64) (*workload.Bank, []*wal.Entry) {
	t.Helper()
	b := workload.NewBank(accounts)
	b.Populate(workload.DirectPopulate{})
	m := txn.NewManager(b.DB(), txn.DefaultConfig())
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := wal.DefaultConfig(wal.Command)
	cfg.BatchEpochs = 2
	cfg.FlushInterval = 100 * time.Microsecond
	ls := wal.NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		tx := b.Generate(rng)
		if _, err := w.Execute(tx.Proc, tx.Args, tx.AdHoc, time.Now()); err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			m.AdvanceEpoch()
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	pe := ls.PersistedEpoch()
	entries, _, err := wal.ReloadAll([]*simdisk.Device{dev}, pe, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Transactions whose guards blocked every write are read-only and
	// generate no log records, so entries <= n.
	if len(entries) == 0 || len(entries) > n {
		t.Fatalf("durable entries = %d, want (0, %d]", len(entries), n)
	}
	return b, entries
}

// snapshotState captures every table's visible contents.
func snapshotState(db *engine.Database) map[string]map[uint64]string {
	out := make(map[string]map[uint64]string)
	for _, t := range db.Tables() {
		m := make(map[uint64]string)
		t.ScanSlots(0, t.NumSlots(), func(r *engine.Row) {
			if d := r.LatestData(); d != nil {
				m[r.Key] = d.String()
			}
		})
		out[t.Name()] = m
	}
	return out
}

func diffStates(t *testing.T, want, got map[string]map[uint64]string, label string) {
	t.Helper()
	for tab, rows := range want {
		for k, v := range rows {
			if got[tab][k] != v {
				t.Errorf("%s: table %s key %d: got %s, want %s", label, tab, k, got[tab][k], v)
				return
			}
		}
		if len(got[tab]) != len(rows) {
			t.Errorf("%s: table %s has %d rows, want %d", label, tab, len(got[tab]), len(rows))
			return
		}
	}
}

// replayWithMode rebuilds the database from entries using the given mode.
func replayWithMode(t testing.TB, entries []*wal.Entry, accounts int, mode Mode, threads, batchSize int) *workload.Bank {
	t.Helper()
	b := workload.NewBank(accounts)
	b.Populate(workload.DirectPopulate{})
	gdg := analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
	r := New(gdg, b.Registry(), b.DB(), Options{Threads: threads, Mode: mode})
	r.Start()
	for lo := 0; lo < len(entries); lo += batchSize {
		hi := lo + batchSize
		if hi > len(entries) {
			hi = len(entries)
		}
		r.Submit(entries[lo:hi])
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplayEquivalenceAllModes is the central scheduler correctness test:
// all three modes must rebuild exactly the live database state.
func TestReplayEquivalenceAllModes(t *testing.T) {
	live, entries := runBankWorkload(t, 50, 400, 1)
	want := snapshotState(live.DB())
	for _, mode := range []Mode{StaticOnly, Synchronous, Pipelined} {
		for _, threads := range []int{1, 4} {
			got := replayWithMode(t, entries, 50, mode, threads, 37)
			diffStates(t, want, snapshotState(got.DB()),
				fmt.Sprintf("%v/threads=%d", mode, threads))
		}
	}
}

// TestReplayMatchesSerialGroundTruth: the scheduler's result equals a naive
// serial re-execution of the same entries.
func TestReplayMatchesSerialGroundTruth(t *testing.T) {
	_, entries := runBankWorkload(t, 30, 300, 2)
	// Serial ground truth.
	serial := workload.NewBank(30)
	serial.Populate(workload.DirectPopulate{})
	for _, e := range entries {
		if e.Kind != wal.EntryCommand {
			t.Fatal("unexpected entry kind")
		}
		c := serial.Registry().ByID(e.ProcID)
		ex := &installExec{ts: e.TS, retain: false}
		if err := c.Execute(e.Args, ex); err != nil {
			t.Fatal(err)
		}
	}
	got := replayWithMode(t, entries, 30, Pipelined, 4, 29)
	diffStates(t, snapshotState(serial.DB()), snapshotState(got.DB()), "pipelined vs serial")
}

// TestReplayHighContention: all transactions touch the same few accounts,
// exercising long per-key chains.
func TestReplayHighContention(t *testing.T) {
	live, entries := runBankWorkload(t, 3, 300, 3)
	want := snapshotState(live.DB())
	got := replayWithMode(t, entries, 3, Pipelined, 8, 23)
	diffStates(t, want, snapshotState(got.DB()), "high contention")
}

// TestReplayWithAdHoc mixes ad-hoc (tuple-logged) transactions into the
// command log stream (Section 4.5).
func TestReplayWithAdHoc(t *testing.T) {
	b := workload.NewBank(40)
	b.Populate(workload.DirectPopulate{})
	m := txn.NewManager(b.DB(), txn.DefaultConfig())
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := wal.DefaultConfig(wal.Command)
	cfg.BatchEpochs = 2
	cfg.FlushInterval = 100 * time.Microsecond
	ls := wal.NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		tx := b.Generate(rng)
		adhoc := rng.Intn(100) < 30 // 30% ad-hoc
		if _, err := w.Execute(tx.Proc, tx.Args, adhoc, time.Now()); err != nil {
			t.Fatal(err)
		}
		if i%9 == 8 {
			m.AdvanceEpoch()
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	entries, _, err := wal.ReloadAll([]*simdisk.Device{dev}, ls.PersistedEpoch(), 2)
	if err != nil {
		t.Fatal(err)
	}
	adhocSeen := 0
	for _, e := range entries {
		if e.Kind == wal.EntryTuple {
			adhocSeen++
		}
	}
	if adhocSeen == 0 {
		t.Fatal("no ad-hoc entries generated")
	}
	want := snapshotState(b.DB())
	got := replayWithMode(t, entries, 40, Pipelined, 4, 31)
	diffStates(t, want, snapshotState(got.DB()), "with ad-hoc")
}

// TestReplayOpaquePieces: a pointer-chasing procedure whose write key
// derives from its own read forces fence-based execution; correctness must
// hold regardless.
func TestReplayOpaquePieces(t *testing.T) {
	db := engine.NewDatabase()
	db.MustAddTable(tuple.MustSchema("Ptr",
		tuple.Col("id", tuple.KindInt), tuple.Col("next", tuple.KindInt)))
	db.MustAddTable(tuple.MustSchema("Val",
		tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt)))
	reg := proc.NewRegistry()
	chase := reg.MustRegister(db, &proc.Procedure{
		Name:   "Chase",
		Params: []proc.ParamDef{proc.P("k"), proc.P("amt")},
		Body: []proc.Stmt{
			proc.Read("nxt", "Ptr", proc.Pm("k"), "next"),
			proc.Read("cur", "Val", proc.V("nxt"), "v"),
			proc.Write("Val", proc.V("nxt"), proc.Set("v", proc.Add(proc.V("cur"), proc.Pm("amt")))),
			proc.Read("self", "Ptr", proc.Pm("k"), "next"),
			proc.Write("Ptr", proc.Pm("k"), proc.Set("next", proc.Add(proc.V("self"), proc.CI(0)))),
		},
	})
	seed := func(d *engine.Database) {
		for i := int64(1); i <= 10; i++ {
			r, _ := d.Table("Ptr").GetOrCreateRow(uint64(i))
			r.Install(engine.MakeTS(0, 1), tuple.Tuple{tuple.I(i), tuple.I(i%10 + 1)}, false, true)
			r2, _ := d.Table("Val").GetOrCreateRow(uint64(i))
			r2.Install(engine.MakeTS(0, 1), tuple.Tuple{tuple.I(i), tuple.I(0)}, false, true)
		}
	}
	seed(db)
	// The Ptr piece contains both a read of Ptr[k] and a write of Ptr[k]
	// (same table: one slice); its write key comes from its own read, so
	// the dry walk must go opaque.
	m := txn.NewManager(db, txn.DefaultConfig())
	w := m.NewWorker()
	rng := rand.New(rand.NewSource(5))
	var entries []*wal.Entry
	for i := 0; i < 200; i++ {
		args := proc.Args{
			proc.A(tuple.I(int64(1 + rng.Intn(10)))),
			proc.A(tuple.I(int64(rng.Intn(5)))),
		}
		ts, err := w.Execute(chase, args, false, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, &wal.Entry{TS: ts, Kind: wal.EntryCommand, ProcID: chase.ID(), Args: args})
	}
	want := snapshotState(db)

	// Replay into a fresh catalog.
	db2 := engine.NewDatabase()
	db2.MustAddTable(tuple.MustSchema("Ptr",
		tuple.Col("id", tuple.KindInt), tuple.Col("next", tuple.KindInt)))
	db2.MustAddTable(tuple.MustSchema("Val",
		tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt)))
	reg2 := proc.NewRegistry()
	reg2.MustRegister(db2, chase.Source())
	seed(db2)
	gdg := analysis.BuildGDG([]*analysis.LDG{analysis.BuildLDG(reg2.ByID(0))})
	r := New(gdg, reg2, db2, Options{Threads: 4, Mode: Pipelined})
	r.Start()
	for lo := 0; lo < len(entries); lo += 13 {
		hi := lo + 13
		if hi > len(entries) {
			hi = len(entries)
		}
		r.Submit(entries[lo:hi])
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	diffStates(t, want, snapshotState(db2), "opaque pieces")
}

// TestBreakdownAccumulates: the Figure 20 instrumentation records non-zero
// work and scheduling shares.
func TestBreakdownAccumulates(t *testing.T) {
	_, entries := runBankWorkload(t, 20, 200, 6)
	b := workload.NewBank(20)
	b.Populate(workload.DirectPopulate{})
	gdg := analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
	bd := NewBreakdown()
	r := New(gdg, b.Registry(), b.DB(), Options{Threads: 4, Mode: Pipelined, Breakdown: bd})
	r.Start()
	r.Submit(entries)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if bd.Get(PhaseWork) == 0 {
		t.Error("no useful work recorded")
	}
	if bd.Get(PhaseCheck) == 0 {
		t.Error("no parameter checking recorded")
	}
	if bd.Total() == 0 {
		t.Error("empty breakdown")
	}
}

// TestEmptyAndTinyBatches: degenerate batch sizes must not deadlock.
func TestEmptyAndTinyBatches(t *testing.T) {
	live, entries := runBankWorkload(t, 10, 20, 7)
	b := workload.NewBank(10)
	b.Populate(workload.DirectPopulate{})
	gdg := analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
	r := New(gdg, b.Registry(), b.DB(), Options{Threads: 2, Mode: Pipelined})
	r.Start()
	r.Submit(nil) // empty batch
	for _, e := range entries {
		r.Submit([]*wal.Entry{e}) // one-entry batches
	}
	r.Submit(nil)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	diffStates(t, snapshotState(live.DB()), snapshotState(b.DB()), "tiny batches")
}

// TestDynamicGroupSplit: distinct key spaces in one piece become distinct
// tasks (the Figure 8 parallelism), while same keys chain.
func TestDynamicGroupSplit(t *testing.T) {
	b := workload.NewBank(10)
	b.Populate(workload.DirectPopulate{})
	gdg := analysis.BuildGDG([]*analysis.LDG{
		analysis.BuildLDG(b.Transfer), analysis.BuildLDG(b.Deposit)})
	// Transfer piece for block 1 (the Current RMWs).
	var def *analysis.PieceDef
	for _, d := range gdg.PiecesFor(b.Transfer.ID()) {
		if d.Block == 1 {
			def = d
		}
	}
	if def == nil {
		t.Fatal("no block-1 piece for Transfer")
	}
	inst, err := b.Transfer.NewInstance(proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(5))})
	if err != nil {
		t.Fatal(err)
	}
	// Execute the spouse-read piece first so dst resolves.
	var alpha *analysis.PieceDef
	for _, d := range gdg.PiecesFor(b.Transfer.ID()) {
		if d.Block == 0 {
			alpha = d
		}
	}
	ex := &installExec{ts: engine.MakeTS(1, 1)}
	if err := inst.ExecutePiece(alpha.Filter, ex); err != nil {
		t.Fatal(err)
	}
	accesses, opaque := inst.DryWalk(def.Filter)
	if opaque {
		t.Fatal("unexpectedly opaque")
	}
	groups := splitDynamicGroups(def, accesses)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (src RMW, dst RMW)", len(groups))
	}
}
