package sched

import (
	"sync/atomic"

	"pacman/internal/analysis"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/wal"
)

// task is one unit of schedulable replay work: a dynamic operation group of
// one piece, an opaque piece executed whole, or one ad-hoc write.
type task struct {
	run     func() error
	pending atomic.Int32
	succs   []*task
}

// addDep records that t must wait for d. Graph construction is
// single-threaded per piece-set, so no locking is needed. Self-dependencies
// (a task touching one key twice, e.g. a merged read-modify-write group)
// are ignored: intra-task order is the walker's program order.
func (t *task) addDep(d *task) {
	if t == d {
		return
	}
	for _, s := range d.succs {
		if s == t {
			return // already dependent
		}
	}
	d.succs = append(d.succs, t)
	t.pending.Add(1)
}

// pieceInst is one transaction's contribution to one piece-set.
type pieceInst struct {
	ts    engine.TS
	inst  *proc.Instance
	def   *analysis.PieceDef
	adhoc []wal.WriteImage // non-nil for ad-hoc tuple entries
}

// conflictKey identifies one tuple for chain construction.
type conflictKey struct {
	table int
	key   uint64
}

// keyState tracks the chain tail per tuple: the last writer task and the
// reader tasks since it. A new reader depends on the last writer; a new
// writer depends on the last writer and all readers since.
type keyState struct {
	lastWriter *task
	readers    []*task
}

// chainer builds per-key conflict chains in log order.
type chainer struct {
	keys map[conflictKey]*keyState
	// fence handling: an opaque piece acts as a full barrier within the
	// piece-set.
	sinceFence []*task
	lastFence  *task
}

func newChainer() *chainer {
	return &chainer{keys: make(map[conflictKey]*keyState)}
}

// addTask wires a task's dependencies given its accesses, then records it.
func (c *chainer) addTask(t *task, accesses []proc.Access) {
	if c.lastFence != nil {
		t.addDep(c.lastFence)
	}
	for _, a := range accesses {
		ck := conflictKey{table: a.Table.ID(), key: a.Key}
		st := c.keys[ck]
		if st == nil {
			st = &keyState{}
			c.keys[ck] = st
		}
		if a.Write {
			if st.lastWriter != nil {
				t.addDep(st.lastWriter)
			}
			for _, r := range st.readers {
				if r != t {
					t.addDep(r)
				}
			}
			st.lastWriter = t
			st.readers = st.readers[:0]
		} else {
			if st.lastWriter != nil {
				t.addDep(st.lastWriter)
			}
			st.readers = append(st.readers, t)
		}
	}
	c.sinceFence = append(c.sinceFence, t)
}

// addFence wires a task as a full barrier: it waits for everything since
// the previous fence, and everything after waits for it.
func (c *chainer) addFence(t *task) {
	if c.lastFence != nil {
		t.addDep(c.lastFence)
	}
	for _, p := range c.sinceFence {
		t.addDep(p)
	}
	c.lastFence = t
	c.sinceFence = c.sinceFence[:0]
	// Reset key states: the fence dominates everything before it.
	c.keys = make(map[conflictKey]*keyState)
}

// buildTasks turns a piece-set's pieces into a task graph. In dynamic mode
// each dynamic operation group becomes a task chained by its accessed keys;
// opaque pieces become fences. In static mode the whole piece-set is one
// serial task. It returns the tasks in creation (log) order.
func (r *Replayer) buildTasks(pieces []*pieceInst, dynamic bool) []*task {
	if !dynamic {
		// One serial task executing the pieces in commit order.
		ps := pieces
		t := &task{}
		t.run = func() error {
			for _, p := range ps {
				if err := r.execWholePiece(p); err != nil {
					return err
				}
			}
			return nil
		}
		return []*task{t}
	}

	ch := newChainer()
	var tasks []*task
	for _, p := range pieces {
		p := p
		if p.adhoc != nil {
			// Ad-hoc tuple entry: one task per write, chained by key.
			for i := range p.adhoc {
				w := p.adhoc[i]
				t := &task{}
				tbl := r.db.TableByID(w.TableID)
				ts := p.ts
				t.run = func() error { return r.installImage(tbl, ts, w) }
				ch.addTask(t, []proc.Access{{Table: tbl, Key: w.Key, Write: true}})
				tasks = append(tasks, t)
			}
			continue
		}
		accesses, opaque := p.inst.DryWalk(p.def.Filter)
		if opaque {
			t := &task{}
			t.run = func() error { return r.execWholePiece(p) }
			ch.addFence(t)
			tasks = append(tasks, t)
			continue
		}
		// Partition accesses into dynamic groups.
		groups := splitDynamicGroups(p.def, accesses)
		for _, g := range groups {
			g := g
			t := &task{}
			t.run = func() error {
				ex := &installExec{ts: p.ts, retain: r.opts.MultiVersion}
				return p.inst.ExecutePiece(&g.filter, ex)
			}
			ch.addTask(t, g.accesses)
			tasks = append(tasks, t)
		}
	}
	return tasks
}

// dynGroup is one dynamic operation group: the instances of a static group
// within one iteration of the group's common loop prefix.
type dynGroup struct {
	filter   proc.InstSliceFilter
	accesses []proc.Access
}

// dynKey identifies a dynamic group.
type dynKey struct {
	group  int
	prefix uint64
}

// splitDynamicGroups assigns each access to its dynamic group: the static
// flow-dependency component of its op, split per iteration of the
// component's common loop prefix (Section 4.3.1: instances in different key
// spaces with no flow dependency run in parallel).
//
// Two groups of the same piece whose runtime keys collide (same tuple, at
// least one write) are merged: their accesses interleave in program order
// on that tuple, which inter-task edges cannot express — e.g., a
// self-transfer where the source and destination parameters name the same
// row. A merged task re-executes its operations in program order, restoring
// the serial semantics.
func splitDynamicGroups(def *analysis.PieceDef, accesses []proc.Access) []*dynGroup {
	// Initial grouping: small slices, linear lookups (accesses per piece
	// are a handful; maps cost more than they save here).
	type groupTag struct {
		key dynKey
	}
	var tags []groupTag
	groupOf := make([]int, len(accesses))
	for i, a := range accesses {
		gid := def.GroupOf[a.Op]
		depth := def.Groups[gid].CommonDepth
		opDepth := len(def.Proc.Op(a.Op).Loops)
		k := dynKey{group: gid, prefix: a.Iter >> (16 * uint(opDepth-depth))}
		idx := -1
		for j := range tags {
			if tags[j].key == k {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = len(tags)
			tags = append(tags, groupTag{key: k})
		}
		groupOf[i] = idx
	}

	// Union groups conflicting on a runtime key (same tuple, >=1 write):
	// their accesses interleave in program order, which inter-task edges
	// cannot express (e.g. self-transfers).
	parent := make([]int, len(tags))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := range accesses {
		for j := i + 1; j < len(accesses); j++ {
			if groupOf[i] == groupOf[j] {
				continue
			}
			ai, aj := &accesses[i], &accesses[j]
			if ai.Key == aj.Key && ai.Table == aj.Table && (ai.Write || aj.Write) {
				ri, rj := find(groupOf[i]), find(groupOf[j])
				if ri != rj {
					parent[rj] = ri
				}
			}
		}
	}

	// Materialize merged groups, preserving first-access order.
	rootGroup := make([]*dynGroup, len(tags))
	out := make([]*dynGroup, 0, len(tags))
	for i, a := range accesses {
		root := find(groupOf[i])
		g := rootGroup[root]
		if g == nil {
			g = &dynGroup{}
			rootGroup[root] = g
			out = append(out, g)
		}
		g.filter.AddInst(a.Op, a.Iter)
		g.accesses = append(g.accesses, a)
	}
	return out
}

// execWholePiece executes a piece serially (static mode and opaque fences).
func (r *Replayer) execWholePiece(p *pieceInst) error {
	if p.adhoc != nil {
		for _, w := range p.adhoc {
			if err := r.installImage(r.db.TableByID(w.TableID), p.ts, w); err != nil {
				return err
			}
		}
		return nil
	}
	ex := &installExec{ts: p.ts, retain: r.opts.MultiVersion}
	return p.inst.ExecutePiece(p.def.Filter, ex)
}

// installImage applies one logged after-image.
func (r *Replayer) installImage(t *engine.Table, ts engine.TS, w wal.WriteImage) error {
	row, _ := t.GetOrCreateRow(w.Key)
	row.Install(ts, w.After, w.Deleted, r.opts.MultiVersion)
	return nil
}
