package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pacman/internal/txn"
	"pacman/internal/wire"

	"pacman/client"
)

// ErrShardUnavailable fails requests routed at a shard whose circuit
// breaker is open: the shard has stopped answering (hung, partitioned, or
// drowning in a gray fault), so the router sheds instead of queueing work
// behind it. It wraps wire.ErrBackpressure — the request was never
// executed, so clients may safely retry elsewhere or later.
var ErrShardUnavailable = fmt.Errorf("shard: participant unavailable (circuit open): %w", wire.ErrBackpressure)

// breaker state machine: closed (normal) → open (shedding) on Threshold
// consecutive transport failures; open → half-open when the router's
// prober sees the shard answer a Ping again; half-open admits one trial
// request — success closes the breaker, failure re-opens it.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int32) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", s)
	}
}

// breaker is one shard's circuit breaker. Only transport-liveness failures
// (connection lost, deadline expired with no answer) count toward the
// threshold: an abort or a procedure error is a healthy shard answering
// quickly. The breaker gates NEW admissions only — decided 2PC deliveries
// bypass it, because a decision must eventually reach every participant.
type breaker struct {
	threshold int

	mu       sync.Mutex
	state    int32
	fails    int
	trialing bool // half-open: one trial request in flight
	opens    int64
	openedAt time.Time
}

func newBreaker(threshold int) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	return &breaker{threshold: threshold}
}

// allow reports whether a new request may be routed at this shard. In
// half-open it admits exactly one concurrent trial.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		if b.trialing {
			return false
		}
		b.trialing = true
		return true
	default:
		return false
	}
}

// observe feeds one request outcome back. Returns the (from, to) states
// when the outcome caused a transition, or ("", "") otherwise.
func (b *breaker) observe(failure bool) (from, to string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	prev := b.state
	b.trialing = false
	if !failure {
		b.fails = 0
		b.state = breakerClosed
	} else {
		b.fails++
		if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
			b.state = breakerOpen
		}
	}
	if b.state == prev {
		return "", ""
	}
	if b.state == breakerOpen {
		b.opens++
		b.openedAt = time.Now()
	}
	return breakerStateName(prev), breakerStateName(b.state)
}

// release abandons a half-open trial slot without judging the shard (the
// request was never actually sent).
func (b *breaker) release() {
	b.mu.Lock()
	b.trialing = false
	b.mu.Unlock()
}

// halfOpen moves an open breaker to half-open (probe answered). Returns
// true if it transitioned.
func (b *breaker) halfOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return false
	}
	b.state = breakerHalfOpen
	b.trialing = false
	return true
}

func (b *breaker) snapshot() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{State: breakerStateName(b.state), Opens: b.opens, Failures: b.fails}
}

func (b *breaker) current() int32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStatus is one shard's breaker state for diagnostics and tests.
type BreakerStatus struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Opens    int64  `json:"opens"`
	Failures int    `json:"failures"`
}

// breakerFailure classifies a backside request outcome for the breaker:
// only "the shard did not answer" outcomes count — a lost connection, or a
// deadline that expired without a result. Aborts, unknown procedures, and
// other typed errors are a live shard talking.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, client.ErrConnLost) || errors.Is(err, txn.ErrDeadlineExceeded)
}
