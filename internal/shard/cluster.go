package shard

import (
	"fmt"

	"pacman"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// StatusTable is the per-shard 2PC status table. One row per global
// transaction id this shard participated in; the status column gates every
// piece, which is what makes prepares refuse re-execution and decides
// idempotent under re-delivery. Exported so cluster-level oracles (the
// torture subsystem) can audit per-gtid outcome agreement across shards.
const StatusTable = "PACMAN_2PC"

// 2PC statuses. A missing row is "unknown" (no piece has run).
const (
	StatusPrepared  = 1
	StatusCommitted = 2
	StatusAborted   = 3
)

// Invocation is one piece call the router sends to a participant.
type Invocation struct {
	Proc string
	Args proc.Args
}

// Participant is one shard's role in a cross-shard transaction: where its
// prepare executes, and the decide piece for each outcome.
type Participant struct {
	Shard   int
	Prepare Invocation
	Commit  Invocation
	Abort   Invocation
}

// gtxn is one cross-shard transaction: the global id and its participants.
// It is exactly what the decision log's begin record serializes, so a
// recovered router can re-drive the decide phase from the log alone.
type gtxn struct {
	GTID  uint64
	Parts []Participant
}

// splitFn materializes a cross-shard procedure's participant pieces from
// its arguments and routed shard set.
type splitFn func(c *Cluster, gtid uint64, shards []int, args proc.Args) (*gtxn, error)

// Config sizes a Smallbank cluster.
type Config struct {
	Shards    int
	Customers int
	// HotspotPct follows workload.SmallbankConfig.
	HotspotPct int
	// Extra, when set, is appended to the base workload before routing is
	// extracted: its tables and procedures join every shard's catalog (ids
	// stay cluster-consistent because the merge happens identically on the
	// router and each shard), its procedures become routable public entry
	// points, and its seed rows land on every shard whose partition covers
	// them (tables the partitioner does not know are unpartitioned: seeded
	// everywhere, routed to shard 0). The torture subsystem rides its
	// ledger oracle into a cluster this way.
	Extra *workload.BlueprintSpec
}

// Cluster is the static description of a sharded deployment: per-shard
// blueprints, the routing extraction, and the cross-shard split catalog.
// It lives on the router AND is what each shard daemon launches from, so
// every party agrees on catalogs and procedure ids.
type Cluster struct {
	cfg     Config
	part    SmallbankPartitioner
	routing *Routing
	spec    workload.BlueprintSpec
	pieces  []*proc.Procedure
	public  []string
	splits  map[string]splitFn
}

// NewSmallbankCluster builds the cluster description for a Smallbank
// deployment over cfg.Shards shards.
func NewSmallbankCluster(cfg Config) *Cluster {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Customers <= 0 {
		cfg.Customers = workload.DefaultSmallbankConfig().Customers
	}
	w := workload.NewSmallbank(workload.SmallbankConfig{Customers: cfg.Customers, HotspotPct: cfg.HotspotPct})
	spec := workload.Spec(w)
	if ex := cfg.Extra; ex != nil {
		base := spec
		spec = workload.BlueprintSpec{
			Tables: append(append([]*tuple.Schema(nil), base.Tables...), ex.Tables...),
			Procs:  append(append([]*proc.Procedure(nil), base.Procs...), ex.Procs...),
			Seed: func(seed func(table string, key uint64, vals tuple.Tuple)) {
				if base.Seed != nil {
					base.Seed(seed)
				}
				if ex.Seed != nil {
					ex.Seed(seed)
				}
			},
		}
	}
	c := &Cluster{
		cfg:    cfg,
		part:   SmallbankPartitioner{NumShards: cfg.Shards, Customers: cfg.Customers},
		spec:   spec,
		pieces: pay2PCPieces(),
		splits: map[string]splitFn{"SendPayment": splitSendPayment},
	}
	c.routing = NewRouting(spec.Procs, c.part)
	for _, p := range spec.Procs {
		c.public = append(c.public, p.Name)
	}
	return c
}

// Config returns the cluster sizing.
func (c *Cluster) Config() Config { return c.cfg }

// Partitioner returns the cluster's partitioner.
func (c *Cluster) Partitioner() Partitioner { return c.part }

// Routing returns the static routing extraction over the public procedures.
func (c *Cluster) Routing() *Routing { return c.routing }

// Public returns the procedure names clients may submit, in the base
// workload's registration order (the router frontside's proc table).
func (c *Cluster) Public() []string { return append([]string(nil), c.public...) }

// ValueLogProcs returns the 2PC piece names — the procedures every shard
// must force onto the value-logging path (pacman.Options.ValueLogProcs):
// their effects depend on cross-shard coordination, so replay must reload
// them as values, never re-execute them.
func (c *Cluster) ValueLogProcs() []string {
	names := make([]string, len(c.pieces))
	for i, p := range c.pieces {
		names[i] = p.Name
	}
	return names
}

// ShardOptions returns base with the cluster's adaptive-logging policy
// applied — the options a shard instance should Launch with.
func (c *Cluster) ShardOptions(base pacman.Options) pacman.Options {
	base.ValueLogProcs = c.ValueLogProcs()
	return base
}

// ShardBlueprint returns shard i's blueprint. The catalog (tables and
// procedures, INCLUDING the 2PC status table and pieces) is identical on
// every shard so table and procedure ids agree across the cluster; only
// the seed differs — each shard populates its own partition of the
// customer range.
func (c *Cluster) ShardBlueprint(i int) pacman.Blueprint {
	tables := append(append([]*tuple.Schema(nil), c.spec.Tables...),
		tuple.MustSchema(StatusTable,
			tuple.Col("gtid", tuple.KindInt),
			tuple.Col("status", tuple.KindInt),
		))
	procs := append(append([]*proc.Procedure(nil), c.spec.Procs...), c.pieces...)
	baseSeed := c.spec.Seed
	part := c.part
	return pacman.Blueprint{
		Tables:     tables,
		Procedures: procs,
		Seed: func(seed pacman.Seeder) {
			baseSeed(func(table string, key uint64, vals tuple.Tuple) {
				sh, partitioned := part.ShardOf(table, int64(key))
				if !partitioned || sh == i {
					seed(table, key, vals)
				}
			})
		},
	}
}

// Split materializes the cross-shard pieces for one invocation, or fails
// for procedures with no registered split (cross-shard execution is
// opt-in per procedure: a split must derive every piece argument from the
// client's parameters, since Results carry no output values between
// shards — Amalgamate, whose transfer amount is a read result, cannot).
func (c *Cluster) Split(name string, gtid uint64, shards []int, args proc.Args) (*gtxn, error) {
	fn, ok := c.splits[name]
	if !ok {
		return nil, fmt.Errorf("shard: procedure %q spans shards but has no cross-shard split", name)
	}
	return fn(c, gtid, shards, args)
}

// splitSendPayment splits SendPayment(c1, c2, amt) into a debit piece on
// c1's shard and a credit piece on c2's shard.
func splitSendPayment(c *Cluster, gtid uint64, shards []int, args proc.Args) (*gtxn, error) {
	if len(args) != 3 || len(args[0]) == 0 || len(args[1]) == 0 || len(args[2]) == 0 {
		return nil, fmt.Errorf("shard: SendPayment: malformed arguments")
	}
	c1, c2, amt := args[0][0], args[1][0], args[2][0]
	g := proc.A(tuple.I(int64(gtid)))
	s1, _ := c.part.ShardOf("CHECKING", c1.Int())
	s2, _ := c.part.ShardOf("CHECKING", c2.Int())
	if s1 == s2 {
		return nil, fmt.Errorf("shard: SendPayment: both customers on shard %d — not cross-shard", s1)
	}
	return &gtxn{GTID: gtid, Parts: []Participant{
		{
			Shard:   s1,
			Prepare: Invocation{Proc: "Pay2PCDebit", Args: proc.Args{g, proc.A(c1), proc.A(amt)}},
			Commit:  Invocation{Proc: "Pay2PCCommit", Args: proc.Args{g}},
			Abort:   Invocation{Proc: "Pay2PCDebitAbort", Args: proc.Args{g, proc.A(c1), proc.A(amt)}},
		},
		{
			Shard:   s2,
			Prepare: Invocation{Proc: "Pay2PCCredit", Args: proc.Args{g, proc.A(c2), proc.A(amt)}},
			Commit:  Invocation{Proc: "Pay2PCCommit", Args: proc.Args{g}},
			Abort:   Invocation{Proc: "Pay2PCCreditAbort", Args: proc.Args{g, proc.A(c2), proc.A(amt)}},
		},
	}}, nil
}

// pay2PCPieces builds the status-gated piece procedures for the cross-shard
// SendPayment. Conventions every piece follows:
//
//   - The first statement reads this gtid's status row; a missing row reads
//     NULL, which compares below every integer, so Ge(st, 1) is exactly
//     "some piece already ran".
//   - Prepares ABORT (rolling back cleanly) when the status row exists —
//     a prepare is sent at most once, so an existing row means an abort
//     decide already landed first and the vote must be no.
//   - Prepares apply their effects immediately (locks would be the
//     alternative; applying at prepare keeps the participant's commit path
//     identical to a local transaction's). The guard vote travels as the
//     prepare's outcome: a clean Abort is a NO vote, a durable commit is a
//     YES vote.
//   - Commit decides flip prepared→committed and nothing else. Abort
//     decides compensate the prepare's effect if (and only if) it ran,
//     then record aborted — writing the aborted marker even when the
//     prepare never ran, which is what makes abort-then-prepare races
//     safe.
func pay2PCPieces() []*proc.Procedure {
	g, c1, c2, amt := proc.Pm("gtid"), proc.Pm("c1"), proc.Pm("c2"), proc.Pm("amt")
	st := proc.V("st")
	markStatus := func(status int64) proc.Stmt {
		return proc.Write(StatusTable, g,
			proc.Set("gtid", g), proc.Set("status", proc.CI(status)))
	}
	readStatus := proc.Read("st", StatusTable, g, "status")
	return []*proc.Procedure{
		{
			Name:   "Pay2PCDebit",
			Params: []proc.ParamDef{proc.P("gtid"), proc.P("c1"), proc.P("amt")},
			Body: []proc.Stmt{
				readStatus,
				proc.If(proc.Ge(st, proc.CI(1)), proc.Abort()),
				proc.Read("src", "CHECKING", c1, "bal"),
				proc.If(proc.Lt(proc.V("src"), amt), proc.Abort()), // unfunded (or missing): vote no
				proc.Write("CHECKING", c1, proc.Set("bal", proc.Sub(proc.V("src"), amt))),
				markStatus(StatusPrepared),
			},
		},
		{
			Name:   "Pay2PCCredit",
			Params: []proc.ParamDef{proc.P("gtid"), proc.P("c2"), proc.P("amt")},
			Body: []proc.Stmt{
				readStatus,
				proc.If(proc.Ge(st, proc.CI(1)), proc.Abort()),
				proc.Read("dst", "CHECKING", c2, "bal"),
				proc.Write("CHECKING", c2, proc.Set("bal", proc.Add(proc.V("dst"), amt))),
				markStatus(StatusPrepared),
			},
		},
		{
			Name:   "Pay2PCCommit",
			Params: []proc.ParamDef{proc.P("gtid")},
			Body: []proc.Stmt{
				readStatus,
				proc.If(proc.Eq(st, proc.CI(StatusPrepared)), markStatus(StatusCommitted)),
			},
		},
		{
			Name:   "Pay2PCDebitAbort",
			Params: []proc.ParamDef{proc.P("gtid"), proc.P("c1"), proc.P("amt")},
			Body: []proc.Stmt{
				readStatus,
				proc.IfElse(proc.Eq(st, proc.CI(StatusPrepared)),
					[]proc.Stmt{
						proc.Read("ck", "CHECKING", c1, "bal"),
						proc.Write("CHECKING", c1, proc.Set("bal", proc.Add(proc.V("ck"), amt))),
						markStatus(StatusAborted),
					},
					[]proc.Stmt{
						// Not prepared here: just record the abort (unless a
						// commit somehow landed, which the protocol forbids).
						proc.If(proc.Not(proc.Ge(st, proc.CI(StatusCommitted))), markStatus(StatusAborted)),
					},
				),
			},
		},
		{
			Name:   "Pay2PCCreditAbort",
			Params: []proc.ParamDef{proc.P("gtid"), proc.P("c2"), proc.P("amt")},
			Body: []proc.Stmt{
				readStatus,
				proc.IfElse(proc.Eq(st, proc.CI(StatusPrepared)),
					[]proc.Stmt{
						proc.Read("ck", "CHECKING", c2, "bal"),
						proc.Write("CHECKING", c2, proc.Set("bal", proc.Sub(proc.V("ck"), amt))),
						markStatus(StatusAborted),
					},
					[]proc.Stmt{
						proc.If(proc.Not(proc.Ge(st, proc.CI(StatusCommitted))), markStatus(StatusAborted)),
					},
				),
			},
		},
	}
}
