package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"pacman/internal/proc"
	"pacman/internal/simdisk"
)

// The coordinator's decision log: presumed abort over three record kinds.
//
//	begin  (synced before any prepare is sent)  — gtid + every participant's
//	        prepare/commit/abort invocations, so recovery can re-drive the
//	        decide phase without the original request
//	commit (synced before any commit decide)    — gtid only
//	end    (unsynced)                           — gtid only; garbage-collects
//	        the transaction from recovery's view
//
// Recovery semantics: begin without commit → the coordinator never decided
// commit, so presume abort and deliver abort pieces (idempotent). Commit
// without end → the decision is durable but delivery may have been cut
// short; re-deliver commit pieces. A torn record ends the scan — records
// after a torn one were never synced, and a torn begin's prepares were
// never sent (Begin syncs before the router sends anything).
const (
	coordLogFile = "2pc-decisions"

	recBegin  byte = 1
	recCommit byte = 2
	recEnd    byte = 3
)

var coordCRC = crc32.MakeTable(crc32.Castagnoli)

// coordLog is the append-only decision log on one simulated device.
type coordLog struct {
	mu sync.Mutex
	w  *simdisk.Writer
}

// inDoubt is one unfinished transaction found by the recovery scan.
type inDoubt struct {
	g         *gtxn
	committed bool
}

// openCoordLog opens (or creates) the decision log on dev, scanning any
// existing contents: it returns the unfinished transactions in log order
// and the highest gtid ever begun, so the reopened router resumes its gtid
// sequence past every id a shard may have seen.
func openCoordLog(dev *simdisk.Device) (*coordLog, []inDoubt, uint64, error) {
	var pending []inDoubt
	var maxGTID uint64
	if r, err := dev.Open(coordLogFile); err == nil {
		data, err := r.ReadAll()
		if err != nil {
			return nil, nil, 0, fmt.Errorf("shard: reading decision log: %w", err)
		}
		pending, maxGTID = scanCoordLog(data)
	}
	return &coordLog{w: dev.Append(coordLogFile)}, pending, maxGTID, nil
}

// scanCoordLog replays the record stream, stopping at the first torn or
// corrupt record (the crash-truncated tail).
func scanCoordLog(data []byte) ([]inDoubt, uint64) {
	type state struct {
		g         *gtxn
		committed bool
		ended     bool
	}
	var order []uint64
	states := map[uint64]*state{}
	var maxGTID uint64
	for off := 0; off+8 <= len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if n < 9 || off+n > len(data) {
			break // torn tail
		}
		payload := data[off : off+n]
		if crc32.Checksum(payload, coordCRC) != crc {
			break
		}
		off += n
		kind := payload[0]
		gtid := binary.LittleEndian.Uint64(payload[1:])
		if gtid > maxGTID {
			maxGTID = gtid
		}
		switch kind {
		case recBegin:
			g, err := decodeBegin(gtid, payload[9:])
			if err != nil {
				break // undecodable synced begin: treat as torn
			}
			if _, dup := states[gtid]; !dup {
				order = append(order, gtid)
				states[gtid] = &state{g: g}
			}
		case recCommit:
			if st := states[gtid]; st != nil {
				st.committed = true
			}
		case recEnd:
			if st := states[gtid]; st != nil {
				st.ended = true
			}
		}
	}
	var pending []inDoubt
	for _, gtid := range order {
		st := states[gtid]
		if st.ended {
			continue
		}
		pending = append(pending, inDoubt{g: st.g, committed: st.committed})
	}
	return pending, maxGTID
}

// Begin appends and SYNCS the begin record; the router must not send a
// single prepare before this returns.
func (l *coordLog) Begin(g *gtxn) error {
	payload := []byte{recBegin}
	payload = binary.LittleEndian.AppendUint64(payload, g.GTID)
	payload = append(payload, byte(len(g.Parts)))
	for _, p := range g.Parts {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(p.Shard))
		payload = appendInvocation(payload, p.Prepare)
		payload = appendInvocation(payload, p.Commit)
		payload = appendInvocation(payload, p.Abort)
	}
	return l.append(payload, true)
}

// Commit appends and SYNCS the commit decision; the router must not send a
// single commit decide before this returns.
func (l *coordLog) Commit(gtid uint64) error {
	return l.append(markerPayload(recCommit, gtid), true)
}

// End appends the end record without syncing — losing it only costs a
// harmless re-delivery of idempotent decides at the next recovery.
func (l *coordLog) End(gtid uint64) error {
	return l.append(markerPayload(recEnd, gtid), false)
}

func markerPayload(kind byte, gtid uint64) []byte {
	payload := []byte{kind}
	return binary.LittleEndian.AppendUint64(payload, gtid)
}

func (l *coordLog) append(payload []byte, sync bool) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, coordCRC))
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	if sync {
		return l.w.Sync()
	}
	return nil
}

func appendInvocation(b []byte, inv Invocation) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(inv.Proc)))
	b = append(b, inv.Proc...)
	return proc.AppendArgs(b, inv.Args)
}

func decodeBegin(gtid uint64, b []byte) (*gtxn, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("shard: truncated begin record")
	}
	n := int(b[0])
	b = b[1:]
	g := &gtxn{GTID: gtid, Parts: make([]Participant, 0, n)}
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("shard: truncated begin record")
		}
		p := Participant{Shard: int(binary.LittleEndian.Uint16(b))}
		b = b[2:]
		var err error
		if p.Prepare, b, err = decodeInvocation(b); err != nil {
			return nil, err
		}
		if p.Commit, b, err = decodeInvocation(b); err != nil {
			return nil, err
		}
		if p.Abort, b, err = decodeInvocation(b); err != nil {
			return nil, err
		}
		g.Parts = append(g.Parts, p)
	}
	return g, nil
}

func decodeInvocation(b []byte) (Invocation, []byte, error) {
	if len(b) < 2 {
		return Invocation{}, nil, fmt.Errorf("shard: truncated invocation")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return Invocation{}, nil, fmt.Errorf("shard: truncated invocation name")
	}
	inv := Invocation{Proc: string(b[:n])}
	b = b[n:]
	args, used, err := proc.DecodeArgs(b)
	if err != nil {
		return Invocation{}, nil, fmt.Errorf("shard: decoding invocation args: %w", err)
	}
	inv.Args = args
	return inv, b[used:], nil
}
