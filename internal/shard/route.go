package shard

import (
	"fmt"
	"sort"

	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// A Partitioner places one table access on a shard by the table's
// partition attribute. The ok return must depend only on the table name
// (false means the table is replicated on every shard and constrains
// routing not at all); Routing probes it with a zero attribute to learn
// which tables partition.
type Partitioner interface {
	// Shards is the cluster width.
	Shards() int
	// ShardOf places a partition-attribute value of the named table.
	ShardOf(table string, attr int64) (shard int, ok bool)
}

// SmallbankPartitioner partitions Smallbank by contiguous customer ranges:
// every table is keyed by the customer id, so the attribute IS the key.
type SmallbankPartitioner struct {
	NumShards int
	Customers int
}

// Shards implements Partitioner.
func (p SmallbankPartitioner) Shards() int { return p.NumShards }

// ShardOf implements Partitioner via workload.AccountRangeOf.
func (p SmallbankPartitioner) ShardOf(table string, attr int64) (int, bool) {
	switch table {
	case "ACCOUNTS", "SAVINGS", "CHECKING":
		return workload.AccountRangeOf(attr, p.NumShards, p.Customers), true
	}
	return 0, false // PACMAN_2PC and unknowns: no routing constraint
}

// TPCCPartitioner partitions TPC-C by warehouse, round-robin so small
// warehouse counts still spread over every shard. ITEM is replicated.
type TPCCPartitioner struct {
	NumShards int
}

// Shards implements Partitioner.
func (p TPCCPartitioner) Shards() int { return p.NumShards }

// ShardOf implements Partitioner: the attribute is the warehouse id
// (1-based, as TPC-C numbers them).
func (p TPCCPartitioner) ShardOf(table string, attr int64) (int, bool) {
	switch table {
	case "WAREHOUSE", "DISTRICT", "CUSTOMER", "OORDER", "NEW_ORDER",
		"ORDER_LINE", "STOCK", "HISTORY":
		if attr < 1 {
			return 0, true
		}
		return int((attr - 1) % int64(p.NumShards)), true
	}
	return 0, false // ITEM: replicated
}

// attrRef is one table access in a procedure body: the table and the
// partition-attribute expression extracted from its key (nil when the
// attribute is not derivable from parameters alone).
type attrRef struct {
	table string
	attr  proc.Expr
}

// plan is one procedure's routing plan: its parameter index and every
// table access's partition attribute.
type plan struct {
	params map[string]int
	refs   []attrRef
}

// Routing holds the static routing extraction for a set of procedures.
// It is built once from the procedure sources — the same IR the engine
// executes — so routing can never drift from what the procedure touches.
type Routing struct {
	part  Partitioner
	plans map[string]*plan
}

// NewRouting extracts a routing plan from every procedure's body.
func NewRouting(procs []*proc.Procedure, part Partitioner) *Routing {
	r := &Routing{part: part, plans: make(map[string]*plan, len(procs))}
	for _, p := range procs {
		pl := &plan{params: make(map[string]int, len(p.Params))}
		for i, pd := range p.Params {
			pl.params[pd.Name] = i
		}
		collectRefs(p.Body, pl)
		r.plans[p.Name] = pl
	}
	return r
}

// collectRefs walks a statement list, recursing into both branches of
// conditionals and into loop bodies: routing must cover every access the
// invocation COULD make, whichever way its guards evaluate.
func collectRefs(body []proc.Stmt, pl *plan) {
	for _, s := range body {
		switch s := s.(type) {
		case proc.ReadStmt:
			addRef(pl, s.Table, s.Key)
		case proc.WriteStmt:
			addRef(pl, s.Table, s.Key)
		case proc.InsertStmt:
			addRef(pl, s.Table, s.Key)
		case proc.DeleteStmt:
			addRef(pl, s.Table, s.Key)
		case proc.IfStmt:
			collectRefs(s.Then, pl)
			collectRefs(s.Else, pl)
		case proc.ForEachStmt:
			collectRefs(s.Body, pl)
		}
	}
}

func addRef(pl *plan, table string, key proc.Expr) {
	attr := hiLeaf(key)
	if !paramOnly(attr, pl.params) {
		attr = nil
	}
	pl.refs = append(pl.refs, attrRef{table: table, attr: attr})
}

// hiLeaf walks a key expression down its packing spine to the highest
// field. The workloads build composite keys as hi*2^k + lo (see the TPC-C
// keyExpr helpers), always with the partition attribute in the highest
// field, so the leftmost leaf of the Add/Mul spine is the attribute — even
// when lower fields (order ids, line numbers) come from read registers a
// static extraction cannot evaluate.
func hiLeaf(e proc.Expr) proc.Expr {
	for {
		b, ok := e.(proc.BinExpr)
		if !ok {
			return e
		}
		switch b.Op {
		case proc.OpAdd, proc.OpMul:
			e = b.L
		default:
			return e
		}
	}
}

// paramOnly reports whether an expression evaluates from parameters and
// constants alone — no read registers, no loop variables.
func paramOnly(e proc.Expr, params map[string]int) bool {
	switch e := e.(type) {
	case proc.ConstExpr:
		return true
	case proc.ParamExpr:
		_, ok := params[e.Name]
		return ok
	case proc.BinExpr:
		return paramOnly(e.L, params) && paramOnly(e.R, params)
	}
	return false
}

// evalAttr evaluates a parameter-only integer expression against one
// invocation's arguments (scalar parameters are element 0 of their list,
// matching the executor's ParamExpr semantics).
func evalAttr(e proc.Expr, pl *plan, args proc.Args) (int64, bool) {
	switch e := e.(type) {
	case proc.ConstExpr:
		if e.V.Kind() != tuple.KindInt {
			return 0, false
		}
		return e.V.Int(), true
	case proc.ParamExpr:
		i, ok := pl.params[e.Name]
		if !ok || i >= len(args) || len(args[i]) == 0 {
			return 0, false
		}
		v := args[i][0]
		if v.Kind() != tuple.KindInt {
			return 0, false
		}
		return v.Int(), true
	case proc.BinExpr:
		l, lok := evalAttr(e.L, pl, args)
		r, rok := evalAttr(e.R, pl, args)
		if !lok || !rok {
			return 0, false
		}
		switch e.Op {
		case proc.OpAdd:
			return l + r, true
		case proc.OpSub:
			return l - r, true
		case proc.OpMul:
			return l * r, true
		case proc.OpDiv:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case proc.OpMod:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
	}
	return 0, false
}

// Route returns the sorted, distinct set of shards one invocation touches.
// An invocation touching only replicated tables routes to shard 0. It
// fails when the procedure is unknown or when a partitioned-table key is
// not derivable from the parameters (an opaque procedure — unroutable on
// a cluster wider than one shard).
func (r *Routing) Route(name string, args proc.Args) ([]int, error) {
	pl, ok := r.plans[name]
	if !ok {
		return nil, fmt.Errorf("shard: unknown procedure %q", name)
	}
	set := make(map[int]struct{}, 2)
	for _, ref := range pl.refs {
		if _, partitioned := r.part.ShardOf(ref.table, 0); !partitioned {
			continue
		}
		if ref.attr == nil {
			return nil, fmt.Errorf("shard: %s: key on partitioned table %s is not derivable from parameters", name, ref.table)
		}
		attr, ok := evalAttr(ref.attr, pl, args)
		if !ok {
			return nil, fmt.Errorf("shard: %s: cannot evaluate partition attribute for table %s", name, ref.table)
		}
		s, _ := r.part.ShardOf(ref.table, attr)
		set[s] = struct{}{}
	}
	if len(set) == 0 {
		return []int{0}, nil
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out, nil
}
