package shard

import (
	"reflect"
	"testing"

	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

func ia(v int64) []tuple.Value   { return proc.A(tuple.I(v)) }
func fa(v float64) []tuple.Value { return proc.A(tuple.F(v)) }

// TestRoutingSmallbank checks the static extraction over the Smallbank
// procedures: single-customer procedures route to the customer's range,
// two-customer ones to the union.
func TestRoutingSmallbank(t *testing.T) {
	spec := workload.Spec(workload.NewSmallbank(workload.SmallbankConfig{Customers: 100, HotspotPct: 1}))
	r := NewRouting(spec.Procs, SmallbankPartitioner{NumShards: 4, Customers: 100})

	cases := []struct {
		proc string
		args proc.Args
		want []int
	}{
		{"DepositChecking", proc.Args{ia(1), fa(5)}, []int{0}},
		{"DepositChecking", proc.Args{ia(100), fa(5)}, []int{3}},
		{"Balance", proc.Args{ia(30)}, []int{1}},
		{"TransactSavings", proc.Args{ia(55), fa(5)}, []int{2}},
		{"WriteCheck", proc.Args{ia(76), fa(5)}, []int{3}},
		{"SendPayment", proc.Args{ia(1), fa(2), fa(5)}, nil}, // c2 must be int for key eval
		{"SendPayment", proc.Args{ia(1), ia(2), fa(5)}, []int{0}},
		{"SendPayment", proc.Args{ia(1), ia(99), fa(5)}, []int{0, 3}},
		{"Amalgamate", proc.Args{ia(10), ia(60)}, []int{0, 2}},
	}
	for _, c := range cases {
		got, err := r.Route(c.proc, c.args)
		if c.want == nil {
			if err == nil {
				t.Errorf("Route(%s) = %v, want error", c.proc, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Route(%s): %v", c.proc, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Route(%s, %v) = %v, want %v", c.proc, c.args, got, c.want)
		}
	}

	if _, err := r.Route("NoSuchProc", nil); err == nil {
		t.Error("Route(NoSuchProc) succeeded")
	}
}

// TestRoutingTPCC checks extraction over the TPC-C templates, whose keys
// are packed composites: the warehouse rides the top field, so even keys
// whose low fields come from read registers (OORDER via d_next_o_id) or
// loop variables (STOCK per order line) extract their warehouse from
// parameters alone.
func TestRoutingTPCC(t *testing.T) {
	cfg := workload.DefaultTPCCConfig()
	cfg.Warehouses = 4
	spec := workload.Spec(workload.NewTPCC(cfg))
	part := TPCCPartitioner{NumShards: 2}
	r := NewRouting(spec.Procs, part)

	// Warehouses place round-robin: w1→0, w2→1, w3→0, w4→1.
	items := proc.L(tuple.I(7), tuple.I(9))
	newOrderArgs := func(w, supw int64) proc.Args {
		return proc.Args{ia(w), ia(1), ia(1), items, ia(supw), ia(5), ia(2), ia(0), ia(0)}
	}
	cases := []struct {
		proc string
		args proc.Args
		want []int
	}{
		{"NewOrder", newOrderArgs(1, 1), []int{0}},
		{"NewOrder", newOrderArgs(1, 2), []int{0, 1}}, // remote supply warehouse
		{"Payment", proc.Args{ia(2), ia(1), ia(2), ia(1), ia(3), fa(10), ia(0)}, []int{1}},
		{"Payment", proc.Args{ia(2), ia(1), ia(3), ia(1), ia(3), fa(10), ia(0)}, []int{0, 1}}, // remote customer
	}
	for _, c := range cases {
		got, err := r.Route(c.proc, c.args)
		if err != nil {
			t.Errorf("Route(%s): %v", c.proc, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Route(%s) = %v, want %v", c.proc, got, c.want)
		}
	}

	// Cross-check the extraction against the packed keys themselves: the
	// warehouse WarehouseOf recovers from a key the workload would build
	// must land on the same shard the router extracted.
	keyFromPacker := uint64(2)<<32 | uint64(1)<<24 | 3 // CUSTOMER key for (w=2,d=1,c=3)
	w, ok := workload.WarehouseOf("CUSTOMER", keyFromPacker)
	if !ok || w != 2 {
		t.Fatalf("WarehouseOf(CUSTOMER) = (%d, %v)", w, ok)
	}
	wantShard, _ := part.ShardOf("CUSTOMER", w)
	got, err := r.Route("Payment", proc.Args{ia(2), ia(1), ia(2), ia(1), ia(3), fa(10), ia(0)})
	if err != nil || len(got) != 1 || got[0] != wantShard {
		t.Fatalf("Payment route %v (err %v), want [%d]", got, err, wantShard)
	}
}

// TestRoutingOpaqueFallback: a procedure whose partitioned-table key hangs
// off a read register is unroutable, and Route says so rather than
// guessing.
func TestRoutingOpaqueFallback(t *testing.T) {
	opaque := &proc.Procedure{
		Name:   "Opaque",
		Params: []proc.ParamDef{proc.P("c")},
		Body: []proc.Stmt{
			proc.Read("x", "CHECKING", proc.Pm("c"), "bal"),
			proc.Write("SAVINGS", proc.V("x"), proc.Set("bal", proc.CF(0))),
		},
	}
	r := NewRouting([]*proc.Procedure{opaque}, SmallbankPartitioner{NumShards: 2, Customers: 100})
	if _, err := r.Route("Opaque", proc.Args{ia(1)}); err == nil {
		t.Fatal("opaque procedure routed without error")
	}

	// The same body against a replicated-only partitioner routes fine: the
	// opaque key is on a table the partitioner does not constrain.
	r2 := NewRouting([]*proc.Procedure{opaque}, TPCCPartitioner{NumShards: 2})
	if got, err := r2.Route("Opaque", proc.Args{ia(1)}); err != nil || !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("replicated-only route = %v, %v", got, err)
	}
}
