package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
	"pacman/internal/wire"
)

// RouterConfig tunes a Router. The zero value of every field has a working
// default.
type RouterConfig struct {
	// QueueCap bounds concurrently dispatched requests; beyond it the
	// router's frontside answers with backpressure (default 1024).
	QueueCap int
	// RetryBackoff paces decide re-delivery to a shard that is down or
	// restarting (default 5ms).
	RetryBackoff time.Duration
	// CallTimeout, when positive, is the default per-request deadline
	// applied to backside forwards and 2PC prepares when the client did not
	// supply one. It is what lets the breaker see a hung shard: without a
	// deadline a wedged participant just blocks forever. Zero preserves the
	// unbounded legacy behavior.
	CallTimeout time.Duration
	// BreakerThreshold is how many consecutive transport failures (lost
	// connection, deadline expiry with no answer) open a shard's circuit
	// breaker (default 3).
	BreakerThreshold int
	// BreakerProbe is the cadence at which open breakers' shards are pinged;
	// an answered probe half-opens the breaker so one trial request can
	// close it (default 50ms).
	BreakerProbe time.Duration
	// Logf, when set, receives routing and 2PC diagnostics.
	Logf func(format string, args ...any)
}

// Router is the cluster's routing coordinator. Frontside it implements
// wire.Backend, so a wire.Server attached to it speaks ordinary PAC1 to
// clients; backside it holds one pipelined client per shard (a
// client.Multi, ideally dialed with KeepAlive so dead shards surface
// fast). Single-shard invocations are forwarded untouched; cross-shard
// ones run the epoch-aligned two-phase commit, with the decision log on
// dev making the router itself crash-recoverable.
//
// The Router takes ownership of the Multi: Close closes it.
type Router struct {
	cluster *Cluster
	multi   *client.Multi
	log     *coordLog
	cfg     RouterConfig

	nextGTID atomic.Uint64
	inflight atomic.Int64
	bg       atomic.Int64 // background decide deliveries in flight
	closed   atomic.Bool
	wg       sync.WaitGroup

	// breakers holds one circuit breaker per shard; the prober goroutine
	// pings open breakers' shards and half-opens them when a Pong proves
	// the shard answers again.
	breakers  []*breaker
	lastPongs []uint64
	probing   []atomic.Bool
	probeStop chan struct{}
	probeDone chan struct{}
}

// ErrRouterClosed resolves requests dispatched to (or in flight on) a
// closed router.
var ErrRouterClosed = errors.New("shard: router closed")

// NewRouter builds the coordinator over an already-dialed Multi (one
// endpoint per shard, in shard order) and a decision-log device. Before
// returning it resolves every in-doubt transaction found in the decision
// log — aborting undecided ones, re-delivering decided commits — so no
// shard is left with a dangling prepare from a previous router
// incarnation.
func NewRouter(c *Cluster, multi *client.Multi, dev *simdisk.Device, cfg RouterConfig) (*Router, error) {
	if multi.Len() != c.cfg.Shards {
		return nil, fmt.Errorf("shard: cluster has %d shards but %d endpoints dialed", c.cfg.Shards, multi.Len())
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.BreakerProbe <= 0 {
		cfg.BreakerProbe = 50 * time.Millisecond
	}
	log, pending, maxGTID, err := openCoordLog(dev)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cluster:   c,
		multi:     multi,
		log:       log,
		cfg:       cfg,
		breakers:  make([]*breaker, multi.Len()),
		lastPongs: make([]uint64, multi.Len()),
		probing:   make([]atomic.Bool, multi.Len()),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for i := range r.breakers {
		r.breakers[i] = newBreaker(cfg.BreakerThreshold)
	}
	r.nextGTID.Store(maxGTID)
	for _, p := range pending {
		phase := abortOf
		verdict := "presumed abort"
		if p.committed {
			phase = commitOf
			verdict = "re-delivering commit"
		}
		r.logf("shard: recovering gtid %d: %s", p.g.GTID, verdict)
		if _, err := r.deliver(p.g, phase); err != nil {
			return nil, fmt.Errorf("shard: resolving in-doubt gtid %d: %w", p.g.GTID, err)
		}
		if err := r.log.End(p.g.GTID); err != nil {
			return nil, err
		}
	}
	go r.probe()
	return r, nil
}

// probe watches open breakers: any Pong arriving from the shard while its
// breaker is open (our probes, keepalives, and regular traffic all count)
// half-opens it so one trial request can prove recovery. Probes are
// fire-and-forget goroutines guarded by a per-shard in-flight flag, so a
// shard whose link is down redialing cannot wedge the prober loop.
func (r *Router) probe() {
	defer close(r.probeDone)
	t := time.NewTicker(r.cfg.BreakerProbe)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
		}
		for i, b := range r.breakers {
			if b.current() != breakerOpen {
				continue
			}
			cl := r.multi.Client(i)
			if pongs := cl.Stats().Pongs; pongs > r.lastPongs[i] {
				r.lastPongs[i] = pongs
				if b.halfOpen() {
					r.logf("shard: breaker for shard %d half-open (probe answered)", i)
				}
				continue
			}
			if r.probing[i].CompareAndSwap(false, true) {
				go func(i int, cl *client.Client) {
					defer r.probing[i].Store(false)
					_ = cl.Ping()
				}(i, cl)
			}
		}
	}
}

// observe feeds one backside outcome into a shard's breaker and logs
// transitions.
func (r *Router) observe(shard int, err error) {
	if from, to := r.breakers[shard].observe(breakerFailure(err)); from != "" {
		r.logf("shard: breaker for shard %d %s -> %s (%v)", shard, from, to, err)
	}
}

// Quiesce blocks until every dispatched request and every background
// decide delivery has finished, or the timeout elapses; it reports whether
// the router fully quiesced. Callers that need protocol settlement — not
// just client-future settlement — use it: since the coordinator answers
// clients at decision time, resolved futures no longer imply the decide
// pieces have reached every participant.
func (r *Router) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for r.inflight.Load() > 0 || r.bg.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Breakers returns every shard's breaker status, in shard order.
func (r *Router) Breakers() []BreakerStatus {
	out := make([]BreakerStatus, len(r.breakers))
	for i, b := range r.breakers {
		out[i] = b.snapshot()
		out[i].Shard = i
	}
	return out
}

// Brownout implements wire.Backend: the router is in brownout — shedding
// everything at the wire with Backpressure — only when every shard's
// breaker is open (a total backside outage). With a partial outage,
// requests for live shards must still be admitted, so shedding happens
// per-request via ErrShardUnavailable instead.
func (r *Router) Brownout() bool {
	for _, b := range r.breakers {
		if b.current() != breakerOpen {
			return false
		}
	}
	return len(r.breakers) > 0
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// future is the router's durable-outcome handle, satisfying wire.Waiter.
type future struct {
	done chan struct{}
	ts   pacman.TS
	err  error
}

func newRouterFuture() *future { return &future{done: make(chan struct{})} }

func (f *future) resolve(ts pacman.TS, err error) {
	f.ts, f.err = ts, err
	close(f.done)
}

// Wait blocks until the routed request's outcome is known.
func (f *future) Wait() (pacman.TS, error) {
	<-f.done
	return f.ts, f.err
}

// errFuture returns an already-resolved future.
func errFuture(err error) *future {
	f := newRouterFuture()
	f.resolve(0, err)
	return f
}

// Procs implements wire.Backend: clients see the base workload's
// procedures, not the 2PC pieces.
func (r *Router) Procs() []string { return r.cluster.Public() }

// QueueDepth implements wire.Backend.
func (r *Router) QueueDepth() int { return int(r.inflight.Load()) }

// QueueCap implements wire.Backend.
func (r *Router) QueueCap() int { return r.cfg.QueueCap }

// Close implements wire.Backend: it stops admitting, severs the backside
// links (resolving in-flight futures), and waits the dispatch goroutines
// out.
func (r *Router) Close() {
	if r.closed.Swap(true) {
		return
	}
	close(r.probeStop)
	<-r.probeDone
	r.multi.Close()
	r.wg.Wait()
}

// TrySubmit implements wire.Backend. The blocking parts of a dispatch —
// the per-shard client windows, the 2PC phases — ride a goroutine so the
// server's read loop never stalls; admission control is the QueueCap. A
// non-zero deadline (already anchored to this router's clock) bounds the
// whole routed request, backside hops included.
func (r *Router) TrySubmit(mode wire.SubmitMode, name string, args pacman.Args, deadline time.Time) (wire.Waiter, bool) {
	switch mode {
	case wire.ModePrepare, wire.ModeDecide:
		return errFuture(fmt.Errorf("shard: the router coordinates 2PC; it does not accept %s frames", "Prepare/Decide")), true
	}
	return r.submit(mode == wire.ModeAdHoc, name, args, deadline)
}

// Submit routes one invocation (library form of the frontside).
func (r *Router) Submit(name string, args pacman.Args) wire.Waiter {
	return r.SubmitDeadline(name, args, time.Time{})
}

// SubmitDeadline is Submit with a per-request deadline (zero means none
// beyond the router's CallTimeout).
func (r *Router) SubmitDeadline(name string, args pacman.Args, deadline time.Time) wire.Waiter {
	w, ok := r.submit(false, name, args, deadline)
	if !ok {
		return errFuture(fmt.Errorf("shard: router queue full"))
	}
	return w
}

func (r *Router) submit(adHoc bool, name string, args pacman.Args, deadline time.Time) (wire.Waiter, bool) {
	if r.closed.Load() {
		return errFuture(ErrRouterClosed), true
	}
	if r.inflight.Load() >= int64(r.cfg.QueueCap) {
		return nil, false
	}
	r.inflight.Add(1)
	r.wg.Add(1)
	f := newRouterFuture()
	go r.dispatch(adHoc, name, args, deadline, f)
	return f, true
}

func (r *Router) dispatch(adHoc bool, name string, args pacman.Args, deadline time.Time, f *future) {
	defer r.wg.Done()
	defer r.inflight.Add(-1)
	if deadline.IsZero() && r.cfg.CallTimeout > 0 {
		deadline = time.Now().Add(r.cfg.CallTimeout)
	}
	shards, err := r.cluster.routing.Route(name, args)
	if err != nil {
		f.resolve(0, err)
		return
	}
	if len(shards) == 1 {
		r.forward(adHoc, shards[0], name, args, deadline, f)
		return
	}
	if adHoc {
		f.resolve(0, fmt.Errorf("shard: ad-hoc invocations cannot span shards"))
		return
	}
	r.runCross(name, shards, args, deadline, f)
}

// forward sends a single-shard invocation untouched; the shard's own
// durability contract (group-commit release) resolves the future. The
// shard's breaker gates admission and learns from the outcome.
func (r *Router) forward(adHoc bool, shard int, name string, args pacman.Args, deadline time.Time, f *future) {
	if !r.breakers[shard].allow() {
		f.resolve(0, fmt.Errorf("shard: shard %d: %w", shard, ErrShardUnavailable))
		return
	}
	cl := r.multi.Client(shard)
	var cf *client.Future
	if timeout, bounded := remainingBudget(deadline); bounded {
		if timeout <= 0 {
			r.breakers[shard].release() // never sent; free any trial slot
			f.resolve(0, fmt.Errorf("shard: shard %d: %w", shard, txn.ErrDeadlineExceeded))
			return
		}
		if adHoc {
			cf = cl.SubmitAdHocWithin(name, args, timeout)
		} else {
			cf = cl.SubmitWithin(name, args, timeout)
		}
	} else if adHoc {
		cf = cl.SubmitAdHoc(name, args)
	} else {
		cf = cl.Submit(name, args)
	}
	ts, err := cf.Wait()
	r.observe(shard, err)
	f.resolve(ts, err)
}

// remainingBudget converts a deadline into (remaining, bounded).
func remainingBudget(deadline time.Time) (time.Duration, bool) {
	if deadline.IsZero() {
		return 0, false
	}
	return time.Until(deadline), true
}

// runCross drives one cross-shard transaction through 2PC. A deadline
// bounds how long the CLIENT waits, not the protocol itself: prepares
// carry the remaining budget so a hung participant votes NO by timeout,
// abort and commit decisions always run to completion (in the background
// when the client has already been answered).
func (r *Router) runCross(name string, shards []int, args proc.Args, deadline time.Time, f *future) {
	gtid := r.nextGTID.Add(1)

	// Fail fast before touching the decision log: a participant behind an
	// open breaker would only time its prepare out, so shed now — presumed
	// abort holds trivially (no prepare ever leaves).
	for _, s := range shards {
		if !r.breakers[s].allow() {
			for _, prev := range shards {
				if prev == s {
					break
				}
				r.breakers[prev].release()
			}
			f.resolve(0, fmt.Errorf("shard: gtid %d: shard %d: %w", gtid, s, ErrShardUnavailable))
			return
		}
	}
	release := func() {
		for _, s := range shards {
			r.breakers[s].release()
		}
	}

	g, err := r.cluster.Split(name, gtid, shards, args)
	if err != nil {
		release()
		f.resolve(0, err)
		return
	}

	// Decision-point 0: the begin record (participants + their decide
	// pieces) must be durable before the first prepare leaves, so a router
	// crash can always finish the protocol from the log.
	if err := r.log.Begin(g); err != nil {
		release()
		f.resolve(0, err)
		return
	}

	// Phase 1: prepares, in parallel. Each ack means "executed AND durable
	// at my pepoch" — the prepare future resolves at the participant's
	// group-commit release, which is what aligns the 2PC prepare point
	// with the shards' epoch cadence. With a deadline, each prepare carries
	// the remaining budget, so a gray participant resolves
	// ErrDeadlineExceeded instead of hanging the coordinator.
	budget, bounded := remainingBudget(deadline)
	prepFuts := make([]*client.Future, len(g.Parts))
	for i, p := range g.Parts {
		if bounded {
			if budget <= 0 {
				budget = time.Nanosecond // already late: let the timer vote NO
			}
			prepFuts[i] = r.multi.Client(p.Shard).PrepareWithin(p.Prepare.Proc, p.Prepare.Args, budget)
		} else {
			prepFuts[i] = r.multi.Prepare(p.Shard, p.Prepare.Proc, p.Prepare.Args)
		}
	}
	var prepErr error
	for i, pf := range prepFuts {
		_, err := pf.Wait()
		r.observe(g.Parts[i].Shard, err)
		if err != nil && prepErr == nil {
			prepErr = fmt.Errorf("shard: gtid %d: prepare on shard %d: %w", gtid, g.Parts[i].Shard, err)
		}
	}

	if prepErr != nil {
		// Any NO vote, failure, or unknown outcome decides abort. No
		// decision record is needed (presumed abort); the abort pieces are
		// idempotent and safe even where the prepare never executed. The
		// client learns the abort NOW — the decision is final the moment it
		// is taken — while the abort pieces are delivered in the background
		// (a hung participant must not hold the answer hostage; if the
		// router dies first, recovery re-derives presumed abort from the
		// begin record).
		f.resolve(0, prepErr)
		r.wg.Add(1)
		r.bg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.bg.Add(-1)
			if _, err := r.deliver(g, abortOf); err != nil {
				r.logf("shard: gtid %d: abort delivery interrupted: %v", gtid, err)
				return
			}
			_ = r.log.End(gtid)
		}()
		return
	}

	// Decision point: every participant's prepare is durable; log commit
	// before any participant may learn of it.
	if err := r.log.Commit(gtid); err != nil {
		// Decision durability unknown — resolve uncertain and let recovery
		// settle it (commit record present → re-deliver; absent → abort).
		f.resolve(0, fmt.Errorf("shard: gtid %d: logging commit decision: %w", gtid, err))
		return
	}

	// Phase 2: commit decides, re-delivered until every participant acks.
	// The client's wait is bounded by its deadline; delivery itself is not
	// (a decision must reach every participant), so a late delivery keeps
	// running in the background and the client gets the honest "committed,
	// maybe not yet everywhere" deadline outcome.
	type delivered struct {
		ts  pacman.TS
		err error
	}
	ch := make(chan delivered, 1)
	r.wg.Add(1)
	r.bg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.bg.Add(-1)
		ts, err := r.deliver(g, commitOf)
		if err == nil {
			_ = r.log.End(gtid)
		}
		ch <- delivered{ts, err}
	}()
	var timeout <-chan time.Time
	if left, ok := remainingBudget(deadline); ok {
		if left <= 0 {
			left = time.Nanosecond
		}
		t := time.NewTimer(left)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case d := <-ch:
		if d.err != nil {
			// Committed but delivery interrupted (router closing): recovery
			// re-delivers from the log. The client's outcome is "maybe".
			f.resolve(0, fmt.Errorf("shard: gtid %d: committed, delivery incomplete: %w", gtid, d.err))
			return
		}
		f.resolve(d.ts, nil)
	case <-timeout:
		f.resolve(0, fmt.Errorf("shard: gtid %d: committed, delivery past deadline: %w", gtid, txn.ErrDeadlineExceeded))
	}
}

func commitOf(p Participant) Invocation { return p.Commit }
func abortOf(p Participant) Invocation  { return p.Abort }

// deliver sends one decide phase to every participant in parallel and
// waits until each has durably acked, re-sending through transient
// failures (shard down, restarting, crashed-before-durable) — decide
// pieces are status-gated, so re-delivery is idempotent. It returns the
// largest participant commit timestamp.
func (r *Router) deliver(g *gtxn, phase func(Participant) Invocation) (pacman.TS, error) {
	var (
		mu    sync.Mutex
		maxTS pacman.TS
		first error
		wg    sync.WaitGroup
	)
	for _, p := range g.Parts {
		wg.Add(1)
		go func(p Participant) {
			defer wg.Done()
			inv := phase(p)
			for {
				if r.closed.Load() {
					mu.Lock()
					if first == nil {
						first = ErrRouterClosed
					}
					mu.Unlock()
					return
				}
				ts, err := r.multi.Decide(p.Shard, inv.Proc, inv.Args).Wait()
				if err == nil {
					mu.Lock()
					if ts > maxTS {
						maxTS = ts
					}
					mu.Unlock()
					return
				}
				if errors.Is(err, wire.ErrUnknownProc) {
					// Configuration drift, not a transient: re-sending can
					// never succeed.
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("shard: gtid %d: decide %s on shard %d: %w", g.GTID, inv.Proc, p.Shard, err)
					}
					mu.Unlock()
					return
				}
				r.logf("shard: gtid %d: decide %s on shard %d: %v (retrying)", g.GTID, inv.Proc, p.Shard, err)
				time.Sleep(r.cfg.RetryBackoff)
			}
		}(p)
	}
	wg.Wait()
	return maxTS, first
}
