package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/wire"
)

// RouterConfig tunes a Router. The zero value of every field has a working
// default.
type RouterConfig struct {
	// QueueCap bounds concurrently dispatched requests; beyond it the
	// router's frontside answers with backpressure (default 1024).
	QueueCap int
	// RetryBackoff paces decide re-delivery to a shard that is down or
	// restarting (default 5ms).
	RetryBackoff time.Duration
	// Logf, when set, receives routing and 2PC diagnostics.
	Logf func(format string, args ...any)
}

// Router is the cluster's routing coordinator. Frontside it implements
// wire.Backend, so a wire.Server attached to it speaks ordinary PAC1 to
// clients; backside it holds one pipelined client per shard (a
// client.Multi, ideally dialed with KeepAlive so dead shards surface
// fast). Single-shard invocations are forwarded untouched; cross-shard
// ones run the epoch-aligned two-phase commit, with the decision log on
// dev making the router itself crash-recoverable.
//
// The Router takes ownership of the Multi: Close closes it.
type Router struct {
	cluster *Cluster
	multi   *client.Multi
	log     *coordLog
	cfg     RouterConfig

	nextGTID atomic.Uint64
	inflight atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// ErrRouterClosed resolves requests dispatched to (or in flight on) a
// closed router.
var ErrRouterClosed = errors.New("shard: router closed")

// NewRouter builds the coordinator over an already-dialed Multi (one
// endpoint per shard, in shard order) and a decision-log device. Before
// returning it resolves every in-doubt transaction found in the decision
// log — aborting undecided ones, re-delivering decided commits — so no
// shard is left with a dangling prepare from a previous router
// incarnation.
func NewRouter(c *Cluster, multi *client.Multi, dev *simdisk.Device, cfg RouterConfig) (*Router, error) {
	if multi.Len() != c.cfg.Shards {
		return nil, fmt.Errorf("shard: cluster has %d shards but %d endpoints dialed", c.cfg.Shards, multi.Len())
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	log, pending, maxGTID, err := openCoordLog(dev)
	if err != nil {
		return nil, err
	}
	r := &Router{cluster: c, multi: multi, log: log, cfg: cfg}
	r.nextGTID.Store(maxGTID)
	for _, p := range pending {
		phase := abortOf
		verdict := "presumed abort"
		if p.committed {
			phase = commitOf
			verdict = "re-delivering commit"
		}
		r.logf("shard: recovering gtid %d: %s", p.g.GTID, verdict)
		if _, err := r.deliver(p.g, phase); err != nil {
			return nil, fmt.Errorf("shard: resolving in-doubt gtid %d: %w", p.g.GTID, err)
		}
		if err := r.log.End(p.g.GTID); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// future is the router's durable-outcome handle, satisfying wire.Waiter.
type future struct {
	done chan struct{}
	ts   pacman.TS
	err  error
}

func newRouterFuture() *future { return &future{done: make(chan struct{})} }

func (f *future) resolve(ts pacman.TS, err error) {
	f.ts, f.err = ts, err
	close(f.done)
}

// Wait blocks until the routed request's outcome is known.
func (f *future) Wait() (pacman.TS, error) {
	<-f.done
	return f.ts, f.err
}

// errFuture returns an already-resolved future.
func errFuture(err error) *future {
	f := newRouterFuture()
	f.resolve(0, err)
	return f
}

// Procs implements wire.Backend: clients see the base workload's
// procedures, not the 2PC pieces.
func (r *Router) Procs() []string { return r.cluster.Public() }

// QueueDepth implements wire.Backend.
func (r *Router) QueueDepth() int { return int(r.inflight.Load()) }

// QueueCap implements wire.Backend.
func (r *Router) QueueCap() int { return r.cfg.QueueCap }

// Close implements wire.Backend: it stops admitting, severs the backside
// links (resolving in-flight futures), and waits the dispatch goroutines
// out.
func (r *Router) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.multi.Close()
	r.wg.Wait()
}

// TrySubmit implements wire.Backend. The blocking parts of a dispatch —
// the per-shard client windows, the 2PC phases — ride a goroutine so the
// server's read loop never stalls; admission control is the QueueCap.
func (r *Router) TrySubmit(mode wire.SubmitMode, name string, args pacman.Args) (wire.Waiter, bool) {
	switch mode {
	case wire.ModePrepare, wire.ModeDecide:
		return errFuture(fmt.Errorf("shard: the router coordinates 2PC; it does not accept %s frames", "Prepare/Decide")), true
	}
	return r.submit(mode == wire.ModeAdHoc, name, args)
}

// Submit routes one invocation (library form of the frontside).
func (r *Router) Submit(name string, args pacman.Args) wire.Waiter {
	w, ok := r.submit(false, name, args)
	if !ok {
		return errFuture(fmt.Errorf("shard: router queue full"))
	}
	return w
}

func (r *Router) submit(adHoc bool, name string, args pacman.Args) (wire.Waiter, bool) {
	if r.closed.Load() {
		return errFuture(ErrRouterClosed), true
	}
	if r.inflight.Load() >= int64(r.cfg.QueueCap) {
		return nil, false
	}
	r.inflight.Add(1)
	r.wg.Add(1)
	f := newRouterFuture()
	go r.dispatch(adHoc, name, args, f)
	return f, true
}

func (r *Router) dispatch(adHoc bool, name string, args pacman.Args, f *future) {
	defer r.wg.Done()
	defer r.inflight.Add(-1)
	shards, err := r.cluster.routing.Route(name, args)
	if err != nil {
		f.resolve(0, err)
		return
	}
	if len(shards) == 1 {
		// Single-shard: forward untouched; the shard's own durability
		// contract (group-commit release) resolves the future.
		cl := r.multi.Client(shards[0])
		var cf *client.Future
		if adHoc {
			cf = cl.SubmitAdHoc(name, args)
		} else {
			cf = cl.Submit(name, args)
		}
		f.resolve(cf.Wait())
		return
	}
	if adHoc {
		f.resolve(0, fmt.Errorf("shard: ad-hoc invocations cannot span shards"))
		return
	}
	r.runCross(name, shards, args, f)
}

// runCross drives one cross-shard transaction through 2PC.
func (r *Router) runCross(name string, shards []int, args proc.Args, f *future) {
	gtid := r.nextGTID.Add(1)
	g, err := r.cluster.Split(name, gtid, shards, args)
	if err != nil {
		f.resolve(0, err)
		return
	}

	// Decision-point 0: the begin record (participants + their decide
	// pieces) must be durable before the first prepare leaves, so a router
	// crash can always finish the protocol from the log.
	if err := r.log.Begin(g); err != nil {
		f.resolve(0, err)
		return
	}

	// Phase 1: prepares, in parallel. Each ack means "executed AND durable
	// at my pepoch" — the prepare future resolves at the participant's
	// group-commit release, which is what aligns the 2PC prepare point
	// with the shards' epoch cadence.
	prepFuts := make([]*client.Future, len(g.Parts))
	for i, p := range g.Parts {
		prepFuts[i] = r.multi.Prepare(p.Shard, p.Prepare.Proc, p.Prepare.Args)
	}
	var prepErr error
	for i, pf := range prepFuts {
		if _, err := pf.Wait(); err != nil && prepErr == nil {
			prepErr = fmt.Errorf("shard: gtid %d: prepare on shard %d: %w", gtid, g.Parts[i].Shard, err)
		}
	}

	if prepErr != nil {
		// Any NO vote, failure, or unknown outcome decides abort. No
		// decision record is needed (presumed abort); the abort pieces are
		// idempotent and safe even where the prepare never executed.
		if _, err := r.deliver(g, abortOf); err != nil {
			f.resolve(0, err)
			return
		}
		_ = r.log.End(gtid)
		f.resolve(0, prepErr)
		return
	}

	// Decision point: every participant's prepare is durable; log commit
	// before any participant may learn of it.
	if err := r.log.Commit(gtid); err != nil {
		// Decision durability unknown — resolve uncertain and let recovery
		// settle it (commit record present → re-deliver; absent → abort).
		f.resolve(0, fmt.Errorf("shard: gtid %d: logging commit decision: %w", gtid, err))
		return
	}

	// Phase 2: commit decides, re-delivered until every participant acks.
	ts, err := r.deliver(g, commitOf)
	if err != nil {
		// Committed but delivery interrupted (router closing): recovery
		// re-delivers from the log. The client's outcome is "maybe".
		f.resolve(0, fmt.Errorf("shard: gtid %d: committed, delivery incomplete: %w", gtid, err))
		return
	}
	_ = r.log.End(gtid)
	f.resolve(ts, nil)
}

func commitOf(p Participant) Invocation { return p.Commit }
func abortOf(p Participant) Invocation  { return p.Abort }

// deliver sends one decide phase to every participant in parallel and
// waits until each has durably acked, re-sending through transient
// failures (shard down, restarting, crashed-before-durable) — decide
// pieces are status-gated, so re-delivery is idempotent. It returns the
// largest participant commit timestamp.
func (r *Router) deliver(g *gtxn, phase func(Participant) Invocation) (pacman.TS, error) {
	var (
		mu    sync.Mutex
		maxTS pacman.TS
		first error
		wg    sync.WaitGroup
	)
	for _, p := range g.Parts {
		wg.Add(1)
		go func(p Participant) {
			defer wg.Done()
			inv := phase(p)
			for {
				if r.closed.Load() {
					mu.Lock()
					if first == nil {
						first = ErrRouterClosed
					}
					mu.Unlock()
					return
				}
				ts, err := r.multi.Decide(p.Shard, inv.Proc, inv.Args).Wait()
				if err == nil {
					mu.Lock()
					if ts > maxTS {
						maxTS = ts
					}
					mu.Unlock()
					return
				}
				if errors.Is(err, wire.ErrUnknownProc) {
					// Configuration drift, not a transient: re-sending can
					// never succeed.
					mu.Lock()
					if first == nil {
						first = fmt.Errorf("shard: gtid %d: decide %s on shard %d: %w", g.GTID, inv.Proc, p.Shard, err)
					}
					mu.Unlock()
					return
				}
				r.logf("shard: gtid %d: decide %s on shard %d: %v (retrying)", g.GTID, inv.Proc, p.Shard, err)
				time.Sleep(r.cfg.RetryBackoff)
			}
		}(p)
	}
	wg.Wait()
	return maxTS, first
}
