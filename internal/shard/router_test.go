package shard

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/simdisk"
	"pacman/internal/wire"
)

// testCluster is a live 2-shard Smallbank deployment over loopback TCP.
type testCluster struct {
	cluster *Cluster
	dbs     []*pacman.DB
	srvs    []*wire.Server
	addrs   []string
}

func launchCluster(t *testing.T, shards, customers int) *testCluster {
	t.Helper()
	tc := &testCluster{cluster: NewSmallbankCluster(Config{Shards: shards, Customers: customers})}
	for i := 0; i < shards; i++ {
		db := pacman.MustLaunch(tc.cluster.ShardBlueprint(i), tc.cluster.ShardOptions(pacman.Options{
			Logging:       pacman.CommandLogging,
			EpochInterval: time.Millisecond,
		}))
		srv := wire.NewServer(wire.ServerConfig{Workers: 2})
		if err := srv.Attach(db); err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tc.dbs = append(tc.dbs, db)
		tc.srvs = append(tc.srvs, srv)
		tc.addrs = append(tc.addrs, addr.String())
	}
	t.Cleanup(func() {
		for _, s := range tc.srvs {
			s.Close()
		}
		for _, d := range tc.dbs {
			d.Close()
		}
	})
	return tc
}

func (tc *testCluster) dial(t *testing.T) *client.Multi {
	t.Helper()
	m, err := client.DialMulti("tcp", tc.addrs, client.Config{Window: 8, KeepAlive: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// checking reads a customer's CHECKING balance straight out of a shard's
// engine.
func checking(t *testing.T, db *pacman.DB, custid uint64) float64 {
	t.Helper()
	r, ok := db.Table("CHECKING").GetRow(custid)
	if !ok {
		t.Fatalf("CHECKING row %d missing", custid)
	}
	return r.LatestData()[1].Float()
}

// status2pc reads a shard's 2PC status row for one gtid; 0 means no row
// (no piece ever ran there).
func status2pc(db *pacman.DB, gtid uint64) int64 {
	r, ok := db.Table(StatusTable).GetRow(gtid)
	if !ok {
		return 0
	}
	return r.LatestData()[1].Int()
}

func payArgs(c1, c2 int64, amt float64) pacman.Args {
	return pacman.Args{pacman.A(pacman.I(c1)), pacman.A(pacman.I(c2)), pacman.A(pacman.F(amt))}
}

// TestRouterEndToEnd drives single-shard forwards, a cross-shard commit,
// a funds-check abort, and the no-split error through a live 2-shard
// cluster. Customers 1–20 live on shard 0, 21–40 on shard 1.
func TestRouterEndToEnd(t *testing.T) {
	tc := launchCluster(t, 2, 40)
	dev := simdisk.New("router-log", simdisk.Config{})
	r, err := NewRouter(tc.cluster, tc.dial(t), dev, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Single-shard: forwarded untouched to the owning shard.
	if _, err := r.Submit("DepositChecking",
		pacman.Args{pacman.A(pacman.I(3)), pacman.A(pacman.F(25))}).Wait(); err != nil {
		t.Fatalf("single-shard deposit: %v", err)
	}
	if got := checking(t, tc.dbs[0], 3); got != 1025 {
		t.Fatalf("shard 0 CHECKING(3) = %v, want 1025", got)
	}
	if _, err := r.Submit("Balance", pacman.Args{pacman.A(pacman.I(30))}).Wait(); err != nil {
		t.Fatalf("single-shard balance on shard 1: %v", err)
	}

	// Cross-shard commit: debit on shard 0, credit on shard 1, both
	// statuses committed by the time the future resolves.
	ts, err := r.Submit("SendPayment", payArgs(1, 30, 100)).Wait()
	if err != nil {
		t.Fatalf("cross-shard SendPayment: %v", err)
	}
	if ts == 0 {
		t.Fatal("cross-shard commit resolved with zero timestamp")
	}
	if got := checking(t, tc.dbs[0], 1); got != 900 {
		t.Fatalf("debit shard CHECKING(1) = %v, want 900", got)
	}
	if got := checking(t, tc.dbs[1], 30); got != 1100 {
		t.Fatalf("credit shard CHECKING(30) = %v, want 1100", got)
	}
	const gtid1 = 1 // first cross-shard transaction on a fresh router
	for i, db := range tc.dbs {
		if st := status2pc(db, gtid1); st != StatusCommitted {
			t.Fatalf("shard %d gtid %d status = %d, want committed", i, gtid1, st)
		}
	}

	// Cross-shard abort: the debit piece votes no (insufficient funds);
	// the credit piece's prepared effect is compensated on the other shard.
	// The future resolves at the abort decision, so wait for the abort
	// pieces themselves to land before auditing shard state.
	if _, err := r.Submit("SendPayment", payArgs(2, 31, 1e9)).Wait(); err == nil {
		t.Fatal("unfunded cross-shard SendPayment committed")
	}
	if !r.Quiesce(5 * time.Second) {
		t.Fatal("router did not quiesce abort delivery")
	}
	if got := checking(t, tc.dbs[0], 2); got != 1000 {
		t.Fatalf("after abort, CHECKING(2) = %v, want 1000", got)
	}
	if got := checking(t, tc.dbs[1], 31); got != 1000 {
		t.Fatalf("after abort, CHECKING(31) = %v, want 1000", got)
	}
	for i, db := range tc.dbs {
		if st := status2pc(db, gtid1+1); st != StatusAborted {
			t.Fatalf("shard %d gtid %d status = %d, want aborted", i, gtid1+1, st)
		}
	}

	// A cross-shard procedure without a registered split fails loudly
	// instead of executing half a transaction.
	if _, err := r.Submit("Amalgamate",
		pacman.Args{pacman.A(pacman.I(4)), pacman.A(pacman.I(34))}).Wait(); err == nil {
		t.Fatal("cross-shard Amalgamate did not fail")
	}
	if got := checking(t, tc.dbs[0], 4); got != 1000 {
		t.Fatalf("after rejected Amalgamate, CHECKING(4) = %v, want 1000", got)
	}

	// Ad-hoc invocations cannot span shards.
	w, ok := r.TrySubmit(wire.ModeAdHoc, "SendPayment", payArgs(5, 35, 1), time.Time{})
	if !ok {
		t.Fatal("TrySubmit backpressured an empty router")
	}
	if _, err := w.Wait(); err == nil {
		t.Fatal("ad-hoc cross-shard invocation succeeded")
	}
}

// TestRouterRecovery leaves two in-doubt transactions in a decision log —
// one decided (commit, no end) and one undecided (begin only) — with their
// prepares already applied on the shards, then builds a fresh router over
// that log and verifies construction settles both: the decided one is
// re-delivered to committed, the undecided one presumed aborted and
// compensated.
func TestRouterRecovery(t *testing.T) {
	tc := launchCluster(t, 2, 40)
	m := tc.dial(t)

	// gtid 7: both prepares applied and durable, decision logged commit.
	g7, err := tc.cluster.Split("SendPayment", 7, []int{0, 1}, payArgs(5, 25, 75))
	if err != nil {
		t.Fatal(err)
	}
	// gtid 9: both prepares applied, no decision.
	g9, err := tc.cluster.Split("SendPayment", 9, []int{0, 1}, payArgs(6, 26, 40))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*gtxn{g7, g9} {
		for _, p := range g.Parts {
			if _, err := m.Prepare(p.Shard, p.Prepare.Proc, p.Prepare.Args).Wait(); err != nil {
				t.Fatalf("gtid %d prepare on shard %d: %v", g.GTID, p.Shard, err)
			}
		}
	}
	if got := checking(t, tc.dbs[0], 5); got != 925 {
		t.Fatalf("prepared debit CHECKING(5) = %v, want 925", got)
	}

	// Write the decision log the crashed router incarnation would have left.
	dev := simdisk.New("router-log", simdisk.Config{})
	log, _, _, err := openCoordLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Begin(g7); err != nil {
		t.Fatal(err)
	}
	if err := log.Commit(7); err != nil {
		t.Fatal(err)
	}
	if err := log.Begin(g9); err != nil {
		t.Fatal(err)
	}

	// A fresh router over the same log resolves both before serving.
	r, err := NewRouter(tc.cluster, m, dev, RouterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// gtid 7 committed: money moved, statuses committed everywhere.
	if got := checking(t, tc.dbs[0], 5); got != 925 {
		t.Fatalf("recovered commit CHECKING(5) = %v, want 925", got)
	}
	if got := checking(t, tc.dbs[1], 25); got != 1075 {
		t.Fatalf("recovered commit CHECKING(25) = %v, want 1075", got)
	}
	for i, db := range tc.dbs {
		if st := status2pc(db, 7); st != StatusCommitted {
			t.Fatalf("shard %d gtid 7 status = %d, want committed", i, st)
		}
	}

	// gtid 9 presumed abort: prepared effects compensated, statuses aborted.
	if got := checking(t, tc.dbs[0], 6); got != 1000 {
		t.Fatalf("recovered abort CHECKING(6) = %v, want 1000", got)
	}
	if got := checking(t, tc.dbs[1], 26); got != 1000 {
		t.Fatalf("recovered abort CHECKING(26) = %v, want 1000", got)
	}
	for i, db := range tc.dbs {
		if st := status2pc(db, 9); st != StatusAborted {
			t.Fatalf("shard %d gtid 9 status = %d, want aborted", i, st)
		}
	}

	// The recovered gtid sequence resumes past everything the shards saw:
	// the next cross-shard transaction takes gtid 10.
	if _, err := r.Submit("SendPayment", payArgs(8, 28, 10)).Wait(); err != nil {
		t.Fatalf("post-recovery SendPayment: %v", err)
	}
	for i, db := range tc.dbs {
		if st := status2pc(db, 10); st != StatusCommitted {
			t.Fatalf("shard %d gtid 10 status = %d, want committed", i, st)
		}
	}
}

// TestMixedStreamRecovery interleaves command-logged local transactions
// with value-logged 2PC pieces on ONE shard, then crashes and restarts it —
// twice — verifying the mixed log stream replays to the right state: the
// deposits re-execute, the pieces reload as values.
func TestMixedStreamRecovery(t *testing.T) {
	cluster := NewSmallbankCluster(Config{Shards: 1, Customers: 10})
	bp := cluster.ShardBlueprint(0)
	opts := cluster.ShardOptions(pacman.Options{
		Logging:       pacman.CommandLogging,
		EpochInterval: time.Millisecond,
	})
	db := pacman.MustLaunch(bp, opts)
	fe := db.MustFrontend(pacman.FrontendConfig{})

	gtidArg := func(g int64) pacman.Args { return pacman.Args{pacman.A(pacman.I(g))} }
	pieceArgs := func(g, c int64, amt float64) pacman.Args {
		return pacman.Args{pacman.A(pacman.I(g)), pacman.A(pacman.I(c)), pacman.A(pacman.F(amt))}
	}
	deposit := func(c int64, amt float64) *pacman.Future {
		return fe.Submit("DepositChecking", pacman.Args{pacman.A(pacman.I(c)), pacman.A(pacman.F(amt))})
	}

	// Interleave: local deposits on the same accounts the dist pieces
	// touch, with piece pairs (prepare durable before its decide goes in).
	var futs []*pacman.Future
	futs = append(futs, deposit(1, 10), deposit(2, 10))
	if _, err := fe.SubmitDist("Pay2PCDebit", pieceArgs(1, 1, 100)).Wait(); err != nil {
		t.Fatalf("dist debit: %v", err)
	}
	futs = append(futs, deposit(1, 10), fe.SubmitDist("Pay2PCCommit", gtidArg(1)))
	if _, err := fe.SubmitDist("Pay2PCCredit", pieceArgs(2, 2, 50)).Wait(); err != nil {
		t.Fatalf("dist credit: %v", err)
	}
	futs = append(futs, fe.SubmitDist("Pay2PCCommit", gtidArg(2)), deposit(2, 10))
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	want1, want2 := 1000.0+20-100, 1000.0+20+50
	if got := checking(t, db, 1); got != want1 {
		t.Fatalf("pre-crash CHECKING(1) = %v, want %v", got, want1)
	}

	verify := func(db *pacman.DB, round string) {
		t.Helper()
		if got := checking(t, db, 1); got != want1 {
			t.Errorf("%s: CHECKING(1) = %v, want %v", round, got, want1)
		}
		if got := checking(t, db, 2); got != want2 {
			t.Errorf("%s: CHECKING(2) = %v, want %v", round, got, want2)
		}
		for g := uint64(1); g <= 2; g++ {
			if st := status2pc(db, g); st != StatusCommitted {
				t.Errorf("%s: gtid %d status = %d, want committed", round, g, st)
			}
		}
	}

	db.Crash()
	db2, res, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{Serve: opts})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries == 0 {
		t.Fatal("first recovery replayed no log entries")
	}
	verify(db2, "first restart")

	// Re-entrancy: commit more mixed work on the recovered instance, crash
	// again, and recover the doubly-mixed stream.
	fe2 := db2.MustFrontend(pacman.FrontendConfig{})
	if _, err := fe2.SubmitDist("Pay2PCDebit", pieceArgs(3, 1, 30)).Wait(); err != nil {
		t.Fatalf("post-restart dist debit: %v", err)
	}
	if _, err := fe2.SubmitDist("Pay2PCCommit", gtidArg(3)).Wait(); err != nil {
		t.Fatalf("post-restart dist commit: %v", err)
	}
	if _, err := fe2.Submit("DepositChecking",
		pacman.Args{pacman.A(pacman.I(1)), pacman.A(pacman.F(5))}).Wait(); err != nil {
		t.Fatal(err)
	}
	want1 += -30 + 5

	db2.Crash()
	db3, _, err := pacman.Restart(db2.Devices(), bp, pacman.RecoverConfig{Serve: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	verify(db3, "second restart")
	if st := status2pc(db3, 3); st != StatusCommitted {
		t.Errorf("second restart: gtid 3 status = %d, want committed", st)
	}
}

// wedgeProxy is a TCP proxy whose forwarding can be wedged: while wedged,
// the pipe goroutines block BEFORE writing, so every byte queues (in the
// proxy or the kernel) and nothing is lost or torn — exactly a hung, not
// crashed, participant. Unwedging releases the held bytes and the shard
// "returns" with its stream intact.
type wedgeProxy struct {
	addr string
	ln   net.Listener

	mu     sync.Mutex
	cond   *sync.Cond
	wedged bool
}

func startWedgeProxy(t *testing.T, backend string) *wedgeProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &wedgeProxy{addr: ln.Addr().String(), ln: ln}
	p.cond = sync.NewCond(&p.mu)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			b, err := net.Dial("tcp", backend)
			if err != nil {
				c.Close()
				continue
			}
			go p.pipe(c, b)
			go p.pipe(b, c)
		}
	}()
	t.Cleanup(func() {
		p.setWedged(false) // unblock pipes so they can observe the close
		ln.Close()
	})
	return p
}

func (p *wedgeProxy) setWedged(on bool) {
	p.mu.Lock()
	p.wedged = on
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *wedgeProxy) pipe(dst, src net.Conn) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			for p.wedged {
				p.cond.Wait()
			}
			p.mu.Unlock()
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestRouterHungShardBreaker: a shard that hangs — answers nothing, drops
// nothing — must not drag cross-shard commits into an indefinite stall.
// The router's call timeout turns silence into a presumed-abort failure in
// under twice the deadline, consecutive failures open the shard's breaker
// (after which requests shed at admission without waiting out the deadline,
// carrying the never-executed backpressure sentinel), the healthy shard
// keeps serving throughout, and when the shard returns the prober
// half-opens the breaker and cross-shard service resumes on its own.
func TestRouterHungShardBreaker(t *testing.T) {
	tc := launchCluster(t, 2, 40)
	px := startWedgeProxy(t, tc.addrs[1])
	m, err := client.DialMulti("tcp", []string{tc.addrs[0], px.addr},
		client.Config{Window: 8, KeepAlive: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const callTimeout = 250 * time.Millisecond
	r, err := NewRouter(tc.cluster, m, simdisk.New("router-log", simdisk.Config{}), RouterConfig{
		CallTimeout:      callTimeout,
		BreakerThreshold: 2,
		BreakerProbe:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.Submit("SendPayment", payArgs(1, 30, 10)).Wait(); err != nil {
		t.Fatalf("healthy cross-shard payment: %v", err)
	}

	px.setWedged(true)

	start := time.Now()
	if _, err := r.Submit("SendPayment", payArgs(2, 31, 10)).Wait(); err == nil {
		t.Fatal("cross-shard commit succeeded against a hung shard")
	}
	if el := time.Since(start); el >= 2*callTimeout {
		t.Fatalf("hung-shard cross-shard failure took %v, want < %v", el, 2*callTimeout)
	}

	// Keep the timeouts coming until the breaker opens.
	deadline := time.Now().Add(10 * time.Second)
	for r.Breakers()[1].State != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", r.Breakers())
		}
		r.Submit("Balance", pacman.Args{pacman.A(pacman.I(30))}).Wait()
	}

	// Open breaker: shed at admission, well under the deadline.
	start = time.Now()
	_, err = r.Submit("Balance", pacman.Args{pacman.A(pacman.I(30))}).Wait()
	if err == nil {
		t.Fatal("open breaker admitted a request to a hung shard")
	}
	if !errors.Is(err, wire.ErrBackpressure) {
		t.Fatalf("open-breaker error = %v, want the ErrBackpressure sentinel", err)
	}
	if el := time.Since(start); el >= callTimeout {
		t.Fatalf("open-breaker shed took %v, want < %v", el, callTimeout)
	}

	// The healthy shard serves on, unaffected.
	if _, err := r.Submit("DepositChecking",
		pacman.Args{pacman.A(pacman.I(3)), pacman.A(pacman.F(5))}).Wait(); err != nil {
		t.Fatalf("healthy shard failed during the outage: %v", err)
	}

	// The shard returns: probe -> half-open -> trial -> closed, and
	// cross-shard service resumes without any operator action.
	px.setWedged(false)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, err := r.Submit("SendPayment", payArgs(4, 34, 10)).Wait(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cross-shard service never recovered: breakers %+v", r.Breakers())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !r.Quiesce(5 * time.Second) {
		t.Fatal("router did not quiesce after recovery")
	}
}
