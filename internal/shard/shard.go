// Package shard is the sharded-cluster subsystem: a routing coordinator
// (Router) that maps stored-procedure invocations onto N pacmand shards by
// their partition keys, plus the epoch-aligned two-phase commit that makes
// the rare cross-shard transaction atomically durable across shards.
//
// The pieces:
//
//   - Routing (route.go) extracts each procedure's partition-attribute
//     footprint statically from its IR — no annotations: key expressions on
//     partitioned tables are walked down their packing spine to the
//     partition attribute (the warehouse id for TPC-C, the customer id for
//     Smallbank) and evaluated from the invocation's parameters alone.
//   - Cluster (cluster.go) builds the per-shard blueprints: the base
//     workload catalog plus a 2PC status table and the status-gated piece
//     procedures a cross-shard commit executes on each participant.
//   - coordLog (coordlog.go) is the coordinator's decision log on a
//     simulated device: a synced begin record (carrying every participant's
//     piece invocations) before any prepare is sent, a synced commit record
//     before any commit decide, and an unsynced end record — the classic
//     presumed-abort discipline, so recovery aborts begin-without-commit
//     and re-delivers commit-without-end.
//   - Router (router.go) ties them together and implements wire.Backend,
//     so the same PAC1 server that fronts one shard fronts the cluster.
//
// The 2PC prepare point rides each shard's epoch group commit: a prepare
// piece is submitted as a distributed transaction (value-logged — see
// wal's flagDist) and its ack resolves only when the participant's pepoch
// covers it. The coordinator therefore never logs a commit decision whose
// prepares could be lost to a participant crash.
package shard
