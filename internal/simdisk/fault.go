package simdisk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault plane
//
// A FaultPlan arms deterministic power failures and media faults on a group
// of devices, at byte/op granularity. The torture subsystem derives plans
// from a seeded RNG, so a failing run reproduces from its printed seed and
// plan. Two fault families exist:
//
//   - Power failures: when any armed trigger fires (the Nth write, sync, or
//     read on a device, or a cumulative written-byte watermark reached
//     mid-write), the WHOLE group power-fails at that instant, as in a real
//     outage — every device freezes its persisted image and every later
//     write, sync, or read fails with ErrPowerFailed. The persisted image
//     is the durable prefix plus, when TornTailBytes is armed, a partial
//     unsynced tail (optionally bit-flipped), modeling sectors that reached
//     the platter out of a larger unsynced write. Devices freeze at their
//     own watermarks, so a group crash naturally produces per-device
//     durability skew.
//   - Transient media faults: ReadErrAfterReads fails exactly one read with
//     ErrInjectedRead and then disarms, modeling a retryable media error
//     during recovery reload.
//   - Latency (gray) faults: the device stays up and loses nothing, but gets
//     slow — per-op delays (WriteDelay/SyncDelay/ReadDelay), a one-shot sync
//     stall (SyncStallAfter), or a permanently hung sync (HangSyncAfter)
//     that blocks until Disarm (the device came back: the sync completes
//     normally) or a crash/power failure (it fails without advancing
//     durability). Unlike the modeled occupancy clock, gray delays burn real
//     wall time, so the health watchdog observes them exactly as it would a
//     browning-out SSD.
//
// Clients that care about durability must check Sync errors: after a power
// failure Sync fails and the durable watermark does not advance, so an
// acknowledgment issued despite a failed Sync is a durability bug the
// torture oracle will catch.

// ErrPowerFailed is returned by device operations after an armed fault has
// power-failed the device's group. The instance keeps "running" until its
// driver observes the trip; nothing it writes after this lands.
var ErrPowerFailed = errors.New("simdisk: device group power-failed")

// ErrInjectedRead is the transient, one-shot read fault armed by
// DeviceFaults.ReadErrAfterReads.
var ErrInjectedRead = errors.New("simdisk: injected transient read error")

// DeviceFaults arms the fault triggers of one device in a plan. All
// triggers count operations on this device from the moment Arm is called;
// zero disables a trigger.
type DeviceFaults struct {
	// CrashAfterWrites power-fails the group when this device completes its
	// Nth write call.
	CrashAfterWrites int64
	// CrashAfterBytes power-fails the group mid-write once this many bytes
	// have been appended to the device: the tripping write lands only its
	// prefix up to the watermark (byte granularity), unsynced.
	CrashAfterBytes int64
	// CrashAfterSyncs power-fails the group when this device completes its
	// Nth sync. The Nth sync itself is durable — the lights go out after.
	CrashAfterSyncs int64
	// CrashAfterReads power-fails the group on this device's Nth read call,
	// which fails; recovery-time trips use this.
	CrashAfterReads int64
	// TornTailBytes: at power failure, this device retains up to this many
	// unsynced bytes per file past the durable watermark — a torn tail —
	// instead of clean truncation.
	TornTailBytes int64
	// CorruptTornTail flips the bits of the last retained torn byte,
	// modeling a partially written sector of garbage.
	CorruptTornTail bool
	// ReadErrAfterReads makes this device's Nth read fail with
	// ErrInjectedRead, once; the fault then disarms and a retry succeeds.
	ReadErrAfterReads int64

	// WriteDelay, SyncDelay, ReadDelay add real wall-clock latency to every
	// write, sync, and read call while armed — the sticky-slow-device gray
	// fault. The op itself stays correct and durable.
	WriteDelay time.Duration
	SyncDelay  time.Duration
	ReadDelay  time.Duration
	// SyncStallAfter stalls exactly the Nth sync (counted from Arm) for
	// SyncStall before it completes normally — a one-shot write cliff.
	SyncStallAfter int64
	SyncStall      time.Duration
	// HangSyncAfter hangs every sync from the Nth on: the call blocks until
	// the plan is disarmed (then completes normally, durability advances) or
	// the device crashes or power-fails (then fails with ErrPowerFailed,
	// durability frozen). The release-on-crash contract is what keeps flush
	// goroutines from leaking when a torture cycle kills a hung instance.
	HangSyncAfter int64

	writes atomic.Int64
	bytes  atomic.Int64
	syncs  atomic.Int64
	reads  atomic.Int64
	// readErrFired latches the one-shot transient read fault.
	readErrFired atomic.Bool

	// latSyncs counts syncs for the gray triggers, separately from syncs
	// (which only counts when CrashAfterSyncs is armed).
	latSyncs atomic.Int64
	// Hung-sync release plumbing: hangCh is closed exactly once, by Disarm
	// (hangErr nil: complete normally), a power failure, or a device Crash
	// (hangErr ErrPowerFailed: fail without advancing durability).
	hangMu   sync.Mutex
	hangCh   chan struct{}
	hangErr  error
	hangDone bool
}

// awaitHangRelease blocks a hung sync until the fault is released and
// returns the verdict: nil to complete the sync normally, an error to fail
// it with durability frozen.
func (f *DeviceFaults) awaitHangRelease() error {
	f.hangMu.Lock()
	if f.hangDone {
		err := f.hangErr
		f.hangMu.Unlock()
		return err
	}
	if f.hangCh == nil {
		f.hangCh = make(chan struct{})
	}
	ch := f.hangCh
	f.hangMu.Unlock()
	<-ch
	f.hangMu.Lock()
	err := f.hangErr
	f.hangMu.Unlock()
	return err
}

// releaseHang releases every sync hung on this fault (and any future one)
// with the given verdict. First release wins.
func (f *DeviceFaults) releaseHang(err error) {
	f.hangMu.Lock()
	if !f.hangDone {
		f.hangDone = true
		f.hangErr = err
		if f.hangCh != nil {
			close(f.hangCh)
		}
	}
	f.hangMu.Unlock()
}

// String renders the armed triggers, for fault-plan reproduction reports.
func (f *DeviceFaults) String() string {
	var parts []string
	add := func(name string, v int64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("crashAfterWrites", f.CrashAfterWrites)
	add("crashAfterBytes", f.CrashAfterBytes)
	add("crashAfterSyncs", f.CrashAfterSyncs)
	add("crashAfterReads", f.CrashAfterReads)
	add("tornTailBytes", f.TornTailBytes)
	if f.CorruptTornTail {
		parts = append(parts, "corruptTornTail")
	}
	add("readErrAfterReads", f.ReadErrAfterReads)
	addD := func(name string, v time.Duration) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", name, v))
		}
	}
	addD("writeDelay", f.WriteDelay)
	addD("syncDelay", f.SyncDelay)
	addD("readDelay", f.ReadDelay)
	if f.SyncStallAfter > 0 {
		parts = append(parts, fmt.Sprintf("syncStallAfter=%d(%v)", f.SyncStallAfter, f.SyncStall))
	}
	add("hangSyncAfter", f.HangSyncAfter)
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, ",")
}

// FaultPlan binds per-device faults to a device group that power-fails as a
// unit. Build one, assign DeviceFaults per device name, then Arm it.
type FaultPlan struct {
	// Devs maps device name to its armed faults. Devices of the armed group
	// without an entry power-fail with clean truncation.
	Devs map[string]*DeviceFaults
	// OnTrip, if set, is called exactly once, from the goroutine whose
	// operation tripped the power failure — the torture driver uses it to
	// initiate the full-instance crash.
	OnTrip func(dev, op string)

	mu      sync.Mutex
	devices []*Device
	tripped atomic.Bool
}

// String renders the whole plan for reproduction reports.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Devs) == 0 {
		return "clean"
	}
	names := make([]string, 0, len(p.Devs))
	for n := range p.Devs {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s{%s}", n, p.Devs[n]))
	}
	return strings.Join(parts, " ")
}

// Tripped reports whether the plan's power failure has fired.
func (p *FaultPlan) Tripped() bool { return p != nil && p.tripped.Load() }

// Arm installs the plan on the devices, which now form one power-fail
// group. Counting starts now. Arm replaces any previously armed plan on
// each device (and revives a device a previous plan had powered off).
func (p *FaultPlan) Arm(devices ...*Device) {
	p.mu.Lock()
	p.devices = append([]*Device(nil), devices...)
	p.mu.Unlock()
	for _, d := range devices {
		d.fmu.Lock()
		if d.faults != nil && d.faults != p.Devs[d.name] {
			// Replacing a previous plan: complete its hung syncs normally, as
			// Disarm would, so they cannot block forever unobserved.
			d.faults.releaseHang(nil)
		}
		d.plan = p
		d.faults = p.Devs[d.name]
		d.poweredOff = false
		d.fmu.Unlock()
	}
}

// Disarm detaches the plan from its devices and restores power, leaving
// each device's files exactly as the failure persisted them — the state the
// next incarnation recovers from.
func (p *FaultPlan) Disarm() {
	p.mu.Lock()
	devices := p.devices
	p.devices = nil
	p.mu.Unlock()
	for _, d := range devices {
		d.fmu.Lock()
		if d.plan == p {
			d.plan = nil
			d.faults = nil
			d.poweredOff = false
		}
		d.fmu.Unlock()
	}
	// The device "came back": hung syncs complete normally, durability
	// advances, and the watchdog's sync signal recovers.
	for _, f := range p.Devs {
		f.releaseHang(nil)
	}
}

// trip power-fails the whole group: every member device freezes its
// persisted image (durable prefix + armed torn tail) and rejects further
// operations. First trip wins; later triggers are no-ops.
func (p *FaultPlan) trip(dev, op string) {
	if !p.tripped.CompareAndSwap(false, true) {
		return
	}
	p.mu.Lock()
	devices := p.devices
	p.mu.Unlock()
	for _, d := range devices {
		d.powerFail(p.Devs[d.name])
	}
	if p.OnTrip != nil {
		p.OnTrip(dev, op)
	}
}

// powerFail freezes the device at the failure instant: each file keeps its
// durable prefix plus the armed torn tail, and that image becomes the
// persisted content (later Crash calls must not truncate a torn tail the
// failure deliberately left on the medium).
func (d *Device) powerFail(f *DeviceFaults) {
	d.fmu.Lock()
	d.poweredOff = true
	d.fmu.Unlock()
	if f != nil {
		// A sync hung at the failure instant fails: its bytes never made it.
		f.releaseHang(ErrPowerFailed)
	}
	var tornBytes int64
	var corrupt bool
	if f != nil {
		tornBytes = f.TornTailBytes
		corrupt = f.CorruptTornTail
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, fl := range d.files {
		fl.mu.Lock()
		keep := fl.durable
		if torn := len(fl.data) - fl.durable; torn > 0 && tornBytes > 0 {
			extra := torn
			if int64(extra) > tornBytes {
				extra = int(tornBytes)
			}
			keep += extra
			if corrupt {
				fl.data[keep-1] ^= 0xFF
			}
		}
		fl.data = fl.data[:keep]
		fl.durable = keep
		fl.mu.Unlock()
	}
}

// faultState snapshots the device's fault bookkeeping.
func (d *Device) faultState() (*FaultPlan, *DeviceFaults, bool) {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	return d.plan, d.faults, d.poweredOff
}

// faultBeforeWrite consults the fault plane before appending p. It returns
// the number of bytes to append (possibly a prefix), whether to trip after
// appending, and ErrPowerFailed when the device is already off.
func (d *Device) faultBeforeWrite(n int) (allow int, tripAfter bool, err error) {
	plan, f, off := d.faultState()
	if off {
		return 0, false, ErrPowerFailed
	}
	if plan == nil || f == nil {
		return n, false, nil
	}
	if plan.tripped.Load() {
		// The group is mid power failure (another goroutine's trip is still
		// freezing devices): this write is already too late to land.
		return 0, false, ErrPowerFailed
	}
	if f.CrashAfterBytes > 0 {
		prev := f.bytes.Add(int64(n)) - int64(n)
		if prev >= f.CrashAfterBytes {
			// Past the watermark: a concurrent op already carries the trip;
			// this write is after the failure instant and must not land.
			return 0, false, ErrPowerFailed
		}
		if prev+int64(n) >= f.CrashAfterBytes {
			return int(f.CrashAfterBytes - prev), true, nil
		}
	}
	if f.CrashAfterWrites > 0 {
		count := f.writes.Add(1)
		if count > f.CrashAfterWrites {
			return 0, false, ErrPowerFailed
		}
		if count == f.CrashAfterWrites {
			// Exactly the Nth write: it lands, then the lights go out.
			return n, true, nil
		}
	}
	return n, false, nil
}

// faultOnSync consults the fault plane at a sync: a powered-off device
// fails the sync (durability must not advance); the Nth sync completes
// durably and then trips the group.
func (d *Device) faultOnSync() (tripAfter bool, err error) {
	plan, f, off := d.faultState()
	if off {
		return false, ErrPowerFailed
	}
	if plan == nil || f == nil {
		return false, nil
	}
	if plan.tripped.Load() {
		// Mid power failure: the durability advance must not happen.
		return false, ErrPowerFailed
	}
	if f.CrashAfterSyncs > 0 {
		count := f.syncs.Add(1)
		if count > f.CrashAfterSyncs {
			// A concurrent op carries the trip; this sync is after the
			// failure instant and its durability advance must not happen.
			return false, ErrPowerFailed
		}
		if count == f.CrashAfterSyncs {
			// Exactly the Nth sync: durable, then the lights go out.
			return true, nil
		}
	}
	return false, nil
}

// grayWriteDelay reports the armed per-write latency fault.
func (d *Device) grayWriteDelay() time.Duration {
	if _, f, _ := d.faultState(); f != nil {
		return f.WriteDelay
	}
	return 0
}

// graySyncFault consults the latency fault plane at a sync that already
// passed faultOnSync: sleep is real wall-clock delay to apply before the
// durability advance, and hang (when non-nil) must be awaited — its verdict
// decides whether the sync completes or fails with durability frozen.
func (d *Device) graySyncFault() (sleep time.Duration, hang func() error) {
	_, f, _ := d.faultState()
	if f == nil {
		return 0, nil
	}
	sleep = f.SyncDelay
	if f.SyncStallAfter > 0 || f.HangSyncAfter > 0 {
		n := f.latSyncs.Add(1)
		if f.SyncStallAfter > 0 && n == f.SyncStallAfter {
			sleep += f.SyncStall
		}
		if f.HangSyncAfter > 0 && n >= f.HangSyncAfter {
			hang = f.awaitHangRelease
		}
	}
	return sleep, hang
}

// faultOnRead consults the fault plane at a read call.
func (d *Device) faultOnRead() error {
	plan, f, off := d.faultState()
	if off {
		return ErrPowerFailed
	}
	if plan == nil || f == nil {
		return nil
	}
	if f.ReadDelay > 0 {
		time.Sleep(f.ReadDelay)
	}
	if plan.tripped.Load() {
		return ErrPowerFailed
	}
	n := f.reads.Add(1)
	if f.CrashAfterReads > 0 && n >= f.CrashAfterReads {
		// Reads never make anything durable, so every read at or past the
		// threshold may simply fail (the first one carries the trip).
		plan.trip(d.name, "read")
		return ErrPowerFailed
	}
	if f.ReadErrAfterReads > 0 && n >= f.ReadErrAfterReads && f.readErrFired.CompareAndSwap(false, true) {
		return ErrInjectedRead
	}
	return nil
}
