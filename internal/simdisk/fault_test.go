package simdisk

import (
	"errors"
	"testing"
)

func writeSynced(t *testing.T, w *Writer, b []byte) {
	t.Helper()
	if _, err := w.Write(b); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func contents(t *testing.T, d *Device, name string) []byte {
	t.Helper()
	r, err := d.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	b, err := r.ReadAll()
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return b
}

func TestFaultCrashAfterWrites(t *testing.T) {
	d := New("a", Unlimited())
	var trippedDev, trippedOp string
	plan := &FaultPlan{
		Devs:   map[string]*DeviceFaults{"a": {CrashAfterWrites: 3}},
		OnTrip: func(dev, op string) { trippedDev, trippedOp = dev, op },
	}
	w := d.Create("f")
	writeSynced(t, w, []byte("one-")) // write 0 before arming: not counted

	plan.Arm(d)
	writeSynced(t, w, []byte("two-"))   // counted write 1
	writeSynced(t, w, []byte("three-")) // counted write 2
	if plan.Tripped() {
		t.Fatal("tripped before the armed write count")
	}
	if _, err := w.Write([]byte("four-")); err != nil { // counted write 3: trips after landing
		t.Fatalf("tripping write returned %v", err)
	}
	if !plan.Tripped() || trippedDev != "a" || trippedOp != "write" {
		t.Fatalf("trip state: tripped=%v dev=%q op=%q", plan.Tripped(), trippedDev, trippedOp)
	}
	// Post-trip operations fail and nothing more lands.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("post-trip write err = %v, want ErrPowerFailed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("post-trip sync err = %v, want ErrPowerFailed", err)
	}
	if _, err := d.Open("f"); err != nil {
		t.Fatalf("open after trip: %v", err)
	}
	r, _ := d.Open("f")
	if _, err := r.ReadAll(); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("post-trip read err = %v, want ErrPowerFailed", err)
	}
	plan.Disarm()
	// The tripping write was unsynced and no torn tail was armed: clean
	// truncation to the durable watermark.
	if got := string(contents(t, d, "f")); got != "one-two-three-" {
		t.Fatalf("persisted contents %q, want durable prefix only", got)
	}
	// Crash after the fact must not change the persisted image.
	d.Crash()
	if got := string(contents(t, d, "f")); got != "one-two-three-" {
		t.Fatalf("contents after extra Crash: %q", got)
	}
}

func TestFaultCrashAfterBytesSplitsWrite(t *testing.T) {
	d := New("a", Unlimited())
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{"a": {
		CrashAfterBytes: 10,
		TornTailBytes:   1 << 20, // retain the whole unsynced tail
	}}}
	plan.Arm(d)
	w := d.Create("f")
	if _, err := w.Write([]byte("01234567")); err != nil { // 8 bytes, below watermark
		t.Fatal(err)
	}
	n, err := w.Write([]byte("abcdef")) // crosses at 10: only "ab" lands
	if !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("tripping write err = %v, want ErrPowerFailed", err)
	}
	if n != 2 {
		t.Fatalf("tripping write landed %d bytes, want 2", n)
	}
	plan.Disarm()
	if got := string(contents(t, d, "f")); got != "01234567ab" {
		t.Fatalf("persisted %q, want torn 10-byte prefix", got)
	}
}

func TestFaultTornTailAndSkew(t *testing.T) {
	a, b := New("a", Unlimited()), New("b", Unlimited())
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{
		"a": {CrashAfterSyncs: 1, TornTailBytes: 3, CorruptTornTail: true},
		// b has no entry: clean truncation at its own watermark.
	}}
	wb := b.Create("g")
	writeSynced(t, wb, []byte("durable-b"))
	wb.Write([]byte("lost-b"))

	plan.Arm(a, b)
	wa := a.Create("f")
	writeSynced(t, wa, []byte("durable-a")) // sync 1 completes, then trips the group
	wa2 := a.Create("f2")                   // device already off: detached
	if err := wa2.Sync(); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("sync on powered-off device: %v", err)
	}
	if !plan.Tripped() {
		t.Fatal("sync trigger did not trip")
	}
	// Group semantics: b is off too, at its own watermark.
	if _, err := b.Create("h").Write([]byte("x")); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("write on group member after trip: %v", err)
	}
	plan.Disarm()
	if got := string(contents(t, b, "g")); got != "durable-b" {
		t.Fatalf("device b persisted %q, want clean durable prefix", got)
	}
	if got := string(contents(t, a, "f")); got != "durable-a" {
		t.Fatalf("device a persisted %q", got)
	}

	// Torn retention: a second plan with an unsynced tail on a.
	plan2 := &FaultPlan{Devs: map[string]*DeviceFaults{
		"a": {CrashAfterWrites: 2, TornTailBytes: 3, CorruptTornTail: true},
	}}
	plan2.Arm(a)
	w := d0(a, "torn")
	writeSynced(t, w, []byte("base."))
	w.Write([]byte("TAIL")) // write 2: lands fully, then trips
	plan2.Disarm()
	got := contents(t, a, "torn")
	if string(got[:5]) != "base." || len(got) != 8 {
		t.Fatalf("torn file = %q (len %d), want 5 durable + 3 torn bytes", got, len(got))
	}
	if got[7] != 'I'^0xFF { // last retained torn byte bit-flipped
		t.Fatalf("torn byte not corrupted: % x", got[5:])
	}
	// The torn tail is now the persisted medium content: Crash keeps it.
	a.Crash()
	if g2 := contents(t, a, "torn"); len(g2) != 8 {
		t.Fatalf("Crash truncated the torn tail: %q", g2)
	}
}

// d0 is a tiny helper so the test reads as a narrative.
func d0(d *Device, name string) *Writer { return d.Create(name) }

func TestFaultInjectedReadIsOneShot(t *testing.T) {
	d := New("a", Unlimited())
	w := d.Create("f")
	writeSynced(t, w, []byte("payload"))
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{"a": {ReadErrAfterReads: 2}}}
	plan.Arm(d)

	r, _ := d.Open("f")
	if _, err := r.ReadAll(); err != nil { // read 1: fine
		t.Fatalf("read 1: %v", err)
	}
	r2, _ := d.Open("f")
	if _, err := r2.ReadAll(); !errors.Is(err, ErrInjectedRead) { // read 2: injected
		t.Fatalf("read 2 err = %v, want ErrInjectedRead", err)
	}
	r3, _ := d.Open("f")
	if b, err := r3.ReadAll(); err != nil || string(b) != "payload" { // retry succeeds
		t.Fatalf("read 3 = %q, %v", b, err)
	}
	if plan.Tripped() {
		t.Fatal("transient read fault must not power-fail")
	}
	plan.Disarm()
}

func TestFaultCrashAfterReadsTrips(t *testing.T) {
	d := New("a", Unlimited())
	w := d.Create("f")
	writeSynced(t, w, []byte("payload"))
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{"a": {CrashAfterReads: 1}}}
	plan.Arm(d)
	r, _ := d.Open("f")
	if _, err := r.ReadAll(); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("read err = %v, want ErrPowerFailed", err)
	}
	if !plan.Tripped() {
		t.Fatal("read trigger did not trip")
	}
	plan.Disarm()
	if got := string(contents(t, d, "f")); got != "payload" {
		t.Fatalf("durable contents %q", got)
	}
}

func TestFaultCreateRemoveGuards(t *testing.T) {
	d := New("a", Unlimited())
	w := d.Create("keep")
	writeSynced(t, w, []byte("precious"))
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{"a": {CrashAfterSyncs: 1}}}
	plan.Arm(d)
	d.Create("x").Sync() // sync 1: trips

	// A powered-off Create must not truncate the persisted file, and Remove
	// must not unlink it.
	d.Create("keep")
	if err := d.Remove("keep"); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("Remove on powered-off device: %v", err)
	}
	if err := d.Rename("keep", "gone"); !errors.Is(err, ErrPowerFailed) {
		t.Fatalf("Rename on powered-off device: %v", err)
	}
	plan.Disarm()
	if got := string(contents(t, d, "keep")); got != "precious" {
		t.Fatalf("file damaged by powered-off mutations: %q", got)
	}
}

func TestAppendPreservesDurablePrefix(t *testing.T) {
	d := New("a", Unlimited())
	w := d.Create("f")
	writeSynced(t, w, []byte("gen1|"))
	// A second incarnation appends without truncating.
	w2 := d.Append("f")
	w2.Write([]byte("gen2-unsynced"))
	d.Crash()
	if got := string(contents(t, d, "f")); got != "gen1|" {
		t.Fatalf("after crash: %q, want the synced prefix", got)
	}
	w3 := d.Append("f")
	writeSynced(t, w3, []byte("gen2|"))
	d.Crash()
	if got := string(contents(t, d, "f")); got != "gen1|gen2|" {
		t.Fatalf("after synced append + crash: %q", got)
	}
	// Append creates missing files.
	w4 := d.Append("fresh")
	writeSynced(t, w4, []byte("new"))
	if got := string(contents(t, d, "fresh")); got != "new" {
		t.Fatalf("append-created file: %q", got)
	}
}

func TestRenameAtomicPublish(t *testing.T) {
	d := New("a", Unlimited())
	orig := d.Create("file")
	writeSynced(t, orig, []byte("old-contents"))
	side := d.Create("side~file")
	writeSynced(t, side, []byte("new-contents"))
	if err := d.Rename("side~file", "file"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := string(contents(t, d, "file")); got != "new-contents" {
		t.Fatalf("renamed file: %q", got)
	}
	if _, err := d.Open("side~file"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("sidecar still present: %v", err)
	}
	if err := d.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestFaultPlanString(t *testing.T) {
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{
		"ssd1": {CrashAfterWrites: 7, TornTailBytes: 512, CorruptTornTail: true},
		"ssd0": {ReadErrAfterReads: 3},
	}}
	got := plan.String()
	want := "ssd0{readErrAfterReads=3} ssd1{crashAfterWrites=7,tornTailBytes=512,corruptTornTail}"
	if got != want {
		t.Fatalf("plan string:\n got %q\nwant %q", got, want)
	}
	if (&FaultPlan{}).String() != "clean" {
		t.Fatal("empty plan should render as clean")
	}
}
