package simdisk

import (
	"errors"
	"testing"
	"time"
)

func grayDevice(t *testing.T, df *DeviceFaults) (*Device, *FaultPlan) {
	t.Helper()
	d := New("ssd0", Unlimited())
	plan := &FaultPlan{Devs: map[string]*DeviceFaults{"ssd0": df}}
	plan.Arm(d)
	t.Cleanup(plan.Disarm)
	return d, plan
}

// TestGrayDelaysAddWallClock: the per-op latency faults charge real wall
// time on writes, syncs, and reads, and disarming removes them.
func TestGrayDelaysAddWallClock(t *testing.T) {
	const delay = 30 * time.Millisecond
	d, plan := grayDevice(t, &DeviceFaults{WriteDelay: delay, SyncDelay: delay, ReadDelay: delay})
	w := d.Create("log")

	start := time.Now()
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := d.Open("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 3*delay {
		t.Fatalf("write+sync+read took %v, want >= %v with armed delays", elapsed, 3*delay)
	}

	plan.Disarm()
	start = time.Now()
	writeSynced(t, w, []byte("def"))
	if elapsed := time.Since(start); elapsed >= delay {
		t.Fatalf("disarmed write+sync took %v; delay fault still active", elapsed)
	}
}

// TestGraySyncStallIsOneShot: SyncStallAfter stalls exactly the Nth sync;
// neighbors complete at normal speed.
func TestGraySyncStallIsOneShot(t *testing.T) {
	const stall = 60 * time.Millisecond
	d, _ := grayDevice(t, &DeviceFaults{SyncStallAfter: 2, SyncStall: stall})
	w := d.Create("log")

	timeSync := func() time.Duration {
		start := time.Now()
		writeSynced(t, w, []byte("x"))
		return time.Since(start)
	}
	if e := timeSync(); e >= stall {
		t.Fatalf("sync 1 took %v; stall should wait for sync 2", e)
	}
	if e := timeSync(); e < stall {
		t.Fatalf("sync 2 took %v, want >= %v (the stalled one)", e, stall)
	}
	if e := timeSync(); e >= stall {
		t.Fatalf("sync 3 took %v; the stall must be one-shot", e)
	}
}

// hangSync arms HangSyncAfter:1 and starts a sync that must block; it
// returns the device, the plan, and a channel carrying the sync's verdict.
func hangSync(t *testing.T) (*Device, *FaultPlan, chan error) {
	t.Helper()
	d, plan := grayDevice(t, &DeviceFaults{HangSyncAfter: 1})
	w := d.Create("log")
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Sync() }()
	select {
	case err := <-errCh:
		t.Fatalf("hung sync returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	return d, plan, errCh
}

// TestGrayHungSyncReleasedByDisarm: lifting the fault completes the hung
// sync normally — the gray fault healed, nothing was lost.
func TestGrayHungSyncReleasedByDisarm(t *testing.T) {
	_, plan, errCh := hangSync(t)
	plan.Disarm()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("disarm-released sync failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync still hung after Disarm")
	}
}

// TestGrayHungSyncFailedByCrash: a device crash fails the hung sync with
// ErrPowerFailed instead of leaving its caller blocked forever — the
// teardown-liveness half of the hung-sync contract.
func TestGrayHungSyncFailedByCrash(t *testing.T) {
	d, _, errCh := hangSync(t)
	d.Crash()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPowerFailed) {
			t.Fatalf("crash-released sync: err = %v, want ErrPowerFailed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync still hung after Crash")
	}
}

// TestFailHungSyncsLeavesDeviceAlive: FailHungSyncs releases hung syncs
// with ErrPowerFailed (so a logging pipeline can be joined) WITHOUT
// powering the device off — later I/O still works. DB.Crash relies on
// this ordering: release the flushers, join the pipeline, then crash the
// devices.
func TestFailHungSyncsLeavesDeviceAlive(t *testing.T) {
	d, _, errCh := hangSync(t)
	d.FailHungSyncs()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPowerFailed) {
			t.Fatalf("released sync: err = %v, want ErrPowerFailed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync still hung after FailHungSyncs")
	}
	// The device itself is still powered: plain writes succeed.
	w2 := d.Create("log2")
	if _, err := w2.Write([]byte("still alive")); err != nil {
		t.Fatalf("write after FailHungSyncs: %v", err)
	}
}
