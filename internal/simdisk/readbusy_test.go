package simdisk

import (
	"testing"
	"time"
)

// TestReadBusyAccounting: reads and writes charge their own busy accounts.
func TestReadBusyAccounting(t *testing.T) {
	d := New("d", Config{ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30})
	w := d.Create("f")
	payload := make([]byte, 1<<20)
	w.Write(payload)
	afterWrite := d.Stats()
	if afterWrite.ReadBusy != 0 {
		t.Fatalf("ReadBusy = %v after a write", afterWrite.ReadBusy)
	}
	if afterWrite.WriteBusy() <= 0 {
		t.Fatalf("WriteBusy = %v after a write", afterWrite.WriteBusy())
	}
	r, err := d.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.ReadBusy <= 0 {
		t.Fatalf("ReadBusy = %v after a read", st.ReadBusy)
	}
	if st.Busy != st.ReadBusy+st.WriteBusy() {
		t.Fatalf("busy split inconsistent: %v != %v + %v", st.Busy, st.ReadBusy, st.WriteBusy())
	}
	d.ResetStats()
	if st := d.Stats(); st.ReadBusy != 0 || st.Busy != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}

// TestConcurrentReadersShareBandwidth: two concurrent readers on one device
// queue through the same reservation, so total elapsed time reflects the
// device's bandwidth, not the reader fan-out.
func TestConcurrentReadersShareBandwidth(t *testing.T) {
	const size = 1 << 20
	cfg := Config{ReadBandwidth: 64 << 20} // 1 MB read = ~15.6ms
	d := New("d", cfg)
	for _, n := range []string{"a", "b"} {
		w := d.Create(n)
		w.Write(make([]byte, size))
	}
	start := time.Now()
	done := make(chan error, 2)
	for _, n := range []string{"a", "b"} {
		go func(n string) {
			r, err := d.Open(n)
			if err == nil {
				_, err = r.ReadAll()
			}
			done <- err
		}(n)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	min := transferTime(2*size, cfg.ReadBandwidth)
	if elapsed < min*9/10 {
		t.Fatalf("2 concurrent readers finished in %v, faster than the device allows (%v)", elapsed, min)
	}
	if got := d.Stats().ReadBusy; got < min*9/10 {
		t.Fatalf("ReadBusy = %v, want about %v", got, min)
	}
}
