// Package simdisk provides a simulated storage device: an in-memory file
// store with a configurable sequential-bandwidth and fsync-latency model.
//
// The PACMAN paper's logging experiments (Figure 11, Tables 2 and 3) are
// driven by SSD characteristics — sequential write bandwidth saturating
// under tuple-level logging, and fsync latency dominating commit latency.
// Real disks make those experiments irreproducible across machines, so this
// package substitutes a deterministic model:
//
//   - Each Device serializes its operations through a single queue, like a
//     saturated disk: a write of n bytes occupies the device for
//     n/bandwidth seconds, and callers sleep until their operation's
//     position in the queue completes. Two loggers sharing one device
//     therefore each see half the bandwidth — the effect behind the
//     paper's one-SSD vs two-SSD comparison.
//   - Sync adds the configured fsync latency and marks the current file
//     length durable.
//   - Crash discards all non-durable bytes (everything written after the
//     last Sync), so recovery code sees honest torn tails.
//
// Bandwidth 0 disables the bandwidth model (infinite speed); latency 0
// disables the fsync model. Counters report bytes moved and syncs issued
// for the Table 2 bandwidth accounting.
package simdisk

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes a device's performance model.
type Config struct {
	// ReadBandwidth and WriteBandwidth are bytes per second of sequential
	// transfer; 0 means unlimited.
	ReadBandwidth  int64
	WriteBandwidth int64
	// SyncLatency is the time one Sync occupies the device; 0 means free.
	SyncLatency time.Duration
}

// DefaultSSD mirrors the paper's testbed device: 550 MB/s sequential read,
// 520 MB/s sequential write (Section 6), with a typical SATA-SSD fsync cost.
func DefaultSSD() Config {
	return Config{
		ReadBandwidth:  550 << 20,
		WriteBandwidth: 520 << 20,
		SyncLatency:    300 * time.Microsecond,
	}
}

// Unlimited disables all performance modeling; useful for algorithm-only
// experiments and most tests.
func Unlimited() Config { return Config{} }

// Device is a simulated disk holding named append-only files.
type Device struct {
	name string
	cfg  Config

	qmu  sync.Mutex // serializes the device's service queue
	free time.Time  // when the device next becomes idle

	mu    sync.Mutex // guards files
	files map[string]*file

	// fmu guards the armed fault plane (see fault.go). A nil plan means no
	// faults are armed and the checks reduce to one mutex acquisition.
	fmu        sync.Mutex
	plan       *FaultPlan
	faults     *DeviceFaults
	poweredOff bool

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
	syncs        atomic.Int64
	busy         atomic.Int64 // nanoseconds of modeled service time
	readBusy     atomic.Int64 // read share of busy, for reload accounting
}

type file struct {
	mu      sync.Mutex
	data    []byte
	durable int // bytes guaranteed to survive Crash
}

// New creates an empty device with the given performance model.
func New(name string, cfg Config) *Device {
	return &Device{name: name, cfg: cfg, files: make(map[string]*file)}
}

// Name returns the device's label.
func (d *Device) Name() string { return d.name }

// Stats reports cumulative traffic counters.
type Stats struct {
	BytesWritten int64
	BytesRead    int64
	Syncs        int64
	// Busy is the total modeled service time; Busy/elapsed approximates
	// utilization.
	Busy time.Duration
	// ReadBusy is the read share of Busy. Recovery's reload pipeline uses
	// it to report per-device read bandwidth actually achieved; writes and
	// syncs account for the remainder.
	ReadBusy time.Duration
}

// WriteBusy returns the write+sync share of the modeled service time.
func (s Stats) WriteBusy() time.Duration { return s.Busy - s.ReadBusy }

// Stats returns the device's cumulative traffic counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesWritten: d.bytesWritten.Load(),
		BytesRead:    d.bytesRead.Load(),
		Syncs:        d.syncs.Load(),
		Busy:         time.Duration(d.busy.Load()),
		ReadBusy:     time.Duration(d.readBusy.Load()),
	}
}

// ResetStats zeroes the traffic counters (not the files).
func (d *Device) ResetStats() {
	d.bytesWritten.Store(0)
	d.bytesRead.Store(0)
	d.syncs.Store(0)
	d.busy.Store(0)
	d.readBusy.Store(0)
}

// occupy reserves dur of device time and sleeps until the reservation
// completes, modeling a single-queue device.
func (d *Device) occupy(dur time.Duration) {
	if dur <= 0 {
		return
	}
	d.busy.Add(int64(dur))
	d.qmu.Lock()
	now := time.Now()
	if d.free.Before(now) {
		d.free = now
	}
	d.free = d.free.Add(dur)
	wait := d.free.Sub(now)
	d.qmu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// occupyRead is occupy with the duration also charged to the read account.
// Concurrent readers (the reload pipeline opens one per batch file) queue
// through the same device reservation, so a device's read throughput never
// exceeds its configured bandwidth no matter the reader fan-out.
func (d *Device) occupyRead(dur time.Duration) {
	d.readBusy.Add(int64(dur))
	d.occupy(dur)
}

func transferTime(n int64, bw int64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}

func (d *Device) getFile(name string) (*file, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	return f, ok
}

// Create creates (or truncates) a named file and returns a writer for it.
// On a power-failed device the truncation does not happen: the writer is
// detached (its bytes go nowhere durable and Sync fails), so a crashed
// incarnation racing its own death cannot destroy persisted files.
func (d *Device) Create(name string) *Writer {
	if _, _, off := d.faultState(); off {
		return &Writer{dev: d, f: &file{}}
	}
	d.mu.Lock()
	f := &file{}
	d.files[name] = f
	d.mu.Unlock()
	return &Writer{dev: d, f: f}
}

// Append opens the named file for appending, creating it when missing. The
// existing durable watermark is preserved — only newly appended bytes are
// at risk until the next Sync. Like Create, it returns a detached writer on
// a power-failed device.
func (d *Device) Append(name string) *Writer {
	if _, _, off := d.faultState(); off {
		return &Writer{dev: d, f: &file{}}
	}
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		f = &file{}
		d.files[name] = f
	}
	d.mu.Unlock()
	return &Writer{dev: d, f: f}
}

// Rename atomically replaces newname with oldname's file — the model is a
// journaled-metadata filesystem where rename is the atomic, durable publish
// step (crash-safe file rewrites sync a sidecar, then Rename it over the
// original). Only the name mapping is durable: callers must Sync the
// sidecar's contents before renaming, exactly as on a real FS, or the
// published file still loses its unsynced bytes at the next crash.
func (d *Device) Rename(oldname, newname string) error {
	if _, _, off := d.faultState(); off {
		return ErrPowerFailed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	delete(d.files, oldname)
	d.files[newname] = f
	return nil
}

// ErrNotExist is returned when opening or removing a missing file.
var ErrNotExist = errors.New("simdisk: file does not exist")

// Open returns a reader over the named file's durable prefix plus any bytes
// written since (i.e., the current contents — crash truncation happens at
// Crash time, not read time).
func (d *Device) Open(name string) (*Reader, error) {
	f, ok := d.getFile(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &Reader{dev: d, f: f}, nil
}

// Remove deletes a file. Like all mutations it fails on a power-failed
// device, so a dying incarnation cannot unlink persisted files.
func (d *Device) Remove(name string) error {
	if _, _, off := d.faultState(); off {
		return ErrPowerFailed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(d.files, name)
	return nil
}

// List returns the names of files with the given prefix, sorted.
func (d *Device) List(prefix string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for n := range d.files {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the current length of the named file.
func (d *Device) Size(name string) (int64, error) {
	f, ok := d.getFile(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data)), nil
}

// Crash simulates a power failure: every file is truncated to its durable
// (synced) length.
func (d *Device) Crash() {
	d.FailHungSyncs()
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.files {
		f.mu.Lock()
		if f.durable < len(f.data) {
			f.data = f.data[:f.durable]
		}
		f.mu.Unlock()
	}
}

// FailHungSyncs releases any sync hung on a gray latency fault
// (DeviceFaults.HangSyncAfter) with ErrPowerFailed, durability frozen,
// without powering the device off. Crash calls it implicitly; DB.Crash
// calls it FIRST — before joining the logging pipeline — because a flush
// goroutine blocked inside the hung sync would otherwise deadlock the
// crash that is trying to stop it.
func (d *Device) FailHungSyncs() {
	d.fmu.Lock()
	f := d.faults
	d.fmu.Unlock()
	if f != nil {
		f.releaseHang(ErrPowerFailed)
	}
}

// Writer appends to a file with the device's write-bandwidth model applied.
type Writer struct {
	dev *Device
	f   *file
}

// Write appends p to the file. The caller is charged the modeled transfer
// time. Without an armed fault plan it never fails (the device is
// in-memory); with one, a write to a power-failed device is dropped with
// ErrPowerFailed, and the tripping write of a byte-watermark fault appends
// only its prefix up to the watermark before the group fails.
func (w *Writer) Write(p []byte) (int, error) {
	allow, tripAfter, err := w.dev.faultBeforeWrite(len(p))
	if err != nil {
		return 0, err
	}
	if d := w.dev.grayWriteDelay(); d > 0 {
		time.Sleep(d) // sticky-slow device: real wall time, not modeled time
	}
	w.f.mu.Lock()
	w.f.data = append(w.f.data, p[:allow]...)
	w.f.mu.Unlock()
	w.dev.bytesWritten.Add(int64(allow))
	w.dev.occupy(transferTime(int64(allow), w.dev.cfg.WriteBandwidth))
	if tripAfter {
		w.dev.fmu.Lock()
		plan := w.dev.plan
		w.dev.fmu.Unlock()
		if plan != nil {
			plan.trip(w.dev.name, "write")
		}
		if allow < len(p) {
			return allow, ErrPowerFailed
		}
	}
	return len(p), nil
}

// Sync makes all bytes written so far durable, charging the fsync latency.
// On a power-failed device it fails with ErrPowerFailed and the durable
// watermark does NOT advance — durability-sensitive callers (group commit)
// must check this error before acknowledging.
func (w *Writer) Sync() error {
	tripAfter, err := w.dev.faultOnSync()
	if err != nil {
		return err
	}
	if sleep, hang := w.dev.graySyncFault(); sleep > 0 || hang != nil {
		if sleep > 0 {
			time.Sleep(sleep) // slow or stalled sync: completes normally after
		}
		if hang != nil {
			// Hung sync: blocks until Disarm (completes normally) or a crash
			// or power failure (fails, durability frozen).
			if err := hang(); err != nil {
				return err
			}
		}
	}
	w.f.mu.Lock()
	w.f.durable = len(w.f.data)
	w.f.mu.Unlock()
	w.dev.syncs.Add(1)
	w.dev.occupy(w.dev.cfg.SyncLatency)
	if tripAfter {
		w.dev.fmu.Lock()
		plan := w.dev.plan
		w.dev.fmu.Unlock()
		if plan != nil {
			plan.trip(w.dev.name, "sync")
		}
	}
	return nil
}

// Size returns the current file length.
func (w *Writer) Size() int64 {
	w.f.mu.Lock()
	defer w.f.mu.Unlock()
	return int64(len(w.f.data))
}

// Reader reads a file with the device's read-bandwidth model applied.
type Reader struct {
	dev *Device
	f   *file
	off int
}

// Read implements io.Reader over the file contents. An armed fault plan
// can fail it: transiently (ErrInjectedRead, one-shot) or terminally
// (ErrPowerFailed after a read-triggered or earlier power failure).
func (r *Reader) Read(p []byte) (int, error) {
	if err := r.dev.faultOnRead(); err != nil {
		return 0, err
	}
	r.f.mu.Lock()
	n := copy(p, r.f.data[r.off:])
	r.off += n
	r.f.mu.Unlock()
	if n == 0 {
		return 0, io.EOF
	}
	r.dev.bytesRead.Add(int64(n))
	r.dev.occupyRead(transferTime(int64(n), r.dev.cfg.ReadBandwidth))
	return n, nil
}

// ReadAll returns the whole file, charging the modeled transfer time once.
// It consults the fault plane like Read.
func (r *Reader) ReadAll() ([]byte, error) {
	if err := r.dev.faultOnRead(); err != nil {
		return nil, err
	}
	r.f.mu.Lock()
	out := append([]byte(nil), r.f.data[r.off:]...)
	r.off = len(r.f.data)
	r.f.mu.Unlock()
	r.dev.bytesRead.Add(int64(len(out)))
	r.dev.occupyRead(transferTime(int64(len(out)), r.dev.cfg.ReadBandwidth))
	return out, nil
}

// Pool is a set of devices used round-robin by logger and checkpoint
// threads; it models the paper's "one thread per SSD" assignment.
type Pool struct {
	devs []*Device
	next atomic.Int64
}

// NewPool builds a pool of n identically configured devices.
func NewPool(n int, cfg Config) *Pool {
	p := &Pool{}
	for i := 0; i < n; i++ {
		p.devs = append(p.devs, New(fmt.Sprintf("ssd%d", i), cfg))
	}
	return p
}

// PoolOf wraps existing devices.
func PoolOf(devs ...*Device) *Pool { return &Pool{devs: devs} }

// Get returns device i modulo the pool size.
func (p *Pool) Get(i int) *Device { return p.devs[i%len(p.devs)] }

// Next returns devices round-robin.
func (p *Pool) Next() *Device {
	i := p.next.Add(1) - 1
	return p.devs[int(i)%len(p.devs)]
}

// Len returns the number of devices.
func (p *Pool) Len() int { return len(p.devs) }

// All returns the underlying devices.
func (p *Pool) All() []*Device { return p.devs }

// Crash crashes every device in the pool.
func (p *Pool) Crash() {
	for _, d := range p.devs {
		d.Crash()
	}
}

// Stats sums the stats of all devices.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, d := range p.devs {
		ds := d.Stats()
		s.BytesWritten += ds.BytesWritten
		s.BytesRead += ds.BytesRead
		s.Syncs += ds.Syncs
		s.Busy += ds.Busy
		s.ReadBusy += ds.ReadBusy
	}
	return s
}

// ResetStats resets every device's counters.
func (p *Pool) ResetStats() {
	for _, d := range p.devs {
		d.ResetStats()
	}
}
