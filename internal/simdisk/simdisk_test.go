package simdisk

import (
	"io"
	"sync"
	"testing"
	"time"
)

func TestCreateWriteRead(t *testing.T) {
	d := New("t", Unlimited())
	w := d.Create("a.log")
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 11 {
		t.Errorf("size = %d", w.Size())
	}
	r, err := d.Open("a.log")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil || string(got) != "hello world" {
		t.Errorf("read %q, err %v", got, err)
	}
	// Reader positioned at EOF now.
	buf := make([]byte, 4)
	if _, err := r.Read(buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderChunked(t *testing.T) {
	d := New("t", Unlimited())
	w := d.Create("f")
	w.Write([]byte("abcdefgh"))
	r, _ := d.Open("f")
	buf := make([]byte, 3)
	var all []byte
	for {
		n, err := r.Read(buf)
		all = append(all, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(all) != "abcdefgh" {
		t.Errorf("chunked read = %q", all)
	}
}

func TestOpenMissing(t *testing.T) {
	d := New("t", Unlimited())
	if _, err := d.Open("nope"); err == nil {
		t.Error("expected error for missing file")
	}
	if err := d.Remove("nope"); err == nil {
		t.Error("expected error removing missing file")
	}
	if _, err := d.Size("nope"); err == nil {
		t.Error("expected error sizing missing file")
	}
}

func TestListAndRemove(t *testing.T) {
	d := New("t", Unlimited())
	d.Create("log-2")
	d.Create("log-1")
	d.Create("ckpt-1")
	got := d.List("log-")
	if len(got) != 2 || got[0] != "log-1" || got[1] != "log-2" {
		t.Errorf("list = %v", got)
	}
	if err := d.Remove("log-1"); err != nil {
		t.Fatal(err)
	}
	if got := d.List("log-"); len(got) != 1 {
		t.Errorf("after remove, list = %v", got)
	}
}

func TestCrashTruncatesToDurable(t *testing.T) {
	d := New("t", Unlimited())
	w := d.Create("wal")
	w.Write([]byte("durable-part"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("-lost-part"))
	d.Crash()
	r, _ := d.Open("wal")
	got, _ := r.ReadAll()
	if string(got) != "durable-part" {
		t.Errorf("after crash: %q", got)
	}
	// A file never synced loses everything.
	w2 := d.Create("tmp")
	w2.Write([]byte("xxxx"))
	d.Crash()
	if sz, _ := d.Size("tmp"); sz != 0 {
		t.Errorf("unsynced file survived crash with %d bytes", sz)
	}
}

func TestStatsCounting(t *testing.T) {
	d := New("t", Unlimited())
	w := d.Create("f")
	w.Write(make([]byte, 100))
	w.Sync()
	r, _ := d.Open("f")
	r.ReadAll()
	s := d.Stats()
	if s.BytesWritten != 100 || s.BytesRead != 100 || s.Syncs != 1 {
		t.Errorf("stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.BytesWritten != 0 || s.Syncs != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestBandwidthModelDelays(t *testing.T) {
	// 1 MB/s: a 100 KB write should take ~100ms.
	d := New("t", Config{WriteBandwidth: 1 << 20})
	w := d.Create("f")
	start := time.Now()
	w.Write(make([]byte, 100<<10))
	el := time.Since(start)
	if el < 50*time.Millisecond {
		t.Errorf("write returned in %v; bandwidth model not applied", el)
	}
	if el > time.Second {
		t.Errorf("write took %v; model too slow", el)
	}
}

func TestSyncLatency(t *testing.T) {
	d := New("t", Config{SyncLatency: 20 * time.Millisecond})
	w := d.Create("f")
	start := time.Now()
	w.Sync()
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("sync returned in %v; latency model not applied", el)
	}
}

func TestDeviceSaturation(t *testing.T) {
	// Two writers sharing one 2 MB/s device must take about twice as long
	// as a single writer writing the same amount each.
	cfg := Config{WriteBandwidth: 2 << 20}
	chunk := make([]byte, 64<<10)

	solo := New("solo", cfg)
	w := solo.Create("f")
	start := time.Now()
	for i := 0; i < 4; i++ {
		w.Write(chunk)
	}
	soloTime := time.Since(start)

	shared := New("shared", cfg)
	var wg sync.WaitGroup
	start = time.Now()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := shared.Create("f" + string(rune('0'+g)))
			for i := 0; i < 4; i++ {
				w.Write(chunk)
			}
		}(g)
	}
	wg.Wait()
	sharedTime := time.Since(start)
	if sharedTime < soloTime*3/2 {
		t.Errorf("saturation not modeled: solo %v, shared %v", soloTime, sharedTime)
	}
}

func TestBusyAccounting(t *testing.T) {
	d := New("t", Config{WriteBandwidth: 1 << 20})
	w := d.Create("f")
	w.Write(make([]byte, 1<<20)) // 1s of modeled time
	busy := d.Stats().Busy
	if busy < 900*time.Millisecond || busy > 1100*time.Millisecond {
		t.Errorf("busy = %v, want ~1s", busy)
	}
}

func TestUnlimitedIsFast(t *testing.T) {
	d := New("t", Unlimited())
	w := d.Create("f")
	chunk := make([]byte, 1<<20)
	start := time.Now()
	for i := 0; i < 20; i++ {
		w.Write(chunk)
		w.Sync()
	}
	// No modeled delays: only memory-copy cost, far below any modeled
	// bandwidth at these sizes. The bound is generous because the race
	// suite runs many packages in parallel and wall-clock time here is
	// mostly scheduler contention, not device behavior.
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("unlimited device too slow: %v", el)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(2, Unlimited())
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Get(0) == p.Get(1) {
		t.Error("distinct devices expected")
	}
	if p.Get(2) != p.Get(0) {
		t.Error("Get should wrap modulo pool size")
	}
	a, b := p.Next(), p.Next()
	if a == b {
		t.Error("Next should round-robin")
	}
	w := p.Get(0).Create("x")
	w.Write([]byte("abc"))
	w.Sync()
	w.Write([]byte("zzz"))
	p.Crash()
	if sz, _ := p.Get(0).Size("x"); sz != 3 {
		t.Errorf("pool crash: size = %d", sz)
	}
	if s := p.Stats(); s.BytesWritten != 6 || s.Syncs != 1 {
		t.Errorf("pool stats = %+v", s)
	}
	p.ResetStats()
	if s := p.Stats(); s.BytesWritten != 0 {
		t.Errorf("pool stats after reset = %+v", s)
	}
	if len(p.All()) != 2 {
		t.Error("All() wrong length")
	}
}

func TestConcurrentFileAccess(t *testing.T) {
	d := New("t", Unlimited())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			w := d.Create(name)
			for i := 0; i < 100; i++ {
				w.Write([]byte{byte(i)})
			}
			w.Sync()
		}(g)
	}
	wg.Wait()
	for g := 0; g < 4; g++ {
		name := string(rune('a' + g))
		if sz, err := d.Size(name); err != nil || sz != 100 {
			t.Errorf("file %s: size=%d err=%v", name, sz, err)
		}
	}
}
