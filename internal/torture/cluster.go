package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/proc"
	"pacman/internal/shard"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/wire"
	"pacman/internal/workload"
)

// ClusterConfig tunes a sharded-cluster torture run: the durability and
// atomicity oracle driven through a routing coordinator over N shard
// instances, with a seeded victim — one shard, or the router itself —
// killed mid-traffic every cycle.
type ClusterConfig struct {
	Config
	// Shards is the cluster width (default 2).
	Shards int
	// Window is the per-connection in-flight window, used on both sides of
	// the router (default 16).
	Window int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	c.Config = c.Config.withDefaults()
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	return c
}

// newClusterHarness builds the cluster description — Smallbank over
// cfg.Shards shards, with the torture ledger and stamp procedure riding
// along via the Extra hook so they exist identically in every shard's
// catalog (the ledger is unpartitioned: seeded everywhere, stamps routed
// to shard 0) — and the cluster oracle over it.
func newClusterHarness(cfg ClusterConfig) (*harness, *shard.Cluster, error) {
	if cfg.Workload != WorkloadSmallbank {
		return nil, nil, fmt.Errorf("torture: cluster runs serve smallbank, not %q", cfg.Workload)
	}
	h := &harness{}
	h.ledgerPairs = cfg.Cycles*(cfg.TxnsPerCycle/4+8) + 64
	pairs := h.ledgerPairs
	extra := workload.BlueprintSpec{
		Tables: []*tuple.Schema{tuple.MustSchema(ledgerTable,
			tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt))},
		Procs: []*proc.Procedure{stampProc()},
		Seed: func(seed func(table string, key uint64, vals tuple.Tuple)) {
			for k := uint64(1); k <= uint64(2*pairs); k++ {
				seed(ledgerTable, k, tuple.Tuple{tuple.I(int64(k)), tuple.I(0)})
			}
		},
	}
	cluster := shard.NewSmallbankCluster(shard.Config{
		Shards: cfg.Shards, Customers: cfg.SBCustomers, HotspotPct: 25, Extra: &extra,
	})
	h.oracle = newClusterOracle(WorkloadSmallbank, int64(cfg.SBCustomers)*3000, pairs, cfg.Shards)
	return h, cluster, nil
}

// clusterTxn generates one transaction of the sharded mix. It mirrors
// smallbankTxn with two cluster-specific adjustments: Amalgamate has no
// cross-shard split, so its two customers are drawn from one shard; and
// SendPayment may land cross-shard, where an unfunded debit aborts loudly
// (the 2PC prepare votes no) instead of committing a no-op, so it carries
// mayAbort. Every conservation delta stays exact — cross-shard payments
// are delta zero, which is precisely why a torn one is detectable.
func (h *harness) clusterTxn(rng *rand.Rand, submit submitFn, part shard.Partitioner) pending {
	if rng.Intn(8) == 0 {
		if pair := h.takeStamp(); pair >= 0 {
			val := 1 + rng.Int63n(1<<40)
			fut := submit("TortureStamp", pacman.Args{
				proc.A(tuple.I(int64(pairKeyA(pair)))),
				proc.A(tuple.I(int64(pairKeyB(pair)))),
				proc.A(tuple.I(val)),
			})
			return pending{fut: fut, logged: true, stamp: pair, stampVal: val}
		}
	}
	n := int64(h.sbCustomers())
	cust := func() int64 {
		if rng.Intn(4) == 0 {
			return 1 + rng.Int63n(4) // hot keys
		}
		return 1 + rng.Int63n(n)
	}
	c1 := cust()
	sameShard := func() int64 {
		s1, _ := part.ShardOf("CHECKING", c1)
		for {
			c2 := cust()
			if c2 == c1 {
				continue
			}
			if s2, _ := part.ShardOf("CHECKING", c2); s2 == s1 {
				return c2
			}
		}
	}
	distinct := func() int64 {
		for {
			if c2 := cust(); c2 != c1 {
				return c2
			}
		}
	}
	amt := 1 + rng.Int63n(99)
	fa := proc.A(tuple.F(float64(amt)))
	p := pending{stamp: -1, logged: true}
	switch rng.Intn(10) {
	case 0, 1:
		p.fut = submit("Amalgamate", pacman.Args{proc.A(tuple.I(c1)), proc.A(tuple.I(sameShard()))})
	case 2, 3:
		p.fut = submit("DepositChecking", pacman.Args{proc.A(tuple.I(c1)), fa})
		p.lo, p.hi = amt, amt
	case 4, 5:
		p.fut = submit("SendPayment", pacman.Args{proc.A(tuple.I(c1)), proc.A(tuple.I(distinct())), fa})
		p.logged = false
		p.mayAbort = true
	case 6:
		v := amt
		if rng.Intn(3) == 0 {
			v = -v
		}
		p.fut = submit("TransactSavings", pacman.Args{proc.A(tuple.I(c1)), proc.A(tuple.F(float64(v)))})
		p.lo, p.hi = v, v
		p.mayAbort = true
	case 7, 8:
		p.fut = submit("WriteCheck", pacman.Args{proc.A(tuple.I(c1)), fa})
		p.lo, p.hi = -amt-1, -amt
	default:
		p.fut = submit("Balance", pacman.Args{proc.A(tuple.I(c1))})
		p.logged = false
	}
	return p
}

// settleCluster classifies one resolved future from the router frontside.
// It differs from settle in its default case: an error that crosses two
// wire hops (shard → router backside, router → frontside client) can lose
// its identity — the backside's connection loss and the router's own
// shutdown reach the client as opaque internal codes — so anything not
// provably never-executed is held to the maybe contract (all-or-nothing,
// outcome frozen by the next verification) instead of being reported as a
// violation. The conservation and ledger oracles lose no power: maybe
// slack for delta-zero cross-shard payments is zero, so a torn one is
// still always caught.
func settleCluster(j *journal, p pending) {
	_, err := p.fut.Wait()
	switch {
	case err == nil:
		j.acked++
		j.ackLo += p.lo
		j.ackHi += p.hi
		if p.logged {
			j.ackedLogged++
			if e := p.fut.Epoch(); e > j.maxAckedEpoch {
				j.maxAckedEpoch = e
			}
		}
		if p.stamp >= 0 {
			j.stampsAcked = append(j.stampsAcked, stampRec{pair: p.stamp, val: p.stampVal})
		}
	case errors.Is(err, pacman.ErrFrontendClosed), errors.Is(err, client.ErrClientClosed):
		j.rejected++ // never executed: no effects, no slack
	case p.mayAbort && errors.Is(err, proc.ErrAborted):
		j.aborted++ // rolled back (round-trips both hops as CodeAborted)
	default:
		j.maybe++
		if p.lo < 0 {
			j.maybeLo += p.lo
		}
		if p.hi > 0 {
			j.maybeHi += p.hi
		}
		if p.stamp >= 0 {
			j.stampsMaybe = append(j.stampsMaybe, stampRec{pair: p.stamp, val: p.stampVal})
		}
	}
}

// RunCluster executes one sharded-cluster torture run: N shard instances
// behind wire servers, a router (with its own decision-log device) in
// front, and the cluster mix driven through the router while a seeded
// victim dies mid-traffic every cycle — even cycles kill one shard
// (severed links, crashed instance, Restart over its mixed command/value
// log stream), odd cycles kill the router (unsynced decision-log tail
// lost; the next incarnation settles every in-doubt transaction from the
// log before serving). After each cycle the cluster oracle verifies
// cross-shard atomicity: balance conservation summed over every shard,
// ledger stamp atomicity, and per-gtid 2PC outcome agreement — then a
// long-lived prober proves the recovered path serves a durable commit.
func RunCluster(cfg ClusterConfig) (*Stats, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &Stats{}

	h, cluster, err := newClusterHarness(cfg)
	if err != nil {
		return st, err
	}
	shardOpts := func() pacman.Options {
		return cluster.ShardOptions(pacman.Options{
			Logging:       cfg.Logging,
			Devices:       2,
			EpochInterval: time.Millisecond,
			MaxRetries:    1 << 20,
		})
	}

	bps := make([]pacman.Blueprint, cfg.Shards)
	dbs := make([]*pacman.DB, cfg.Shards)
	devs := make([][]*pacman.Device, cfg.Shards)
	srvs := make([]*wire.Server, cfg.Shards)
	addrs := make([]string, cfg.Shards)
	for i := range dbs {
		bps[i] = cluster.ShardBlueprint(i)
		db, err := pacman.Launch(bps[i], shardOpts())
		if err != nil {
			return st, err
		}
		dbs[i], devs[i] = db, db.Devices()
		srv := wire.NewServer(wire.ServerConfig{Workers: cfg.Workers, Queue: 4 * cfg.Workers, Window: cfg.Window})
		if err := srv.Attach(db); err != nil {
			return st, err
		}
		bound, err := srv.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return st, err
		}
		srvs[i], addrs[i] = srv, bound.String()
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
		for _, d := range dbs {
			d.Close()
		}
	}()

	rdev := simdisk.New("router-2pc", simdisk.Config{})
	makeRouter := func() (*shard.Router, error) {
		multi, err := client.DialMulti("tcp", addrs, client.Config{
			Window: cfg.Window, KeepAlive: 25 * time.Millisecond,
			BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		return shard.NewRouter(cluster, multi, rdev, shard.RouterConfig{
			QueueCap: 4 * cfg.Clients * cfg.Window, RetryBackoff: time.Millisecond,
		})
	}
	router, err := makeRouter()
	if err != nil {
		return st, err
	}
	defer func() { router.Close() }()
	rsrv := wire.NewServer(wire.ServerConfig{Window: cfg.Window})
	rsrv.AttachBackend(router)
	bound, err := rsrv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return st, err
	}
	front := bound.String()
	defer rsrv.Close()

	// The prober outlives every kill: its redial loop must find each
	// recovered incarnation of the router.
	prober, err := client.Dial("tcp", front, client.Config{
		Window: 4, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		return st, err
	}
	defer prober.Close()

	var killLog []string
	violation := func(cycle int, faults []string) error {
		return &Violation{Seed: cfg.Seed, Cycle: cycle, Cfg: cfg.Config, Plans: killLog, Faults: faults}
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		st.Cycles = cycle + 1

		clients := make([]*client.Client, cfg.Clients)
		for i := range clients {
			c, err := client.Dial("tcp", front, client.Config{
				Window: cfg.Window, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
			})
			if err != nil {
				return st, fmt.Errorf("torture: dial load client %d: %w", i, err)
			}
			clients[i] = c
		}

		var budget atomic.Int64
		budget.Store(int64(cfg.TxnsPerCycle))
		done := make(chan struct{})
		js := make([]*journal, cfg.Clients)
		var wg sync.WaitGroup
		for c := 0; c < cfg.Clients; c++ {
			j := &journal{}
			js[c] = j
			wg.Add(1)
			go func(c int, j *journal) {
				defer wg.Done()
				crng := rand.New(rand.NewSource(cfg.Seed ^ int64(cycle)*7919 ^ int64(c)*104729))
				submit := func(name string, args pacman.Args) waiter { return clients[c].Submit(name, args) }
				var window []pending
				for budget.Add(-1) >= 0 {
					p := h.clusterTxn(crng, submit, cluster.Partitioner())
					window = append(window, p)
					if len(window) >= cfg.Window {
						settleCluster(j, window[0])
						window = window[1:]
					}
				}
				for _, p := range window {
					settleCluster(j, p)
				}
			}(c, j)
		}
		go func() { wg.Wait(); close(done) }()

		// The seeded kill, mid-traffic. Either way the victim is restarted
		// in place and the remaining budget drains against the recovered
		// cluster — the frontside clients redial the router, the router's
		// backside links redial a restarted shard, and stuck 2PC deliveries
		// retry until their participant is back.
		time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		if cycle%2 == 0 {
			t := rng.Intn(cfg.Shards)
			killLog = append(killLog, fmt.Sprintf("cycle %d: kill shard %d mid-traffic", cycle, t))
			st.ShardKills++
			srvs[t].Kill()
			dbs[t].Crash()
			db2, res, err := pacman.Restart(devs[t], bps[t], pacman.RecoverConfig{
				Threads: cfg.Threads,
				Serve:   shardOpts(),
			})
			if err != nil {
				return st, violation(cycle, []string{fmt.Sprintf("shard %d Restart failed: %v", t, err)})
			}
			dbs[t] = db2
			st.Replayed = res.Entries
			if err := srvs[t].Attach(db2); err != nil {
				return st, err
			}
			if _, err := srvs[t].Listen("tcp", addrs[t]); err != nil {
				return st, err
			}
		} else {
			killLog = append(killLog, fmt.Sprintf("cycle %d: kill router mid-traffic", cycle))
			st.RouterKills++
			rsrv.Kill()
			router.Close()
			rdev.Crash() // the unsynced decision-log tail (end records) is lost
			router, err = makeRouter()
			if err != nil {
				return st, violation(cycle, []string{fmt.Sprintf("router recovery failed: %v", err)})
			}
			rsrv.AttachBackend(router)
			if _, err := rsrv.Listen("tcp", front); err != nil {
				return st, err
			}
		}

		<-done
		for _, c := range clients {
			c.Close()
		}
		st.Stamps = int(h.stampsUsed.Load())

		// Client futures resolve at decision time; wait for the decide
		// pieces themselves to land before auditing the 2PC status tables.
		if !router.Quiesce(5 * time.Second) {
			return st, violation(cycle, []string{"router failed to quiesce decide deliveries within 5s"})
		}

		if faults := h.oracle.absorb(js, st); len(faults) > 0 {
			return st, violation(cycle, faults)
		}
		if faults := h.oracle.verifyCluster(dbs); len(faults) > 0 {
			return st, violation(cycle, faults)
		}
		// Serving proof through the long-lived prober: a durable stamp must
		// commit through the recovered router/shard path. Cluster epochs are
		// per-shard clocks, so the structural epoch floor is trivially zero.
		if fault := h.proveServingVia(prober.Exec, &pacman.RecoveryResult{}, st); fault != "" {
			return st, violation(cycle, []string{fault})
		}
		h.logf(cfg.Config, "%s: ok", killLog[len(killLog)-1])
	}
	return st, nil
}
