package torture

import "testing"

// TestClusterTorture runs the sharded-cluster cycle end to end: a 2-shard
// Smallbank cluster behind a router, with one shard killed mid-traffic on
// the even cycle and the router killed mid-2PC on the odd one, and the
// cluster oracle (cross-shard balance conservation, ledger atomicity,
// per-gtid 2PC agreement) verified after every recovery.
func TestClusterTorture(t *testing.T) {
	st, err := RunCluster(ClusterConfig{
		Config: Config{Seed: 7, Cycles: 2, TxnsPerCycle: 300, Clients: 4},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardKills != 1 || st.RouterKills != 1 {
		t.Fatalf("expected one shard kill and one router kill, got %s", st)
	}
	if st.Acked == 0 {
		t.Fatalf("no transactions acknowledged durable: %s", st)
	}
	if st.Stamps == 0 {
		t.Fatalf("no ledger stamps exercised the atomicity oracle: %s", st)
	}
	t.Logf("cluster torture: %s", st)
}

// TestClusterTortureSeeds shakes the cluster cycle across a few seeds so
// the kill instants land in different phases of the 2PC pipeline.
func TestClusterTortureSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed cluster torture in -short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		st, err := RunCluster(ClusterConfig{
			Config: Config{Seed: seed, Cycles: 2, TxnsPerCycle: 200, Clients: 3},
			Shards: 2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.Acked == 0 {
			t.Fatalf("seed %d: no acked transactions: %s", seed, st)
		}
	}
}
