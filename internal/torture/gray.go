// Gray-failure torture: the faults in this file never kill anything — a
// device gets slow, briefly stuck, or hung outright while the instance keeps
// running. The run asserts the three promises gray-failure resilience makes:
//
//   - Fail fast: every request carries a deadline, and no future outlives it
//     by more than a grace window — slow durability turns into a prompt,
//     typed ErrDeadlineExceeded, never a silent hang (liveness oracle).
//   - Detect: the health watchdog enters brownout within a budget after a
//     gray fault is armed, and returns to healthy within a budget after the
//     device comes back (detection oracle).
//   - Stay correct: everything acknowledged under the gray fault, through
//     the brownout, and across the crash that ends the cycle is durable —
//     the same ClusterOracle that audits the power-fail cycles absorbs the
//     gray journals too (durability oracle).
//
// Each cycle still ends in a full power failure and recovery, so the gray
// run also proves slow-fault handling composes with crash recovery.

package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/internal/simdisk"
)

// GrayConfig tunes one gray-failure torture run (RunGray). The embedded
// Config keeps its meanings; TxnsPerCycle defaults higher (2000) because
// shed submissions burn budget too.
type GrayConfig struct {
	Config
	// Deadline is the per-request deadline every submission carries
	// (default 150ms).
	Deadline time.Duration
	// DetectBudget bounds how long the watchdog may take to enter brownout
	// after a gray fault is armed (default 5s — wall clock, generous so the
	// race detector and loaded CI cannot flake it; nominal detection is a
	// few sweep intervals).
	DetectBudget time.Duration
	// RecoverBudget bounds the return to healthy after the fault is
	// disarmed (default 5s).
	RecoverBudget time.Duration
}

func (c GrayConfig) withDefaults() GrayConfig {
	if c.Cycles <= 0 {
		c.Cycles = 3
	}
	if c.TxnsPerCycle <= 0 {
		c.TxnsPerCycle = 2000
	}
	c.Config = c.Config.withDefaults()
	if c.Deadline <= 0 {
		c.Deadline = 150 * time.Millisecond
	}
	if c.DetectBudget <= 0 {
		c.DetectBudget = 5 * time.Second
	}
	if c.RecoverBudget <= 0 {
		c.RecoverBudget = 5 * time.Second
	}
	return c
}

// grayHealth is the tight watchdog tuning a gray run serves under: sweeps
// every 2ms against a 20ms sync budget, trip after 2 consecutive breaches,
// clear after 4 consecutive clean sweeps. The budgets are far below the
// production defaults (which are sized never to trip in ordinary tests) and
// far above anything the fault-free simulator produces, so brownout here
// means the armed gray fault — or a genuine stall — was observed.
func grayHealth() pacman.HealthConfig {
	return pacman.HealthConfig{
		Interval:          2 * time.Millisecond,
		TripAfter:         2,
		ClearAfter:        4,
		SyncLatencyBudget: 20 * time.Millisecond,
		PepochStallBudget: 150 * time.Millisecond,
		EpochStallBudget:  500 * time.Millisecond,
		QueueStallBudget:  250 * time.Millisecond,
	}
}

// RunGray executes one gray-failure torture run and returns its stats; the
// error is a *Violation when an oracle caught a broken promise, or an
// infrastructure error otherwise.
func RunGray(cfg GrayConfig) (*Stats, error) {
	cfg = cfg.withDefaults()
	hc := grayHealth()
	cfg.serveHealth = &hc
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &Stats{}

	// Oversize the stamp ledger: unlike Run, a gray cycle's length is set by
	// the detection/recovery assertions, not the budget — the post-budget
	// trickle (see serveGray) can push submissions well past TxnsPerCycle.
	hcfg := cfg.Config
	hcfg.TxnsPerCycle *= 4
	h, err := newHarness(hcfg)
	if err != nil {
		return st, err
	}
	db, err := pacman.Launch(h.bp, pacman.Options{
		Logging:       cfg.Logging,
		Devices:       2,
		EpochInterval: time.Millisecond,
		MaxRetries:    1 << 20,
		Health:        hc,
	})
	if err != nil {
		return st, err
	}
	devices := db.Devices()

	var planLog []string
	logPlan := func(kind string, cycle int, p *simdisk.FaultPlan) {
		planLog = append(planLog, fmt.Sprintf("cycle %d %s: %s", cycle, kind, p.String()))
	}
	violation := func(cycle int, faults []string) error {
		return &Violation{Seed: cfg.Seed, Cycle: cycle, Cfg: cfg.Config, Plans: planLog, Faults: faults}
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		st.Cycles = cycle + 1

		plan, flavor := grayPlan(rng, devices)
		logPlan("gray("+flavor+")", cycle, plan)
		js, fault := h.serveGray(cfg, db, cycle, plan, devices, st)
		if fault != "" {
			return st, violation(cycle, []string{fmt.Sprintf("%s under %s", fault, flavor)})
		}
		if faults := h.oracle.absorb(js, st); len(faults) > 0 {
			return st, violation(cycle, faults)
		}

		if cfg.Hook != nil {
			cfg.Hook("crashed", cycle, devices, nil)
		}
		db2, res, err := h.recoverCycle(cfg.Config, rng, devices, st, cycle, logPlan, violation)
		if err != nil {
			return st, err
		}
		db = db2
		st.Replayed = res.Entries
		if cfg.Hook != nil {
			cfg.Hook("recovered", cycle, devices, res)
		}
		if faults := h.oracle.verify(db, res); len(faults) > 0 {
			return st, violation(cycle, faults)
		}
		if fault := h.proveServing(db, res, st); fault != "" {
			return st, violation(cycle, []string{fault})
		}
		h.logf(cfg.Config, "gray cycle %d (%s): ok (brownouts %d, deadline %d, shed %d)",
			cycle, flavor, st.Brownouts, st.DeadlineExpired, st.Shed)
	}
	db.Close()
	return st, nil
}

// serveGray drives one gray cycle: deadline-bounded traffic starts healthy,
// the gray plan is armed mid-traffic, the watchdog must trip (detection
// oracle), the plan is disarmed and the watchdog must clear, and the cycle
// ends in the usual power failure so recovery is exercised too. Returns the
// settled client journals and a detection-oracle fault ("" when none).
func (h *harness) serveGray(cfg GrayConfig, db *pacman.DB, cycle int, plan *simdisk.FaultPlan, devices []*pacman.Device, st *Stats) ([]*journal, string) {
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: cfg.Workers})
	var budget atomic.Int64
	budget.Store(int64(cfg.TxnsPerCycle))
	var stop atomic.Bool
	done := make(chan struct{})
	var gc grayCounters

	const maxInFlight = 32
	js := make([]*journal, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		j := &journal{}
		js[c] = j
		wg.Add(1)
		go func(c int, j *journal) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(cfg.Seed ^ int64(cycle)*7919 ^ int64(c)*104729 ^ 0x6772617921))
			submit := func(name string, args pacman.Args) waiter {
				return fe.SubmitWithin(name, args, cfg.Deadline)
			}
			var window []pending
			for !stop.Load() {
				switch {
				case fe.Brownout():
					// A real client backs off while shed; spinning here would
					// flood the journal with rejections and starve the
					// recovery phase of the traffic whose fast syncs decay
					// the breached latency average.
					time.Sleep(time.Millisecond)
				case budget.Add(-1) < 0:
					// Budget spent: drop to a trickle instead of stopping —
					// the detection oracle needs syncs still happening after
					// the fault arms, and the cycle ends when the assertions
					// do, not when the budget does.
					time.Sleep(time.Millisecond)
				}
				p := h.generate(crng, submit)
				window = append(window, p)
				if len(window) >= maxInFlight {
					settleGray(j, window[0], &gc)
					window = window[1:]
				}
			}
			for _, p := range window {
				settleGray(j, p, &gc)
			}
		}(c, j)
	}
	go func() { wg.Wait(); close(done) }()

	// Let healthy traffic flow first so the trip below is attributable to
	// the armed fault, not startup.
	time.Sleep(10 * time.Millisecond)

	before := db.Health().Brownouts
	plan.Arm(devices...)
	fault := ""
	if !waitUntil(cfg.DetectBudget, func() bool { return db.Health().Brownouts > before }) {
		fault = fmt.Sprintf("watchdog failed to enter brownout within %v of arming a gray fault (health %+v)",
			cfg.DetectBudget, db.Health())
	} else {
		// Hold the fault past the request deadline so expiry actually fires
		// under impairment — including the timer path for futures trapped in
		// a flush whose sync is hung, which nothing else can resolve.
		time.Sleep(2 * cfg.Deadline)
	}
	// The device "comes back": hung syncs complete, latency returns to
	// normal, and the watchdog must clear on its own.
	plan.Disarm()
	if fault == "" && !waitUntil(cfg.RecoverBudget, func() bool { return db.Health().State == "healthy" }) {
		fault = fmt.Sprintf("watchdog failed to return to healthy within %v of the gray fault clearing (health %+v)",
			cfg.RecoverBudget, db.Health())
	}
	st.Brownouts += db.Health().Brownouts - before

	stop.Store(true)
	db.Crash() // resolves outstanding futures; clients drain on that
	<-done
	fe.Close()
	st.Stamps = int(h.stampsUsed.Load())
	st.DeadlineExpired += gc.deadline.Load()
	st.Shed += gc.shed.Load()
	return js, fault
}

// waitUntil polls cond every 2ms until it holds or the budget elapses.
func waitUntil(budget time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// grayCounters accumulates the gray-only classifications across client
// goroutines (the journal is per-client; these are per-run).
type grayCounters struct {
	deadline atomic.Int64
	shed     atomic.Int64
}

// grayLivenessGrace is how far past its deadline a future may stay
// unresolved before the liveness oracle calls it a hang. Expiry is a
// per-future timer, so the nominal overshoot is timer slack plus one
// scheduling quantum; the grace adds generous headroom for the race
// detector and loaded CI.
const grayLivenessGrace = time.Second

// settleGray classifies one gray-cycle future into the journal. It extends
// settle with the two outcomes gray faults produce — ErrDeadlineExceeded
// (execution unknown: the timer may have beaten a commit that still lands
// durably, so the oracle widens exactly as for a crash) and ErrBrownout
// (shed at admission, never executed) — and enforces the liveness contract
// first: a deadline-carrying future still unresolved grayLivenessGrace past
// its deadline has broken the fail-fast promise.
func settleGray(j *journal, p pending, gc *grayCounters) {
	type deadliner interface {
		Done() <-chan struct{}
		Deadline() time.Time
	}
	if r, ok := p.fut.(deadliner); ok {
		if dl := r.Deadline(); !dl.IsZero() {
			select {
			case <-r.Done():
			case <-time.After(time.Until(dl.Add(grayLivenessGrace))):
				select {
				case <-r.Done(): // resolved on the race — fine
				default:
					j.violations = append(j.violations, fmt.Sprintf(
						"liveness: future still unresolved %v past its deadline", grayLivenessGrace))
					// Abandon rather than deadlock the harness; account as a
					// maybe so the durability oracle stays sound.
					grayMaybe(j, p)
					return
				}
			}
		}
	}
	_, err := p.fut.Wait()
	switch {
	case errors.Is(err, pacman.ErrDeadlineExceeded):
		gc.deadline.Add(1)
		grayMaybe(j, p)
	case errors.Is(err, pacman.ErrBrownout):
		gc.shed.Add(1)
		j.rejected++ // never executed: no effects, no slack
	default:
		settle(j, p)
	}
}

// grayMaybe widens the oracle bounds for an outcome the caller gave up on
// but the system may still complete — the deadline twin of settle's
// crash-sentinel branch.
func grayMaybe(j *journal, p pending) {
	j.maybe++
	if p.lo < 0 {
		j.maybeLo += p.lo
	}
	if p.hi > 0 {
		j.maybeHi += p.hi
	}
	if p.stamp >= 0 {
		j.stampsMaybe = append(j.stampsMaybe, stampRec{pair: p.stamp, val: p.stampVal})
	}
}
