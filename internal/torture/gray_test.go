package torture

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pacman/internal/simdisk"
)

// TestRunGrayShort is the gray-failure smoke: two cycles of slow/stuck/hung
// devices under deadline-bounded traffic must trip the watchdog, clear it
// after the fault lifts, pass the durability oracle across the ending crash,
// and leak no goroutines. The root-level race target runs the same path
// under -race.
func TestRunGrayShort(t *testing.T) {
	g0 := runtime.NumGoroutine()
	st, err := RunGray(GrayConfig{Config: Config{Seed: 11, Cycles: 2, TxnsPerCycle: 600}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 2 || st.Acked == 0 {
		t.Fatalf("implausible stats: %s", st)
	}
	if st.Brownouts < int64(st.Cycles) {
		t.Fatalf("every gray cycle must trip the watchdog at least once: %s", st)
	}
	t.Logf("stats: %s", st)

	// Goroutine-leak guard: everything RunGray started (watchdog sweeps,
	// loggers, frontends, clients, deadline timers) must be gone. Poll —
	// exits are asynchronous — and allow slack for runtime/test goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= g0+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before run, %d after\n%s",
				g0, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGrayPlanDeterministic: gray plans derive purely from the cycle RNG,
// like every other torture plan — the reproduction-line property.
func TestGrayPlanDeterministic(t *testing.T) {
	devs := []*simdisk.Device{
		simdisk.New("ssd0", simdisk.Unlimited()),
		simdisk.New("ssd1", simdisk.Unlimited()),
	}
	render := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		out := ""
		for i := 0; i < 10; i++ {
			p, flavor := grayPlan(rng, devs)
			out += flavor + ":" + p.String() + "\n"
		}
		return out
	}
	a, b := render(3), render(3)
	if a != b {
		t.Fatalf("gray plan derivation not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == render(4) {
		t.Fatal("different seeds derived identical gray plans (suspicious)")
	}
}
