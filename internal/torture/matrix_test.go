package torture

import (
	"testing"

	"pacman"
)

// TestRunMatrix sweeps the three logging kinds over a few seeds at small
// scale — the package-level version of the root TestTortureShort, kept here
// so torture failures localize to this package first.
func TestRunMatrix(t *testing.T) {
	kinds := []struct {
		name string
		kind pacman.LogKind
	}{
		{"CL", pacman.CommandLogging},
		{"PL", pacman.PhysicalLogging},
		{"LL", pacman.LogicalLogging},
	}
	for _, k := range kinds {
		for _, seed := range []int64{7, 1234} {
			k, seed := k, seed
			t.Run(k.name, func(t *testing.T) {
				st, err := Run(Config{
					Seed: seed, Cycles: 3, TxnsPerCycle: 150, Logging: k.kind,
				})
				if err != nil {
					t.Fatal(err)
				}
				if st.Acked == 0 {
					t.Fatalf("no durable acks: %s", st)
				}
			})
		}
	}
}
