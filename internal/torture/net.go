package torture

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/simdisk"
	"pacman/internal/wire"
)

// NetConfig tunes a network torture run: the in-process oracle machinery
// (fault plans, journals, durability/atomicity verification) driven through
// the wire protocol instead of a Frontend, with the daemon killed mid-
// conversation every cycle.
type NetConfig struct {
	Config
	// Network/Addr pick the daemon's endpoint. The default is a unix socket
	// under the system temp directory (unique per process and seed); "tcp"
	// with addr "127.0.0.1:0" works too — the bound address is reused across
	// the run's restarts either way.
	Network, Addr string
	// Window is the per-connection in-flight window (default 32).
	Window int
}

func (c NetConfig) withDefaults() NetConfig {
	c.Config = c.Config.withDefaults()
	if c.Network == "" {
		c.Network = "unix"
	}
	if c.Addr == "" {
		if c.Network == "unix" {
			c.Addr = filepath.Join(os.TempDir(), fmt.Sprintf("pacman-torture-%d-%d.sock", os.Getpid(), c.Seed))
		} else {
			c.Addr = "127.0.0.1:0"
		}
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	return c
}

// RunNet executes one network torture run: Launch → serve the wire protocol
// → kill the daemon mid-load (severed connections, crashed instance, power-
// failed devices) → Restart → re-Attach and re-Listen on the same address →
// verify the oracle → prove the recovered incarnation serves over the
// socket — for cfg.Cycles cycles.
//
// Two client populations exercise the two failure contracts: per-cycle load
// clients whose in-flight submissions must settle as exactly durable /
// connection-lost / never-executed when the daemon dies, and one prober
// client that persists across every crash — its reconnect-with-backoff loop
// must find each recovered incarnation, and its synchronous stamp is the
// serving proof.
func RunNet(cfg NetConfig) (*Stats, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &Stats{}

	h, err := newHarness(cfg.Config)
	if err != nil {
		return st, err
	}
	db, err := pacman.Launch(h.bp, pacman.Options{
		Logging:       cfg.Logging,
		Devices:       2,
		EpochInterval: time.Millisecond,
		MaxRetries:    1 << 20,
	})
	if err != nil {
		return st, err
	}
	devices := db.Devices()

	srv := wire.NewServer(wire.ServerConfig{Workers: cfg.Workers, Queue: 4 * cfg.Workers, Window: cfg.Window})
	if err := srv.Attach(db); err != nil {
		return st, err
	}
	bound, err := srv.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return st, err
	}
	addr := bound.String()
	defer func() {
		srv.Close()
		if cfg.Network == "unix" {
			os.Remove(addr)
		}
	}()

	prober, err := client.Dial(cfg.Network, addr, client.Config{
		Window: 4, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		return st, err
	}
	defer prober.Close()

	var planLog []string
	logPlan := func(kind string, cycle int, p *simdisk.FaultPlan) {
		planLog = append(planLog, fmt.Sprintf("cycle %d %s: %s", cycle, kind, p.String()))
	}
	violation := func(cycle int, faults []string) error {
		return &Violation{Seed: cfg.Seed, Cycle: cycle, Cfg: cfg.Config, Plans: planLog, Faults: faults}
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		st.Cycles = cycle + 1

		plan := servePlan(rng, devices)
		tripped := make(chan struct{})
		if plan != nil {
			plan.OnTrip = func(dev, op string) { close(tripped) }
			logPlan("serve", cycle, plan)
			plan.Arm(devices...)
		} else {
			logPlan("serve", cycle, nil)
		}
		takeCkpt := rng.Intn(100) < cfg.CheckpointPct
		js, serveErr := h.serveNet(cfg, db, srv, addr, cycle, tripped, takeCkpt, st)
		if plan != nil {
			if plan.Tripped() {
				st.ServeTrips++
			}
			plan.Disarm()
		}
		if serveErr != nil {
			return st, serveErr
		}
		if faults := h.oracle.absorb(js, st); len(faults) > 0 {
			return st, violation(cycle, faults)
		}

		if cfg.Hook != nil {
			cfg.Hook("crashed", cycle, devices, nil)
		}

		db2, res, err := h.recoverCycle(cfg.Config, rng, devices, st, cycle, logPlan, violation)
		if err != nil {
			return st, err
		}
		db = db2
		st.Replayed = res.Entries
		if cfg.Hook != nil {
			cfg.Hook("recovered", cycle, devices, res)
		}

		if faults := h.oracle.verify(db, res); len(faults) > 0 {
			return st, violation(cycle, faults)
		}

		// Back on the air: the same Server object adopts the recovered
		// incarnation and reopens the same address (Listen handles the stale
		// unix socket file the killed incarnation left behind).
		if err := srv.Attach(db); err != nil {
			return st, err
		}
		if _, err := srv.Listen(cfg.Network, addr); err != nil {
			return st, err
		}

		// The serving proof goes through the long-lived prober: its redial
		// loop has to find the new incarnation, and the stamp must commit
		// durably above the recovered pepoch — crash→Restart→serve, observed
		// entirely from the client side of the socket.
		if fault := h.proveServingVia(prober.Exec, res, st); fault != "" {
			return st, violation(cycle, []string{fault})
		}
		h.logf(cfg.Config, "cycle %d: ok over %s (pepoch %d, %d entries, ckpt %d)",
			cycle, cfg.Network, res.Pepoch, res.Entries, res.CheckpointID)
	}
	srv.Drain(10 * time.Second)
	db.Close()
	return st, nil
}

// serveNet drives one cycle's traffic through fresh wire clients until the
// budget runs out or the armed plan trips, then kills the daemon the hard
// way: listeners and connections severed mid-frame, the instance crashed,
// the devices power-failed. The load clients are then closed so every
// parked submission settles (ErrClientClosed = never executed) and the
// journals can be classified before recovery runs.
func (h *harness) serveNet(cfg NetConfig, db *pacman.DB, srv *wire.Server, addr string, cycle int,
	tripped <-chan struct{}, takeCkpt bool, st *Stats) ([]*journal, error) {
	clients := make([]*client.Client, cfg.Clients)
	for i := range clients {
		c, err := client.Dial(cfg.Network, addr, client.Config{
			Window: cfg.Window, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
		})
		if err != nil {
			for _, prev := range clients[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("torture: dial load client %d: %w", i, err)
		}
		clients[i] = c
	}

	var budget atomic.Int64
	budget.Store(int64(cfg.TxnsPerCycle))
	var stop atomic.Bool
	done := make(chan struct{})

	const maxInFlight = 16
	js := make([]*journal, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		j := &journal{}
		js[c] = j
		wg.Add(1)
		go func(c int, j *journal) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(cfg.Seed ^ int64(cycle)*7919 ^ int64(c)*104729))
			submit := func(name string, args pacman.Args) waiter { return clients[c].Submit(name, args) }
			var window []pending
			for !stop.Load() && budget.Add(-1) >= 0 {
				p := h.generate(crng, submit)
				window = append(window, p)
				if len(window) >= maxInFlight {
					settle(j, window[0])
					window = window[1:]
				}
			}
			for _, p := range window {
				settle(j, p)
			}
		}(c, j)
	}
	go func() { wg.Wait(); close(done) }()

	// Mid-traffic checkpoint, inside the fault window.
	if takeCkpt {
		time.Sleep(time.Duration(1+cycle%3) * time.Millisecond)
		if err := db.Checkpoint(); err == nil {
			st.Checkpoints++
		}
	}

	select {
	case <-tripped:
		stop.Store(true)
	case <-done:
	}
	stop.Store(true)
	// The daemon dies: connections sever mid-frame, then the instance
	// crashes and the devices lose their unsynced tails. In-flight futures
	// resolve ErrConnLost; a submission parked pre-send resolves
	// ErrClientClosed when its (per-cycle) client closes below.
	srv.Kill()
	db.Crash()
	for _, c := range clients {
		c.Close()
	}
	<-done
	st.Stamps = int(h.stampsUsed.Load())
	return js, nil
}
