package torture

import (
	"testing"
)

// TestRunNetShort is the network cycle's smoke: a short run over a unix
// socket in which the daemon is killed mid-load every cycle, recovered with
// a forced crash-during-Restart, and proved serving again through a client
// that survives every outage — all under the same durability/atomicity
// oracle as the in-process runs.
func TestRunNetShort(t *testing.T) {
	st, err := RunNet(NetConfig{
		Config: Config{Seed: 42, Cycles: 3, TxnsPerCycle: 200, ForceRecoveryCrash: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 3 || st.Acked == 0 || st.Stamps == 0 {
		t.Fatalf("implausible stats: %s", st)
	}
	if st.RecoveryCrashes == 0 {
		t.Fatalf("forced recovery crash never happened: %s", st)
	}
	t.Logf("stats: %s", st)
}

// TestRunNetTCP: the same cycle over loopback TCP, proving nothing in the
// crash→Restart→serve path depends on unix-socket semantics.
func TestRunNetTCP(t *testing.T) {
	st, err := RunNet(NetConfig{
		Config:  Config{Seed: 7, Cycles: 2, TxnsPerCycle: 120},
		Network: "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 2 || st.Acked == 0 {
		t.Fatalf("implausible stats: %s", st)
	}
	t.Logf("stats: %s", st)
}
