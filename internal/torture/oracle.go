package torture

import (
	"fmt"

	"pacman"
	"pacman/internal/shard"
)

// The durability/atomicity oracle.
//
// Every transaction the torture driver submits is journaled by how its
// durable-commit Future resolved:
//
//   - acked: resolved nil — the system PROMISED durability. Its effects must
//     be present after every later recovery, exactly once.
//   - maybe: resolved ErrCrashed/ErrClosed — executed, but the crash beat
//     the acknowledgment. Atomicity still binds it: its effects must be
//     fully present or fully absent, never partial, and whichever way the
//     first post-crash recovery lands must stay that way forever (a dropped
//     ghost must never resurrect).
//   - none: rejected before execution (closed frontend) or rolled back
//     (explicit abort) — no effects, ever.
//
// Two read-back checks enforce this against the recovered state:
//
//  1. Balance conservation (Smallbank): every generated amount is an
//     integer-valued float, so expected totals are exact. Acked txns
//     contribute a known delta interval ([lo,hi] differs only for
//     WriteCheck, whose overdraft penalty depends on state); maybe txns
//     widen the interval by min(lo,0)/max(hi,0). The recovered
//     SAVINGS+CHECKING total must land inside the interval.
//  2. Ledger stamps (all workloads): TortureStamp writes the SAME value to
//     both rows of a never-reused ledger pair in one transaction. Acked →
//     both rows carry the value. Maybe → both carry it or both still carry
//     the pair's previous persisted value. One of each is a torn (partial)
//     transaction — the atomicity violation recovery must never produce.
//
// Plus the structural invariants of recovery.Result: the recovered pepoch
// covers every acked epoch, the resume epoch clears the recovered
// high-water mark, checkpoint ids never regress, and the replayed entry
// count accounts for every acked logging transaction (log batches are
// never truncated in these runs).

// stamp status values.
const (
	stampUnused = iota
	stampAcked  // durability promised: value must read back
	stampMaybe  // crash beat the ack: all-or-nothing, then frozen
)

type stampState struct {
	val    int64
	known  int64 // last persisted value the pair is known to hold
	status int
}

// journal accumulates one client's outcomes for one cycle; clients write
// their own journal race-free and the driver merges them after the crash.
type journal struct {
	ackLo, ackHi     int64
	maybeLo, maybeHi int64
	maxAckedEpoch    uint32
	acked            int64
	ackedLogged      int64
	maybe            int64
	rejected         int64
	aborted          int64
	stampsAcked      []stampRec
	stampsMaybe      []stampRec
	violations       []string
}

type stampRec struct {
	pair int
	val  int64
}

// oracle is the cross-cycle verification state.
type oracle struct {
	workload string
	t0       int64 // initial SAVINGS+CHECKING total (smallbank)

	ackLo, ackHi     int64 // exact delta bounds from acked txns
	maybeLo, maybeHi int64 // accumulated slack from unresolved maybes

	maxAckedEpoch uint32
	ackedLogged   int64
	lastCkptID    uint32

	stamps []stampState
}

func newOracle(workload string, t0 int64, pairs int) *oracle {
	return &oracle{workload: workload, t0: t0, stamps: make([]stampState, pairs)}
}

// merge folds one client journal into the oracle after a crash.
func (o *oracle) merge(j *journal) {
	o.ackLo += j.ackLo
	o.ackHi += j.ackHi
	o.maybeLo += j.maybeLo
	o.maybeHi += j.maybeHi
	if j.maxAckedEpoch > o.maxAckedEpoch {
		o.maxAckedEpoch = j.maxAckedEpoch
	}
	o.ackedLogged += j.ackedLogged
	for _, s := range j.stampsAcked {
		o.stamps[s.pair] = stampState{val: s.val, known: o.stamps[s.pair].known, status: stampAcked}
	}
	for _, s := range j.stampsMaybe {
		o.stamps[s.pair] = stampState{val: s.val, known: o.stamps[s.pair].known, status: stampMaybe}
	}
}

// verify checks the oracle against a freshly recovered, started instance.
// It returns every violation found (empty means the recovery upheld all
// guarantees) and resolves outstanding maybes against what actually
// persisted, so later cycles hold this recovery to its own outcome.
func (o *oracle) verify(db *pacman.DB, res *pacman.RecoveryResult) []string {
	v := o.verifyStructure(res)
	v = append(v, o.verifyBalances(balanceTotal(db))...)
	v = append(v, o.verifyLedger(readLedger(db))...)
	return v
}

// verifyStructure checks the structural invariants of one recovery result.
// These only make sense against a single instance's epoch clock and log
// stream, so the cluster oracle (whose acks mix per-shard clocks) skips
// them.
func (o *oracle) verifyStructure(res *pacman.RecoveryResult) []string {
	var v []string
	if res.Pepoch < o.maxAckedEpoch {
		v = append(v, fmt.Sprintf("recovered pepoch %d below an acknowledged commit epoch %d: durable acks were lost",
			res.Pepoch, o.maxAckedEpoch))
	}
	if res.ResumeEpoch <= res.Pepoch {
		v = append(v, fmt.Sprintf("resume epoch %d does not clear recovered pepoch %d", res.ResumeEpoch, res.Pepoch))
	}
	if res.CheckpointID < o.lastCkptID {
		v = append(v, fmt.Sprintf("checkpoint id regressed: recovered %d after %d", res.CheckpointID, o.lastCkptID))
	}
	o.lastCkptID = res.CheckpointID
	if total := int64(res.Entries) + int64(res.Filtered); total < o.ackedLogged {
		v = append(v, fmt.Sprintf("replayed+filtered %d entries but %d logging txns were acknowledged durable",
			total, o.ackedLogged))
	}
	return v
}

// verifyBalances checks balance conservation (exact integer arithmetic)
// against the recovered SAVINGS+CHECKING total — for a cluster, the total
// summed over every shard, since a torn cross-shard transfer moves money
// between shards without conserving the sum.
func (o *oracle) verifyBalances(total int64) []string {
	if o.workload != WorkloadSmallbank {
		return nil
	}
	lo := o.t0 + o.ackLo + o.maybeLo
	hi := o.t0 + o.ackHi + o.maybeHi
	if total < lo || total > hi {
		return []string{fmt.Sprintf("balance conservation: SAVINGS+CHECKING total %d outside [%d, %d] (t0 %d, acked [%+d,%+d], maybe slack [%+d,%+d])",
			total, lo, hi, o.t0, o.ackLo, o.ackHi, o.maybeLo, o.maybeHi)}
	}
	return nil
}

// verifyLedger checks the ledger read-back — presence for acked pairs,
// atomicity for all — and freezes outstanding maybes at whatever this
// recovery persisted.
func (o *oracle) verifyLedger(ledger map[uint64]int64) []string {
	var v []string
	for i := range o.stamps {
		s := &o.stamps[i]
		if s.status == stampUnused {
			continue
		}
		a, b := ledger[pairKeyA(i)], ledger[pairKeyB(i)]
		if a != b {
			v = append(v, fmt.Sprintf("ledger pair %d TORN: rows hold %d / %d (stamp value %d, %s) — partial transaction visible",
				i, a, b, s.val, stampStatusName(s.status)))
			continue
		}
		switch s.status {
		case stampAcked:
			if a != s.val {
				v = append(v, fmt.Sprintf("ledger pair %d: acknowledged stamp %d missing, rows hold %d — durable ack lost",
					i, s.val, a))
			}
		case stampMaybe:
			if a != s.val && a != s.known {
				v = append(v, fmt.Sprintf("ledger pair %d: unacknowledged stamp read back %d, expected %d (applied) or %d (absent)",
					i, a, s.val, s.known))
				continue
			}
			// The first post-crash recovery decides — applied or absent —
			// and later recoveries must agree: freeze the pair at whatever
			// persisted by holding it to the acked contract from here on.
			s.known, s.val, s.status = a, a, stampAcked
		}
	}
	return v
}

func stampStatusName(s int) string {
	switch s {
	case stampAcked:
		return "acked"
	case stampMaybe:
		return "maybe"
	}
	return "unused"
}

// pairKeyA/B map a ledger pair index to its two row keys (keys start at 1).
func pairKeyA(i int) uint64 { return uint64(2*i + 1) }
func pairKeyB(i int) uint64 { return uint64(2*i + 2) }

// balanceTotal sums SAVINGS+CHECKING; amounts are integer-valued floats so
// the sum is exact. Catalogs without the Smallbank tables (the TPC-C runs,
// whose oracle skips the conservation check anyway) total zero.
func balanceTotal(db *pacman.DB) int64 {
	var total int64
	for _, name := range []string{"SAVINGS", "CHECKING"} {
		t := db.Table(name)
		if t == nil {
			continue
		}
		t.ScanIndex(0, ^uint64(0), func(r *pacman.Row) bool {
			if d := r.LatestData(); d != nil {
				total += int64(d[1].Float())
			}
			return true
		})
	}
	return total
}

// readLedger reads every ledger row's current value by key.
func readLedger(db *pacman.DB) map[uint64]int64 {
	out := map[uint64]int64{}
	db.Table(ledgerTable).ScanIndex(0, ^uint64(0), func(r *pacman.Row) bool {
		if d := r.LatestData(); d != nil {
			out[r.Key] = d[1].Int()
		}
		return true
	})
	return out
}

// ClusterOracle is the verification state shared by every torture shape:
// the in-process cycle and the single-daemon network cycle run it at width
// 1 (where verify covers everything), and the sharded cluster cycle runs
// it across N shards, where balance conservation spans every shard and the
// per-gtid 2PC outcomes must agree.
type ClusterOracle struct {
	*oracle
	shards int
}

func newClusterOracle(workload string, t0 int64, pairs, shards int) *ClusterOracle {
	if shards < 1 {
		shards = 1
	}
	return &ClusterOracle{oracle: newOracle(workload, t0, pairs), shards: shards}
}

// absorb folds every client journal into the oracle and the run's stats.
// It returns the violations a journal recorded at settle time, if any —
// those are reported before the journal can contaminate the oracle state.
func (o *ClusterOracle) absorb(js []*journal, st *Stats) []string {
	for _, j := range js {
		if len(j.violations) > 0 {
			return j.violations
		}
		o.merge(j)
		st.Acked += j.acked
		st.AckedLogged += j.ackedLogged
		st.Maybe += j.maybe
		st.Rejected += j.rejected
		st.Aborted += j.aborted
	}
	return nil
}

// verifyCluster checks the recovered cluster as a whole. Per-shard epoch
// clocks are unrelated, so the single-instance structural checks do not
// apply; what must hold globally is balance conservation SUMMED over every
// shard (every cross-shard SendPayment has exact delta zero, so a torn one
// shifts the sum out of the oracle's interval), ledger atomicity (the
// ledger is unpartitioned, so every stamp routed to shard 0), and per-gtid
// 2PC outcome agreement across the shards.
func (o *ClusterOracle) verifyCluster(dbs []*pacman.DB) []string {
	var total int64
	for _, db := range dbs {
		total += balanceTotal(db)
	}
	v := o.verifyBalances(total)
	v = append(v, o.verifyLedger(readLedger(dbs[0]))...)
	v = append(v, verify2PCAgreement(dbs)...)
	return v
}

// verify2PCAgreement scans the 2PC status table on every shard: a gtid
// marked committed on one shard and aborted on another is exactly the
// partial cross-shard transaction 2PC exists to rule out, and a gtid still
// bare-prepared after the router has settled means presumed abort failed to
// drive an in-doubt transaction to a decision.
func verify2PCAgreement(dbs []*pacman.DB) []string {
	var v []string
	committed := map[uint64][]int{}
	aborted := map[uint64][]int{}
	prepared := map[uint64][]int{}
	for i, db := range dbs {
		db.Table(shard.StatusTable).ScanIndex(0, ^uint64(0), func(r *pacman.Row) bool {
			d := r.LatestData()
			if d == nil {
				return true
			}
			switch d[1].Int() {
			case shard.StatusCommitted:
				committed[r.Key] = append(committed[r.Key], i)
			case shard.StatusAborted:
				aborted[r.Key] = append(aborted[r.Key], i)
			case shard.StatusPrepared:
				prepared[r.Key] = append(prepared[r.Key], i)
			}
			return true
		})
	}
	for gtid, cs := range committed {
		if as := aborted[gtid]; len(as) > 0 {
			v = append(v, fmt.Sprintf("2PC disagreement: gtid %d committed on shards %v but aborted on shards %v — partial cross-shard transaction visible",
				gtid, cs, as))
		}
	}
	for gtid, ps := range prepared {
		v = append(v, fmt.Sprintf("2PC in-doubt: gtid %d still bare-prepared on shards %v after settlement", gtid, ps))
	}
	return v
}
