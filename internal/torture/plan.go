package torture

import (
	"math/rand"
	"time"

	"pacman/internal/simdisk"
)

// Fault-plan derivation: every plan is a pure function of the cycle's RNG,
// so a run's entire fault schedule reproduces from the torture seed. The
// plans deliberately skew small — thresholds low enough that most cycles
// crash mid-flush, mid-checkpoint, or mid-recovery rather than timing out
// on the transaction budget.

// servePlan derives the fault plan armed while the instance serves traffic.
// Roughly one cycle in five runs clean (crashing only on the budget
// boundary, which still loses the unsynced tail); the rest trip on a
// write/sync/byte watermark of one device, with independent torn-tail
// behavior on every device so the group crash lands at skewed watermarks.
func servePlan(rng *rand.Rand, devices []*simdisk.Device) *simdisk.FaultPlan {
	if rng.Intn(5) == 0 {
		return nil // clean-budget cycle
	}
	plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{}}
	for _, d := range devices {
		df := &simdisk.DeviceFaults{}
		if rng.Intn(2) == 0 {
			df.TornTailBytes = int64(1 + rng.Intn(2048))
			df.CorruptTornTail = rng.Intn(2) == 0
		}
		plan.Devs[d.Name()] = df
	}
	trigger := plan.Devs[devices[rng.Intn(len(devices))].Name()]
	switch rng.Intn(3) {
	case 0:
		trigger.CrashAfterWrites = int64(1 + rng.Intn(60))
	case 1:
		trigger.CrashAfterSyncs = int64(1 + rng.Intn(30))
	default:
		trigger.CrashAfterBytes = int64(64 + rng.Intn(16<<10))
	}
	return plan
}

// grayPlan derives one gray cycle's slow-fault plan. Unlike servePlan
// nothing dies: one device gets slow, briefly stuck, or hung outright, and
// the health watchdog must notice. Three flavors, sized against the gray
// run's tight sync budget (grayHealth): a sticky-slow device whose every
// sync lands well above budget, a one-shot stall long enough to breach for
// several consecutive sweeps, and a sync hung until the plan is disarmed
// (the pure in-flight-age signal — it never completes to be measured).
func grayPlan(rng *rand.Rand, devices []*simdisk.Device) (*simdisk.FaultPlan, string) {
	plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{}}
	df := &simdisk.DeviceFaults{}
	plan.Devs[devices[rng.Intn(len(devices))].Name()] = df
	switch rng.Intn(3) {
	case 0:
		df.SyncDelay = time.Duration(30+rng.Intn(20)) * time.Millisecond
		df.WriteDelay = time.Duration(rng.Intn(3)) * time.Millisecond
		return plan, "slow-sync"
	case 1:
		df.SyncStallAfter = int64(1 + rng.Intn(3))
		df.SyncStall = time.Duration(150+rng.Intn(150)) * time.Millisecond
		return plan, "sync-stall"
	default:
		df.HangSyncAfter = int64(1 + rng.Intn(3))
		return plan, "hung-sync"
	}
}

// recoveryPlan derives the fault plan armed while Restart runs, proving
// recovery is re-entrant. Three flavors: a read-triggered power failure
// (dies mid checkpoint restore or mid log reload), a write-triggered one
// (dies mid tail repair or mid manifest rewrite), and a transient read
// error (recovery fails cleanly without a crash; the retry must succeed).
// force pins the read-triggered flavor, which trips on every recovery.
func recoveryPlan(rng *rand.Rand, devices []*simdisk.Device, force bool) *simdisk.FaultPlan {
	plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{}}
	for _, d := range devices {
		df := &simdisk.DeviceFaults{}
		if rng.Intn(2) == 0 {
			df.TornTailBytes = int64(1 + rng.Intn(512))
			df.CorruptTornTail = rng.Intn(2) == 0
		}
		plan.Devs[d.Name()] = df
	}
	trigger := plan.Devs[devices[rng.Intn(len(devices))].Name()]
	mode := rng.Intn(3)
	if force {
		// Only the catalog-manifest read on device 0 is guaranteed to
		// happen (a crash early enough leaves no pepoch marker, checkpoint,
		// or batch file to read), so the forced flavor trips on the very
		// first read — anything larger can outlast a bare first-cycle
		// recovery and never fire.
		plan.Devs[devices[0].Name()].CrashAfterReads = 1
		return plan
	}
	switch mode {
	case 0:
		trigger.CrashAfterReads = int64(1 + rng.Intn(6))
	case 1:
		trigger.CrashAfterWrites = int64(1 + rng.Intn(4))
	default:
		trigger.ReadErrAfterReads = int64(1 + rng.Intn(6))
	}
	return plan
}
