// Package torture is the crash-injection torture subsystem: it drives real
// workloads through the public pacman lifecycle (Launch → serve → crash →
// Restart → serve → crash → ...) under seeded fault plans that power-fail
// the storage devices mid-flush, mid-checkpoint, mid-manifest, and mid-
// Restart itself, and verifies after every recovery that the durability
// and atomicity promises the system made actually held (see oracle.go).
//
// Everything derives from one RNG seed: the fault plans, the transaction
// mix, and the crash cadence. A failing run reports its seed and the armed
// fault plans, and rerunning with that seed re-arms the identical plans —
// `pacman-bench -exp torture -seed <s>` is the reproduction command. (Plan
// derivation is fully deterministic; the exact trip instant still depends
// on goroutine scheduling, which is why the oracle checks properties that
// must hold under every interleaving.)
package torture

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
	"pacman/client"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/wal"
	"pacman/internal/workload"
)

// Supported workloads.
const (
	WorkloadSmallbank = "smallbank"
	WorkloadTPCC      = "tpcc"
)

// ledgerTable is the oracle's read-back table, appended to every workload's
// blueprint. TortureStamp writes one value to both rows of a pair in a
// single transaction; the oracle reads the pair back after recovery.
const ledgerTable = "TORTURE_LEDGER"

// Config tunes one torture run. The zero value of every field has a
// working default; Seed 0 means seed 1.
type Config struct {
	// Seed drives every random choice of the run.
	Seed int64
	// Cycles is the number of crash→Restart→verify→serve cycles (default 4).
	Cycles int
	// Logging selects the durability scheme under test (default command
	// logging; the recovery scheme is auto-derived by Restart).
	Logging pacman.LogKind
	// Workload is WorkloadSmallbank (default) or WorkloadTPCC. Smallbank
	// adds the balance-conservation oracle; both carry the ledger oracle.
	Workload string
	// Clients/Workers size the frontend (defaults 4/4).
	Clients, Workers int
	// TxnsPerCycle bounds a cycle's submissions when no fault trips first
	// (default 400).
	TxnsPerCycle int
	// Threads is the recovery parallelism (default 2).
	Threads int
	// CheckpointPct is the chance (percent) that a cycle takes a checkpoint
	// in the middle of traffic — in the fault window, so crashes land mid-
	// checkpoint too (default 50).
	CheckpointPct int
	// RecoveryCrashPct is the chance (percent) that a Restart runs under an
	// armed fault plan and must be re-entered (default 40).
	RecoveryCrashPct int
	// ForceRecoveryCrash arms a read-triggered power failure on the first
	// recovery unconditionally, guaranteeing the run exercises a crash
	// *during* Restart (CI uses this).
	ForceRecoveryCrash bool
	// SBCustomers scales Smallbank (default 64, deliberately hot).
	SBCustomers int
	// Log, when set, receives per-cycle progress lines.
	Log io.Writer
	// Hook, when set, observes cycle stages ("crashed" before the recovery
	// attempts with res nil, "recovered" after a successful Restart with
	// res set). Debugging aid; the driver never depends on it.
	Hook func(stage string, cycle int, devices []*simdisk.Device, res *pacman.RecoveryResult)

	// serveHealth, when set, is the health-watchdog config every restarted
	// incarnation serves under. The gray run threads its tight budgets
	// through recovery so a fault armed in a later cycle is still detected
	// within the detection budget.
	serveHealth *pacman.HealthConfig
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cycles <= 0 {
		c.Cycles = 4
	}
	if c.Logging == pacman.NoLogging {
		c.Logging = pacman.CommandLogging
	}
	if c.Workload == "" {
		c.Workload = WorkloadSmallbank
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.TxnsPerCycle <= 0 {
		c.TxnsPerCycle = 400
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if c.CheckpointPct == 0 {
		c.CheckpointPct = 50
	}
	if c.RecoveryCrashPct == 0 {
		c.RecoveryCrashPct = 40
	}
	if c.SBCustomers <= 0 {
		c.SBCustomers = 64
	}
	return c
}

// Stats reports what one torture run did — the denominator that makes a
// green run meaningful.
type Stats struct {
	Cycles int
	// Acked counts transactions acknowledged durable; AckedLogged excludes
	// read-only ones. Maybe counts executions the crash beat to the ack.
	Acked, AckedLogged, Maybe int64
	// Rejected counts submissions refused by a closing frontend; Aborted
	// counts explicit rollbacks.
	Rejected, Aborted int64
	// ServeTrips counts cycles whose fault plan power-failed the devices
	// mid-traffic (the rest crashed on the budget boundary).
	ServeTrips int
	// RecoveryCrashes counts Restart attempts killed by an armed fault —
	// each one re-entered recovery from the crashed state.
	RecoveryCrashes int
	// TransientReadFaults counts recoveries that failed on an injected read
	// error and succeeded on retry.
	TransientReadFaults int
	// Checkpoints counts checkpoints that completed during serve phases.
	Checkpoints int
	// SnapScans counts snapshot-scan oracle passes completed during serve
	// phases (each pass checks ledger-pair atomicity at a released cut and
	// re-scan immutability of the pinned view).
	SnapScans int
	// Stamps counts ledger pairs written (the per-txn read-back oracle).
	Stamps int
	// Replayed is the final recovery's entry count.
	Replayed int
	// ShardKills/RouterKills count the cluster cycle's victims: shard
	// instances and router incarnations killed mid-traffic (zero outside
	// RunCluster).
	ShardKills, RouterKills int
	// Gray-cycle counters (zero outside RunGray): DeadlineExpired counts
	// futures resolved ErrDeadlineExceeded (execution unknown), Shed counts
	// never-executed rejections (brownout at admission), and Brownouts
	// counts watchdog brownout entries observed across the run.
	DeadlineExpired, Shed, Brownouts int64
}

func (s Stats) String() string {
	out := fmt.Sprintf("cycles=%d acked=%d (logged %d) maybe=%d rejected=%d aborted=%d serveTrips=%d recoveryCrashes=%d transientReads=%d ckpts=%d snapScans=%d stamps=%d replayed=%d",
		s.Cycles, s.Acked, s.AckedLogged, s.Maybe, s.Rejected, s.Aborted,
		s.ServeTrips, s.RecoveryCrashes, s.TransientReadFaults, s.Checkpoints, s.SnapScans, s.Stamps, s.Replayed)
	if s.ShardKills > 0 || s.RouterKills > 0 {
		out += fmt.Sprintf(" shardKills=%d routerKills=%d", s.ShardKills, s.RouterKills)
	}
	if s.DeadlineExpired > 0 || s.Shed > 0 || s.Brownouts > 0 {
		out += fmt.Sprintf(" deadlineExpired=%d shed=%d brownouts=%d", s.DeadlineExpired, s.Shed, s.Brownouts)
	}
	return out
}

// Violation is the oracle-failure error: it carries everything needed to
// reproduce the run — the seed AND the run shape, because the fault-plan
// stream consumes RNG draws per cycle and per injected recovery attempt,
// so a different cycle count, budget, or force flag derives different
// plans from the same seed.
type Violation struct {
	Seed   int64
	Cycle  int
	Cfg    Config
	Plans  []string
	Faults []string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("torture: ORACLE VIOLATION at seed %d, cycle %d (%s/%v):\n  - %s\nfault plans so far:\n  %s\nreproduce: pacman-bench -exp torture -seed %d -iters 1 -cycles %d -txns %d -workers %d -force=%t",
		v.Seed, v.Cycle, v.Cfg.Workload, v.Cfg.Logging,
		strings.Join(v.Faults, "\n  - "), strings.Join(v.Plans, "\n  "),
		v.Seed, v.Cfg.Cycles, v.Cfg.TxnsPerCycle, v.Cfg.Workers, v.Cfg.ForceRecoveryCrash)
}

// Run executes one torture run and returns its stats; the error is a
// *Violation when the oracle caught the system breaking a promise, or an
// infrastructure error otherwise.
func Run(cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &Stats{}

	h, err := newHarness(cfg)
	if err != nil {
		return st, err
	}
	db, err := pacman.Launch(h.bp, pacman.Options{
		Logging:       cfg.Logging,
		Devices:       2,
		EpochInterval: time.Millisecond,
		// The hot key space retries hard; a retry storm is load, not a bug.
		MaxRetries: 1 << 20,
	})
	if err != nil {
		return st, err
	}
	devices := db.Devices()

	var planLog []string
	logPlan := func(kind string, cycle int, p *simdisk.FaultPlan) {
		planLog = append(planLog, fmt.Sprintf("cycle %d %s: %s", cycle, kind, p.String()))
	}
	violation := func(cycle int, faults []string) error {
		return &Violation{Seed: cfg.Seed, Cycle: cycle, Cfg: cfg, Plans: planLog, Faults: faults}
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		st.Cycles = cycle + 1

		// Serve phase: arm this cycle's plan, drive traffic until the plan
		// trips or the budget runs out, then power-fail whatever is left.
		plan := servePlan(rng, devices)
		tripped := make(chan struct{})
		if plan != nil {
			plan.OnTrip = func(dev, op string) { close(tripped) }
			logPlan("serve", cycle, plan)
			plan.Arm(devices...)
		} else {
			logPlan("serve", cycle, nil)
		}
		takeCkpt := rng.Intn(100) < cfg.CheckpointPct
		js := h.serve(cfg, db, cycle, tripped, takeCkpt, st) // crashes db
		if plan != nil {
			if plan.Tripped() {
				st.ServeTrips++
			}
			plan.Disarm()
		}
		if faults := h.oracle.absorb(js, st); len(faults) > 0 {
			return st, violation(cycle, faults)
		}
		if len(h.scanFaults) > 0 {
			return st, violation(cycle, h.scanFaults)
		}

		if cfg.Hook != nil {
			cfg.Hook("crashed", cycle, devices, nil)
		}

		db2, res, err := h.recoverCycle(cfg, rng, devices, st, cycle, logPlan, violation)
		if err != nil {
			return st, err
		}
		db = db2
		st.Replayed = res.Entries
		if cfg.Hook != nil {
			cfg.Hook("recovered", cycle, devices, res)
		}

		// Verify the oracle against the recovered state.
		if faults := h.oracle.verify(db, res); len(faults) > 0 {
			return st, violation(cycle, faults)
		}

		// The restarted instance must serve immediately, with commit
		// timestamps above the recovered high-water mark; the synchronous
		// stamp also feeds the next cycle's read-back oracle.
		if fault := h.proveServing(db, res, st); fault != "" {
			return st, violation(cycle, []string{fault})
		}
		h.logf(cfg, "cycle %d: ok (pepoch %d, %d entries, ckpt %d)", cycle, res.Pepoch, res.Entries, res.CheckpointID)
	}
	db.Close()
	return st, nil
}

// recoverCycle is one cycle's recovery phase, shared by the in-process and
// network runs: Restart, possibly under an armed fault plan; an injected
// crash re-enters Restart from the crashed state. The last attempt always
// runs clean, so only a genuine bug can fail it. A non-nil error is either
// a *Violation (from the violation closure) or an infrastructure error.
func (h *harness) recoverCycle(cfg Config, rng *rand.Rand, devices []*pacman.Device, st *Stats, cycle int,
	logPlan func(kind string, cycle int, p *simdisk.FaultPlan),
	violation func(cycle int, faults []string) error) (*pacman.DB, *pacman.RecoveryResult, error) {
	const maxAttempts = 4
	for attempt := 0; ; attempt++ {
		var rplan *simdisk.FaultPlan
		inject := attempt < maxAttempts-1 &&
			(rng.Intn(100) < cfg.RecoveryCrashPct || (cfg.ForceRecoveryCrash && cycle == 0 && attempt == 0))
		if inject {
			rplan = recoveryPlan(rng, devices, cfg.ForceRecoveryCrash && cycle == 0 && attempt == 0)
			logPlan(fmt.Sprintf("recovery attempt %d", attempt), cycle, rplan)
			rplan.Arm(devices...)
		} else {
			// Clean attempt: prove tail repair converges before Restart
			// runs it for real (double repair is a no-op on round two).
			pe, err := wal.ReadPepoch(devices[0])
			if err != nil && !errors.Is(err, simdisk.ErrNotExist) {
				return nil, nil, violation(cycle, []string{fmt.Sprintf("pepoch unreadable after crash: %v", err)})
			}
			if _, err := wal.RepairTail(devices, pe); err != nil {
				return nil, nil, violation(cycle, []string{fmt.Sprintf("tail repair failed: %v", err)})
			}
			if st2, err := wal.RepairTail(devices, pe); err != nil || !st2.Zero() {
				return nil, nil, violation(cycle, []string{fmt.Sprintf("tail repair did not converge: second pass %+v, err %v", st2, err)})
			}
		}

		serve := pacman.Options{MaxRetries: 1 << 20}
		if cfg.serveHealth != nil {
			serve.Health = *cfg.serveHealth
		}
		db2, r, err := pacman.Restart(devices, h.bp, pacman.RecoverConfig{
			Threads: cfg.Threads,
			Serve:   serve,
		})
		if rplan != nil {
			// Close the race between Restart finishing and the armed
			// plan tripping on the first post-restart flush: a tripped
			// plan means the instance is dead no matter what Restart
			// returned.
			rplan.Disarm()
			if rplan.Tripped() {
				if err == nil {
					db2.Crash()
				}
				for _, d := range devices {
					d.Crash()
				}
				st.RecoveryCrashes++
				h.logf(cfg, "cycle %d: recovery attempt %d crashed (re-entering)", cycle, attempt)
				continue
			}
			if err != nil && errors.Is(err, simdisk.ErrInjectedRead) {
				st.TransientReadFaults++
				h.logf(cfg, "cycle %d: recovery attempt %d hit transient read fault (retrying)", cycle, attempt)
				continue
			}
		}
		if err != nil {
			return nil, nil, violation(cycle, []string{fmt.Sprintf("Restart failed with no fault armed: %v", err)})
		}
		return db2, r, nil
	}
}

// harness holds the per-run workload machinery.
type harness struct {
	bp     pacman.Blueprint
	oracle *ClusterOracle
	// gen generates one transaction; nil stamp-free fallback uses wkGen.
	wk workload.Workload // tpcc generator (nil for smallbank)

	ledgerPairs int
	nextStamp   atomic.Int64
	stampsUsed  atomic.Int64
	// scanFaults accumulates snapshot-scan oracle failures from the serve
	// phase's concurrent scanner (appended post-serve, read by Run).
	scanFaults []string
}

func (h *harness) logf(cfg Config, format string, args ...any) {
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "torture[seed %d]: "+format+"\n", append([]any{cfg.Seed}, args...)...)
	}
}

// stampProc is the ledger write procedure: both rows of a pair get the same
// value in one transaction.
func stampProc() *pacman.Procedure {
	a, b, v := proc.Pm("a"), proc.Pm("b"), proc.Pm("v")
	return &proc.Procedure{
		Name:   "TortureStamp",
		Params: []proc.ParamDef{proc.P("a"), proc.P("b"), proc.P("v")},
		Body: []proc.Stmt{
			proc.Read("ra", ledgerTable, a, "v"),
			proc.Write(ledgerTable, a, proc.Set("v", v)),
			proc.Read("rb", ledgerTable, b, "v"),
			proc.Write(ledgerTable, b, proc.Set("v", v)),
		},
	}
}

// newHarness builds the blueprint (workload catalog + ledger + stamp proc)
// and the oracle for the configured workload.
func newHarness(cfg Config) (*harness, error) {
	h := &harness{}
	// Size the ledger so stamps never run out: ~1/8 of traffic stamps, plus
	// one serving proof per cycle, with generous slack.
	h.ledgerPairs = cfg.Cycles*(cfg.TxnsPerCycle/4+8) + 64

	var spec workload.BlueprintSpec
	switch cfg.Workload {
	case WorkloadSmallbank:
		sb := workload.NewSmallbank(workload.SmallbankConfig{Customers: cfg.SBCustomers, HotspotPct: 25})
		spec = workload.Spec(sb)
		// 2000 savings + 1000 checking per customer (DefaultSmallbank seed).
		h.oracle = newClusterOracle(WorkloadSmallbank, int64(cfg.SBCustomers)*3000, h.ledgerPairs, 1)
	case WorkloadTPCC:
		tc := workload.DefaultTPCCConfig()
		tc.Warehouses = 1
		tc.DisableInserts = true
		w := workload.NewTPCC(tc)
		spec = workload.Spec(w)
		h.wk = w
		h.oracle = newClusterOracle(WorkloadTPCC, 0, h.ledgerPairs, 1)
	default:
		return nil, fmt.Errorf("torture: unknown workload %q", cfg.Workload)
	}

	ledger := tuple.MustSchema(ledgerTable,
		tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt))
	pairs := h.ledgerPairs
	wkSeed := spec.Seed
	h.bp = pacman.Blueprint{
		Tables:     append(append([]*pacman.Schema(nil), spec.Tables...), ledger),
		Procedures: append(append([]*pacman.Procedure(nil), spec.Procs...), stampProc()),
		Seed: func(seed pacman.Seeder) {
			if wkSeed != nil {
				wkSeed(seed)
			}
			for k := uint64(1); k <= uint64(2*pairs); k++ {
				seed(ledgerTable, k, pacman.Tuple{tuple.I(int64(k)), tuple.I(0)})
			}
		},
	}
	return h, nil
}

// takeStamp allocates a fresh ledger pair, or -1 when exhausted.
func (h *harness) takeStamp() int {
	i := int(h.nextStamp.Add(1) - 1)
	if i >= h.ledgerPairs {
		return -1
	}
	h.stampsUsed.Add(1)
	return i
}

// waiter abstracts the two durable-commit future shapes the torture
// journals settle on: the in-process *pacman.Future and the wire client's
// *client.Future. Both resolve at epoch release (or with a terminal error),
// so one settle classifier serves the in-process and the network cycles.
type waiter interface {
	Wait() (pacman.TS, error)
	Epoch() uint32
}

// submitFn abstracts how a generated transaction reaches the system: a
// Frontend closure for the in-process cycle, a wire-client closure for the
// network cycle.
type submitFn func(name string, args pacman.Args) waiter

// pending is one in-flight submission with its oracle metadata.
type pending struct {
	fut      waiter
	lo, hi   int64 // committed delta bounds on SAVINGS+CHECKING
	logged   bool
	mayAbort bool
	stamp    int // ledger pair index, -1 if none
	stampVal int64
}

// settle classifies one resolved future into the journal.
func settle(j *journal, p pending) {
	_, err := p.fut.Wait()
	switch {
	case err == nil:
		j.acked++
		j.ackLo += p.lo
		j.ackHi += p.hi
		if p.logged {
			j.ackedLogged++
			// Only write-bearing acks constrain the recovered pepoch: a
			// read-only or zero-write commit resolves durable without
			// needing log coverage of its epoch.
			if e := p.fut.Epoch(); e > j.maxAckedEpoch {
				j.maxAckedEpoch = e
			}
		}
		if p.stamp >= 0 {
			j.stampsAcked = append(j.stampsAcked, stampRec{pair: p.stamp, val: p.stampVal})
		}
	case errors.Is(err, pacman.ErrCrashed) || errors.Is(err, pacman.ErrClosed),
		errors.Is(err, client.ErrConnLost):
		// ErrConnLost is the network twin of the crash sentinels: the request
		// was sent, the connection died before the result — executed and
		// maybe durable, so the oracle bounds widen exactly as for a crash.
		j.maybe++
		if p.lo < 0 {
			j.maybeLo += p.lo // effects maybe applied: the low bound widens
		}
		if p.hi > 0 {
			j.maybeHi += p.hi
		}
		if p.stamp >= 0 {
			j.stampsMaybe = append(j.stampsMaybe, stampRec{pair: p.stamp, val: p.stampVal})
		}
	case errors.Is(err, pacman.ErrFrontendClosed), errors.Is(err, client.ErrClientClosed):
		j.rejected++ // never executed: no effects, no slack
	case p.mayAbort && errors.Is(err, proc.ErrAborted):
		j.aborted++ // rolled back: no effects
	default:
		j.violations = append(j.violations,
			fmt.Sprintf("transaction failed with unexpected error: %v", err))
	}
}

// serve drives one cycle's traffic through a Frontend until the budget runs
// out or the armed plan trips, optionally taking a mid-traffic checkpoint.
// It returns after db.Crash()-able state is reached with every client
// journal settled... the caller crashes the instance, which resolves every
// outstanding future, and the clients drain on that.
func (h *harness) serve(cfg Config, db *pacman.DB, cycle int, tripped <-chan struct{}, takeCkpt bool, st *Stats) []*journal {
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: cfg.Workers})
	var budget atomic.Int64
	budget.Store(int64(cfg.TxnsPerCycle))
	var stop atomic.Bool
	done := make(chan struct{})

	const maxInFlight = 32
	js := make([]*journal, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		j := &journal{}
		js[c] = j
		wg.Add(1)
		go func(c int, j *journal) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(cfg.Seed ^ int64(cycle)*7919 ^ int64(c)*104729))
			submit := func(name string, args pacman.Args) waiter { return fe.Submit(name, args) }
			var window []pending
			for !stop.Load() && budget.Add(-1) >= 0 {
				p := h.generate(crng, submit)
				window = append(window, p)
				if len(window) >= maxInFlight {
					settle(j, window[0])
					window = window[1:]
				}
			}
			for _, p := range window {
				settle(j, p)
			}
		}(c, j)
	}
	go func() { wg.Wait(); close(done) }()

	// Concurrent snapshot-scan oracle: while traffic (and possibly a
	// checkpoint) runs, a scanner pins released cuts and checks the two
	// promises only a consistent immutable snapshot can keep — ledger pairs
	// are never torn at the cut, and re-reading the same view reproduces
	// the identical data. It runs right through the power failure: views
	// over the frozen post-crash state must hold the same promises.
	scanStop := make(chan struct{})
	scanDone := make(chan struct{})
	var scanFaults []string
	go func() {
		defer close(scanDone)
		for {
			select {
			case <-scanStop:
				return
			default:
			}
			if f := h.snapScanOnce(db); f != "" {
				scanFaults = append(scanFaults, f)
				return
			}
			st.SnapScans++
			// One pass per epoch or so; back-to-back scanning would only
			// re-pin the same cut while starving the traffic it audits.
			time.Sleep(time.Millisecond)
		}
	}()

	// Mid-traffic checkpoint, inside the fault window.
	if takeCkpt {
		time.Sleep(time.Duration(1+cycle%3) * time.Millisecond)
		if err := db.Checkpoint(); err == nil {
			st.Checkpoints++
		}
	}

	select {
	case <-tripped:
		// Power failed mid-traffic: crash now. Outstanding futures resolve
		// ErrCrashed when the caller crashes the instance; unblock clients.
		stop.Store(true)
	case <-done:
	}
	stop.Store(true)
	db.Crash()
	<-done
	fe.Close()
	wg.Wait()
	close(scanStop)
	<-scanDone
	st.Stamps = int(h.stampsUsed.Load())
	h.scanFaults = append(h.scanFaults, scanFaults...)
	return js
}

// snapScanOnce pins one snapshot view of the torture ledger and verifies
// the cut. TortureStamp writes the same value to both rows of a pair in one
// transaction, so a consistent cut can never observe a half-written pair —
// torn here means snapshot reads leak uncommitted or unreleased state. The
// second pass re-reads the same view: a released epoch is immutable, so any
// difference means the cut moved under a pinned view. Returns "" when the
// cut holds, a fault description otherwise.
func (h *harness) snapScanOnce(db *pacman.DB) string {
	v, err := db.SnapshotView(0)
	if err != nil {
		return fmt.Sprintf("snapshot view: %v", err)
	}
	defer v.Close()
	ledger := db.Table(ledgerTable)
	vals := make(map[uint64]int64, 2*h.ledgerPairs)
	v.Scan(ledger, 0, ^uint64(0), func(k uint64, row pacman.Tuple) bool {
		vals[k] = row[1].Int()
		return true
	})
	for i := 0; i < h.ledgerPairs; i++ {
		a, b := vals[pairKeyA(i)], vals[pairKeyB(i)]
		if a != b {
			return fmt.Sprintf("snapshot scan at epoch %d observed torn ledger pair %d: a=%d b=%d", v.Epoch(), i, a, b)
		}
	}
	diff := ""
	v.Scan(ledger, 0, ^uint64(0), func(k uint64, row pacman.Tuple) bool {
		if row[1].Int() != vals[k] {
			diff = fmt.Sprintf("pinned view at epoch %d not immutable: ledger key %d read %d then %d", v.Epoch(), k, vals[k], row[1].Int())
			return false
		}
		delete(vals, k)
		return true
	})
	if diff != "" {
		return diff
	}
	if len(vals) != 0 {
		return fmt.Sprintf("pinned view at epoch %d not immutable: %d ledger rows vanished on re-scan", v.Epoch(), len(vals))
	}
	return ""
}

// generate submits one transaction of the mix and returns it with oracle
// metadata. Roughly 1/8 of submissions are ledger stamps; the rest are the
// workload's own mix (with integer-valued amounts for smallbank, so the
// conservation oracle is exact).
func (h *harness) generate(rng *rand.Rand, submit submitFn) pending {
	if rng.Intn(8) == 0 {
		if pair := h.takeStamp(); pair >= 0 {
			val := 1 + rng.Int63n(1<<40)
			fut := submit("TortureStamp", pacman.Args{
				proc.A(tuple.I(int64(pairKeyA(pair)))),
				proc.A(tuple.I(int64(pairKeyB(pair)))),
				proc.A(tuple.I(val)),
			})
			return pending{fut: fut, logged: true, stamp: pair, stampVal: val}
		}
	}
	if h.wk != nil { // TPC-C: native mix, ledger-only oracle
		tx := h.wk.Generate(rng)
		name := tx.Proc.Name()
		return pending{
			fut: submit(name, tx.Args),
			// Only transactions guaranteed to install at least one write
			// count toward the replayed-entry bound (Delivery, for one, can
			// legally commit with nothing to deliver).
			logged:   name == "NewOrder" || name == "Payment",
			mayAbort: tx.MayAbort,
			stamp:    -1,
		}
	}
	return h.smallbankTxn(rng, submit)
}

// smallbankTxn generates one Smallbank transaction with integer amounts and
// exact conservation deltas.
func (h *harness) smallbankTxn(rng *rand.Rand, submit submitFn) pending {
	cust := func() int64 {
		if rng.Intn(4) == 0 {
			return 1 + rng.Int63n(4) // hot keys
		}
		return 1 + rng.Int63n(int64(h.sbCustomers()))
	}
	c1, c2 := cust(), cust()
	// Self-transfers are not conserving under snapshot reads (the second
	// read of the same row sees the pre-write value), so Amalgamate and
	// SendPayment use distinct customers, as the Smallbank spec intends.
	for c2 == c1 {
		c2 = cust()
	}
	amt := 1 + rng.Int63n(99) // integer-valued: conservation is exact
	fa := proc.A(tuple.F(float64(amt)))
	p := pending{stamp: -1, logged: true}
	switch rng.Intn(10) {
	case 0, 1:
		p.fut = submit("Amalgamate", pacman.Args{proc.A(tuple.I(c1)), proc.A(tuple.I(c2))})
	case 2, 3:
		p.fut = submit("DepositChecking", pacman.Args{proc.A(tuple.I(c1)), fa})
		p.lo, p.hi = amt, amt
	case 4, 5:
		p.fut = submit("SendPayment", pacman.Args{proc.A(tuple.I(c1)), proc.A(tuple.I(c2)), fa})
		// An underfunded SendPayment commits with ZERO writes and therefore
		// produces no log record: it cannot count toward the replayed-entry
		// lower bound (conservation still holds either way).
		p.logged = false
	case 6:
		v := amt
		if rng.Intn(3) == 0 {
			v = -v
		}
		p.fut = submit("TransactSavings", pacman.Args{proc.A(tuple.I(c1)), proc.A(tuple.F(float64(v)))})
		p.lo, p.hi = v, v
		p.mayAbort = true
	case 7, 8:
		p.fut = submit("WriteCheck", pacman.Args{proc.A(tuple.I(c1)), fa})
		p.lo, p.hi = -amt-1, -amt // overdraft penalty is state-dependent
	default:
		p.fut = submit("Balance", pacman.Args{proc.A(tuple.I(c1))})
		p.logged = false
	}
	return p
}

// sbCustomers returns the smallbank key space (the oracle's t0 encodes it).
func (h *harness) sbCustomers() int {
	return int(h.oracle.t0 / 3000)
}

// proveServing executes one synchronous durable stamp on the freshly
// restarted instance: it must succeed, commit above the recovered pepoch,
// and read back in the next cycle's verification.
func (h *harness) proveServing(db *pacman.DB, res *pacman.RecoveryResult, st *Stats) string {
	fe := db.MustFrontend(pacman.FrontendConfig{Workers: 1})
	defer fe.Close()
	return h.proveServingVia(fe.Exec, res, st)
}

// proveServingVia is proveServing's transport-agnostic core: exec is either
// a Frontend's Exec or a wire client's, so the network cycle proves the
// recovered incarnation serves over the socket.
//
// A prober whose connection predates the kill can see its first stamp
// resolve ErrConnLost — on TCP the doomed frame sits in a kernel buffer
// until the reset arrives, which is the client's documented "outcome
// unknown" contract, not an availability failure. Each lost stamp is
// recorded as a maybe for the oracle and the proof retried on a fresh
// ledger pair; only persistent refusal is a violation.
func (h *harness) proveServingVia(exec func(string, pacman.Args) (pacman.TS, error), res *pacman.RecoveryResult, st *Stats) string {
	var ts pacman.TS
	for attempt := 0; ; attempt++ {
		pair := h.takeStamp()
		if pair < 0 {
			return "torture harness bug: ledger exhausted"
		}
		val := int64(1_000_000_000) + int64(pair)
		var err error
		ts, err = exec("TortureStamp", pacman.Args{
			proc.A(tuple.I(int64(pairKeyA(pair)))),
			proc.A(tuple.I(int64(pairKeyB(pair)))),
			proc.A(tuple.I(val)),
		})
		if errors.Is(err, client.ErrConnLost) && attempt < 4 {
			h.oracle.stamps[pair] = stampState{val: val, known: h.oracle.stamps[pair].known, status: stampMaybe}
			st.Maybe++
			continue
		}
		if err != nil {
			return fmt.Sprintf("restarted instance refused a durable commit: %v", err)
		}
		h.oracle.stamps[pair] = stampState{val: val, known: h.oracle.stamps[pair].known, status: stampAcked}
		break
	}
	epoch := uint32(ts >> 32)
	if epoch <= res.Pepoch {
		return fmt.Sprintf("post-restart commit epoch %d not above recovered pepoch %d", epoch, res.Pepoch)
	}
	if epoch > h.oracle.maxAckedEpoch {
		h.oracle.maxAckedEpoch = epoch
	}
	h.oracle.ackedLogged++
	st.Acked++
	st.AckedLogged++
	st.Stamps = int(h.stampsUsed.Load())
	return ""
}
