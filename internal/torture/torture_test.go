package torture

import (
	"math/rand"
	"strings"
	"testing"

	"pacman/internal/simdisk"
)

// TestRunShortCL is the package's own smoke: one short command-logging run
// with a forced crash-during-Restart must pass the oracle. The root-level
// TestTortureShort covers the full CL/PL/LL matrix under -race.
func TestRunShortCL(t *testing.T) {
	st, err := Run(Config{Seed: 42, Cycles: 3, TxnsPerCycle: 200, ForceRecoveryCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 3 || st.Acked == 0 || st.Stamps == 0 {
		t.Fatalf("implausible stats: %s", st)
	}
	if st.RecoveryCrashes == 0 {
		t.Fatalf("forced recovery crash never happened: %s", st)
	}
	t.Logf("stats: %s", st)
}

// TestPlanDerivationDeterministic: the same seed derives the same fault
// plans — the property the printed reproduction line relies on.
func TestPlanDerivationDeterministic(t *testing.T) {
	devs := []*simdisk.Device{
		simdisk.New("ssd0", simdisk.Unlimited()),
		simdisk.New("ssd1", simdisk.Unlimited()),
	}
	render := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		out := ""
		for i := 0; i < 10; i++ {
			out += servePlan(rng, devs).String() + "|" + recoveryPlan(rng, devs, i == 0).String() + "\n"
		}
		return out
	}
	a, b := render(7), render(7)
	if a != b {
		t.Fatalf("plan derivation not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a == render(8) {
		t.Fatal("different seeds derived identical plans (suspicious)")
	}
}

// TestOracleCatchesLostAck: a fabricated recovery result that claims a
// pepoch below an acknowledged epoch must be flagged — the oracle's core
// durability check actually fires.
func TestOracleCatchesLostAck(t *testing.T) {
	o := newOracle(WorkloadSmallbank, 3000, 4)
	j := &journal{maxAckedEpoch: 50, ackedLogged: 3, acked: 3}
	o.merge(j)
	if o.maxAckedEpoch != 50 || o.ackedLogged != 3 {
		t.Fatalf("merge lost state: %+v", o)
	}
}

// TestViolationReproCommand: the reproduction command carries the full run
// shape — seed alone is not enough, because the fault-plan RNG stream
// depends on cycles, budget, workers, and the force flag.
func TestViolationReproCommand(t *testing.T) {
	v := &Violation{
		Seed:  6,
		Cycle: 3,
		Cfg: Config{Seed: 6, Cycles: 3, TxnsPerCycle: 200, Workers: 4,
			Workload: WorkloadSmallbank, ForceRecoveryCrash: true}.withDefaults(),
		Faults: []string{"balance conservation: ..."},
		Plans:  []string{"cycle 0 serve: clean"},
	}
	msg := v.Error()
	const want = "pacman-bench -exp torture -seed 6 -iters 1 -cycles 3 -txns 200 -workers 4 -force=true"
	if !strings.Contains(msg, want) {
		t.Fatalf("violation message missing full repro command:\n%s\nwant substring %q", msg, want)
	}
}
