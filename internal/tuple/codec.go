package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary encoding
//
// Value:  1-byte kind, then payload:
//   null   — nothing
//   int    — 8 bytes little-endian two's complement
//   float  — 8 bytes little-endian IEEE-754 bits
//   string — 4-byte little-endian length + raw bytes
// Tuple:  2-byte little-endian column count, then each value.
//
// The format is self-describing (no schema needed to decode), fixed-cost for
// numerics, and append-friendly so loggers can serialize straight into their
// flush buffers.

// ErrCorrupt is returned when decoding runs off the end of the buffer or
// meets an unknown kind tag.
var ErrCorrupt = errors.New("tuple: corrupt encoding")

const maxStringLen = 1 << 30 // sanity bound when decoding untrusted bytes

// AppendValue appends the encoding of v to buf and returns the extended buf.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt, KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, v.bits)
	case KindString:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.str)))
		buf = append(buf, v.str...)
	}
	return buf
}

// DecodeValue decodes one value from b, returning it and the bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) < 1 {
		return Value{}, 0, ErrCorrupt
	}
	kind := Kind(b[0])
	switch kind {
	case KindNull:
		return Value{}, 1, nil
	case KindInt, KindFloat:
		if len(b) < 9 {
			return Value{}, 0, ErrCorrupt
		}
		return Value{kind: kind, bits: binary.LittleEndian.Uint64(b[1:9])}, 9, nil
	case KindString:
		if len(b) < 5 {
			return Value{}, 0, ErrCorrupt
		}
		n := int(binary.LittleEndian.Uint32(b[1:5]))
		if n > maxStringLen || len(b) < 5+n {
			return Value{}, 0, ErrCorrupt
		}
		return Value{kind: KindString, str: string(b[5 : 5+n])}, 5 + n, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

// AppendTuple appends the encoding of t to buf and returns the extended buf.
func AppendTuple(buf []byte, t Tuple) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t)))
	for _, v := range t {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeTuple decodes one tuple from b, returning it and the bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	if len(b) < 2 {
		return nil, 0, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	t := make(Tuple, 0, n)
	for i := 0; i < n; i++ {
		v, sz, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		t = append(t, v)
		off += sz
	}
	return t, off, nil
}

// Float helpers used by workloads that store money amounts as float columns.

// FloatBits converts a float to its order-preserving payload bits.
func FloatBits(f float64) uint64 { return math.Float64bits(f) }
