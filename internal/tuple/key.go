package tuple

// Key packing
//
// Indexes key rows by uint64 candidate keys. Workloads with composite
// primary keys (TPC-C's (warehouse, district, order, line) and friends) pack
// the components into one uint64 with fixed per-field bit widths. KeyPacker
// centralizes the layout so encode and decode cannot drift apart.

// KeyPacker packs fixed-width unsigned fields into a uint64, most
// significant field first, preserving lexicographic order of the fields.
type KeyPacker struct {
	widths []uint
	total  uint
}

// NewKeyPacker builds a packer for the given bit widths. The widths must sum
// to at most 64 bits; it panics otherwise because layouts are static
// workload properties.
func NewKeyPacker(widths ...uint) *KeyPacker {
	var total uint
	for _, w := range widths {
		if w == 0 || w > 64 {
			panic("tuple: key field width out of range")
		}
		total += w
	}
	if total > 64 {
		panic("tuple: key layout exceeds 64 bits")
	}
	return &KeyPacker{widths: append([]uint(nil), widths...), total: total}
}

// Pack packs the fields into a key. Each field must fit its declared width;
// it panics otherwise (a workload bug, not a runtime condition).
func (p *KeyPacker) Pack(fields ...uint64) uint64 {
	if len(fields) != len(p.widths) {
		panic("tuple: wrong number of key fields")
	}
	var k uint64
	for i, f := range fields {
		w := p.widths[i]
		if w < 64 && f >= 1<<w {
			panic("tuple: key field overflows declared width")
		}
		k = k<<w | f
	}
	return k
}

// Unpack splits a key back into its fields.
func (p *KeyPacker) Unpack(k uint64) []uint64 {
	out := make([]uint64, len(p.widths))
	shift := p.total
	for i, w := range p.widths {
		shift -= w
		out[i] = (k >> shift) & mask(w)
	}
	return out
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}
