package tuple

import (
	"errors"
	"fmt"
)

// Tuple is a row: one Value per schema column.
type Tuple []Value

// Clone returns a deep-enough copy of the tuple (values are immutable, so a
// slice copy suffices).
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have identical length and values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// EncodedSize returns the number of bytes AppendTuple writes for t.
func (t Tuple) EncodedSize() int {
	n := 2
	for _, v := range t {
		n += v.EncodedSize()
	}
	return n
}

func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

// ColumnDef declares one column of a schema.
type ColumnDef struct {
	Name string
	Kind Kind
}

// Col is shorthand for constructing a ColumnDef.
func Col(name string, kind Kind) ColumnDef { return ColumnDef{Name: name, Kind: kind} }

// Schema describes a table's columns. Schemas are immutable after creation.
type Schema struct {
	table   string
	columns []ColumnDef
	byName  map[string]int
}

// NewSchema builds a schema for the named table. Column names must be unique.
func NewSchema(table string, cols ...ColumnDef) (*Schema, error) {
	s := &Schema{
		table:   table,
		columns: append([]ColumnDef(nil), cols...),
		byName:  make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("tuple: schema %q: column %d has empty name", table, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("tuple: schema %q: duplicate column %q", table, c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for static
// workload definitions.
func MustSchema(table string, cols ...ColumnDef) *Schema {
	s, err := NewSchema(table, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Table returns the table name the schema belongs to.
func (s *Schema) Table() string { return s.table }

// NumColumns returns the column count.
func (s *Schema) NumColumns() int { return len(s.columns) }

// Column returns the definition of column i.
func (s *Schema) Column(i int) ColumnDef { return s.columns[i] }

// ColIndex returns the index of the named column, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// ErrSchemaMismatch is returned by Validate for tuples that do not conform.
var ErrSchemaMismatch = errors.New("tuple: schema mismatch")

// Validate checks that t conforms to the schema: correct arity and, for
// non-NULL values, matching kinds.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.columns) {
		return fmt.Errorf("%w: table %q wants %d columns, tuple has %d",
			ErrSchemaMismatch, s.table, len(s.columns), len(t))
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if v.Kind() != s.columns[i].Kind {
			return fmt.Errorf("%w: table %q column %q wants %v, got %v",
				ErrSchemaMismatch, s.table, s.columns[i].Name, s.columns[i].Kind, v.Kind())
		}
	}
	return nil
}
