package tuple

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := I(42).Int(); got != 42 {
		t.Errorf("I(42).Int() = %d", got)
	}
	if got := I(-7).Int(); got != -7 {
		t.Errorf("I(-7).Int() = %d", got)
	}
	if got := F(3.5).Float(); got != 3.5 {
		t.Errorf("F(3.5).Float() = %g", got)
	}
	if got := S("abc").Str(); got != "abc" {
		t.Errorf(`S("abc").Str() = %q`, got)
	}
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Null().Kind() != KindNull || I(1).Kind() != KindInt ||
		F(1).Kind() != KindFloat || S("").Kind() != KindString {
		t.Error("Kind() mismatch")
	}
	// Cross-kind accessors return zero values.
	if S("x").Int() != 0 || I(3).Str() != "" || S("x").Float() != 0 {
		t.Error("cross-kind accessors should return zero values")
	}
	// Int promotes to float.
	if I(4).Float() != 4.0 {
		t.Error("I(4).Float() != 4.0")
	}
}

func TestValueTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{I(0), false}, {I(1), true}, {I(-1), true},
		{F(0), false}, {F(0.1), true},
		{S(""), false}, {S("x"), true},
		{Null(), false},
		{Bool(true), true}, {Bool(false), false},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("%v.Truthy() = %v, want %v", c.v, !c.want, c.want)
		}
	}
}

func TestValueEqualAndCompare(t *testing.T) {
	if !I(5).Equal(I(5)) || I(5).Equal(I(6)) || I(5).Equal(F(5)) {
		t.Error("Equal on ints broken")
	}
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) {
		t.Error("Equal on strings broken")
	}
	if I(1).Compare(I(2)) != -1 || I(2).Compare(I(1)) != 1 || I(2).Compare(I(2)) != 0 {
		t.Error("Compare on ints broken")
	}
	if F(-1.5).Compare(F(0)) != -1 || S("b").Compare(S("a")) != 1 {
		t.Error("Compare on float/string broken")
	}
	if Null().Compare(I(0)) != -1 {
		t.Error("NULL should sort before ints")
	}
	// Negative ints must compare as signed.
	if I(-2).Compare(I(1)) != -1 {
		t.Error("signed comparison broken")
	}
}

func TestValueString(t *testing.T) {
	if I(3).String() != "3" || S("hi").String() != `"hi"` || Null().String() != "NULL" {
		t.Errorf("String() output unexpected: %s %s %s", I(3), S("hi"), Null())
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), I(0), I(1), I(-1), I(math.MaxInt64), I(math.MinInt64),
		F(0), F(3.14159), F(math.Inf(1)), F(-math.SmallestNonzeroFloat64),
		S(""), S("hello"), S(string(make([]byte, 1000))),
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		if len(buf) != v.EncodedSize() {
			t.Errorf("%v: EncodedSize()=%d but wrote %d", v, v.EncodedSize(), len(buf))
		}
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("%v: consumed %d of %d bytes", v, n, len(buf))
		}
		if !got.Equal(v) {
			t.Errorf("round trip: got %v, want %v", got, v)
		}
	}
}

func TestTupleRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Tuple {
		n := rng.Intn(8)
		tp := make(Tuple, n)
		for i := range tp {
			switch rng.Intn(4) {
			case 0:
				tp[i] = Null()
			case 1:
				tp[i] = I(rng.Int63() - rng.Int63())
			case 2:
				tp[i] = F(rng.NormFloat64())
			default:
				b := make([]byte, rng.Intn(32))
				rng.Read(b)
				tp[i] = S(string(b))
			}
		}
		return tp
	}
	f := func() bool {
		tp := gen()
		buf := AppendTuple(nil, tp)
		if len(buf) != tp.EncodedSize() {
			return false
		}
		got, n, err := DecodeTuple(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return got.Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{byte(KindInt)},                      // missing payload
		{byte(KindInt), 1, 2, 3},             // short payload
		{byte(KindString), 10, 0, 0, 0, 'a'}, // length runs past buffer
		{255},                                // unknown kind
	}
	for i, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, _, err := DecodeTuple([]byte{1}); err == nil {
		t.Error("short tuple header: expected error")
	}
	if _, _, err := DecodeTuple([]byte{2, 0, byte(KindInt)}); err == nil {
		t.Error("tuple with truncated value: expected error")
	}
}

func TestTupleCloneAndEqual(t *testing.T) {
	a := Tuple{I(1), S("x")}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = I(2)
	if a[0].Int() != 1 {
		t.Error("clone aliases original")
	}
	if a.Equal(Tuple{I(1)}) {
		t.Error("tuples of different length compared equal")
	}
	var nilT Tuple
	if nilT.Clone() != nil {
		t.Error("nil tuple clone should be nil")
	}
}

func TestSchema(t *testing.T) {
	s, err := NewSchema("acct", Col("id", KindInt), Col("name", KindString), Col("bal", KindFloat))
	if err != nil {
		t.Fatal(err)
	}
	if s.Table() != "acct" || s.NumColumns() != 3 {
		t.Error("basic accessors broken")
	}
	if s.ColIndex("name") != 1 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex broken")
	}
	if s.Column(2).Kind != KindFloat {
		t.Error("Column broken")
	}
	if err := s.Validate(Tuple{I(1), S("a"), F(2)}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := s.Validate(Tuple{I(1), Null(), F(2)}); err != nil {
		t.Errorf("NULL should validate: %v", err)
	}
	if err := s.Validate(Tuple{I(1), S("a")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := s.Validate(Tuple{S("x"), S("a"), F(2)}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema("t", Col("a", KindInt), Col("a", KindInt)); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("t", Col("", KindInt)); err == nil {
		t.Error("empty column name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on error")
		}
	}()
	MustSchema("t", Col("a", KindInt), Col("a", KindInt))
}

func TestKeyPacker(t *testing.T) {
	p := NewKeyPacker(16, 8, 24, 16)
	k := p.Pack(513, 7, 99999, 12)
	got := p.Unpack(k)
	want := []uint64{513, 7, 99999, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("unpack = %v, want %v", got, want)
	}
	// Order preservation on the most significant field.
	if p.Pack(2, 0, 0, 0) <= p.Pack(1, 255, 1<<24-1, 1<<16-1) {
		t.Error("packing does not preserve field order")
	}
}

func TestKeyPackerQuick(t *testing.T) {
	p := NewKeyPacker(20, 20, 24)
	f := func(a, b, c uint32) bool {
		fa, fb, fc := uint64(a)&(1<<20-1), uint64(b)&(1<<20-1), uint64(c)&(1<<24-1)
		u := p.Unpack(p.Pack(fa, fb, fc))
		return u[0] == fa && u[1] == fb && u[2] == fc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyPackerPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("overflow width", func() { NewKeyPacker(40, 40) })
	mustPanic("zero width", func() { NewKeyPacker(0) })
	p := NewKeyPacker(8, 8)
	mustPanic("field overflow", func() { p.Pack(256, 0) })
	mustPanic("wrong arity", func() { p.Pack(1) })
}
