// Package tuple defines the value, tuple, and schema model shared by the
// storage engine, the stored-procedure interpreter, and every log format.
//
// Values are a small tagged union over int64, float64, and string. Tuples are
// flat slices of values described by a Schema. The package also provides the
// compact binary encoding used by log records and checkpoints, and helpers
// for packing composite keys into the uint64 candidate keys the indexes use.
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds. The zero Kind is KindNull so that zero Values are well formed.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Value is a dynamically typed column value. Numeric payloads live in bits;
// strings live in str. The zero Value is NULL.
type Value struct {
	kind Kind
	bits uint64
	str  string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// I returns an integer value.
func I(v int64) Value { return Value{kind: KindInt, bits: uint64(v)} }

// F returns a float value.
func F(v float64) Value { return Value{kind: KindFloat, bits: math.Float64bits(v)} }

// S returns a string value.
func S(v string) Value { return Value{kind: KindString, str: v} }

// Bool returns an integer value encoding b as 1 or 0. The IR has no separate
// boolean kind; conditions treat any non-zero integer as true.
func Bool(b bool) Value {
	if b {
		return I(1)
	}
	return I(0)
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is valid only for KindInt values;
// other kinds return 0.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		return 0
	}
	return int64(v.bits)
}

// Float returns the float payload, converting integers. Other kinds return 0.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(v.bits)
	case KindInt:
		return float64(int64(v.bits))
	default:
		return 0
	}
}

// Str returns the string payload. It is valid only for KindString values;
// other kinds return "".
func (v Value) Str() string {
	if v.kind != KindString {
		return ""
	}
	return v.str
}

// Truthy reports whether the value counts as true in a condition: non-zero
// numbers and non-empty strings are true; NULL is false.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindInt:
		return v.bits != 0
	case KindFloat:
		return math.Float64frombits(v.bits) != 0
	case KindString:
		return v.str != ""
	default:
		return false
	}
}

// Equal reports deep equality of two values, including kind.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.kind == KindString {
		return v.str == o.str
	}
	return v.bits == o.bits
}

// Compare orders two values of the same kind: -1, 0, or +1. Values of
// different kinds compare by kind tag (NULL sorts first).
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindInt:
		a, b := int64(v.bits), int64(o.bits)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindFloat:
		a, b := math.Float64frombits(v.bits), math.Float64frombits(o.bits)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default:
		switch {
		case v.str < o.str:
			return -1
		case v.str > o.str:
			return 1
		}
		return 0
	}
}

func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(int64(v.bits), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.bits), 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	default:
		return fmt.Sprintf("value(kind=%d)", v.kind)
	}
}

// EncodedSize returns the number of bytes Append will write for v.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 1 + 8
	default:
		return 1 + 4 + len(v.str)
	}
}
