package txn

import (
	"sync/atomic"
	"time"

	"pacman/internal/engine"
)

// Future is the durable-commit handle of one asynchronously submitted
// transaction. Under epoch-based group commit a transaction's execution
// finishes long before its result is durable: the commit record sits in the
// worker buffer until a logger flushes its epoch and the persistent epoch
// (pepoch) covers it. A Future separates the two moments — it is returned
// as soon as execution completes and resolves when the transaction's epoch
// is group-commit released, or with an error when execution fails or the
// instance crashes/closes before the commit becomes durable.
//
// The result accessors (Wait, TS, Err, ExecAt, DurableAt and the latency
// helpers) block until resolution; Done exposes the resolution channel for
// select-based waiting. A Future resolves exactly once and is safe for
// concurrent use.
type Future struct {
	start time.Time
	done  chan struct{}
	state atomic.Uint32

	// Written by MarkExecuted on the execution goroutine before the commit
	// record is published to the durability pipeline (or before Resolve for
	// immediate resolutions); read only after done is closed.
	ts     engine.TS
	execAt time.Time

	// Written by Resolve before done is closed.
	durableAt time.Time
	err       error
}

// NewFuture creates an unresolved future stamped with the submission time.
func NewFuture(start time.Time) *Future {
	return &Future{start: start, done: make(chan struct{})}
}

// MarkExecuted records the execution outcome — commit timestamp and commit
// wall-clock time — leaving the future unresolved until the durability
// pipeline releases it. It is called by the execution path only, before the
// commit record is handed to the loggers.
func (f *Future) MarkExecuted(ts engine.TS, execAt time.Time) {
	f.ts = ts
	f.execAt = execAt
}

// Resolve completes the future: a nil err means the transaction's epoch is
// durable (group-commit released). The first call wins; later calls are
// ignored, so a release racing a crash still resolves exactly once.
func (f *Future) Resolve(durableAt time.Time, err error) {
	if !f.state.CompareAndSwap(0, 1) {
		return
	}
	f.durableAt = durableAt
	f.err = err
	close(f.done)
}

// Done returns a channel that is closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Resolved reports, without blocking, whether the future has resolved. The
// commit-record recycler uses it to guarantee a pooled Committed can never
// be reused while a client may still be waiting on it.
func (f *Future) Resolved() bool { return f.state.Load() != 0 }

// Wait blocks until resolution and returns the commit timestamp and the
// terminal error (nil means executed and durable).
func (f *Future) Wait() (engine.TS, error) {
	<-f.done
	return f.ts, f.err
}

// TS blocks until resolution and returns the commit timestamp (zero when
// execution failed).
func (f *Future) TS() engine.TS {
	<-f.done
	return f.ts
}

// Err blocks until resolution and returns the terminal error.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Epoch blocks until resolution and returns the commit epoch (zero when
// execution failed).
func (f *Future) Epoch() uint32 {
	<-f.done
	return engine.EpochOf(f.ts)
}

// Start returns the submission time. It is valid before resolution.
func (f *Future) Start() time.Time { return f.start }

// ExecAt blocks until resolution and returns when execution committed (zero
// when execution failed).
func (f *Future) ExecAt() time.Time {
	<-f.done
	return f.execAt
}

// DurableAt blocks until resolution and returns when the commit was
// group-commit released (for an errored future: when the error was known).
func (f *Future) DurableAt() time.Time {
	<-f.done
	return f.durableAt
}

// ExecLatency blocks until resolution and returns submit-to-commit latency
// (zero when execution failed).
func (f *Future) ExecLatency() time.Duration {
	<-f.done
	if f.execAt.IsZero() {
		return 0
	}
	return f.execAt.Sub(f.start)
}

// DurableLatency blocks until resolution and returns the end-to-end
// submit-to-durability latency (zero for errored futures).
func (f *Future) DurableLatency() time.Duration {
	<-f.done
	if f.err != nil || f.durableAt.IsZero() {
		return 0
	}
	return f.durableAt.Sub(f.start)
}
