package txn

import (
	"errors"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
)

// ErrDeadlineExceeded resolves a future whose per-request deadline passed
// before the transaction's commit became durable. The contract is one-sided:
// a future that has already resolved with a durable ack is never
// retroactively failed (first resolution wins), but a deadline-exceeded
// resolution says nothing about execution — the transaction may have
// committed in memory and may still become durable after the caller has
// given up. Callers that need to know must treat it like a connection loss:
// executed-maybe, acked-no.
var ErrDeadlineExceeded = errors.New("txn: deadline exceeded")

// Future is the durable-commit handle of one asynchronously submitted
// transaction. Under epoch-based group commit a transaction's execution
// finishes long before its result is durable: the commit record sits in the
// worker buffer until a logger flushes its epoch and the persistent epoch
// (pepoch) covers it. A Future separates the two moments — it is returned
// as soon as execution completes and resolves when the transaction's epoch
// is group-commit released, or with an error when execution fails or the
// instance crashes/closes before the commit becomes durable.
//
// A future may carry a deadline (NewFutureDeadline + Arm): if it has not
// resolved when the deadline passes, it resolves with ErrDeadlineExceeded —
// whether the request is still queued, executing, or parked in the
// durability pipeline behind a slow device. Expiry races resolution on the
// same first-wins CAS, so a durable ack that lands first sticks.
//
// The result accessors (Wait, TS, Err, ExecAt, DurableAt and the latency
// helpers) block until resolution; Done exposes the resolution channel for
// select-based waiting. A Future resolves exactly once and is safe for
// concurrent use.
type Future struct {
	start    time.Time
	deadline time.Time // zero = no deadline; immutable once the future is shared
	done     chan struct{}
	state    atomic.Uint32
	timer    atomic.Pointer[time.Timer] // expiry timer; set by Arm

	// Written by MarkExecuted on the execution goroutine before the commit
	// record is published to the durability pipeline. Atomic because a
	// deadline expiry can resolve the future while execution is still in
	// flight, letting a waiter read concurrently with MarkExecuted.
	ts     atomic.Uint64 // engine.TS
	execAt atomic.Int64  // unix nanos; 0 = never executed

	// Written by Resolve before done is closed.
	durableAt time.Time
	err       error
}

// NewFuture creates an unresolved future stamped with the submission time.
func NewFuture(start time.Time) *Future {
	return &Future{start: start, done: make(chan struct{})}
}

// NewFutureDeadline creates an unresolved future carrying a per-request
// deadline (zero means none). The deadline is advisory until Arm starts
// enforcement; admission paths use Deadline/Expired to shed before that.
func NewFutureDeadline(start, deadline time.Time) *Future {
	return &Future{start: start, deadline: deadline, done: make(chan struct{})}
}

// Deadline returns the request deadline (zero when none). Valid at any time.
func (f *Future) Deadline() time.Time { return f.deadline }

// Expired reports whether the future carries a deadline that now is at or
// past. It does not resolve the future.
func (f *Future) Expired(now time.Time) bool {
	return !f.deadline.IsZero() && !now.Before(f.deadline)
}

// Expire resolves the future with ErrDeadlineExceeded if its deadline has
// passed and it has not already resolved. It returns true when this call
// performed the expiry. Safe to call from any checkpoint on the request
// path (queue entry, execution start, durability release scan).
func (f *Future) Expire(now time.Time) bool {
	if !f.Expired(now) || f.Resolved() {
		return false
	}
	if !f.state.CompareAndSwap(0, 1) {
		return false
	}
	f.durableAt = now
	f.err = ErrDeadlineExceeded
	close(f.done)
	return true
}

// Arm starts deadline enforcement: a timer resolves the future with
// ErrDeadlineExceeded when the deadline passes first. Resolve stops the
// timer on the winning path. The pointer is atomic because a tiny deadline
// can fire the callback before the store lands — the callback then finds
// nil and skips the Stop, which is harmless (the timer already fired). A
// future without a deadline is untouched.
func (f *Future) Arm() {
	if f.deadline.IsZero() || f.Resolved() {
		return
	}
	d := time.Until(f.deadline)
	if d <= 0 {
		f.Expire(time.Now())
		return
	}
	f.timer.Store(time.AfterFunc(d, func() { f.Resolve(time.Now(), ErrDeadlineExceeded) }))
}

// Disarm stops deadline enforcement. It is only legal on a future that was
// never shared with another goroutine — an admission path that created and
// armed the future but then declined to enqueue it (TrySubmit's queue-full
// return) uses it so the timer does not fire against an abandoned handle.
func (f *Future) Disarm() {
	if t := f.timer.Load(); t != nil {
		t.Stop()
	}
}

// MarkExecuted records the execution outcome — commit timestamp and commit
// wall-clock time — leaving the future unresolved until the durability
// pipeline releases it. It is called by the execution path only, before the
// commit record is handed to the loggers.
func (f *Future) MarkExecuted(ts engine.TS, execAt time.Time) {
	f.ts.Store(ts)
	f.execAt.Store(execAt.UnixNano())
}

// Resolve completes the future: a nil err means the transaction's epoch is
// durable (group-commit released). The first call wins; later calls are
// ignored, so a release racing a crash (or a deadline expiry racing a
// durable ack) still resolves exactly once.
func (f *Future) Resolve(durableAt time.Time, err error) {
	if !f.state.CompareAndSwap(0, 1) {
		return
	}
	if t := f.timer.Load(); t != nil {
		t.Stop()
	}
	f.durableAt = durableAt
	f.err = err
	close(f.done)
}

// Done returns a channel that is closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Resolved reports, without blocking, whether the future has resolved. The
// commit-record recycler uses it to guarantee a pooled Committed can never
// be reused while a client may still be waiting on it.
func (f *Future) Resolved() bool { return f.state.Load() != 0 }

// Wait blocks until resolution and returns the commit timestamp and the
// terminal error (nil means executed and durable).
func (f *Future) Wait() (engine.TS, error) {
	<-f.done
	return f.ts.Load(), f.err
}

// TS blocks until resolution and returns the commit timestamp (zero when
// execution failed).
func (f *Future) TS() engine.TS {
	<-f.done
	return f.ts.Load()
}

// Err blocks until resolution and returns the terminal error.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Epoch blocks until resolution and returns the commit epoch (zero when
// execution failed).
func (f *Future) Epoch() uint32 {
	<-f.done
	return engine.EpochOf(f.ts.Load())
}

// Start returns the submission time. It is valid before resolution.
func (f *Future) Start() time.Time { return f.start }

// ExecAt blocks until resolution and returns when execution committed (zero
// when execution failed or the future expired before execution).
func (f *Future) ExecAt() time.Time {
	<-f.done
	n := f.execAt.Load()
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// DurableAt blocks until resolution and returns when the commit was
// group-commit released (for an errored future: when the error was known).
func (f *Future) DurableAt() time.Time {
	<-f.done
	return f.durableAt
}

// ExecLatency blocks until resolution and returns submit-to-commit latency
// (zero when execution failed).
func (f *Future) ExecLatency() time.Duration {
	<-f.done
	n := f.execAt.Load()
	if n == 0 {
		return 0
	}
	return time.Unix(0, n).Sub(f.start)
}

// DurableLatency blocks until resolution and returns the end-to-end
// submit-to-durability latency (zero for errored futures).
func (f *Future) DurableLatency() time.Duration {
	<-f.done
	if f.err != nil || f.durableAt.IsZero() {
		return 0
	}
	return f.durableAt.Sub(f.start)
}
