package txn

import "sync"

// Commit-record recycling. A Committed is allocated (or reused) by the
// worker at commit, handed to a logger by Drain/DrainInto, held in the
// logger's pending set until its epoch is covered by the persistent epoch,
// and finally released: its future is resolved and the record has no
// remaining observer. At that point — and only then — the wal release path
// returns it here so the next commit on any worker reuses it, Writes
// backing array included. This keeps the execute→commit→encode→release
// pipeline allocation-free in steady state.
//
// Ownership rules (see also README "Performance"):
//   - Whoever holds a *Committed drained from a worker owns it. Only the
//     wal release path recycles; every other consumer (tests, tools) just
//     lets records go to the GC, which is always safe.
//   - Recycle only after the record's Future has resolved: the future is
//     the last client-visible handle, and RecycleCommitted enforces the
//     invariant by dropping (not pooling) any record whose future is still
//     pending.
//   - A recycled record must not be reachable from anywhere: callers clear
//     their own containers (the logger's pending set and the worker's
//     buffer compact in place and clear vacated slots for this reason).

var committedPool = sync.Pool{New: func() any { return new(Committed) }}

// newCommitted returns a cleared commit record, reusing a recycled one when
// available. Its Writes slice may carry capacity from an earlier life;
// callers append into it.
func newCommitted() *Committed {
	return committedPool.Get().(*Committed)
}

// RecycleCommitted returns fully released commit records to the pool. It is
// called by the wal release path after futures are resolved and, when an
// OnRelease observer is configured, only when that observer is absent (an
// observer may retain the records, so ownership passes to it instead).
//
// A record whose Future has not resolved is never pooled: it is skipped and
// left to the garbage collector, so a pipeline bug can at worst leak, never
// corrupt a client-visible result.
func RecycleCommitted(cs []*Committed) {
	for _, c := range cs {
		RecycleCommittedOne(c)
	}
}

// RecycleCommittedOne recycles a single commit record (see
// RecycleCommitted).
func RecycleCommittedOne(c *Committed) {
	if c == nil {
		return
	}
	if f := c.Future; f != nil && !f.Resolved() {
		return
	}
	clear(c.Writes)
	ws := c.Writes[:0]
	*c = Committed{Writes: ws}
	committedPool.Put(c)
}
