package txn

// Tests for the recycled per-worker transaction scratch (the write-stamp
// validation path, conflict→retry reuse) and the pooled commit records.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// TestScratchFreshAfterConflict drives one scratch T through a conflicted
// attempt and a retry by hand: the retry must observe none of the aborted
// attempt's read/write set — neither in its bookkeeping nor through
// read-your-writes.
func TestScratchFreshAfterConflict(t *testing.T) {
	b, m := setupBank(t, 10)
	cur := b.DB().Table("Current")
	w := m.NewWorker()
	w2 := m.NewWorker()

	// Attempt 1: read-modify-write account 1 on the worker's scratch.
	tx := &w.scratch
	tx.begin()
	if _, err := tx.Read(cur, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(cur, 1, []proc.ColUpdate{{Col: 1, Val: tuple.I(999)}}); err != nil {
		t.Fatal(err)
	}
	if len(tx.writes) != 1 || len(tx.reads) == 0 {
		t.Fatalf("attempt 1 bookkeeping: %d writes, %d reads", len(tx.writes), len(tx.reads))
	}

	// A competing transaction commits a new version of account 1, dooming
	// attempt 1's validation.
	t2 := &w2.scratch
	t2.begin()
	if err := t2.Write(cur, 1, []proc.ColUpdate{{Col: 1, Val: tuple.I(55)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.commit(); err != nil {
		t.Fatal(err)
	}

	if _, err := tx.commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit = %v, want ErrConflict", err)
	}
	if len(tx.reads) != 0 || len(tx.writes) != 0 {
		t.Fatalf("scratch not released after conflict: %d reads, %d writes", len(tx.reads), len(tx.writes))
	}

	// Retry on the same scratch. Read-your-writes must see the committed
	// value, not the aborted attempt's buffered 999.
	tx.begin()
	v, err := tx.Read(cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := v[1].Int(); got != 55 {
		t.Fatalf("retry read = %d, want the committed 55 (stale recycled write set?)", got)
	}
	if err := tx.Write(cur, 3, []proc.ColUpdate{{Col: 1, Val: tuple.I(777)}}); err != nil {
		t.Fatal(err)
	}
	if len(tx.writes) != 1 || tx.writes[0].key != 3 {
		t.Fatalf("retry write set polluted: %+v", tx.writes)
	}
	if _, err := tx.commit(); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, cur, 1); got != 55 {
		t.Fatalf("account 1 = %d, want 55 (aborted write leaked)", got)
	}
	if got := balance(t, cur, 3); got != 777 {
		t.Fatalf("account 3 = %d, want 777", got)
	}
}

// TestScratchRecycledRaced hammers one hot account from several workers
// through the full execute loop so conflicts and retries constantly recycle
// each worker's scratch; the final balance must be exact (a stale recycled
// read or write set would lose or duplicate deposits).
func TestScratchRecycledRaced(t *testing.T) {
	b, m := setupBank(t, 4)
	const workers, per = 4, 300
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		w := m.NewWorker()
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			defer w.Retire()
			for i := 0; i < per; i++ {
				_, err := w.Execute(b.Deposit,
					proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(1)), proc.A(tuple.I(1))},
					false, time.Now())
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	cur := b.DB().Table("Current")
	if got, want := balance(t, cur, 1), int64(10+workers*per); got != want {
		t.Fatalf("hot account = %d, want %d", got, want)
	}
}

// TestWriteStampValidation covers the stamp fast path directly: a
// transaction that reads and writes the same row passes validation while
// holding its own latch, and a foreign latch on a read row still conflicts.
func TestWriteStampValidation(t *testing.T) {
	b, m := setupBank(t, 10)
	cur := b.DB().Table("Current")
	w := m.NewWorker()

	// Own-write fast path: read row 2, write row 2, commit. Validation sees
	// the row locked (by us) with our stamp and must not abort.
	tx := &w.scratch
	tx.begin()
	if _, err := tx.Read(cur, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(cur, 2, []proc.ColUpdate{{Col: 1, Val: tuple.I(42)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.commit(); err != nil {
		t.Fatalf("own-write validation aborted: %v", err)
	}

	// Foreign latch: a read-only transaction validating while another
	// holds the row latch must conflict (the stamp belongs to nobody's
	// current attempt, so the conservative path runs).
	row, _ := cur.GetRow(3)
	row.Lock()
	tx.begin()
	if _, err := tx.Read(cur, 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(cur, 4, []proc.ColUpdate{{Col: 1, Val: tuple.I(1)}}); err != nil {
		t.Fatal(err)
	}
	_, err := tx.commit()
	row.Unlock()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("foreign-latch validation = %v, want ErrConflict", err)
	}
}

// TestRecycleCommittedRespectsFutures asserts the pool invariant: a commit
// record whose future has not resolved is never pooled (it is dropped to
// the GC instead), and a resolved one is cleared before reuse.
func TestRecycleCommittedRespectsFutures(t *testing.T) {
	f := NewFuture(time.Now())
	c := newCommitted()
	c.TS = engine.MakeTS(3, 7)
	c.Epoch = 3
	c.Future = f
	c.Writes = append(c.Writes, WriteRec{Key: 9})

	RecycleCommittedOne(c)
	if c.TS != engine.MakeTS(3, 7) || c.Future != f || len(c.Writes) != 1 {
		t.Fatal("record with an unresolved future was recycled")
	}

	f.Resolve(time.Now(), nil)
	RecycleCommittedOne(c)
	if c.TS != 0 || c.Future != nil || len(c.Writes) != 0 {
		t.Fatalf("resolved record not cleared on recycle: %+v", c)
	}
}

// TestRecycledCommittedReuseRaced exercises the full pool cycle under the
// race detector: workers commit with futures attached, a drainer releases
// (resolves, then recycles) while clients wait on their futures, and every
// future must carry its own transaction's timestamp — a record reused
// before resolution would corrupt it.
func TestRecycledCommittedReuseRaced(t *testing.T) {
	b, m := setupBank(t, 64)
	const workers, per = 4, 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		w := m.NewWorker()
		w.SetDurabilityDeferred(true)
		wg.Add(1)
		go func(w *Worker, g int) {
			defer wg.Done()
			// Drainer for this worker: release everything committed so far,
			// resolving futures then recycling — the wal release path in
			// miniature, racing the worker's commits that draw from the pool.
			stop := make(chan struct{})
			drained := make(chan struct{})
			go func() {
				defer close(drained)
				var scratch []*Committed
				release := func() {
					scratch = w.DrainInto(scratch[:0], ^uint32(0))
					now := time.Now()
					for _, c := range scratch {
						if c.Future != nil {
							c.Future.Resolve(now, nil)
						}
					}
					RecycleCommitted(scratch)
				}
				for {
					select {
					case <-stop:
						release()
						return
					default:
						release()
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()
			futs := make([]*Future, 0, per)
			want := make([]engine.TS, 0, per)
			for i := 0; i < per; i++ {
				f := NewFuture(time.Now())
				ts, err := w.ExecuteFuture(f, b.Deposit,
					proc.Args{proc.A(tuple.I(int64(1 + (g*per+i)%64))), proc.A(tuple.I(1)), proc.A(tuple.I(1))},
					false)
				if err != nil {
					t.Error(err)
					break
				}
				futs = append(futs, f)
				want = append(want, ts)
			}
			w.Retire()
			close(stop)
			<-drained
			for i, f := range futs {
				got, err := f.Wait()
				if err != nil {
					t.Errorf("future %d: %v", i, err)
					break
				}
				if got != want[i] {
					t.Errorf("future %d ts = %d, want %d (pooled record reused before resolve?)", i, got, want[i])
					break
				}
			}
		}(w, g)
	}
	wg.Wait()
}
