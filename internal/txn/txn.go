// Package txn implements the OLTP execution path: a Silo-style optimistic
// concurrency control protocol over the storage engine, an epoch manager,
// and the per-worker commit buffers the loggers drain (the paper's
// Appendix A logging pipeline, which follows SiloR).
//
// Protocol per transaction: reads record the observed version pointer;
// writes are buffered. At commit the write rows are locked in (table, key)
// order, a commit timestamp (epoch << 32 | global sequence) is drawn, the
// read set is validated (same version still at the head, no foreign latch),
// and the new versions are installed. Conflicting transactions therefore
// serialize in timestamp order, which makes the timestamp order a correct
// replay order for command logging.
//
// Durability is epoch-based group commit: a committed transaction's record
// is buffered on its worker, tagged with its commit epoch; loggers steal
// buffers and flush an epoch once no worker can still commit into it; the
// result is released to the client only when the persistent epoch (pepoch)
// covers it. Package wal implements the loggers; this package provides the
// worker-side machinery (epoch marks and buffers).
package txn

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
	"pacman/internal/mvcc"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// ErrConflict is returned when validation fails; the caller may retry.
var ErrConflict = errors.New("txn: conflict, validation failed")

// ErrDuplicateKey is returned by Insert when the key already holds a
// visible row. It aborts the transaction.
var ErrDuplicateKey = errors.New("txn: duplicate key")

// Config tunes the transaction manager.
type Config struct {
	// MultiVersion retains version chains on update (required for
	// consistent checkpointing to run concurrently with transactions).
	MultiVersion bool
	// EpochInterval is the group-commit epoch length. The paper's SiloR
	// setup uses 40ms epochs; tests use much shorter ones.
	EpochInterval time.Duration
	// MaxRetries bounds OCC retries per transaction before giving up.
	MaxRetries int
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MultiVersion: true, EpochInterval: 10 * time.Millisecond, MaxRetries: 1000}
}

// WriteRec is one tuple modification of a committed transaction, in the
// form the loggers serialize.
type WriteRec struct {
	Table   *engine.Table
	Key     uint64
	Slot    uint64
	Deleted bool
	After   tuple.Tuple
}

// Committed describes one committed transaction for the durability pipeline.
type Committed struct {
	TS    engine.TS
	Epoch uint32
	// Proc and Args identify the stored procedure invocation (command
	// logging); Proc is nil only for direct ad-hoc writes.
	Proc  *proc.Compiled
	Args  proc.Args
	AdHoc bool
	// Dist marks a distributed transaction — a piece of a cross-shard
	// two-phase commit. Like AdHoc it forces value logging under command
	// logging, so a shard's replay never re-executes the piece (whose
	// inputs may have come from another shard).
	Dist bool
	// Writes is the transaction's write set in commit order (logical and
	// physical logging; also used for ad-hoc replay under command logging).
	Writes []WriteRec
	// Start is when the client submitted the transaction; the harness uses
	// it for end-to-end (post-fsync) latency.
	Start time.Time
	// WID is the ID of the worker that committed this transaction. The wal
	// release path shards its flushed-but-unreleased sets by it, so one
	// worker's records always land on one shard in commit order.
	WID int
	// Future, when non-nil, is the durable-commit handle the durability
	// pipeline resolves once this transaction's epoch is group-commit
	// released (or fails on crash/close).
	Future *Future
}

// Manager owns the epoch clock and global sequence and creates workers.
type Manager struct {
	db  *engine.Database
	cfg Config

	epoch atomic.Uint32
	seq   atomic.Uint32

	mu      sync.Mutex
	workers []*Worker

	stopped  atomic.Bool
	stopCh   chan struct{}
	tickerWG sync.WaitGroup

	// onAdvance, when registered, is invoked after movements that can raise
	// SafeEpoch — epoch-clock ticks, Rebase, worker heartbeats and retires —
	// but never from the per-transaction hot path. An inactive wal.LogSet
	// uses it to wake WaitForEpoch parkers (whose progress shadows the safe
	// epoch, not the pepoch thread) without busy-polling. The callback must
	// be cheap and must not block.
	onAdvance atomic.Pointer[func()]
}

// NewManager creates a manager over the catalog. The epoch clock starts at
// 1 (epoch 0 is reserved for initial population).
func NewManager(db *engine.Database, cfg Config) *Manager {
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 1000
	}
	m := &Manager{db: db, cfg: cfg, stopCh: make(chan struct{})}
	m.epoch.Store(1)
	return m
}

// DB returns the catalog.
func (m *Manager) DB() *engine.Database { return m.db }

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Epoch returns the current epoch.
func (m *Manager) Epoch() uint32 { return m.epoch.Load() }

// AdvanceEpoch bumps the epoch clock by one (tests and manual control).
func (m *Manager) AdvanceEpoch() uint32 {
	e := m.epoch.Add(1)
	m.notifyAdvance()
	return e
}

// SetOnAdvance registers the epoch-movement callback (see the onAdvance
// field). One callback per manager; a later registration replaces the
// earlier one.
func (m *Manager) SetOnAdvance(fn func()) { m.onAdvance.Store(&fn) }

func (m *Manager) notifyAdvance() {
	if fn := m.onAdvance.Load(); fn != nil {
		(*fn)()
	}
}

// Rebase moves the epoch clock forward to at least epoch; it never moves it
// backward. A restarted instance rebases past the recovery high-water mark
// before starting its ticker and workers, so every post-restart commit
// timestamp is strictly greater than every recovered one (the sequence
// component may restart from zero — TS order is epoch-major).
func (m *Manager) Rebase(epoch uint32) {
	for {
		cur := m.epoch.Load()
		if epoch <= cur {
			return
		}
		if m.epoch.CompareAndSwap(cur, epoch) {
			m.notifyAdvance()
			return
		}
	}
}

// StartEpochTicker advances the epoch every Config.EpochInterval until Stop.
func (m *Manager) StartEpochTicker() {
	m.tickerWG.Add(1)
	go func() {
		defer m.tickerWG.Done()
		t := time.NewTicker(m.cfg.EpochInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.epoch.Add(1)
				m.notifyAdvance()
			case <-m.stopCh:
				return
			}
		}
	}()
}

// Stop halts the epoch ticker.
func (m *Manager) Stop() {
	if m.stopped.CompareAndSwap(false, true) {
		close(m.stopCh)
	}
	m.tickerWG.Wait()
}

// NewWorker registers a new worker thread context.
func (m *Manager) NewWorker() *Worker {
	w := &Worker{mgr: m}
	w.scratch.mgr = m
	w.scratch.pool = mvcc.NewPool()
	w.mark.Store(uint64(m.epoch.Load()))
	m.mu.Lock()
	w.id = len(m.workers)
	m.workers = append(m.workers, w)
	m.mu.Unlock()
	return w
}

// Workers returns the registered workers.
func (m *Manager) Workers() []*Worker {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Worker(nil), m.workers...)
}

// SafeEpoch returns the highest epoch no worker can still commit into:
// min over live workers of their epoch mark, minus one. Retired workers are
// ignored; with every worker retired the whole current epoch is safe.
// Loggers flush up to this epoch.
func (m *Manager) SafeEpoch() uint32 {
	m.mu.Lock()
	ws := m.workers
	m.mu.Unlock()
	minMark := uint64(m.epoch.Load()) + 1
	for _, w := range ws {
		if mk := w.mark.Load(); mk < minMark {
			minMark = mk
		}
	}
	if minMark == 0 {
		return 0
	}
	return uint32(minMark - 1)
}

// SnapshotEpoch returns the highest epoch that is both safe (no live
// worker can still commit into it) and closed to workers created later
// (strictly below the current epoch). Checkpoints must snapshot here, not
// at SafeEpoch: with every worker retired, SafeEpoch equals the current —
// still open — epoch, and a worker created after the snapshot could commit
// into it at a timestamp the checkpoint claims to cover but never read;
// that commit would then be filtered from log replay and silently lost.
func (m *Manager) SnapshotEpoch() uint32 {
	se := m.SafeEpoch()
	// The clock starts at 1 and never reaches 0, so cur-1 is always a valid
	// closed epoch (0 holds only the pre-Start population).
	if cur := m.epoch.Load(); cur > 0 && se >= cur {
		se = cur - 1
	}
	return se
}

// Worker is one transaction-execution thread's context: its epoch mark,
// commit buffer, and reusable transaction scratch.
type Worker struct {
	mgr *Manager
	id  int

	// scratch is the worker's reusable transaction attempt: its read/write
	// set backing arrays survive across retries and transactions so the
	// steady-state execute→commit path allocates nothing for bookkeeping.
	// A Worker executes one transaction at a time (single-goroutine
	// contract), so the scratch is never aliased.
	scratch T

	// mark is the lower bound on the epoch of any future commit by this
	// worker; math.MaxUint32+? (stored as uint64) when retired.
	mark atomic.Uint64

	bufMu sync.Mutex
	buf   []*Committed
	// deferred reports whether durability is deferred to a logging
	// pipeline: futures of buffered commits are resolved by the loggers'
	// release path instead of at execution. Set by wal.LogSet.AttachWorker
	// when active loggers exist. Guarded by bufMu.
	deferred bool
	// failErr, once set, terminally fails durability for this worker:
	// every future from then on resolves with it at execution (the
	// transaction still commits in memory). Guarded by bufMu.
	failErr error
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// retiredMark marks a worker as never committing again.
const retiredMark = math.MaxUint64

// Retire declares the worker finished; loggers no longer wait on it.
func (w *Worker) Retire() {
	w.mark.Store(retiredMark)
	w.mgr.notifyAdvance()
}

// Heartbeat publishes the current epoch as the worker's mark. A worker with
// no transaction in flight must heartbeat periodically (or Retire), or it
// holds back the safe epoch and with it group commit — the same contract
// SiloR places on its workers. Calling it mid-transaction is incorrect.
func (w *Worker) Heartbeat() {
	if w.mark.Load() != retiredMark {
		w.mark.Store(uint64(w.mgr.epoch.Load()))
		w.mgr.notifyAdvance()
	}
}

// SetDurabilityDeferred declares whether the worker's commits reach
// durability through a logging pipeline. When true, futures attached to
// commits resolve at group-commit release; when false (workers without
// active loggers), they resolve at execution.
func (w *Worker) SetDurabilityDeferred(on bool) {
	w.bufMu.Lock()
	w.deferred = on
	w.bufMu.Unlock()
}

// FailDurability terminally fails the worker's durability path: every
// commit buffered so far has its future resolved with err, and every later
// execution resolves its future with err immediately (the in-memory commit
// still succeeds). The logging pipeline calls it on crash and close so no
// future waits forever.
func (w *Worker) FailDurability(err error) {
	w.bufMu.Lock()
	w.failErr = err
	buffered := w.buf
	w.buf = nil
	w.bufMu.Unlock()
	now := time.Now()
	for _, c := range buffered {
		if c.Future != nil {
			c.Future.Resolve(now, err)
		}
	}
}

// Execute runs one stored-procedure transaction with OCC retries. It
// returns the commit timestamp. The committed record (if logging needs it)
// is buffered for the loggers. adHoc marks the transaction as not
// command-loggable.
func (w *Worker) Execute(p *proc.Compiled, args proc.Args, adHoc bool, start time.Time) (engine.TS, error) {
	return w.execute(nil, p, args, adHoc, false, start)
}

// ExecuteFuture runs one transaction like Execute and resolves f with its
// outcome: immediately on an execution error, at commit when the worker's
// durability is not deferred to a logging pipeline (or the transaction is
// read-only), and otherwise when the pipeline releases the commit's epoch.
func (w *Worker) ExecuteFuture(f *Future, p *proc.Compiled, args proc.Args, adHoc bool) (engine.TS, error) {
	return w.execute(f, p, args, adHoc, false, f.Start())
}

// ExecuteFutureDist is ExecuteFuture for distributed transactions (2PC
// pieces): the commit record is marked Dist so the loggers emit a value
// record even under command logging.
func (w *Worker) ExecuteFutureDist(f *Future, p *proc.Compiled, args proc.Args) (engine.TS, error) {
	return w.execute(f, p, args, false, true, f.Start())
}

func (w *Worker) execute(f *Future, p *proc.Compiled, args proc.Args, adHoc, dist bool, start time.Time) (engine.TS, error) {
	fail := func(err error) (engine.TS, error) {
		if f != nil {
			f.Resolve(time.Now(), err)
		}
		return 0, err
	}
	// Publish the epoch floor for this attempt; any commit that follows
	// uses an epoch >= mark.
	w.mark.Store(uint64(w.mgr.epoch.Load()))
	// The attempt state lives in the worker's reusable scratch: retries and
	// successive transactions recycle the same read/write-set backing
	// arrays (begin resets lengths and issues a fresh write-stamp token, so
	// a retry can never observe a previous attempt's entries).
	t := &w.scratch
	for attempt := 0; ; attempt++ {
		t.begin()
		err := p.Execute(args, t)
		if err == nil {
			ts, cerr := t.commit()
			if cerr == nil {
				execAt := time.Now()
				if f != nil {
					f.MarkExecuted(ts, execAt)
				}
				attached := false
				var durErr error
				// Read-only transactions generate no log records (the paper
				// ignores them in the analysis for the same reason).
				if len(t.writes) > 0 {
					c := newCommitted()
					c.TS = ts
					c.Epoch = engine.EpochOf(ts)
					c.WID = w.id
					c.Proc = p
					c.Args = args
					c.AdHoc = adHoc
					c.Dist = dist
					c.Writes = t.appendWriteRecs(c.Writes)
					c.Start = start
					w.bufMu.Lock()
					durErr = w.failErr
					if f != nil && w.deferred && durErr == nil {
						c.Future = f
						attached = true
					}
					if durErr == nil {
						w.buf = append(w.buf, c)
					}
					w.bufMu.Unlock()
				}
				t.release()
				// The record is buffered; the mark may move up to the
				// current epoch so group commit is not held back while the
				// worker sits between transactions.
				w.mark.Store(uint64(w.mgr.epoch.Load()))
				if f != nil && !attached {
					// Nothing to log (or no pipeline, or a dead one):
					// durability is decided right here.
					f.Resolve(execAt, durErr)
				}
				return ts, nil
			}
			err = cerr
		} else {
			t.release()
		}
		if errors.Is(err, proc.ErrAborted) {
			return fail(err)
		}
		// A duplicate-key error can be a transient artifact of stale reads
		// (e.g., two NewOrders racing on one district counter: the loser
		// computed a key from an outdated read); retry like any conflict.
		// Persistent duplicates exhaust MaxRetries and surface.
		if !errors.Is(err, ErrConflict) && !errors.Is(err, ErrDuplicateKey) {
			return fail(err)
		}
		if attempt >= w.mgr.cfg.MaxRetries {
			return fail(fmt.Errorf("%w (gave up after %d attempts)", ErrConflict, attempt))
		}
	}
}

// DrainInto appends buffered commits with Epoch <= maxEpoch to dst and
// returns the extended slice. The worker's buffer is compacted in place
// (its backing array is reused; drained slots are cleared so released
// records are not pinned), so a logger draining into its own recycled
// scratch slice performs no allocation in steady state.
func (w *Worker) DrainInto(dst []*Committed, maxEpoch uint32) []*Committed {
	w.bufMu.Lock()
	defer w.bufMu.Unlock()
	if len(w.buf) == 0 {
		return dst
	}
	kept := w.buf[:0]
	for _, c := range w.buf {
		if c.Epoch <= maxEpoch {
			dst = append(dst, c)
		} else {
			kept = append(kept, c)
		}
	}
	clear(w.buf[len(kept):])
	w.buf = kept
	return dst
}

// Drain removes and returns buffered commits with Epoch <= maxEpoch.
func (w *Worker) Drain(maxEpoch uint32) []*Committed {
	return w.DrainInto(nil, maxEpoch)
}

// BufferedLen returns the number of undrained commits (tests).
func (w *Worker) BufferedLen() int {
	w.bufMu.Lock()
	defer w.bufMu.Unlock()
	return len(w.buf)
}

// stampSeq issues globally unique write-stamp tokens, one per transaction
// attempt. Tokens start at 1; 0 is the never-stamped state of a fresh row,
// so a zero token can never produce a false write-set membership match.
var stampSeq atomic.Uint64

// T is one transaction attempt. It implements proc.Executor. A T is
// recycled across retries and transactions (it is the Worker's scratch):
// begin resets the read/write sets in place, keeping their backing arrays.
type T struct {
	mgr    *Manager
	reads  []readEnt
	writes []writeEnt
	// token is this attempt's write-stamp: every row buffered for write is
	// stamped with it (engine.Row.SetWriteStamp), giving validation an O(1)
	// membership probe instead of the former per-transaction map or an
	// O(reads×writes) scan.
	token uint64
	// pool is the worker's per-thread version allocator; the commit install
	// draws retained versions from it instead of the heap. Nil (direct T
	// construction in tests) degrades to heap allocation inside Prepare.
	pool *mvcc.Pool
}

// begin resets the scratch for a fresh attempt. Entries are cleared before
// truncation so recycled slots cannot pin tuples from earlier attempts.
func (t *T) begin() {
	t.release()
	t.token = stampSeq.Add(1)
}

type readEnt struct {
	row      *engine.Row
	observed *engine.Version
}

type writeEnt struct {
	table   *engine.Table
	key     uint64
	row     *engine.Row
	data    tuple.Tuple
	deleted bool
}

func (t *T) recordRead(row *engine.Row, v *engine.Version) {
	t.reads = append(t.reads, readEnt{row: row, observed: v})
}

// pendingIdx reports whether row is already in the write set, and where.
// It scans backwards — OLTP write sets are small and the most recently
// buffered row is the likeliest repeat — which beats a map both in lookup
// cost and in allocations (none). The scan, not the row's write-stamp, is
// the ground truth: a concurrent transaction may overwrite our stamp at any
// time, and a false "not pending" here would buffer a duplicate entry and
// self-deadlock in the lock phase.
func (t *T) pendingIdx(row *engine.Row) (int, bool) {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].row == row {
			return i, true
		}
	}
	return 0, false
}

func (t *T) buffer(tab *engine.Table, key uint64, row *engine.Row, data tuple.Tuple, deleted bool) {
	if i, ok := t.pendingIdx(row); ok {
		t.writes[i].data = data
		t.writes[i].deleted = deleted
		return
	}
	if t.token == 0 {
		// Directly constructed T (tests); Worker.execute issues tokens in
		// begin.
		t.token = stampSeq.Add(1)
	}
	row.SetWriteStamp(t.token)
	t.writes = append(t.writes, writeEnt{table: tab, key: key, row: row, data: data, deleted: deleted})
}

// visible returns the currently visible tuple of a version head.
func visible(v *engine.Version) tuple.Tuple {
	if v == nil || v.Deleted {
		return nil
	}
	return v.Data
}

// Read implements proc.Executor.
func (t *T) Read(tab *engine.Table, key uint64) (tuple.Tuple, error) {
	row, ok := tab.GetRow(key)
	if !ok {
		return nil, nil
	}
	if i, pend := t.pendingIdx(row); pend {
		if t.writes[i].deleted {
			return nil, nil
		}
		return t.writes[i].data, nil
	}
	head := row.Head()
	t.recordRead(row, head)
	return visible(head), nil
}

// Write implements proc.Executor: merge column updates over the current
// value (upsert when absent).
func (t *T) Write(tab *engine.Table, key uint64, up []proc.ColUpdate) error {
	row, _ := tab.GetOrCreateRow(key)
	var base tuple.Tuple
	if i, pend := t.pendingIdx(row); pend {
		if !t.writes[i].deleted {
			base = t.writes[i].data
		}
	} else {
		head := row.Head()
		t.recordRead(row, head)
		base = visible(head)
	}
	next := make(tuple.Tuple, tab.Schema().NumColumns())
	copy(next, base)
	for _, u := range up {
		if u.Col < len(next) {
			next[u.Col] = u.Val
		}
	}
	t.buffer(tab, key, row, next, false)
	return nil
}

// Insert implements proc.Executor.
func (t *T) Insert(tab *engine.Table, key uint64, vals tuple.Tuple) error {
	row, _ := tab.GetOrCreateRow(key)
	if i, pend := t.pendingIdx(row); pend {
		if !t.writes[i].deleted {
			return ErrDuplicateKey
		}
	} else {
		head := row.Head()
		t.recordRead(row, head)
		if visible(head) != nil {
			return ErrDuplicateKey
		}
	}
	t.buffer(tab, key, row, vals.Clone(), false)
	return nil
}

// Delete implements proc.Executor.
func (t *T) Delete(tab *engine.Table, key uint64) error {
	row, ok := tab.GetRow(key)
	if !ok {
		return nil
	}
	if _, pend := t.pendingIdx(row); !pend {
		t.recordRead(row, row.Head())
	}
	t.buffer(tab, key, row, nil, true)
	return nil
}

// release resets the scratch after an abort (and after a successful commit
// has been converted to log form). Entries are cleared so the recycled
// backing arrays do not pin row tuples; lengths go to zero but capacity is
// kept for the next attempt.
func (t *T) release() {
	clear(t.reads)
	clear(t.writes)
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
}

// writeEntLess orders the write set by (table, key) for the lock phase.
func writeEntLess(a, b *writeEnt) bool {
	if a.table.ID() != b.table.ID() {
		return a.table.ID() < b.table.ID()
	}
	return a.key < b.key
}

// sortWrites orders t.writes by (table, key) without allocating: insertion
// sort for the small write sets OLTP transactions carry, falling back to
// slices.SortFunc (also allocation-free) past a threshold.
func (t *T) sortWrites() {
	const insertionMax = 24
	ws := t.writes
	if len(ws) <= insertionMax {
		for i := 1; i < len(ws); i++ {
			for j := i; j > 0 && writeEntLess(&ws[j], &ws[j-1]); j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
		return
	}
	slices.SortFunc(ws, func(a, b writeEnt) int {
		if writeEntLess(&a, &b) {
			return -1
		}
		if writeEntLess(&b, &a) {
			return 1
		}
		return 0
	})
}

// commit runs the OCC commit protocol and returns the commit timestamp.
func (t *T) commit() (engine.TS, error) {
	// Phase 1: lock the write set in (table, key) order — deadlock-free.
	t.sortWrites()
	for i := range t.writes {
		t.writes[i].row.Lock()
	}
	unlock := func() {
		for i := range t.writes {
			t.writes[i].row.Unlock()
		}
	}

	// Phase 2: timestamp. Epoch is read inside the critical section so
	// conflicting transactions get ordered timestamps.
	ts := engine.MakeTS(t.mgr.epoch.Load(), t.mgr.seq.Add(1))

	// Phase 3: validate reads. Write-set membership is probed through the
	// row's write-stamp: a matching token proves the row is ours (tokens
	// are unique per attempt), so the common cases — unlocked rows and our
	// own locked writes — validate with two loads and no scan. A mismatched
	// token on a locked row is ambiguous (a concurrent writer of the same
	// row may have overwritten our stamp), so only then does the exact
	// write-set scan run; it is the ground truth and keeps contended
	// workloads free of spurious aborts.
	inWrites := func(row *engine.Row) bool {
		for i := range t.writes {
			if t.writes[i].row == row {
				return true
			}
		}
		return false
	}
	for i := range t.reads {
		r := &t.reads[i]
		if r.row.Head() != r.observed {
			unlock()
			t.release()
			return 0, ErrConflict
		}
		if r.row.WriteStamp() != t.token && r.row.Locked() && !inWrites(r.row) {
			unlock()
			t.release()
			return 0, ErrConflict
		}
	}

	// Phase 4: install and unlock. Versions come from the worker's pool so
	// multi-version retention adds no per-write heap allocation.
	retain := t.mgr.cfg.MultiVersion
	for i := range t.writes {
		w := &t.writes[i]
		w.row.InstallPrepared(t.pool.Prepare(ts, w.data, w.deleted), retain)
	}
	unlock()
	return ts, nil
}

// appendWriteRecs appends the installed writes in log form to dst (the
// commit record's recycled Writes buffer) and returns the extended slice.
func (t *T) appendWriteRecs(dst []WriteRec) []WriteRec {
	for i := range t.writes {
		w := &t.writes[i]
		dst = append(dst, WriteRec{
			Table:   w.table,
			Key:     w.key,
			Slot:    w.row.Slot,
			Deleted: w.deleted,
			After:   w.data,
		})
	}
	return dst
}
