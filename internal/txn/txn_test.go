package txn

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// setupBank builds a populated bank workload with a manager.
func setupBank(t testing.TB, accounts int) (*workload.Bank, *Manager) {
	t.Helper()
	b := workload.NewBank(accounts)
	b.Populate(workload.DirectPopulate{})
	m := NewManager(b.DB(), DefaultConfig())
	return b, m
}

func balance(t testing.TB, tab *engine.Table, key uint64) int64 {
	t.Helper()
	r, ok := tab.GetRow(key)
	if !ok || r.LatestData() == nil {
		t.Fatalf("row %d missing", key)
	}
	return r.LatestData()[1].Int()
}

func TestExecuteCommit(t *testing.T) {
	b, m := setupBank(t, 10)
	w := m.NewWorker()
	// Transfer 100 from account 1 (spouse 2).
	ts, err := w.Execute(b.Transfer, proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(100))}, false, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if engine.EpochOf(ts) != 1 {
		t.Errorf("epoch = %d", engine.EpochOf(ts))
	}
	cur := b.DB().Table("Current")
	if got := balance(t, cur, 1); got != 10-100+0 { // initial 10*1 = 10; 10-100 = -90
		t.Errorf("src = %d, want -90", got)
	}
	if got := balance(t, cur, 2); got != 20+100 {
		t.Errorf("dst = %d, want 120", got)
	}
	// One committed record buffered with the write set.
	if w.BufferedLen() != 1 {
		t.Fatalf("buffered = %d", w.BufferedLen())
	}
	recs := w.Drain(engine.EpochOf(ts))
	if len(recs) != 1 {
		t.Fatalf("drained = %d", len(recs))
	}
	c := recs[0]
	if c.Proc != b.Transfer || c.TS != ts || c.AdHoc {
		t.Error("committed record metadata wrong")
	}
	// Writes: Current x2 + Saving x1.
	if len(c.Writes) != 3 {
		t.Fatalf("writes = %+v", c.Writes)
	}
}

func TestDrainEpochBoundary(t *testing.T) {
	b, m := setupBank(t, 10)
	w := m.NewWorker()
	if _, err := w.Execute(b.Deposit, proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(5)), proc.A(tuple.I(1))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	m.AdvanceEpoch() // now epoch 2
	if _, err := w.Execute(b.Deposit, proc.Args{proc.A(tuple.I(2)), proc.A(tuple.I(5)), proc.A(tuple.I(1))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	got := w.Drain(1)
	if len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("drain(1) = %+v", got)
	}
	if w.BufferedLen() != 1 {
		t.Fatalf("buffered = %d", w.BufferedLen())
	}
	got = w.Drain(2)
	if len(got) != 1 || got[0].Epoch != 2 {
		t.Fatalf("drain(2) = %+v", got)
	}
}

func TestSafeEpoch(t *testing.T) {
	_, m := setupBank(t, 10)
	w1 := m.NewWorker()
	w2 := m.NewWorker()
	// Both workers marked at epoch 1: safe = 0.
	if se := m.SafeEpoch(); se != 0 {
		t.Fatalf("safe = %d", se)
	}
	m.AdvanceEpoch()
	m.AdvanceEpoch() // epoch 3
	w1.mark.Store(3)
	// w2 still at 1: safe remains 0.
	if se := m.SafeEpoch(); se != 0 {
		t.Fatalf("safe = %d with straggler", se)
	}
	w2.Retire()
	if se := m.SafeEpoch(); se != 2 {
		t.Fatalf("safe = %d after retire, want 2", se)
	}
}

func TestAbortedTransactionLeavesNoTrace(t *testing.T) {
	b, m := setupBank(t, 10)
	p := &proc.Procedure{
		Name:   "AbortAfterWrite",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Write("Current", proc.Pm("k"), proc.Set("Value", proc.CI(-999))),
			proc.Abort(),
		},
	}
	c, err := proc.Compile(b.DB(), p, 99)
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWorker()
	before := balance(t, b.DB().Table("Current"), 3)
	_, err = w.Execute(c, proc.Args{proc.A(tuple.I(3))}, false, time.Now())
	if !errors.Is(err, proc.ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if got := balance(t, b.DB().Table("Current"), 3); got != before {
		t.Errorf("aborted write visible: %d", got)
	}
	if w.BufferedLen() != 0 {
		t.Error("aborted txn buffered a log record")
	}
}

func TestInsertDuplicateAborts(t *testing.T) {
	b := workload.NewBank(10)
	b.Populate(workload.DirectPopulate{})
	cfg := DefaultConfig()
	cfg.MaxRetries = 3 // persistent duplicates retry as conflicts, then give up
	m := NewManager(b.DB(), cfg)
	p := &proc.Procedure{
		Name:   "Ins",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Insert("Stats", proc.Pm("k"), proc.Pm("k"), proc.CI(0)),
		},
	}
	c, err := proc.Compile(b.DB(), p, 99)
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWorker()
	if _, err := w.Execute(c, proc.Args{proc.A(tuple.I(500))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	// A duplicate insert is retried like a conflict (it may be a stale-read
	// artifact) and surfaces as retry exhaustion when persistent.
	if _, err := w.Execute(c, proc.Args{proc.A(tuple.I(500))}, false, time.Now()); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate insert err = %v", err)
	}
}

func TestTimestampsOrderConflicts(t *testing.T) {
	b, m := setupBank(t, 4)
	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	tss := make([][]engine.TS, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := m.NewWorker()
			rng := rand.New(rand.NewSource(int64(wi)))
			for i := 0; i < perWorker; i++ {
				// All deposits to account 1: maximal conflict.
				ts, err := w.Execute(b.Deposit,
					proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(int64(rng.Intn(10)))), proc.A(tuple.I(1))},
					false, time.Now())
				if err != nil {
					t.Errorf("worker %d: %v", wi, err)
					return
				}
				tss[wi] = append(tss[wi], ts)
			}
		}(wi)
	}
	wg.Wait()
	// All timestamps distinct, and the row's version chain is ordered.
	seen := make(map[engine.TS]bool)
	for _, l := range tss {
		for _, ts := range l {
			if seen[ts] {
				t.Fatalf("duplicate TS %d", ts)
			}
			seen[ts] = true
		}
	}
	row, _ := b.DB().Table("Current").GetRow(1)
	prev := engine.TS(^uint64(0))
	n := 0
	for v := row.Head(); v != nil; v = v.Next() {
		if v.BeginTS >= prev {
			t.Fatalf("version chain out of order: %d then %d", prev, v.BeginTS)
		}
		prev = v.BeginTS
		n++
	}
	if n != workers*perWorker+1 { // +1 for the populated version
		t.Fatalf("versions = %d, want %d", n, workers*perWorker+1)
	}
}

// TestSerializability: concurrent transfers between two accounts preserve
// the total balance invariant.
func TestSerializability(t *testing.T) {
	b, m := setupBank(t, 20)
	cur := b.DB().Table("Current")
	var total int64
	for i := uint64(1); i <= 20; i++ {
		total += balance(t, cur, i)
	}
	var wg sync.WaitGroup
	for wi := 0; wi < 4; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := m.NewWorker()
			rng := rand.New(rand.NewSource(int64(wi) + 100))
			for i := 0; i < 300; i++ {
				src := int64(1 + rng.Intn(20))
				amt := int64(rng.Intn(50))
				if _, err := w.Execute(b.Transfer,
					proc.Args{proc.A(tuple.I(src)), proc.A(tuple.I(amt))}, false, time.Now()); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	var after int64
	for i := uint64(1); i <= 20; i++ {
		after += balance(t, cur, i)
	}
	if after != total {
		t.Errorf("total balance changed: %d -> %d (serializability violated)", total, after)
	}
}

func TestSingleVersionMode(t *testing.T) {
	b := workload.NewBank(4)
	b.Populate(workload.DirectPopulate{})
	cfg := DefaultConfig()
	cfg.MultiVersion = false
	m := NewManager(b.DB(), cfg)
	w := m.NewWorker()
	for i := 0; i < 5; i++ {
		if _, err := w.Execute(b.Deposit,
			proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(10)), proc.A(tuple.I(1))}, false, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	row, _ := b.DB().Table("Current").GetRow(1)
	if row.VersionCount() != 1 {
		t.Errorf("single-version mode kept %d versions", row.VersionCount())
	}
}

func TestEpochTicker(t *testing.T) {
	_, m := setupBank(t, 4)
	cfg := m.Config()
	if cfg.EpochInterval <= 0 {
		t.Fatal("default epoch interval must be positive")
	}
	m2 := NewManager(m.DB(), Config{EpochInterval: time.Millisecond, MaxRetries: 10})
	m2.StartEpochTicker()
	start := m2.Epoch()
	time.Sleep(20 * time.Millisecond)
	m2.Stop()
	if m2.Epoch() <= start {
		t.Error("epoch ticker did not advance")
	}
	after := m2.Epoch()
	time.Sleep(5 * time.Millisecond)
	if m2.Epoch() != after {
		t.Error("epoch advanced after Stop")
	}
	m2.Stop() // idempotent
}

func TestReadYourOwnWrites(t *testing.T) {
	b, m := setupBank(t, 4)
	// Deposit writes Current then a second procedure reads it back within
	// one txn: chain two deposits to the same account in one procedure.
	p := &proc.Procedure{
		Name:   "DoubleDeposit",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Read("v1", "Current", proc.Pm("k"), "Value"),
			proc.Write("Current", proc.Pm("k"), proc.Set("Value", proc.Add(proc.V("v1"), proc.CI(5)))),
			proc.Read("v2", "Current", proc.Pm("k"), "Value"),
			proc.Write("Current", proc.Pm("k"), proc.Set("Value", proc.Add(proc.V("v2"), proc.CI(5)))),
		},
	}
	c, err := proc.Compile(b.DB(), p, 99)
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWorker()
	before := balance(t, b.DB().Table("Current"), 1)
	if _, err := w.Execute(c, proc.Args{proc.A(tuple.I(1))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, b.DB().Table("Current"), 1); got != before+10 {
		t.Errorf("balance = %d, want %d (read-own-writes)", got, before+10)
	}
	// Only one version installed per written row (writes coalesced).
	recs := w.Drain(^uint32(0) >> 1)
	if len(recs) != 1 || len(recs[0].Writes) != 1 {
		t.Fatalf("writes = %+v", recs[0].Writes)
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	b, m := setupBank(t, 4)
	p := &proc.Procedure{
		Name:   "DelIns",
		Params: []proc.ParamDef{proc.P("k")},
		Body: []proc.Stmt{
			proc.Delete("Stats", proc.Pm("k")),
			proc.Insert("Stats", proc.Pm("k"), proc.Pm("k"), proc.CI(42)),
		},
	}
	c, err := proc.Compile(b.DB(), p, 99)
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWorker()
	if _, err := w.Execute(c, proc.Args{proc.A(tuple.I(1))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := balance(t, b.DB().Table("Stats"), 1); got != 42 {
		t.Errorf("reinserted value = %d", got)
	}
}

func TestAdHocFlagPropagates(t *testing.T) {
	b, m := setupBank(t, 4)
	w := m.NewWorker()
	if _, err := w.Execute(b.Deposit,
		proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(5)), proc.A(tuple.I(1))}, true, time.Now()); err != nil {
		t.Fatal(err)
	}
	recs := w.Drain(^uint32(0) >> 1)
	if len(recs) != 1 || !recs[0].AdHoc {
		t.Error("ad-hoc flag lost")
	}
}
