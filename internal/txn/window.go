package txn

// Window is a bounded buffer of in-flight futures plus per-future caller
// context: Add appends a submitted future and, when the window is full,
// settles the oldest one first — client-side flow control on top of the
// submission queue's backpressure, so an asynchronous submitter never holds
// more than `capacity` unresolved futures. Drain settles everything left.
// A Window is owned by one submitting goroutine; it is not safe for
// concurrent use.
type Window[T any] struct {
	capacity int
	settle   func(*Future, T)
	pending  []windowEntry[T]
}

type windowEntry[T any] struct {
	fut *Future
	ctx T
}

// NewWindow creates a window that settles futures through the given
// callback (typically Future.Wait plus outcome accounting). capacity <= 0
// defaults to 256.
func NewWindow[T any](capacity int, settle func(*Future, T)) *Window[T] {
	if capacity <= 0 {
		capacity = 256
	}
	return &Window[T]{capacity: capacity, settle: settle}
}

// Add tracks one submitted future with its caller context, settling the
// oldest future first when the window is at capacity.
func (w *Window[T]) Add(f *Future, ctx T) {
	if len(w.pending) == w.capacity {
		e := w.pending[0]
		w.pending = w.pending[1:]
		w.settle(e.fut, e.ctx)
	}
	w.pending = append(w.pending, windowEntry[T]{fut: f, ctx: ctx})
}

// Drain settles every tracked future, oldest first.
func (w *Window[T]) Drain() {
	for _, e := range w.pending {
		w.settle(e.fut, e.ctx)
	}
	w.pending = nil
}

// Len returns how many futures are currently tracked.
func (w *Window[T]) Len() int { return len(w.pending) }
