package wal

import (
	"errors"
	"testing"
	"time"

	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

// submitFuture executes one deposit through the future path.
func submitFuture(t testing.TB, w *txn.Worker, b *workload.Bank, acct int64) *txn.Future {
	t.Helper()
	f := txn.NewFuture(time.Now())
	if _, err := w.ExecuteFuture(f, b.Deposit,
		proc.Args{proc.A(tuple.I(acct)), proc.A(tuple.I(7)), proc.A(tuple.I(1))}, false); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestReleaseResolvesFutures: the pepoch release path resolves futures of
// covered epochs with nil error, in the same pass as the OnRelease hook.
func TestReleaseResolvesFutures(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = 200 * time.Microsecond
	var hookSeen int
	cfg.OnRelease = func(cs []*txn.Committed) {
		for _, c := range cs {
			if c.Future == nil {
				t.Error("released commit lost its future")
				continue
			}
			select {
			case <-c.Future.Done():
			default:
				t.Error("OnRelease observed a commit whose future was not yet resolved")
			}
			hookSeen++
		}
	}
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()

	var futs []*txn.Future
	for i := 0; i < 10; i++ {
		futs = append(futs, submitFuture(t, w, b, int64(1+i%20)))
		if i%3 == 2 {
			m.AdvanceEpoch()
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()

	for i, f := range futs {
		ts, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if f.Epoch() > ls.PersistedEpoch() {
			t.Fatalf("future %d resolved durable at epoch %d > pepoch %d", i, f.Epoch(), ls.PersistedEpoch())
		}
		if ts == 0 || f.ExecAt().IsZero() || f.DurableAt().IsZero() {
			t.Fatalf("future %d missing timestamps", i)
		}
	}
	if hookSeen != 10 {
		t.Fatalf("OnRelease saw %d commits, want 10", hookSeen)
	}
}

// TestAbortFailsOutstandingFutures: a crash resolves unreleased futures
// with ErrCrashed — both the flushed-but-uncovered tail and commits still
// sitting in worker buffers — and post-crash executions fail immediately.
func TestAbortFailsOutstandingFutures(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = time.Hour // nothing flushes: everything stays buffered
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()

	var futs []*txn.Future
	for i := 0; i < 5; i++ {
		futs = append(futs, submitFuture(t, w, b, int64(1+i)))
	}
	ls.Abort()
	for i, f := range futs {
		if _, err := f.Wait(); !errors.Is(err, ErrCrashed) {
			t.Fatalf("future %d: err = %v, want ErrCrashed", i, err)
		}
	}
	// The worker's durability is terminally failed: a transaction executed
	// after the crash still commits in memory but resolves ErrCrashed.
	post := submitFuture(t, w, b, 6)
	if _, err := post.Wait(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash future: err = %v, want ErrCrashed", err)
	}
	if post.TS() == 0 {
		t.Fatal("post-crash execution should still commit in memory")
	}
}

// TestCloseFailsUnretiredWorkerFutures: a worker that never retires holds
// the safe epoch back; Close must fail its unflushable tail with ErrClosed
// rather than leaving waiters hanging.
func TestCloseFailsUnretiredWorkerFutures(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = 200 * time.Microsecond
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()

	f := submitFuture(t, w, b, 1)
	// No Retire, no Heartbeat, no epoch advance: the commit's epoch never
	// becomes safe.
	ls.Close()
	if _, err := f.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestOffKindImmediateDurability: an inert LogSet (Kind == Off) leaves the
// worker's durability immediate, so futures resolve at execution.
func TestOffKindImmediateDurability(t *testing.T) {
	b, m := bankSetup(t)
	ls := NewLogSet(m, Config{Kind: Off}, nil)
	w := m.NewWorker()
	ls.AttachWorker(w) // no-op: no loggers
	f := submitFuture(t, w, b, 1)
	select {
	case <-f.Done():
	default:
		t.Fatal("future not resolved at execution with logging off")
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}
