package wal

import (
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/health"
	"pacman/internal/simdisk"
	"pacman/internal/txn"
)

// ErrCrashed resolves durable-commit futures whose transaction executed but
// whose epoch was never covered by the persistent epoch when the instance
// crashed: recovery will not replay it, so it must not report durable.
var ErrCrashed = errors.New("wal: crashed before durable")

// ErrClosed resolves futures still unreleased when the logging pipeline is
// closed (e.g. a worker was never retired, so its epoch never became safe).
var ErrClosed = errors.New("wal: closed before durable")

// DefaultBatchEpochs is the epochs-per-batch-file geometry used when none
// is configured — the paper "sets the batch size to 100 epochs" (Appendix
// A.1). The catalog manifest records the effective value through this same
// constant, so the geometry a restart rounds its resume epoch to can never
// drift from the geometry the loggers actually wrote with.
const DefaultBatchEpochs = 100

// Config tunes the logging subsystem.
type Config struct {
	Kind Kind
	// BatchEpochs is the number of epochs per log batch file (default
	// DefaultBatchEpochs).
	BatchEpochs uint32
	// FlushInterval is the logger poll period.
	FlushInterval time.Duration
	// Sync issues an fsync per flush (group commit). Disabling it models
	// the Table 3 "w/o fsync" configuration.
	Sync bool
	// ResumeEpoch is the restart floor: the epoch up to which the devices
	// are already durable from a previous incarnation (recovery's resume
	// point minus one). The persistent epoch and per-logger persisted
	// counters start here instead of 0, so PersistedEpoch never regresses
	// below what recovery reported and post-restart group commit releases
	// only on epochs this incarnation actually flushed.
	ResumeEpoch uint32
	// OnRelease, if set, is called with transactions whose results become
	// releasable: their epoch is covered by the persistent epoch. The
	// harness measures end-to-end latency here. The observer owns the
	// slice and the records it receives (they are never recycled into the
	// commit-record pool while an observer is configured), so it may
	// retain both past the call.
	OnRelease func([]*txn.Committed)
	// OnPepochAdvance, if set, is called from the pepoch thread each time
	// the persistent epoch advances, with the new value. The multi-version
	// garbage collector keys off it: versions strictly older than the
	// persistent-epoch frontier can never again be needed by recovery or by
	// snapshot views pinned at released epochs. The callback runs on the
	// pepoch goroutine and must not block.
	OnPepochAdvance func(pe uint32)
	// ReleaseShards is the number of release shards the flushed-but-
	// unreleased sets are partitioned over (by committing worker ID). Each
	// pepoch pass drains the shards in parallel, so resolving futures and
	// recycling records no longer funnels through the pepoch goroutine
	// alone. Default max(2, GOMAXPROCS), capped at 8.
	ReleaseShards int
	// EncodeStripes is the size of the shared encode pool loggers stripe
	// large batch encodes across (a flush splits its sorted batch range
	// into contiguous stripes encoded concurrently, then written in order —
	// byte-identical to the serial encode). Values <= 1 disable striping;
	// small flushes always encode inline. Default GOMAXPROCS, capped at 8.
	EncodeStripes int
}

// DefaultConfig returns the standard logging configuration for the given
// scheme.
func DefaultConfig(kind Kind) Config {
	return Config{Kind: kind, BatchEpochs: 100, FlushInterval: time.Millisecond, Sync: true}
}

// BatchFileName names the batch file of a logger.
func BatchFileName(loggerID int, batch uint32) string {
	return fmt.Sprintf("log-%03d-%08d", loggerID, batch)
}

// PepochFileName is the persistent-epoch marker file.
const PepochFileName = "pepoch.log"

// LogSet is the logging subsystem: one logger goroutine per device, plus
// the pepoch thread tracking the slowest logger (Appendix A.1).
type LogSet struct {
	mgr     *txn.Manager
	cfg     Config
	loggers []*Logger

	pepoch    atomic.Uint32
	pepochDev *simdisk.Device
	// peAppends counts marker records appended since the last compaction;
	// every pepochCompactEvery appends the marker is rewritten to a single
	// record (crash-safe sidecar + rename), bounding both the file and the
	// scan recovery pays on it.
	peAppends int

	// peMu/peCond wake WaitForEpoch callers when the persistent epoch
	// advances — broadcast from updatePepoch while logging is active, and
	// from the manager's epoch-movement callback when it is not (an
	// inactive set's PersistedEpoch shadows the safe epoch) — replacing the
	// former 100µs busy-poll loops in both modes.
	peMu   sync.Mutex
	peCond *sync.Cond

	// Release sharding: flushed-but-unreleased records are partitioned by
	// committing worker ID over relShards; each pepoch pass publishes
	// (relPE, relNow) and fans the drain out to the shard goroutines,
	// waiting for all of them (one pass = one release timestamp). After
	// shutdown stops the shard goroutines (relStop), relInline routes the
	// pass through the caller's goroutine instead. obsMu serializes the
	// OnRelease observer across shards — the callback contract predates
	// sharding and observers do not expect concurrent calls.
	relShards   []*relShard
	relStop     chan struct{}
	relStopOnce sync.Once
	relWGrp     sync.WaitGroup
	relPassWG   sync.WaitGroup
	relPE       uint32
	relNow      time.Time
	// relParallel is true only while the shard goroutines run (between
	// Start and shutdown's stopReleaseWorkers): outside that window —
	// including updatePepoch calls on sets never started, as some tests
	// do — the pass drains inline on the caller. Written before the pepoch
	// goroutine is spawned and after it is joined, so reads from the pass
	// owner are ordered without atomics.
	relParallel bool
	obsMu       sync.Mutex

	// Encode striping: a shared pool of encode workers loggers submit
	// contiguous batch stripes to (see Config.EncodeStripes). nil when
	// striping is disabled or Start was never called; closed by shutdown
	// after the final flush.
	encCh       chan encJob
	encStopOnce sync.Once

	stopCh  chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// relShard is one release shard: the flushed-but-unreleased records of the
// workers whose ID hashes to it, in per-worker commit order.
type relShard struct {
	mu      sync.Mutex
	pending []*txn.Committed
	// relBuf is take's reused output buffer. Drains of one shard are
	// serialized (its own goroutine while running, the shutdown path's
	// inline passes after), and each drain finishes with the returned slice
	// before the next, so one buffer suffices.
	relBuf []*txn.Committed
	signal chan struct{}
}

// take removes and returns pending records with epoch <= pe, compacting the
// kept records in place (vacated slots cleared so released records are not
// pinned).
func (sh *relShard) take(pe uint32) []*txn.Committed {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := sh.relBuf[:0]
	kept := sh.pending[:0]
	for _, c := range sh.pending {
		if c.Epoch <= pe {
			out = append(out, c)
		} else {
			kept = append(kept, c)
		}
	}
	clear(sh.pending[len(kept):])
	sh.pending = kept
	sh.relBuf = out
	return out
}

// encJob asks the encode pool to frame recs into *out (reset to length 0
// first); wg.Done signals completion. The out buffer is owned by the
// submitting logger and reused across flushes.
type encJob struct {
	kind Kind
	recs []*txn.Committed
	out  *[]byte
	wg   *sync.WaitGroup
}

// Logger is one logging thread bound to one device, draining a subset of
// workers.
type Logger struct {
	id  int
	set *LogSet
	dev *simdisk.Device

	workers []*txn.Worker
	wmu     sync.Mutex

	persisted atomic.Uint32

	// dead latches after a failed flush sync (the device power-failed):
	// records the logger buffered after that point were never durable, so
	// persisted must never advance again — an empty later flush jumping
	// persisted past unsynced records would release them as durable and
	// recovery would not replay them.
	dead bool

	// batch state
	curBatch  uint32
	curWriter *simdisk.Writer

	// recs and encBuf are flush scratch, reused across flushes (flush runs
	// on the single logger goroutine): drained commit records and the
	// encode buffer one flush's records are framed into.
	recs   []*txn.Committed
	encBuf []byte

	// Sync-latency telemetry for the gray-failure watchdog: syncStart is
	// the unix-nano start of the sync currently blocking the logger
	// goroutine (0 when none), so a hung device shows up as an ever-growing
	// in-flight age even though the sync never returns to be measured.
	syncStart atomic.Int64
	syncEWMA  health.EWMA
	lastSync  atomic.Int64
	// lastSyncAt is the unix-nano completion time of the most recent sync:
	// the EWMA is evidence of slowness only while a sample is fresh (see
	// ewmaEvidenceWindow).
	lastSyncAt atomic.Int64
	syncs      atomic.Uint64

	// stripeBufs are the per-stripe encode buffers a striped flush frames
	// into (reused across flushes); encWG is the reused completion group
	// for one flush's stripe jobs; widBuf is shardPut's reused
	// shard-index cache.
	stripeBufs [][]byte
	encWG      sync.WaitGroup
	widBuf     []int
}

// NewLogSet builds a logging subsystem with one logger per device. With
// Kind == Off it is inert (no goroutines, PersistedEpoch tracks SafeEpoch).
func NewLogSet(mgr *txn.Manager, cfg Config, devices []*simdisk.Device) *LogSet {
	if cfg.BatchEpochs == 0 {
		cfg.BatchEpochs = DefaultBatchEpochs
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Millisecond
	}
	if cfg.ReleaseShards <= 0 {
		cfg.ReleaseShards = max(2, min(8, runtime.GOMAXPROCS(0)))
	}
	if cfg.EncodeStripes == 0 {
		cfg.EncodeStripes = min(8, runtime.GOMAXPROCS(0))
	}
	s := &LogSet{mgr: mgr, cfg: cfg, stopCh: make(chan struct{})}
	s.peCond = sync.NewCond(&s.peMu)
	if cfg.Kind == Off || len(devices) == 0 {
		// Inactive: PersistedEpoch shadows the safe epoch, which advances
		// with the epoch clock and worker marks — not through updatePepoch.
		// Route those movements into the same condition variable so
		// WaitForEpoch parks instead of busy-polling (the former Off-mode
		// caveat).
		mgr.SetOnAdvance(func() {
			s.peMu.Lock()
			s.peCond.Broadcast()
			s.peMu.Unlock()
		})
		return s
	}
	s.pepoch.Store(cfg.ResumeEpoch)
	s.pepochDev = devices[0]
	for i, d := range devices {
		lg := &Logger{id: i, set: s, dev: d}
		lg.persisted.Store(cfg.ResumeEpoch)
		s.loggers = append(s.loggers, lg)
	}
	s.relStop = make(chan struct{})
	for i := 0; i < cfg.ReleaseShards; i++ {
		s.relShards = append(s.relShards, &relShard{signal: make(chan struct{})})
	}
	return s
}

// Active reports whether the log set actually logs (Kind != Off and at
// least one device).
func (s *LogSet) Active() bool { return len(s.loggers) > 0 }

// AttachWorker assigns a worker to a logger (round-robin) and defers the
// worker's durability to the release path, so futures of its commits
// resolve at group commit instead of at execution. Workers may be attached
// before or after Start, but always before they execute their first
// transaction. With logging off this is a no-op: durability is immediate.
func (s *LogSet) AttachWorker(w *txn.Worker) {
	if len(s.loggers) == 0 {
		return
	}
	w.SetDurabilityDeferred(true)
	lg := s.loggers[w.ID()%len(s.loggers)]
	lg.wmu.Lock()
	lg.workers = append(lg.workers, w)
	lg.wmu.Unlock()
}

// Start launches the logger and pepoch goroutines.
func (s *LogSet) Start() {
	for _, lg := range s.loggers {
		s.wg.Add(1)
		go func(lg *Logger) {
			defer s.wg.Done()
			t := time.NewTicker(s.cfg.FlushInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					lg.flush(s.mgr.SafeEpoch())
				case <-s.stopCh:
					return
				}
			}
		}(lg)
	}
	if len(s.loggers) > 0 {
		// Release-shard drains, launched before the pepoch goroutine so
		// every fanned-out pass has receivers. Lifecycle: shards only exit
		// via relStop, which shutdown closes strictly after the pepoch
		// goroutine has stopped (s.wg.Wait) — so a pass can never be
		// stranded mid-fanout with no receiver.
		for _, sh := range s.relShards {
			s.relWGrp.Add(1)
			go func(sh *relShard) {
				defer s.relWGrp.Done()
				for {
					select {
					case <-sh.signal:
						s.drainShard(sh)
						s.relPassWG.Done()
					case <-s.relStop:
						return
					}
				}
			}(sh)
		}
		s.relParallel = true
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(s.cfg.FlushInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.updatePepoch()
				case <-s.stopCh:
					return
				}
			}
		}()
		// The shared encode pool (striped batch encoding). Closed by
		// shutdown after the final flush; encode workers never block on
		// anything but the job channel, so loggers' blocking submits always
		// drain.
		if s.cfg.EncodeStripes > 1 {
			s.encCh = make(chan encJob, 2*s.cfg.EncodeStripes)
			for i := 0; i < s.cfg.EncodeStripes; i++ {
				go func() {
					for j := range s.encCh {
						*j.out = encodeRecords((*j.out)[:0], j.kind, j.recs)
						j.wg.Done()
					}
				}()
			}
		}
	}
}

// stopReleaseWorkers stops the shard goroutines and flips the release path
// to inline (shutdown's final passes run on the caller). Must only be
// called after the pepoch goroutine has stopped.
func (s *LogSet) stopReleaseWorkers() {
	if s.relStop == nil {
		return
	}
	s.relStopOnce.Do(func() { close(s.relStop) })
	s.relWGrp.Wait()
	s.relParallel = false
}

// stopEncodeWorkers shuts the encode pool down. Must only be called once no
// further flush can run.
func (s *LogSet) stopEncodeWorkers() {
	s.encStopOnce.Do(func() {
		if s.encCh != nil {
			close(s.encCh)
		}
	})
}

// Close flushes everything outstanding (workers should be retired first so
// the safe epoch covers all buffered commits) and stops the goroutines.
func (s *LogSet) Close() {
	if s.stopped.CompareAndSwap(false, true) {
		close(s.stopCh)
	}
	s.wg.Wait()
	// With the pepoch goroutine stopped, no pass is in flight: stop the
	// shard goroutines and run the final flush + release pass inline.
	s.stopReleaseWorkers()
	safe := s.mgr.SafeEpoch()
	for _, lg := range s.loggers {
		lg.flush(safe)
		lg.closeBatch()
	}
	s.updatePepoch()
	// Anything still unreleased (commits of never-retired workers whose
	// epoch never became safe) will not be flushed by anyone: fail their
	// futures so no caller waits forever.
	s.failOutstanding(ErrClosed)
	s.stopEncodeWorkers()
}

// Abort stops the logger and pepoch goroutines without any final flush —
// the logging pipeline's half of a simulated power failure. Crash tests
// call Abort, then Device.Crash, so nothing writes "after" the failure.
func (s *LogSet) Abort() {
	if s.stopped.CompareAndSwap(false, true) {
		close(s.stopCh)
	}
	s.wg.Wait()
	s.stopReleaseWorkers()
	// Every commit the pipeline still owned dies with it: resolve its
	// future with ErrCrashed so clients observe the lost tail instead of
	// waiting forever, and fail each worker's durability so transactions
	// executed after the crash resolve immediately too.
	s.failOutstanding(ErrCrashed)
	s.stopEncodeWorkers()
}

// failOutstanding resolves every future still owned by the logging
// pipeline — buffered on an attached worker, or flushed but not yet covered
// by the persistent epoch — with err. It runs after the logger goroutines
// have stopped, so no concurrent release can race it; a future that was
// already released is left untouched (resolve-once).
func (s *LogSet) failOutstanding(err error) {
	now := time.Now()
	for _, lg := range s.loggers {
		lg.wmu.Lock()
		workers := append([]*txn.Worker(nil), lg.workers...)
		lg.wmu.Unlock()
		for _, w := range workers {
			w.FailDurability(err)
		}
	}
	for _, sh := range s.relShards {
		failed := sh.take(^uint32(0))
		for _, c := range failed {
			if c.Future != nil {
				c.Future.Resolve(now, err)
			}
		}
		if s.cfg.OnRelease == nil {
			txn.RecycleCommitted(failed)
		}
	}
}

// PersistedEpoch returns the current persistent epoch (pepoch): every
// transaction with a commit epoch at or below it is durable on all loggers.
func (s *LogSet) PersistedEpoch() uint32 {
	if len(s.loggers) == 0 {
		// Logging disabled: everything "persists" immediately.
		return s.mgr.SafeEpoch()
	}
	return s.pepoch.Load()
}

// WaitForEpoch blocks until the persistent epoch reaches e (tests and
// clean shutdown). Waiters park on a condition variable — signaled from
// updatePepoch while logging is active, and from the manager's
// epoch-movement callback when it is not (the inactive persistent epoch
// shadows the safe epoch) — so no mode busy-polls.
func (s *LogSet) WaitForEpoch(e uint32) {
	s.peMu.Lock()
	for s.PersistedEpoch() < e {
		s.peCond.Wait()
	}
	s.peMu.Unlock()
}

// updatePepoch recomputes the minimum persisted epoch, records it durably
// in pepoch.log when (and only when) it advanced, and releases covered
// transactions. The release scan runs every pass, advance or not: a flush
// can land records whose epochs an earlier pass already covered (the safe
// epoch reached them between flushes), and those must not sit pending until
// the next advance — or worse, be failed with ErrClosed by a shutdown that
// never saw pepoch move again.
func (s *LogSet) updatePepoch() {
	if len(s.loggers) == 0 {
		return
	}
	pe := s.loggers[0].persisted.Load()
	for _, lg := range s.loggers[1:] {
		if p := lg.persisted.Load(); p < pe {
			pe = p
		}
	}
	if pe > s.pepoch.Load() {
		// The marker is an append-only sequence of 8-byte (pe, ^pe) records;
		// readers take the last valid one, so a crash mid-append tears only
		// the new record and the previous durable pepoch survives. (A
		// create-truncate-rewrite here would have a window where a crash
		// destroys the marker entirely, un-acknowledging every durable
		// commit.) Every pepochCompactEvery appends the file is compacted
		// back to one record through the same crash-safe sidecar+rename
		// protocol tail repair uses, so it never grows without bound.
		if s.peAppends >= pepochCompactEvery {
			if err := writePepochMarker(s.pepochDev, pe); err != nil {
				return
			}
			s.peAppends = 0
		} else {
			w := s.pepochDev.Append(PepochFileName)
			var buf [8]byte
			binary.LittleEndian.PutUint32(buf[:4], pe)
			binary.LittleEndian.PutUint32(buf[4:], pe^0xFFFFFFFF) // trivial check word
			if _, err := w.Write(buf[:]); err != nil {
				return
			}
			if err := w.Sync(); err != nil {
				// The advance never became durable: recovery would read the
				// old pepoch, so releasing against the new one would
				// acknowledge commits recovery will not replay. Keep
				// releasing at the old durable cut.
				return
			}
			s.peAppends++
		}
		s.pepoch.Store(pe)
		// Wake WaitForEpoch parkers. The broadcast happens under peMu so a
		// waiter that just checked the old pepoch is already parked (or
		// holds the lock and will see the new value); the store above may
		// stay outside the lock.
		s.peMu.Lock()
		s.peCond.Broadcast()
		s.peMu.Unlock()
		if s.cfg.OnPepochAdvance != nil {
			s.cfg.OnPepochAdvance(pe)
		}
	}
	// Release covered transactions across the shards. The scan runs every
	// pass, advance or not (see the function comment).
	s.releasePass(pe)
}

// releasePass drains every release shard up to pe: one pass, one release
// timestamp. While the shard goroutines run, the pass fans out to them and
// waits (parallel drain, but the pepoch goroutine still owns the pass —
// the next marker append starts only after every future of this cut is
// resolved, preserving the old serial scan's epoch-ordered resolution).
// After shutdown stops the goroutines, the pass runs inline.
func (s *LogSet) releasePass(pe uint32) {
	if len(s.relShards) == 0 {
		return
	}
	s.relPE = pe
	s.relNow = time.Now()
	if !s.relParallel {
		for _, sh := range s.relShards {
			s.drainShard(sh)
		}
		return
	}
	s.relPassWG.Add(len(s.relShards))
	for _, sh := range s.relShards {
		sh.signal <- struct{}{}
	}
	s.relPassWG.Wait()
}

// drainShard resolves and hands off one shard's records covered by the
// current pass. Resolve each durable-commit future, then surface the same
// batch to the OnRelease observer (the legacy callback rides the
// future-release path — both see exactly the transactions whose epochs the
// pass's pepoch covers). Without an observer the records have no remaining
// owner and recycle into the commit-record pool; an observer takes
// ownership instead (it may retain them past the call).
func (s *LogSet) drainShard(sh *relShard) {
	released := sh.take(s.relPE)
	if len(released) == 0 {
		return
	}
	now := s.relNow
	for _, c := range released {
		if c.Future != nil {
			c.Future.Resolve(now, nil)
		}
	}
	if s.cfg.OnRelease != nil {
		// The observer owns what it receives and may retain it, so it gets
		// its own slice — the shard's release buffer is rewritten on the
		// next pass. Only this observer-configured (legacy, non-hot) path
		// pays the copy; obsMu keeps the pre-sharding one-caller-at-a-time
		// contract.
		s.obsMu.Lock()
		s.cfg.OnRelease(append([]*txn.Committed(nil), released...))
		s.obsMu.Unlock()
	} else {
		txn.RecycleCommitted(released)
	}
}

// shardPut distributes freshly persisted records to their release shards
// (by committing worker ID, so one worker's records stay on one shard in
// commit order). Runs on the logger goroutine after a successful sync.
// Shard indices are cached up front (widBuf): a record handed to a shard
// is owned by the release path immediately — it can be resolved and
// recycled while later iterations still run — so no field of it may be
// read after its append.
func (lg *Logger) shardPut(recs []*txn.Committed) {
	shards := lg.set.relShards
	n := len(shards)
	if n == 1 {
		sh := shards[0]
		sh.mu.Lock()
		sh.pending = append(sh.pending, recs...)
		sh.mu.Unlock()
		return
	}
	wid := lg.widBuf[:0]
	for _, c := range recs {
		wid = append(wid, c.WID%n)
	}
	lg.widBuf = wid
	for i, sh := range shards {
		locked := false
		for k, c := range recs {
			if wid[k] != i {
				continue
			}
			if !locked {
				sh.mu.Lock()
				locked = true
			}
			sh.pending = append(sh.pending, c)
		}
		if locked {
			sh.mu.Unlock()
		}
	}
}

// SyncStats reports one logger device's sync-latency telemetry.
type SyncStats struct {
	Device string        `json:"device"`
	EWMA   time.Duration `json:"ewma"`
	Last   time.Duration `json:"last"`
	// Inflight is how long the currently blocked sync has been running
	// (zero when no sync is in flight) — the signal that exposes a hung
	// device whose sync never returns.
	Inflight time.Duration `json:"inflight,omitempty"`
	Syncs    uint64        `json:"syncs"`
}

// SyncStats returns per-device sync telemetry, in logger order (empty with
// logging off).
func (s *LogSet) SyncStats() []SyncStats {
	now := time.Now()
	out := make([]SyncStats, 0, len(s.loggers))
	for _, lg := range s.loggers {
		st := SyncStats{
			Device: lg.dev.Name(),
			EWMA:   lg.syncEWMA.Load(),
			Last:   time.Duration(lg.lastSync.Load()),
			Syncs:  lg.syncs.Load(),
		}
		if at := lg.syncStart.Load(); at != 0 {
			st.Inflight = now.Sub(time.Unix(0, at))
		}
		out = append(out, st)
	}
	return out
}

// ewmaEvidenceWindow bounds how long a completed sync's latency remains
// evidence that the device is slow. An idle device produces no samples, so
// without an expiry a breached average would hold the sync signal above
// budget forever — and a brownout that sheds all traffic (hence stops
// producing syncs) could never heal. Past the window the EWMA term is
// ignored: no sync in flight and none completed recently means the device
// is idle, not slow, and an idle device delays no one. The in-flight term
// is unaffected — a hung sync stays visible for as long as it hangs.
const ewmaEvidenceWindow = 250 * time.Millisecond

// SyncProbe returns a watchdog signal: the worst, over all devices, of the
// smoothed sync latency (while fresh — see ewmaEvidenceWindow) and the age
// of any sync currently blocked. The in-flight term is what catches a
// permanently hung sync — a latency that never completes produces no
// sample, but its age grows every sweep.
func (s *LogSet) SyncProbe() func(now time.Time) time.Duration {
	return func(now time.Time) time.Duration {
		var worst time.Duration
		for _, lg := range s.loggers {
			if at := lg.lastSyncAt.Load(); at != 0 && now.Sub(time.Unix(0, at)) <= ewmaEvidenceWindow {
				if v := lg.syncEWMA.Load(); v > worst {
					worst = v
				}
			}
			if at := lg.syncStart.Load(); at != 0 {
				if v := now.Sub(time.Unix(0, at)); v > worst {
					worst = v
				}
			}
		}
		return worst
	}
}

// pepochCompactEvery bounds the append-only marker: after this many
// appended records the marker is rewritten to a single record (4 KiB of
// appends between compactions), so neither the file nor recovery's scan of
// it grows with uptime.
const pepochCompactEvery = 512

// scanPepochRecords walks the marker's 8-byte (pe, ^pe) records and
// returns the byte length of the valid prefix and the last valid record's
// epoch. It is the single definition of the marker format, shared by
// ReadPepoch and tail repair — a second copy drifting is exactly how
// misalignment bugs are born.
func scanPepochRecords(b []byte) (valid int, pe uint32) {
	for valid+8 <= len(b) {
		v := binary.LittleEndian.Uint32(b[valid:])
		if binary.LittleEndian.Uint32(b[valid+4:])^0xFFFFFFFF != v {
			break // torn/corrupt record: everything before it is valid
		}
		pe = v
		valid += 8
	}
	return valid, pe
}

// writePepochMarker rewrites the marker as a single record holding pe,
// staged in a sidecar, synced, and atomically renamed — the crash-safe
// compaction path. The sidecar uses the repair prefix so a crashed
// compaction's leftovers are swept by the next RepairTail pass.
func writePepochMarker(dev *simdisk.Device, pe uint32) error {
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], pe)
	binary.LittleEndian.PutUint32(buf[4:], pe^0xFFFFFFFF)
	side := repairSidecarPrefix + PepochFileName
	w := dev.Create(side)
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	return dev.Rename(side, PepochFileName)
}

// ReadPepoch recovers the persistent epoch marker from a device: the last
// valid record of the append-only marker file. A torn or corrupt tail —
// a crash mid-append — falls back to the previous record; an existing but
// empty file (created, never synced) reads as 0, matching a crash before
// the first durable advance.
func ReadPepoch(dev *simdisk.Device) (uint32, error) {
	r, err := dev.Open(PepochFileName)
	if err != nil {
		return 0, err
	}
	b, err := r.ReadAll()
	if err != nil {
		return 0, err
	}
	_, pe := scanPepochRecords(b)
	return pe, nil
}

// flush drains the logger's workers up to safeEpoch, appends the records to
// the right batch files (in epoch order), and syncs once. The whole pass is
// allocation-free in steady state: records drain into the logger's recycled
// scratch slice, batch grouping is a stable in-place sort (no per-flush
// map), and every record frames itself directly into one reused encode
// buffer.
func (lg *Logger) flush(safeEpoch uint32) {
	lg.wmu.Lock()
	workers := lg.workers
	lg.wmu.Unlock()

	recs := lg.recs[:0]
	for _, w := range workers {
		recs = w.DrainInto(recs, safeEpoch)
	}
	lg.recs = recs
	if len(recs) == 0 {
		// Even with nothing to write, the epoch may have advanced — but
		// never past a failed sync: a dead logger's durability is frozen.
		if !lg.dead && safeEpoch > lg.persisted.Load() {
			lg.persisted.Store(safeEpoch)
		}
		return
	}
	// Group records by batch: a stable sort on batch id keeps the former
	// map-of-slices' drain order within each batch, and a flush almost
	// always lands in a single batch, making this one comparison pass.
	batchEpochs := lg.set.cfg.BatchEpochs
	slices.SortStableFunc(recs, func(a, b *txn.Committed) int {
		return cmp.Compare(a.Epoch/batchEpochs, b.Epoch/batchEpochs)
	})
	for lo := 0; lo < len(recs); {
		b := recs[lo].Epoch / batchEpochs
		hi := lo + 1
		for hi < len(recs) && recs[hi].Epoch/batchEpochs == b {
			hi++
		}
		w := lg.writerFor(b)
		if lg.set.encCh != nil && hi-lo >= 2*stripeMinRecs {
			lg.encodeStriped(w, recs[lo:hi])
		} else {
			buf := lg.encBuf[:0]
			for _, c := range recs[lo:hi] {
				buf = encodeRecord(buf, lg.set.cfg.Kind, c)
			}
			lg.encBuf = buf
			w.Write(buf)
		}
		lo = hi
	}
	if lg.set.cfg.Sync && lg.curWriter != nil {
		if err := lg.timedSync(lg.curWriter); err != nil {
			// Power failure (or injected fault): nothing this flush wrote
			// is durable, and the records must NOT reach pending — a
			// record flushed into an epoch the pepoch already covers would
			// be released (acknowledged durable) by the very next release
			// scan even though its bytes die with the crash. Fail the
			// futures as crashed right here; persisted stays put, now and
			// forever (see dead).
			lg.dead = true
			now := time.Now()
			for _, c := range recs {
				if c.Future != nil {
					c.Future.Resolve(now, ErrCrashed)
				}
			}
			if lg.set.cfg.OnRelease == nil {
				txn.RecycleCommitted(recs)
			}
			return
		}
	}
	if !lg.dead && safeEpoch > lg.persisted.Load() {
		lg.persisted.Store(safeEpoch)
	}

	lg.shardPut(recs)
}

// stripeMinRecs is the smallest stripe worth dispatching to the encode
// pool; a flush is striped only when it can fill at least two such
// stripes. Small flushes — the micro-benchmark and low-load regime — stay
// on the inline allocation-free path.
const stripeMinRecs = 256

// encodeStriped splits one batch's sorted record range into contiguous
// stripes, encodes them concurrently on the set's encode pool, and writes
// the stripe buffers in order — byte-identical to the serial encode, so
// batch-file contents do not depend on the stripe geometry.
func (lg *Logger) encodeStriped(w *simdisk.Writer, recs []*txn.Committed) {
	stripes := len(recs) / stripeMinRecs
	if mx := lg.set.cfg.EncodeStripes; stripes > mx {
		stripes = mx
	}
	for len(lg.stripeBufs) < stripes {
		lg.stripeBufs = append(lg.stripeBufs, nil)
	}
	per, rem := len(recs)/stripes, len(recs)%stripes
	lg.encWG.Add(stripes)
	start := 0
	for si := 0; si < stripes; si++ {
		cnt := per
		if si < rem {
			cnt++
		}
		lg.set.encCh <- encJob{
			kind: lg.set.cfg.Kind,
			recs: recs[start : start+cnt],
			out:  &lg.stripeBufs[si],
			wg:   &lg.encWG,
		}
		start += cnt
	}
	lg.encWG.Wait()
	for si := 0; si < stripes; si++ {
		w.Write(lg.stripeBufs[si])
	}
}

// encodeRecords frames recs into buf in order (the encode pool's unit of
// work).
func encodeRecords(buf []byte, kind Kind, recs []*txn.Committed) []byte {
	for _, c := range recs {
		buf = encodeRecord(buf, kind, c)
	}
	return buf
}

// writerFor returns the writer of the given batch, rotating files as the
// batch id advances.
func (lg *Logger) writerFor(batch uint32) *simdisk.Writer {
	if lg.curWriter != nil && lg.curBatch == batch {
		return lg.curWriter
	}
	lg.closeBatch()
	lg.curBatch = batch
	lg.curWriter = lg.dev.Create(BatchFileName(lg.id, batch))
	hdr := appendFileHeader(nil, lg.set.cfg.Kind, lg.id, batch)
	lg.curWriter.Write(hdr)
	return lg.curWriter
}

func (lg *Logger) closeBatch() {
	if lg.curWriter != nil && lg.set.cfg.Sync {
		lg.timedSync(lg.curWriter)
	}
	lg.curWriter = nil
}

// timedSync wraps a device sync with the latency telemetry the watchdog
// samples: the in-flight marker is set BEFORE the sync so a hung device is
// observable while the call is still blocked.
func (lg *Logger) timedSync(w *simdisk.Writer) error {
	start := time.Now()
	lg.syncStart.Store(start.UnixNano())
	err := w.Sync()
	d := time.Since(start)
	lg.syncStart.Store(0)
	lg.syncEWMA.Observe(d)
	lg.lastSync.Store(int64(d))
	lg.lastSyncAt.Store(time.Now().UnixNano())
	lg.syncs.Add(1)
	return err
}
