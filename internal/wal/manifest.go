package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"strings"

	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
)

// Catalog manifest
//
// Start persists a description of everything recovery needs to agree on with
// the original instance — table schemas in catalog order, procedure names in
// registration order (registration order assigns the procedure IDs recorded
// in command logs), per-procedure operation fingerprints, the logging kind,
// the batch-epoch geometry, and a fingerprint of the deterministic initial
// population. Restart validates a declared Blueprint against this record and
// fails loudly on drift instead of silently misreplaying command logs
// against the wrong catalog.

// CatalogManifestName is the manifest file, written (synced) to the first
// device alongside the pepoch marker.
const CatalogManifestName = "catalog.manifest"

// ErrNoManifest reports a device with no catalog manifest — the instance
// that wrote the logs was never started through the manifest-persisting
// lifecycle (Launch / Start).
var ErrNoManifest = errors.New("wal: no catalog manifest on device")

// ErrManifestMismatch reports a Blueprint that diverges from the persisted
// catalog manifest; the wrapping error carries the field-level diagnostic.
var ErrManifestMismatch = errors.New("wal: blueprint does not match catalog manifest")

// TableDef is one table's schema as recorded in the manifest.
type TableDef struct {
	Name    string
	Columns []tuple.ColumnDef
}

// ProcDef is one registered procedure as recorded in the manifest, in
// registration order. Fingerprint hashes the compiled operation stream, so a
// same-named procedure whose body changed is still caught.
type ProcDef struct {
	Name        string
	Fingerprint uint64
}

// CatalogManifest is the persisted catalog description.
type CatalogManifest struct {
	// Kind is the logging scheme the instance ran under; Restart derives the
	// recovery scheme from it when the caller does not pin one.
	Kind Kind
	// BatchEpochs is the epochs-per-batch-file geometry. A restarted
	// instance must keep it so resumed epochs map to fresh batch files
	// instead of colliding with reloaded ones.
	BatchEpochs uint32
	// EpochNanos is the group-commit epoch interval in nanoseconds. Restart
	// inherits it by default so the restarted instance keeps the crashed
	// instance's durability cadence (and with it its commit latency).
	EpochNanos uint64
	// Tables lists schemas in catalog (table-ID) order.
	Tables []TableDef
	// Procs lists procedures in registration (procedure-ID) order.
	Procs []ProcDef
	// SeedFP fingerprints the deterministic initial population (see
	// SeedHash; an instance with no seeded rows records the empty-hash
	// value). SeedUnverified marks an instance whose population was
	// installed outside the fingerprinting seed path — Diff refuses to
	// validate such a manifest.
	SeedFP uint64
}

const manifestMagic = 0x5041434D // "PACM"

// SeedUnverified is the SeedFP sentinel for instances whose initial
// population was installed outside the fingerprinting seed path (e.g. an
// adopted workload catalog populated directly). Their logs are recoverable
// with the raw offline path, but a blueprint restart cannot prove the
// population matches, so Diff rejects the manifest outright instead of
// letting a nil-seed blueprint validate against an unseeded catalog.
const SeedUnverified = ^uint64(0)

// EncodeCatalogManifest serializes m with a magic/version/CRC frame.
func EncodeCatalogManifest(m *CatalogManifest) []byte {
	var p []byte
	p = append(p, byte(m.Kind))
	p = binary.LittleEndian.AppendUint32(p, m.BatchEpochs)
	p = binary.LittleEndian.AppendUint64(p, m.EpochNanos)
	p = binary.LittleEndian.AppendUint64(p, m.SeedFP)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(m.Tables)))
	for _, t := range m.Tables {
		p = appendString(p, t.Name)
		p = binary.LittleEndian.AppendUint16(p, uint16(len(t.Columns)))
		for _, c := range t.Columns {
			p = appendString(p, c.Name)
			p = append(p, byte(c.Kind))
		}
	}
	p = binary.LittleEndian.AppendUint16(p, uint16(len(m.Procs)))
	for _, pr := range m.Procs {
		p = appendString(p, pr.Name)
		p = binary.LittleEndian.AppendUint64(p, pr.Fingerprint)
	}
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, manifestMagic)
	buf = append(buf, fileVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(p, crcTable))
	return append(buf, p...)
}

// DecodeCatalogManifest parses an encoded manifest.
func DecodeCatalogManifest(b []byte) (*CatalogManifest, error) {
	if len(b) < 13 {
		return nil, fmt.Errorf("wal: catalog manifest truncated")
	}
	if binary.LittleEndian.Uint32(b) != manifestMagic {
		return nil, fmt.Errorf("wal: catalog manifest bad magic")
	}
	if b[4] != fileVersion {
		return nil, fmt.Errorf("wal: catalog manifest unsupported version %d", b[4])
	}
	plen := int(binary.LittleEndian.Uint32(b[5:]))
	crc := binary.LittleEndian.Uint32(b[9:])
	if len(b) < 13+plen {
		return nil, fmt.Errorf("wal: catalog manifest truncated")
	}
	p := b[13 : 13+plen]
	if crc32.Checksum(p, crcTable) != crc {
		return nil, fmt.Errorf("wal: catalog manifest corrupt")
	}
	d := &manifestDecoder{b: p}
	m := &CatalogManifest{
		Kind:        Kind(d.byte()),
		BatchEpochs: d.u32(),
		EpochNanos:  d.u64(),
		SeedFP:      d.u64(),
	}
	for n := d.u16(); n > 0 && d.err == nil; n-- {
		t := TableDef{Name: d.str()}
		for c := d.u16(); c > 0 && d.err == nil; c-- {
			t.Columns = append(t.Columns, tuple.ColumnDef{Name: d.str(), Kind: tuple.Kind(d.byte())})
		}
		m.Tables = append(m.Tables, t)
	}
	for n := d.u16(); n > 0 && d.err == nil; n-- {
		m.Procs = append(m.Procs, ProcDef{Name: d.str(), Fingerprint: d.u64()})
	}
	if d.err != nil {
		return nil, d.err
	}
	return m, nil
}

type manifestDecoder struct {
	b   []byte
	err error
}

func (d *manifestDecoder) take(n int) []byte {
	if d.err != nil || len(d.b) < n {
		d.err = fmt.Errorf("wal: catalog manifest truncated")
		return make([]byte, n)
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *manifestDecoder) byte() byte  { return d.take(1)[0] }
func (d *manifestDecoder) u16() uint16 { return binary.LittleEndian.Uint16(d.take(2)) }
func (d *manifestDecoder) u32() uint32 { return binary.LittleEndian.Uint32(d.take(4)) }
func (d *manifestDecoder) u64() uint64 { return binary.LittleEndian.Uint64(d.take(8)) }
func (d *manifestDecoder) str() string {
	n := int(d.u16())
	return string(d.take(n))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// WriteCatalogManifest persists m to the device: staged in a sidecar,
// synced, then atomically renamed into place. A restart rewrites the
// manifest through this same path, so a crash mid-rewrite can never leave
// the device without a readable manifest — either the old one or the new
// one is in place, and a stale sidecar is harmlessly overwritten by the
// next write.
func WriteCatalogManifest(dev *simdisk.Device, m *CatalogManifest) error {
	side := "staged~" + CatalogManifestName
	w := dev.Create(side)
	if _, err := w.Write(EncodeCatalogManifest(m)); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	return dev.Rename(side, CatalogManifestName)
}

// ReadCatalogManifest loads the manifest from the device; ErrNoManifest if
// the instance never persisted one.
func ReadCatalogManifest(dev *simdisk.Device) (*CatalogManifest, error) {
	r, err := dev.Open(CatalogManifestName)
	if err != nil {
		if errors.Is(err, simdisk.ErrNotExist) {
			return nil, fmt.Errorf("%w %s", ErrNoManifest, dev.Name())
		}
		return nil, err
	}
	b, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	return DecodeCatalogManifest(b)
}

// Diff validates a declared catalog (built from the restart Blueprint)
// against the persisted manifest m. It returns nil when the blueprint can
// faithfully replay m's logs, or an ErrManifestMismatch-wrapped error whose
// message lists every divergence — reordered, missing, added, or reshaped
// tables and procedures, and a changed initial population.
func (m *CatalogManifest) Diff(decl *CatalogManifest) error {
	if m.SeedFP == SeedUnverified {
		return fmt.Errorf("%w: the manifest records a population installed outside the blueprint seed path (an adopted catalog populated directly); its seed cannot be validated — recover these devices with the offline DB.Recover instead", ErrManifestMismatch)
	}
	var probs []string
	if len(decl.Tables) != len(m.Tables) {
		probs = append(probs, fmt.Sprintf("table count: blueprint declares %d, manifest recorded %d",
			len(decl.Tables), len(m.Tables)))
	}
	for i := 0; i < len(decl.Tables) && i < len(m.Tables); i++ {
		d, r := decl.Tables[i], m.Tables[i]
		if d.Name != r.Name {
			probs = append(probs, fmt.Sprintf("table %d: blueprint declares %q, manifest recorded %q (table IDs are assigned in declaration order)",
				i, d.Name, r.Name))
			continue
		}
		if len(d.Columns) != len(r.Columns) {
			probs = append(probs, fmt.Sprintf("table %q: blueprint has %d columns, manifest recorded %d",
				d.Name, len(d.Columns), len(r.Columns)))
			continue
		}
		for c := range d.Columns {
			if d.Columns[c] != r.Columns[c] {
				probs = append(probs, fmt.Sprintf("table %q column %d: blueprint declares %s %v, manifest recorded %s %v",
					d.Name, c, d.Columns[c].Name, d.Columns[c].Kind, r.Columns[c].Name, r.Columns[c].Kind))
			}
		}
	}
	if len(decl.Procs) != len(m.Procs) {
		probs = append(probs, fmt.Sprintf("procedure count: blueprint registers %d, manifest recorded %d",
			len(decl.Procs), len(m.Procs)))
	}
	for i := 0; i < len(decl.Procs) && i < len(m.Procs); i++ {
		d, r := decl.Procs[i], m.Procs[i]
		if d.Name != r.Name {
			probs = append(probs, fmt.Sprintf("procedure %d: blueprint registers %q, manifest recorded %q (registration order assigns the procedure IDs replayed from command logs)",
				i, d.Name, r.Name))
			continue
		}
		if d.Fingerprint != r.Fingerprint {
			probs = append(probs, fmt.Sprintf("procedure %q: body changed since the logs were written (fingerprint %016x, manifest recorded %016x)",
				d.Name, d.Fingerprint, r.Fingerprint))
		}
	}
	if decl.SeedFP != m.SeedFP {
		probs = append(probs, fmt.Sprintf("initial population: blueprint seed fingerprint %016x, manifest recorded %016x (the seed must be deterministic and unchanged)",
			decl.SeedFP, m.SeedFP))
	}
	if len(probs) == 0 {
		return nil
	}
	return fmt.Errorf("%w:\n  - %s", ErrManifestMismatch, strings.Join(probs, "\n  - "))
}

// ProcFingerprint hashes a compiled procedure's identity-relevant shape: its
// name, parameter count, and the ordered operation stream (kind, table, flow
// dependencies, loop nesting). Two registrations that replay command-log
// records identically hash equal; a changed body hashes differently.
func ProcFingerprint(c *proc.Compiled) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(c.Name()))
	u(uint64(c.NumParams()))
	for _, op := range c.Ops() {
		u(uint64(op.Kind))
		h.Write([]byte(op.Table))
		u(uint64(len(op.FlowDeps)))
		for _, d := range op.FlowDeps {
			u(uint64(d))
		}
		u(uint64(len(op.Loops)))
	}
	return h.Sum64()
}

// SeedHash incrementally fingerprints a deterministic initial population:
// fold every seeded row in seeding order, then Sum. Launch and Restart both
// fold the blueprint's seed through it, so a drifted population is caught at
// restart instead of corrupting replay.
type SeedHash struct {
	h    uint64
	rows int
	buf  []byte
}

// NewSeedHash returns an empty fingerprint accumulator.
func NewSeedHash() *SeedHash {
	return &SeedHash{h: 14695981039346656037} // FNV-64a offset basis
}

// Rows returns how many rows have been folded.
func (s *SeedHash) Rows() int { return s.rows }

// Row folds one seeded row (in seeding order).
func (s *SeedHash) Row(table string, key uint64, vals tuple.Tuple) {
	s.rows++
	s.buf = s.buf[:0]
	s.buf = appendString(s.buf, table)
	s.buf = binary.LittleEndian.AppendUint64(s.buf, key)
	s.buf = tuple.AppendTuple(s.buf, vals)
	for _, b := range s.buf {
		s.h ^= uint64(b)
		s.h *= 1099511628211 // FNV-64 prime
	}
}

// Sum returns the fingerprint of the rows folded so far.
func (s *SeedHash) Sum() uint64 { return s.h }
