package wal

import (
	"errors"
	"strings"
	"testing"

	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

func bankManifest(t *testing.T) *CatalogManifest {
	t.Helper()
	b := workload.NewBank(10)
	m := &CatalogManifest{Kind: Command, BatchEpochs: 100, SeedFP: 42}
	for _, tb := range b.DB().Tables() {
		s := tb.Schema()
		td := TableDef{Name: tb.Name()}
		for i := 0; i < s.NumColumns(); i++ {
			td.Columns = append(td.Columns, s.Column(i))
		}
		m.Tables = append(m.Tables, td)
	}
	for _, c := range b.Registry().All() {
		m.Procs = append(m.Procs, ProcDef{Name: c.Name(), Fingerprint: ProcFingerprint(c)})
	}
	return m
}

func TestCatalogManifestRoundTrip(t *testing.T) {
	m := bankManifest(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	if err := WriteCatalogManifest(dev, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalogManifest(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.BatchEpochs != m.BatchEpochs || got.SeedFP != m.SeedFP {
		t.Fatalf("header mismatch: %+v vs %+v", got, m)
	}
	if len(got.Tables) != len(m.Tables) || len(got.Procs) != len(m.Procs) {
		t.Fatalf("shape mismatch: %d/%d tables, %d/%d procs",
			len(got.Tables), len(m.Tables), len(got.Procs), len(m.Procs))
	}
	for i := range m.Tables {
		if got.Tables[i].Name != m.Tables[i].Name || len(got.Tables[i].Columns) != len(m.Tables[i].Columns) {
			t.Errorf("table %d mismatch: %+v vs %+v", i, got.Tables[i], m.Tables[i])
		}
	}
	for i := range m.Procs {
		if got.Procs[i] != m.Procs[i] {
			t.Errorf("proc %d mismatch: %+v vs %+v", i, got.Procs[i], m.Procs[i])
		}
	}
	if err := m.Diff(got); err != nil {
		t.Errorf("identical manifests diff: %v", err)
	}
}

func TestCatalogManifestMissing(t *testing.T) {
	dev := simdisk.New("d", simdisk.Unlimited())
	if _, err := ReadCatalogManifest(dev); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("err = %v, want ErrNoManifest", err)
	}
}

func TestCatalogManifestDiffDiagnostics(t *testing.T) {
	m := bankManifest(t)

	reordered := *m
	reordered.Procs = []ProcDef{m.Procs[1], m.Procs[0]}
	err := m.Diff(&reordered)
	if !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("reordered procs: err = %v", err)
	}
	if !strings.Contains(err.Error(), "registration order") || !strings.Contains(err.Error(), "Transfer") {
		t.Errorf("reordered-procs diagnostic not descriptive: %v", err)
	}

	dropped := *m
	dropped.Procs = m.Procs[:1]
	if err := m.Diff(&dropped); err == nil || !strings.Contains(err.Error(), "procedure count") {
		t.Errorf("dropped-proc diagnostic: %v", err)
	}

	reshaped := *m
	reshaped.Tables = append([]TableDef(nil), m.Tables...)
	cols := append([]tuple.ColumnDef(nil), m.Tables[1].Columns...)
	cols[1] = tuple.Col(cols[1].Name, tuple.KindString)
	reshaped.Tables[1] = TableDef{Name: m.Tables[1].Name, Columns: cols}
	if err := m.Diff(&reshaped); err == nil || !strings.Contains(err.Error(), "column") {
		t.Errorf("schema-drift diagnostic: %v", err)
	}

	drifted := *m
	drifted.SeedFP = 7
	if err := m.Diff(&drifted); err == nil || !strings.Contains(err.Error(), "population") {
		t.Errorf("seed-drift diagnostic: %v", err)
	}
}

func TestProcFingerprintDetectsBodyChange(t *testing.T) {
	a := workload.NewBank(10)
	b := workload.NewBank(10)
	if ProcFingerprint(a.Transfer) != ProcFingerprint(b.Transfer) {
		t.Error("identical procedures fingerprint differently")
	}
	if ProcFingerprint(a.Transfer) == ProcFingerprint(a.Deposit) {
		t.Error("different procedures fingerprint equal")
	}
}

func TestSeedHashOrderSensitive(t *testing.T) {
	row := func(h *SeedHash, k uint64) { h.Row("T", k, tuple.Tuple{tuple.I(int64(k))}) }
	a, b, c := NewSeedHash(), NewSeedHash(), NewSeedHash()
	row(a, 1)
	row(a, 2)
	row(b, 1)
	row(b, 2)
	row(c, 2)
	row(c, 1)
	if a.Sum() != b.Sum() {
		t.Error("same rows, same order: fingerprints differ")
	}
	if a.Sum() == c.Sum() {
		t.Error("reordered rows fingerprint equal")
	}
}

// TestRepairTail: a batch file holding records below and above the durable
// cut plus a torn tail is rewritten to exactly the replayable prefix —
// ghost records (epoch > pepoch) and torn bytes are gone, valid frames are
// preserved byte-exact.
func TestRepairTail(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()

	// Three commits at epochs 1, 2, and 5 (advance the clock in between).
	mustExec(t, w, b, 1)
	m.AdvanceEpoch() // epoch 2
	mustExec(t, w, b, 2)
	m.AdvanceEpoch()
	m.AdvanceEpoch()
	m.AdvanceEpoch() // epoch 5
	mustExec(t, w, b, 3)
	recs := w.Drain(100)
	if len(recs) != 3 {
		t.Fatalf("drained %d records", len(recs))
	}

	dev := simdisk.New("d", simdisk.Unlimited())
	buf := appendFileHeader(nil, Command, 0, 0)
	for _, c := range recs {
		buf = encodeRecord(buf, Command, c)
	}
	buf = append(buf, 0xDE, 0xAD, 0xBE) // torn tail
	wr := dev.Create(BatchFileName(0, 0))
	wr.Write(buf)
	wr.Sync()

	st, err := RepairTail([]*simdisk.Device{dev}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.FilesRewritten != 1 || st.GhostRecords != 1 || st.TornBytes != 3 {
		t.Fatalf("stats = %+v, want 1 file, 1 ghost, 3 torn bytes", st)
	}

	entries, stats, err := ReloadAll([]*simdisk.Device{dev}, ^uint32(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornFiles != 0 {
		t.Error("repaired file still torn")
	}
	if len(entries) != 2 {
		t.Fatalf("repaired file holds %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Epoch() > 2 {
			t.Errorf("ghost entry at epoch %d survived repair", e.Epoch())
		}
	}

	// A second pass over an already-clean file is a no-op.
	st2, err := RepairTail([]*simdisk.Device{dev}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.FilesRewritten != 0 {
		t.Errorf("clean file rewritten: %+v", st2)
	}
}
