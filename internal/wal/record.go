// Package wal implements the three logging schemes of the evaluation —
// physical (PL), logical (LL), and command (CL) logging — with SiloR-style
// epoch group commit, finite-size log batch files, and the pepoch
// durability marker (paper Appendix A). It also provides the parallel
// reload path every recovery scheme shares.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/txn"
)

// Kind selects the logging scheme.
type Kind int

// Logging schemes. Off disables logging entirely (the paper's OFF
// baseline).
const (
	Off Kind = iota
	Physical
	Logical
	Command
)

func (k Kind) String() string {
	switch k {
	case Off:
		return "OFF"
	case Physical:
		return "PL"
	case Logical:
		return "LL"
	case Command:
		return "CL"
	}
	return "?"
}

// EntryKind distinguishes decoded entries: a command entry re-executes a
// stored procedure; a tuple entry reinstalls after-images.
type EntryKind uint8

// Entry kinds.
const (
	EntryCommand EntryKind = iota
	EntryTuple
)

// WriteImage is one decoded tuple modification.
type WriteImage struct {
	TableID int
	Slot    uint64
	Key     uint64
	Deleted bool
	After   tuple.Tuple
}

// Entry is one decoded log record: a committed transaction.
type Entry struct {
	TS     engine.TS
	Kind   EntryKind
	ProcID int
	Args   proc.Args
	Writes []WriteImage
	// Dist marks a distributed transaction (a cross-shard 2PC piece): its
	// effects were logged as values even under command logging, so replay
	// never re-executes it and never depends on another shard's state.
	Dist bool
}

// Epoch returns the entry's commit epoch.
func (e *Entry) Epoch() uint32 { return engine.EpochOf(e.TS) }

const (
	fileMagic   = 0x5041434C // "PACL"
	fileVersion = 1

	flagAdHoc   = 1 << 0
	flagDist    = 1 << 1
	flagDeleted = 1 << 0
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFileHeader writes the batch file header.
func appendFileHeader(buf []byte, kind Kind, loggerID int, batch uint32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, fileMagic)
	buf = append(buf, fileVersion, byte(kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(loggerID))
	buf = binary.LittleEndian.AppendUint32(buf, batch)
	return buf
}

const fileHeaderSize = 4 + 1 + 1 + 2 + 4

// decodeFileHeader validates and strips the header.
func decodeFileHeader(b []byte) (kind Kind, loggerID int, batch uint32, rest []byte, err error) {
	if len(b) < fileHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("wal: file shorter than header")
	}
	if binary.LittleEndian.Uint32(b) != fileMagic {
		return 0, 0, 0, nil, fmt.Errorf("wal: bad magic")
	}
	if b[4] != fileVersion {
		return 0, 0, 0, nil, fmt.Errorf("wal: unsupported version %d", b[4])
	}
	kind = Kind(b[5])
	loggerID = int(binary.LittleEndian.Uint16(b[6:8]))
	batch = binary.LittleEndian.Uint32(b[8:12])
	return kind, loggerID, batch, b[fileHeaderSize:], nil
}

// encodeRecord appends one framed record ([len][crc][payload]) for the given
// logging scheme. Under command logging, ad-hoc transactions fall back to a
// logical tuple record (Section 4.5), and distributed transactions (2PC
// pieces of a cross-shard commit) do the same so one shard's replay never
// depends on another shard's state — the mixed stream stays REDO-only and
// single-pass. The payload is encoded directly into buf — the frame header
// is reserved up front and backfilled — so a flush reusing one encode
// buffer performs no per-record allocation.
func encodeRecord(buf []byte, kind Kind, c *txn.Committed) []byte {
	if kind == Off {
		return buf // Off: nothing
	}
	base := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // [len][crc], backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, c.TS)
	var flags byte
	if c.AdHoc {
		flags |= flagAdHoc
	}
	if c.Dist {
		flags |= flagDist
	}
	switch {
	case kind == Command && flags == 0:
		buf = append(buf, 0) // flags
		buf = binary.LittleEndian.AppendUint16(buf, uint16(c.Proc.ID()))
		buf = proc.AppendArgs(buf, c.Args)
	case kind == Command:
		buf = append(buf, flags)
		buf = appendLogicalWrites(buf, c.Writes)
	case kind == Logical:
		buf = append(buf, flags)
		buf = appendLogicalWrites(buf, c.Writes)
	case kind == Physical:
		buf = append(buf, flags)
		buf = appendPhysicalWrites(buf, c.Writes)
	default:
		return buf[:base] // unknown kind: drop the reserved frame
	}
	payload := buf[base+8:]
	binary.LittleEndian.PutUint32(buf[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[base+4:], crc32.Checksum(payload, crcTable))
	return buf
}

func appendLogicalWrites(buf []byte, ws []txn.WriteRec) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ws)))
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(w.Table.ID()))
		buf = binary.LittleEndian.AppendUint64(buf, w.Key)
		if w.Deleted {
			buf = append(buf, flagDeleted)
		} else {
			buf = append(buf, 0)
			buf = tuple.AppendTuple(buf, w.After)
		}
	}
	return buf
}

// appendPhysicalWrites adds the physical form: like logical but carrying the
// slab slot and the old/new version addresses. The address words are what
// make physical records strictly larger than logical ones, as the paper's
// Table 1 observes ("it must record the locations of the old and new
// versions of every modified tuple").
func appendPhysicalWrites(buf []byte, ws []txn.WriteRec) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ws)))
	for _, w := range ws {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(w.Table.ID()))
		buf = binary.LittleEndian.AppendUint64(buf, w.Slot)
		buf = binary.LittleEndian.AppendUint64(buf, w.Key)
		// Old/new version addresses: synthesized from the slot, matching
		// the field layout (and size) a pointer-based engine would log.
		buf = binary.LittleEndian.AppendUint64(buf, w.Slot<<16|0xA)
		buf = binary.LittleEndian.AppendUint64(buf, w.Slot<<16|0xB)
		if w.Deleted {
			buf = append(buf, flagDeleted)
		} else {
			buf = append(buf, 0)
			buf = tuple.AppendTuple(buf, w.After)
		}
	}
	return buf
}

// decodeRecord decodes one framed record, returning the bytes consumed.
// A framing or checksum error returns consumed = 0: the caller treats it
// as a torn tail and stops.
func decodeRecord(b []byte, kind Kind) (*Entry, int, error) {
	if len(b) < 8 {
		return nil, 0, nil // clean EOF or torn length word
	}
	plen := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if plen <= 0 || len(b) < 8+plen {
		return nil, 0, nil // torn tail
	}
	payload := b[8 : 8+plen]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, nil // corrupt tail
	}
	e, err := decodePayload(payload, kind)
	if err != nil {
		return nil, 0, err
	}
	return e, 8 + plen, nil
}

func decodePayload(p []byte, kind Kind) (*Entry, error) {
	if len(p) < 9 {
		return nil, fmt.Errorf("wal: payload too short")
	}
	e := &Entry{TS: binary.LittleEndian.Uint64(p)}
	flags := p[8]
	e.Dist = flags&flagDist != 0
	rest := p[9:]
	switch {
	case kind == Command && flags&(flagAdHoc|flagDist) == 0:
		if len(rest) < 2 {
			return nil, fmt.Errorf("wal: command record truncated")
		}
		e.Kind = EntryCommand
		e.ProcID = int(binary.LittleEndian.Uint16(rest))
		args, _, err := proc.DecodeArgs(rest[2:])
		if err != nil {
			return nil, err
		}
		e.Args = args
	case kind == Logical || kind == Command:
		e.Kind = EntryTuple
		ws, err := decodeLogicalWrites(rest)
		if err != nil {
			return nil, err
		}
		e.Writes = ws
	case kind == Physical:
		e.Kind = EntryTuple
		ws, err := decodePhysicalWrites(rest)
		if err != nil {
			return nil, err
		}
		e.Writes = ws
	default:
		return nil, fmt.Errorf("wal: cannot decode records of kind %v", kind)
	}
	return e, nil
}

func decodeLogicalWrites(b []byte) ([]WriteImage, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wal: writes truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	out := make([]WriteImage, 0, n)
	for i := 0; i < n; i++ {
		if len(b[off:]) < 11 {
			return nil, fmt.Errorf("wal: write %d truncated", i)
		}
		w := WriteImage{
			TableID: int(binary.LittleEndian.Uint16(b[off:])),
			Key:     binary.LittleEndian.Uint64(b[off+2:]),
		}
		flags := b[off+10]
		off += 11
		if flags&flagDeleted != 0 {
			w.Deleted = true
		} else {
			t, sz, err := tuple.DecodeTuple(b[off:])
			if err != nil {
				return nil, err
			}
			w.After = t
			off += sz
		}
		out = append(out, w)
	}
	return out, nil
}

func decodePhysicalWrites(b []byte) ([]WriteImage, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wal: writes truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	out := make([]WriteImage, 0, n)
	for i := 0; i < n; i++ {
		if len(b[off:]) < 2+8+8+8+8+1 {
			return nil, fmt.Errorf("wal: physical write %d truncated", i)
		}
		w := WriteImage{
			TableID: int(binary.LittleEndian.Uint16(b[off:])),
			Slot:    binary.LittleEndian.Uint64(b[off+2:]),
			Key:     binary.LittleEndian.Uint64(b[off+10:]),
		}
		// Skip the old/new version address words.
		flags := b[off+34]
		off += 35
		if flags&flagDeleted != 0 {
			w.Deleted = true
		} else {
			t, sz, err := tuple.DecodeTuple(b[off:])
			if err != nil {
				return nil, err
			}
			w.After = t
			off += sz
		}
		out = append(out, w)
	}
	return out, nil
}
